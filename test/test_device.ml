(* Tests for Wafl_device: ftl, azcs, smr, hdd, object_store. *)

open Wafl_device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Ftl --- *)

let small_ssd () =
  (* 64-page erase blocks so tests stay small. *)
  let profile = { Profile.default_ssd with Profile.erase_block_blocks = 64; overprovision = 0.0 } in
  Ftl.create ~profile ~logical_blocks:1024 ()

let test_ftl_fresh_write_wa_one () =
  let f = small_ssd () in
  Ftl.write_batch f (List.init 64 Fun.id);
  let s = Ftl.stats f in
  check_int "host" 64 s.Ftl.host_pages_written;
  check_int "device" 64 s.Ftl.device_pages_written;
  Alcotest.(check (float 1e-9)) "WA=1 for full erase block" 1.0 (Ftl.write_amplification f)

let test_ftl_partial_overwrite_relocates () =
  let f = small_ssd () in
  (* Fill erase block 0 (it closes once fully appended), then rewrite half
     of it: reopening relocates the 32 still-live pages outside the batch. *)
  Ftl.write_batch f (List.init 64 Fun.id);
  check_bool "closed after full append" false (Ftl.is_open f ~eb:0);
  Ftl.write_batch f (List.init 32 Fun.id);
  let s = Ftl.stats f in
  check_int "host" 96 s.Ftl.host_pages_written;
  check_int "device" (64 + 32 + 32) s.Ftl.device_pages_written;
  check_int "relocated" 32 s.Ftl.relocated_pages;
  check_int "erases" 2 s.Ftl.erases;
  check_bool "half-written block stays open" true (Ftl.is_open f ~eb:0)

let test_ftl_batch_split_invariant () =
  (* Splitting one pass over a region across several batches costs the same
     as one batch, as long as the batches write into dead space (the WAFL
     pattern: only free blocks are written).  Pre-fill the odd pages, then
     write the even pages of the same span in one batch vs eight. *)
  let run chunks =
    let f = small_ssd () in
    Ftl.write_batch f (List.init 512 (fun i -> (i * 2) + 1));
    Ftl.reset_stats f;
    List.iter (fun batch -> Ftl.write_batch f batch) chunks;
    (Ftl.stats f).Ftl.relocated_pages
  in
  let one = run [ List.init 128 (fun i -> i * 2) ] in
  let split = run (List.init 8 (fun k -> List.init 16 (fun i -> ((k * 16) + i) * 2))) in
  check_bool
    (Printf.sprintf "split ~ one-shot (%d vs %d)" split one)
    true
    (one > 0 && abs (split - one) <= one / 4)

let test_ftl_trim_avoids_relocation () =
  let f = small_ssd () in
  Ftl.write_batch f (List.init 64 Fun.id);
  (* Trim the half we are not going to rewrite, then rewrite the other half. *)
  Ftl.trim_batch f (List.init 32 (fun i -> 32 + i));
  Ftl.write_batch f (List.init 32 Fun.id);
  let s = Ftl.stats f in
  check_int "nothing relocated" 0 s.Ftl.relocated_pages;
  check_int "trimmed" 32 s.Ftl.trimmed_pages

let test_ftl_small_aa_vs_large_aa () =
  (* The §3.2.2 mechanism: writing regions smaller than an erase block
     amplifies; writing whole erase-block multiples does not. *)
  let run ~chunk =
    let f = small_ssd () in
    (* Pre-fill the device half-full with even pages live. *)
    Ftl.write_batch f (List.init 512 (fun i -> i * 2));
    Ftl.reset_stats f;
    (* Rewrite 256 pages in chunks of [chunk] consecutive odd/even pages. *)
    let rec go start remaining =
      if remaining > 0 then begin
        let batch = List.init chunk (fun i -> start + i) in
        Ftl.write_batch f batch;
        go (start + chunk) (remaining - chunk)
      end
    in
    go 0 256;
    Ftl.write_amplification f
  in
  let wa_small = run ~chunk:16 and wa_large = run ~chunk:64 in
  check_bool "small chunks amplify more" true (wa_small > wa_large)

let test_ftl_overprovision_absorbs () =
  let profile0 = { Profile.default_ssd with Profile.erase_block_blocks = 64; overprovision = 0.0 } in
  let profile28 = { profile0 with Profile.overprovision = 0.28 } in
  let run profile =
    let f = Ftl.create ~profile ~logical_blocks:1024 () in
    Ftl.write_batch f (List.init 1024 Fun.id);
    Ftl.reset_stats f;
    Ftl.write_batch f (List.init 64 (fun i -> i * 16));
    Ftl.write_amplification f
  in
  check_bool "more OP, less WA" true (run profile28 < run profile0)

let test_ftl_live_tracking () =
  let f = small_ssd () in
  Ftl.write_batch f [ 0; 1; 2 ];
  check_int "live" 3 (Ftl.live_pages_in f ~start:0 ~len:64);
  Ftl.trim f 1;
  check_int "after trim" 2 (Ftl.live_pages_in f ~start:0 ~len:64);
  Ftl.trim f 1;
  check_int "double trim harmless" 2 (Ftl.live_pages_in f ~start:0 ~len:64)

let prop_ftl_wa_at_least_one =
  QCheck.Test.make ~name:"write amplification >= 1" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (list_of_size Gen.(1 -- 30) (int_bound 1023)))
    (fun batches ->
      let f = small_ssd () in
      List.iter (fun batch -> Ftl.write_batch f batch) batches;
      Ftl.write_amplification f >= 1.0 -. 1e-9)

(* --- Ftl multi-stream placement --- *)

let multi_ssd () =
  let profile = { Profile.default_ssd with Profile.erase_block_blocks = 64; overprovision = 0.0 } in
  Ftl.create ~profile ~open_blocks:8 ~streams:4 ~logical_blocks:4096 ()

let test_ftl_stream_budget () =
  let f = multi_ssd () in
  check_int "streams" 4 (Ftl.streams f);
  check_int "budget split evenly" 2 (Ftl.stream_capacity f);
  (* Partial writes keep the blocks open; a third open under the same
     stream must evict that stream's LRU, not grow past the budget. *)
  Ftl.write_batch ~stream:0 f [ 0 ];
  Ftl.write_batch ~stream:0 f [ 64 ];
  check_int "two open" 2 (Ftl.open_blocks_of_stream f 0);
  Ftl.write_batch ~stream:0 f [ 128 ];
  check_int "budget enforced" 2 (Ftl.open_blocks_of_stream f 0);
  check_bool "oldest evicted" false (Ftl.is_open f ~eb:0);
  check_bool "newest open" true (Ftl.is_open f ~eb:2);
  check_bool "open block tagged with its stream" true
    (Ftl.stream_of_open f ~eb:2 = Some 0)

let test_ftl_stream_lru_recency () =
  let f = multi_ssd () in
  Ftl.write_batch ~stream:0 f [ 0 ];
  Ftl.write_batch ~stream:0 f [ 64 ];
  (* appending to eb0 again makes eb1 the stream's LRU *)
  Ftl.write_batch ~stream:0 f [ 1 ];
  Ftl.write_batch ~stream:0 f [ 128 ];
  check_bool "recently appended survives" true (Ftl.is_open f ~eb:0);
  check_bool "least recent evicted" false (Ftl.is_open f ~eb:1)

let test_ftl_stream_isolation () =
  let f = multi_ssd () in
  Ftl.write_batch ~stream:0 f [ 0 ];
  Ftl.write_batch ~stream:0 f [ 64 ];
  (* churning stream 1 through many fresh blocks must never evict
     stream 0's open blocks — that cross-eviction is exactly what
     segregation exists to stop *)
  for k = 2 to 9 do
    Ftl.write_batch ~stream:1 f [ k * 64 ]
  done;
  check_int "stream 1 capped at its own budget" 2 (Ftl.open_blocks_of_stream f 1);
  check_bool "stream 0 block 0 untouched" true (Ftl.is_open f ~eb:0);
  check_bool "stream 0 block 1 untouched" true (Ftl.is_open f ~eb:1);
  check_bool "still owned by stream 0" true (Ftl.stream_of_open f ~eb:0 = Some 0)

let test_ftl_stream_stats_attribution () =
  let f = multi_ssd () in
  Ftl.write_batch ~stream:0 f (List.init 64 Fun.id);
  Ftl.write_batch ~stream:2 f (List.init 64 (fun i -> 64 + i));
  let s0 = Ftl.stream_stats f 0
  and s1 = Ftl.stream_stats f 1
  and s2 = Ftl.stream_stats f 2 in
  check_int "stream 0 host pages" 64 s0.Ftl.host_pages_written;
  check_int "stream 2 host pages" 64 s2.Ftl.host_pages_written;
  check_int "idle stream untouched" 0 s1.Ftl.host_pages_written;
  check_int "erase charged to the opening stream" 1 s0.Ftl.erases;
  let all = Ftl.stats f in
  check_int "streams sum to device total" all.Ftl.host_pages_written
    (s0.Ftl.host_pages_written + s1.Ftl.host_pages_written + s2.Ftl.host_pages_written
    + (Ftl.stream_stats f 3).Ftl.host_pages_written)

(* Hot rewrites interleaved with cold sequential fill: in one stream the
   cold opens evict the hot blocks between touches (every reopen re-pays
   the relocation of their live pages); in two streams the hot blocks
   stay open and append for free. *)
let test_ftl_segregation_reduces_wa () =
  let run streams =
    let profile =
      { Profile.default_ssd with Profile.erase_block_blocks = 64; overprovision = 0.0 }
    in
    let f = Ftl.create ~profile ~open_blocks:4 ~streams ~logical_blocks:8192 () in
    Ftl.write_batch f (List.init 128 Fun.id);
    Ftl.reset_stats f;
    let cold_stream = min 1 (streams - 1) in
    let cold = ref 256 in
    for round = 0 to 15 do
      Ftl.write_batch ~stream:0 f [ ((round mod 2) * 64) + (round mod 64) ];
      for _ = 1 to 4 do
        Ftl.write_batch ~stream:cold_stream f (List.init 32 (fun i -> !cold + i));
        cold := !cold + 64
      done
    done;
    Ftl.write_amplification f
  in
  let wa_mixed = run 1 and wa_split = run 2 in
  check_bool
    (Printf.sprintf "two streams beat one (%.3f vs %.3f)" wa_split wa_mixed)
    true (wa_split < wa_mixed)

let test_ftl_trim_open_block () =
  let f = small_ssd () in
  Ftl.write_batch f (List.init 32 Fun.id);
  check_bool "partially filled block is open" true (Ftl.is_open f ~eb:0);
  Ftl.trim_batch f (List.init 16 Fun.id);
  check_bool "trim leaves it open" true (Ftl.is_open f ~eb:0);
  check_int "live after trim" 16 (Ftl.live_pages_in f ~start:0 ~len:64);
  (* rewriting the trimmed pages appends into the still-open block *)
  Ftl.write_batch f (List.init 16 Fun.id);
  check_int "no relocation" 0 (Ftl.stats f).Ftl.relocated_pages;
  check_int "trims tallied" 16 (Ftl.stats f).Ftl.trimmed_pages

let test_ftl_wear_counters () =
  let f = small_ssd () in
  Ftl.write_batch f (List.init 64 Fun.id);
  Ftl.write_batch f (List.init 64 Fun.id);
  Ftl.write_batch f (List.init 64 (fun i -> 64 + i));
  check_int "rewritten block wore twice" 2 (Ftl.wear_of_eb f ~eb:0);
  check_int "fresh block wore once" 1 (Ftl.wear_of_eb f ~eb:1);
  check_int "max over a span" 2 (Ftl.max_wear_in f ~start:0 ~len:128);
  let lo, hi = Ftl.wear_spread f in
  check_int "untouched blocks at zero" 0 lo;
  check_int "spread max" 2 hi;
  Ftl.reset_stats f;
  check_int "wear is physical state, survives reset" 2 (Ftl.wear_of_eb f ~eb:0);
  check_int "erase counter is a statistic, resets" 0 (Ftl.stats f).Ftl.erases

let test_ftl_service_time () =
  let f = small_ssd () in
  let before = Ftl.stats f in
  Ftl.write_batch f (List.init 64 Fun.id);
  let delta = Ftl.diff_stats ~after:(Ftl.stats f) ~before in
  let t = Ftl.service_time_us f ~stats_delta:delta in
  (* 64 programs + 1 erase *)
  Alcotest.(check (float 1e-6)) "cost" ((64.0 *. 200.0) +. 2000.0) t

(* --- Azcs --- *)

let test_azcs_region_math () =
  check_int "region of 0" 0 (Azcs.region_of_block 0);
  check_int "region of 63" 0 (Azcs.region_of_block 63);
  check_int "region of 64" 1 (Azcs.region_of_block 64);
  check_int "checksum block r0" 63 (Azcs.checksum_block ~region:0);
  check_bool "63 is checksum" true (Azcs.is_checksum_block 63);
  check_bool "62 is data" false (Azcs.is_checksum_block 62);
  check_bool "aligned 128" true (Azcs.is_aligned 128);
  check_bool "unaligned 100" false (Azcs.is_aligned 100);
  check_int "capacity of one region" 63 (Azcs.data_capacity 64);
  check_int "capacity of 1.5 regions" (63 + 32) (Azcs.data_capacity 96)

let test_azcs_sequential_stream () =
  let tr = Azcs.create_tracker () in
  (* Write both regions fully, in order: both checksum writes sequential. *)
  let emitted = ref [] in
  for b = 0 to 127 do
    if not (Azcs.is_checksum_block b) then emitted := Azcs.write tr b @ !emitted
  done;
  emitted := Azcs.finish tr @ !emitted;
  let s = Azcs.summary tr in
  check_int "data writes" 126 s.Azcs.data_writes;
  check_int "sequential" 2 s.Azcs.sequential_checksum_writes;
  check_int "random" 0 s.Azcs.random_checksum_writes;
  check_int "emitted count" 2 (List.length !emitted)

let test_azcs_split_region_random () =
  let tr = Azcs.create_tracker () in
  (* Write half of region 0, jump to region 1 (an AA boundary mid-region),
     come back later: region 0's checksum write is random. *)
  for b = 0 to 30 do
    ignore (Azcs.write tr b)
  done;
  let emitted = Azcs.write tr 64 in
  check_int "leaving region 0 emits" 1 (List.length emitted);
  (match emitted with
  | [ cw ] ->
    check_int "checksum block" 63 cw.Azcs.block;
    check_bool "random" false cw.Azcs.sequential
  | _ -> Alcotest.fail "expected one checksum write");
  ignore (Azcs.finish tr);
  let s = Azcs.summary tr in
  (* region 0 (split by the jump) and region 1 (only one block written)
     both close partially -> two random checksum writes *)
  check_int "two random" 2 s.Azcs.random_checksum_writes

let test_azcs_out_of_order_within_region () =
  let tr = Azcs.create_tracker () in
  ignore (Azcs.write tr 5);
  ignore (Azcs.write tr 3);
  let ws = Azcs.finish tr in
  match ws with
  | [ cw ] -> check_bool "not sequential" false cw.Azcs.sequential
  | _ -> Alcotest.fail "expected one checksum write"

let test_azcs_device_span () =
  check_int "span of 63 data" 64 (Azcs.device_span_of_data 63);
  check_int "span of 64 data" 66 (Azcs.device_span_of_data 64);
  check_int "span of 126" 128 (Azcs.device_span_of_data 126);
  check_int "position of 0" 0 (Azcs.device_position_of_data 0);
  check_int "position of 62" 62 (Azcs.device_position_of_data 62);
  (* data 63 skips the checksum block at device position 63 *)
  check_int "position of 63" 64 (Azcs.device_position_of_data 63);
  check_bool "data positions never land on checksum blocks" true
    (let ok = ref true in
     for d = 0 to 10_000 do
       if Azcs.is_checksum_block (Azcs.device_position_of_data d) then ok := false
     done;
     !ok);
  check_bool "data alignment" true (Azcs.is_data_aligned 126);
  check_bool "4096 not data aligned" false (Azcs.is_data_aligned 4096)

let test_azcs_rejects_checksum_in_stream () =
  let tr = Azcs.create_tracker () in
  Alcotest.check_raises "checksum position"
    (Invalid_argument "Azcs.write: checksum block in data stream") (fun () ->
      ignore (Azcs.write tr 63))

(* --- Smr --- *)

let small_smr () =
  let profile = { Profile.default_smr with Profile.zone_blocks = 100 } in
  Smr.create ~profile ~blocks:1000 ()

let test_smr_sequential_cheap () =
  let s = small_smr () in
  Smr.write_stream s (List.init 100 Fun.id);
  let st = Smr.stats s in
  check_int "blocks" 100 st.Smr.blocks_written;
  (* first write repositions, the rest are appends *)
  check_int "sequential" 99 st.Smr.sequential_writes;
  check_int "random" 1 st.Smr.random_writes;
  check_int "no rmw" 0 st.Smr.rmw_blocks

let test_smr_mid_zone_rewrite_rmw () =
  let s = small_smr () in
  Smr.write_stream s (List.init 50 Fun.id);
  (* Rewriting position 10 when the write pointer is 50 must RMW 40 blocks. *)
  Smr.write s 10;
  let st = Smr.stats s in
  check_int "rmw tail" 40 st.Smr.rmw_blocks

let test_smr_backward_pass_single_rmw () =
  let s = small_smr () in
  Smr.write_stream s (List.init 80 Fun.id);
  (* jump back to 10 and continue 10,11,12: one RMW pass, charged once *)
  Smr.write s 10;
  let after_first = (Smr.stats s).Smr.rmw_blocks in
  Smr.write s 11;
  Smr.write s 12;
  check_int "no further RMW while continuing" after_first (Smr.stats s).Smr.rmw_blocks;
  check_int "one pass = 70 blocks" 70 after_first

let test_smr_zone_isolation () =
  let s = small_smr () in
  Smr.write_stream s (List.init 50 Fun.id);
  (* Position 150 lives in zone 1, untouched: plain (random) append. *)
  Smr.write s 150;
  let st = Smr.stats s in
  check_int "no rmw across zones" 0 st.Smr.rmw_blocks;
  check_int "zone1 wp" 51 (Smr.write_pointer s ~zone:1)

let test_smr_reset_zone () =
  let s = small_smr () in
  Smr.write_stream s (List.init 100 Fun.id);
  Smr.reset_zone s ~zone:0;
  check_int "wp reset" 0 (Smr.write_pointer s ~zone:0);
  Smr.write s 0;
  check_int "no rmw after reset" 0 (Smr.stats s).Smr.rmw_blocks

let test_smr_cost_ordering () =
  (* Sequential stream must be cheaper than the same blocks random. *)
  let seq = small_smr () in
  Smr.write_stream seq (List.init 100 Fun.id);
  let rnd = small_smr () in
  let r = Wafl_util.Rng.create ~seed:4 in
  let order = Array.init 100 Fun.id in
  Wafl_util.Rng.shuffle r order;
  Smr.write_stream rnd (Array.to_list order);
  check_bool "sequential cheaper" true ((Smr.stats seq).Smr.total_us < (Smr.stats rnd).Smr.total_us)

(* --- Hdd --- *)

let test_hdd_costs () =
  let p = Profile.default_hdd in
  let one_chain = Hdd.write_cost_us p ~chains:1 ~blocks:100 in
  let many_chains = Hdd.write_cost_us p ~chains:100 ~blocks:100 in
  check_bool "chaining pays" true (one_chain < many_chains);
  Alcotest.(check (float 1e-6)) "one chain cost" (8000.0 +. (100.0 *. 20.0)) one_chain;
  Alcotest.(check (float 1e-6)) "random reads" (2.0 *. 8020.0) (Hdd.random_read_cost_us p ~ios:2)

let test_hdd_bandwidth () =
  let p = Profile.default_hdd in
  Alcotest.(check (float 1e-6)) "50k blocks/s" 50_000.0 (Hdd.streaming_bandwidth_blocks_per_s p)

(* --- Object_store --- *)

let test_object_store_puts () =
  let o = Object_store.create () in
  (* default object size 1024 blocks *)
  Object_store.write_batch o [ 0; 1; 2; 1023 ];
  check_int "one put" 1 (Object_store.stats o).Object_store.puts;
  Object_store.write_batch o [ 1024 ];
  check_int "second object" 2 (Object_store.stats o).Object_store.puts;
  check_int "blocks" 5 (Object_store.stats o).Object_store.blocks_written

let test_object_store_scattered_vs_colocated () =
  let o = Object_store.create () in
  let colocated = List.init 100 Fun.id in
  let scattered = List.init 100 (fun i -> i * 1024) in
  check_int "colocated: 1 object" 1 (Object_store.put_count_for o colocated);
  check_int "scattered: 100 objects" 100 (Object_store.put_count_for o scattered)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_ftl_wa_at_least_one ] in
  Alcotest.run "wafl_device"
    [
      ( "ftl",
        [
          Alcotest.test_case "fresh write WA=1" `Quick test_ftl_fresh_write_wa_one;
          Alcotest.test_case "partial overwrite relocates" `Quick
            test_ftl_partial_overwrite_relocates;
          Alcotest.test_case "batch-split invariant" `Quick test_ftl_batch_split_invariant;
          Alcotest.test_case "trim avoids relocation" `Quick test_ftl_trim_avoids_relocation;
          Alcotest.test_case "small vs large AA" `Quick test_ftl_small_aa_vs_large_aa;
          Alcotest.test_case "overprovision absorbs" `Quick test_ftl_overprovision_absorbs;
          Alcotest.test_case "live tracking" `Quick test_ftl_live_tracking;
          Alcotest.test_case "stream budget" `Quick test_ftl_stream_budget;
          Alcotest.test_case "stream LRU recency" `Quick test_ftl_stream_lru_recency;
          Alcotest.test_case "stream isolation" `Quick test_ftl_stream_isolation;
          Alcotest.test_case "stream stats attribution" `Quick
            test_ftl_stream_stats_attribution;
          Alcotest.test_case "segregation reduces WA" `Quick
            test_ftl_segregation_reduces_wa;
          Alcotest.test_case "trim in open block" `Quick test_ftl_trim_open_block;
          Alcotest.test_case "wear counters" `Quick test_ftl_wear_counters;
          Alcotest.test_case "service time" `Quick test_ftl_service_time;
        ]
        @ qsuite );
      ( "azcs",
        [
          Alcotest.test_case "region math" `Quick test_azcs_region_math;
          Alcotest.test_case "sequential stream" `Quick test_azcs_sequential_stream;
          Alcotest.test_case "split region random" `Quick test_azcs_split_region_random;
          Alcotest.test_case "out of order" `Quick test_azcs_out_of_order_within_region;
          Alcotest.test_case "device span" `Quick test_azcs_device_span;
          Alcotest.test_case "rejects checksum block" `Quick test_azcs_rejects_checksum_in_stream;
        ] );
      ( "smr",
        [
          Alcotest.test_case "sequential cheap" `Quick test_smr_sequential_cheap;
          Alcotest.test_case "mid-zone RMW" `Quick test_smr_mid_zone_rewrite_rmw;
          Alcotest.test_case "backward pass single RMW" `Quick test_smr_backward_pass_single_rmw;
          Alcotest.test_case "zone isolation" `Quick test_smr_zone_isolation;
          Alcotest.test_case "reset zone" `Quick test_smr_reset_zone;
          Alcotest.test_case "cost ordering" `Quick test_smr_cost_ordering;
        ] );
      ( "hdd",
        [
          Alcotest.test_case "costs" `Quick test_hdd_costs;
          Alcotest.test_case "bandwidth" `Quick test_hdd_bandwidth;
        ] );
      ( "object_store",
        [
          Alcotest.test_case "puts" `Quick test_object_store_puts;
          Alcotest.test_case "scattered vs colocated" `Quick
            test_object_store_scattered_vs_colocated;
        ] );
    ]
