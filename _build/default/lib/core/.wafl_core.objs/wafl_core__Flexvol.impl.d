lib/core/flexvol.ml: Activemap Array Cache Config Hashtbl Hbps Int List Metafile Option Score Sizing Topology Wafl_aa Wafl_aacache Wafl_bitmap Wafl_block
