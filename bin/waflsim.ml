(* waflsim: run individual paper experiments from the command line. *)

open Cmdliner
open Wafl_experiments
open Wafl_telemetry

let scale_arg =
  let doc = "Experiment scale: 'quick' (seconds, CI-sized) or 'full'." in
  Arg.(value & opt string "quick" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let metrics_out_arg =
  let doc =
    "Write a JSON telemetry report (counters, gauges, histograms, per-CP snapshots) to \
     $(docv) when the run finishes.  With $(b,.csv) as the extension the report is \
     rendered as CSV rows instead."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* --metrics-format is validated entirely at parse time (like
   --temp-classes): a typo'd format fails the command line with the legal
   choices spelled out, never a finished run with a misrendered file. *)
type metrics_format = Mf_auto | Mf_json | Mf_csv | Mf_prom

let metrics_format_conv =
  let parse = function
    | "auto" -> Ok Mf_auto
    | "json" -> Ok Mf_json
    | "csv" -> Ok Mf_csv
    | "prom" | "prometheus" -> Ok Mf_prom
    | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown metrics format %S: expected prom|json|csv (or auto, the default, \
              which picks by the --metrics-out extension)"
             s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with
      | Mf_auto -> "auto"
      | Mf_json -> "json"
      | Mf_csv -> "csv"
      | Mf_prom -> "prom")
  in
  Arg.conv ~docv:"FORMAT" (parse, print)

let metrics_format_arg =
  let doc =
    "Rendering for $(b,--metrics-out): $(b,json), $(b,csv) or $(b,prom) (Prometheus \
     text exposition 0.0.4, including per-op latency histograms and quantile gauges \
     when $(b,--latency) is on).  The default $(b,auto) picks by file extension \
     ($(b,.csv) -> csv, $(b,.prom) -> prom, otherwise json)."
  in
  Arg.(
    value
    & opt metrics_format_conv Mf_auto
    & info [ "metrics-format" ] ~docv:"FORMAT" ~doc)

let latency_arg =
  let doc =
    "Install request-level latency accounting: every staged op gets a modeled latency \
     (wait in the arrival batch + its CP's service time, including injected device \
     spikes) recorded into per-(op kind x volume) HDR histograms.  Adds \
     p50/p99/p999 columns to $(b,--timeseries-out), a latency pane to $(b,top), \
     per-op histograms to $(b,--metrics-format prom) output, and a post-run summary \
     with tail exemplars naming the CP phase that dominated each outlier."
  in
  Arg.(value & flag & info [ "latency" ] ~doc)

let slo_conv =
  let parse s =
    match Slo.objective_of_string s with Ok o -> Ok o | Error msg -> Error (`Msg msg)
  in
  let print fmt o = Format.pp_print_string fmt (Slo.objective_to_string o) in
  Arg.conv ~docv:"NAME:MS:TARGET" (parse, print)

let slo_arg =
  let doc =
    "Track a latency objective (repeatable): TARGET (a fraction, e.g. 0.99) of ops \
     must complete under MS milliseconds.  Implies $(b,--latency).  Each objective's \
     burn rate over fast (12-CP) and slow (120-CP) windows is exported as \
     $(b,slo.NAME.burn_fast)/$(b,burn_slow) gauges; a breach (both windows burning \
     above 1.0) bumps $(b,slo.NAME.breaches) and emits a $(b,slo_violation) trace \
     event."
  in
  Arg.(value & opt_all slo_conv [] & info [ "slo" ] ~docv:"NAME:MS:TARGET" ~doc)

let trace_out_arg =
  let doc =
    "Enable structured event tracing (CP boundaries, AA picks, cache replenishes, tetris \
     writes, cleaner passes, free commits) and write the retained events to $(docv) — \
     CSV by default, JSON with a $(b,.json) extension."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

(* Reject non-positive numeric flags at parse time, before any experiment
   state is built, with the flag's own name in the message. *)
let positive_int flag =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%s must be positive (got %d)" flag n))
    | None -> Error (`Msg (Printf.sprintf "%s expects a positive integer (got %S)" flag s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* Like [positive_int] but with an inclusive range, for flags whose legal
   values Config.make would otherwise reject mid-run. *)
let bounded_int flag ~lo ~hi =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= lo && n <= hi -> Ok n
    | Some n ->
      Error (`Msg (Printf.sprintf "%s must be in %d..%d (got %d)" flag lo hi n))
    | None ->
      Error
        (`Msg (Printf.sprintf "%s expects an integer in %d..%d (got %S)" flag lo hi s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let temp_classes_arg =
  let doc =
    "Classify every staged write into one of $(docv) write-temperature classes \
     (by the lifespan of the version it overwrites) and give each class its own \
     allocation-cursor row: 1 = no segregation (the default), 2 = hot/other, \
     3 = hot/warm/cold, 4 = hot/warm/cold/metafile.  On SSD ranges each class \
     flushes to its own FTL write stream (see $(b,--streams))."
  in
  Arg.(
    value
    & opt (bounded_int "--temp-classes" ~lo:1 ~hi:4) 1
    & info [ "temp-classes" ] ~docv:"N" ~doc)

let streams_arg =
  let doc =
    "Create every simulated SSD FTL with $(docv) write streams (1..8); the \
     device's open-erase-block budget is partitioned across them so blocks of \
     different temperature classes never share an erase block."
  in
  Arg.(
    value
    & opt (bounded_int "--streams" ~lo:1 ~hi:8) 1
    & info [ "streams" ] ~docv:"N" ~doc)

let wear_bias_arg =
  let doc =
    "Wear-aware AA scoring strength: at each CP boundary, demote an AA's \
     cache-filed score by $(docv) units per wear bin its worst erase block sits \
     above the device minimum.  0 (the default) keeps scoring wear-blind."
  in
  Arg.(
    value
    & opt (bounded_int "--wear-bias" ~lo:0 ~hi:255) 0
    & info [ "wear-bias" ] ~docv:"N" ~doc)

let with_streams ~temp_classes ~streams ~wear_bias f =
  if temp_classes = 1 && streams = 1 && wear_bias = 0 then f ()
  else
    Wafl_core.Config.with_default_streams
      { Wafl_core.Config.temp_classes; ssd_streams = streams; wear_bias;
        meta_file = None }
      f

let trace_capacity_arg =
  let doc = "Ring-buffer capacity (events retained) for $(b,--trace-out)." in
  Arg.(
    value
    & opt (positive_int "--trace-capacity") 65_536
    & info [ "trace-capacity" ] ~docv:"N" ~doc)

let timeseries_out_arg =
  let doc =
    "Write the per-CP time series (search ns/block, HBPS score-error bound, AA score \
     deciles, free-space fragmentation, ring high-water, fault totals) to $(docv) when \
     the run finishes — JSON by default, CSV with a $(b,.csv) extension."
  in
  Arg.(value & opt (some string) None & info [ "timeseries-out" ] ~docv:"FILE" ~doc)

let fault_spec_arg =
  let doc =
    "Install a device fault-injection profile consulted by every device simulator.  \
     $(docv) is comma-separated: $(b,seed=N,transient=P,burst=N,torn=P,spike=P:US,\
     retries=N,backoff=US) plus repeatable $(b,bad=DEV:START+LEN), $(b,offline=DEV@IOS) \
     and $(b,degraded=DEV@IOS).  $(b,default) selects the default transient profile."
  in
  Arg.(value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

let jobs_arg =
  let doc =
    "Install a process-wide domain pool of $(docv) workers.  Every parallel-capable \
     stage — mount-time cache rebuilds, Iron's scans, the CP's free commits and \
     device flushes, large-AA harvests — shards over the pool, with results \
     bit-identical to a serial run at any $(docv).  The default of 1 keeps every \
     path serial."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let with_jobs jobs f =
  if jobs < 1 then begin
    Printf.eprintf "waflsim: --jobs must be at least 1 (got %d)\n" jobs;
    exit 2
  end
  else if jobs = 1 then f ()
  else begin
    Wafl_par.Par.install ~jobs;
    Fun.protect ~finally:Wafl_par.Par.uninstall f
  end

(* --backend is validated entirely at parse time: a bad PATH fails the
   command line, never a half-finished run.  An absent mmap directory is
   created here (mkdir -p); an existing one must be a writable directory. *)
type backend_choice =
  | Default_backend of Wafl_bitmap.Pagestore.backend
  | Mmap_dir of string

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Unix.mkdir dir 0o755
  end

let backend_conv =
  let parse s =
    if String.length s >= 5 && String.sub s 0 5 = "mmap:" then begin
      let dir = String.sub s 5 (String.length s - 5) in
      if dir = "" then Error (`Msg "mmap: expects a directory path (mmap:PATH)")
      else if Sys.file_exists dir then
        if not (Sys.is_directory dir) then
          Error (`Msg (Printf.sprintf "mmap:%s exists and is not a directory" dir))
        else (
          match Unix.access dir [ Unix.W_OK ] with
          | () -> Ok (Mmap_dir dir)
          | exception Unix.Unix_error _ ->
            Error (`Msg (Printf.sprintf "mmap:%s is not writable" dir)))
      else
        match mkdir_p dir with
        | () -> Ok (Mmap_dir dir)
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (`Msg
              (Printf.sprintf "mmap:%s: cannot create directory (%s)" dir
                 (Unix.error_message e)))
    end
    else
      match Wafl_bitmap.Pagestore.backend_of_string s with
      | Some b -> Ok (Default_backend b)
      | None ->
        Error (`Msg (Printf.sprintf "unknown backend %S (expected heap|bigarray|mmap:PATH)" s))
  in
  let print fmt = function
    | Default_backend b ->
      Format.pp_print_string fmt (Wafl_bitmap.Pagestore.backend_name b)
    | Mmap_dir dir -> Format.fprintf fmt "mmap:%s" dir
  in
  Arg.conv ~docv:"BACKEND" (parse, print)

let backend_arg =
  let doc =
    "Page-store backend for every allocation bitmap, activemap and TopAA block: \
     $(b,heap) (OCaml bytes, the default), $(b,bigarray) (off-heap words the GC \
     never scans) or $(b,mmap:PATH) (bigarray words file-mapped under directory \
     PATH, created if missing — a rerun over the same directory remounts the \
     persisted free-space state).  PATH is validated when the command line is \
     parsed: a path that exists but is not a writable directory is rejected \
     before anything runs.  The choice is process-wide; allocation behaviour is \
     byte-identical across backends."
  in
  Arg.(
    value
    & opt backend_conv (Default_backend Wafl_bitmap.Pagestore.Heap)
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let with_backend choice f =
  match choice with
  | Default_backend b -> Wafl_bitmap.Pagestore.with_default b f
  | Mmap_dir dir ->
    Wafl_bitmap.Pagestore.with_default Wafl_bitmap.Pagestore.Bigarray (fun () ->
        Wafl_bitmap.Pagestore.with_mmap_dir dir f)

let scrub_rate_arg =
  let doc =
    "Enable the background pagestore scrubber: after every CP, verify $(docv) \
     integrity pages (round-robin across every tracked bitmap store) against \
     their CRC sidecars and self-heal any torn or stale page found — the \
     overlapped ranges/volumes are rescanned and the bitmap-vs-container \
     disagreement settled by container-authority repair.  A full sweep of N \
     tracked pages takes ceil(N/$(docv)) CPs.  Only meaningful with \
     $(b,--backend mmap:PATH); the default of 0 disables scrubbing."
  in
  Arg.(value & opt int 0 & info [ "scrub-rate" ] ~docv:"N" ~doc)

let with_scrub rate f =
  if rate < 0 then begin
    Printf.eprintf "waflsim: --scrub-rate must be >= 0 (got %d)\n" rate;
    exit 2
  end
  else if rate = 0 then f ()
  else begin
    Wafl_core.Scrub.enable ~rate ();
    Fun.protect ~finally:Wafl_core.Scrub.disable f
  end

let alloc_domains_arg =
  let doc =
    "Drive write allocation with $(docv) concurrent domains: each domain pops \
     physical blocks from its own lock-free harvest ring, claims AAs atomically \
     through the shared cache pick path, and steals byte-aligned ring suffixes \
     from other domains when it runs dry.  The committed free-space state is \
     identical to a serial run at any $(docv); the default of 1 keeps allocation \
     serial."
  in
  Arg.(value & opt int 1 & info [ "alloc-domains" ] ~docv:"N" ~doc)

let with_alloc_domains n f =
  if n < 1 then begin
    Printf.eprintf "waflsim: --alloc-domains must be at least 1 (got %d)\n" n;
    exit 2
  end
  else if n = 1 then f ()
  else begin
    Wafl_core.Write_alloc.install_alloc_pool ~jobs:n;
    Fun.protect ~finally:Wafl_core.Write_alloc.uninstall_alloc_pool f
  end

let no_iron_gate_arg =
  let doc =
    "Skip the post-run consistency gate (by default every system the run built is checked \
     with WAFL Iron and any finding other than advisory orphan blocks exits nonzero)."
  in
  Arg.(value & flag & info [ "no-iron-gate" ] ~doc)

let parse_scale s =
  match Common.scale_of_string s with
  | Some scale -> scale
  | None -> begin
    Printf.eprintf "unknown scale %S (expected quick|full)\n" s;
    exit 2
  end

let parse_fault_spec = function
  | None -> None
  | Some "default" -> Some Wafl_fault.Fault.default_spec
  | Some s -> (
    match Wafl_fault.Fault.spec_of_string s with
    | Ok spec -> Some spec
    | Error msg ->
      Printf.eprintf "waflsim: bad --fault-spec: %s\n" msg;
      exit 2)

let with_fault_spec spec f =
  match spec with
  | None -> f ()
  | Some spec ->
    Wafl_fault.Fault.install_default spec;
    Fun.protect ~finally:Wafl_fault.Fault.uninstall_default f

(* Post-run Iron gate: check every system the run registered.  Orphan
   blocks are advisory (some experiments allocate aggregate blocks with no
   volume owner by design); anything else is a consistency bug. *)
let run_iron_gate () =
  let systems = Wafl_core.Fs.registered () in
  Wafl_core.Fs.disable_registry ();
  let bad = ref 0 in
  List.iteri
    (fun i fs ->
      List.iter
        (fun finding ->
          match finding with
          | Wafl_core.Iron.Orphan_blocks _ ->
            Format.printf "iron gate (system %d, advisory): %a@." i Wafl_core.Iron.pp_finding
              finding
          | _ ->
            incr bad;
            Format.printf "iron gate (system %d): %a@." i Wafl_core.Iron.pp_finding finding)
        (Wafl_core.Iron.check fs))
    systems;
  if !bad > 0 then begin
    Printf.eprintf "waflsim: iron gate failed: %d finding(s) across %d system(s)\n" !bad
      (List.length systems);
    exit 1
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Fail before the (possibly minutes-long) experiment runs, not after. *)
let check_writable path =
  try close_out (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path)
  with Sys_error msg ->
    Printf.eprintf "waflsim: cannot write %s: %s\n" path msg;
    exit 2

let flush_telemetry ~metrics_out ~metrics_format ~trace_out ~timeseries_out tel =
  Option.iter
    (fun path ->
      let render =
        match metrics_format with
        | Mf_json -> Export.metrics_json
        | Mf_csv -> Export.metrics_csv
        | Mf_prom -> Export.metrics_prom
        | Mf_auto ->
          if Filename.check_suffix path ".csv" then Export.metrics_csv
          else if Filename.check_suffix path ".prom" then Export.metrics_prom
          else Export.metrics_json
      in
      write_file path (render tel);
      Printf.printf "telemetry: metrics written to %s\n%!" path)
    metrics_out;
  Option.iter
    (fun path ->
      let render =
        if Filename.check_suffix path ".json" then Export.trace_json else Export.trace_csv
      in
      write_file path (render tel);
      Printf.printf "telemetry: trace written to %s\n%!" path)
    trace_out;
  Option.iter
    (fun path ->
      let render =
        if Filename.check_suffix path ".csv" then Export.timeseries_csv
        else Export.timeseries_json
      in
      write_file path (render tel);
      Printf.printf "telemetry: time series written to %s\n%!" path)
    timeseries_out

(* A --latency / --slo run gets a request-latency recorder seeded with the
   sim's cost constants, so the modeled per-op clock and the analytic
   M/G/1 sweeps price the same work identically. *)
let make_latency ~latency ~slos =
  if latency || slos <> [] then
    Some
      (Latency.create
         ~model:(Wafl_sim.Cost_model.latency_model Wafl_sim.Cost_model.default)
         ?slo:(match slos with [] -> None | l -> Some (Slo.create l))
         ())
  else None

(* Post-run latency summary on stdout: headline quantiles, per-volume
   rows, SLO burn state and the slowest tail exemplars with their blame
   phase — so a --latency run reports itself without any output file. *)
let print_latency_summary tel =
  match Telemetry.latency tel with
  | None -> ()
  | Some lat when Latency.ops_recorded lat = 0 ->
    Printf.printf "latency: no ops recorded\n%!"
  | Some lat ->
    let p50, p99, p999 = Latency.quantiles_ms lat in
    Printf.printf "latency: %d ops over %d CPs  p50 %.2f ms  p99 %.2f ms  p999 %.2f ms\n"
      (Latency.ops_recorded lat) (Latency.cps_recorded lat) p50 p99 p999;
    List.iter
      (fun (slot, name) ->
        let p50, p99, p999 = Latency.quantiles_ms ~vol:slot lat in
        Printf.printf "  vol %-14s p50 %.2f ms  p99 %.2f ms  p999 %.2f ms\n" name p50 p99
          p999)
      (Latency.vols lat);
    List.iter
      (fun r ->
        Printf.printf "  slo %-14s burn fast %.2f  slow %.2f%s\n" r.Slo.r_name
          r.Slo.r_burn_fast r.Slo.r_burn_slow
          (if r.Slo.r_breach then "  ** BREACH **" else ""))
      (Latency.last_slo_reports lat);
    List.iteri
      (fun i ex ->
        if i < 3 then
          Printf.printf "  tail %.2f ms  %s/%s  cp %d  %s\n"
            (float_of_int ex.Latency.ex_ns /. 1e6)
            (Latency.op_name ex.Latency.ex_op)
            ex.Latency.ex_vol_name ex.Latency.ex_cp
            (Latency.phase_stack ex.Latency.ex_phase))
      (Latency.exemplars lat);
    flush stdout

(* Run [f] with a telemetry instance installed when any output flag is
   given or latency accounting is requested; flush the reports afterwards
   even if [f] raises. *)
let with_telemetry ~metrics_out ~metrics_format ~trace_out ~trace_capacity ~timeseries_out
    ~latency ~slos f =
  let lat = make_latency ~latency ~slos in
  match (metrics_out, trace_out, timeseries_out, lat) with
  | None, None, None, None -> f ()
  | _ ->
    if trace_capacity <= 0 then begin
      Printf.eprintf "waflsim: --trace-capacity must be positive (got %d)\n" trace_capacity;
      exit 2
    end;
    Option.iter check_writable metrics_out;
    Option.iter check_writable trace_out;
    Option.iter check_writable timeseries_out;
    let tel =
      Telemetry.create ~trace_capacity ~tracing:(trace_out <> None) ?latency:lat ()
    in
    let flush () =
      flush_telemetry ~metrics_out ~metrics_format ~trace_out ~timeseries_out tel;
      print_latency_summary tel
    in
    Telemetry.with_installed tel (fun () -> Fun.protect ~finally:flush f)

let experiment_cmd name ~doc run_print =
  let run s metrics_out metrics_format trace_out trace_capacity timeseries_out latency
      slos fault_spec no_iron_gate jobs backend alloc_domains scrub_rate temp_classes
      streams wear_bias =
    with_streams ~temp_classes ~streams ~wear_bias (fun () ->
    with_backend backend (fun () ->
    with_jobs jobs (fun () ->
    with_alloc_domains alloc_domains (fun () ->
    with_scrub scrub_rate (fun () ->
        with_fault_spec (parse_fault_spec fault_spec) (fun () ->
            if not no_iron_gate then Wafl_core.Fs.enable_registry ();
            with_telemetry ~metrics_out ~metrics_format ~trace_out ~trace_capacity
              ~timeseries_out ~latency ~slos
              (fun () -> run_print (parse_scale s));
            if not no_iron_gate then run_iron_gate ()))))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ scale_arg $ metrics_out_arg $ metrics_format_arg $ trace_out_arg
      $ trace_capacity_arg $ timeseries_out_arg $ latency_arg $ slo_arg $ fault_spec_arg
      $ no_iron_gate_arg $ jobs_arg $ backend_arg $ alloc_domains_arg $ scrub_rate_arg
      $ temp_classes_arg $ streams_arg $ wear_bias_arg)

let fig6_cmd =
  experiment_cmd "fig6" ~doc:"AA-cache latency/throughput experiment (Figure 6)"
    (fun scale -> Fig6.print (Fig6.run ~scale ()))

let fig7_cmd =
  experiment_cmd "fig7" ~doc:"Imbalanced RAID-group aging under OLTP (Figure 7)"
    (fun scale -> Fig7.print (Fig7.run ~scale ()))

let fig8_cmd =
  experiment_cmd "fig8" ~doc:"SSD AA sizing experiment (Figure 8)"
    (fun scale -> Fig8.print (Fig8.run ~scale ()))

let fig8_streams_cmd =
  experiment_cmd "fig8-streams"
    ~doc:
      "SSD write-amplification ablation: AA sizing vs write-temperature segregation \
       (multi-stream FTL, wear-aware scoring)"
    (fun scale -> Fig8_streams.print ~scale (Fig8_streams.run ~scale ()))

let fig9_cmd =
  experiment_cmd "fig9" ~doc:"SMR AZCS-alignment experiment (Figure 9)"
    (fun scale -> Fig9.print (Fig9.run ~scale ()))

let fig10_cmd =
  experiment_cmd "fig10" ~doc:"TopAA mount-time experiment (Figure 10)"
    (fun scale -> Fig10.print (Fig10.run ~scale ()))

let scalars_cmd =
  experiment_cmd "scalars" ~doc:"Section 4.1 scalar claims"
    (fun scale -> Scalars.print (Scalars.run ~scale ()))

let ablation_cmd =
  experiment_cmd "ablation"
    ~doc:"Design-choice ablations (bin width, policy, threshold, cleaner)"
    (fun scale -> Ablation.print (Ablation.run ~scale ()))

let all_cmd =
  experiment_cmd "all" ~doc:"Run every experiment" (fun scale ->
      Fig6.print (Fig6.run ~scale ());
      Fig7.print (Fig7.run ~scale ());
      Fig8.print (Fig8.run ~scale ());
      Fig8_streams.print ~scale (Fig8_streams.run ~scale ());
      Fig9.print (Fig9.run ~scale ());
      Fig10.print (Fig10.run ~scale ());
      Scalars.print (Scalars.run ~scale ());
      Ablation.print (Ablation.run ~scale ()))

let crash_matrix_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let cps_arg =
    Arg.(
      value & opt int 3
      & info [ "cps" ] ~docv:"N" ~doc:"Warmup CPs committed before the crashed one.")
  in
  let ops_arg =
    Arg.(value & opt int 400 & info [ "ops" ] ~docv:"N" ~doc:"Staged writes per CP.")
  in
  let no_cleaner_arg =
    Arg.(
      value & flag
      & info [ "no-cleaner" ]
          ~doc:"Skip the segment-cleaner pass before the final CP.")
  in
  let foreground_rebuild_arg =
    Arg.(
      value & flag
      & info [ "foreground-rebuild" ]
          ~doc:
            "Remount each crashed image on its seeded TopAA caches alone (no background \
             full rebuild) — verifies recovery in the immediate-post-failover state the \
             paper measures.")
  in
  let lazy_rebuild_arg =
    Arg.(
      value & flag
      & info [ "lazy-rebuild" ]
          ~doc:
            "Remount each crashed image incrementally: every range and volume comes up \
             stale-but-seeded and materializes its exact cache on first touch (the \
             repair's Iron scan, or the replay CP's allocations).  Verifies that lazy \
             mounts recover exactly like eager ones.")
  in
  let verify_mount_arg =
    Arg.(
      value & flag
      & info [ "verify-mount" ]
          ~doc:
            "Verify the persisted pagestore bytes against their CRC integrity sidecars at \
             every post-crash remount: torn and stale (lost-write) pages are detected \
             before the image restore and their ranges/volumes quarantined for rescan.  \
             Only meaningful with $(b,--backend mmap:PATH), where each crash-matrix run \
             gets its own wiped subdirectory and the remount reloads sidecars from disk.")
  in
  let run seed cps ops no_cleaner foreground_rebuild lazy_rebuild verify_mount fault_spec
      jobs backend alloc_domains scrub_rate metrics_out metrics_format trace_out
      trace_capacity timeseries_out latency slos =
    with_backend backend (fun () ->
    with_jobs jobs (fun () ->
    with_alloc_domains alloc_domains (fun () ->
    with_scrub scrub_rate (fun () ->
    with_fault_spec (parse_fault_spec fault_spec) (fun () ->
    with_telemetry ~metrics_out ~metrics_format ~trace_out ~trace_capacity ~timeseries_out
      ~latency ~slos (fun () ->
        let r =
          Wafl_core.Crash_matrix.run ~with_cleaner:(not no_cleaner)
            ~background_rebuild:(not foreground_rebuild) ~lazy_rebuild
            ~verify_mount ~seed ~warmup_cps:cps ~ops_per_cp:ops ()
        in
        Printf.printf "crash matrix: %d crash points enumerated (%d workload runs)\n"
          (List.length r.Wafl_core.Crash_matrix.points) r.Wafl_core.Crash_matrix.runs;
        let counts =
          List.fold_left
            (fun acc p ->
              match List.assoc_opt p acc with
              | Some _ -> List.map (fun (q, m) -> if q = p then (q, m + 1) else (q, m)) acc
              | None -> acc @ [ (p, 1) ])
            [] r.Wafl_core.Crash_matrix.points
        in
        List.iter (fun (p, n) -> Printf.printf "  %-24s x%d\n" p n) counts;
        match r.Wafl_core.Crash_matrix.violations with
        | [] -> Printf.printf "crash matrix: every point recovered clean\n"
        | vs ->
          List.iter
            (fun v -> Format.printf "VIOLATION: %a@." Wafl_core.Crash_matrix.pp_violation v)
            vs;
          Printf.eprintf "waflsim: crash matrix found %d violation(s)\n" (List.length vs);
          exit 1))))))
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:
         "Kill the system at every instrumented CP/cleaner point, remount, repair, and \
          verify recovery invariants (no lost acknowledged op, no double-allocated block, \
          clean Iron check)")
    Term.(
      const run $ seed_arg $ cps_arg $ ops_arg $ no_cleaner_arg $ foreground_rebuild_arg
      $ lazy_rebuild_arg $ verify_mount_arg $ fault_spec_arg $ jobs_arg $ backend_arg
      $ alloc_domains_arg $ scrub_rate_arg $ metrics_out_arg $ metrics_format_arg
      $ trace_out_arg $ trace_capacity_arg $ timeseries_out_arg $ latency_arg $ slo_arg)

(* `waflsim top`: drive an aged random-overwrite system and redraw a
   one-screen health view (current CP phase, picks/s, search ns/block,
   fragmentation trend) every --stats-interval CPs.  The screen is only
   cleared between redraws when stdout is a terminal, so piped output
   stays a readable sequence of frames. *)
let top_cmd =
  let cps_arg =
    Arg.(
      value
      & opt (positive_int "--cps") 120
      & info [ "cps" ] ~docv:"N" ~doc:"Consistency points to run.")
  in
  let ops_arg =
    Arg.(
      value
      & opt (positive_int "--ops") 1000
      & info [ "ops" ] ~docv:"N" ~doc:"Staged client operations per CP.")
  in
  let stats_interval_arg =
    Arg.(
      value
      & opt (positive_int "--stats-interval") 5
      & info [ "stats-interval" ] ~docv:"N" ~doc:"Redraw the health view every $(docv) CPs.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let ssd_arg =
    Arg.(
      value & flag
      & info [ "ssd" ]
          ~doc:
            "Run the workload on an all-SSD aggregate (erase-block AAs) instead of the \
             default HDD one; the health view then shows the FTL's write amplification, \
             per-stream relocations and peak erase-block wear.  Combine with \
             $(b,--temp-classes)/$(b,--streams) to watch segregation live.")
  in
  let run s cps ops interval seed ssd metrics_out metrics_format trace_out trace_capacity
      timeseries_out latency slos fault_spec jobs backend alloc_domains scrub_rate
      temp_classes streams wear_bias =
    let scale = parse_scale s in
    with_streams ~temp_classes ~streams ~wear_bias (fun () ->
    with_backend backend (fun () ->
    with_jobs jobs (fun () ->
    with_alloc_domains alloc_domains (fun () ->
    with_scrub scrub_rate (fun () ->
        with_fault_spec (parse_fault_spec fault_spec) (fun () ->
            Option.iter check_writable metrics_out;
            Option.iter check_writable trace_out;
            Option.iter check_writable timeseries_out;
            (* top always installs telemetry: the health view is the point *)
            let tel =
              Telemetry.create ~trace_capacity ~series_capacity:(max 1024 cps)
                ~tracing:(trace_out <> None)
                ?latency:(make_latency ~latency ~slos) ()
            in
            let tty = Unix.isatty Unix.stdout in
            let redraw () =
              if tty then print_string "\027[2J\027[H";
              print_string (Report.health tel);
              flush stdout
            in
            let samples = ref 0 in
            Telemetry.on_sample tel
              (Some
                 (fun () ->
                   incr samples;
                   if !samples mod interval = 0 then redraw ()));
            Telemetry.with_installed tel (fun () ->
                Fun.protect
                  ~finally:(fun () ->
                    flush_telemetry ~metrics_out ~metrics_format ~trace_out
                      ~timeseries_out tel)
                  (fun () ->
                    let rg =
                      if ssd then Common.ssd_raid_group scale ~aa_stripes:None
                      else Common.hdd_raid_group scale
                    in
                    let agg_blocks =
                      rg.Wafl_core.Config.data_devices * rg.Wafl_core.Config.device_blocks
                    in
                    let config =
                      Wafl_core.Config.make ~raid_groups:[ rg ]
                        ~vols:
                          [ { Wafl_core.Config.name = "lun"; blocks = agg_blocks * 9 / 8;
                              aa_blocks = Some 1024; policy = Wafl_core.Config.Best_aa } ]
                        ~aggregate_policy:Wafl_core.Config.Best_aa ~seed ()
                    in
                    let fs = Wafl_core.Fs.create config in
                    let vol = Wafl_core.Fs.vol fs "lun" in
                    let rng = Wafl_util.Rng.split (Wafl_core.Fs.rng fs) in
                    let spec =
                      { Wafl_workload.Aging.fill_fraction = 0.55; fragmentation_cps = 20;
                        writes_per_cp = 1000; file = 1 }
                    in
                    let working_set = Wafl_workload.Aging.age fs vol ~spec ~rng () in
                    let workload =
                      Wafl_workload.Random_overwrite.create fs vol ~working_set
                        ~rng:(Wafl_util.Rng.split rng) ()
                    in
                    for _ = 1 to cps do
                      ignore (Wafl_workload.Random_overwrite.step workload ops)
                    done;
                    redraw ())))))))
        )
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run an aged random-overwrite workload and render a live one-screen health view \
          (CP phase spans, picks/s, search ns/block, free-space fragmentation trend)")
    Term.(
      const run $ scale_arg $ cps_arg $ ops_arg $ stats_interval_arg $ seed_arg $ ssd_arg
      $ metrics_out_arg $ metrics_format_arg $ trace_out_arg $ trace_capacity_arg
      $ timeseries_out_arg $ latency_arg $ slo_arg $ fault_spec_arg $ jobs_arg
      $ backend_arg $ alloc_domains_arg $ scrub_rate_arg $ temp_classes_arg $ streams_arg
      $ wear_bias_arg)

(* Bare `waflsim --metrics-out m.json` (no subcommand) runs the scalar
   suite — the cheapest end-to-end workload that exercises every
   instrumented layer — so the telemetry flags work without picking an
   experiment.  Without any output flag the default remains the help page. *)
let default =
  let run s metrics_out metrics_format trace_out trace_capacity timeseries_out latency
      slos jobs backend alloc_domains scrub_rate =
    if
      metrics_out = None && trace_out = None && timeseries_out = None && (not latency)
      && slos = []
    then `Help (`Pager, None)
    else begin
      with_backend backend (fun () ->
          with_jobs jobs (fun () ->
              with_alloc_domains alloc_domains (fun () ->
                  with_scrub scrub_rate (fun () ->
                      with_telemetry ~metrics_out ~metrics_format ~trace_out
                        ~trace_capacity ~timeseries_out ~latency ~slos
                        (fun () -> Scalars.print (Scalars.run ~scale:(parse_scale s) ()))))));
      `Ok ()
    end
  in
  Term.(
    ret
      (const run $ scale_arg $ metrics_out_arg $ metrics_format_arg $ trace_out_arg
     $ trace_capacity_arg $ timeseries_out_arg $ latency_arg $ slo_arg $ jobs_arg
     $ backend_arg $ alloc_domains_arg $ scrub_rate_arg))

let () =
  let info = Cmd.info "waflsim" ~doc:"WAFL free-block search reproduction experiments" in
  exit (Cmd.eval (Cmd.group ~default info [ fig6_cmd; fig7_cmd; fig8_cmd; fig8_streams_cmd; fig9_cmd; fig10_cmd; scalars_cmd; ablation_cmd; all_cmd; crash_matrix_cmd; top_cmd ]))
