test/test_device.ml: Alcotest Array Azcs Ftl Fun Gen Hdd List Object_store Printf Profile QCheck QCheck_alcotest Smr Wafl_device Wafl_util
