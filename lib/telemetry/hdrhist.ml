(* Log-linear histogram: exact unit-width buckets for values < 64, then 32
   linear sub-buckets per power-of-two decade.  Layout (sub_bits = 5):

     v < 32           -> index v                      (width 1)
     v >= 32          -> msb = floor(log2 v)
                         index = (msb - 4) * 32 + ((v >> (msb - 5)) & 31)

   The v in [32,64) decade also gets width-1 buckets under this formula, so
   everything below 64 is exact.  The max index for v = max_int (msb 61) is
   (61-5+1)*32 + 31 = 1855; n_buckets = 1856 covers every OCaml int. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let n_buckets = (63 - sub_bits) * sub_count

type t = {
  counts : int array; (* n_buckets *)
  mutable total : int;
  mutable sum : int;
  mutable max_v : int;
  mutable min_v : int; (* max_int when empty *)
}

let create () =
  {
    counts = Array.make n_buckets 0;
    total = 0;
    sum = 0;
    max_v = 0;
    min_v = max_int;
  }

(* Tail-recursive msb search; steps a byte at a time first so ns-scale
   values (< 2^40) take ~5+5 iterations.  No heap allocation. *)
let rec msb_fine acc v = if v >= 2 then msb_fine (acc + 1) (v lsr 1) else acc
let rec msb_coarse acc v =
  if v >= 256 then msb_coarse (acc + 8) (v lsr 8) else msb_fine acc v

let index_of v =
  if v <= 0 then 0
  else if v < sub_count then v
  else
    let msb = msb_coarse 0 v in
    ((msb - sub_bits + 1) lsl sub_bits)
    + ((v lsr (msb - sub_bits)) land (sub_count - 1))

let bucket_bounds i =
  if i < 2 * sub_count then (i, i)
  else
    let dec = (i lsr sub_bits) - 1 and sub = i land (sub_count - 1) in
    let lo = (sub_count + sub) lsl dec in
    (lo, lo + (1 lsl dec) - 1)

let record_n t v k =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + k;
  t.total <- t.total + k;
  t.sum <- t.sum + (v * k);
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let record t v = record_n t v 1
let count t = t.total
let sum t = t.sum
let max_value t = t.max_v
let min_value t = if t.total = 0 then 0 else t.min_v
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let acc = ref 0 and res = ref t.max_v and found = ref false in
    let i = ref 0 in
    while (not !found) && !i < n_buckets do
      let c = t.counts.(!i) in
      if c > 0 then begin
        acc := !acc + c;
        if !acc >= rank then begin
          let _, hi = bucket_bounds !i in
          res := if hi > t.max_v then t.max_v else hi;
          found := true
        end
      end;
      incr i
    done;
    !res
  end

let merge_into ~dst src =
  for i = 0 to n_buckets - 1 do
    let c = src.counts.(i) in
    if c > 0 then dst.counts.(i) <- dst.counts.(i) + c
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum + src.sum;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.max_v <- 0;
  t.min_v <- max_int

let iter_nonempty t f =
  for i = 0 to n_buckets - 1 do
    let c = t.counts.(i) in
    if c > 0 then begin
      let lo, hi = bucket_bounds i in
      f ~lo ~hi ~count:c
    end
  done
