lib/sim/load.mli: Cost_model Wafl_core Wafl_util
