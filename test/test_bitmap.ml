(* Tests for Wafl_bitmap: bitmap, metafile, activemap. *)

open Wafl_bitmap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Bitmap --- *)

let test_bitmap_set_get () =
  let b = Bitmap.create ~bits:100 in
  check_bool "initially clear" false (Bitmap.get b 0);
  Bitmap.set b 0;
  Bitmap.set b 99;
  check_bool "bit 0" true (Bitmap.get b 0);
  check_bool "bit 99" true (Bitmap.get b 99);
  check_bool "bit 50" false (Bitmap.get b 50);
  Bitmap.clear b 0;
  check_bool "cleared" false (Bitmap.get b 0)

let test_bitmap_bounds () =
  let b = Bitmap.create ~bits:10 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitmap: index out of bounds") (fun () ->
      ignore (Bitmap.get b 10));
  Alcotest.check_raises "set negative" (Invalid_argument "Bitmap: index out of bounds") (fun () ->
      Bitmap.set b (-1))

let test_bitmap_range_ops () =
  let b = Bitmap.create ~bits:1000 in
  Bitmap.set_range b ~start:100 ~len:300;
  check_int "count" 300 (Bitmap.count_set b);
  check_bool "edge before" false (Bitmap.get b 99);
  check_bool "first" true (Bitmap.get b 100);
  check_bool "last" true (Bitmap.get b 399);
  check_bool "edge after" false (Bitmap.get b 400);
  Bitmap.clear_range b ~start:150 ~len:100;
  check_int "after clear" 200 (Bitmap.count_set b);
  check_bool "hole start" false (Bitmap.get b 150);
  check_bool "hole end" false (Bitmap.get b 249);
  check_bool "kept" true (Bitmap.get b 250)

let test_bitmap_count_in () =
  let b = Bitmap.create ~bits:256 in
  Bitmap.set b 10;
  Bitmap.set b 64;
  Bitmap.set b 65;
  Bitmap.set b 200;
  check_int "window" 3 (Bitmap.count_set_in b ~start:10 ~len:60);
  check_int "free in window" 57 (Bitmap.count_clear_in b ~start:10 ~len:60);
  check_int "all" 4 (Bitmap.count_set_in b ~start:0 ~len:256)

let test_bitmap_find () =
  let b = Bitmap.create ~bits:200 in
  Bitmap.set_range b ~start:0 ~len:150;
  Alcotest.(check (option int)) "first clear" (Some 150) (Bitmap.find_first_clear b ~from:0);
  Alcotest.(check (option int)) "first clear from 160" (Some 160)
    (Bitmap.find_first_clear b ~from:160);
  Alcotest.(check (option int)) "first set" (Some 0) (Bitmap.find_first_set b ~from:0);
  Alcotest.(check (option int)) "first set from 100" (Some 100)
    (Bitmap.find_first_set b ~from:100);
  Alcotest.(check (option int)) "set after end" None (Bitmap.find_first_set b ~from:150);
  let full = Bitmap.create ~bits:64 in
  Bitmap.set_range full ~start:0 ~len:64;
  Alcotest.(check (option int)) "no clear" None (Bitmap.find_first_clear full ~from:0)

let test_bitmap_free_extents () =
  let b = Bitmap.create ~bits:100 in
  Bitmap.set_range b ~start:10 ~len:10;
  Bitmap.set_range b ~start:50 ~len:5;
  let extents = Bitmap.free_extents b ~start:0 ~len:100 in
  check_int "three runs" 3 (List.length extents);
  (match extents with
  | [ a; b'; c ] ->
    check_int "run1 start" 0 (Wafl_block.Extent.start a);
    check_int "run1 len" 10 (Wafl_block.Extent.len a);
    check_int "run2 start" 20 (Wafl_block.Extent.start b');
    check_int "run2 len" 30 (Wafl_block.Extent.len b');
    check_int "run3 start" 55 (Wafl_block.Extent.start c);
    check_int "run3 len" 45 (Wafl_block.Extent.len c)
  | _ -> Alcotest.fail "unexpected extents");
  (* windowed *)
  let windowed = Bitmap.free_extents b ~start:15 ~len:10 in
  check_int "window run" 1 (List.length windowed);
  match windowed with
  | [ e ] ->
    check_int "window start" 20 (Wafl_block.Extent.start e);
    check_int "window len" 5 (Wafl_block.Extent.len e)
  | _ -> Alcotest.fail "unexpected window"

let prop_bitmap_count_matches_naive =
  QCheck.Test.make ~name:"count_set_in matches naive count" ~count:100
    QCheck.(pair (list (int_bound 499)) (pair (int_bound 400) (int_bound 99)))
    (fun (sets, (start, len)) ->
      let b = Bitmap.create ~bits:500 in
      List.iter (fun i -> Bitmap.set b i) sets;
      let naive = ref 0 in
      for i = start to start + len - 1 do
        if Bitmap.get b i then incr naive
      done;
      Bitmap.count_set_in b ~start ~len = !naive)

let prop_bitmap_free_extents_cover =
  QCheck.Test.make ~name:"free_extents exactly covers clear bits" ~count:100
    QCheck.(list (int_bound 299))
    (fun sets ->
      let b = Bitmap.create ~bits:300 in
      List.iter (fun i -> Bitmap.set b i) sets;
      let extents = Bitmap.free_extents b ~start:0 ~len:300 in
      let from_extents = Hashtbl.create 64 in
      List.iter
        (fun e ->
          for i = Wafl_block.Extent.start e to Wafl_block.Extent.last e do
            Hashtbl.replace from_extents i ()
          done)
        extents;
      let ok = ref true in
      for i = 0 to 299 do
        let in_ext = Hashtbl.mem from_extents i in
        if in_ext = Bitmap.get b i then ok := false
      done;
      !ok)

(* --- word-at-a-time kernels vs naive per-bit references ---

   Every kernel property runs once per {!Pagestore} backend: the heap
   bytes and the off-heap bigarray share the word layout, so the same
   naive per-bit reference must hold on both. *)

let on_backends f =
  List.for_all
    (fun backend -> Pagestore.with_default backend f)
    [ Pagestore.Heap; Pagestore.Bigarray ]

(* Random bitmap of [bits] bits with a ragged window [start, start+len). *)
let ragged_window_gen bits =
  QCheck.(
    triple
      (list (int_bound (bits - 1)))
      (int_bound (bits - 1))
      (int_bound (bits - 1)))

let make_bitmap bits sets =
  let b = Bitmap.create ~bits in
  List.iter (fun i -> Bitmap.set b i) sets;
  b

let clamp_window bits start len = (start, min len (bits - start))

let prop_fold_clear_matches_naive =
  QCheck.Test.make ~name:"fold_clear_in matches naive clear-bit scan" ~count:200
    (ragged_window_gen 500)
    (fun (sets, start, len) ->
      on_backends (fun () ->
          let start, len = clamp_window 500 start len in
          let b = make_bitmap 500 sets in
          let naive = ref [] in
          for i = start + len - 1 downto start do
            if not (Bitmap.get b i) then naive := i :: !naive
          done;
          let folded =
            List.rev (Bitmap.fold_clear_in b ~start ~len ~init:[] ~f:(fun acc i -> i :: acc))
          in
          folded = !naive))

let prop_harvest_matches_fold =
  QCheck.Test.make ~name:"harvest_clear_into matches fold_clear_in" ~count:200
    (ragged_window_gen 500)
    (fun (sets, start, len) ->
      on_backends (fun () ->
          let start, len = clamp_window 500 start len in
          let b = make_bitmap 500 sets in
          let dst = Array.make 500 (-1) in
          let n = Bitmap.harvest_clear_into b ~start ~len ~offset:1000 ~dst ~pos:0 in
          let harvested = Array.to_list (Array.sub dst 0 n) in
          let expected =
            List.rev
              (Bitmap.fold_clear_in b ~start ~len ~init:[] ~f:(fun acc i -> (i + 1000) :: acc))
          in
          harvested = expected))

let prop_find_first_matches_naive =
  QCheck.Test.make ~name:"find_first_clear/set match naive scans" ~count:200
    QCheck.(pair (list (int_bound 299)) (int_bound 299))
    (fun (sets, from) ->
      on_backends (fun () ->
          let b = make_bitmap 300 sets in
          let naive target =
            let rec go i =
              if i >= 300 then None else if Bitmap.get b i = target then Some i else go (i + 1)
            in
            go from
          in
          Bitmap.find_first_clear b ~from = naive false
          && Bitmap.find_first_set b ~from = naive true))

let prop_fill_range_matches_naive =
  QCheck.Test.make ~name:"set_range/clear_range match per-bit loops" ~count:200
    (ragged_window_gen 500)
    (fun (sets, start, len) ->
      on_backends (fun () ->
          let start, len = clamp_window 500 start len in
          let fast = make_bitmap 500 sets in
          let slow = make_bitmap 500 sets in
          Bitmap.set_range fast ~start ~len;
          for i = start to start + len - 1 do
            Bitmap.set slow i
          done;
          let set_ok = Bitmap.equal fast slow in
          Bitmap.clear_range fast ~start ~len;
          for i = start to start + len - 1 do
            Bitmap.clear slow i
          done;
          set_ok && Bitmap.equal fast slow))

let prop_count_kernels_match_naive =
  QCheck.Test.make ~name:"count_set_in/count_clear_in/free_run_stats match naive" ~count:200
    (ragged_window_gen 500)
    (fun (sets, start, len) ->
      on_backends (fun () ->
          let start, len = clamp_window 500 start len in
          let b = make_bitmap 500 sets in
          let set = ref 0 and runs = ref 0 and largest = ref 0 and cur = ref 0 in
          for i = start to start + len - 1 do
            if Bitmap.get b i then begin
              incr set;
              cur := 0
            end
            else begin
              if !cur = 0 then incr runs;
              incr cur;
              if !cur > !largest then largest := !cur
            end
          done;
          Bitmap.count_set_in b ~start ~len = !set
          && Bitmap.count_clear_in b ~start ~len = len - !set
          && Bitmap.free_run_stats b ~start ~len = (!runs, !largest)))

let prop_clear_mask32_matches_naive =
  QCheck.Test.make ~name:"clear_mask32 matches naive 32-bit window" ~count:200
    QCheck.(pair (list (int_bound 299)) (int_bound 299))
    (fun (sets, pos) ->
      on_backends (fun () ->
          let b = make_bitmap 300 sets in
          let naive = ref 0 in
          for i = 31 downto 0 do
            naive := !naive lsl 1;
            if pos + i < 300 && not (Bitmap.get b (pos + i)) then naive := !naive lor 1
          done;
          Bitmap.clear_mask32 b pos = !naive))

(* The two backends are bit-for-bit interchangeable: the same operation
   sequence yields equal state (checked across backends through
   [Pagestore.equal]) and every read-side kernel agrees. *)
let prop_backends_bit_identical =
  QCheck.Test.make ~name:"heap and bigarray backends produce identical state" ~count:200
    (ragged_window_gen 500)
    (fun (sets, start, len) ->
      let start, len = clamp_window 500 start len in
      let build backend =
        Pagestore.with_default backend (fun () ->
            let b = make_bitmap 500 sets in
            Bitmap.set_range b ~start ~len;
            if len > 2 then Bitmap.clear_range b ~start:(start + 1) ~len:(len - 2);
            b)
      in
      let h = build Pagestore.Heap and g = build Pagestore.Bigarray in
      Bitmap.backend h = Pagestore.Heap
      && Bitmap.backend g = Pagestore.Bigarray
      && Bitmap.equal h g
      && Bitmap.count_set h = Bitmap.count_set g
      && Bitmap.find_first_clear h ~from:0 = Bitmap.find_first_clear g ~from:0
      && Bitmap.free_extents h ~start:0 ~len:500 = Bitmap.free_extents g ~start:0 ~len:500)

let test_clear_mask32 () =
  let b = Bitmap.create ~bits:100 in
  Bitmap.set b 0;
  Bitmap.set b 2;
  Bitmap.set b 33;
  (* from bit 0: bits 0 and 2 are set, 33 is outside the 32-bit window *)
  check_int "mask from 0" (lnot 0b101 land 0xFFFFFFFF) (Bitmap.clear_mask32 b 0);
  (* from bit 2: set bits at offsets 0 (=2) and 31 (=33) *)
  check_int "mask from 2" (lnot ((1 lsl 31) lor 1) land 0xFFFFFFFF) (Bitmap.clear_mask32 b 2);
  (* near the end: only bits [90, 100) exist; the rest must read as used *)
  check_int "ragged tail" ((1 lsl 10) - 1) (Bitmap.clear_mask32 b 90)

let test_iter_clear_words_window () =
  let b = Bitmap.create ~bits:200 in
  Bitmap.set_range b ~start:0 ~len:200;
  Bitmap.clear b 70;
  Bitmap.clear b 130;
  let hits = ref [] in
  Bitmap.iter_clear_words b ~start:65 ~len:70 ~f:(fun ~base ~mask ->
      let m = ref mask in
      while !m <> 0L do
        hits := (base + Wafl_util.Bitops.ctz64 !m) :: !hits;
        m := Int64.logand !m (Int64.sub !m 1L)
      done);
  Alcotest.(check (list int)) "only in-window clear bits" [ 70; 130 ] (List.rev !hits)

let test_bitmap_blit () =
  let a = Bitmap.create ~bits:128 in
  Bitmap.set_range a ~start:10 ~len:50;
  let b = Bitmap.create ~bits:128 in
  Bitmap.blit ~src:a ~dst:b;
  check_bool "equal after blit" true (Bitmap.equal a b);
  Bitmap.set b 0;
  check_bool "copies are independent" false (Bitmap.equal a b)

(* --- Metafile --- *)

let test_metafile_paging () =
  let m = Metafile.create ~blocks:100_000 () in
  check_int "pages" 4 (Metafile.pages m);
  check_int "page of 0" 0 (Metafile.page_of_block m 0);
  check_int "page of 32767" 0 (Metafile.page_of_block m 32767);
  check_int "page of 32768" 1 (Metafile.page_of_block m 32768);
  check_int "page of 99999" 3 (Metafile.page_of_block m 99_999)

let test_metafile_alloc_free () =
  let m = Metafile.create ~blocks:1000 () in
  Metafile.allocate m 10;
  check_bool "allocated" true (Metafile.is_allocated m 10);
  Alcotest.check_raises "double alloc"
    (Invalid_argument "Metafile.allocate: VBN already allocated") (fun () ->
      Metafile.allocate m 10);
  Metafile.free m 10;
  check_bool "freed" false (Metafile.is_allocated m 10);
  Alcotest.check_raises "double free" (Invalid_argument "Metafile.free: VBN already free")
    (fun () -> Metafile.free m 10)

let test_metafile_dirty_tracking () =
  let m = Metafile.create ~blocks:100_000 () in
  check_int "clean" 0 (Metafile.dirty_pages m);
  Metafile.allocate m 5;
  Metafile.allocate m 6;
  check_int "one dirty page for colocated" 1 (Metafile.dirty_pages m);
  Metafile.allocate m 40_000;
  check_int "two dirty" 2 (Metafile.dirty_pages m);
  let written = Metafile.flush m in
  check_int "flushed 2" 2 written;
  check_int "clean again" 0 (Metafile.dirty_pages m);
  let stats = Metafile.stats m in
  check_int "cumulative writes" 2 stats.Metafile.page_writes;
  check_int "flushes" 1 stats.Metafile.flushes

let test_metafile_colocation_economy () =
  (* The §2.5 claim: colocated allocations dirty fewer metafile pages. *)
  let colocated = Metafile.create ~blocks:1_000_000 () in
  for i = 0 to 999 do
    Metafile.allocate colocated i
  done;
  let scattered = Metafile.create ~blocks:1_000_000 () in
  for i = 0 to 999 do
    Metafile.allocate scattered (i * 1000)
  done;
  check_int "colocated: 1 page" 1 (Metafile.dirty_pages colocated);
  check_bool "scattered dirties many" true (Metafile.dirty_pages scattered > 20)

let test_metafile_scan_read () =
  let m = Metafile.create ~blocks:100_000 () in
  check_int "scan all" 4 (Metafile.scan_read m ~start:0 ~len:100_000);
  check_int "scan one page" 1 (Metafile.scan_read m ~start:0 ~len:32768);
  check_int "scan straddling" 2 (Metafile.scan_read m ~start:32760 ~len:16);
  check_int "reads accounted" 7 (Metafile.stats m).Metafile.page_reads

let test_metafile_allocate_range () =
  let m = Metafile.create ~blocks:1000 () in
  Metafile.allocate_range m ~start:100 ~len:50;
  check_int "used" 50 (Metafile.used_count m ~start:0 ~len:1000);
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Metafile.allocate_range: range not fully free") (fun () ->
      Metafile.allocate_range m ~start:140 ~len:20)

let test_metafile_scan_read_bounds () =
  let m = Metafile.create ~blocks:100_000 () in
  Alcotest.check_raises "scan past end" (Invalid_argument "Metafile.scan_read: range out of bounds")
    (fun () -> ignore (Metafile.scan_read m ~start:99_000 ~len:2000));
  Alcotest.check_raises "negative start" (Invalid_argument "Metafile.scan_read: range out of bounds")
    (fun () -> ignore (Metafile.scan_read m ~start:(-1) ~len:10));
  Alcotest.check_raises "negative len" (Invalid_argument "Metafile.scan_read: range out of bounds")
    (fun () -> ignore (Metafile.scan_read m ~start:0 ~len:(-1)));
  (* empty and exactly-at-the-end ranges are legal *)
  check_int "empty scan" 0 (Metafile.scan_read m ~start:50_000 ~len:0);
  check_int "scan ending at the boundary" 1 (Metafile.scan_read m ~start:99_999 ~len:1);
  check_int "only the boundary scan accounted" 1 (Metafile.stats m).Metafile.page_reads

let test_metafile_page_of_block_bounds () =
  let m = Metafile.create ~blocks:100_000 () in
  Alcotest.check_raises "page of oob VBN" (Invalid_argument "Metafile: VBN out of bounds")
    (fun () -> ignore (Metafile.page_of_block m 100_000));
  Alcotest.check_raises "page of negative VBN" (Invalid_argument "Metafile: VBN out of bounds")
    (fun () -> ignore (Metafile.page_of_block m (-1)))

(* The power-of-two page shift and the division fallback must agree: a
   metafile with a non-power-of-two page size pages identically to the
   naive [vbn / page_bits] map. *)
let test_metafile_non_pow2_pages () =
  let m = Metafile.create ~page_bits:1000 ~blocks:10_500 () in
  check_int "pages" 11 (Metafile.pages m);
  check_int "page of 999" 0 (Metafile.page_of_block m 999);
  check_int "page of 1000" 1 (Metafile.page_of_block m 1000);
  check_int "page of 10499" 10 (Metafile.page_of_block m 10_499);
  check_int "straddling scan" 2 (Metafile.scan_read m ~start:990 ~len:20);
  Metafile.allocate m 999;
  Metafile.allocate m 1000;
  check_int "two dirty pages across the boundary" 2 (Metafile.dirty_pages m)

let test_metafile_snapshot_load () =
  let m = Metafile.create ~blocks:5000 () in
  Metafile.allocate m 42;
  Metafile.allocate m 4999;
  let snap = Metafile.snapshot m in
  Metafile.free m 42;
  Metafile.load m snap;
  check_bool "restored 42" true (Metafile.is_allocated m 42);
  check_bool "restored 4999" true (Metafile.is_allocated m 4999);
  check_int "load clears dirty" 0 (Metafile.dirty_pages m)

(* --- Activemap --- *)

let test_activemap_delayed_free () =
  let a = Activemap.create ~blocks:1000 () in
  Activemap.allocate a 7;
  check_bool "allocated" true (Activemap.is_allocated a 7);
  Activemap.queue_free a 7;
  check_bool "still allocated until commit" true (Activemap.is_allocated a 7);
  check_int "pending" 1 (Activemap.pending_free_count a);
  let result = Activemap.commit a in
  Alcotest.(check (list int)) "freed batch" [ 7 ] result.Activemap.freed;
  check_bool "free after commit" false (Activemap.is_allocated a 7);
  check_int "no pending" 0 (Activemap.pending_free_count a)

let test_activemap_no_realloc_pending () =
  let a = Activemap.create ~blocks:100 () in
  Activemap.allocate a 3;
  Activemap.queue_free a 3;
  Alcotest.check_raises "pending blocks reallocation"
    (Invalid_argument "Activemap.allocate: VBN has a pending free") (fun () ->
      Activemap.allocate a 3)

let test_activemap_double_queue () =
  let a = Activemap.create ~blocks:100 () in
  Activemap.allocate a 3;
  Activemap.queue_free a 3;
  Alcotest.check_raises "double queue"
    (Invalid_argument "Activemap.queue_free: VBN already queued") (fun () ->
      Activemap.queue_free a 3)

let test_activemap_queue_unallocated () =
  let a = Activemap.create ~blocks:100 () in
  Alcotest.check_raises "free of free VBN"
    (Invalid_argument "Activemap.queue_free: VBN not allocated") (fun () ->
      Activemap.queue_free a 3)

let test_activemap_commit_order () =
  let a = Activemap.create ~blocks:100 () in
  List.iter (Activemap.allocate a) [ 1; 2; 3 ];
  Activemap.queue_free a 2;
  Activemap.queue_free a 1;
  Activemap.queue_free a 3;
  let result = Activemap.commit a in
  Alcotest.(check (list int)) "order preserved" [ 2; 1; 3 ] result.Activemap.freed

let test_activemap_commit_flushes_metafile () =
  let a = Activemap.create ~blocks:100_000 () in
  Activemap.allocate a 5;
  Activemap.allocate a 50_000;
  let r = Activemap.commit a in
  check_int "two pages written" 2 r.Activemap.pages_written;
  let r2 = Activemap.commit a in
  check_int "nothing dirty" 0 r2.Activemap.pages_written

let prop_activemap_free_count_consistent =
  QCheck.Test.make ~name:"free_count = blocks - allocated after commits" ~count:100
    QCheck.(list (int_bound 499))
    (fun allocs ->
      let a = Activemap.create ~blocks:500 () in
      let allocated = Hashtbl.create 64 in
      List.iter
        (fun vbn ->
          if not (Hashtbl.mem allocated vbn) then begin
            Activemap.allocate a vbn;
            Hashtbl.replace allocated vbn ()
          end)
        allocs;
      Activemap.free_count a ~start:0 ~len:500 = 500 - Hashtbl.length allocated)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_bitmap_count_matches_naive; prop_bitmap_free_extents_cover;
        prop_activemap_free_count_consistent ]
  in
  let kernel_qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_fold_clear_matches_naive; prop_harvest_matches_fold;
        prop_find_first_matches_naive; prop_fill_range_matches_naive;
        prop_count_kernels_match_naive; prop_clear_mask32_matches_naive;
        prop_backends_bit_identical ]
  in
  Alcotest.run "wafl_bitmap"
    [
      ( "bitmap",
        [
          Alcotest.test_case "set/get" `Quick test_bitmap_set_get;
          Alcotest.test_case "bounds" `Quick test_bitmap_bounds;
          Alcotest.test_case "range ops" `Quick test_bitmap_range_ops;
          Alcotest.test_case "count in range" `Quick test_bitmap_count_in;
          Alcotest.test_case "find" `Quick test_bitmap_find;
          Alcotest.test_case "free extents" `Quick test_bitmap_free_extents;
          Alcotest.test_case "blit" `Quick test_bitmap_blit;
        ] );
      ( "word kernels",
        [
          Alcotest.test_case "clear_mask32" `Quick test_clear_mask32;
          Alcotest.test_case "iter_clear_words window" `Quick test_iter_clear_words_window;
        ]
        @ kernel_qsuite );
      ( "metafile",
        [
          Alcotest.test_case "paging" `Quick test_metafile_paging;
          Alcotest.test_case "alloc/free" `Quick test_metafile_alloc_free;
          Alcotest.test_case "dirty tracking" `Quick test_metafile_dirty_tracking;
          Alcotest.test_case "colocation economy" `Quick test_metafile_colocation_economy;
          Alcotest.test_case "scan read" `Quick test_metafile_scan_read;
          Alcotest.test_case "scan read bounds" `Quick test_metafile_scan_read_bounds;
          Alcotest.test_case "page_of_block bounds" `Quick test_metafile_page_of_block_bounds;
          Alcotest.test_case "non-power-of-two pages" `Quick test_metafile_non_pow2_pages;
          Alcotest.test_case "allocate range" `Quick test_metafile_allocate_range;
          Alcotest.test_case "snapshot/load" `Quick test_metafile_snapshot_load;
        ] );
      ( "activemap",
        [
          Alcotest.test_case "delayed free" `Quick test_activemap_delayed_free;
          Alcotest.test_case "no realloc while pending" `Quick test_activemap_no_realloc_pending;
          Alcotest.test_case "double queue" `Quick test_activemap_double_queue;
          Alcotest.test_case "queue unallocated" `Quick test_activemap_queue_unallocated;
          Alcotest.test_case "commit order" `Quick test_activemap_commit_order;
          Alcotest.test_case "commit flushes" `Quick test_activemap_commit_flushes_metafile;
        ]
        @ qsuite );
    ]
