open Wafl_device

type media = Hdd of Profile.hdd | Ssd of Profile.ssd | Smr of Profile.smr

type raid_group_spec = {
  media : media;
  data_devices : int;
  parity_devices : int;
  device_blocks : int;
  aa_stripes : int option;
}

type object_range_spec = {
  profile : Profile.object_store;
  blocks : int;
  aa_blocks : int option;
}

type allocation_policy = Best_aa | Random_aa | First_fit

type vol_spec = {
  name : string;
  blocks : int;
  aa_blocks : int option;
  policy : allocation_policy;
}

type t = {
  raid_groups : raid_group_spec list;
  object_ranges : object_range_spec list;
  vols : vol_spec list;
  aggregate_policy : allocation_policy;
  rg_score_threshold : int option;
  seed : int;
}

let default_raid_group =
  {
    media = Hdd Profile.default_hdd;
    data_devices = 6;
    parity_devices = 1;
    device_blocks = 65536;
    aa_stripes = None;
  }

let default_vol ~name ~blocks = { name; blocks; aa_blocks = None; policy = Best_aa }

let make ?(raid_groups = [ default_raid_group ]) ?(object_ranges = []) ?(vols = [])
    ?(aggregate_policy = Best_aa) ?rg_score_threshold ?(seed = 42) () =
  { raid_groups; object_ranges; vols; aggregate_policy; rg_score_threshold; seed }

let aa_stripes_for spec =
  let media_default =
    match spec.media with
    | Hdd _ -> Wafl_aa.Sizing.default_hdd_stripes
    | Ssd p -> Wafl_aa.Sizing.ssd_stripes p
    | Smr p -> Wafl_aa.Sizing.smr_stripes ~azcs:true p
  in
  let wanted = Option.value spec.aa_stripes ~default:media_default in
  max 1 (min wanted spec.device_blocks)

let media_name = function Hdd _ -> "hdd" | Ssd _ -> "ssd" | Smr _ -> "smr"
