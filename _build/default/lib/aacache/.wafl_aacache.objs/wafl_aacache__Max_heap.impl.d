lib/aacache/max_heap.ml: Array Fun List Option
