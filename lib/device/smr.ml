type stats = {
  blocks_written : int;
  sequential_writes : int;
  random_writes : int;
  rmw_blocks : int;
  total_us : float;
}

type t = {
  profile : Profile.smr;
  n_blocks : int;
  write_pointers : int array;  (* per zone *)
  mutable last_pos : int option;  (* None before any write *)
  mutable blocks_written : int;
  mutable sequential_writes : int;
  mutable random_writes : int;
  mutable rmw_blocks : int;
  mutable total_us : float;
  mutable fault : Wafl_fault.Fault.device option;
}

let create ?(profile = Profile.default_smr) ~blocks () =
  assert (blocks > 0 && profile.Profile.zone_blocks > 0);
  let zones = Wafl_util.Bitops.ceil_div blocks profile.Profile.zone_blocks in
  {
    profile;
    n_blocks = blocks;
    write_pointers = Array.make zones 0;
    last_pos = None;
    blocks_written = 0;
    sequential_writes = 0;
    random_writes = 0;
    rmw_blocks = 0;
    total_us = 0.0;
    fault = None;
  }

let blocks t = t.n_blocks
let profile t = t.profile
let zones t = Array.length t.write_pointers
let set_fault t f = t.fault <- f
let fault t = t.fault

let zone_of_block t b =
  if b < 0 || b >= t.n_blocks then invalid_arg "Smr: block out of bounds";
  b / t.profile.Profile.zone_blocks

let write_pointer t ~zone =
  if zone < 0 || zone >= zones t then invalid_arg "Smr: zone out of bounds";
  t.write_pointers.(zone)

let write_block t pos =
  let zone = zone_of_block t pos in
  let zone_start = zone * t.profile.Profile.zone_blocks in
  let offset = pos - zone_start in
  let wp = t.write_pointers.(zone) in
  let p = t.profile in
  let cost = ref p.Profile.seq_write_us in
  let continues = match t.last_pos with Some last -> pos = last + 1 | None -> false in
  if continues then t.sequential_writes <- t.sequential_writes + 1
  else begin
    t.random_writes <- t.random_writes + 1;
    cost := !cost +. p.Profile.seek_us
  end;
  if offset < wp then begin
    if not continues then begin
      (* Repositioning into the middle of a written shingle zone: the drive
         must read and rewrite the zone's shingled tail.  A contiguous run
         of writes below the write pointer is one such read-modify-write
         pass, so only its first write pays. *)
      let tail = wp - offset in
      t.rmw_blocks <- t.rmw_blocks + tail;
      cost := !cost +. (float_of_int tail *. p.Profile.zone_rmw_us_per_block)
    end
  end
  else t.write_pointers.(zone) <- offset + 1;
  t.blocks_written <- t.blocks_written + 1;
  t.total_us <- t.total_us +. !cost;
  t.last_pos <- Some pos

(* A dropped (failed) write never moves the head or the write pointer; a
   torn write pays the full mechanical cost — the head moved, only the
   content is garbage, which the shingle model does not track per block. *)
let write t pos =
  match t.fault with
  | None -> write_block t pos
  | Some dev -> (
    match Wafl_fault.Fault.write dev ~block:pos with
    | Wafl_fault.Fault.Written | Wafl_fault.Fault.Written_torn -> write_block t pos
    | Wafl_fault.Fault.Failed -> ())

let write_stream t positions =
  let rmw_before = t.rmw_blocks in
  let random_before = t.random_writes in
  List.iter (write t) positions;
  Wafl_telemetry.Telemetry.add "device.smr.blocks_written" (List.length positions);
  Wafl_telemetry.Telemetry.add "device.smr.rmw_blocks" (t.rmw_blocks - rmw_before);
  Wafl_telemetry.Telemetry.add "device.smr.random_writes" (t.random_writes - random_before)

let reset_zone t ~zone =
  if zone < 0 || zone >= zones t then invalid_arg "Smr: zone out of bounds";
  t.write_pointers.(zone) <- 0

let stats t =
  {
    blocks_written = t.blocks_written;
    sequential_writes = t.sequential_writes;
    random_writes = t.random_writes;
    rmw_blocks = t.rmw_blocks;
    total_us = t.total_us;
  }

let reset_stats t =
  t.blocks_written <- 0;
  t.sequential_writes <- 0;
  t.random_writes <- 0;
  t.rmw_blocks <- 0;
  t.total_us <- 0.0
