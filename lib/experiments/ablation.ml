open Wafl_util
open Wafl_core
open Wafl_sim
open Wafl_workload
open Wafl_aacache

type bin_width_point = {
  bin_width : int;
  guaranteed_error : float;
  worst_observed_error : float;
  mean_pick_score : float;
}

type policy_point = {
  policy : string;
  peak_throughput : float;
  mean_chosen_free : float;
  stripe_fullness : float;
}

type threshold_point = {
  threshold : int option;
  total_blocks_per_s : float;
  partial_stripe_fraction : float;
}

type cleaner_point = {
  strategy : string;
  relocations_per_aa : float;
  blocks_reclaimed : int;
}

type result = {
  bin_widths : bin_width_point list;
  policies : policy_point list;
  thresholds : threshold_point list;
  cleaner : cleaner_point list;
}

(* --- HBPS bin width: error / resolution trade-off --- *)

let bin_width_point ~rng bin_width =
  let n = 1024 and max_score = 32768 in
  let scores = Array.init n (fun _ -> Rng.int rng (max_score + 1)) in
  let h = Hbps.create ~bin_width ~capacity:128 ~max_score ~scores () in
  Hbps.replenish h;
  let worst = ref 0.0 in
  let pick_sum = ref 0.0 in
  let picks = ref 0 in
  for _cp = 1 to 100 do
    for _ = 1 to 64 do
      Hbps.update h ~aa:(Rng.int rng n) ~score:(Rng.int rng (max_score + 1))
    done;
    if Hbps.needs_replenish h then Hbps.replenish h;
    match Hbps.pick_best h with
    | Some (_, s) ->
      incr picks;
      pick_sum := !pick_sum +. float_of_int s;
      let true_max = ref 0 in
      for aa = 0 to n - 1 do
        true_max := max !true_max (Hbps.score h ~aa)
      done;
      worst :=
        Float.max !worst (float_of_int (!true_max - s) /. float_of_int max_score)
    | None -> ()
  done;
  {
    bin_width;
    guaranteed_error = float_of_int bin_width /. float_of_int max_score;
    worst_observed_error = !worst;
    mean_pick_score = (if !picks = 0 then 0.0 else !pick_sum /. float_of_int !picks);
  }

(* --- Allocation policy on an aged HDD system --- *)

let policy_name = function
  | Config.Best_aa -> "best-AA (paper)"
  | Config.Random_aa -> "random (baseline)"
  | Config.First_fit -> "first-fit"

let policy_point scale policy =
  let rg = Common.hdd_raid_group scale in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "v"; blocks = agg_blocks; aa_blocks = Some 4096;
            policy = Config.Best_aa } ]
      ~aggregate_policy:policy ~seed:4242 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "v" in
  let rng = Rng.split (Fs.rng fs) in
  let spec =
    { Aging.fill_fraction = 0.5; fragmentation_cps = 40; writes_per_cp = 1500; file = 1 }
  in
  let working_set = Aging.age fs vol ~spec ~rng () in
  let walloc = Fs.write_alloc fs in
  Write_alloc.reset_take_stats walloc;
  let range0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  (match range0.Aggregate.group with Some g -> Wafl_raid.Group.reset g | None -> ());
  let workload = Random_overwrite.create fs vol ~working_set ~rng:(Rng.split rng) () in
  let cps = match scale with Common.Quick -> 40 | Common.Full -> 100 in
  let costs =
    Load.measure_service_time ~cps ~ops_per_cp:800
      ~step:(fun n -> Random_overwrite.step workload n)
      ()
  in
  let n, sum = Write_alloc.phys_take_trace walloc in
  let full = Wafl_aa.Topology.full_aa_capacity range0.Aggregate.topology in
  let fullness =
    match range0.Aggregate.group with
    | Some g -> Wafl_raid.Group.stripe_fullness (Wafl_raid.Group.totals g)
    | None -> 0.0
  in
  {
    policy = policy_name policy;
    peak_throughput = 1e6 /. costs.Cost_model.service_time_us;
    mean_chosen_free =
      (if n = 0 then 0.0 else float_of_int sum /. float_of_int n /. float_of_int full);
    stripe_fullness = fullness;
  }

(* --- RG fragmentation threshold (§3.3.1) --- *)

let threshold_point scale threshold =
  let rg = Common.hdd_raid_group scale in
  let agg_blocks = 2 * rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make
      ~raid_groups:[ rg; rg ]
      ~vols:
        [ { Config.name = "v"; blocks = agg_blocks; aa_blocks = Some 4096;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ?rg_score_threshold:threshold ~seed:5151 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "v" in
  let rng = Rng.split (Fs.rng fs) in
  (* Heavily fragment RG0 only, so the threshold has something to skip. *)
  let aggregate = Fs.aggregate fs in
  let r0 = (Aggregate.ranges aggregate).(0) in
  let placed = ref 0 in
  let target = r0.Aggregate.blocks * 8 / 10 in
  while !placed < target do
    let pvbn = Aggregate.to_global r0 (Rng.int rng r0.Aggregate.blocks) in
    if not (Wafl_bitmap.Metafile.is_allocated (Aggregate.metafile aggregate) pvbn) then begin
      Aggregate.allocate aggregate ~pvbn;
      incr placed
    end
  done;
  Write_alloc.cp_finish (Fs.write_alloc fs);
  Rebuild.request aggregate Rebuild.Full;
  (* measure write efficiency *)
  let duration_us = ref 0.0 in
  let blocks = ref 0 in
  let full = ref 0 and partial = ref 0 in
  let offset = ref 0 in
  let cps = match scale with Common.Quick -> 20 | Common.Full -> 40 in
  for _ = 1 to cps do
    for i = 0 to 999 do
      Fs.stage_write fs ~vol ~file:1 ~offset:(!offset + i)
    done;
    offset := !offset + 1000;
    let r = Fs.run_cp fs in
    blocks := !blocks + r.Cp.blocks_allocated;
    List.iter
      (fun d ->
        full := !full + d.Cp.full_stripes;
        partial := !partial + d.Cp.partial_stripes)
      r.Cp.devices;
    duration_us := !duration_us +. (Cost_model.of_report r).Cost_model.cp_duration_us
  done;
  {
    threshold;
    total_blocks_per_s = float_of_int !blocks /. (!duration_us *. 1e-6);
    partial_stripe_fraction =
      (if !full + !partial = 0 then 0.0
       else float_of_int !partial /. float_of_int (!full + !partial));
  }

(* --- Cleaner strategy --- *)

let cleaner_point scale strategy =
  let rg = Common.hdd_raid_group scale in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "v"; blocks = agg_blocks; aa_blocks = Some 4096;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~seed:6161 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "v" in
  let rng = Rng.split (Fs.rng fs) in
  (* churn past the point where pristine AAs survive, so "emptiest" still
     means some relocation work *)
  let spec =
    { Aging.fill_fraction = 0.6; fragmentation_cps = 90; writes_per_cp = 1500; file = 1 }
  in
  ignore (Aging.age fs vol ~spec ~rng ());
  let n = match scale with Common.Quick -> 3 | Common.Full -> 8 in
  let report = Cleaner.clean_fs ~strategy fs ~aas_per_range:n in
  ignore (Fs.run_cp fs);
  {
    strategy =
      (match strategy with
      | Cleaner.Emptiest_first -> "emptiest-first (paper)"
      | Cleaner.Fullest_first -> "fullest-first");
    relocations_per_aa =
      (if report.Cleaner.aas_cleaned = 0 then 0.0
       else
         float_of_int report.Cleaner.blocks_relocated
         /. float_of_int report.Cleaner.aas_cleaned);
    blocks_reclaimed = report.Cleaner.blocks_relocated + report.Cleaner.blocks_reclaimed;
  }

let run ?(scale = Common.Quick) () =
  let rng = Rng.create ~seed:77 in
  {
    bin_widths =
      List.map (fun w -> bin_width_point ~rng:(Rng.split rng) w) [ 256; 1024; 4096; 16384 ];
    policies =
      List.map (policy_point scale) [ Config.Best_aa; Config.Random_aa; Config.First_fit ];
    thresholds = List.map (threshold_point scale) [ None; Some 512; Some 2048 ];
    cleaner = List.map (cleaner_point scale) [ Cleaner.Emptiest_first; Cleaner.Fullest_first ];
  }

let print r =
  Common.banner "Ablations: bin width, allocation policy, RG threshold, cleaner strategy";
  Printf.printf "\nHBPS bin width (32k score space, 1k chosen by the paper):\n";
  let tbl =
    Table.create
      ~columns:
        [ ("bin width", Table.Right); ("guaranteed err", Table.Right);
          ("worst observed", Table.Right); ("mean pick score", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        [
          string_of_int p.bin_width;
          Printf.sprintf "%.2f%%" (100.0 *. p.guaranteed_error);
          Printf.sprintf "%.2f%%" (100.0 *. p.worst_observed_error);
          Printf.sprintf "%.0f" p.mean_pick_score;
        ])
    r.bin_widths;
  Table.print tbl;
  Printf.printf "\nAllocation policy (aged HDD aggregate):\n";
  let tbl =
    Table.create
      ~columns:
        [ ("policy", Table.Left); ("capacity ops/s", Table.Right);
          ("chosen AA free", Table.Right); ("stripe fullness", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        [
          p.policy;
          Printf.sprintf "%.0f" p.peak_throughput;
          Printf.sprintf "%.0f%%" (100.0 *. p.mean_chosen_free);
          Printf.sprintf "%.0f%%" (100.0 *. p.stripe_fullness);
        ])
    r.policies;
  Table.print tbl;
  Printf.printf "\nRG fragmentation threshold (RG0 fragmented to 80%%, RG1 fresh):\n";
  let tbl =
    Table.create
      ~columns:
        [ ("threshold", Table.Left); ("blocks/s", Table.Right);
          ("partial stripes", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        [
          (match p.threshold with None -> "off" | Some v -> string_of_int v);
          Printf.sprintf "%.0f" p.total_blocks_per_s;
          Printf.sprintf "%.1f%%" (100.0 *. p.partial_stripe_fraction);
        ])
    r.thresholds;
  Table.print tbl;
  Printf.printf "\nSegment-cleaning strategy:\n";
  let tbl =
    Table.create
      ~columns:
        [ ("strategy", Table.Left); ("relocations/AA", Table.Right);
          ("blocks reclaimed", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        [
          p.strategy;
          Printf.sprintf "%.0f" p.relocations_per_aa;
          string_of_int p.blocks_reclaimed;
        ])
    r.cleaner;
  Table.print tbl;
  (* direction checks *)
  (match r.cleaner with
  | [ emptiest; fullest ] ->
    Common.paper_vs_measured ~metric:"cleaning emptiest relocates least"
      ~paper:"best ROI at top of cache"
      ~measured:
        (Printf.sprintf "%.0f vs %.0f relocations/AA" emptiest.relocations_per_aa
           fullest.relocations_per_aa)
      ~ok:(emptiest.relocations_per_aa < fullest.relocations_per_aa)
  | _ -> ());
  match r.bin_widths with
  | first :: _ ->
    Common.paper_vs_measured ~metric:"bin width bounds pick error"
      ~paper:"error <= width/max"
      ~measured:
        (String.concat ", "
           (List.map
              (fun p -> Printf.sprintf "%d:%.2f%%" p.bin_width (100.0 *. p.worst_observed_error))
              r.bin_widths))
      ~ok:
        (List.for_all
           (fun p -> p.worst_observed_error <= p.guaranteed_error +. 1e-9)
           r.bin_widths)
    |> fun () -> ignore first
  | [] -> ()
