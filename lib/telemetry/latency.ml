type op = Write | Overwrite

let op_index = function Write -> 0 | Overwrite -> 1
let op_name = function Write -> "write" | Overwrite -> "overwrite"
let all_ops = [ Write; Overwrite ]
let n_ops = 2

type model = {
  cpu_base_us_per_op : float;
  metafile_page_cpu_us : float;
  metafile_page_write_us : float;
  cache_work_unit_us : float;
  alloc_candidate_us : float;
}

(* Must stay field-for-field equal to Sim.Cost_model.default; a test pins
   this against Cost_model.latency_model Cost_model.default. *)
let default_model =
  {
    cpu_base_us_per_op = 100.0;
    metafile_page_cpu_us = 15.0;
    metafile_page_write_us = 25.0;
    cache_work_unit_us = 0.05;
    alloc_candidate_us = 8.0;
  }

(* One recording domain's private histograms: a cell per (op, vol slot)
   plus an overall one, created lazily so idle cells cost nothing.  Only
   the owning domain writes; readers merge possibly-stale counts and
   become exact after the domain's next synchronising edge (same contract
   as Registry histograms). *)
type shard = {
  cells : Hdrhist.t option array; (* n_ops * max_vols *)
  mutable overall : Hdrhist.t option;
}

(* Preallocated exemplar slot: every field is an immediate (ints and
   constant constructors), so capture is a handful of plain stores. *)
type slot = {
  mutable e_ns : int;
  mutable e_op : op;
  mutable e_vol : int;
  mutable e_cp : int;
  mutable e_phase : Span.kind;
}

type exemplar = {
  ex_ns : int;
  ex_op : op;
  ex_vol : int;
  ex_vol_name : string;
  ex_cp : int;
  ex_phase : Span.kind;
}

type t = {
  model : model;
  slo : Slo.t option;
  max_vols : int;
  lock : Mutex.t; (* guards shard-table growth only *)
  shards : shard option array Atomic.t; (* indexed by domain id *)
  (* Serial CP-boundary state below. *)
  vol_ids : int array; (* uid per slot; -1 = empty *)
  vol_names : string array;
  mutable vols_used : int;
  mutable prev_cp_us : float;
  mutable cps : int;
  mutable total_ops : int;
  mutable ex_threshold_ns : int; (* 0 = not yet armed *)
  ex_slots : slot array;
  mutable ex_next : int;
  mutable ex_count : int;
  slo_over : int array; (* per-objective violation scratch *)
  mutable last_reports : Slo.report list;
}

let create ?(model = default_model) ?slo ?(max_vols = 16) ?(max_exemplars = 32)
    () =
  if max_vols < 1 then invalid_arg "Latency.create: max_vols < 1";
  if max_exemplars < 1 then invalid_arg "Latency.create: max_exemplars < 1";
  {
    model;
    slo;
    max_vols;
    lock = Mutex.create ();
    shards = Atomic.make (Array.make 8 None);
    vol_ids = Array.make max_vols (-1);
    vol_names = Array.make max_vols "";
    vols_used = 0;
    prev_cp_us = 0.;
    cps = 0;
    total_ops = 0;
    ex_threshold_ns = 0;
    ex_slots =
      Array.init max_exemplars (fun _ ->
          { e_ns = 0; e_op = Write; e_vol = 0; e_cp = 0; e_phase = Span.Cp });
    ex_next = 0;
    ex_count = 0;
    slo_over =
      (match slo with
      | Some s -> Array.make (Array.length (Slo.thresholds_ns s)) 0
      | None -> [||]);
    last_reports = [];
  }

let model t = t.model
let slo t = t.slo

let vol_slot t ~uid ~name =
  let rec find i =
    if i >= t.vols_used then -1 else if t.vol_ids.(i) = uid then i else find (i + 1)
  in
  match find 0 with
  | i when i >= 0 -> i
  | _ ->
    if t.vols_used < t.max_vols then begin
      let i = t.vols_used in
      t.vol_ids.(i) <- uid;
      t.vol_names.(i) <- name;
      t.vols_used <- i + 1;
      i
    end
    else t.max_vols - 1 (* overflow volumes share the last slot *)

let vols t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((i, t.vol_names.(i)) :: acc)
  in
  go (t.vols_used - 1) []

(* --- recording ------------------------------------------------------- *)

let new_shard t =
  { cells = Array.make (n_ops * t.max_vols) None; overall = None }

(* Slow path: grow the shard table (Registry idiom — publish through the
   Atomic, grow under the lock, copy shard references). *)
let rec shard_for t =
  let id = (Domain.self () :> int) in
  let shards = Atomic.get t.shards in
  if id < Array.length shards then begin
    match shards.(id) with
    | Some s -> s
    | None ->
      let s = new_shard t in
      Mutex.lock t.lock;
      let shards = Atomic.get t.shards in
      (match shards.(id) with
      | Some _ -> ()
      | None -> shards.(id) <- Some s);
      Mutex.unlock t.lock;
      shard_for t
  end
  else begin
    Mutex.lock t.lock;
    let shards = Atomic.get t.shards in
    (if id >= Array.length shards then begin
       let n = ref (max 8 (Array.length shards)) in
       while !n <= id do
         n := !n * 2
       done;
       Atomic.set t.shards
         (Array.init !n (fun i ->
              if i < Array.length shards then shards.(i) else None))
     end);
    Mutex.unlock t.lock;
    shard_for t
  end

let cell_hist s idx =
  match s.cells.(idx) with
  | Some h -> h
  | None ->
    let h = Hdrhist.create () in
    s.cells.(idx) <- Some h;
    h

let overall_hist s =
  match s.overall with
  | Some h -> h
  | None ->
    let h = Hdrhist.create () in
    s.overall <- Some h;
    h

let record t ~op ~vol ns =
  let vol = if vol < 0 then 0 else if vol >= t.max_vols then t.max_vols - 1 else vol in
  let s = shard_for t in
  Hdrhist.record (cell_hist s ((op_index op * t.max_vols) + vol)) ns;
  Hdrhist.record (overall_hist s) ns

(* --- read side ------------------------------------------------------- *)

let merged ?op ?vol t =
  let dst = Hdrhist.create () in
  let shards = Atomic.get t.shards in
  Array.iter
    (function
      | None -> ()
      | Some s -> (
        match (op, vol) with
        | None, None -> (
          match s.overall with
          | Some h -> Hdrhist.merge_into ~dst h
          | None -> ())
        | _ ->
          List.iter
            (fun o ->
              match op with
              | Some o' when o' <> o -> ()
              | _ ->
                for v = 0 to t.max_vols - 1 do
                  match vol with
                  | Some v' when v' <> v -> ()
                  | _ -> (
                    match s.cells.((op_index o * t.max_vols) + v) with
                    | Some h -> Hdrhist.merge_into ~dst h
                    | None -> ())
                done)
            all_ops))
    shards;
  dst

let quantiles_ms ?op ?vol t =
  let h = merged ?op ?vol t in
  if Hdrhist.count h = 0 then (0., 0., 0.)
  else
    let ms q = float_of_int (Hdrhist.quantile h q) /. 1e6 in
    (ms 0.5, ms 0.99, ms 0.999)

let ops_recorded t = t.total_ops
let cps_recorded t = t.cps

let exemplars t =
  let n = min t.ex_count (Array.length t.ex_slots) in
  let out = ref [] in
  for i = 0 to n - 1 do
    let s = t.ex_slots.(i) in
    out :=
      {
        ex_ns = s.e_ns;
        ex_op = s.e_op;
        ex_vol = s.e_vol;
        ex_vol_name =
          (if s.e_vol >= 0 && s.e_vol < t.vols_used then t.vol_names.(s.e_vol)
           else "?");
        ex_cp = s.e_cp;
        ex_phase = s.e_phase;
      }
      :: !out
  done;
  List.sort (fun a b -> compare b.ex_ns a.ex_ns) !out

let phase_stack kind =
  let rec up k acc =
    let acc = Span.name k :: acc in
    match Span.parent k with None -> acc | Some p -> up p acc
  in
  String.concat " > " (up kind [])

let last_slo_reports t = t.last_reports

(* --- the modeled clock ----------------------------------------------- *)

let capture_exemplar t ~ns ~op ~vol ~phase =
  let cap = Array.length t.ex_slots in
  let i =
    if t.ex_count < cap then begin
      let i = t.ex_count in
      t.ex_count <- i + 1;
      i
    end
    else begin
      (* Ring is full: overwrite round-robin so late-run tails still land. *)
      let i = t.ex_next mod cap in
      t.ex_next <- t.ex_next + 1;
      i
    end
  in
  let s = t.ex_slots.(i) in
  s.e_ns <- ns;
  s.e_op <- op;
  s.e_vol <- vol;
  s.e_cp <- t.cps;
  s.e_phase <- phase

(* Record [count] ops of one (vol, op) run, positions [pos .. pos+count-1]
   of [n] in the arrival window.  Integer-only per-op arithmetic: zero
   minor-heap words in steady state. *)
let record_run t ~shard ~thr_ns ~op ~vol ~count ~pos ~n ~arrival_ns ~total_ns
    ~phase =
  let oi = op_index op in
  let cell = cell_hist shard ((oi * t.max_vols) + vol) in
  let overall = overall_hist shard in
  let n_thr = Array.length thr_ns in
  for j = 0 to count - 1 do
    let p = pos + j in
    let ns = total_ns + (arrival_ns * (n - 1 - p) / n) in
    Hdrhist.record cell ns;
    Hdrhist.record overall ns;
    for k = 0 to n_thr - 1 do
      if ns > thr_ns.(k) then t.slo_over.(k) <- t.slo_over.(k) + 1
    done;
    if t.ex_threshold_ns > 0 && ns >= t.ex_threshold_ns then
      capture_exemplar t ~ns ~op ~vol ~phase
  done;
  pos + count

let cp_record t ~groups ~pages ~cache_work ~candidates ~device_us ~spike_us
    ~pick_ns ~harvest_ns =
  let n = List.fold_left (fun a (_, f, o) -> a + f + o) 0 groups in
  if n > 0 then begin
    let m = t.model in
    let fn = float_of_int n in
    let cache_us = float_of_int cache_work *. m.cache_work_unit_us in
    let scan_us = float_of_int candidates *. m.alloc_candidate_us in
    let pages_us =
      float_of_int pages *. (m.metafile_page_cpu_us +. m.metafile_page_write_us)
    in
    let cpu_us = (m.cpu_base_us_per_op *. fn) +. cache_us in
    let total_us = cpu_us +. scan_us +. pages_us +. device_us in
    (* Ops accumulated while the previous CP drained; the first CP has no
       predecessor, so its batch is treated as arriving over its own
       duration. *)
    let arrival_us = if t.cps = 0 then total_us else t.prev_cp_us in
    let total_ns = int_of_float (total_us *. 1e3) in
    let arrival_ns = int_of_float (arrival_us *. 1e3) in
    (* Blame = dominant modeled component of this CP.  device_us already
       includes the injected spike penalty, so a big spike pulls blame to
       the device flush; spike_us only breaks the tie toward the device
       when penalties are a material share. *)
    let device_eff =
      if spike_us > 0.25 *. device_us then device_us *. 1.5 else device_us
    in
    let phase =
      if device_eff >= scan_us && device_eff >= pages_us && device_eff >= cpu_us
      then Span.Device_flush
      else if scan_us >= pages_us && scan_us >= cpu_us then
        if harvest_ns > pick_ns then Span.Harvest else Span.Pick
      else if pages_us >= cpu_us then Span.Activemap_commit
      else Span.Cp
    in
    let thr_ns =
      match t.slo with Some s -> Slo.thresholds_ns s | None -> [||]
    in
    let shard = shard_for t in
    let pos = ref 0 in
    List.iter
      (fun (vol, fresh, over) ->
        let vol =
          if vol < 0 then 0
          else if vol >= t.max_vols then t.max_vols - 1
          else vol
        in
        pos :=
          record_run t ~shard ~thr_ns ~op:Write ~vol ~count:fresh ~pos:!pos ~n
            ~arrival_ns ~total_ns ~phase;
        pos :=
          record_run t ~shard ~thr_ns ~op:Overwrite ~vol ~count:over ~pos:!pos
            ~n ~arrival_ns ~total_ns ~phase)
      groups;
    t.total_ops <- t.total_ops + n;
    t.prev_cp_us <- total_us;
    t.cps <- t.cps + 1;
    (* Re-arm the exemplar threshold from the merged p999 so "top bucket"
       tracks the whole run, not just this CP. *)
    t.ex_threshold_ns <- max 1 (Hdrhist.quantile (merged t) 0.999);
    (match t.slo with
    | Some s ->
      t.last_reports <- Slo.cp_tick s ~ops:n ~violations:t.slo_over;
      Array.fill t.slo_over 0 (Array.length t.slo_over) 0
    | None -> ())
  end
