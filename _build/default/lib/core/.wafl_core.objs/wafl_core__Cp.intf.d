lib/core/cp.mli: Flexvol Wafl_device Write_alloc
