lib/block/chain.ml: Extent Format Int List
