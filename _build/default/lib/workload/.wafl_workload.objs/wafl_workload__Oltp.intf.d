lib/workload/oltp.mli: Wafl_core Wafl_util
