type t = {
  metafile : Metafile.t;
  pending : Bitmap.t;      (* dedupe guard for queued frees *)
  mutable queue : int list; (* reversed order of queue_free calls *)
  mutable n_pending : int;
}

type commit_result = { freed : int list; pages_written : int }

let create ?page_bits ~blocks () =
  {
    metafile = Metafile.create ?page_bits ~blocks ();
    pending = Bitmap.create ~bits:blocks;
    queue = [];
    n_pending = 0;
  }

let metafile t = t.metafile
let blocks t = Metafile.blocks t.metafile
let is_allocated t vbn = Metafile.is_allocated t.metafile vbn

let allocate t vbn =
  if Bitmap.get t.pending vbn then
    invalid_arg "Activemap.allocate: VBN has a pending free";
  Metafile.allocate t.metafile vbn

(* Trusted hot-path variant: a free VBN cannot have a pending free
   (queue_free only accepts allocated VBNs), so when the caller
   guarantees the VBN is free — harvest rings do — both checks above are
   redundant. *)
let[@inline] allocate_harvested t vbn = Metafile.allocate_harvested t.metafile vbn

let queue_free t vbn =
  if not (Metafile.is_allocated t.metafile vbn) then
    invalid_arg "Activemap.queue_free: VBN not allocated";
  if Bitmap.get t.pending vbn then
    invalid_arg "Activemap.queue_free: VBN already queued";
  Bitmap.set t.pending vbn;
  t.queue <- vbn :: t.queue;
  t.n_pending <- t.n_pending + 1

let pending_free_count t = t.n_pending
let has_pending_free t vbn = Bitmap.get t.pending vbn

let commit t =
  let freed = List.rev t.queue in
  List.iter
    (fun vbn ->
      Metafile.free t.metafile vbn;
      Bitmap.clear t.pending vbn)
    freed;
  t.queue <- [];
  t.n_pending <- 0;
  let pages_written = Metafile.flush t.metafile in
  Wafl_telemetry.Telemetry.add "activemap.frees_committed" (List.length freed);
  Wafl_telemetry.Telemetry.add "activemap.pages_written" pages_written;
  { freed; pages_written }

let free_count t ~start ~len = Metafile.free_count t.metafile ~start ~len
let usable_free_count = free_count
