lib/util/histo.ml: Array Bitops
