(** TopAA metafiles: persisted AA-cache seeds (§3.4).

    Rebuilding an AA cache from scratch needs a linear walk of the bitmap
    metafiles, which delays the first CP after a failover or reboot.
    Instead WAFL persists, per RAID-aware cache, one 4KiB block holding the
    best few hundred (AA, score) pairs — enough to sustain CPs while the
    full max-heap is rebuilt in the background — and, per RAID-agnostic
    cache, the HBPS's two pages verbatim, so that cache is operational
    immediately.

    Blocks are protected by a CRC and a versioned magic; corruption is
    reported as an error (the real system would fall back to the full scan,
    or to WAFL Iron for repair).

    Blocks live as {!Wafl_bitmap.Pagestore} pages, so they share the
    bitmaps' backend: a bigarray-backed system keeps its whole persisted
    free-space state off the OCaml heap. *)

type error = Bad_magic | Bad_version | Bad_checksum | Bad_layout

val pp_error : Format.formatter -> error -> unit

val block_size : int
(** 4096. *)

(** {2 RAID-aware: one block of best (aa, score) pairs} *)

val raid_aware_capacity : int
(** Entries that fit one block alongside header and CRC (510; the paper
    quotes 512 with no header overhead). *)

val save_raid_aware : Max_heap.t -> Wafl_bitmap.Pagestore.t
(** Serialize the heap's best entries into one 4KiB block. *)

val load_raid_aware : Wafl_bitmap.Pagestore.t -> ((int * int) list, error) result
(** Decode the (aa, score) seed list, best first. *)

(** {2 RAID-agnostic: the two HBPS pages} *)

type hbps_seed = {
  bin_width : int;
  max_score : int;
  bin_counts : int array;      (** histogram page: AAs per score bin *)
  entries : (int * int) list;  (** list page: (aa, bin) in stored order *)
}

val save_hbps : Hbps.t -> Wafl_bitmap.Pagestore.t * Wafl_bitmap.Pagestore.t
(** (histogram page, list page), each exactly one 4KiB block. *)

val load_hbps :
  Wafl_bitmap.Pagestore.t * Wafl_bitmap.Pagestore.t -> (hbps_seed, error) result

val seed_scores : hbps_seed -> (int * int) list
(** Approximate (aa, score) pairs for the listed AAs, scoring each at its
    bin's lower bound — what a freshly mounted cache offers before exact
    scores are recomputed. *)
