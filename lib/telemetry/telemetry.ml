type value = Int of int | Float of float | String of string

type snapshot = { seq : int; label : string; fields : (string * value) list }

type t = {
  registry : Registry.t;
  tracer : Tracer.t;
  spans : Span.t;
  series : Timeseries.t;
  latency : Latency.t option;
  mutable snapshots_rev : snapshot list;
  mutable snapshot_seq : int;
  mutable sample_hook : (unit -> unit) option;
}

let create ?trace_capacity ?series_capacity ?clock ?(tracing = false) ?latency
    () =
  {
    registry = Registry.create ();
    tracer = Tracer.create ?capacity:trace_capacity ~enabled:tracing ();
    spans = Span.create ?clock ();
    series = Timeseries.create ?capacity:series_capacity ();
    latency;
    snapshots_rev = [];
    snapshot_seq = 0;
    sample_hook = None;
  }

let registry t = t.registry
let tracer t = t.tracer
let spans t = t.spans
let series t = t.series
let latency t = t.latency
let snapshots t = List.rev t.snapshots_rev

let add_snapshot t ~label fields =
  t.snapshot_seq <- t.snapshot_seq + 1;
  t.snapshots_rev <- { seq = t.snapshot_seq; label; fields } :: t.snapshots_rev

let on_sample t hook = t.sample_hook <- hook

let reset t =
  Registry.clear t.registry;
  Tracer.clear t.tracer;
  Span.clear t.spans;
  Timeseries.clear t.series;
  t.snapshots_rev <- [];
  t.snapshot_seq <- 0

(* --- process-wide installation --- *)

let state : t option ref = ref None

let install t = state := Some t
let uninstall () = state := None
let installed () = !state
let is_active () = !state <> None

let with_installed t f =
  install t;
  Fun.protect ~finally:uninstall f

(* --- helpers against the installed instance --- *)

let incr name =
  match !state with None -> () | Some t -> Registry.incr (Registry.counter t.registry name)

let add name n =
  match !state with None -> () | Some t -> Registry.add (Registry.counter t.registry name) n

let set_gauge name v =
  match !state with None -> () | Some t -> Registry.set (Registry.gauge t.registry name) v

let max_gauge name v =
  match !state with None -> () | Some t -> Registry.set_max (Registry.gauge t.registry name) v

let observe name v =
  match !state with
  | None -> ()
  | Some t -> Registry.observe (Registry.histogram t.registry name) v

let record ~label fields =
  match !state with None -> () | Some t -> add_snapshot t ~label (fields ())

(* --- spans (branch-only no-ops when uninstalled) --- *)

let span_enter k = match !state with None -> () | Some t -> Span.enter t.spans k
let span_exit k = match !state with None -> () | Some t -> Span.exit t.spans k
let now_ns () = match !state with None -> 0 | Some _ -> Span.now_ns ()
let span_total_ns k = match !state with None -> 0 | Some t -> Span.total_ns t.spans k

(* --- time series --- *)

let sample ~columns row =
  match !state with
  | None -> ()
  | Some t ->
    Timeseries.set_columns t.series (columns ());
    Timeseries.append t.series (row ());
    (match t.sample_hook with None -> () | Some hook -> hook ())

(* --- trace emitters --- *)

let trace_cp_begin () =
  match !state with None -> () | Some t -> Tracer.cp_begin t.tracer

let trace_cp_end ~ops ~blocks ~freed ~pages ~device_us =
  match !state with
  | None -> ()
  | Some t -> Tracer.cp_end t.tracer ~ops ~blocks ~freed ~pages ~device_us

let trace_aa_pick ~space ~aa ~score =
  match !state with None -> () | Some t -> Tracer.aa_pick t.tracer ~space ~aa ~score

let trace_cache_replenish ~space ~listed =
  match !state with None -> () | Some t -> Tracer.cache_replenish t.tracer ~space ~listed

let trace_tetris_write ~space ~tetrises ~full_stripes ~partial_stripes =
  match !state with
  | None -> ()
  | Some t -> Tracer.tetris_write t.tracer ~space ~tetrises ~full_stripes ~partial_stripes

let trace_cleaner_pass ~aas ~relocated ~reclaimed =
  match !state with
  | None -> ()
  | Some t -> Tracer.cleaner_pass t.tracer ~aas ~relocated ~reclaimed

let trace_free_commit ~space ~freed ~pages =
  match !state with
  | None -> ()
  | Some t -> Tracer.free_commit t.tracer ~space ~freed ~pages

let trace_fault_inject ~space ~transients ~torn ~failed ~spikes =
  match !state with
  | None -> ()
  | Some t -> Tracer.fault_inject t.tracer ~space ~transients ~torn ~failed ~spikes

let trace_io_retry ~space ~retries ~ok =
  match !state with None -> () | Some t -> Tracer.io_retry t.tracer ~space ~retries ~ok

(* --- request latency (branch-only no-ops without an installed instance
   carrying a Latency.t) --- *)

let lat_active () =
  match !state with None -> false | Some t -> t.latency <> None

let lat_vol_slot ~uid ~name =
  match !state with
  | None -> -1
  | Some t -> (
    match t.latency with
    | None -> -1
    | Some lat -> Latency.vol_slot lat ~uid ~name)

let lat_cp_record ~groups ~pages ~cache_work ~candidates ~device_us ~spike_us
    ~pick_ns ~harvest_ns =
  match !state with
  | None -> ()
  | Some t -> (
    match t.latency with
    | None -> ()
    | Some lat ->
      Latency.cp_record lat ~groups ~pages ~cache_work ~candidates ~device_us
        ~spike_us ~pick_ns ~harvest_ns;
      (* Surface the SLO state as ordinary metrics + a trace event, so
         burn rates ride the existing export/health paths. *)
      List.iter
        (fun (r : Slo.report) ->
          Registry.set
            (Registry.gauge t.registry ("slo." ^ r.r_name ^ ".burn_fast"))
            r.r_burn_fast;
          Registry.set
            (Registry.gauge t.registry ("slo." ^ r.r_name ^ ".burn_slow"))
            r.r_burn_slow;
          if r.r_violations > 0 then
            Registry.add
              (Registry.counter t.registry ("slo." ^ r.r_name ^ ".violations"))
              r.r_violations;
          if r.r_breach then begin
            Registry.incr
              (Registry.counter t.registry ("slo." ^ r.r_name ^ ".breaches"));
            Tracer.slo_violation t.tracer ~slo:r.r_name
              ~burn_fast:r.r_burn_fast ~burn_slow:r.r_burn_slow
              ~violations:r.r_violations
          end)
        (Latency.last_slo_reports lat))

let lat_quantiles_ms ~vol =
  match !state with
  | None -> (0., 0., 0.)
  | Some t -> (
    match t.latency with
    | None -> (0., 0., 0.)
    | Some lat ->
      if vol < 0 then Latency.quantiles_ms lat
      else Latency.quantiles_ms ~vol lat)
