lib/experiments/common.ml: Config Printf Profile Wafl_core Wafl_device
