examples/hbps_sort.ml: Array Hbps Printf Rng Sys Wafl_aacache Wafl_util
