(* Tests for Wafl_core: aggregate, flexvol, write allocator, CP, mount,
   cleaner — unit and integration. *)

open Wafl_core
open Wafl_bitmap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* List-returning shims over the _into allocation API: the library only
   exposes the zero-allocation array forms, but a list is easier to poke
   at in assertions. *)
let allocate_pvbns w n =
  let dst = Array.make (max 1 n) 0 in
  let got = Write_alloc.allocate_pvbns_into w ~dst n in
  Array.to_list (Array.sub dst 0 got)

let allocate_vvbns w vol n =
  let dst = Array.make (max 1 n) 0 in
  let got = Write_alloc.allocate_vvbns_into w vol ~dst n in
  Array.to_list (Array.sub dst 0 got)

(* Naive per-bit list gathers — the references the harvest kernels are
   checked against (they used to live in the library as the list-based
   allocation path). *)
let free_vbns_of_aa agg (r : Aggregate.range) aa =
  let mf = Aggregate.metafile agg in
  let acc = ref [] in
  Wafl_aa.Topology.iter_aa_vbns r.Aggregate.topology aa ~f:(fun local ->
      let pvbn = Aggregate.to_global r local in
      if not (Metafile.is_allocated mf pvbn) then acc := pvbn :: !acc);
  List.rev !acc

let free_vvbns_of_aa vol aa =
  let mf = Flexvol.metafile vol in
  let acc = ref [] in
  Wafl_aa.Topology.iter_aa_vbns (Flexvol.topology vol) aa ~f:(fun vvbn ->
      if not (Metafile.is_allocated mf vvbn) then acc := vvbn :: !acc);
  List.rev !acc

(* A small test system: 2 HDD RAID groups (4+1, 8192 blocks/device),
   AA = 512 stripes, one FlexVol. *)
let small_config ?(aggregate_policy = Config.Best_aa) ?(vol_policy = Config.Best_aa)
    ?rg_score_threshold ?(vol_blocks = 65536) ?(seed = 7) () =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ { Config.name = "vol0"; blocks = vol_blocks; aa_blocks = None; policy = vol_policy } ]
    ~aggregate_policy ?rg_score_threshold ~seed ()

(* --- Aggregate --- *)

let test_aggregate_layout () =
  let fs = Fs.create (small_config ()) in
  let agg = Fs.aggregate fs in
  check_int "two ranges" 2 (Array.length (Aggregate.ranges agg));
  check_int "total" (2 * 4 * 8192) (Aggregate.total_blocks agg);
  let r0 = (Aggregate.ranges agg).(0) and r1 = (Aggregate.ranges agg).(1) in
  check_int "r0 base" 0 r0.Aggregate.base;
  check_int "r1 base" (4 * 8192) r1.Aggregate.base;
  check_int "aa count per range (8192/512)" 16 (Array.length r0.Aggregate.scores);
  check_bool "caches on" true (r0.Aggregate.cache <> None);
  (* range_of_pvbn picks the right range *)
  check_int "pvbn in r1" 1 (Aggregate.range_of_pvbn agg (4 * 8192)).Aggregate.index;
  check_int "roundtrip local" 0 (Aggregate.to_local r1 (4 * 8192))

let test_aggregate_alloc_free_cycle () =
  let fs = Fs.create (small_config ()) in
  let agg = Fs.aggregate fs in
  Aggregate.allocate agg ~pvbn:100;
  check_int "free count drops" (Aggregate.total_blocks agg - 1) (Aggregate.free_blocks agg);
  Aggregate.queue_free agg ~pvbn:100;
  check_int "still allocated until commit" (Aggregate.total_blocks agg - 1)
    (Aggregate.free_blocks agg);
  let pages, freed = Aggregate.commit_frees agg in
  check_bool "pages written" true (pages >= 1);
  Alcotest.(check (list int)) "freed list" [ 100 ] freed;
  check_int "free again" (Aggregate.total_blocks agg) (Aggregate.free_blocks agg)

(* --- Flexvol --- *)

let test_flexvol_mapping () =
  let vol =
    Flexvol.create { Config.name = "v"; blocks = 65536; aa_blocks = None; policy = Config.Best_aa }
  in
  check_int "blocks" 65536 (Flexvol.blocks vol);
  Flexvol.map_vvbn vol ~vvbn:5 ~pvbn:1234;
  Alcotest.(check (option int)) "mapped" (Some 1234) (Flexvol.pvbn_of_vvbn vol 5);
  check_int "one used" (65536 - 1) (Flexvol.free_blocks vol);
  Flexvol.queue_unmap vol ~vvbn:5;
  Alcotest.(check (option int)) "unmapped immediately" None (Flexvol.pvbn_of_vvbn vol 5);
  check_int "vvbn still held" (65536 - 1) (Flexvol.free_blocks vol);
  let pages = Flexvol.commit_frees vol in
  check_bool "flushed" true (pages >= 1);
  check_int "vvbn released" 65536 (Flexvol.free_blocks vol)

let test_flexvol_files () =
  let vol =
    Flexvol.create { Config.name = "v"; blocks = 1000; aa_blocks = None; policy = Config.Best_aa }
  in
  check_bool "no old block" true (Flexvol.write_file vol ~file:1 ~offset:0 ~vvbn:10 = None);
  Alcotest.(check (option int)) "overwrite returns old" (Some 10)
    (Flexvol.write_file vol ~file:1 ~offset:0 ~vvbn:20);
  Alcotest.(check (option int)) "read" (Some 20) (Flexvol.read_file vol ~file:1 ~offset:0);
  check_int "blocks in file" 1 (Flexvol.file_blocks vol ~file:1)

let test_flexvol_remap () =
  let vol =
    Flexvol.create { Config.name = "v"; blocks = 1000; aa_blocks = None; policy = Config.Best_aa }
  in
  Flexvol.map_vvbn vol ~vvbn:7 ~pvbn:111;
  check_int "remap returns old" 111 (Flexvol.remap_vvbn vol ~vvbn:7 ~pvbn:222);
  Alcotest.(check (option int)) "new home" (Some 222) (Flexvol.pvbn_of_vvbn vol 7);
  check_int "vvbn usage unchanged" (1000 - 1) (Flexvol.free_blocks vol)

(* --- Write allocator --- *)

let test_walloc_allocates_n () =
  let fs = Fs.create (small_config ()) in
  let w = Fs.write_alloc fs in
  let blocks = allocate_pvbns w 1000 in
  check_int "got 1000" 1000 (List.length blocks);
  check_int "no duplicates" 1000 (List.length (List.sort_uniq Int.compare blocks));
  (* all marked allocated *)
  let mf = Aggregate.metafile (Fs.aggregate fs) in
  List.iter (fun pvbn -> check_bool "allocated" true (Metafile.is_allocated mf pvbn)) blocks

let test_walloc_spreads_over_ranges () =
  let fs = Fs.create (small_config ()) in
  let w = Fs.write_alloc fs in
  let blocks = allocate_pvbns w 2000 in
  let agg = Fs.aggregate fs in
  let in_r0 = List.filter (fun p -> (Aggregate.range_of_pvbn agg p).Aggregate.index = 0) blocks in
  let in_r1 = List.filter (fun p -> (Aggregate.range_of_pvbn agg p).Aggregate.index = 1) blocks in
  check_bool "both ranges used" true (in_r0 <> [] && in_r1 <> []);
  (* equal emptiness -> roughly equal split *)
  let d = abs (List.length in_r0 - List.length in_r1) in
  check_bool "balanced" true (d < 400)

let test_walloc_best_aa_consumes_emptiest () =
  let fs = Fs.create (small_config ()) in
  let agg = Fs.aggregate fs in
  let w = Fs.write_alloc fs in
  (* Dirty AA 0 of range 0 heavily so it is no longer the best. *)
  let r0 = (Aggregate.ranges agg).(0) in
  Wafl_aa.Topology.iter_aa_vbns r0.Aggregate.topology 0 ~f:(fun local ->
      if local mod 2 = 0 then Aggregate.allocate agg ~pvbn:(Aggregate.to_global r0 local));
  Write_alloc.cp_finish w;
  (* Allocate a small burst: chosen AAs should be full-score ones, i.e.
     the traced mean score of taken AAs stays at capacity. *)
  let before = Write_alloc.aas_taken w in
  let _ = allocate_pvbns w 100 in
  let taken = Write_alloc.aas_taken w - before in
  check_bool "AAs were taken" true (taken > 0);
  let mean_score =
    float_of_int (Write_alloc.score_sum_taken w) /. float_of_int (Write_alloc.aas_taken w)
  in
  check_bool "mean taken score = full AA (2048)" true (mean_score > 2000.0)

let test_walloc_vvbns_sequential_colocated () =
  let fs = Fs.create (small_config ()) in
  let w = Fs.write_alloc fs in
  let vol = Fs.vol fs "vol0" in
  let vvbns = allocate_vvbns w vol 100 in
  check_int "got 100" 100 (List.length vvbns);
  (* empty volume + best-AA policy: strictly sequential from AA start *)
  let expected_start = List.hd vvbns in
  List.iteri (fun i v -> check_int "sequential" (expected_start + i) v) vvbns

let test_walloc_exhaustion () =
  (* tiny volume: ask for more vvbns than exist *)
  let fs = Fs.create (small_config ~vol_blocks:5000 ()) in
  let w = Fs.write_alloc fs in
  let vol = Fs.vol fs "vol0" in
  let vvbns = allocate_vvbns w vol 6000 in
  check_int "clamped to volume size" 5000 (List.length vvbns)

let test_walloc_random_policy_works () =
  let fs = Fs.create (small_config ~aggregate_policy:Config.Random_aa ~vol_policy:Config.Random_aa ()) in
  let w = Fs.write_alloc fs in
  let blocks = allocate_pvbns w 500 in
  check_int "random policy allocates" 500 (List.length blocks);
  check_int "distinct" 500 (List.length (List.sort_uniq Int.compare blocks))

let test_walloc_first_fit_policy () =
  let fs = Fs.create (small_config ~aggregate_policy:Config.First_fit ()) in
  let w = Fs.write_alloc fs in
  let blocks = allocate_pvbns w 100 in
  check_int "first fit allocates" 100 (List.length blocks)

(* --- harvest kernels vs the list-based gather --- *)

let test_harvest_matches_list_raid_aware () =
  let fs = Fs.create (small_config ()) in
  let agg = Fs.aggregate fs in
  let r0 = (Aggregate.ranges agg).(0) in
  (* fragment a few AAs with a deterministic pseudo-random pattern *)
  for aa = 0 to 3 do
    Wafl_aa.Topology.iter_aa_vbns r0.Aggregate.topology aa ~f:(fun local ->
        if (local * 2654435761) land 7 < 3 then
          Aggregate.allocate agg ~pvbn:(Aggregate.to_global r0 local))
  done;
  let dst = Array.make (Wafl_aa.Topology.full_aa_capacity r0.Aggregate.topology) 0 in
  let words = ref 0 in
  for aa = 0 to 4 do
    let n = Aggregate.harvest_free_of_aa agg r0 aa ~dst ~words in
    Alcotest.(check (list int))
      (Printf.sprintf "AA %d: harvest = list gather (stripe-major)" aa)
      (free_vbns_of_aa agg r0 aa)
      (Array.to_list (Array.sub dst 0 n))
  done;
  check_bool "words were counted" true (!words > 0)

let test_harvest_matches_list_vol () =
  let vol =
    Flexvol.create
      { Config.name = "v"; blocks = 4000; aa_blocks = Some 512; policy = Config.Best_aa }
  in
  for vvbn = 0 to 3999 do
    if (vvbn * 2654435761) land 7 < 3 then Flexvol.reserve_vvbn vol ~vvbn
  done;
  let dst = Array.make 512 0 in
  let words = ref 0 in
  (* includes the ragged final AA (4000 = 7*512 + 416) *)
  for aa = 0 to 7 do
    let n = Flexvol.harvest_free_of_aa vol aa ~dst ~words in
    Alcotest.(check (list int))
      (Printf.sprintf "AA %d: harvest = list gather (ascending)" aa)
      (free_vvbns_of_aa vol aa)
      (Array.to_list (Array.sub dst 0 n))
  done

let test_harvest_ring_no_double_handout () =
  let fs = Fs.create (small_config ()) in
  let agg = Fs.aggregate fs in
  let w = Fs.write_alloc fs in
  let first = allocate_pvbns w 200 in
  let p = List.hd first in
  Aggregate.queue_free agg ~pvbn:p;
  (* mid-CP: the queued-free block stays unusable (its bitmap bit is still
     set), even though its AA may be re-harvested *)
  let mid = allocate_pvbns w 5000 in
  check_bool "queued free not re-handed mid-CP" true (not (List.mem p mid));
  ignore (Aggregate.commit_frees agg);
  Write_alloc.cp_finish w;
  (* next CP: drain the aggregate; the freed block comes back exactly once *)
  let rest = allocate_pvbns w (Aggregate.free_blocks agg) in
  check_int "freed block re-handed exactly once" 1
    (List.length (List.filter (fun q -> q = p) rest));
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun q ->
      check_bool "no duplicate handout" false (Hashtbl.mem seen q);
      Hashtbl.replace seen q ())
    (mid @ rest)

let test_walloc_consume_allocates_nothing () =
  let fs = Fs.create (small_config ()) in
  let w = Fs.write_alloc fs in
  let dst = Array.make 256 0 in
  let consume () = ignore (Write_alloc.allocate_pvbns_into w ~dst 256) in
  (* warm up: fills each range's harvest ring (one AA = 2048 blocks) *)
  consume ();
  let before = Gc.minor_words () in
  consume ();
  let words = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "ring-served PVBN allocation is heap-allocation-free (%.0f words)" words)
    true (words = 0.0);
  let vol = Fs.vol fs "vol0" in
  let vconsume () = ignore (Write_alloc.allocate_vvbns_into w vol ~dst 256) in
  vconsume ();
  let before = Gc.minor_words () in
  vconsume ();
  let words = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "ring-served VVBN allocation is heap-allocation-free (%.0f words)" words)
    true (words = 0.0)

(* --- CP integration --- *)

let test_cp_simple_write () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 99 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  check_int "staged" 100 (Fs.staged_count fs);
  let report = Fs.run_cp fs in
  check_int "ops" 100 report.Cp.ops;
  check_int "placed" 100 report.Cp.blocks_allocated;
  check_int "no frees on first write" 0 report.Cp.pvbns_freed;
  check_int "staging drained" 0 (Fs.staged_count fs);
  check_bool "metafile pages written" true (report.Cp.agg_metafile_pages >= 1);
  (* file now readable *)
  check_int "file populated" 100 (Flexvol.file_blocks vol ~file:1);
  check_bool "device time modeled" true (report.Cp.device_time_us > 0.0)

let test_cp_overwrite_frees () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 49 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  (* overwrite the same blocks: each one frees its old vvbn + pvbn *)
  for offset = 0 to 49 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  check_int "old pvbns freed" 50 report.Cp.pvbns_freed;
  check_int "old vvbns freed" 50 report.Cp.vvbns_freed;
  (* net space use unchanged *)
  let agg = Fs.aggregate fs in
  check_int "net usage" (Aggregate.total_blocks agg - 50) (Aggregate.free_blocks agg)

let test_cp_coalesces_staged_duplicates () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  Fs.stage_write fs ~vol ~file:1 ~offset:0;
  Fs.stage_write fs ~vol ~file:1 ~offset:0;
  check_int "coalesced" 1 (Fs.staged_count fs);
  let report = Fs.run_cp fs in
  check_int "one op" 1 report.Cp.ops

let test_cp_no_double_allocation_over_many_cps () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  let r = Wafl_util.Rng.create ~seed:99 in
  for _cp = 1 to 20 do
    for _ = 1 to 200 do
      Fs.stage_write fs ~vol ~file:(Wafl_util.Rng.int r 4)
        ~offset:(Wafl_util.Rng.int r 2000)
    done;
    let report = Fs.run_cp fs in
    check_int "all placed" report.Cp.ops report.Cp.blocks_allocated
  done;
  (* consistency: every mapped vvbn has an allocated pvbn, and usage counts
     line up between volume and aggregate *)
  let agg = Fs.aggregate fs in
  let mf = Aggregate.metafile agg in
  let mapped = ref 0 in
  for vvbn = 0 to Flexvol.blocks vol - 1 do
    match Flexvol.pvbn_of_vvbn vol vvbn with
    | Some pvbn ->
      incr mapped;
      check_bool "container points at allocated block" true (Metafile.is_allocated mf pvbn)
    | None -> ()
  done;
  check_int "aggregate usage = mapped blocks"
    (Aggregate.total_blocks agg - !mapped)
    (Aggregate.free_blocks agg)

let test_cp_raid_accounting () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 2047 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  let raid_reports = List.filter (fun d -> d.Cp.media = "hdd") report.Cp.devices in
  check_int "two raid ranges" 2 (List.length raid_reports);
  let total_full = List.fold_left (fun a d -> a + d.Cp.full_stripes) 0 raid_reports in
  (* empty file system, sequential AA fill: overwhelmingly full stripes *)
  let total_partial = List.fold_left (fun a d -> a + d.Cp.partial_stripes) 0 raid_reports in
  check_bool "mostly full stripes" true (total_full > total_partial * 10);
  let tetrises = List.fold_left (fun a d -> a + d.Cp.tetrises) 0 raid_reports in
  check_bool "tetrises counted" true (tetrises > 0)

(* --- Metafile colocation: the §2.5 effect end-to-end --- *)

let test_cp_colocation_best_vs_random () =
  let run policy =
    let fs = Fs.create (small_config ~vol_policy:policy ~seed:11 ()) in
    let vol = Fs.vol fs "vol0" in
    (* age: fill 60% then overwrite randomly to fragment the vvbn space *)
    let r = Wafl_util.Rng.create ~seed:3 in
    let file_blocks = 39321 (* 60% of 65536 *) in
    for offset = 0 to file_blocks - 1 do
      Fs.stage_write fs ~vol ~file:1 ~offset
    done;
    let _ = Fs.run_cp fs in
    for _cp = 1 to 10 do
      for _ = 1 to 500 do
        Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r file_blocks)
      done;
      ignore (Fs.run_cp fs)
    done;
    (* measure: metafile pages dirtied per op over more overwrite CPs *)
    let pages = ref 0 in
    for _cp = 1 to 5 do
      for _ = 1 to 500 do
        Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r file_blocks)
      done;
      let report = Fs.run_cp fs in
      pages := !pages + report.Cp.vol_metafile_pages
    done;
    !pages
  in
  let best = run Config.Best_aa and random = run Config.Random_aa in
  check_bool
    (Printf.sprintf "best-AA dirties no more vol metafile pages (best=%d random=%d)" best random)
    true (best <= random)

(* --- Mount / TopAA --- *)

let aged_fs () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  let r = Wafl_util.Rng.create ~seed:5 in
  for offset = 0 to 19_999 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  for _cp = 1 to 5 do
    for _ = 1 to 400 do
      Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r 20_000)
    done;
    ignore (Fs.run_cp fs)
  done;
  fs

let test_mount_with_topaa_constant_work () =
  let fs = aged_fs () in
  let image = Mount.snapshot fs in
  let _fs2, timing = Mount.mount image ~with_topaa:true in
  (* 2 ranges (1 block each) + 1 vol (2 blocks) *)
  check_int "blocks read" 4 timing.Mount.topaa_blocks_read;
  check_int "no scan" 0 timing.Mount.metafile_pages_scanned;
  check_bool "fast" true (timing.Mount.ready_us < 10_000.0)

let test_mount_without_topaa_scans () =
  let fs = aged_fs () in
  let image = Mount.snapshot fs in
  let _fs2, timing = Mount.mount image ~with_topaa:false in
  check_int "no topaa" 0 timing.Mount.topaa_blocks_read;
  check_bool "scanned pages" true (timing.Mount.metafile_pages_scanned > 0);
  check_bool "scored AAs" true (timing.Mount.aas_scored > 0)

let test_mount_paths_agree_behaviorally () =
  let fs = aged_fs () in
  let image = Mount.snapshot fs in
  let fs_a, _ = Mount.mount image ~with_topaa:true in
  let fs_b, _ = Mount.mount image ~with_topaa:false in
  (* same space state *)
  check_int "same free space"
    (Aggregate.free_blocks (Fs.aggregate fs_a))
    (Aggregate.free_blocks (Fs.aggregate fs_b));
  (* after background rebuild both allocate the same sequence *)
  let a = allocate_pvbns (Fs.write_alloc fs_a) 200 in
  let b = allocate_pvbns (Fs.write_alloc fs_b) 200 in
  Alcotest.(check (list int)) "identical allocations" a b

let test_mount_timing_scales () =
  (* the without-TopAA scan must grow with volume size; the TopAA path
     must not *)
  let ready vol_blocks with_topaa =
    let fs = Fs.create (small_config ~vol_blocks ()) in
    let image = Mount.snapshot fs in
    let _, timing = Mount.mount image ~with_topaa in
    timing.Mount.ready_us
  in
  let small_scan = ready 65536 false and big_scan = ready 524288 false in
  check_bool "scan scales with size" true (big_scan > small_scan *. 2.0);
  let small_seed = ready 65536 true and big_seed = ready 524288 true in
  check_bool "topaa flat" true (big_seed < small_seed *. 1.5)

(* --- lazy rebuild --- *)

let test_lazy_mount_matches_eager () =
  let image = Mount.snapshot (aged_fs ()) in
  let fs_eager, _ = Mount.mount image ~with_topaa:true in
  let fs_lazy, _ = Mount.mount ~lazy_rebuild:true image ~with_topaa:true in
  check_int "same free space"
    (Aggregate.free_blocks (Fs.aggregate fs_eager))
    (Aggregate.free_blocks (Fs.aggregate fs_lazy));
  (* lazy mounts leave every range stale: the seeded TopAA scores stand
     in until first touch *)
  let agg = Fs.aggregate fs_lazy in
  check_bool "ranges stale after lazy mount" true
    (Array.for_all (fun r -> not (Aggregate.range_fresh agg r)) (Aggregate.ranges agg));
  check_bool "vols stale after lazy mount" true
    (Array.for_all (fun v -> not (Flexvol.cache_fresh v)) (Fs.vols fs_lazy));
  (* allocations materialize the touched ranges and then track the eager
     mount exactly *)
  let a = allocate_pvbns (Fs.write_alloc fs_eager) 200 in
  let b = allocate_pvbns (Fs.write_alloc fs_lazy) 200 in
  Alcotest.(check (list int)) "identical pvbn allocations" a b;
  check_bool "a touched range materialized" true
    (Array.exists (fun r -> Aggregate.range_fresh agg r) (Aggregate.ranges agg));
  let va = allocate_vvbns (Fs.write_alloc fs_eager) (Fs.vol fs_eager "vol0") 200 in
  let vb = allocate_vvbns (Fs.write_alloc fs_lazy) (Fs.vol fs_lazy "vol0") 200 in
  Alcotest.(check (list int)) "identical vvbn allocations" va vb;
  check_bool "vol materialized" true (Flexvol.cache_fresh (Fs.vol fs_lazy "vol0"))

let test_lazy_deferred_scan_mount () =
  let image = Mount.snapshot (aged_fs ()) in
  let fs_eager, timing_eager = Mount.mount image ~with_topaa:false in
  let fs_lazy, timing_lazy = Mount.mount ~lazy_rebuild:true image ~with_topaa:false in
  check_int "no pages scanned at mount" 0 timing_lazy.Mount.metafile_pages_scanned;
  check_bool "ready long before the full scan would finish" true
    (timing_lazy.Mount.ready_us < timing_eager.Mount.ready_us /. 4.0);
  let a = allocate_pvbns (Fs.write_alloc fs_eager) 200 in
  let b = allocate_pvbns (Fs.write_alloc fs_lazy) 200 in
  Alcotest.(check (list int)) "identical allocations" a b

let test_iron_clean_on_lazy_mount () =
  let image = Mount.snapshot (aged_fs ()) in
  let fs, _ = Mount.mount ~lazy_rebuild:true image ~with_topaa:true in
  (* Iron materializes every stale range/vol before the drift scan, so
     the approximate seeds must not surface as findings *)
  check_int "no findings on a lazy mount" 0 (List.length (Iron.check fs));
  (* and a CP straight off the lazy mount stays consistent *)
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 99 do
    Fs.stage_write fs ~vol ~file:2 ~offset
  done;
  let report = Fs.run_cp fs in
  check_int "all staged writes placed" 100 report.Cp.blocks_allocated;
  check_int "still clean after the CP" 0 (List.length (Iron.check fs))

(* --- backend interchangeability --- *)

(* The same workload, CP for CP, leaves byte-identical free-space state
   whether the stores live on the OCaml heap or off-heap. *)
let test_backends_identical_after_cps () =
  let fs_h = Pagestore.with_default Pagestore.Heap aged_fs in
  let fs_b = Pagestore.with_default Pagestore.Bigarray aged_fs in
  check_bool "aggregate bitmap byte-identical" true
    (Bitmap.equal
       (Metafile.snapshot (Aggregate.metafile (Fs.aggregate fs_h)))
       (Metafile.snapshot (Aggregate.metafile (Fs.aggregate fs_b))));
  Array.iteri
    (fun i v ->
      check_bool
        (Printf.sprintf "vol %d bitmap byte-identical" i)
        true
        (Bitmap.equal (Metafile.snapshot (Flexvol.metafile v))
           (Metafile.snapshot (Flexvol.metafile (Fs.vols fs_b).(i)))))
    (Fs.vols fs_h);
  check_int "same free space"
    (Aggregate.free_blocks (Fs.aggregate fs_h))
    (Aggregate.free_blocks (Fs.aggregate fs_b));
  (* and the next allocations agree block for block *)
  Alcotest.(check (list int))
    "next allocations identical"
    (allocate_pvbns (Fs.write_alloc fs_h) 500)
    (allocate_pvbns (Fs.write_alloc fs_b) 500)

(* A snapshot image taken from a heap-backed system restores into a
   bigarray-backed one (and vice versa) with identical behavior — the
   crash-image restore path of a backend migration. *)
let test_cross_backend_mount () =
  let image = Pagestore.with_default Pagestore.Heap (fun () -> Mount.snapshot (aged_fs ())) in
  let fs_h, _ = Pagestore.with_default Pagestore.Heap (fun () -> Mount.mount image ~with_topaa:true) in
  let fs_b, _ =
    Pagestore.with_default Pagestore.Bigarray (fun () -> Mount.mount image ~with_topaa:true)
  in
  check_int "same free space"
    (Aggregate.free_blocks (Fs.aggregate fs_h))
    (Aggregate.free_blocks (Fs.aggregate fs_b));
  check_int "clean after the cross-backend restore" 0 (List.length (Iron.check fs_b));
  Alcotest.(check (list int))
    "identical allocations after restore"
    (allocate_pvbns (Fs.write_alloc fs_h) 200)
    (allocate_pvbns (Fs.write_alloc fs_b) 200)

(* --- Snapshots --- *)

let test_snapshot_protects_blocks () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 99 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let used_before = Aggregate.free_blocks (Fs.aggregate fs) in
  let snap = Fs.create_snapshot fs ~vol in
  (* overwrite everything: with the snapshot pinning the old blocks, no
     physical space comes back *)
  for offset = 0 to 99 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  check_int "no frees while snapshot holds" 0 report.Cp.pvbns_freed;
  check_int "space grows by the overwrite" (used_before - 100)
    (Aggregate.free_blocks (Fs.aggregate fs));
  (* old data still readable through the snapshot *)
  let offset0_vvbn_now = Option.get (Flexvol.read_file vol ~file:1 ~offset:0) in
  let reads = ref 0 in
  for vvbn = 0 to Flexvol.blocks vol - 1 do
    if Flexvol.snapshot_read vol ~snapshot:snap ~vvbn <> None then incr reads
  done;
  check_int "snapshot sees its 100 blocks" 100 !reads;
  check_bool "active moved on" true
    (Flexvol.snapshot_read vol ~snapshot:snap ~vvbn:offset0_vvbn_now = None)

let test_snapshot_delete_releases () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 99 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let snap = Fs.create_snapshot fs ~vol in
  for offset = 0 to 99 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let queued = Fs.delete_snapshot fs ~vol snap in
  check_int "all overwritten blocks released" 100 queued;
  let report = Fs.run_cp fs in
  check_int "freed at next CP" 100 report.Cp.pvbns_freed;
  check_int "space fully recovered" (Aggregate.total_blocks (Fs.aggregate fs) - 100)
    (Aggregate.free_blocks (Fs.aggregate fs))

let test_snapshot_sharing_between_snapshots () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 49 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let snap_a = Fs.create_snapshot fs ~vol in
  let snap_b = Fs.create_snapshot fs ~vol in
  for offset = 0 to 49 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  (* both snapshots pin the same old blocks: deleting one frees nothing *)
  check_int "first delete frees nothing" 0 (Fs.delete_snapshot fs ~vol snap_a);
  check_int "second delete releases" 50 (Fs.delete_snapshot fs ~vol snap_b);
  let _ = Fs.run_cp fs in
  check_int "space recovered" (Aggregate.total_blocks (Fs.aggregate fs) - 50)
    (Aggregate.free_blocks (Fs.aggregate fs))

let test_snapshot_excludes_zombies () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  Fs.stage_write fs ~vol ~file:1 ~offset:0;
  let _ = Fs.run_cp fs in
  let snap_a = Fs.create_snapshot fs ~vol in
  Fs.stage_write fs ~vol ~file:1 ~offset:0;
  let _ = Fs.run_cp fs in
  (* the overwritten block is a zombie now; a new snapshot must not adopt it *)
  let snap_b = Fs.create_snapshot fs ~vol in
  check_int "zombie released with its only holder" 1 (Fs.delete_snapshot fs ~vol snap_a);
  check_int "new snapshot did not pin history" 0 (Fs.delete_snapshot fs ~vol snap_b)

let test_snapshot_survives_cleaning () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  let r = Wafl_util.Rng.create ~seed:31 in
  for offset = 0 to 9_999 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let snap = Fs.create_snapshot fs ~vol in
  for _cp = 1 to 4 do
    for _ = 1 to 400 do
      Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r 10_000)
    done;
    ignore (Fs.run_cp fs)
  done;
  let _ = Cleaner.clean_fs fs ~aas_per_range:1 in
  let _ = Fs.run_cp fs in
  (* every pinned block still resolves to an allocated physical block *)
  let mf = Aggregate.metafile (Fs.aggregate fs) in
  let checked = ref 0 in
  for vvbn = 0 to Flexvol.blocks vol - 1 do
    match Flexvol.snapshot_read vol ~snapshot:snap ~vvbn with
    | Some pvbn ->
      incr checked;
      check_bool "snapshot block intact after cleaning" true (Metafile.is_allocated mf pvbn)
    | None -> ()
  done;
  check_int "snapshot complete" 10_000 !checked

(* --- Mount fault injection --- *)

let test_mount_corrupt_topaa_falls_back () =
  let fs = aged_fs () in
  let image = Mount.snapshot fs in
  Mount.corrupt_range_topaa image 0;
  Mount.corrupt_vol_topaa image 0;
  let fs2, timing = Mount.mount image ~with_topaa:true in
  (* the corrupt blocks force a bitmap scan for those caches *)
  check_bool "fallback pages scanned" true (timing.Mount.metafile_pages_scanned > 0);
  (* the system is still fully operational *)
  let blocks = allocate_pvbns (Fs.write_alloc fs2) 100 in
  check_int "allocates after fallback" 100 (List.length blocks)

let test_mount_corrupt_costlier_than_clean () =
  let fs = aged_fs () in
  let clean = Mount.snapshot fs in
  let damaged = Mount.snapshot fs in
  Mount.corrupt_range_topaa damaged 0;
  let _, t_clean = Mount.mount ~background_rebuild:false clean ~with_topaa:true in
  let _, t_damaged = Mount.mount ~background_rebuild:false damaged ~with_topaa:true in
  check_bool "corruption costs ready time" true
    (t_damaged.Mount.ready_us > t_clean.Mount.ready_us)

let test_mount_corrupt_bounds () =
  let fs = Fs.create (small_config ()) in
  let image = Mount.snapshot fs in
  let raises name f =
    check_bool name true
      (try
         f ();
         false
       with Invalid_argument _ -> true)
  in
  raises "range index too large" (fun () -> Mount.corrupt_range_topaa image 99);
  raises "range index negative" (fun () -> Mount.corrupt_range_topaa image (-1));
  raises "vol index too large" (fun () -> Mount.corrupt_vol_topaa image 99);
  raises "vol index negative" (fun () -> Mount.corrupt_vol_topaa image (-1));
  raises "page out of range" (fun () -> Mount.tear_agg_bitmap_page image ~page:1000);
  (* in-range indices still work *)
  Mount.corrupt_range_topaa image 0;
  Mount.corrupt_vol_topaa image 0;
  Mount.tear_agg_bitmap_page image ~page:0

let test_mount_restores_namespace () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 999 do
    Fs.stage_write fs ~vol ~file:3 ~offset
  done;
  let _ = Fs.run_cp fs in
  let fs2, _ = Mount.mount (Mount.snapshot fs) ~with_topaa:true in
  let vol2 = Fs.vol fs2 "vol0" in
  let mf = Aggregate.metafile (Fs.aggregate fs2) in
  for offset = 0 to 999 do
    match Flexvol.read_file vol2 ~file:3 ~offset with
    | None -> Alcotest.fail "file block lost across mount"
    | Some vvbn ->
      let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol2 vvbn) in
      check_bool "mapped block allocated" true (Metafile.is_allocated mf pvbn)
  done;
  (* the two systems agree block for block *)
  check_bool "identical mapping" true
    (Flexvol.read_file vol ~file:3 ~offset:17 = Flexvol.read_file vol2 ~file:3 ~offset:17)

let test_torn_bitmap_page_repaired () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 4999 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let image = Mount.snapshot fs in
  (* tear the bitmap page of some mapped block that sits in a page's second
     half (the half a torn write loses) *)
  let page_bits = Wafl_block.Units.bits_per_metafile_block in
  let victim = ref None in
  for offset = 0 to 4999 do
    if !victim = None then begin
      let vvbn = Option.get (Flexvol.read_file vol ~file:1 ~offset) in
      let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol vvbn) in
      if pvbn mod page_bits >= page_bits / 2 then victim := Some pvbn
    end
  done;
  let victim = Option.get !victim in
  Mount.tear_agg_bitmap_page image ~page:(victim / page_bits);
  let fs2, _ = Mount.mount image ~with_topaa:true in
  let findings = Iron.check fs2 in
  check_bool "torn page produces dangling refs" true
    (List.exists
       (function Iron.Dangling_container { pvbn = p; _ } -> p = victim | _ -> false)
       findings);
  (* the namespace reached NVRAM: it outranks the torn bitmap *)
  let _, repaired = Iron.repair ~authority:Iron.Container_authority fs2 in
  check_bool "repaired" true (repaired > 0);
  check_int "clean after repair" 0 (List.length (Iron.check fs2));
  let vol2 = Fs.vol fs2 "vol0" in
  let mf = Aggregate.metafile (Fs.aggregate fs2) in
  for offset = 0 to 4999 do
    let vvbn = Option.get (Flexvol.read_file vol2 ~file:1 ~offset) in
    let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol2 vvbn) in
    check_bool "every acked block allocated again" true (Metafile.is_allocated mf pvbn)
  done

(* --- Mixed-media aggregates (Flash Pool / Fabric Pool, §2.1) --- *)

let test_flash_pool_mixed_media () =
  (* SSD RAID group + HDD RAID group in one aggregate *)
  let ssd_rg =
    {
      Config.media = Config.Ssd { Wafl_device.Profile.default_ssd with
                                  Wafl_device.Profile.erase_block_blocks = 512 };
      data_devices = 2;
      parity_devices = 1;
      device_blocks = 4096;
      aa_stripes = Some 512;
    }
  in
  let hdd_rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  let config =
    Config.make ~raid_groups:[ ssd_rg; hdd_rg ]
      ~vols:[ { Config.name = "v"; blocks = 40960; aa_blocks = None; policy = Config.Best_aa } ]
      ~seed:3 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "v" in
  for offset = 0 to 4095 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  check_int "all placed" 4096 report.Cp.blocks_allocated;
  let medias = List.map (fun d -> d.Cp.media) report.Cp.devices in
  check_bool "ssd range present" true (List.mem "ssd" medias);
  check_bool "hdd range present" true (List.mem "hdd" medias);
  (* both media actually received blocks *)
  List.iter
    (fun d -> check_bool (d.Cp.media ^ " used") true (d.Cp.blocks_written > 0))
    report.Cp.devices

let test_fabric_pool_object_range () =
  (* SSD RAID group + object store span, as in Fabric Pool *)
  let ssd_rg =
    {
      Config.media = Config.Ssd { Wafl_device.Profile.default_ssd with
                                  Wafl_device.Profile.erase_block_blocks = 512 };
      data_devices = 2;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  let object_range =
    {
      Config.profile = Wafl_device.Profile.default_object_store;
      blocks = 65536;
      aa_blocks = Some 4096;
    }
  in
  let config =
    Config.make ~raid_groups:[ ssd_rg ] ~object_ranges:[ object_range ]
      ~vols:[ { Config.name = "v"; blocks = 65536; aa_blocks = None; policy = Config.Best_aa } ]
      ~seed:4 ()
  in
  let fs = Fs.create config in
  let agg = Fs.aggregate fs in
  check_int "two ranges" 2 (Array.length (Aggregate.ranges agg));
  let obj = (Aggregate.ranges agg).(1) in
  check_bool "object range is raid-agnostic" true (obj.Aggregate.geometry = None);
  (* the object range's cache is an HBPS, not a heap *)
  (match obj.Aggregate.cache with
  | Some cache ->
    check_bool "hbps cache" true
      (match Wafl_aacache.Cache.backend cache with
      | Wafl_aacache.Cache.Raid_agnostic _ -> true
      | Wafl_aacache.Cache.Raid_aware _ -> false)
  | None -> Alcotest.fail "object range should have a cache");
  let vol = Fs.vol fs "v" in
  for offset = 0 to 2047 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  check_int "placed" 2048 report.Cp.blocks_allocated;
  let object_report = List.find (fun d -> d.Cp.media = "object") report.Cp.devices in
  check_bool "object range wrote blocks" true (object_report.Cp.blocks_written > 0);
  check_bool "object device time from puts" true (object_report.Cp.device_time_us > 0.0)

(* --- RG fragmentation threshold (§3.3.1) --- *)

let test_rg_threshold_skips_fragmented_group () =
  let fs = Fs.create (small_config ~rg_score_threshold:1500 ()) in
  let agg = Fs.aggregate fs in
  let w = Fs.write_alloc fs in
  (* fragment range 0 so its best AA drops below the threshold *)
  let r0 = (Aggregate.ranges agg).(0) in
  let rng = Wafl_util.Rng.create ~seed:55 in
  let placed = ref 0 in
  while !placed < r0.Aggregate.blocks * 7 / 10 do
    let pvbn = Aggregate.to_global r0 (Wafl_util.Rng.int rng r0.Aggregate.blocks) in
    if not (Metafile.is_allocated (Aggregate.metafile agg) pvbn) then begin
      Aggregate.allocate agg ~pvbn;
      incr placed
    end
  done;
  Write_alloc.cp_finish w;
  Rebuild.request agg Rebuild.Full;
  let best0 = Wafl_aacache.Cache.peek_best_score (Option.get r0.Aggregate.cache) in
  check_bool "rig: best AA of RG0 below threshold" true (Option.get best0 < 1500);
  let blocks = allocate_pvbns w 1000 in
  let in_r0 =
    List.filter (fun p -> (Aggregate.range_of_pvbn agg p).Aggregate.index = 0) blocks
  in
  check_int "fragmented group skipped" 0 (List.length in_r0);
  check_int "demand met from the healthy group" 1000 (List.length blocks)

(* --- VVBN reservation protocol --- *)

let test_vvbn_reserve_release () =
  let vol =
    Flexvol.create { Config.name = "v"; blocks = 1000; aa_blocks = None; policy = Config.Best_aa }
  in
  Flexvol.reserve_vvbn vol ~vvbn:5;
  check_int "reserved counts as used" 999 (Flexvol.free_blocks vol);
  Alcotest.check_raises "attach requires reservation"
    (Invalid_argument "Flexvol.attach_reserved: VVBN not reserved") (fun () ->
      Flexvol.attach_reserved vol ~vvbn:6 ~pvbn:1);
  Flexvol.attach_reserved vol ~vvbn:5 ~pvbn:77;
  Alcotest.(check (option int)) "mapped" (Some 77) (Flexvol.pvbn_of_vvbn vol 5);
  (* releasing an unattached reservation *)
  Flexvol.reserve_vvbn vol ~vvbn:8;
  Flexvol.release_reserved vol ~vvbn:8;
  let _ = Flexvol.commit_frees vol in
  check_int "released back" 999 (Flexvol.free_blocks vol)

(* --- NVRAM replay --- *)

let test_nvram_replay_preserves_ops () =
  let fs = aged_fs () in
  let vol = Fs.vol fs "vol0" in
  (* acknowledged-but-uncommitted operations at crash time *)
  for offset = 50_000 to 50_099 do
    Fs.stage_write fs ~vol ~file:9 ~offset
  done;
  check_int "logged" 100 (Fs.staged_count fs);
  let image = Mount.snapshot fs in
  let fs2, timing = Mount.mount image ~with_topaa:true in
  check_int "replayed" 100 timing.Mount.ops_replayed;
  check_int "staged on the partner" 100 (Fs.staged_count fs2);
  let report = Fs.run_cp fs2 in
  check_int "first CP commits the log" 100 report.Cp.ops;
  let vol2 = Fs.vol fs2 "vol0" in
  for offset = 50_000 to 50_099 do
    check_bool "data present" true (Flexvol.read_file vol2 ~file:9 ~offset <> None)
  done

let test_nvram_replay_costs_time () =
  let fs = aged_fs () in
  let vol = Fs.vol fs "vol0" in
  let clean = Mount.snapshot fs in
  for offset = 0 to 999 do
    Fs.stage_write fs ~vol ~file:9 ~offset:(60_000 + offset)
  done;
  let logged = Mount.snapshot fs in
  let _, t_clean = Mount.mount ~background_rebuild:false clean ~with_topaa:true in
  let _, t_logged = Mount.mount ~background_rebuild:false logged ~with_topaa:true in
  check_bool "replay adds to readiness" true (t_logged.Mount.ready_us > t_clean.Mount.ready_us)

(* --- Read-path fragmentation (§2.4) --- *)

let test_read_chains_young_vs_aged () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 4095 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let young = Fs.file_read_chains fs ~vol ~file:1 in
  check_int "all blocks found" 4096 young.Wafl_block.Chain.blocks;
  (* overwrite randomly for a while: the same file now reads in many more
     chains *)
  let r = Wafl_util.Rng.create ~seed:61 in
  for _cp = 1 to 8 do
    for _ = 1 to 500 do
      Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r 4096)
    done;
    ignore (Fs.run_cp fs)
  done;
  let aged = Fs.file_read_chains fs ~vol ~file:1 in
  check_int "still all blocks" 4096 aged.Wafl_block.Chain.blocks;
  check_bool
    (Printf.sprintf "aged file needs more read I/Os (%d vs %d)" aged.Wafl_block.Chain.chains
       young.Wafl_block.Chain.chains)
    true
    (aged.Wafl_block.Chain.chains > 2 * young.Wafl_block.Chain.chains);
  check_bool "mean chain shrinks" true
    (aged.Wafl_block.Chain.mean_len < young.Wafl_block.Chain.mean_len)

(* --- Iron (online check & repair) --- *)

let test_iron_clean_system () =
  let fs = aged_fs () in
  (* an aged but healthy system: no drift, no dangling refs; the test rig
     has no internal metadata so no orphans either *)
  Alcotest.(check int) "no findings" 0 (List.length (Iron.check fs))

let test_iron_detects_and_repairs_score_drift () =
  let fs = aged_fs () in
  let r0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  (* memory scribble on a cached score *)
  r0.Aggregate.scores.(3) <- r0.Aggregate.scores.(3) + 7;
  let findings = Iron.check fs in
  check_bool "drift found" true
    (List.exists (function Iron.Range_score_drift { aa = 3; _ } -> true | _ -> false) findings);
  let _, repaired = Iron.repair fs in
  check_bool "repaired" true (repaired > 0);
  Alcotest.(check int) "clean after repair" 0 (List.length (Iron.check fs))

let test_iron_detects_dangling_container () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 9 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  (* corrupt: free a referenced physical block behind the system's back *)
  let vvbn = Option.get (Flexvol.read_file vol ~file:1 ~offset:0) in
  let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol vvbn) in
  Metafile.free (Aggregate.metafile (Fs.aggregate fs)) pvbn;
  let findings = Iron.check fs in
  check_bool "dangling found" true
    (List.exists
       (function Iron.Dangling_container { pvbn = p; _ } -> p = pvbn | _ -> false)
       findings);
  let _, repaired = Iron.repair fs in
  check_bool "repaired" true (repaired > 0);
  (* scores drifted as a result of the rogue free are also fixed *)
  Alcotest.(check int) "clean after repair" 0 (List.length (Iron.check fs))

let test_iron_reports_orphans () =
  let fs = Fs.create (small_config ()) in
  Aggregate.allocate (Fs.aggregate fs) ~pvbn:1234;
  Write_alloc.cp_finish (Fs.write_alloc fs);
  let findings = Iron.check fs in
  check_bool "orphan reported" true
    (List.exists (function Iron.Orphan_blocks { count } -> count = 1 | _ -> false) findings)

let test_iron_repairs_orphans_container_authority () =
  let fs = Fs.create (small_config ()) in
  Aggregate.allocate (Fs.aggregate fs) ~pvbn:1234;
  Aggregate.allocate (Fs.aggregate fs) ~pvbn:4321;
  Write_alloc.cp_finish (Fs.write_alloc fs);
  (* bitmap authority leaves orphans alone... *)
  let _, repaired = Iron.repair fs in
  check_int "bitmap authority: nothing to repair" 0 repaired;
  check_bool "orphans persist" true
    (List.exists (function Iron.Orphan_blocks _ -> true | _ -> false) (Iron.check fs));
  (* ...container authority frees them *)
  let findings, repaired = Iron.repair ~authority:Iron.Container_authority fs in
  check_bool "orphans were found" true
    (List.exists (function Iron.Orphan_blocks { count } -> count = 2 | _ -> false) findings);
  check_int "both freed" 2 repaired;
  check_int "clean after repair" 0 (List.length (Iron.check fs));
  let mf = Aggregate.metafile (Fs.aggregate fs) in
  check_bool "blocks free again" false
    (Metafile.is_allocated mf 1234 || Metafile.is_allocated mf 4321)

let test_iron_repairs_dangling_container_authority () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 9 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  let vvbn = Option.get (Flexvol.read_file vol ~file:1 ~offset:4) in
  let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol vvbn) in
  let mf = Aggregate.metafile (Fs.aggregate fs) in
  Metafile.free mf pvbn;
  let _, repaired = Iron.repair ~authority:Iron.Container_authority fs in
  check_bool "repaired" true (repaired > 0);
  (* the mapping survives and the block is allocated again — the opposite
     of Bitmap_authority, which would sever the reference *)
  check_bool "mapping intact" true (Flexvol.pvbn_of_vvbn vol vvbn = Some pvbn);
  check_bool "block re-marked" true (Metafile.is_allocated mf pvbn);
  check_int "clean after repair" 0 (List.length (Iron.check fs))

let test_iron_reports_cross_link () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  for offset = 0 to 9 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  (* corrupt: map a second virtual block onto an owned physical block *)
  let vvbn = Option.get (Flexvol.read_file vol ~file:1 ~offset:0) in
  let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol vvbn) in
  Flexvol.map_vvbn vol ~vvbn:60_000 ~pvbn;
  let findings = Iron.check fs in
  check_bool "cross-link found" true
    (List.exists (function Iron.Cross_link { pvbn = p; _ } -> p = pvbn | _ -> false) findings);
  (* cross-links cannot be auto-repaired (no way to pick the owner): both
     authorities report and leave them *)
  let _, _ = Iron.repair ~authority:Iron.Container_authority fs in
  check_bool "cross-link persists" true
    (List.exists (function Iron.Cross_link _ -> true | _ -> false) (Iron.check fs))

(* --- Cleaner --- *)

let test_cleaner_strategies () =
  let prepare () =
    let fs = Fs.create (small_config ()) in
    let vol = Fs.vol fs "vol0" in
    let r = Wafl_util.Rng.create ~seed:21 in
    for offset = 0 to 29_999 do
      Fs.stage_write fs ~vol ~file:1 ~offset
    done;
    let _ = Fs.run_cp fs in
    for _cp = 1 to 10 do
      for _ = 1 to 800 do
        Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r 30_000)
      done;
      ignore (Fs.run_cp fs)
    done;
    fs
  in
  let emptiest = Cleaner.clean_fs ~strategy:Cleaner.Emptiest_first (prepare ()) ~aas_per_range:2 in
  let fullest = Cleaner.clean_fs ~strategy:Cleaner.Fullest_first (prepare ()) ~aas_per_range:2 in
  check_int "same count cleaned" emptiest.Cleaner.aas_cleaned fullest.Cleaner.aas_cleaned;
  check_bool "emptiest relocates less" true
    (emptiest.Cleaner.blocks_relocated < fullest.Cleaner.blocks_relocated)

let test_cleaner_reclaims () =
  let fs = Fs.create (small_config ()) in
  let vol = Fs.vol fs "vol0" in
  let r = Wafl_util.Rng.create ~seed:13 in
  for offset = 0 to 9999 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let _ = Fs.run_cp fs in
  for _cp = 1 to 3 do
    for _ = 1 to 300 do
      Fs.stage_write fs ~vol ~file:1 ~offset:(Wafl_util.Rng.int r 10_000)
    done;
    ignore (Fs.run_cp fs)
  done;
  let report = Cleaner.clean_fs fs ~aas_per_range:1 in
  check_int "cleaned 2 AAs (one per range)" 2 report.Cleaner.aas_cleaned;
  let _ = Fs.run_cp fs in
  (* every file block still readable through its (possibly moved) mapping *)
  let mf = Aggregate.metafile (Fs.aggregate fs) in
  for offset = 0 to 9999 do
    match Flexvol.read_file vol ~file:1 ~offset with
    | Some vvbn -> (
      match Flexvol.pvbn_of_vvbn vol vvbn with
      | Some pvbn -> check_bool "intact" true (Metafile.is_allocated mf pvbn)
      | None -> Alcotest.fail "lost mapping")
    | None -> Alcotest.fail "lost file block"
  done

let () =
  Alcotest.run "wafl_core"
    [
      ( "aggregate",
        [
          Alcotest.test_case "layout" `Quick test_aggregate_layout;
          Alcotest.test_case "alloc/free cycle" `Quick test_aggregate_alloc_free_cycle;
        ] );
      ( "flexvol",
        [
          Alcotest.test_case "mapping" `Quick test_flexvol_mapping;
          Alcotest.test_case "files" `Quick test_flexvol_files;
          Alcotest.test_case "remap" `Quick test_flexvol_remap;
        ] );
      ( "write_alloc",
        [
          Alcotest.test_case "allocates n" `Quick test_walloc_allocates_n;
          Alcotest.test_case "spreads over ranges" `Quick test_walloc_spreads_over_ranges;
          Alcotest.test_case "best-AA picks emptiest" `Quick test_walloc_best_aa_consumes_emptiest;
          Alcotest.test_case "vvbns sequential" `Quick test_walloc_vvbns_sequential_colocated;
          Alcotest.test_case "exhaustion" `Quick test_walloc_exhaustion;
          Alcotest.test_case "random policy" `Quick test_walloc_random_policy_works;
          Alcotest.test_case "first fit policy" `Quick test_walloc_first_fit_policy;
          Alcotest.test_case "harvest = list (raid-aware)" `Quick
            test_harvest_matches_list_raid_aware;
          Alcotest.test_case "harvest = list (volume)" `Quick test_harvest_matches_list_vol;
          Alcotest.test_case "ring no double handout" `Quick test_harvest_ring_no_double_handout;
          Alcotest.test_case "consume window zero-alloc" `Quick
            test_walloc_consume_allocates_nothing;
        ] );
      ( "cp",
        [
          Alcotest.test_case "simple write" `Quick test_cp_simple_write;
          Alcotest.test_case "overwrite frees" `Quick test_cp_overwrite_frees;
          Alcotest.test_case "coalesces duplicates" `Quick test_cp_coalesces_staged_duplicates;
          Alcotest.test_case "no double allocation" `Quick
            test_cp_no_double_allocation_over_many_cps;
          Alcotest.test_case "raid accounting" `Quick test_cp_raid_accounting;
          Alcotest.test_case "colocation best vs random" `Slow test_cp_colocation_best_vs_random;
        ] );
      ( "mount",
        [
          Alcotest.test_case "topaa constant work" `Quick test_mount_with_topaa_constant_work;
          Alcotest.test_case "scan without topaa" `Quick test_mount_without_topaa_scans;
          Alcotest.test_case "paths agree" `Quick test_mount_paths_agree_behaviorally;
          Alcotest.test_case "timing scales" `Quick test_mount_timing_scales;
          Alcotest.test_case "lazy matches eager" `Quick test_lazy_mount_matches_eager;
          Alcotest.test_case "lazy deferred scan" `Quick test_lazy_deferred_scan_mount;
          Alcotest.test_case "iron clean on lazy mount" `Quick test_iron_clean_on_lazy_mount;
        ] );
      ( "backends",
        [
          Alcotest.test_case "identical after CPs" `Quick test_backends_identical_after_cps;
          Alcotest.test_case "cross-backend mount" `Quick test_cross_backend_mount;
        ] );
      ( "cleaner",
        [
          Alcotest.test_case "reclaims" `Quick test_cleaner_reclaims;
          Alcotest.test_case "strategies" `Slow test_cleaner_strategies;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "protects blocks" `Quick test_snapshot_protects_blocks;
          Alcotest.test_case "delete releases" `Quick test_snapshot_delete_releases;
          Alcotest.test_case "sharing" `Quick test_snapshot_sharing_between_snapshots;
          Alcotest.test_case "excludes zombies" `Quick test_snapshot_excludes_zombies;
          Alcotest.test_case "survives cleaning" `Quick test_snapshot_survives_cleaning;
        ] );
      ( "read-path",
        [ Alcotest.test_case "young vs aged chains" `Quick test_read_chains_young_vs_aged ] );
      ( "iron",
        [
          Alcotest.test_case "clean system" `Quick test_iron_clean_system;
          Alcotest.test_case "score drift" `Quick test_iron_detects_and_repairs_score_drift;
          Alcotest.test_case "dangling container" `Quick test_iron_detects_dangling_container;
          Alcotest.test_case "orphans" `Quick test_iron_reports_orphans;
          Alcotest.test_case "orphans freed (container authority)" `Quick
            test_iron_repairs_orphans_container_authority;
          Alcotest.test_case "dangling re-marked (container authority)" `Quick
            test_iron_repairs_dangling_container_authority;
          Alcotest.test_case "cross-link reported, not repaired" `Quick
            test_iron_reports_cross_link;
        ] );
      ( "nvram",
        [
          Alcotest.test_case "replay preserves ops" `Quick test_nvram_replay_preserves_ops;
          Alcotest.test_case "replay costs time" `Quick test_nvram_replay_costs_time;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "corrupt topaa falls back" `Quick test_mount_corrupt_topaa_falls_back;
          Alcotest.test_case "corruption costs time" `Quick test_mount_corrupt_costlier_than_clean;
          Alcotest.test_case "corrupt bounds checked" `Quick test_mount_corrupt_bounds;
          Alcotest.test_case "namespace survives mount" `Quick test_mount_restores_namespace;
          Alcotest.test_case "torn bitmap page repaired" `Quick test_torn_bitmap_page_repaired;
        ] );
      ( "mixed-media",
        [
          Alcotest.test_case "flash pool" `Quick test_flash_pool_mixed_media;
          Alcotest.test_case "fabric pool object range" `Quick test_fabric_pool_object_range;
        ] );
      ( "policy",
        [
          Alcotest.test_case "rg threshold" `Quick test_rg_threshold_skips_fragmented_group;
          Alcotest.test_case "vvbn reserve/release" `Quick test_vvbn_reserve_release;
        ] );
    ]
