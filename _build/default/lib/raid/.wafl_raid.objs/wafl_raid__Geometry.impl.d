lib/raid/geometry.ml: Format List Wafl_block
