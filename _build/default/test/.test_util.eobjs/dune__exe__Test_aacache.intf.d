test/test_aacache.mli:
