type t = { data_devices : int; parity_devices : int; device_blocks : int }

type location = { device : int; dbn : int }

let create ~data_devices ~parity_devices ~device_blocks =
  assert (data_devices > 0 && parity_devices > 0 && device_blocks > 0);
  { data_devices; parity_devices; device_blocks }

let data_devices t = t.data_devices
let parity_devices t = t.parity_devices
let device_blocks t = t.device_blocks
let stripes t = t.device_blocks
let total_blocks t = t.data_devices * t.device_blocks

let check_vbn t vbn =
  if vbn < 0 || vbn >= total_blocks t then invalid_arg "Geometry: VBN out of bounds"

let location_of_vbn t vbn =
  check_vbn t vbn;
  { device = vbn / t.device_blocks; dbn = vbn mod t.device_blocks }

let vbn_of_location t { device; dbn } =
  if device < 0 || device >= t.data_devices || dbn < 0 || dbn >= t.device_blocks then
    invalid_arg "Geometry: location out of bounds";
  (device * t.device_blocks) + dbn

(* Not [(location_of_vbn t vbn).dbn]: building the record would allocate,
   and this sits under Score.note_alloc on the per-block hot path. *)
let stripe_of_vbn t vbn =
  check_vbn t vbn;
  vbn mod t.device_blocks

let vbns_of_stripe t dbn =
  if dbn < 0 || dbn >= t.device_blocks then invalid_arg "Geometry: stripe out of bounds";
  List.init t.data_devices (fun device -> vbn_of_location t { device; dbn })

let device_vbn_range t device =
  if device < 0 || device >= t.data_devices then invalid_arg "Geometry: device out of bounds";
  Wafl_block.Extent.make ~start:(device * t.device_blocks) ~len:t.device_blocks

let pp fmt t =
  Format.fprintf fmt "raid(%dd+%dp, %d blocks/dev)" t.data_devices t.parity_devices
    t.device_blocks
