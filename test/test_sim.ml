(* Tests for Wafl_sim: cost_model and load sweeps. *)

open Wafl_core
open Wafl_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let astring_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let report ~ops ~pages ~device_us ~cache_work =
  {
    Cp.ops;
    blocks_allocated = ops;
    pvbns_freed = 0;
    vvbns_freed = 0;
    agg_metafile_pages = pages;
    vol_metafile_pages = 0;
    devices = [];
    device_time_us = device_us;
    cache_work;
    alloc_candidates = 0;
    fault_totals = None;
  }

let base = Cost_model.default.Cost_model.cpu_base_us_per_op

let test_cost_model_basics () =
  let costs = Cost_model.of_report (report ~ops:100 ~pages:0 ~device_us:0.0 ~cache_work:0) in
  Alcotest.(check (float 1e-6)) "pure cpu" base costs.Cost_model.cpu_us_per_op;
  Alcotest.(check (float 1e-6)) "service = cpu" base costs.Cost_model.service_time_us;
  check_int "ops" 100 costs.Cost_model.ops

let test_cost_model_pages_cost () =
  let with_pages = Cost_model.of_report (report ~ops:100 ~pages:50 ~device_us:0.0 ~cache_work:0) in
  let without = Cost_model.of_report (report ~ops:100 ~pages:0 ~device_us:0.0 ~cache_work:0) in
  check_bool "metafile pages cost cpu" true
    (with_pages.Cost_model.cpu_us_per_op > without.Cost_model.cpu_us_per_op);
  check_bool "and service time" true
    (with_pages.Cost_model.service_time_us > without.Cost_model.service_time_us)

let test_cost_model_device_time () =
  let costs =
    Cost_model.of_report (report ~ops:100 ~pages:0 ~device_us:10_000.0 ~cache_work:0)
  in
  Alcotest.(check (float 1e-6)) "device amortized" (base +. 100.0)
    costs.Cost_model.service_time_us

let test_cost_model_cache_share_tiny () =
  (* a realistic CP: a handful of cache work units among thousands of ops *)
  let costs = Cost_model.of_report (report ~ops:4000 ~pages:40 ~device_us:5e4 ~cache_work:100) in
  let share = costs.Cost_model.cache_us_per_op /. costs.Cost_model.cpu_us_per_op in
  check_bool "cache share well under 0.1%" true (share < 0.001)

let test_cost_model_combine () =
  let a = Cost_model.of_report (report ~ops:100 ~pages:0 ~device_us:0.0 ~cache_work:0) in
  let b = Cost_model.of_report (report ~ops:300 ~pages:0 ~device_us:0.0 ~cache_work:0) in
  let c = Cost_model.combine [ a; b ] in
  check_int "ops summed" 400 c.Cost_model.ops;
  Alcotest.(check (float 1e-6)) "weighted mean" base c.Cost_model.cpu_us_per_op

let test_cost_model_rejects_empty () =
  Alcotest.check_raises "empty CP" (Invalid_argument "Cost_model.of_report: empty CP")
    (fun () -> ignore (Cost_model.of_report (report ~ops:0 ~pages:0 ~device_us:0.0 ~cache_work:0)))

let test_sweep_shape () =
  let costs = Cost_model.of_report (report ~ops:100 ~pages:10 ~device_us:1e4 ~cache_work:5) in
  let curve = Load.sweep ~label:"test" costs in
  check_bool "has points" true (List.length curve.Load.points > 5);
  (* latency non-decreasing with offered load *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Load.latency_ms <= b.Load.latency_ms +. 1e-9 && monotone rest
    | _ -> true
  in
  check_bool "latency monotone in offered load" true (monotone curve.Load.points);
  (* throughput capped at the service capacity *)
  let cap = 1e6 /. costs.Cost_model.service_time_us in
  check_bool "peak under capacity" true (Load.peak_throughput curve <= cap)

let test_sweep_comparison () =
  (* slower service -> lower peak, higher latency at matched load *)
  let fast = Load.sweep ~label:"fast"
      (Cost_model.of_report (report ~ops:100 ~pages:0 ~device_us:0.0 ~cache_work:0))
  in
  let slow = Load.sweep ~label:"slow"
      (Cost_model.of_report (report ~ops:100 ~pages:100 ~device_us:5e4 ~cache_work:0))
  in
  check_bool "fast peaks higher" true (Load.peak_throughput fast > Load.peak_throughput slow);
  let load = Load.peak_throughput slow *. 0.5 in
  (match (Load.latency_at_load_ms fast load, Load.latency_at_load_ms slow load) with
  | Ok lf, Ok ls -> check_bool "fast lower latency" true (lf < ls)
  | Error e, _ | _, Error e -> Alcotest.fail ("interpolation failed: " ^ e));
  (* out-of-range loads explain themselves instead of silently dropping *)
  (match Load.latency_at_load_ms slow (Load.peak_throughput slow *. 1e3) with
  | Ok _ -> Alcotest.fail "overload should be an error"
  | Error msg ->
    check_bool "overload names peak throughput" true
      (astring_contains msg "exceeds peak throughput"));
  match Load.latency_at_load_ms slow 1e-9 with
  | Ok _ -> Alcotest.fail "underload should be an error"
  | Error msg ->
    check_bool "underload names lowest point" true
      (astring_contains msg "below the sweep's lowest point")

let test_measure_service_time_runs_cps () =
  let count = ref 0 in
  let step n =
    incr count;
    report ~ops:n ~pages:1 ~device_us:100.0 ~cache_work:1
  in
  let costs = Load.measure_service_time ~cps:5 ~ops_per_cp:50 ~step () in
  check_int "five cps" 5 !count;
  check_int "ops total" 250 costs.Cost_model.ops

let test_to_series () =
  let costs = Cost_model.of_report (report ~ops:100 ~pages:0 ~device_us:0.0 ~cache_work:0) in
  let curve = Load.sweep ~label:"s" costs in
  let series = Load.to_series curve in
  check_bool "named" true (series.Wafl_util.Series.name = "s");
  check_int "points preserved" (List.length curve.Load.points)
    (List.length series.Wafl_util.Series.points)

let () =
  Alcotest.run "wafl_sim"
    [
      ( "cost_model",
        [
          Alcotest.test_case "basics" `Quick test_cost_model_basics;
          Alcotest.test_case "pages cost" `Quick test_cost_model_pages_cost;
          Alcotest.test_case "device time" `Quick test_cost_model_device_time;
          Alcotest.test_case "cache share tiny" `Quick test_cost_model_cache_share_tiny;
          Alcotest.test_case "combine" `Quick test_cost_model_combine;
          Alcotest.test_case "rejects empty" `Quick test_cost_model_rejects_empty;
        ] );
      ( "load",
        [
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
          Alcotest.test_case "comparison" `Quick test_sweep_comparison;
          Alcotest.test_case "measure runs cps" `Quick test_measure_service_time_runs_cps;
          Alcotest.test_case "to_series" `Quick test_to_series;
        ] );
    ]
