let write_cost_us (p : Profile.hdd) ~chains ~blocks =
  (float_of_int chains *. p.Profile.seek_us)
  +. (float_of_int blocks *. p.Profile.transfer_us_per_block)

let random_read_cost_us (p : Profile.hdd) ~ios =
  float_of_int ios *. (p.Profile.seek_us +. p.Profile.transfer_us_per_block)

let sequential_read_cost_us p ~chains ~blocks = write_cost_us p ~chains ~blocks

let streaming_bandwidth_blocks_per_s p = 1_000_000.0 /. p.Profile.transfer_us_per_block
