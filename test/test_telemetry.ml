(* Tests for Wafl_telemetry: registry, tracer, exporters, and the
   zero-allocation guarantee on the disabled pick path. *)

open Wafl_telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Registry --- *)

let test_counter () =
  let r = Registry.create () in
  let c = Registry.counter r "cp.count" in
  check_int "fresh" 0 (Registry.count c);
  Registry.incr c;
  Registry.add c 41;
  check_int "incr+add" 42 (Registry.count c);
  (* get-or-register returns the same underlying counter *)
  Registry.incr (Registry.counter r "cp.count");
  check_int "shared handle" 43 (Registry.count c);
  Alcotest.check_raises "negative add" (Invalid_argument "Registry.add: negative increment")
    (fun () -> Registry.add c (-1))

let test_gauge () =
  let r = Registry.create () in
  let g = Registry.gauge r "err" in
  Registry.set g 0.5;
  Alcotest.(check (float 1e-9)) "set" 0.5 (Registry.value g);
  Registry.set_max g 0.25;
  Alcotest.(check (float 1e-9)) "set_max keeps larger" 0.5 (Registry.value g);
  Registry.set_max g 0.75;
  Alcotest.(check (float 1e-9)) "set_max takes larger" 0.75 (Registry.value g)

let test_kind_clash () =
  let r = Registry.create () in
  ignore (Registry.counter r "x");
  check_bool "gauge on counter name raises" true
    (try
       ignore (Registry.gauge r "x");
       false
     with Invalid_argument _ -> true)

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" in
  (* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
  List.iter (Registry.observe h) [ 0; 1; 1; 2; 3; 4; 7; 8; 1024 ];
  check_int "observations" 9 (Registry.observations h);
  check_int "sum" (0 + 1 + 1 + 2 + 3 + 4 + 7 + 8 + 1024) (Registry.sum h);
  check_int "bucket 0 (<=0)" 1 (Registry.bucket h 0);
  check_int "bucket 1 ([1,2))" 2 (Registry.bucket h 1);
  check_int "bucket 2 ([2,4))" 2 (Registry.bucket h 2);
  check_int "bucket 3 ([4,8))" 2 (Registry.bucket h 3);
  check_int "bucket 4 ([8,16))" 1 (Registry.bucket h 4);
  check_int "bucket 11 ([1024,2048))" 1 (Registry.bucket h 11);
  check_int "lower bound 4" 8 (Registry.bucket_lower_bound 4);
  Alcotest.(check (list (pair int int)))
    "nonempty buckets"
    [ (0, 1); (1, 2); (2, 2); (3, 2); (4, 1); (11, 1) ]
    (Registry.nonempty_buckets h)

let test_registry_enumeration () =
  let r = Registry.create () in
  ignore (Registry.counter r "a");
  ignore (Registry.gauge r "b");
  ignore (Registry.histogram r "c");
  let names =
    List.rev (Registry.fold r ~init:[] ~f:(fun acc m -> Registry.name m :: acc))
  in
  Alcotest.(check (list string)) "registration order" [ "a"; "b"; "c" ] names;
  check_bool "find hit" true (Registry.find r "b" <> None);
  check_bool "find miss" true (Registry.find r "zzz" = None);
  let c = Registry.counter r "a" in
  Registry.add c 5;
  Registry.clear r;
  check_int "clear zeroes, handle survives" 0 (Registry.count c)

(* --- Tracer --- *)

let test_tracer_ring () =
  let t = Tracer.create ~capacity:4 ~enabled:true () in
  Tracer.cp_begin t;
  for aa = 0 to 5 do
    Tracer.aa_pick t ~space:0 ~aa ~score:aa
  done;
  check_int "emitted counts overwritten" 7 (Tracer.emitted t);
  check_int "retained bounded" 4 (Tracer.length t);
  (* oldest first, and the cp_begin plus the first two picks fell off *)
  let aas =
    List.filter_map
      (function Tracer.Aa_pick { aa; _ } -> Some aa | _ -> None)
      (Tracer.to_list t)
  in
  Alcotest.(check (list int)) "oldest overwritten" [ 2; 3; 4; 5 ] aas

let test_tracer_disabled_still_stamps () =
  let t = Tracer.create ~capacity:8 () in
  check_bool "default disabled" false (Tracer.enabled t);
  Tracer.cp_begin t;
  Tracer.cp_begin t;
  Tracer.aa_pick t ~space:0 ~aa:1 ~score:1;
  check_int "nothing retained" 0 (Tracer.length t);
  Tracer.set_enabled t true;
  Tracer.aa_pick t ~space:0 ~aa:1 ~score:1;
  match Tracer.to_list t with
  | [ Tracer.Aa_pick { cp; _ } ] -> check_int "cp stamp advanced while disabled" 2 cp
  | _ -> Alcotest.fail "expected one pick event"

(* --- installation and helpers --- *)

let test_install_helpers () =
  Telemetry.uninstall ();
  (* all helpers are no-ops when nothing is installed *)
  Telemetry.incr "c";
  Telemetry.observe "h" 5;
  let ran = ref false in
  Telemetry.record ~label:"x" (fun () ->
      ran := true;
      []);
  check_bool "record thunk skipped when uninstalled" false !ran;
  let tel = Telemetry.create ~tracing:true () in
  Telemetry.with_installed tel (fun () ->
      check_bool "active" true (Telemetry.is_active ());
      Telemetry.incr "c";
      Telemetry.add "c" 2;
      Telemetry.set_gauge "g" 1.5;
      Telemetry.observe "h" 9;
      Telemetry.trace_cp_begin ();
      Telemetry.trace_aa_pick ~space:3 ~aa:7 ~score:100;
      Telemetry.record ~label:"cp" (fun () -> [ ("k", Telemetry.Int 1) ]));
  check_bool "uninstalled after" false (Telemetry.is_active ());
  (match Registry.find (Telemetry.registry tel) "c" with
  | Some (Registry.Counter c) -> check_int "counter through helpers" 3 (Registry.count c)
  | _ -> Alcotest.fail "counter not registered");
  check_int "one event traced" 1
    (List.length
       (List.filter
          (function Tracer.Aa_pick _ -> true | _ -> false)
          (Tracer.to_list (Telemetry.tracer tel))));
  match Telemetry.snapshots tel with
  | [ { Telemetry.seq = 1; label = "cp"; fields = [ ("k", Telemetry.Int 1) ] } ] -> ()
  | _ -> Alcotest.fail "snapshot mismatch"

(* --- exporters --- *)

let sample_telemetry () =
  let tel = Telemetry.create ~tracing:true () in
  Telemetry.with_installed tel (fun () ->
      Telemetry.add "cp.ops" 12;
      Telemetry.set_gauge "cache.hbps.score_error_max" 0.03125;
      Telemetry.observe "cp.blocks" 100;
      Telemetry.observe "cp.blocks" 3;
      Telemetry.trace_cp_begin ();
      Telemetry.trace_aa_pick ~space:0 ~aa:5 ~score:900;
      Telemetry.trace_cp_end ~ops:12 ~blocks:12 ~freed:0 ~pages:2 ~device_us:4.5;
      Telemetry.record ~label:"cp" (fun () ->
          [ ("ops", Telemetry.Int 12); ("err", Telemetry.Float 0.5);
            ("media", Telemetry.String "hdd") ]));
  tel

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_metrics_json () =
  let json = Export.metrics_json (sample_telemetry ()) in
  List.iter
    (fun fragment ->
      check_bool (Printf.sprintf "json contains %S" fragment) true
        (contains ~needle:fragment json))
    [
      "\"cp.ops\": 12";
      "\"cache.hbps.score_error_max\": 0.03125";
      "\"cp.blocks\"";
      "\"observations\": 2";
      "\"sum\": 103";
      "\"label\": \"cp\"";
      "\"media\": \"hdd\"";
      "\"emitted\": 3";
    ];
  (* crude structural validity: brackets and braces balance, no trailing comma *)
  let depth = ref 0 in
  String.iter
    (fun ch ->
      (match ch with '{' | '[' -> incr depth | '}' | ']' -> decr depth | _ -> ());
      check_bool "never negative depth" true (!depth >= 0))
    json;
  check_int "balanced" 0 !depth

let test_metrics_csv () =
  let csv = Export.metrics_csv (sample_telemetry ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_string "header" "kind,name,value" (List.hd lines);
  check_bool "counter row" true (List.mem "counter,cp.ops,12" lines);
  check_bool "histogram observations row" true
    (List.mem "histogram,cp.blocks.observations,2" lines)

let test_trace_exports () =
  let tel = sample_telemetry () in
  let csv = Export.trace_csv tel in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 3 events" 4 (List.length lines);
  check_string "header"
    "event,cp,space,aa,score,ops,blocks,freed,pages,listed,tetrises,full_stripes,partial_stripes,aas,relocated,reclaimed,device_us,transients,torn,failed,spikes,retries,ok,slo,burn_fast,burn_slow,violations"
    (List.hd lines);
  check_bool "pick row" true (List.mem "aa_pick,1,0,5,900,,,,,,,,,,,,,,,,,,,,,," lines);
  let json = Export.trace_json tel in
  check_bool "json array" true (json.[0] = '[')

(* --- the zero-allocation guarantee (§4.1.2 analogue) --- *)

let minor_words_during f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_tracing_allocates_nothing () =
  Telemetry.uninstall ();
  let emit_all () =
    for i = 1 to 10_000 do
      Telemetry.trace_aa_pick ~space:0 ~aa:i ~score:i;
      Telemetry.trace_cache_replenish ~space:0 ~listed:i;
      Telemetry.trace_tetris_write ~space:0 ~tetrises:1 ~full_stripes:1 ~partial_stripes:0;
      Telemetry.trace_free_commit ~space:0 ~freed:1 ~pages:1
    done
  in
  emit_all () (* warm up: fault in any one-time allocation *);
  let uninstalled = minor_words_during emit_all in
  check_bool
    (Printf.sprintf "uninstalled emitters allocate nothing (%.0f words)" uninstalled)
    true (uninstalled = 0.0);
  (* installed but tracing disabled: same guarantee on the pick path *)
  let tel = Telemetry.create () in
  Telemetry.with_installed tel (fun () ->
      emit_all ();
      let disabled = minor_words_during emit_all in
      check_bool
        (Printf.sprintf "disabled tracing allocates nothing (%.0f words)" disabled)
        true (disabled = 0.0));
  (* sanity: with tracing on the same loop does allocate (events are boxed) *)
  let tel = Telemetry.create ~tracing:true () in
  Telemetry.with_installed tel (fun () ->
      let enabled = minor_words_during emit_all in
      check_bool "enabled tracing allocates" true (enabled > 0.0))

let test_uninstalled_spans_allocate_nothing () =
  Telemetry.uninstall ();
  let loop () =
    for _ = 1 to 10_000 do
      Telemetry.span_enter Span.Pick;
      Telemetry.span_exit Span.Pick;
      Telemetry.span_enter Span.Cp;
      Telemetry.span_exit Span.Cp;
      ignore (Telemetry.now_ns ())
    done
  in
  loop () (* warm up *);
  let words = minor_words_during loop in
  check_bool
    (Printf.sprintf "uninstalled span enter/exit allocates nothing (%.0f words)" words)
    true (words = 0.0)

(* --- spans --- *)

let test_span_semantics () =
  let now = ref 0 in
  let s = Span.create ~clock:(fun () -> !now) () in
  check_int "fresh count" 0 (Span.count s Span.Cp);
  Span.enter s Span.Cp;
  check_int "open while running" 1 (Span.open_now s Span.Cp);
  check_int "no completion yet" 0 (Span.count s Span.Cp);
  now := 100;
  Span.enter s Span.Pick;
  now := 140;
  Span.exit s Span.Pick;
  now := 250;
  Span.exit s Span.Cp;
  check_int "pick total" 40 (Span.total_ns s Span.Pick);
  check_int "cp total" 250 (Span.total_ns s Span.Cp);
  check_int "cp count" 1 (Span.count s Span.Cp);
  check_int "closed" 0 (Span.open_now s Span.Cp);
  Span.exit s Span.Harvest;
  check_int "stray exit ignored" 0 (Span.count s Span.Harvest);
  check_int "stray exit adds no time" 0 (Span.total_ns s Span.Harvest);
  check_bool "cp is a root" true (Span.parent Span.Cp = None);
  check_bool "pick nests under cp" true (Span.parent Span.Pick = Some Span.Cp);
  check_bool "bit_clear nests under the commit" true
    (Span.parent Span.Bit_clear = Some Span.Activemap_commit);
  check_int "root depth" 0 (Span.depth Span.Cp);
  check_int "bit_clear depth" 2 (Span.depth Span.Bit_clear);
  check_bool "names are stable" true (Span.name Span.Device_flush = "cp.device_flush");
  Span.clear s;
  check_int "clear drops counts" 0 (Span.count s Span.Cp);
  check_int "clear drops totals" 0 (Span.total_ns s Span.Cp)

(* --- time series --- *)

let test_timeseries_ring () =
  check_bool "non-positive capacity rejected" true
    (try
       ignore (Timeseries.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true);
  let ts = Timeseries.create ~capacity:3 () in
  check_bool "append before schema rejected" true
    (try
       Timeseries.append ts [| 1.0 |];
       false
     with Invalid_argument _ -> true);
  Timeseries.set_columns ts [ "a"; "b" ];
  Timeseries.set_columns ts [ "a"; "b" ] (* same schema is idempotent *);
  check_bool "schema mismatch rejected" true
    (try
       Timeseries.set_columns ts [ "a"; "c" ];
       false
     with Invalid_argument _ -> true);
  check_bool "width mismatch rejected" true
    (try
       Timeseries.append ts [| 1.0 |];
       false
     with Invalid_argument _ -> true);
  for i = 1 to 4 do
    Timeseries.append ts [| float_of_int i; float_of_int (10 * i) |]
  done;
  check_int "retained bounded by capacity" 3 (Timeseries.length ts);
  check_int "lifetime count keeps growing" 4 (Timeseries.appended ts);
  Alcotest.(check (list (list (float 1e-9))))
    "oldest row overwritten"
    [ [ 2.0; 20.0 ]; [ 3.0; 30.0 ]; [ 4.0; 40.0 ] ]
    (List.map Array.to_list (Timeseries.rows ts));
  (match Timeseries.last ts with
  | Some row -> Alcotest.(check (float 1e-9)) "last row" 4.0 row.(0)
  | None -> Alcotest.fail "expected a last row");
  check_bool "column lookup" true (Timeseries.column_index ts "b" = Some 1);
  check_bool "column miss" true (Timeseries.column_index ts "z" = None);
  (* rows are copies: mutating a returned row cannot corrupt the ring *)
  (Timeseries.get ts 0).(0) <- 99.0;
  Alcotest.(check (float 1e-9)) "get returns copies" 2.0 (Timeseries.get ts 0).(0);
  Timeseries.clear ts;
  check_int "clear drops rows" 0 (Timeseries.length ts);
  check_int "clear drops lifetime count" 0 (Timeseries.appended ts);
  Alcotest.(check (list string)) "clear keeps schema" [ "a"; "b" ] (Timeseries.columns ts)

(* --- sharded histograms under real domains --- *)

let test_histogram_multi_domain () =
  let r = Registry.create () in
  let h = Registry.histogram r "par.hammer" in
  let jobs = 4 and per_chunk = 25_000 in
  Wafl_par.Par.with_pool ~jobs (fun pool ->
      Wafl_par.Par.run pool ~chunks:jobs ~f:(fun c ->
          for i = 1 to per_chunk do
            Registry.observe h (((c * per_chunk) + i) mod 37)
          done));
  (* pool task completion is the synchronising edge; totals must be exact *)
  check_int "no lost observations" (jobs * per_chunk) (Registry.observations h);
  let expected_sum =
    let s = ref 0 in
    for c = 0 to jobs - 1 do
      for i = 1 to per_chunk do
        s := !s + (((c * per_chunk) + i) mod 37)
      done
    done;
    !s
  in
  check_int "no lost sum" expected_sum (Registry.sum h);
  let bucket_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Registry.nonempty_buckets h)
  in
  check_int "buckets merge to the same total" (jobs * per_chunk) bucket_total;
  Registry.clear r;
  check_int "clear zeroes every shard" 0 (Registry.observations h)

(* --- span + time-series export round-trips --- *)

let json_get path v =
  let open Wafl_util.Json in
  List.fold_left
    (fun acc key -> match acc with Some v -> member key v | None -> None)
    (Some v) path

let span_telemetry () =
  let now = ref 0 in
  let tel = Telemetry.create ~clock:(fun () -> !now) () in
  Telemetry.with_installed tel (fun () ->
      Telemetry.span_enter Span.Cp;
      now := 10;
      Telemetry.span_enter Span.Pick;
      now := 25;
      Telemetry.span_exit Span.Pick;
      now := 100;
      Telemetry.span_exit Span.Cp;
      Telemetry.span_enter Span.Iron);
  tel

let test_span_json_roundtrip () =
  let tel = span_telemetry () in
  let v =
    match Wafl_util.Json.parse (Export.metrics_json tel) with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("metrics json does not parse: " ^ msg)
  in
  let num path =
    match json_get path v with
    | Some (Wafl_util.Json.Num x) -> x
    | _ -> Alcotest.fail ("missing numeric leaf " ^ String.concat "." path)
  in
  Alcotest.(check (float 1e-9)) "cp count" 1.0 (num [ "spans"; "cp"; "count" ]);
  Alcotest.(check (float 1e-9)) "cp total" 100.0 (num [ "spans"; "cp"; "total_ns" ]);
  Alcotest.(check (float 1e-9)) "pick total" 15.0 (num [ "spans"; "cp.pick"; "total_ns" ]);
  Alcotest.(check (float 1e-9)) "iron still open" 1.0 (num [ "spans"; "iron"; "open" ]);
  (match json_get [ "spans"; "cp.pick"; "parent" ] v with
  | Some (Wafl_util.Json.Str "cp") -> ()
  | _ -> Alcotest.fail "pick parent should be \"cp\"");
  (match json_get [ "spans"; "cp"; "parent" ] v with
  | Some Wafl_util.Json.Null -> ()
  | _ -> Alcotest.fail "root parent should be null");
  check_bool "unentered kinds omitted" true (json_get [ "spans"; "cleaner" ] v = None);
  let csv = Export.metrics_csv tel in
  check_bool "span rows in csv" true (contains ~needle:"span,cp.pick.total_ns,15" csv)

let sampled_telemetry () =
  let tel = Telemetry.create () in
  Telemetry.with_installed tel (fun () ->
      Telemetry.sample ~columns:(fun () -> [ "x"; "y" ]) (fun () -> [| 1.5; 2.0 |]);
      Telemetry.sample ~columns:(fun () -> [ "x"; "y" ]) (fun () -> [| 3.0; -0.25 |]));
  tel

let test_timeseries_json_roundtrip () =
  let tel = sampled_telemetry () in
  let v =
    match Wafl_util.Json.parse (Export.timeseries_json tel) with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("timeseries json does not parse: " ^ msg)
  in
  (match json_get [ "columns" ] v with
  | Some (Wafl_util.Json.List [ Wafl_util.Json.Str "x"; Wafl_util.Json.Str "y" ]) -> ()
  | _ -> Alcotest.fail "columns mismatch");
  (match json_get [ "appended" ] v with
  | Some (Wafl_util.Json.Num 2.0) -> ()
  | _ -> Alcotest.fail "appended mismatch");
  let rows =
    match json_get [ "rows" ] v with
    | Some (Wafl_util.Json.List rows) ->
      List.map
        (function
          | Wafl_util.Json.List cells ->
            List.map
              (function Wafl_util.Json.Num x -> x | _ -> Alcotest.fail "non-numeric cell")
              cells
          | _ -> Alcotest.fail "non-list row")
        rows
    | _ -> Alcotest.fail "rows missing"
  in
  Alcotest.(check (list (list (float 1e-9))))
    "rows round-trip exactly"
    (List.map Array.to_list (Timeseries.rows (Telemetry.series tel)))
    rows

let test_timeseries_csv_roundtrip () =
  let tel = sampled_telemetry () in
  let csv = Export.timeseries_csv tel in
  match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
    check_string "csv header is the schema" "x,y" header;
    let parsed =
      List.map
        (fun line -> List.map float_of_string (String.split_on_char ',' line))
        rows
    in
    Alcotest.(check (list (list (float 1e-9))))
      "csv rows round-trip exactly"
      (List.map Array.to_list (Timeseries.rows (Telemetry.series tel)))
      parsed
  | [] -> Alcotest.fail "empty csv"

let () =
  Alcotest.run "wafl_telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "enumeration" `Quick test_registry_enumeration;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring overwrite" `Quick test_tracer_ring;
          Alcotest.test_case "disabled stamps cp" `Quick test_tracer_disabled_still_stamps;
        ] );
      ( "install",
        [ Alcotest.test_case "helpers" `Quick test_install_helpers ] );
      ( "export",
        [
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "metrics csv" `Quick test_metrics_csv;
          Alcotest.test_case "trace csv+json" `Quick test_trace_exports;
        ] );
      ( "spans",
        [
          Alcotest.test_case "enter/exit semantics" `Quick test_span_semantics;
          Alcotest.test_case "json round-trip" `Quick test_span_json_roundtrip;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "ring + schema" `Quick test_timeseries_ring;
          Alcotest.test_case "json round-trip" `Quick test_timeseries_json_roundtrip;
          Alcotest.test_case "csv round-trip" `Quick test_timeseries_csv_roundtrip;
        ] );
      ( "sharded histograms",
        [
          Alcotest.test_case "multi-domain hammer" `Quick test_histogram_multi_domain;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled tracing allocates nothing" `Quick
            test_disabled_tracing_allocates_nothing;
          Alcotest.test_case "uninstalled spans allocate nothing" `Quick
            test_uninstalled_spans_allocate_nothing;
        ] );
    ]
