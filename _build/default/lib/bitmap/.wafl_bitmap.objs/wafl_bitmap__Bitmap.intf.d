lib/bitmap/bitmap.mli: Wafl_block
