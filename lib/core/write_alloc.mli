(** The WAFL write allocator (§3.1).

    Per physical range, the allocator takes the emptiest AA from the
    range's cache (or a random / first-fit AA when the cache is disabled),
    gathers that AA's free VBNs in allocation order, and hands them out
    sequentially until the AA is exhausted, then takes the next AA.  Across
    RAID groups it writes everywhere to maximize bandwidth, but biases the
    per-CP share toward emptier groups and can skip a group whose best AA
    score is under the fragmentation threshold (§3.3.1, §4.2).

    AAs taken from a cache are remembered so the CP boundary can re-file
    them with their updated scores (a heap entry would otherwise be lost,
    and an untouched HBPS entry would never re-qualify). *)

type t

val create : Aggregate.t -> rng:Wafl_util.Rng.t -> t

val aggregate : t -> Aggregate.t

val allocate_pvbns_into : t -> dst:int array -> int -> int
(** Allocate up to [n] physical blocks, spread over eligible ranges
    proportionally to their best-AA scores, writing them into
    [dst.(0 .. n-1)]; returns the count (fewer than [n] only when the
    aggregate runs out of allocatable space).  While the current AA's
    harvest ring lasts, the per-block loop allocates no heap words; AA
    refills amortize their small setup cost over a whole AA of blocks.
    (The PR-2 list-returning wrapper [allocate_pvbns] is gone; this
    caller-array form is the only allocation API.)

    On a lazily mounted system, the first pick from a stale range
    materializes its exact scores and cache ({!Rebuild.touch_range})
    before any score is trusted. *)

val allocate_vvbns_into : t -> Flexvol.t -> dst:int array -> int -> int
(** Allocate up to [n] virtual blocks in a volume, from its current AA
    onward, mirroring {!allocate_pvbns_into} (and like it, the only
    form — [allocate_vvbns] is gone). *)

val cp_finish : t -> unit
(** CP boundary: apply every range's and volume's batched score delta,
    re-file taken AAs, rebalance caches.  Clears per-CP state but keeps
    partially-consumed AA queues (WAFL continues filling an AA across
    CPs). *)

val register_vol : t -> Flexvol.t -> unit
(** Track a volume so {!cp_finish} updates its cache too. *)

val aas_taken : t -> int
(** Cumulative AAs taken from caches (all ranges and volumes). *)

val score_sum_taken : t -> int
(** Sum of scores of taken AAs at take time — divided by {!aas_taken} this
    is the "average free space in chosen AAs" the paper traces (§4.1.1). *)

val phys_take_trace : t -> int * int
(** (AAs taken, score sum) for physical ranges only. *)

val virt_take_trace : t -> int * int
(** (AAs taken, score sum) for volumes only — the §4.1.2 trace. *)

val candidates_scanned : t -> int
(** Cumulative bitmap positions examined while gathering free VBNs from
    AAs.  An AA yields its free blocks but costs a scan of its whole span,
    so emptier AAs amortize the allocation path over more blocks — the
    §2.5/§4.1.2 mechanism behind the CPU-per-op reduction. *)

val words_scanned : t -> int
(** Cumulative 32-bit bitmap words actually read by the harvest kernels —
    the word-at-a-time cost behind {!candidates_scanned}'s per-bit
    accounting.  Also emitted as the [write_alloc.words_scanned] counter. *)

val vbns_harvested : t -> int
(** Cumulative free VBNs harvested into cursor rings.  Also emitted as the
    [write_alloc.vbns_harvested] counter; the per-refill ring fill level is
    traced as the [write_alloc.ring_high_water] gauge. *)

val reset_take_stats : t -> unit
(** Zero the taken-AA trace counters (e.g. after aging, before
    measurement). *)
