(** Random-overwrite workload — the §4.1 measurement traffic.

    Clients send 8KiB random overwrites over configured LUNs; in 4KiB
    blocks each operation rewrites [blocks_per_op] (default 2) consecutive
    file blocks at a random aligned offset within the working set.

    With [hot_fraction] in (0, 1) and [hot_weight] in (0, 1] the offsets
    skew: a [hot_weight] share of the operations lands uniformly in the
    first [hot_fraction] of the working set, the rest uniformly in the
    remainder.  Skew is what gives write-temperature segregation something
    to separate — hot blocks die young, cold blocks linger — while the
    defaults (0, 0) keep the historical uniform stream bit-for-bit. *)

type t

val create :
  Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> working_set:int -> ?blocks_per_op:int ->
  ?file:int -> ?hot_fraction:float -> ?hot_weight:float ->
  rng:Wafl_util.Rng.t -> unit -> t

val step : t -> int -> Wafl_core.Cp.report
(** Stage [n] operations and run one CP. *)

val blocks_per_op : t -> int
