(* Tests for the request-latency subsystem: Hdrhist bucket math and
   quantile error bounds, multi-domain merge exactness, the modeled
   per-op clock, exemplar blame, SLO burn rates, and the prom/health
   renderings. *)

open Wafl_telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Hdrhist --- *)

let test_hdrhist_exact_small () =
  let h = Hdrhist.create () in
  for v = 0 to 63 do
    Hdrhist.record h v
  done;
  check_int "count" 64 (Hdrhist.count h);
  check_int "sum" (63 * 64 / 2) (Hdrhist.sum h);
  check_int "min" 0 (Hdrhist.min_value h);
  check_int "max" 63 (Hdrhist.max_value h);
  (* values under 64 land in exact unit buckets *)
  for v = 0 to 63 do
    let lo, hi = Hdrhist.bucket_bounds (Hdrhist.index_of v) in
    check_int "unit bucket lo" v lo;
    check_int "unit bucket hi" v hi
  done

let test_hdrhist_relative_error_bound () =
  (* every bucket's upper bound is within 1/32 of its lower bound *)
  let v = ref 64 in
  while !v < 1_000_000_000 do
    let lo, hi = Hdrhist.bucket_bounds (Hdrhist.index_of !v) in
    check_bool "value in bucket" true (lo <= !v && !v <= hi);
    check_bool "width <= lo/32" true (hi - lo + 1 <= (lo / 32) + 1);
    v := !v * 3 + 7
  done

(* Quantiles against an exact sorted reference: the estimate must be at
   least the true order statistic and overshoot by at most the bucket
   width (1/32 relative). *)
let test_hdrhist_quantile_vs_sorted () =
  let n = 10_000 in
  let values = Array.make n 0 in
  let x = ref 123_456_789 in
  for i = 0 to n - 1 do
    (* deterministic LCG, spanning several decades *)
    x := ((!x * 1_103_515_245) + 12_345) land 0x3FFFFFFF;
    values.(i) <- 1 + (!x mod 10_000_000)
  done;
  let h = Hdrhist.create () in
  Array.iter (Hdrhist.record h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let exact = sorted.(rank - 1) in
      let est = Hdrhist.quantile h q in
      check_bool
        (Printf.sprintf "q%.3f: est %d >= exact %d" q est exact)
        true (est >= exact);
      check_bool
        (Printf.sprintf "q%.3f: est %d <= exact %d + 1/32" q est exact)
        true
        (est <= exact + (exact / 32) + 1))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

let test_hdrhist_merge_exact () =
  let a = Hdrhist.create () and b = Hdrhist.create () in
  for i = 1 to 1000 do
    Hdrhist.record a (i * 17);
    Hdrhist.record b (i * 131)
  done;
  let dst = Hdrhist.create () in
  Hdrhist.merge_into ~dst a;
  Hdrhist.merge_into ~dst b;
  check_int "merged count" (Hdrhist.count a + Hdrhist.count b) (Hdrhist.count dst);
  check_int "merged sum" (Hdrhist.sum a + Hdrhist.sum b) (Hdrhist.sum dst);
  check_int "merged max" (Hdrhist.max_value b) (Hdrhist.max_value dst);
  check_int "merged min" (Hdrhist.min_value a) (Hdrhist.min_value dst)

(* --- multi-domain hammer: exact totals across concurrent recorders --- *)

let test_latency_multi_domain_merge () =
  let lat = Latency.create () in
  let vol = Latency.vol_slot lat ~uid:1 ~name:"hammer" in
  let per_domain = 20_000 in
  let record_some seed =
    for i = 1 to per_domain do
      Latency.record lat ~op:Latency.Write ~vol (1 + ((i * seed) land 0xFFFFF))
    done
  in
  let domains =
    List.map (fun seed -> Domain.spawn (fun () -> record_some seed)) [ 3; 5; 7 ]
  in
  record_some 11;
  List.iter Domain.join domains;
  let h = Latency.merged lat in
  check_int "exact total across domains" (4 * per_domain) (Hdrhist.count h);
  let expected_sum =
    List.fold_left
      (fun acc seed ->
        let s = ref 0 in
        for i = 1 to per_domain do
          s := !s + 1 + ((i * seed) land 0xFFFFF)
        done;
        acc + !s)
      0 [ 3; 5; 7; 11 ]
  in
  check_int "exact sum across domains" expected_sum (Hdrhist.sum h)

(* --- the modeled clock --- *)

let test_model_pinned_to_sim () =
  let m = Wafl_sim.Cost_model.latency_model Wafl_sim.Cost_model.default in
  check_bool "telemetry default model = sim cost model" true (m = Latency.default_model)

let test_cp_record_latency_bounds () =
  let lat = Latency.create () in
  let v = Latency.vol_slot lat ~uid:1 ~name:"v" in
  let n = 10 in
  Latency.cp_record lat ~groups:[ (v, n, 0) ] ~pages:0 ~cache_work:0 ~candidates:0
    ~device_us:0.0 ~spike_us:0.0 ~pick_ns:0 ~harvest_ns:0;
  (* pure-CPU CP: total = cpu_base * n; first CP's arrival window is its
     own duration, so op latencies span [total, total * (2n-1)/n) *)
  let total_ns =
    int_of_float (Latency.default_model.Latency.cpu_base_us_per_op *. float_of_int n)
    * 1000
  in
  let h = Latency.merged lat in
  check_int "one op per staged write" n (Hdrhist.count h);
  check_bool "min >= CP duration" true (Hdrhist.min_value h >= total_ns);
  check_bool "max < 2x CP duration" true (Hdrhist.max_value h < 2 * total_ns);
  check_int "cps" 1 (Latency.cps_recorded lat)

let test_cp_record_per_vol_keying () =
  let lat = Latency.create () in
  let a = Latency.vol_slot lat ~uid:1 ~name:"va" in
  let b = Latency.vol_slot lat ~uid:2 ~name:"vb" in
  check_bool "distinct slots" true (a <> b);
  check_int "slot stable on re-lookup" a (Latency.vol_slot lat ~uid:1 ~name:"va");
  Latency.cp_record lat
    ~groups:[ (a, 30, 0); (b, 0, 70) ]
    ~pages:0 ~cache_work:0 ~candidates:0 ~device_us:0.0 ~spike_us:0.0 ~pick_ns:0
    ~harvest_ns:0;
  check_int "vol a count" 30 (Hdrhist.count (Latency.merged ~vol:a lat));
  check_int "vol b count" 70 (Hdrhist.count (Latency.merged ~vol:b lat));
  check_int "op split: overwrites on b" 70
    (Hdrhist.count (Latency.merged ~op:Latency.Overwrite lat));
  check_bool "vols registered in order" true
    (Latency.vols lat = [ (a, "va"); (b, "vb") ])

let test_exemplar_blames_device_flush () =
  let lat = Latency.create () in
  let v = Latency.vol_slot lat ~uid:1 ~name:"v" in
  (* CP 1 arms the exemplar threshold *)
  Latency.cp_record lat ~groups:[ (v, 100, 0) ] ~pages:0 ~cache_work:0 ~candidates:0
    ~device_us:0.0 ~spike_us:0.0 ~pick_ns:0 ~harvest_ns:0;
  (* CP 2 is much slower and spike-dominated: its tail must be captured
     and blamed on the device flush *)
  Latency.cp_record lat ~groups:[ (v, 100, 0) ] ~pages:0 ~cache_work:0 ~candidates:0
    ~device_us:5_000_000.0 ~spike_us:4_000_000.0 ~pick_ns:0 ~harvest_ns:0;
  let exs = Latency.exemplars lat in
  check_bool "captured exemplars" true (exs <> []);
  let top = List.hd exs in
  check_bool "blames device flush" true (top.Latency.ex_phase = Span.Device_flush);
  check_bool "from a later cp than the armer" true (top.Latency.ex_cp >= 1);
  check_bool "stack names the phase" true
    (contains (Latency.phase_stack top.Latency.ex_phase) "device_flush")

let test_exemplar_blames_activemap () =
  let lat = Latency.create () in
  let v = Latency.vol_slot lat ~uid:1 ~name:"v" in
  Latency.cp_record lat ~groups:[ (v, 100, 0) ] ~pages:0 ~cache_work:0 ~candidates:0
    ~device_us:0.0 ~spike_us:0.0 ~pick_ns:0 ~harvest_ns:0;
  (* metafile pages dwarf every other cost component *)
  Latency.cp_record lat ~groups:[ (v, 100, 0) ] ~pages:100_000 ~cache_work:0
    ~candidates:0 ~device_us:0.0 ~spike_us:0.0 ~pick_ns:0 ~harvest_ns:0;
  let exs = Latency.exemplars lat in
  check_bool "captured exemplars" true (exs <> []);
  check_bool "blames activemap commit" true
    ((List.hd exs).Latency.ex_phase = Span.Activemap_commit)

(* --- SLO --- *)

let test_slo_parse_errors () =
  let bad s hint =
    match Slo.objective_of_string s with
    | Ok _ -> Alcotest.failf "accepted bad spec %S" s
    | Error msg -> check_bool (s ^ " explains itself") true (contains msg hint)
  in
  (* malformed shapes name the grammar; well-shaped but out-of-range
     values name the offending field *)
  List.iter
    (fun s -> bad s "NAME:MS:TARGET")
    [ ""; "writes"; "writes:5"; "writes:abc:0.9"; "a:b:c" ];
  bad "writes:5:1.5" "target must be a fraction in (0,1)";
  bad "writes:0:0.9" "threshold must be > 0 ms";
  match Slo.objective_of_string "writes:5:0.99" with
  | Error e -> Alcotest.fail e
  | Ok o ->
    check_bool "name" true (o.Slo.name = "writes");
    check_bool "roundtrip" true (Slo.objective_to_string o = "writes:5:0.99")

let test_slo_burn_and_breach () =
  let o =
    match Slo.objective ~name:"w" ~threshold_ms:1.0 ~target:0.9 with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let slo = Slo.create ~fast_window:2 ~slow_window:4 [ o ] in
  (* 50% violations against a 10% budget: burn 5.0 in both windows *)
  let tick v = Slo.cp_tick slo ~ops:100 ~violations:[| v |] in
  ignore (tick 50);
  let r = List.hd (tick 50) in
  check_bool "fast burn 5.0" true (abs_float (r.Slo.r_burn_fast -. 5.0) < 1e-9);
  check_bool "slow burn 5.0" true (abs_float (r.Slo.r_burn_slow -. 5.0) < 1e-9);
  check_bool "breach" true r.Slo.r_breach;
  (* clean CPs wash the fast window first: breach clears *)
  ignore (tick 0);
  let r = List.hd (tick 0) in
  check_bool "fast burn decays to 0" true (r.Slo.r_burn_fast < 1e-9);
  check_bool "slow window remembers" true (r.Slo.r_burn_slow > 1.0);
  check_bool "no breach once fast is clean" true (not r.Slo.r_breach)

let test_slo_violations_from_cp_record () =
  let o =
    match Slo.objective ~name:"tight" ~threshold_ms:0.001 ~target:0.999 with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let lat = Latency.create ~slo:(Slo.create [ o ]) () in
  let v = Latency.vol_slot lat ~uid:1 ~name:"v" in
  Latency.cp_record lat ~groups:[ (v, 50, 0) ] ~pages:0 ~cache_work:0 ~candidates:0
    ~device_us:0.0 ~spike_us:0.0 ~pick_ns:0 ~harvest_ns:0;
  match Latency.last_slo_reports lat with
  | [ r ] ->
    (* every modeled op takes ~1ms+, far over a 1us threshold *)
    check_int "all ops violate" 50 r.Slo.r_violations;
    check_bool "burning" true (r.Slo.r_burn_fast > 1.0)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

(* --- hooks and renderings --- *)

let test_uninstalled_hooks_inert () =
  check_bool "inactive" true (not (Telemetry.lat_active ()));
  check_int "slot -1" (-1) (Telemetry.lat_vol_slot ~uid:1 ~name:"x");
  check_bool "quantiles zero" true (Telemetry.lat_quantiles_ms ~vol:(-1) = (0., 0., 0.))

let e2e_tel () =
  let lat =
    Latency.create ~model:(Wafl_sim.Cost_model.latency_model Wafl_sim.Cost_model.default)
      ()
  in
  let tel = Telemetry.create ~latency:lat () in
  let rg =
    {
      Wafl_core.Config.media = Wafl_core.Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  let config =
    Wafl_core.Config.make ~raid_groups:[ rg ]
      ~vols:[ Wafl_core.Config.default_vol ~name:"vol0" ~blocks:65536 ]
      ~seed:7 ()
  in
  Telemetry.with_installed tel (fun () ->
      let fs = Wafl_core.Fs.create config in
      let vol = (Wafl_core.Fs.vols fs).(0) in
      for cp = 1 to 4 do
        for i = 1 to 200 do
          Wafl_core.Fs.stage_write fs ~vol ~file:1 ~offset:((cp * 1000) + i)
        done;
        ignore (Wafl_core.Fs.run_cp fs)
      done);
  (tel, lat)

let test_end_to_end_fs_run () =
  let tel, lat = e2e_tel () in
  check_int "every staged op recorded" 800 (Latency.ops_recorded lat);
  check_int "every cp ticked" 4 (Latency.cps_recorded lat);
  let p50, _, p999 = Latency.quantiles_ms lat in
  check_bool "p50 positive" true (p50 > 0.0);
  check_bool "p999 >= p50" true (p999 >= p50);
  check_bool "volume registered" true
    (List.exists (fun (_, n) -> n = "vol0") (Latency.vols lat));
  (* fixed time-series schema carries the latency columns *)
  let csv = Export.timeseries_csv tel in
  check_bool "lat_p50_ms column" true (contains csv "lat_p50_ms");
  check_bool "per-vol column" true (contains csv "lat_v0_p999_ms");
  (* health pane renders the latency section *)
  let health = Report.health tel in
  check_bool "latency pane" true (contains health "latency:");
  check_bool "quantiles shown" true (contains health "p999")

let test_prom_exposition () =
  let tel, _ = e2e_tel () in
  let prom = Export.metrics_prom tel in
  check_bool "histogram type line" true
    (contains prom "# TYPE wafl_op_latency_ms histogram");
  check_bool "labelled buckets" true
    (contains prom "wafl_op_latency_ms_bucket{op=\"write\",vol=\"vol0\",le=");
  check_bool "+Inf bucket" true (contains prom "le=\"+Inf\"");
  check_bool "count series" true
    (contains prom "wafl_op_latency_ms_count{op=\"write\",vol=\"vol0\"} 800");
  check_bool "overall quantile gauge" true
    (contains prom "wafl_op_latency_quantile_ms{quantile=\"0.999\"}");
  check_bool "per-vol quantile gauge" true
    (contains prom "wafl_op_latency_vol_quantile_ms{vol=\"vol0\",quantile=\"0.5\"}")

let test_record_path_zero_alloc () =
  let lat = Latency.create () in
  let vol = Latency.vol_slot lat ~uid:1 ~name:"z" in
  for i = 1 to 10_000 do
    Latency.record lat ~op:Latency.Write ~vol i
  done;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Latency.record lat ~op:Latency.Write ~vol (i * 31)
  done;
  let words = Gc.minor_words () -. before in
  check_bool "zero minor words on warm record path" true (words = 0.0)

let () =
  Alcotest.run "wafl_latency"
    [
      ( "hdrhist",
        [
          Alcotest.test_case "exact below 64" `Quick test_hdrhist_exact_small;
          Alcotest.test_case "relative error bound" `Quick test_hdrhist_relative_error_bound;
          Alcotest.test_case "quantile vs sorted" `Quick test_hdrhist_quantile_vs_sorted;
          Alcotest.test_case "merge exact" `Quick test_hdrhist_merge_exact;
        ] );
      ( "latency",
        [
          Alcotest.test_case "multi-domain merge" `Quick test_latency_multi_domain_merge;
          Alcotest.test_case "model pinned to sim" `Quick test_model_pinned_to_sim;
          Alcotest.test_case "cp_record bounds" `Quick test_cp_record_latency_bounds;
          Alcotest.test_case "per-vol keying" `Quick test_cp_record_per_vol_keying;
          Alcotest.test_case "exemplar device blame" `Quick test_exemplar_blames_device_flush;
          Alcotest.test_case "exemplar activemap blame" `Quick test_exemplar_blames_activemap;
          Alcotest.test_case "record path zero alloc" `Quick test_record_path_zero_alloc;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse errors" `Quick test_slo_parse_errors;
          Alcotest.test_case "burn and breach" `Quick test_slo_burn_and_breach;
          Alcotest.test_case "violations from cp_record" `Quick
            test_slo_violations_from_cp_record;
        ] );
      ( "integration",
        [
          Alcotest.test_case "uninstalled hooks inert" `Quick test_uninstalled_hooks_inert;
          Alcotest.test_case "end-to-end fs run" `Quick test_end_to_end_fs_run;
          Alcotest.test_case "prom exposition" `Quick test_prom_exposition;
        ] );
    ]
