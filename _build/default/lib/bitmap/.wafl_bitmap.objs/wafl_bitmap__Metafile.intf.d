lib/bitmap/metafile.mli: Bitmap Wafl_block
