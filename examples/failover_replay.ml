(* Failover: remount a crashed system with and without TopAA metafiles
   (§3.4), and survive a corrupted TopAA block.

   Run with: dune exec examples/failover_replay.exe *)

open Wafl_util
open Wafl_core
open Wafl_workload

let () =
  (* A system with four volumes, aged enough that the AA caches matter. *)
  let raid_group =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 32768;
      aa_stripes = Some 1024;
    }
  in
  let vols =
    List.init 4 (fun i -> Config.default_vol ~name:(Printf.sprintf "vol%d" i) ~blocks:65536)
  in
  let config = Config.make ~raid_groups:[ raid_group ] ~vols ~seed:99 () in
  let fs = Fs.create config in
  let rng = Rng.create ~seed:5 in
  List.iteri
    (fun i _ ->
      let vol = Fs.vol fs (Printf.sprintf "vol%d" i) in
      let ws = Aging.fill fs vol { Aging.default with Aging.fill_fraction = 0.1 *. float_of_int (i + 2) } in
      Aging.fragment fs vol
        { Aging.default with Aging.fragmentation_cps = 10; writes_per_cp = 500 }
        ~working_set:ws ~rng)
    vols;
  Printf.printf "before crash: %.0f%% used, %d CPs completed\n"
    (100.0 *. Aggregate.used_fraction (Fs.aggregate fs))
    (Fs.cps_completed fs);

  (* The last CP persisted the TopAA metafiles alongside the bitmaps. *)
  let image = Mount.snapshot fs in

  (* Takeover path A: seed the caches from TopAA — constant work. *)
  let fs_fast, fast = Mount.mount image ~with_topaa:true in
  Printf.printf "mount with TopAA:    ready in %8.2f ms (%d blocks read)\n"
    (fast.Mount.ready_us /. 1000.0) fast.Mount.topaa_blocks_read;

  (* Takeover path B: linear bitmap scan — grows with capacity. *)
  let fs_slow, slow = Mount.mount image ~with_topaa:false in
  Printf.printf "mount without TopAA: ready in %8.2f ms (%d metafile pages scanned, %d AAs scored)\n"
    (slow.Mount.ready_us /. 1000.0) slow.Mount.metafile_pages_scanned slow.Mount.aas_scored;
  Printf.printf "TopAA speedup: %.0fx\n" (slow.Mount.ready_us /. fast.Mount.ready_us);

  (* Both paths resume identical allocation behaviour. *)
  let a = Array.make 64 0 and b = Array.make 64 0 in
  let got_a = Write_alloc.allocate_pvbns_into (Fs.write_alloc fs_fast) ~dst:a 64 in
  let got_b = Write_alloc.allocate_pvbns_into (Fs.write_alloc fs_slow) ~dst:b 64 in
  Printf.printf "first 64 allocations after mount agree: %b\n" (got_a = got_b && a = b);

  (* Corruption: a damaged TopAA block is detected by its checksum; the
     mount falls back to the scan path for that cache (in the real system,
     WAFL Iron would repair it). *)
  let heap = Wafl_aacache.Max_heap.of_scores [| 3; 1; 4 |] in
  let block = Wafl_aacache.Topaa.save_raid_aware heap in
  Wafl_bitmap.Pagestore.set_byte block 42 0xff;
  (match Wafl_aacache.Topaa.load_raid_aware block with
  | Error e -> Format.printf "corrupted TopAA block rejected: %a@." Wafl_aacache.Topaa.pp_error e
  | Ok _ -> print_endline "BUG: corruption not detected")
