open Wafl_util

type t = {
  max_score : int;
  bin_width : int;
  list_capacity : int;
  histo : Histo.t;         (* counts ALL AAs by score bin *)
  score_of : int array;    (* authoritative tracked score per AA *)
  entries : int array;     (* list page: AA ids, grouped by bin, highest bin first *)
  pos : int array;         (* AA id -> index in entries, -1 when unlisted *)
  seg_len : int array;     (* per bin, number of listed AAs *)
  mutable count : int;
}

let bin_of t score = Histo.bin_of_value t.histo score

let create ?bin_width ?(capacity = 1000) ~max_score ~scores () =
  let bin_width = match bin_width with Some w -> w | None -> max 1 (max_score / 32) in
  assert (max_score > 0 && bin_width > 0 && capacity > 0);
  let histo = Histo.create ~max_value:max_score ~bin_width in
  let t =
    {
      max_score;
      bin_width;
      list_capacity = capacity;
      histo;
      score_of = Array.copy scores;
      entries = Array.make capacity 0;
      pos = Array.make (Array.length scores) (-1);
      seg_len = Array.make (Histo.bins histo) 0;
      count = 0;
    }
  in
  Array.iter (fun s -> Histo.add histo s) scores;
  t

let n_aas t = Array.length t.score_of
let capacity t = t.list_capacity
let bin_width t = t.bin_width
let max_score t = t.max_score
let count t = t.count
let bins t = Histo.bins t.histo
let histogram_count t ~bin = Histo.count t.histo bin
let error_margin t = float_of_int t.bin_width /. float_of_int t.max_score

let score t ~aa = t.score_of.(aa)
let mem_list t ~aa = t.pos.(aa) >= 0

(* start index of bin b's segment = total length of higher-bin segments *)
let seg_starts t =
  let n = bins t in
  let starts = Array.make n 0 in
  let acc = ref 0 in
  for b = n - 1 downto 0 do
    starts.(b) <- !acc;
    acc := !acc + t.seg_len.(b)
  done;
  starts

let highest_populated_bin t = Histo.highest_nonempty t.histo

let highest_listed_bin t =
  let rec go b = if b < 0 then None else if t.seg_len.(b) > 0 then Some b else go (b - 1) in
  go (bins t - 1)

let lowest_listed_bin t =
  let rec go b = if b >= bins t then None else if t.seg_len.(b) > 0 then Some b else go (b + 1) in
  go 0

let pick_best t = if t.count = 0 then None else begin
    let aa = t.entries.(0) in
    Some (aa, t.score_of.(aa))
  end

let top_score t = if t.count = 0 then 0 else t.score_of.(t.entries.(0))

(* Remove the listed AA at entries position [p], belonging to bin [b].
   Fill the hole with the last element of b's segment, then shift each
   lower listed bin left by one (moving its last element to its front-1) so
   the segments stay packed. *)
let remove_at t p b =
  let starts = seg_starts t in
  let end_of bin = starts.(bin) + t.seg_len.(bin) in
  let removed = t.entries.(p) in
  t.pos.(removed) <- -1;
  let hole = ref p in
  let fill_from src =
    if src <> !hole then begin
      let moved = t.entries.(src) in
      t.entries.(!hole) <- moved;
      t.pos.(moved) <- !hole
    end;
    hole := src
  in
  fill_from (end_of b - 1);
  t.seg_len.(b) <- t.seg_len.(b) - 1;
  (* lower bins, highest first *)
  for j = b - 1 downto 0 do
    if t.seg_len.(j) > 0 then fill_from (end_of j - 1)
  done;
  t.count <- t.count - 1

(* Insert AA into bin b's segment; requires count < capacity and aa not
   listed.  The hole starts past the last element and is walked up through
   the front of each listed bin below b — each such bin has exactly one AA
   "moved down" to the next position, per the paper. *)
let insert_into t aa b =
  assert (t.count < t.list_capacity && t.pos.(aa) < 0);
  let starts = seg_starts t in
  let hole = ref t.count in
  for j = 0 to b - 1 do
    if t.seg_len.(j) > 0 then begin
      let src = starts.(j) in
      if src <> !hole then begin
        let moved = t.entries.(src) in
        t.entries.(!hole) <- moved;
        t.pos.(moved) <- !hole
      end;
      hole := src
    end
  done;
  t.entries.(!hole) <- aa;
  t.pos.(aa) <- !hole;
  t.seg_len.(b) <- t.seg_len.(b) + 1;
  t.count <- t.count + 1

let evict_lowest t =
  match lowest_listed_bin t with
  | None -> ()
  | Some j ->
    (* lowest bin's segment is last; its last element sits at count-1 *)
    let victim = t.entries.(t.count - 1) in
    t.pos.(victim) <- -1;
    t.seg_len.(j) <- t.seg_len.(j) - 1;
    t.count <- t.count - 1

let maybe_insert t aa b =
  if t.count < t.list_capacity then insert_into t aa b
  else begin
    match lowest_listed_bin t with
    | Some j when b > j ->
      evict_lowest t;
      insert_into t aa b
    | Some _ | None -> ()
  end

let take_best t =
  match pick_best t with
  | None -> None
  | Some (aa, s) ->
    remove_at t t.pos.(aa) (bin_of t s);
    Some (aa, s)

(* Claim-aware take: the first listed entry satisfying [keep].  Entries
   are grouped by bin, highest bin first, so the scan finds an AA from
   the best bin that still has an unclaimed member — the same one-bin
   error bound as {!take_best} — without disturbing any other entry. *)
let take_best_filtered t ~keep =
  let rec find i =
    if i >= t.count then None
    else begin
      let aa = t.entries.(i) in
      if keep aa then begin
        let s = t.score_of.(aa) in
        remove_at t i (bin_of t s);
        Some (aa, s)
      end
      else find (i + 1)
    end
  in
  find 0

let update t ~aa ~score:new_score =
  if new_score < 0 || new_score > t.max_score then invalid_arg "Hbps.update: score out of range";
  let old_score = t.score_of.(aa) in
  if new_score <> old_score then begin
    Histo.move t.histo ~from_value:old_score ~to_value:new_score;
    t.score_of.(aa) <- new_score;
    let b_old = bin_of t old_score and b_new = bin_of t new_score in
    if t.pos.(aa) >= 0 then begin
      if b_old <> b_new then begin
        remove_at t t.pos.(aa) b_old;
        maybe_insert t aa b_new
      end
    end
    else
      (* Unlisted AA: a free may have promoted it into the qualifying
         ranges (§3.3.2 "inserted into the list ... index changed");
         [maybe_insert] admits it when there is room or it beats the
         lowest listed bin. *)
      maybe_insert t aa b_new
  end

let apply_updates t updates = List.iter (fun (aa, s) -> update t ~aa ~score:s) updates

let is_stale t =
  match (highest_populated_bin t, highest_listed_bin t) with
  | Some hp, Some hl -> hp > hl
  | Some _, None -> true
  | None, _ -> false

let needs_replenish ?low_water t =
  let low_water = match low_water with Some w -> w | None -> t.list_capacity / 4 in
  t.count < low_water || is_stale t

let replenish ?(excluded = fun _ -> false) t =
  (* Clear the list page. *)
  for i = 0 to t.count - 1 do
    t.pos.(t.entries.(i)) <- -1
  done;
  Array.fill t.seg_len 0 (bins t) 0;
  t.count <- 0;
  (* One pass over all AAs, bucketing by bin — the background scan of the
     bitmap metafiles. *)
  let buckets = Array.make (bins t) [] in
  Array.iteri
    (fun aa s -> if not (excluded aa) then begin
         let b = bin_of t s in
         buckets.(b) <- aa :: buckets.(b)
       end)
    t.score_of;
  let b = ref (bins t - 1) in
  while t.count < t.list_capacity && !b >= 0 do
    let rec fill = function
      | [] -> ()
      | aa :: rest ->
        if t.count < t.list_capacity then begin
          (* direct append: bins are processed best-first so segments pack
             naturally in descending bin order *)
          t.entries.(t.count) <- aa;
          t.pos.(aa) <- t.count;
          t.seg_len.(!b) <- t.seg_len.(!b) + 1;
          t.count <- t.count + 1;
          fill rest
        end
    in
    fill buckets.(!b);
    decr b
  done

let to_list t = List.init t.count (fun i -> (t.entries.(i), t.score_of.(t.entries.(i))))

let check_invariant t =
  let ok = ref true in
  (* counts *)
  if Array.fold_left ( + ) 0 t.seg_len <> t.count then ok := false;
  if Histo.total t.histo <> n_aas t then ok := false;
  (* histogram matches score_of *)
  let expected = Array.make (bins t) 0 in
  Array.iter (fun s -> expected.(bin_of t s) <- expected.(bin_of t s) + 1) t.score_of;
  Array.iteri (fun b c -> if Histo.count t.histo b <> c then ok := false) expected;
  (* segment layout: entries grouped by bin, highest first *)
  let starts = seg_starts t in
  Array.iteri
    (fun b len ->
      for i = starts.(b) to starts.(b) + len - 1 do
        let aa = t.entries.(i) in
        if bin_of t t.score_of.(aa) <> b then ok := false;
        if t.pos.(aa) <> i then ok := false
      done)
    t.seg_len;
  (* pos index: listed iff pos >= 0 *)
  Array.iteri
    (fun aa p ->
      if p >= 0 then begin
        if p >= t.count || t.entries.(p) <> aa then ok := false
      end)
    t.pos;
  !ok

let check_complete t =
  match lowest_listed_bin t with
  | None -> t.count = 0
  | Some lowest ->
    let ok = ref (check_invariant t) in
    for b = lowest + 1 to bins t - 1 do
      if t.seg_len.(b) <> Histo.count t.histo b then ok := false
    done;
    !ok
