lib/raid/tetris.mli: Format Geometry
