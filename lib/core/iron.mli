(** Online consistency checking and repair, in the spirit of WAFL Iron
    (§3.4: when TopAA or other metadata is damaged beyond RAID's ability to
    reconstruct, an online repair tool recomputes it from first
    principles).

    The checker cross-verifies the redundant state this library maintains:
    container maps against allocation bitmaps, cached AA scores against
    bitmap recomputation, and physical cross-links between volumes.  The
    repairer fixes what can be derived from the bitmaps (score drift,
    dangling references) and reports what cannot (orphaned blocks need an
    owner inventory the caller may not have). *)

type finding =
  | Range_score_drift of { range : int; aa : int; cached : int; actual : int }
      (** a RAID-range AA score disagrees with the bitmap *)
  | Vol_score_drift of { vol : string; aa : int; cached : int; actual : int }
  | Dangling_container of { vol : string; vvbn : int; pvbn : int }
      (** a container entry points at a physical block the aggregate
          considers free *)
  | Cross_link of { pvbn : int; vols : string list }
      (** one physical block referenced by more than one virtual block *)
  | Orphan_blocks of { count : int }
      (** allocated physical blocks no volume references (may be
          intentional: internal metadata, test rigs) *)

val pp_finding : Format.formatter -> finding -> unit

val check : ?pool:Wafl_par.Par.t -> Fs.t -> finding list
(** Scan everything; empty list = consistent.  With a pool (explicit, or
    installed via [Wafl_par.Par.install]) the score-drift and orphan
    scans — pure bitmap reads — are chunked over its domains, with
    per-chunk findings concatenated in chunk order, so the finding list
    is identical to a serial check at any domain count.  The
    container-reference walk (which builds the shared owner table) stays
    serial. *)

type authority =
  | Bitmap_authority
      (** the allocation bitmaps are truth: dangling container entries are
          severed; orphans are left alone *)
  | Container_authority
      (** the container maps are truth (they reached NVRAM): dangling
          entries re-mark their physical block allocated, and orphaned
          allocated blocks are freed — the stance crash recovery needs
          when a bitmap page write was torn *)

val repair : ?authority:authority -> ?pool:Wafl_par.Par.t -> Fs.t -> finding list * int
(** Run {!check}, then fix what is derivable under [authority] (default
    {!Bitmap_authority}): score drift is repaired by recomputing scores
    and rebuilding the affected caches; dangling container entries are
    cleared (or re-marked, under {!Container_authority}, which also frees
    orphans).  Cross-links are reported but left alone.  Returns
    (original findings, number repaired). *)
