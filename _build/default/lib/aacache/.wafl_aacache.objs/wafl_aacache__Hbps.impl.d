lib/aacache/hbps.ml: Array Histo List Wafl_util
