open Wafl_bitmap
open Wafl_telemetry
module Par = Wafl_par.Par

(* Background pagestore scrubber.

   Storage that is only read when it is needed is storage whose rot is
   only found when it is too late; real filers continuously re-read and
   re-checksum cold blocks.  This module does the same for the persisted
   free-space state: between CPs it verifies a bounded number of
   integrity pages (the rate) against their CRC sidecars, round-robin
   across every tracked store of the system that just committed, and
   self-heals what it finds — the damaged span is quarantined through
   {!Rebuild} and the bitmap-vs-container disagreement settled by
   {!Iron.repair} under container authority, after which the page is
   resealed as the new truth.

   The scrubber is a post-CP hook ({!Fs.add_post_cp_hook}), so it costs
   nothing on the allocation hot path and rides the same cadence as the
   CP pipeline; the per-CP budget makes a full sweep take
   [total_pages / rate] CPs, a knob directly comparable to the
   rate-limited media scrubs of production systems. *)

type stats = { pages_verified : int; bad_pages : int; healed : int; passes : int }

let zero_stats = { pages_verified = 0; bad_pages = 0; healed = 0; passes = 0 }

type owner = Agg | Vol of Flexvol.t

(* Round-robin cursor per system, keyed by physical identity.  The page
   total can change across remount epochs; the cursor is re-wrapped
   against the current total each pass. *)
let cursors : (Fs.t * int ref) list ref = ref []

let cursor fs =
  match List.find_opt (fun (f, _) -> f == fs) !cursors with
  | Some (_, c) -> c
  | None ->
    let c = ref 0 in
    cursors := (fs, c) :: !cursors;
    c

(* The scannable universe of a system: every integrity-tracked metafile
   store, as (store, owner, n_pages). *)
let tracked_stores fs =
  let aggregate = Fs.aggregate fs in
  let stores =
    (Metafile.store (Aggregate.metafile aggregate), Agg)
    :: Array.to_list
         (Array.map (fun v -> (Metafile.store (Flexvol.metafile v), Vol v)) (Fs.vols fs))
  in
  List.filter_map
    (fun (store, owner) ->
      match Integrity.n_pages store with
      | Some n when n > 0 -> Some (store, owner, n)
      | _ -> None)
    stores

let heal ?pool fs store owner page =
  let aggregate = Fs.aggregate fs in
  (match owner with
  | Agg ->
    let bits_per_page = 8 * Integrity.page_size in
    let vbn0 = page * bits_per_page in
    let vbn1 = min (Aggregate.total_blocks aggregate) ((page + 1) * bits_per_page) - 1 in
    let rs =
      Array.to_list (Aggregate.ranges aggregate)
      |> List.filter (fun (r : Aggregate.range) ->
             r.Aggregate.base <= vbn1 && r.Aggregate.base + r.Aggregate.blocks - 1 >= vbn0)
    in
    if rs <> [] then Rebuild.request ?pool aggregate (Rebuild.Ranges rs)
  | Vol vol -> Rebuild.request_vol ?pool vol);
  (* The page's bits are damaged and there is no replica to read back: the
     container maps are the redundant copy.  Container-authority repair
     re-marks every block they reference and frees the orphans, which
     rewrites the activemap truth the page should have held. *)
  ignore (Iron.repair ~authority:Iron.Container_authority ?pool fs);
  Integrity.reseal_page store page

let pass ?pool fs ~budget =
  let tracked = tracked_stores fs in
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 tracked in
  if total = 0 || budget <= 0 then zero_stats
  else begin
    Telemetry.span_enter Span.Scrub;
    Fun.protect
      ~finally:(fun () -> Telemetry.span_exit Span.Scrub)
      (fun () ->
        let c = cursor fs in
        let start = !c mod total in
        let n = min budget total in
        (* Flatten cursor positions into (store, owner, page) probes. *)
        let probes =
          Array.init n (fun i ->
              let g = (start + i) mod total in
              let rec locate g = function
                | [] -> assert false
                | (store, owner, pages) :: rest ->
                  if g < pages then (store, owner, g) else locate (g - pages) rest
              in
              locate g tracked)
        in
        (* CRC verification is pure page reads — chunk it over the pool.
           [verify_page] classifies against already-synced sidecar state,
           so pool domains never race on it; healing stays serial. *)
        let verdicts =
          match Par.resolve pool with
          | Some p when Par.jobs p > 1 && n > 1 ->
            Par.map p ~chunks:(min n (Par.jobs p * 4)) ~f:(fun i ->
                let store, _, page = probes.(i) in
                Integrity.verify_page store page)
          | _ ->
            Array.map (fun (store, _, page) -> Integrity.verify_page store page) probes
        in
        let bad = ref 0 and healed = ref 0 in
        Array.iteri
          (fun i verdict ->
            match verdict with
            | Some Integrity.Torn | Some Integrity.Stale ->
              let store, owner, page = probes.(i) in
              incr bad;
              heal ?pool fs store owner page;
              incr healed
            | _ -> ())
          verdicts;
        c := (start + n) mod total;
        Telemetry.incr "scrub.passes";
        Telemetry.add "scrub.pages_verified" n;
        if !bad > 0 then begin
          Telemetry.add "scrub.bad_pages" !bad;
          Telemetry.add "scrub.healed" !healed
        end;
        { pages_verified = n; bad_pages = !bad; healed = !healed; passes = 1 })
  end

(* --- process-wide enablement ------------------------------------------- *)

let rate = ref 0
let hook_pool : Par.t option ref = ref None
let hook_registered = ref false

let enable ?pool ~rate:r () =
  if r < 0 then invalid_arg "Scrub.enable: negative rate";
  rate := r;
  hook_pool := pool;
  if not !hook_registered then begin
    hook_registered := true;
    Fs.add_post_cp_hook (fun fs ->
        if !rate > 0 then ignore (pass ?pool:!hook_pool fs ~budget:!rate))
  end

let disable () = rate := 0
let enabled () = !rate > 0
let current_rate () = !rate
