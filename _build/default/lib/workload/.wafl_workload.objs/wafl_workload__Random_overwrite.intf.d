lib/workload/random_overwrite.mli: Wafl_core Wafl_util
