(** Advanced zone checksums (AZCS).

    On drives with 4KiB-aligned sectors there is no room to store WAFL's
    64-byte per-block identifier inline, so 63 consecutive data blocks share
    the 64th block as their checksum block (§3.2.4, Figure 4).  When an
    allocation area boundary falls inside an AZCS region, finishing writes
    at the end of one AA and later writing the rest of the region from
    another AA forces a {e random} (non-sequential) write of the shared
    checksum block — the cost Figure 9 measures on SMR drives.

    {!tracker} consumes an ordered stream of data-block writes and derives
    the checksum-block writes together with their sequential/random
    classification. *)

val region_blocks : int
(** 64: 63 data blocks + 1 checksum block. *)

val data_blocks : int
(** 63. *)

val region_of_block : int -> int
(** AZCS region index of a device block. *)

val checksum_block : region:int -> int
(** Device block number of a region's checksum block (its last block). *)

val is_checksum_block : int -> bool

val is_aligned : int -> bool
(** Whether a size or boundary (in {e device} blocks) is a multiple of the
    region size — the AA-sizing condition of §3.2.4 / Figure 4 (C). *)

val is_data_aligned : int -> bool
(** The same condition expressed in {e data} blocks (file-system VBNs,
    which exclude checksum blocks): a multiple of 63. *)

val data_capacity : int -> int
(** Usable data blocks within [n] total blocks laid out as AZCS regions. *)

val device_position_of_data : int -> int
(** Where the [i]-th data block of an AZCS-formatted span lands on the
    device: a checksum block is interleaved after every 63 data blocks, so
    [i + i/63]. *)

val device_span_of_data : int -> int
(** Device blocks needed to store [n] data blocks with their interleaved
    checksum blocks: [n + ceil(n/63)]. *)

(** {2 Write-stream tracking} *)

type tracker

type checksum_write = {
  block : int;       (** checksum block written *)
  sequential : bool; (** true when appended in order after its full region *)
}

type summary = {
  data_writes : int;
  sequential_checksum_writes : int;
  random_checksum_writes : int;
}

val create_tracker : unit -> tracker

val set_tracker_fault : tracker -> Wafl_fault.Fault.device option -> unit
(** Attach (or detach) a fault-injection handle.  The tracker consults it
    when it emits a checksum-block write: a torn or failed checksum write
    is classified as random (the drive must rewrite it out of order). *)

val write : tracker -> int -> checksum_write list
(** Feed the next data-block write position (must not be a checksum block).
    Returns the checksum-block writes this transition triggers: leaving a
    region whose data blocks were all written in-order in a single visit
    yields a sequential checksum write; leaving a partially-written region
    yields a random one. *)

val finish : tracker -> checksum_write list
(** Flush the trailing region at end of stream. *)

val summary : tracker -> summary
