open Wafl_util

type point = { offered_load : float; throughput : float; latency_ms : float }

type curve = {
  label : string;
  service_time_us : float;
  cpu_us_per_op : float;
  cache_us_per_op : float;
  points : point list;
}

let measure_service_time ?model ~cps ~ops_per_cp ~step () =
  assert (cps > 0 && ops_per_cp > 0);
  let reports = List.init cps (fun _ -> step ops_per_cp) in
  Cost_model.combine (List.map (fun r -> Cost_model.of_report ?model r) reports)

let default_loads capacity =
  List.map (fun frac -> frac *. capacity)
    [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.85; 0.9; 0.95; 1.0; 1.1; 1.3; 1.6 ]

let sweep ~label ?(cv2 = 1.0) ?loads (costs : Cost_model.op_costs) =
  let service_s = costs.Cost_model.service_time_us *. 1e-6 in
  let capacity = 1.0 /. service_s in
  let loads = match loads with Some l -> l | None -> default_loads capacity in
  let throughput = ref 0.0 and latency = ref 0.0 in
  let points =
    List.map
      (fun offered_load ->
        Queueing.closed_loop_point ~service_time:service_s ~cv2 ~offered_load ~throughput
          ~latency;
        { offered_load; throughput = !throughput; latency_ms = !latency *. 1e3 })
      loads
  in
  {
    label;
    service_time_us = costs.Cost_model.service_time_us;
    cpu_us_per_op = costs.Cost_model.cpu_us_per_op;
    cache_us_per_op = costs.Cost_model.cache_us_per_op;
    points;
  }

let peak_throughput curve =
  List.fold_left (fun acc p -> Float.max acc p.throughput) 0.0 curve.points

let latency_at_peak_ms curve =
  let peak = peak_throughput curve in
  (* latency of the first point achieving peak throughput *)
  let rec find = function
    | [] -> 0.0
    | p :: rest -> if p.throughput >= peak -. 1e-9 then p.latency_ms else find rest
  in
  find curve.points

let latency_at_load_ms curve load =
  let sorted = List.sort (fun a b -> compare a.offered_load b.offered_load) curve.points in
  match sorted with
  | [] -> Error (Printf.sprintf "curve %S has no points" curve.label)
  | first :: _ ->
    let last = List.nth sorted (List.length sorted - 1) in
    if load < first.offered_load then
      Error
        (Printf.sprintf
           "offered load %.0f ops/s is below the sweep's lowest point \
            (%.0f ops/s) for curve %S"
           load first.offered_load curve.label)
    else if load > last.offered_load then
      Error
        (Printf.sprintf
           "offered load %.0f ops/s exceeds peak throughput: the sweep for \
            curve %S tops out at %.0f ops/s offered (peak achieved %.0f \
            ops/s)"
           load curve.label last.offered_load (peak_throughput curve))
    else begin
      let rec go = function
        | p :: (q :: _ as rest) ->
          if load >= p.offered_load && load <= q.offered_load then
            if q.offered_load = p.offered_load then Ok p.latency_ms
            else begin
              let f = (load -. p.offered_load) /. (q.offered_load -. p.offered_load) in
              Ok (p.latency_ms +. (f *. (q.latency_ms -. p.latency_ms)))
            end
          else go rest
        | [ p ] -> Ok p.latency_ms (* load = the single/last point exactly *)
        | [] -> assert false (* bounds checked above *)
      in
      go sorted
    end

let to_series curve =
  Series.make curve.label
    (List.map (fun p -> (p.throughput /. 1000.0, p.latency_ms)) curve.points)
