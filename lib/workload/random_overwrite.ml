open Wafl_util
open Wafl_core

type t = {
  fs : Fs.t;
  vol : Flexvol.t;
  working_set : int;
  blocks_per_op : int;
  file : int;
  hot_fraction : float;
  hot_weight : float;
  rng : Rng.t;
}

let create fs vol ~working_set ?(blocks_per_op = 2) ?(file = 1)
    ?(hot_fraction = 0.0) ?(hot_weight = 0.0) ~rng () =
  assert (working_set >= blocks_per_op && blocks_per_op > 0);
  if hot_fraction < 0.0 || hot_fraction >= 1.0 then
    invalid_arg "Random_overwrite.create: hot_fraction outside [0, 1)";
  if hot_weight < 0.0 || hot_weight > 1.0 then
    invalid_arg "Random_overwrite.create: hot_weight outside [0, 1]";
  { fs; vol; working_set; blocks_per_op; file; hot_fraction; hot_weight; rng }

let pick_slot t slots =
  let hot_slots = int_of_float (t.hot_fraction *. float_of_int slots) in
  if hot_slots <= 0 || hot_slots >= slots || t.hot_weight <= 0.0 then
    Rng.int t.rng slots
  else if Rng.float t.rng 1.0 < t.hot_weight then Rng.int t.rng hot_slots
  else hot_slots + Rng.int t.rng (slots - hot_slots)

let step t n =
  let slots = t.working_set / t.blocks_per_op in
  for _ = 1 to n do
    let base = pick_slot t slots * t.blocks_per_op in
    for i = 0 to t.blocks_per_op - 1 do
      Fs.stage_write t.fs ~vol:t.vol ~file:t.file ~offset:(base + i)
    done
  done;
  Fs.run_cp t.fs

let blocks_per_op t = t.blocks_per_op
