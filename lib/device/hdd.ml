let write_cost_us (p : Profile.hdd) ~chains ~blocks =
  (float_of_int chains *. p.Profile.seek_us)
  +. (float_of_int blocks *. p.Profile.transfer_us_per_block)

let random_read_cost_us (p : Profile.hdd) ~ios =
  float_of_int ios *. (p.Profile.seek_us +. p.Profile.transfer_us_per_block)

(* HDDs are stateless cost models, so fault handling lives in the cost
   function: each block in [locals] is offered to the fault plane; failed
   blocks transfer nothing (torn blocks still spin under the head). *)
let faulty_write_cost_us fault (p : Profile.hdd) ~chains ~locals ~parity_writes =
  let written =
    match fault with
    | None -> List.length locals
    | Some dev ->
      List.fold_left
        (fun acc b ->
          match Wafl_fault.Fault.write dev ~block:b with
          | Wafl_fault.Fault.Written | Wafl_fault.Fault.Written_torn -> acc + 1
          | Wafl_fault.Fault.Failed -> acc)
        0 locals
  in
  write_cost_us p ~chains ~blocks:(written + parity_writes)

let sequential_read_cost_us p ~chains ~blocks = write_cost_us p ~chains ~blocks

let streaming_bandwidth_blocks_per_s p = 1_000_000.0 /. p.Profile.transfer_us_per_block
