(** Random-overwrite workload — the §4.1 measurement traffic.

    Clients send 8KiB random overwrites over configured LUNs; in 4KiB
    blocks each operation rewrites [blocks_per_op] (default 2) consecutive
    file blocks at a random aligned offset within the working set. *)

type t

val create :
  Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> working_set:int -> ?blocks_per_op:int ->
  ?file:int -> rng:Wafl_util.Rng.t -> unit -> t

val step : t -> int -> Wafl_core.Cp.report
(** Stage [n] operations and run one CP. *)

val blocks_per_op : t -> int
