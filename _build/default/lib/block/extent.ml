type t = { start : int; len : int }

let make ~start ~len =
  assert (start >= 0 && len > 0);
  { start; len }

let start t = t.start
let len t = t.len
let last t = t.start + t.len - 1
let mem t n = n >= t.start && n <= last t
let overlap a b = a.start <= last b && b.start <= last a
let adjacent a b = last a + 1 = b.start || last b + 1 = a.start

let merge a b =
  if overlap a b || adjacent a b then begin
    let s = min a.start b.start in
    let e = max (last a) (last b) in
    Some { start = s; len = e - s + 1 }
  end
  else None

let split_at t n =
  if n > t.start && n <= last t then
    Some ({ start = t.start; len = n - t.start }, { start = n; len = last t - n + 1 })
  else None

let take t n =
  assert (n > 0);
  if n >= t.len then (t, None)
  else ({ start = t.start; len = n }, Some { start = t.start + n; len = t.len - n })

let compare a b =
  let c = Int.compare a.start b.start in
  if c <> 0 then c else Int.compare a.len b.len

let equal a b = compare a b = 0

let coalesce extents =
  let sorted = List.sort compare extents in
  let rec go acc = function
    | [] -> List.rev acc
    | e :: rest -> (
      match acc with
      | prev :: acc_rest -> (
        match merge prev e with
        | Some m -> go (m :: acc_rest) rest
        | None -> go (e :: acc) rest)
      | [] -> go [ e ] rest)
  in
  go [] sorted

let total_len extents = List.fold_left (fun acc e -> acc + e.len) 0 extents

let pp fmt t = Format.fprintf fmt "[%d..%d]" t.start (last t)
