let block_size = 4096
let bits_per_metafile_block = block_size * 8
let default_raid_agnostic_aa_blocks = bits_per_metafile_block
let default_hdd_aa_stripes = 4096
let tetris_stripes = 64
let azcs_region_blocks = 64
let azcs_data_blocks = 63

let kib = 1024
let mib = kib * kib
let gib = kib * mib
let tib = kib * gib

let blocks_of_bytes bytes = Wafl_util.Bitops.ceil_div bytes block_size
let bytes_of_blocks blocks = blocks * block_size

let pp_bytes fmt n =
  let pp unit_name unit_size =
    if n mod unit_size = 0 then Format.fprintf fmt "%d%s" (n / unit_size) unit_name
    else Format.fprintf fmt "%.2f%s" (float_of_int n /. float_of_int unit_size) unit_name
  in
  if n >= tib then pp "TiB" tib
  else if n >= gib then pp "GiB" gib
  else if n >= mib then pp "MiB" mib
  else if n >= kib then pp "KiB" kib
  else Format.fprintf fmt "%dB" n
