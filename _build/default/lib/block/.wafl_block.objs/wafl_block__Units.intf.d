lib/block/units.mli: Format
