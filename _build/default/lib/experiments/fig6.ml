open Wafl_util
open Wafl_device
open Wafl_core
open Wafl_sim
open Wafl_workload

type variant = Both | Flexvol_only | Aggregate_only | Neither

let variant_name = function
  | Both -> "both AA caches"
  | Flexvol_only -> "FlexVol AA cache"
  | Aggregate_only -> "Aggregate AA cache"
  | Neither -> "no AA caches"

type result = {
  variant : variant;
  curve : Load.curve;
  phys_chosen_free_frac : float;
  virt_chosen_free_frac : float;
  write_amp : float;
  aggregate_free_frac : float;
}

let policies = function
  | Both -> (Config.Best_aa, Config.Best_aa)
  | Flexvol_only -> (Config.Random_aa, Config.Best_aa)
  | Aggregate_only -> (Config.Best_aa, Config.Random_aa)
  | Neither -> (Config.Random_aa, Config.Random_aa)

(* Churn at least ~2x the working set so no pristine region survives aging
   (the paper ages with "heavy random write traffic for a long period"). *)
let aging_spec scale =
  match (scale : Common.scale) with
  | Common.Quick ->
    { Aging.fill_fraction = 0.55; fragmentation_cps = 120; writes_per_cp = 2500; file = 1 }
  | Common.Full ->
    { Aging.fill_fraction = 0.55; fragmentation_cps = 250; writes_per_cp = 5000; file = 1 }

(* Measurement: steady-state churn long enough to turn dozens of AAs over,
   so the random-policy baseline's AA-quality variance averages out.  One
   window yields the service-time curve, the chosen-AA traces and the FTL
   write amplification together. *)
let measurement scale =
  match (scale : Common.scale) with
  | Common.Quick -> (100, 1250) (* cps, ops per cp *)
  | Common.Full -> (200, 2500)

(* Thin-provisioned volume: slightly larger than the physical space, with
   the AA (= one metafile page) scaled down with the simulation so the
   volume has several hundred metafile pages — far more than one CP's ops,
   which is what makes virtual-VBN colocation measurable (§2.5). *)
let vol_geometry scale ~agg_blocks =
  let aa_blocks = match (scale : Common.scale) with Common.Quick -> 1024 | Common.Full -> 2048 in
  (agg_blocks * 9 / 8, aa_blocks)

let ssd_aa_stripes scale =
  (* erase-block aligned per §3.2.2 — AA sizing is not the variable here;
     one erase block per AA keeps the AA population large at this scale *)
  Wafl_aa.Sizing.ssd_stripes ~erase_blocks_per_aa:1 (Common.ssd_profile scale)

let run_variant scale variant =
  let agg_policy, vol_policy = policies variant in
  let rg = Common.ssd_raid_group scale ~aa_stripes:(Some (ssd_aa_stripes scale)) in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let vol_blocks, vol_aa_blocks = vol_geometry scale ~agg_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "lun"; blocks = vol_blocks; aa_blocks = Some vol_aa_blocks;
            policy = vol_policy } ]
      ~aggregate_policy:agg_policy ~seed:1009 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "lun" in
  let rng = Rng.split (Fs.rng fs) in
  let spec = aging_spec scale in
  let working_set = Aging.age fs vol ~spec ~rng () in
  let walloc = Fs.write_alloc fs in
  let range0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  let ftl =
    match range0.Aggregate.device with
    | Aggregate.Ssd_sim f -> f
    | Aggregate.Hdd_sim _ | Aggregate.Smr_sim _ | Aggregate.Object_sim _ ->
      invalid_arg "fig6: SSD rig expected"
  in
  Write_alloc.reset_take_stats walloc;
  Ftl.reset_stats ftl;
  let workload = Random_overwrite.create fs vol ~working_set ~rng:(Rng.split rng) () in
  let cps, ops_per_cp = measurement scale in
  let costs =
    Load.measure_service_time ~cps ~ops_per_cp
      ~step:(fun n -> Random_overwrite.step workload n)
      ()
  in
  let write_amp = Ftl.write_amplification ftl in
  let phys_trace = Write_alloc.phys_take_trace walloc in
  let virt_trace = Write_alloc.virt_take_trace walloc in
  let curve = Load.sweep ~label:(variant_name variant) costs in
  let full_phys = Wafl_aa.Topology.full_aa_capacity range0.Aggregate.topology in
  let full_virt = Wafl_aa.Topology.full_aa_capacity (Flexvol.topology vol) in
  let frac (n, sum) full =
    if n = 0 then 0.0 else float_of_int sum /. float_of_int n /. float_of_int full
  in
  {
    variant;
    curve;
    phys_chosen_free_frac = frac phys_trace full_phys;
    virt_chosen_free_frac = frac virt_trace full_virt;
    write_amp;
    aggregate_free_frac = 1.0 -. Aggregate.used_fraction (Fs.aggregate fs);
  }

let run ?(scale = Common.Quick) () =
  List.map (run_variant scale) [ Both; Flexvol_only; Aggregate_only; Neither ]

let find results v = List.find (fun r -> r.variant = v) results

let print results =
  Common.banner
    "Figure 6: latency vs throughput, AA caches on/off (aged all-SSD, 8KiB random overwrites)";
  Series.print_all ~header:"series: x = throughput (kops/s), y = latency (ms)"
    (List.map (fun r -> Load.to_series r.curve) results);
  List.iter
    (fun r ->
      Common.kv
        (Printf.sprintf "%s:" (variant_name r.variant))
        (Printf.sprintf
           "peak=%.0f ops/s lat@peak=%.2fms phys-AA-free=%.0f%% virt-AA-free=%.0f%% WA=%.2f"
           (Load.peak_throughput r.curve)
           (Load.latency_at_peak_ms r.curve)
           (100.0 *. r.phys_chosen_free_frac)
           (100.0 *. r.virt_chosen_free_frac)
           r.write_amp))
    results;
  let both = find results Both in
  let fv_only = find results Flexvol_only in
  let agg_only = find results Aggregate_only in
  let peak r = Load.peak_throughput r.curve in
  let lat r = Load.latency_at_peak_ms r.curve in
  Printf.printf "\n  --- paper vs measured (aggregate/RAID-aware cache: Both vs FlexVol-only) ---\n";
  Common.paper_vs_measured ~metric:"peak throughput gain"
    ~paper:"+24%"
    ~measured:(Common.pct (peak both) (peak fv_only))
    ~ok:(peak both > peak fv_only);
  Common.paper_vs_measured ~metric:"latency at peak"
    ~paper:"-18%"
    ~measured:(Common.pct (lat both) (lat fv_only))
    ~ok:(lat both < lat fv_only);
  Common.paper_vs_measured ~metric:"chosen AA free space (phys)"
    ~paper:"61% vs 46% random"
    ~measured:
      (Printf.sprintf "%.0f%% vs %.0f%%" (100.0 *. both.phys_chosen_free_frac)
         (100.0 *. fv_only.phys_chosen_free_frac))
    ~ok:(both.phys_chosen_free_frac > fv_only.phys_chosen_free_frac);
  Common.paper_vs_measured ~metric:"SSD write amplification"
    ~paper:"1.77 -> 1.46"
    ~measured:(Printf.sprintf "%.2f -> %.2f" fv_only.write_amp both.write_amp)
    ~ok:(both.write_amp < fv_only.write_amp);
  Printf.printf "\n  --- paper vs measured (FlexVol/HBPS cache: Both vs Aggregate-only) ---\n";
  Common.paper_vs_measured ~metric:"peak throughput gain"
    ~paper:"+8.0%"
    ~measured:(Common.pct (peak both) (peak agg_only))
    ~ok:(peak both > peak agg_only);
  Common.paper_vs_measured ~metric:"latency at peak"
    ~paper:"-8.6%"
    ~measured:(Common.pct (lat both) (lat agg_only))
    ~ok:(lat both < lat agg_only);
  Common.paper_vs_measured ~metric:"chosen AA free space (virt)"
    ~paper:"78% vs 61% random"
    ~measured:
      (Printf.sprintf "%.0f%% vs %.0f%%" (100.0 *. both.virt_chosen_free_frac)
         (100.0 *. agg_only.virt_chosen_free_frac))
    ~ok:(both.virt_chosen_free_frac > agg_only.virt_chosen_free_frac);
  Common.paper_vs_measured ~metric:"CPU per op (vol cache effect)"
    ~paper:"293 vs 309 usec/op (-5.7%)"
    ~measured:
      (Printf.sprintf "%.0f vs %.0f usec/op (%s)" both.curve.Load.cpu_us_per_op
         agg_only.curve.Load.cpu_us_per_op
         (Common.pct both.curve.Load.cpu_us_per_op agg_only.curve.Load.cpu_us_per_op))
    ~ok:(both.curve.Load.cpu_us_per_op <= agg_only.curve.Load.cpu_us_per_op)
