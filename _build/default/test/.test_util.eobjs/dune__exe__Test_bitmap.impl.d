test/test_bitmap.ml: Activemap Alcotest Bitmap Hashtbl List Metafile QCheck QCheck_alcotest Wafl_bitmap Wafl_block
