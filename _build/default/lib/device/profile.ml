type hdd = { seek_us : float; transfer_us_per_block : float }

type ssd = {
  erase_block_blocks : int;
  read_us : float;
  program_us : float;
  erase_us : float;
  overprovision : float;
}

type smr = {
  zone_blocks : int;
  seq_write_us : float;
  seek_us : float;
  zone_rmw_us_per_block : float;
}

type object_store = { put_us : float; object_blocks : int }

let default_hdd = { seek_us = 8000.0; transfer_us_per_block = 20.0 }

let default_ssd =
  { erase_block_blocks = 512; read_us = 60.0; program_us = 200.0; erase_us = 2000.0; overprovision = 0.07 }

let enterprise_ssd = { default_ssd with overprovision = 0.28 }

let default_smr =
  { zone_blocks = 16384; seq_write_us = 15.0; seek_us = 10000.0; zone_rmw_us_per_block = 15.0 }

let default_object_store = { put_us = 20000.0; object_blocks = 1024 }
