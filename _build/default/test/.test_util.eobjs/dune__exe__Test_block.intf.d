test/test_block.mli:
