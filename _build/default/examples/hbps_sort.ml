(* The histogram-based partial sort on its own (§3.3.2).

   HBPS answers "give me a near-maximal item" over millions of scored items
   in two pages of memory.  The paper also uses it wherever WAFL needs
   millions of items in close-to-optimal order cheaply — e.g. delayed-free
   scores [18].  This example exercises both uses.

   Run with: dune exec examples/hbps_sort.exe *)

open Wafl_util
open Wafl_aacache

let () =
  let n = 1_000_000 in
  let max_score = 32_768 in
  let rng = Rng.create ~seed:2024 in
  let scores = Array.init n (fun _ -> Rng.int rng (max_score + 1)) in

  Printf.printf "tracking %d items, scores 0..%d\n" n max_score;
  let h = Hbps.create ~max_score ~scores () in
  Hbps.replenish h;
  Printf.printf "list page holds %d of %d items; histogram bins: %d; error margin %.3f%%\n"
    (Hbps.count h) n (Hbps.bins h)
    (100.0 *. Hbps.error_margin h);

  (* Take the best item: guaranteed within one bin width of the true max. *)
  let true_max = Array.fold_left max 0 scores in
  (match Hbps.pick_best h with
  | Some (item, score) ->
    Printf.printf "pick_best: item %d score %d (true max %d, gap %d <= %d)\n" item score
      true_max (true_max - score) (Hbps.bin_width h)
  | None -> assert false);

  (* Constant-time updates: a million score changes. *)
  let t0 = Sys.time () in
  for _ = 1 to 1_000_000 do
    Hbps.update h ~aa:(Rng.int rng n) ~score:(Rng.int rng (max_score + 1))
  done;
  let dt = Sys.time () -. t0 in
  Printf.printf "1M updates in %.2fs (%.0f ns each); invariants hold: %b\n" dt (dt *. 1e3)
    (Hbps.check_invariant h);

  (* The histogram page always has exact counts, even for unlisted items. *)
  let total = ref 0 in
  for b = 0 to Hbps.bins h - 1 do
    total := !total + Hbps.histogram_count h ~bin:b
  done;
  Printf.printf "histogram total = %d (every item, listed or not)\n" !total;

  (* Secondary use: delayed-free scores.  Track "segments" by the number of
     delayed frees they have accumulated and always process the most
     lucrative one, replenishing when the list drains. *)
  print_endline "\ndelayed-free tracking: drain the 10 most lucrative segments";
  let segments = Array.init 100_000 (fun _ -> Rng.int rng 1000) in
  let df = Hbps.create ~max_score:1000 ~capacity:64 ~scores:segments () in
  Hbps.replenish df;
  for round = 1 to 10 do
    match Hbps.take_best df with
    | Some (seg, pending) ->
      Printf.printf "  round %2d: free segment %6d, reclaiming %d delayed frees\n" round seg
        pending;
      Hbps.update df ~aa:seg ~score:0;
      if Hbps.needs_replenish df then Hbps.replenish df
    | None -> Hbps.replenish df
  done
