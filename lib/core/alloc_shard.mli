(** Per-domain allocation shard for the concurrent write-allocation
    front-end: a single-owner harvest ring with lock-free work stealing
    (packed ver|lo|hi state word, 21 bits each), plus the per-domain
    accumulators — score deltas, touched metafile pages, free queue,
    window counters — that the serial merge folds back after a parallel
    allocation window.

    Ownership contract: exactly one domain (the one running the shard's
    chunk) pops, refills and publishes; any domain may steal.  Steal
    splits land on bitmap-byte boundaries, so the stolen suffix and the
    victim's remainder never read-modify-write the same allocation-bitmap
    byte. *)

type t = {
  id : int;                   (** shard index; claim owner id is [id + 1] *)
  ring : int array;
  state : int Atomic.t;       (** packed ver|lo|hi *)
  mutable ring_range : int;   (** range index of the live entries *)
  mutable ring_aa : int;      (** AA of the live entries *)
  mutable key_base : int;     (** byte-group origin of the live entries *)
  mutable key_mod : int;      (** byte-group period (0 = contiguous layout) *)
  deltas : Wafl_aa.Score.delta array;  (** per physical range *)
  touched : Bytes.t;          (** metafile pages this shard dirtied *)
  words : int ref;            (** bitmap words read by this shard's harvests *)
  mutable free_q : int array;
  mutable n_free : int;
  mutable allocated : int;
  mutable harvested : int;
  mutable taken : int;
  mutable score_sum : int;
  mutable steals : int;
  mutable high_water : int;
  mutable consume_minor : int;
}

val create :
  id:int -> capacity:int -> deltas:Wafl_aa.Score.delta array -> touched_pages:int -> t

val entries : t -> int
(** Poppable entries right now; racy (steal victim selection only). *)

val pop : t -> int
(** Owner pop: the next free VBN, or [-1] when the ring is empty.  One
    atomic load plus one CAS on the hot path; allocation-free. *)

val publish :
  t -> range_idx:int -> aa:int -> key_base:int -> key_mod:int -> count:int -> unit
(** Owner publish of a freshly harvested (empty-ring) refill:
    [ring.(0 .. count-1)] must already be written.  [key_base]/[key_mod]
    define the entries' monotone byte group
    [((vbn - key_base) mod key_mod) lsr 3] ([key_mod = 0] means plain
    [vbn lsr 3]) — the boundary steal splits must fall on. *)

val flush : t -> unit
(** Empty the ring (version bump included), e.g. at a CP boundary. *)

val try_steal : victim:t -> thief:t -> bool
(** Move up to half of [victim]'s entries into [thief]'s empty ring,
    splitting on a byte-group boundary; false if the victim was too dry,
    no aligned split exists, or the CAS lost a race. *)

val queue_free : t -> int -> unit
(** Append a PVBN to the shard's private free queue (amortised O(1)). *)

val reset_window : t -> unit
(** Zero the window counters (allocated/harvested/steals/high-water/
    minor-words) at the start of a parallel allocation window. *)
