(** A FlexVol: a virtualized WAFL instance inside the aggregate (§2.1).

    Data in a FlexVol has a virtual VBN (its offset in the volume's own
    block-number space) and a physical VBN (its location in the aggregate).
    Virtual VBN selection has no effect on physical layout; its only goal is
    colocation in the number space, to touch as few bitmap-metafile blocks
    as possible per CP (§2.5).  The volume therefore uses RAID-agnostic AAs
    and an HBPS cache (§3.3.2). *)

type t

val create :
  Config.vol_spec -> t

val uid : t -> int
(** Process-wide dense volume id, assigned at creation.  The write
    allocator indexes its per-volume cursor slots by it (O(1) lookup
    instead of an assoc-list walk). *)

val name : t -> string
val blocks : t -> int
val spec : t -> Config.vol_spec
val topology : t -> Wafl_aa.Topology.t
val activemap : t -> Wafl_bitmap.Activemap.t
val metafile : t -> Wafl_bitmap.Metafile.t
val scores : t -> int array
val cache : t -> Wafl_aacache.Cache.t option
val set_cache : t -> Wafl_aacache.Cache.t option -> unit
val delta : t -> Wafl_aa.Score.delta

val free_blocks : t -> int
val used_fraction : t -> float

val pvbn_of_vvbn : t -> int -> int option
(** Container-map lookup: physical location of a virtual block. *)

val reserve_vvbn : t -> vvbn:int -> unit
(** Mark a VVBN allocated (and note the score decrement) at hand-out time,
    before its container entry exists.  Prevents the allocator from
    offering the same VVBN twice across AA re-picks. *)

val reserve_harvested : t -> aa:int -> vvbn:int -> unit
(** Trusted {!reserve_vvbn} for the write allocator's harvest rings: the
    caller names the VVBN's AA and guarantees it is free, skipping the
    VVBN->AA division and the already-allocated re-check. *)

val attach_reserved : t -> vvbn:int -> pvbn:int -> unit
(** Install the container entry for a previously reserved VVBN. *)

val release_reserved : t -> vvbn:int -> unit
(** A reserved VVBN that could not be placed (no physical space): queue it
    to be freed at the next commit. *)

val map_vvbn : t -> vvbn:int -> pvbn:int -> unit
(** [reserve_vvbn] + [attach_reserved] in one step (direct/test use). *)

val remap_vvbn : t -> vvbn:int -> pvbn:int -> int
(** Point a mapped VVBN at a new physical block (segment cleaning: the
    virtual block keeps its number, only its physical home moves).
    Returns the previous PVBN. *)

val queue_unmap : t -> vvbn:int -> unit
(** Queue the VVBN free for the next CP (COW: old block dies when the CP
    commits). Clears the container-map entry immediately; the VVBN itself
    stays unusable until the commit. *)

val commit_frees : ?pool:Wafl_par.Par.t -> t -> int
(** Apply queued frees and flush the volume's bitmap metafile; returns
    metafile pages written.  [pool] parallelises the bit-clear apply
    (see {!Wafl_bitmap.Activemap.commit}). *)

val cp_update_cache : t -> unit

val invalidate_cache : t -> unit
(** Bump the volume's rebuild epoch: the cache/scores become stale (the
    seeded cache stays usable until {!Rebuild.touch_vol} re-materializes
    it). *)

val cache_fresh : t -> bool

val rebuild_cache : ?pool:Wafl_par.Par.t -> t -> unit
(** Full-scan score recomputation + fresh HBPS; stamps the cache fresh.
    With a pool the per-AA rescoring is spread over its domains; the
    scores — and the HBPS built from them — are bit-identical to a
    serial rebuild at any domain count.  Building block of
    {!Rebuild.request}; callers use that API. *)

val harvest_free_of_aa : t -> int -> dst:int array -> words:int ref -> int
(** Fill [dst] (sized to at least the AA capacity) with the AA's
    currently-free VVBNs, ascending, word-at-a-time; returns the count
    and adds bitmap words read to [words].  Allocation-free per block.
    (The PR-2 list-returning variant [free_vvbns_of_aa] is gone; this
    caller-array form is the only harvest API.) *)

(** {2 Snapshots}

    WAFL snapshots are free at creation (COW): a snapshot pins the current
    virtual-to-physical mappings, and blocks it shares with the active file
    system are not freed when overwritten.  Deleting a snapshot releases
    every block no other snapshot or the active map still references — a
    burst of random frees that §4.1.1 names as a source of the free-space
    nonuniformity the AA cache exploits. *)

val create_snapshot : t -> int
(** Pin every currently mapped VVBN; returns the snapshot id.  The
    virtual-to-physical translation stays in the shared container map, so
    segment cleaning can relocate physical blocks under snapshots. *)

val snapshots : t -> int list

val snapshot_holds : t -> vvbn:int -> bool
(** Whether any snapshot pins this virtual block. *)

val detach_vvbn : t -> vvbn:int -> unit
(** Mark a snapshot-held VVBN as no longer part of the active namespace
    ("zombie"); its container entry and allocation survive until the last
    snapshot pinning it is deleted (the overwrite path for shared
    blocks). *)

val delete_snapshot : t -> int -> (int * int) list
(** Remove a snapshot; returns the [(vvbn, pvbn)] pairs that are no longer
    referenced by the active map or any remaining snapshot.  The caller
    queues the frees (volume VVBNs and aggregate PVBNs) so they commit at
    the next CP.  Raises [Not_found] for an unknown id. *)

val snapshot_read : t -> snapshot:int -> vvbn:int -> int option
(** Physical location of a virtual block as of the snapshot. *)

(** {2 Files} *)

val write_file : t -> file:int -> offset:int -> vvbn:int -> int option
(** Point file block [offset] at [vvbn]; returns the VVBN it previously
    pointed at (the block an overwrite frees), if any. *)

val read_file : t -> file:int -> offset:int -> int option
(** VVBN currently backing a file block. *)

val file_blocks : t -> file:int -> int
(** Blocks currently mapped in a file. *)

val files : t -> int list

(** {2 Namespace persistence} *)

val export_namespace : t -> (int * int) list * (int * int * int) list
(** [(container mappings as (vvbn, pvbn), inode entries as (file, offset,
    vvbn))] — the durable namespace a crash image carries so a remounted
    system can still translate file reads and Iron can cross-check
    container references. *)

val import_namespace :
  t -> mappings:(int * int) list -> files:(int * int * int) list -> unit
(** Load a namespace captured by {!export_namespace} into a fresh volume.
    Raises [Invalid_argument] if a VVBN is out of range for this volume. *)
