lib/aacache/hbps.mli:
