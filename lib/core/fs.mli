(** Public facade: the simulated ONTAP system.

    Client operations stage block writes; {!run_cp} flushes everything
    staged as one consistency point, exactly as WAFL collects thousands of
    modifying operations and commits them together (§2.1). *)

type t

val create : Config.t -> t

val enable_registry : unit -> unit
(** Start recording every subsequently {!create}d system in a process-wide
    list (clearing any previous recording).  Lets batch drivers audit the
    systems an experiment built without plumbing handles through. *)

val disable_registry : unit -> unit
val registered : unit -> t list
(** Systems created since {!enable_registry}, in creation order. *)

val config : t -> Config.t
val aggregate : t -> Aggregate.t
val write_alloc : t -> Write_alloc.t

val temperature : t -> Temperature.t option
(** The write-temperature inference handle, present when the config asks
    for more than one class ({!Config.stream_spec}); {!run_cp} threads it
    into {!Cp.run} so staged writes are classified and routed. *)

val vols : t -> Flexvol.t array
val vol : t -> string -> Flexvol.t
(** Raises [Not_found] for an unknown volume name. *)

val rng : t -> Wafl_util.Rng.t
(** The system's seeded generator (workloads should [Rng.split] it). *)

val stage_write : t -> vol:Flexvol.t -> file:int -> offset:int -> unit
(** Stage one 4KiB block write.  Writing the same (vol, file, offset) twice
    before a CP coalesces, as the in-memory buffer cache would. *)

val staged_count : t -> int

val staged_ops : t -> (string * int * int) list
(** The operations logged since the last completed CP, as (volume name,
    file, offset) in arrival order — the NVRAM log a failover partner
    replays before resuming service (§3.4). *)

val run_cp : ?pool:Wafl_par.Par.t -> t -> Cp.report
(** Flush everything staged as one consistency point.  [pool] (or the
    installed one) shards the CP over its domains with results identical
    to a serial CP — see {!Cp.run}.  After the CP completes, every
    registered post-CP hook runs with this system. *)

val add_post_cp_hook : (t -> unit) -> unit
(** Register a process-wide callback run after every completed CP on any
    system, in registration order — the between-CPs slot the background
    scrubber ({!Scrub.enable}) occupies. *)

val clear_post_cp_hooks : unit -> unit

val create_snapshot : t -> vol:Flexvol.t -> int
(** Pin the volume's current state (free at creation, COW). *)

val delete_snapshot : t -> vol:Flexvol.t -> int -> int
(** Delete a snapshot, queueing every block only it referenced for freeing
    at the next CP; returns how many blocks were queued.  This burst of
    random frees is the §4.1.1 "other internal activity" that deepens
    free-space nonuniformity. *)

val cps_completed : t -> int

val total_metafile_pages_written : t -> int
(** Aggregate + all volumes, cumulative. *)

val file_read_chains : t -> vol:Flexvol.t -> file:int -> Wafl_block.Chain.summary
(** The device read chains a full sequential read of the file needs: its
    blocks in offset order, mapped to physical locations and coalesced into
    contiguous runs.  Long chains = few read I/Os (§2.4); a file laid down
    young reads in a handful of chains, an aged one in hundreds. *)
