test/test_util.ml: Alcotest Array Bitops Bytes Checksum Float Fun Histo Int64 List Printf QCheck QCheck_alcotest Queueing Rng Series Stats String Table Wafl_util
