lib/core/flexvol.mli: Config Wafl_aa Wafl_aacache Wafl_bitmap
