type t = {
  cap : int;
  mutable cols : string array;  (* [||] until set_columns *)
  rows : float array array;     (* ring of row copies; slot = seq mod cap *)
  mutable head : int;           (* oldest retained slot *)
  mutable len : int;
  mutable appended : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  { cap = capacity; cols = [||]; rows = Array.make capacity [||]; head = 0; len = 0; appended = 0 }

let capacity t = t.cap

let set_columns t cols =
  let cols = Array.of_list cols in
  if Array.length t.cols = 0 then t.cols <- cols
  else if t.cols <> cols then
    invalid_arg "Timeseries.set_columns: schema already fixed to different columns"

let columns t = Array.to_list t.cols

let append t row =
  if Array.length t.cols = 0 then invalid_arg "Timeseries.append: no schema set";
  if Array.length row <> Array.length t.cols then
    invalid_arg "Timeseries.append: row width does not match schema";
  let slot =
    if t.len < t.cap then (t.head + t.len) mod t.cap
    else begin
      let s = t.head in
      t.head <- (t.head + 1) mod t.cap;
      s
    end
  in
  t.rows.(slot) <- Array.copy row;
  if t.len < t.cap then t.len <- t.len + 1;
  t.appended <- t.appended + 1

let length t = t.len
let appended t = t.appended

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Timeseries.get: index out of range";
  Array.copy t.rows.((t.head + i) mod t.cap)

let rows t = List.init t.len (fun i -> get t i)
let last t = if t.len = 0 then None else Some (get t (t.len - 1))

let column_index t name =
  let n = Array.length t.cols in
  let rec go i = if i >= n then None else if t.cols.(i) = name then Some i else go (i + 1) in
  go 0

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.appended <- 0
