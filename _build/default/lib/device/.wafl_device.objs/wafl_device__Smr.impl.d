lib/device/smr.ml: Array List Profile Wafl_util
