lib/experiments/scalars.ml: Aging Array Common Config Cost_model Float Fs Hbps Load Printf Random_overwrite Rng Topaa Wafl_aa Wafl_aacache Wafl_core Wafl_sim Wafl_util Wafl_workload
