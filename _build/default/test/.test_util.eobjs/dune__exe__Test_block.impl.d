test/test_block.ml: Alcotest Chain Extent Gen Hashtbl List QCheck QCheck_alcotest Units Vbn Wafl_block
