(* Counters and gauges are Atomic-backed so increments from parallel
   scan domains are never lost (the multi-domain hammer test in
   test_telemetry exercises this).  The registry table itself is guarded
   by a mutex: registration is rare, but first-touch of a name can race
   when two domains emit the same new counter simultaneously.
   Histograms stay plain mutable — every observe site runs in a serial
   CP section (documented in telemetry.mli); making the 63 bucket slots
   atomic would tax the common case for no caller. *)

type counter = { c_name : string; c_count : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_observations : int;
  mutable h_sum : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  lock : Mutex.t;
}

let n_buckets = 63

let create () = { table = Hashtbl.create 64; order = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception exn ->
    Mutex.unlock t.lock;
    raise exn

let register t name make =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.add t.table name m;
        t.order <- name :: t.order;
        m)

let counter t name =
  match register t name (fun () -> Counter { c_name = name; c_count = Atomic.make 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Registry.counter: %S is not a counter" name)

let gauge t name =
  match register t name (fun () -> Gauge { g_name = name; g_value = Atomic.make 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Registry.gauge: %S is not a gauge" name)

let histogram t name =
  match
    register t name (fun () ->
        Histogram
          { h_name = name; buckets = Array.make n_buckets 0; h_observations = 0; h_sum = 0 })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg (Printf.sprintf "Registry.histogram: %S is not a histogram" name)

let incr c = Atomic.incr c.c_count

let add c n =
  if n < 0 then invalid_arg "Registry.add: negative increment";
  ignore (Atomic.fetch_and_add c.c_count n)

let count c = Atomic.get c.c_count

let set g v = Atomic.set g.g_value v

let rec set_max g v =
  let cur = Atomic.get g.g_value in
  if v > cur && not (Atomic.compare_and_set g.g_value cur v) then set_max g v

let value g = Atomic.get g.g_value

(* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 v)
  end

let observe h v =
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_observations <- h.h_observations + 1;
  h.h_sum <- h.h_sum + max 0 v

let observations h = h.h_observations
let sum h = h.h_sum
let bucket_count h = Array.length h.buckets
let bucket h i = h.buckets.(i)
let bucket_lower_bound i = if i <= 1 then 0 else 1 lsl (i - 1)

let nonempty_buckets h =
  let acc = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (i, h.buckets.(i)) :: !acc
  done;
  !acc

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let fold t ~init ~f =
  let order = with_lock t (fun () -> List.rev t.order) in
  List.fold_left (fun acc n -> f acc (Hashtbl.find t.table n)) init order

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.table name)

let clear t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c_count 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
            Array.fill h.buckets 0 (Array.length h.buckets) 0;
            h.h_observations <- 0;
            h.h_sum <- 0)
        t.table)
