(** Sequential streaming writes — the §4.3 SMR single-data-point workload
    (sequential writes to an unaged file system). *)

type t

val create :
  Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> ?file:int -> unit -> t

val step : t -> int -> Wafl_core.Cp.report
(** Write the next [n] sequential file blocks and run one CP. *)

val written : t -> int
