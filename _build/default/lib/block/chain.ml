type summary = {
  chains : int;
  blocks : int;
  mean_len : float;
  max_len : int;
  min_len : int;
}

let empty = { chains = 0; blocks = 0; mean_len = 0.0; max_len = 0; min_len = 0 }

let of_extents extents =
  match Extent.coalesce extents with
  | [] -> invalid_arg "Chain.of_extents: empty"
  | coalesced ->
    let blocks = Extent.total_len coalesced in
    let chains = List.length coalesced in
    let lens = List.map Extent.len coalesced in
    {
      chains;
      blocks;
      mean_len = float_of_int blocks /. float_of_int chains;
      max_len = List.fold_left max 0 lens;
      min_len = List.fold_left min max_int lens;
    }

let of_blocks blocks =
  match List.sort_uniq Int.compare blocks with
  | [] -> invalid_arg "Chain.of_blocks: empty"
  | sorted ->
    let extents = List.map (fun b -> Extent.make ~start:b ~len:1) sorted in
    of_extents extents

let pp fmt s =
  Format.fprintf fmt "chains=%d blocks=%d mean=%.2f max=%d min=%d"
    s.chains s.blocks s.mean_len s.max_len s.min_len
