open Wafl_util
module Telemetry = Wafl_telemetry.Telemetry

(* Persisted-state integrity plane.


   When pagestores are file-mapped ([--backend mmap:DIR]) the bytes on
   disk ARE the free-space state, and nothing in the mmap path itself can
   tell a faithfully persisted page from one hit by bit-rot or a lost
   write — mmap acks nothing.  This module gives every {e tracked} store
   (the bitmap-metafile map stores; scratch structures like dirty maps
   and pending sets are rebuilt anyway) a CRC-32 sidecar: one checksum +
   previous-generation checksum + CP-generation stamp per 4 KiB page,
   persisted next to [ps<seq>.bin] as [ps<seq>.crc], with a tiny
   [superblock.bin] carrying the committed generation.

   Sealing happens where the data changes hands: [Metafile.flush] reseals
   the pages it dirtied (stamping [committed + 1]) and [cp_commit] —
   called at the end of every CP — persists the dirty sidecars and then
   advances the superblock.  A crash between the two leaves sidecars
   {e ahead} of the superblock, which remount verification recognizes and
   accepts; a crash before the sidecar write leaves data {e ahead} of its
   sidecar, which verification reports as torn and quarantines.

   Classification of a page against its sidecar entry:
   - CRC matches, generation <= committed: {e intact};
   - CRC matches, generation  > committed: {e ahead} (crash between
     sidecar persist and superblock write) — resealed and accepted;
   - CRC mismatch but the page matches the {e previous} generation's
     CRC: {e stale} — a lost write (the device acked a write it dropped);
   - neither: {e torn} (bit-rot, partial write).

   All state is keyed to the pagestore map-directory epoch: installing a
   directory (or remounting under a nested [with_mmap_dir]) starts a
   fresh epoch, and the first call after that reloads the superblock and
   sidecars from disk — in-memory seals from the previous epoch are
   deliberately discarded, exactly like a real reboot. *)

type page_state = Intact | Ahead | Torn | Stale

let page_size = Wafl_block.Units.block_size

type entry = {
  ord : int;  (* tracked-store ordinal: 0 = first tracked store, ... *)
  seq : int;  (* pagestore file sequence (ps<seq>.bin) *)
  path : string;
  store : Pagestore.t;
  n_pages : int;
  crc : int32 array;  (* sealed CRC per page *)
  prev : int32 array;  (* previous generation's CRC per page *)
  gen : int array;  (* generation stamped at seal *)
  sealed_now : Bytes.t;  (* pages sealed since the last cp_commit *)
  mutable sidecar_loaded : bool;  (* a valid sidecar was read at track time *)
  mutable sidecar_dirty : bool;
  mutable sidecar_fd : Unix.file_descr option;  (* held open across commits *)
}

type rot_arm = { r_ord : int; r_page : int; r_gen : int; mutable r_fired : bool }

type lost_arm = {
  l_ord : int;
  l_page : int;
  l_gen : int;
  mutable shadow : Bytes.t option;  (* page bytes as of the last commit *)
  mutable l_fired : bool;
}

type state = {
  st_epoch : int;
  dir : string;
  mutable committed : int;
  mutable entries_rev : entry list;
  mutable n_entries : int;
  mutable any_sealed : bool;
  mutable super_fd : Unix.file_descr option;  (* held open across commits *)
  rot_arms : rot_arm list;
  lost_arms : lost_arm list;
}

let state : state option ref = ref None
let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* --- sidecar / superblock serialization ------------------------------- *)

let superblock_path dir = Filename.concat dir "superblock.bin"
let sidecar_path dir seq = Filename.concat dir (Printf.sprintf "ps%d.crc" seq)

let bytes_crc b len =
  Checksum.crc32_get ~get:(fun i -> Char.code (Bytes.unsafe_get b i)) ~pos:0 ~len

let read_file path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let b = Bytes.create n in
          really_input ic b 0 n;
          Some b)
    with _ -> None

(* Sidecars and the superblock are rewritten whole on every CP commit, so
   their descriptors are kept open across commits — an open/close pair per
   small file per CP is most of the persist cost otherwise.  [get_fd]
   memoizes the descriptor through a [file_descr option ref]-style setter. *)
let fd_write_whole fd b =
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let open_rewrite path = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let load_superblock dir =
  match read_file (superblock_path dir) with
  | Some b
    when Bytes.length b = 20
         && Bytes.sub_string b 0 8 = "WAFLSUP1"
         && Bytes.get_int32_le b 16 = bytes_crc b 16 ->
    Int64.to_int (Bytes.get_int64_le b 8)
  | _ -> 0

let superblock_bytes committed =
  let b = Bytes.create 20 in
  Bytes.blit_string "WAFLSUP1" 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int committed);
  Bytes.set_int32_le b 16 (bytes_crc b 16);
  b

let sidecar_bytes e =
  let n = e.n_pages in
  let len = 12 + (16 * n) + 4 in
  let b = Bytes.create len in
  Bytes.blit_string "WAFLCRC1" 0 b 0 8;
  Bytes.set_int32_le b 8 (Int32.of_int n);
  for p = 0 to n - 1 do
    let o = 12 + (16 * p) in
    Bytes.set_int32_le b o e.crc.(p);
    Bytes.set_int32_le b (o + 4) e.prev.(p);
    Bytes.set_int64_le b (o + 8) (Int64.of_int e.gen.(p))
  done;
  Bytes.set_int32_le b (len - 4) (bytes_crc b (len - 4));
  b

let write_superblock s committed =
  let fd =
    match s.super_fd with
    | Some fd -> fd
    | None ->
      let fd = open_rewrite (superblock_path s.dir) in
      s.super_fd <- Some fd;
      fd
  in
  fd_write_whole fd (superblock_bytes committed)

let write_sidecar dir e =
  let fd =
    match e.sidecar_fd with
    | Some fd -> fd
    | None ->
      let fd = open_rewrite (sidecar_path dir e.seq) in
      e.sidecar_fd <- Some fd;
      fd
  in
  fd_write_whole fd (sidecar_bytes e)

(* An invalid sidecar (bad magic, wrong page count, bad trailer CRC) is
   treated exactly like a missing one: the store is unverifiable. *)
let load_sidecar dir seq n_pages =
  match read_file (sidecar_path dir seq) with
  | Some b
    when Bytes.length b = 12 + (16 * n_pages) + 4
         && Bytes.sub_string b 0 8 = "WAFLCRC1"
         && Bytes.get_int32_le b 8 = Int32.of_int n_pages
         && Bytes.get_int32_le b (Bytes.length b - 4) = bytes_crc b (Bytes.length b - 4) ->
    let crc = Array.make n_pages 0l in
    let prev = Array.make n_pages 0l in
    let gen = Array.make n_pages 0 in
    for p = 0 to n_pages - 1 do
      let o = 12 + (16 * p) in
      crc.(p) <- Bytes.get_int32_le b o;
      prev.(p) <- Bytes.get_int32_le b (o + 4);
      gen.(p) <- Int64.to_int (Bytes.get_int64_le b (o + 8))
    done;
    Some (crc, prev, gen)
  | _ -> None

(* --- epoch-keyed state ------------------------------------------------- *)

let arm_injections committed =
  match Wafl_fault.Fault.installed_default () with
  | None -> ([], [])
  | Some spec ->
    (* Arms whose generation is already committed can never fire in this
       epoch — that is what keeps a post-remount replay CP (running at a
       higher generation) from re-injecting the same damage. *)
    let rot =
      List.filter_map
        (fun (s, p, g) ->
          if g > committed then Some { r_ord = s; r_page = p; r_gen = g; r_fired = false }
          else None)
        spec.Wafl_fault.Fault.rot_pages
    in
    let lost =
      List.filter_map
        (fun (s, p, g) ->
          if g > committed then
            Some { l_ord = s; l_page = p; l_gen = g; shadow = None; l_fired = false }
          else None)
        spec.Wafl_fault.Fault.lost_pages
    in
    (rot, lost)

(* Descriptors belong to the epoch that opened them: close them whenever
   the state they live in is discarded (the paths themselves may be reused
   by the next epoch in the same directory). *)
let close_state_fds s =
  List.iter
    (fun e ->
      match e.sidecar_fd with
      | Some fd ->
        close_fd fd;
        e.sidecar_fd <- None
      | None -> ())
    s.entries_rev;
  match s.super_fd with
  | Some fd ->
    close_fd fd;
    s.super_fd <- None
  | None -> ()

let drop_state () =
  Option.iter close_state_fds !state;
  state := None

let sync () =
  if not !enabled_flag then None
  else
    match Pagestore.mmap_dir_path () with
    | None ->
      drop_state ();
      None
    | Some dir -> (
      let ep = Pagestore.mmap_epoch () in
      match !state with
      | Some s when s.st_epoch = ep -> Some s
      | _ ->
        Option.iter close_state_fds !state;
        let committed = load_superblock dir in
        let rot_arms, lost_arms = arm_injections committed in
        let s =
          {
            st_epoch = ep;
            dir;
            committed;
            entries_rev = [];
            n_entries = 0;
            any_sealed = false;
            super_fd = None;
            rot_arms;
            lost_arms;
          }
        in
        state := Some s;
        Some s)

let find_entry s store = List.find_opt (fun e -> e.store == store) s.entries_rev
let entry_of_ord s ord = List.find_opt (fun e -> e.ord = ord) s.entries_rev
let entries s = List.rev s.entries_rev

let committed_generation () = match sync () with None -> 0 | Some s -> s.committed
let tracked_count () = match sync () with None -> 0 | Some s -> s.n_entries
let tracked store = match sync () with None -> false | Some s -> find_entry s store <> None

(* --- page CRCs --------------------------------------------------------- *)

let page_len store p =
  let bytes = Pagestore.length_bytes store in
  min page_size (bytes - (p * page_size))

let page_crc store p =
  Checksum.crc32_get ~get:(Pagestore.byte store) ~pos:(p * page_size) ~len:(page_len store p)

let copy_page store p =
  let len = page_len store p in
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (Pagestore.byte store ((p * page_size) + i)))
  done;
  b

let restore_page store p b =
  for i = 0 to Bytes.length b - 1 do
    Pagestore.set_byte store ((p * page_size) + i) (Char.code (Bytes.unsafe_get b i))
  done

let n_pages store =
  match sync () with
  | None -> None
  | Some s -> Option.map (fun e -> e.n_pages) (find_entry s store)

(* --- tracking ---------------------------------------------------------- *)

let track store =
  match sync () with
  | None -> ()
  | Some s -> (
    match Pagestore.mapped_path store with
    | None -> ()
    | Some (seq, path) ->
      if find_entry s store = None then begin
        let n_pages = Bitops.ceil_div (Pagestore.length_bytes store) page_size in
        let ord = s.n_entries in
        let e =
          match load_sidecar s.dir seq n_pages with
          | Some (crc, prev, gen) ->
            {
              ord;
              seq;
              path;
              store;
              n_pages;
              crc;
              prev;
              gen;
              sealed_now = Bytes.make n_pages '\000';
              sidecar_loaded = true;
              sidecar_dirty = false;
              sidecar_fd = None;
            }
          | None ->
            (* No (valid) sidecar: seal what is there now at the committed
               generation.  For a fresh store that is the zero image; for a
               remount it means the store is unverifiable this once —
               verification reports it as such rather than guessing. *)
            let crc = Array.init n_pages (fun p -> page_crc store p) in
            {
              ord;
              seq;
              path;
              store;
              n_pages;
              crc;
              prev = Array.copy crc;
              gen = Array.make n_pages s.committed;
              sealed_now = Bytes.make n_pages '\000';
              sidecar_loaded = false;
              sidecar_dirty = true;
              sidecar_fd = None;
            }
        in
        s.entries_rev <- e :: s.entries_rev;
        s.n_entries <- ord + 1;
        List.iter
          (fun a ->
            if a.l_ord = ord && a.l_page < n_pages && a.shadow = None then
              a.shadow <- Some (copy_page store a.l_page))
          s.lost_arms
      end)

(* --- sealing ----------------------------------------------------------- *)

(* Sealing is deferred: a flush only {e marks} the pages its dirty ranges
   cover, and the CRCs are computed once per page at [cp_commit], over the
   bytes that commit actually persists.  A CP re-flushes the same hot page
   many times; checksumming it on every flush is wasted work, since only
   the committed image is ever vouched for (the in-memory seal state dies
   with a crash either way). *)
let seal_pages s e ~first ~last =
  for p = max 0 first to min last (e.n_pages - 1) do
    Bytes.set e.sealed_now p '\001'
  done;
  e.sidecar_dirty <- true;
  s.any_sealed <- true

(* The commit-time sweep: for every page sealed this cycle, rotate [prev]
   to the last committed CRC (so a lost write reverting the page to that
   image classifies as stale), checksum the bytes being committed, and
   stamp the new generation. *)
let commit_seals s =
  List.iter
    (fun e ->
      if e.sidecar_dirty then
        for p = 0 to e.n_pages - 1 do
          if Bytes.get e.sealed_now p <> '\000' then begin
            e.prev.(p) <- e.crc.(p);
            e.crc.(p) <- page_crc e.store p;
            e.gen.(p) <- s.committed + 1
          end
        done)
    s.entries_rev

let seal_range store ~pos ~len =
  if len > 0 then
    match sync () with
    | None -> ()
    | Some s -> (
      match find_entry s store with
      | None -> ()
      | Some e ->
        seal_pages s e ~first:(pos / page_size) ~last:((pos + len - 1) / page_size))

(* Re-stamp a page as the committed truth: CRC of the bytes as they are,
   generation [committed], no pending previous image.  This is the heal
   step after a repair rewrote the page from container authority, and the
   blanket reseal after [Metafile.load] blits a restored image over the
   whole store. *)
let reseal_entry_page s e p =
  e.crc.(p) <- page_crc e.store p;
  e.prev.(p) <- e.crc.(p);
  e.gen.(p) <- s.committed;
  Bytes.set e.sealed_now p '\000';
  e.sidecar_dirty <- true

let reseal_page store p =
  match sync () with
  | None -> ()
  | Some s -> (
    match find_entry s store with
    | None -> ()
    | Some e -> if p >= 0 && p < e.n_pages then reseal_entry_page s e p)

let reseal_all store =
  match sync () with
  | None -> ()
  | Some s -> (
    match find_entry s store with
    | None -> ()
    | Some e ->
      for p = 0 to e.n_pages - 1 do
        reseal_entry_page s e p
      done)

(* --- verification ------------------------------------------------------ *)

let classify s e p =
  let c = page_crc e.store p in
  if c = e.crc.(p) then if e.gen.(p) > s.committed then Ahead else Intact
  else if c = e.prev.(p) then Stale
  else Torn

let verify_page store p =
  match sync () with
  | None -> None
  | Some s -> (
    match find_entry s store with
    | None -> None
    | Some e -> if p < 0 || p >= e.n_pages then None else Some (classify s e p))

type store_report = {
  ord : int;
  seq : int;
  path : string;
  store : Pagestore.t;
  pages : int;
  torn : int list;
  stale : int list;
  ahead : int;
  sidecar_loaded : bool;
}

let verify_entry s e =
  let torn = ref [] and stale = ref [] and ahead = ref 0 in
  for p = e.n_pages - 1 downto 0 do
    match classify s e p with
    | Intact -> ()
    | Ahead ->
      (* The data and its sidecar both made it; only the superblock write
         was lost.  Accept the page by folding it into the committed
         generation. *)
      incr ahead;
      reseal_entry_page s e p
    | Torn -> torn := p :: !torn
    | Stale -> stale := p :: !stale
  done;
  if not e.sidecar_loaded then Telemetry.incr "integrity.unverified_stores";
  {
    ord = e.ord;
    seq = e.seq;
    path = e.path;
    store = e.store;
    pages = e.n_pages;
    torn = !torn;
    stale = !stale;
    ahead = !ahead;
    sidecar_loaded = e.sidecar_loaded;
  }

let verify_store store =
  match sync () with
  | None -> None
  | Some s -> Option.map (verify_entry s) (find_entry s store)

let verify_all () =
  match sync () with None -> [] | Some s -> List.map (verify_entry s) (entries s)

(* --- CP commit: persist, advance, inject ------------------------------- *)

let inject s =
  List.iter
    (fun a ->
      if (not a.r_fired) && a.r_gen = s.committed then
        match entry_of_ord s a.r_ord with
        | Some e when a.r_page >= 0 && a.r_page < e.n_pages ->
          a.r_fired <- true;
          (* Bit-rot: flip bits in the persisted page behind the sealed
             CRC's back.  The page now matches neither its own nor the
             previous generation's checksum — torn. *)
          let base = a.r_page * page_size in
          let len = min 8 (page_len e.store a.r_page) in
          for i = base to base + len - 1 do
            Pagestore.set_byte e.store i (Pagestore.byte e.store i lxor 0x5a)
          done;
          Telemetry.incr "integrity.rot_injected"
        | _ -> a.r_fired <- true)
    s.rot_arms;
  List.iter
    (fun a ->
      if (not a.l_fired) && a.l_gen = s.committed then
        match (entry_of_ord s a.l_ord, a.shadow) with
        | Some e, Some shadow
          when a.l_page >= 0
               && a.l_page < e.n_pages
               && Bytes.get e.sealed_now a.l_page <> '\000' ->
          a.l_fired <- true;
          (* Lost write: the device acked this generation's page write but
             never put it on the platter — the bytes revert to the previous
             commit's image, which is exactly what [prev] checksums. *)
          restore_page e.store a.l_page shadow;
          Telemetry.incr "integrity.lost_injected"
        | _ -> a.l_fired <- true)
    s.lost_arms

let refresh_shadows s =
  List.iter
    (fun a ->
      if not a.l_fired then
        match entry_of_ord s a.l_ord with
        | Some e when a.l_page >= 0 && a.l_page < e.n_pages ->
          a.shadow <- Some (copy_page e.store a.l_page)
        | _ -> ())
    s.lost_arms

let cp_commit () =
  match sync () with
  | None -> ()
  | Some s ->
    let dirty = List.exists (fun e -> e.sidecar_dirty) s.entries_rev in
    if s.any_sealed || dirty then begin
      commit_seals s;
      (* Crash here: data pages already hit the mapped files but their
         sidecars did not — remount verification sees them as torn. *)
      Wafl_fault.Crash.point "integrity.persist";
      List.iter
        (fun e ->
          if e.sidecar_dirty then begin
            write_sidecar s.dir e;
            e.sidecar_dirty <- false;
            Telemetry.incr "integrity.sidecar_writes"
          end)
        s.entries_rev;
      (* Crash here: sidecars are ahead of the superblock — remount
         verification classifies those pages as ahead and accepts them. *)
      Wafl_fault.Crash.point "integrity.superblock";
      let next = s.committed + 1 in
      write_superblock s next;
      s.committed <- next;
      inject s;
      refresh_shadows s;
      List.iter
        (fun e -> Bytes.fill e.sealed_now 0 (Bytes.length e.sealed_now) '\000')
        s.entries_rev;
      s.any_sealed <- false
    end
