open Wafl_bitmap
open Wafl_aa
open Wafl_aacache

(* Process-wide volume id counter: every volume gets a small dense uid at
   creation, which the write allocator uses as an O(1) cursor-slot index
   (fleet-scale volume counts must not pay a list walk per allocation). *)
let next_uid = Atomic.make 0

type t = {
  uid : int;
  spec : Config.vol_spec;
  topology : Topology.t;
  activemap : Activemap.t;
  scores : int array;
  mutable cache : Cache.t option;
  delta : Score.delta;
  container : int array;  (* vvbn -> pvbn, -1 when unmapped *)
  inodes : (int, (int, int) Hashtbl.t) Hashtbl.t;  (* file -> offset -> vvbn *)
  snapshots : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* id -> pinned vvbns *)
  zombies : (int, unit) Hashtbl.t;  (* vvbns kept only for snapshots *)
  mutable next_snapshot : int;
  mutable rebuild_epoch : int;
  mutable cache_epoch : int;  (* cache/scores exact iff = rebuild_epoch *)
}

let create (spec : Config.vol_spec) =
  if spec.Config.blocks <= 0 then invalid_arg "Flexvol.create: empty volume";
  let aa_blocks = Option.value spec.Config.aa_blocks ~default:Sizing.default_raid_agnostic_blocks in
  let aa_blocks = min aa_blocks spec.Config.blocks in
  let topology = Topology.raid_agnostic ~total_blocks:spec.Config.blocks ~aa_blocks in
  let scores = Array.init (Topology.aa_count topology) (Topology.aa_capacity topology) in
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      spec;
      topology;
      (* one metafile page per AA — the §3.2.1 alignment — even when the
         simulation scales AAs below the physical 32k-bits-per-block *)
      activemap =
        Activemap.create
          ~page_bits:(min Wafl_block.Units.bits_per_metafile_block aa_blocks)
          ~blocks:spec.Config.blocks ();
      scores;
      cache = None;
      delta = Score.create_delta topology;
      container = Array.make spec.Config.blocks (-1);
      inodes = Hashtbl.create 16;
      snapshots = Hashtbl.create 4;
      zombies = Hashtbl.create 256;
      next_snapshot = 1;
      rebuild_epoch = 0;
      cache_epoch = 0;
    }
  in
  if spec.Config.policy = Config.Best_aa then begin
    let cache =
      Cache.raid_agnostic ~max_score:(Topology.full_aa_capacity topology) ~scores ()
    in
    (* an empty volume: every AA qualifies; fill the list page *)
    (match Cache.backend cache with
    | Cache.Raid_agnostic h -> Hbps.replenish h
    | Cache.Raid_aware _ -> ());
    t.cache <- Some cache
  end;
  t

let uid t = t.uid
let name t = t.spec.Config.name
let blocks t = Array.length t.container
let spec t = t.spec
let topology t = t.topology
let activemap t = t.activemap
let metafile t = Activemap.metafile t.activemap
let scores t = t.scores
let cache t = t.cache
let set_cache t c = t.cache <- c
let delta t = t.delta

let free_blocks t = Activemap.free_count t.activemap ~start:0 ~len:(blocks t)
let used_fraction t = 1.0 -. (float_of_int (free_blocks t) /. float_of_int (blocks t))

let pvbn_of_vvbn t vvbn =
  let p = t.container.(vvbn) in
  if p < 0 then None else Some p

let reserve_vvbn t ~vvbn =
  Activemap.allocate t.activemap vvbn;
  Score.note_alloc t.delta ~vbn:vvbn

(* Trusted hot-path variant mirroring [Aggregate.allocate_harvested]:
   the harvest cursor knows the AA and guarantees the VVBN is free. *)
let reserve_harvested t ~aa ~vvbn =
  Activemap.allocate_harvested t.activemap vvbn;
  Score.note_alloc_aa t.delta ~aa

let attach_reserved t ~vvbn ~pvbn =
  if not (Activemap.is_allocated t.activemap vvbn) then
    invalid_arg "Flexvol.attach_reserved: VVBN not reserved";
  if t.container.(vvbn) >= 0 then invalid_arg "Flexvol.attach_reserved: VVBN already mapped";
  t.container.(vvbn) <- pvbn

let release_reserved t ~vvbn =
  if t.container.(vvbn) >= 0 then invalid_arg "Flexvol.release_reserved: VVBN is mapped";
  Activemap.queue_free t.activemap vvbn

let map_vvbn t ~vvbn ~pvbn =
  if t.container.(vvbn) >= 0 then invalid_arg "Flexvol.map_vvbn: VVBN already mapped";
  reserve_vvbn t ~vvbn;
  attach_reserved t ~vvbn ~pvbn

let remap_vvbn t ~vvbn ~pvbn =
  let old = t.container.(vvbn) in
  if old < 0 then invalid_arg "Flexvol.remap_vvbn: VVBN not mapped";
  t.container.(vvbn) <- pvbn;
  old

let queue_unmap t ~vvbn =
  if t.container.(vvbn) < 0 then invalid_arg "Flexvol.queue_unmap: VVBN not mapped";
  Activemap.queue_free t.activemap vvbn;
  t.container.(vvbn) <- -1

let commit_frees ?pool t =
  let result = Activemap.commit ?pool t.activemap in
  List.iter (fun vvbn -> Score.note_free t.delta ~vbn:vvbn) result.Activemap.freed;
  result.Activemap.pages_written

let cp_update_cache t =
  let updates = Score.apply t.delta t.scores in
  match t.cache with Some cache -> Cache.cp_update cache updates | None -> ()

(* --- cache validity epoch (incremental mount rebuild) ---
   Mirrors [Aggregate]'s per-range epochs; a lazy mount invalidates, and
   [Rebuild.touch_vol] re-materializes on first touch. *)
let invalidate_cache t = t.rebuild_epoch <- t.rebuild_epoch + 1
let[@inline] cache_fresh t = t.cache_epoch = t.rebuild_epoch

(* Exact rescore + fresh HBPS; building block of [Rebuild.request]. *)
let rebuild_cache ?pool t =
  Score.clear t.delta;
  let mf = metafile t in
  let n = Topology.aa_count t.topology in
  (* Parallel rescoring writes each (disjoint) score slot exactly once
     with a pure function of the bitmap — bit-identical to the serial
     fill at any domain count. *)
  (match Wafl_par.Par.resolve pool with
  | Some p when Wafl_par.Par.jobs p > 1 && n >= 32 ->
    let bounds =
      Wafl_par.Par.chunk_bounds ~total:n ~align:1 ~chunks:(Wafl_par.Par.jobs p * 4)
    in
    Wafl_par.Par.run p ~chunks:(Array.length bounds) ~f:(fun c ->
        let s, len = bounds.(c) in
        for aa = s to s + len - 1 do
          t.scores.(aa) <- Score.score_of_aa t.topology mf aa
        done)
  | _ ->
    for aa = 0 to n - 1 do
      t.scores.(aa) <- Score.score_of_aa t.topology mf aa
    done);
  let cache =
    Cache.raid_agnostic ~max_score:(Topology.full_aa_capacity t.topology) ~scores:t.scores ()
  in
  (match Cache.backend cache with
  | Cache.Raid_agnostic h -> Hbps.replenish h
  | Cache.Raid_aware _ -> ());
  t.cache <- Some cache;
  t.cache_epoch <- t.rebuild_epoch

let harvest_free_of_aa t aa ~dst ~words =
  match t.topology with
  | Topology.Raid_agnostic { total_blocks; aa_blocks } ->
    let start = aa * aa_blocks in
    if start < 0 || start >= total_blocks then
      invalid_arg "Flexvol.harvest_free_of_aa: AA index out of bounds";
    let len = min aa_blocks (total_blocks - start) in
    words := !words + Wafl_util.Bitops.ceil_div len 32;
    Metafile.harvest_free_into (metafile t) ~start ~len ~offset:0 ~dst ~pos:0
  | Topology.Raid_aware _ ->
    (* create only ever builds RAID-agnostic volume topologies *)
    assert false

(* --- snapshots ---

   A snapshot pins a set of VVBNs; the virtual-to-physical translation
   stays in the shared container map, so physical relocation (segment
   cleaning) is transparent to snapshots.  A VVBN overwritten while pinned
   becomes a "zombie": it leaves the active namespace but keeps its
   container entry until the last snapshot holding it is deleted. *)

let create_snapshot t =
  let id = t.next_snapshot in
  t.next_snapshot <- id + 1;
  let pinned = Hashtbl.create 1024 in
  Array.iteri
    (fun vvbn pvbn ->
      (* zombies are history, not part of the active image being captured *)
      if pvbn >= 0 && not (Hashtbl.mem t.zombies vvbn) then Hashtbl.replace pinned vvbn ())
    t.container;
  Hashtbl.replace t.snapshots id pinned;
  id

let snapshots t =
  List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.snapshots [])

let snapshot_holds t ~vvbn =
  Hashtbl.fold (fun _ pinned acc -> acc || Hashtbl.mem pinned vvbn) t.snapshots false

let detach_vvbn t ~vvbn =
  if t.container.(vvbn) < 0 then invalid_arg "Flexvol.detach_vvbn: VVBN not mapped";
  if not (snapshot_holds t ~vvbn) then
    invalid_arg "Flexvol.detach_vvbn: VVBN not snapshot-held";
  (* container entry survives for the snapshots' benefit *)
  Hashtbl.replace t.zombies vvbn ()

let delete_snapshot t id =
  let pinned =
    match Hashtbl.find_opt t.snapshots id with
    | Some m -> m
    | None -> raise Not_found
  in
  Hashtbl.remove t.snapshots id;
  Hashtbl.fold
    (fun vvbn () acc ->
      if Hashtbl.mem t.zombies vvbn && not (snapshot_holds t ~vvbn) then begin
        let pvbn = t.container.(vvbn) in
        Hashtbl.remove t.zombies vvbn;
        t.container.(vvbn) <- -1;
        (vvbn, pvbn) :: acc
      end
      else acc)
    pinned []

let snapshot_read t ~snapshot ~vvbn =
  match Hashtbl.find_opt t.snapshots snapshot with
  | None -> None
  | Some pinned -> if Hashtbl.mem pinned vvbn then pvbn_of_vvbn t vvbn else None

let inode t file =
  match Hashtbl.find_opt t.inodes file with
  | Some map -> map
  | None ->
    let map = Hashtbl.create 64 in
    Hashtbl.add t.inodes file map;
    map

let write_file t ~file ~offset ~vvbn =
  let map = inode t file in
  let old = Hashtbl.find_opt map offset in
  Hashtbl.replace map offset vvbn;
  old

let read_file t ~file ~offset =
  match Hashtbl.find_opt t.inodes file with
  | None -> None
  | Some map -> Hashtbl.find_opt map offset

let file_blocks t ~file =
  match Hashtbl.find_opt t.inodes file with None -> 0 | Some map -> Hashtbl.length map

let files t = Hashtbl.fold (fun file _ acc -> file :: acc) t.inodes []

(* --- namespace persistence (crash images) ---

   The container map and inode maps are the durable namespace a crash
   image must carry: without them a remount cannot answer "which physical
   block holds file F offset O", and Iron cannot cross-check container
   references against the bitmaps. *)

let export_namespace t =
  let mappings = ref [] in
  Array.iteri
    (fun vvbn pvbn -> if pvbn >= 0 then mappings := (vvbn, pvbn) :: !mappings)
    t.container;
  let files =
    Hashtbl.fold
      (fun file map acc ->
        Hashtbl.fold (fun offset vvbn acc -> (file, offset, vvbn) :: acc) map acc)
      t.inodes []
  in
  (List.rev !mappings, files)

let import_namespace t ~mappings ~files =
  List.iter
    (fun (vvbn, pvbn) ->
      if vvbn < 0 || vvbn >= Array.length t.container then
        invalid_arg "Flexvol.import_namespace: VVBN out of range";
      t.container.(vvbn) <- pvbn)
    mappings;
  List.iter (fun (file, offset, vvbn) -> Hashtbl.replace (inode t file) offset vvbn) files
