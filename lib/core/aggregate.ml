open Wafl_bitmap
open Wafl_raid
open Wafl_device
open Wafl_aa
open Wafl_aacache
open Wafl_telemetry
module Par = Wafl_par.Par

type device_sim =
  | Hdd_sim of Profile.hdd
  | Ssd_sim of Ftl.t
  | Smr_sim of Smr.t * Azcs.tracker array
  | Object_sim of Object_store.t

type range = {
  index : int;
  base : int;
  blocks : int;
  topology : Topology.t;
  geometry : Geometry.t option;
  group : Group.t option;
  device : device_sim;
  scores : int array;
  mutable cache : Cache.t option;
  delta : Score.delta;
  media : Config.media option;
  mutable fault : Wafl_fault.Fault.device option;
  mutable cache_epoch : int;
  owners : int Atomic.t array;
}

(* --- atomic AA claims (multi-writer allocation front-end) ---

   One slot per AA holding the claiming cursor/domain id, or -1 when
   unclaimed.  A claim is a single CAS on an immediate int — no
   allocation, no lock — and between CPs an AA is owned by at most one
   writer, which is what keeps the word-at-a-time harvest kernels
   single-writer.  All claims are released serially at the CP boundary. *)

let no_owner = -1

let make_owners topology =
  Array.init (Topology.aa_count topology) (fun _ -> Atomic.make no_owner)

let[@inline] aa_claimed range ~aa = Atomic.get range.owners.(aa) <> no_owner

let[@inline] claim_aa range ~aa ~owner =
  Atomic.compare_and_set range.owners.(aa) no_owner owner

let[@inline] release_aa range ~aa = Atomic.set range.owners.(aa) no_owner

type t = {
  config : Config.t;
  ranges : range array;
  activemap : Activemap.t;
  total_blocks : int;
  mutable rebuild_epoch : int;
}

let make_raid_range ~streams index base (spec : Config.raid_group_spec) =
  let geometry =
    Geometry.create ~data_devices:spec.Config.data_devices
      ~parity_devices:spec.Config.parity_devices ~device_blocks:spec.Config.device_blocks
  in
  let aa_stripes = Config.aa_stripes_for spec in
  let topology = Topology.raid_aware ~geometry ~aa_stripes in
  let blocks = Geometry.total_blocks geometry in
  let device =
    match spec.Config.media with
    | Config.Hdd p -> Hdd_sim p
    | Config.Ssd p ->
      (* one stream fills one AA = one erase block per data device, so a
         stream needs two AA fan-outs open at once (the one it is filling
         and the one it is handing over to), or the LRU closes
         still-filling blocks and re-pays their relocation charge on
         reopen; single-stream keeps the historical 8 *)
      let open_blocks =
        if streams <= 1 then 8 else 2 * streams * (spec.Config.data_devices + 1)
      in
      Ssd_sim (Ftl.create ~profile:p ~open_blocks ~streams ~logical_blocks:blocks ())
    | Config.Smr p ->
      (* the SMR device space includes interleaved AZCS checksum blocks,
         device spans rounded to whole regions (see Cp.smr_device_span) *)
      let span =
        Wafl_util.Bitops.round_up
          (Azcs.device_span_of_data spec.Config.device_blocks)
          Azcs.region_blocks
      in
      Smr_sim
        ( Smr.create ~profile:p ~blocks:(span * spec.Config.data_devices) (),
          Array.init spec.Config.data_devices (fun _ -> Azcs.create_tracker ()) )
  in
  let scores = Array.init (Topology.aa_count topology) (Topology.aa_capacity topology) in
  {
    index;
    base;
    blocks;
    topology;
    geometry = Some geometry;
    group = Some (Group.create geometry);
    device;
    scores;
    cache = None;
    delta = Score.create_delta topology;
    media = Some spec.Config.media;
    fault = None;
    cache_epoch = 0;
    owners = make_owners topology;
  }

let make_object_range index base (spec : Config.object_range_spec) =
  let aa_blocks =
    Option.value spec.Config.aa_blocks ~default:Sizing.default_raid_agnostic_blocks
  in
  let topology = Topology.raid_agnostic ~total_blocks:spec.Config.blocks ~aa_blocks in
  let scores = Array.init (Topology.aa_count topology) (Topology.aa_capacity topology) in
  {
    index;
    base;
    blocks = spec.Config.blocks;
    topology;
    geometry = None;
    group = None;
    device = Object_sim (Object_store.create ~profile:spec.Config.profile ());
    scores;
    cache = None;
    delta = Score.create_delta topology;
    media = None;
    fault = None;
    cache_epoch = 0;
    owners = make_owners topology;
  }

let build_cache range =
  match range.geometry with
  | Some _ -> Cache.raid_aware ~space:range.index ~scores:range.scores ()
  | None ->
    let c =
      Cache.raid_agnostic ~space:range.index
        ~max_score:(Topology.full_aa_capacity range.topology)
        ~scores:range.scores ()
    in
    (match Cache.backend c with
    | Cache.Raid_agnostic h -> Hbps.replenish h
    | Cache.Raid_aware _ -> ());
    c

(* One fault-plane device handle per range, created in range-index order so
   the per-device RNG substreams are stable.  The same handle is threaded
   into the range's device sim (and its AZCS trackers), which model the
   I/O, and kept on the range for allocation-time probes. *)
let attach_faults_ranges ranges plane =
  Array.iter
    (fun r ->
      let dev = Wafl_fault.Fault.device plane ~id:r.index in
      r.fault <- Some dev;
      match r.device with
      | Hdd_sim _ -> ()
      | Ssd_sim ftl -> Ftl.set_fault ftl (Some dev)
      | Smr_sim (smr, trackers) ->
        Smr.set_fault smr (Some dev);
        Array.iter (fun tr -> Azcs.set_tracker_fault tr (Some dev)) trackers
      | Object_sim store -> Object_store.set_fault store (Some dev))
    ranges

let create config =
  let ranges = ref [] in
  let base = ref 0 in
  let index = ref 0 in
  let streams = config.Config.streams.Config.ssd_streams in
  List.iter
    (fun spec ->
      let r = make_raid_range ~streams !index !base spec in
      ranges := r :: !ranges;
      base := !base + r.blocks;
      incr index)
    config.Config.raid_groups;
  List.iter
    (fun spec ->
      let r = make_object_range !index !base spec in
      ranges := r :: !ranges;
      base := !base + r.blocks;
      incr index)
    config.Config.object_ranges;
  let ranges = Array.of_list (List.rev !ranges) in
  if Array.length ranges = 0 then invalid_arg "Aggregate.create: no storage configured";
  let t =
    {
      config;
      ranges;
      activemap = Activemap.create ~blocks:!base ();
      total_blocks = !base;
      rebuild_epoch = 0;
    }
  in
  if config.Config.aggregate_policy = Config.Best_aa then
    Array.iter (fun r -> r.cache <- Some (build_cache r)) ranges;
  (match Wafl_fault.Fault.installed_default () with
  | Some spec -> attach_faults_ranges ranges (Wafl_fault.Fault.create spec)
  | None -> ());
  t

let attach_faults t plane = attach_faults_ranges t.ranges plane

let config t = t.config
let ranges t = t.ranges
let total_blocks t = t.total_blocks
let activemap t = t.activemap
let metafile t = Activemap.metafile t.activemap

(* Ranges are few; a linear scan is fine.  Top-level (closure-free) because
   this sits under every [allocate] on the zero-allocation hot path. *)
let rec find_range ranges i pvbn =
  let r = ranges.(i) in
  if pvbn < r.base + r.blocks then r else find_range ranges (i + 1) pvbn

let range_of_pvbn t pvbn =
  if pvbn < 0 || pvbn >= t.total_blocks then invalid_arg "Aggregate: PVBN out of bounds";
  find_range t.ranges 0 pvbn

let to_local range pvbn =
  let local = pvbn - range.base in
  if local < 0 || local >= range.blocks then invalid_arg "Aggregate: PVBN outside range";
  local

let to_global range local =
  if local < 0 || local >= range.blocks then invalid_arg "Aggregate: local VBN out of bounds";
  range.base + local

let free_blocks t = Activemap.free_count t.activemap ~start:0 ~len:t.total_blocks

let used_fraction t =
  1.0 -. (float_of_int (free_blocks t) /. float_of_int t.total_blocks)

let free_run_stats t =
  Metafile.free_run_stats (Activemap.metafile t.activemap) ~start:0 ~len:t.total_blocks

let allocate t ~pvbn =
  Activemap.allocate t.activemap pvbn;
  let r = range_of_pvbn t pvbn in
  Score.note_alloc r.delta ~vbn:(to_local r pvbn)

(* Hot-path allocate for a PVBN popped from a harvest ring: the cursor
   already knows the range and the AA (rings hold one AA's blocks), and
   ring entries are free by construction (revalidation filters stale
   ones), so the range scan, the VBN->AA divisions, and the
   already-allocated re-check all drop out. *)
let[@inline] allocate_harvested t range ~aa ~pvbn =
  Activemap.allocate_harvested t.activemap pvbn;
  Score.note_alloc_aa range.delta ~aa

let queue_free t ~pvbn = Activemap.queue_free t.activemap pvbn

let commit_frees ?pool t =
  let result = Activemap.commit ?pool t.activemap in
  List.iter
    (fun pvbn ->
      let r = range_of_pvbn t pvbn in
      Score.note_free r.delta ~vbn:(to_local r pvbn))
    result.Activemap.freed;
  (result.Activemap.pages_written, result.Activemap.freed)

let cp_update_caches t =
  Array.iter
    (fun r ->
      let updates = Score.apply r.delta r.scores in
      match r.cache with
      | Some cache -> Cache.cp_update cache updates
      | None -> ())
    t.ranges

let aa_score_now t range aa =
  let mf = metafile t in
  List.fold_left
    (fun acc e ->
      acc
      + Metafile.free_count mf
          ~start:(to_global range (Wafl_block.Extent.start e))
          ~len:(Wafl_block.Extent.len e))
    0
    (Topology.extents_of_aa range.topology aa)

(* Below this many AAs a range is rescored inline: the pool's dispatch
   overhead would exceed the scan. *)
let par_min_aas = 32

(* Rescore [scores.(aa)] for every AA of [r].  Parallel mode chunks the
   AA index space and lets each domain fill its chunk's (disjoint) score
   slots; since each slot is written exactly once with a value that is a
   pure function of the bitmap, the array is bit-identical to the serial
   fill at any domain count. *)
let rescore_range pool t r =
  let n = Topology.aa_count r.topology in
  match pool with
  | Some p when Par.jobs p > 1 && n >= par_min_aas ->
    let bounds = Par.chunk_bounds ~total:n ~align:1 ~chunks:(Par.jobs p * 4) in
    Par.run p ~chunks:(Array.length bounds) ~f:(fun c ->
        let s, len = bounds.(c) in
        for aa = s to s + len - 1 do
          r.scores.(aa) <- aa_score_now t r aa
        done)
  | _ ->
    for aa = 0 to n - 1 do
      r.scores.(aa) <- aa_score_now t r aa
    done

(* --- cache validity epochs (incremental mount rebuild) ---

   A range's cache is valid when its [cache_epoch] matches the aggregate's
   [rebuild_epoch].  Lazy mounts bump the aggregate epoch, leaving every
   range stale-but-seeded; [Rebuild.touch_range] materializes a stale
   range's exact scores and cache on first touch (pick, harvest, Iron
   scan, cleaner pass) and re-stamps it.  A freshly created aggregate is
   fresh everywhere (both epochs are 0). *)

let invalidate_caches t = t.rebuild_epoch <- t.rebuild_epoch + 1
let rebuild_epoch t = t.rebuild_epoch
let[@inline] range_fresh t r = r.cache_epoch = t.rebuild_epoch
let mark_range_fresh t r = r.cache_epoch <- t.rebuild_epoch

(* Per-range exact rebuild: the building block the unified [Rebuild]
   entry point orchestrates (callers go through [Rebuild.request] /
   [Rebuild.touch_range], never here directly). *)
let rebuild_range ?pool t r =
  Telemetry.incr "aggregate.range_rebuilds";
  Score.clear r.delta;
  rescore_range (Par.resolve pool) t r;
  r.cache <- Some (build_cache r);
  mark_range_fresh t r

let disable_caches t = Array.iter (fun r -> r.cache <- None) t.ranges

(* Batch-harvest an AA's free PVBNs into [dst] in allocation order, reading
   the bitmap a word at a time instead of probing per block.  RAID-agnostic
   AAs are one contiguous extent; RAID-aware AAs interleave one extent per
   data device in stripe-major order, so the scan merges a 32-stripe free
   mask per device: the OR across devices says which stripes have any free
   block, and one ctz per such stripe replaces 32 * devices bit probes.
   Adds words (32-bit masks) read to [words].  The per-block inner loop
   allocates nothing; only the per-AA setup does (a small mask array). *)
(* Stripe-window kernel shared by the serial and the sharded harvest:
   emit the free PVBNs of stripes [first, first + count) into [dst] from
   index 0, stripe-major.  Pure bitmap reads; the words-read cost is
   [data_devices * ceil_div count 32] (computed by the callers so a
   shared accumulator never sees concurrent writes). *)
let harvest_stripes mf range geometry ~first ~count ~dst =
  let devices = Geometry.data_devices geometry in
  let device_blocks = Geometry.device_blocks geometry in
  let masks = Array.make devices 0 in
  let pos = ref 0 in
  let s = ref first in
  let finish = first + count in
  while !s < finish do
    let chunk = min 32 (finish - !s) in
    let chunk_mask = if chunk < 32 then (1 lsl chunk) - 1 else 0xFFFFFFFF in
    let or_mask = ref 0 in
    for d = 0 to devices - 1 do
      let m =
        Metafile.free_mask32 mf (range.base + (d * device_blocks) + !s) land chunk_mask
      in
      masks.(d) <- m;
      or_mask := !or_mask lor m
    done;
    while !or_mask <> 0 do
      let b = Wafl_util.Bitops.ctz !or_mask in
      let bit = 1 lsl b in
      let stripe_vbn = range.base + !s + b in
      for d = 0 to devices - 1 do
        if masks.(d) land bit <> 0 then begin
          dst.(!pos) <- stripe_vbn + (d * device_blocks);
          incr pos
        end
      done;
      or_mask := !or_mask land lnot bit
    done;
    s := !s + 32
  done;
  !pos

let harvest_free_of_aa t range aa ~dst ~words =
  if aa < 0 || aa >= Topology.aa_count range.topology then
    invalid_arg "Aggregate.harvest_free_of_aa: AA index out of bounds";
  let mf = metafile t in
  match range.topology with
  | Topology.Raid_agnostic { total_blocks; aa_blocks } ->
    let start = aa * aa_blocks in
    let len = min aa_blocks (total_blocks - start) in
    words := !words + Wafl_util.Bitops.ceil_div len 32;
    Metafile.harvest_free_into mf ~start:(range.base + start) ~len ~offset:0 ~dst ~pos:0
  | Topology.Raid_aware { geometry; aa_stripes } ->
    let first = aa * aa_stripes in
    let count = min aa_stripes (Geometry.stripes geometry - first) in
    words := !words + (Geometry.data_devices geometry * Wafl_util.Bitops.ceil_div count 32);
    harvest_stripes mf range geometry ~first ~count ~dst

(* Sharded harvest: split the AA's span into one 32-aligned chunk per
   shard, let each pool domain harvest its chunk into its own scratch
   ring, then concatenate the shards into [dst] in chunk order.  Chunk
   boundaries fall on 32-block (or 32-stripe) marks, so the per-chunk
   word counts sum to exactly the serial count and the concatenation
   reproduces the serial emission order — ring contents are identical to
   {!harvest_free_of_aa} at any domain count.  Every shard must hold the
   AA's full capacity (chunk sizes are an internal detail). *)
let harvest_free_of_aa_sharded pool t range aa ~shards ~dst ~words =
  if aa < 0 || aa >= Topology.aa_count range.topology then
    invalid_arg "Aggregate.harvest_free_of_aa_sharded: AA index out of bounds";
  let mf = metafile t in
  let gather counts =
    let pos = ref 0 in
    Array.iteri
      (fun c count ->
        Array.blit shards.(c) 0 dst !pos count;
        pos := !pos + count)
      counts;
    !pos
  in
  match range.topology with
  | Topology.Raid_agnostic { total_blocks; aa_blocks } ->
    let start = aa * aa_blocks in
    let len = min aa_blocks (total_blocks - start) in
    let bounds = Par.chunk_bounds ~total:len ~align:32 ~chunks:(Array.length shards) in
    if Array.length bounds <= 1 then harvest_free_of_aa t range aa ~dst ~words
    else begin
      words := !words + Wafl_util.Bitops.ceil_div len 32;
      let counts =
        Par.map pool ~chunks:(Array.length bounds) ~f:(fun c ->
            let cstart, clen = bounds.(c) in
            Metafile.harvest_free_into mf ~start:(range.base + start + cstart) ~len:clen
              ~offset:0 ~dst:shards.(c) ~pos:0)
      in
      gather counts
    end
  | Topology.Raid_aware { geometry; aa_stripes } ->
    let first = aa * aa_stripes in
    let count = min aa_stripes (Geometry.stripes geometry - first) in
    let bounds = Par.chunk_bounds ~total:count ~align:32 ~chunks:(Array.length shards) in
    if Array.length bounds <= 1 then harvest_free_of_aa t range aa ~dst ~words
    else begin
      words :=
        !words + (Geometry.data_devices geometry * Wafl_util.Bitops.ceil_div count 32);
      let counts =
        Par.map pool ~chunks:(Array.length bounds) ~f:(fun c ->
            let cfirst, ccount = bounds.(c) in
            harvest_stripes mf range geometry ~first:(first + cfirst) ~count:ccount
              ~dst:shards.(c))
      in
      gather counts
    end
