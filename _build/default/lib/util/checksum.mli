(** CRC-32 (IEEE 802.3 polynomial), used to protect persisted metafile
    blocks such as the TopAA pages (§3.4) against corruption. *)

val crc32 : Bytes.t -> pos:int -> len:int -> int32
(** CRC of a byte range. *)

val crc32_all : Bytes.t -> int32

val crc32_string : string -> int32
