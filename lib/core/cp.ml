open Wafl_raid
open Wafl_device
open Wafl_aacache
open Wafl_telemetry
module Par = Wafl_par.Par

type staged = { vol : Flexvol.t; file : int; offset : int }

type device_report = {
  range_index : int;
  media : string;
  blocks_written : int;
  chains : int;
  full_stripes : int;
  partial_stripes : int;
  tetrises : int;
  parity_writes : int;
  parity_reads : int;
  device_time_us : float;
  ssd_stats : Ftl.stats option;
  ssd_stream_stats : Ftl.stats array;
  smr_random_checksum_writes : int;
  fault : Wafl_fault.Fault.io_stats option;
}

type report = {
  ops : int;
  blocks_allocated : int;
  pvbns_freed : int;
  vvbns_freed : int;
  agg_metafile_pages : int;
  vol_metafile_pages : int;
  devices : device_report list;
  device_time_us : float;
  cache_work : int;
  alloc_candidates : int;
  fault_totals : Wafl_fault.Fault.io_stats option;
}

let empty_report =
  {
    ops = 0;
    blocks_allocated = 0;
    pvbns_freed = 0;
    vvbns_freed = 0;
    agg_metafile_pages = 0;
    vol_metafile_pages = 0;
    devices = [];
    device_time_us = 0.0;
    cache_work = 0;
    alloc_candidates = 0;
    fault_totals = None;
  }

(* Writes grouped per volume, preserving order. *)
let group_by_vol staged =
  let vols = ref [] in
  List.iter
    (fun s ->
      match List.find_opt (fun (v, _) -> v == s.vol) !vols with
      | Some (_, items) -> items := s :: !items
      | None -> vols := (s.vol, ref [ s ]) :: !vols)
    staged;
  List.rev_map (fun (v, items) -> (v, List.rev !items)) !vols

(* Per-device write streams for an SMR range: sorted DBNs per data device,
   concatenated device by device.  A data DBN lands at its AZCS device
   position (checksum blocks interleaved), offset into the device's span so
   zone arithmetic stays per-device. *)
(* Rounded to whole AZCS regions so device boundaries never split a region
   (the tracker's region math is global). *)
let smr_device_span geometry =
  Wafl_util.Bitops.round_up
    (Azcs.device_span_of_data (Geometry.device_blocks geometry))
    Azcs.region_blocks

let smr_streams geometry locals =
  (* preserve allocation order per device: the allocator finishes one AA
     before starting the next, and sorting would interleave them *)
  let by_device = Hashtbl.create 8 in
  List.iter
    (fun local ->
      let loc = Geometry.location_of_vbn geometry local in
      let existing = try Hashtbl.find by_device loc.Geometry.device with Not_found -> [] in
      Hashtbl.replace by_device loc.Geometry.device (loc.Geometry.dbn :: existing))
    locals;
  let span = smr_device_span geometry in
  let devices = List.sort Int.compare (Hashtbl.fold (fun d _ acc -> d :: acc) by_device []) in
  List.map
    (fun device ->
      let dbns = List.rev (Hashtbl.find by_device device) in
      (device, List.map (fun dbn -> (device * span) + Azcs.device_position_of_data dbn) dbns))
    devices

let flush_range_body walloc (range : Aggregate.range) ~cls_locals locals freed_locals =
  let aggregate = Write_alloc.aggregate walloc in
  ignore aggregate;
  let flush =
    match range.Aggregate.group with
    | Some group ->
      Telemetry.span_enter Span.Tetris_write;
      let f = Group.record_flush group ~vbns:locals in
      Telemetry.span_exit Span.Tetris_write;
      Some f
    | None -> None
  in
  let media =
    match range.Aggregate.media with
    | Some m -> Config.media_name m
    | None -> "object"
  in
  let base_report =
    {
      range_index = range.Aggregate.index;
      media;
      blocks_written = List.length locals;
      chains = 0;
      full_stripes = 0;
      partial_stripes = 0;
      tetrises = 0;
      parity_writes = 0;
      parity_reads = 0;
      device_time_us = 0.0;
      ssd_stats = None;
      ssd_stream_stats = [||];
      smr_random_checksum_writes = 0;
      fault = None;
    }
  in
  let with_raid =
    match flush with
    | None -> base_report
    | Some f ->
      {
        base_report with
        chains = f.Group.chains;
        full_stripes = f.Group.classification.Stripe.full_stripes;
        partial_stripes = f.Group.classification.Stripe.partial_stripes;
        tetrises = f.Group.tetris.Tetris.tetrises;
        parity_writes = f.Group.classification.Stripe.parity_writes;
        parity_reads = f.Group.classification.Stripe.extra_reads;
      }
  in
  if with_raid.blocks_written > 0 && flush <> None then
    Telemetry.trace_tetris_write ~space:range.Aggregate.index ~tetrises:with_raid.tetrises
      ~full_stripes:with_raid.full_stripes ~partial_stripes:with_raid.partial_stripes;
  let fault_before =
    match range.Aggregate.fault with
    | Some dev -> Wafl_fault.Fault.stats dev
    | None -> Wafl_fault.Fault.zero_stats
  in
  let report =
    match range.Aggregate.device with
    | Aggregate.Hdd_sim profile ->
      (* One positioning per chain; stream data + parity; parity reads for
         partial stripes are random I/Os.  The fault plane is consulted per
         data block inside the cost model (HDD sims are stateless). *)
      let write_time =
        Hdd.faulty_write_cost_us range.Aggregate.fault profile
          ~chains:(with_raid.chains + with_raid.partial_stripes)
          ~locals ~parity_writes:with_raid.parity_writes
      in
      let read_time = Hdd.random_read_cost_us profile ~ios:with_raid.parity_reads in
      { with_raid with device_time_us = write_time +. read_time }
    | Aggregate.Ssd_sim ftl ->
      let before = Ftl.stats ftl in
      let ns = Ftl.streams ftl in
      let sbefore = Array.init ns (Ftl.stream_stats ftl) in
      (match cls_locals with
      | Some cls_list ->
        (* Temperature routing: each class's batch goes to its own FTL
           write stream (classes beyond the drive's stream count share
           the last one), so segregated AAs also stop sharing open erase
           blocks inside the device. *)
        let by_stream = Array.make ns [] in
        List.iter2
          (fun p c ->
            let s = if c < ns then c else ns - 1 in
            by_stream.(s) <- p :: by_stream.(s))
          locals cls_list;
        Array.iteri
          (fun s batch ->
            if batch <> [] then Ftl.write_batch ~stream:s ftl (List.rev batch))
          by_stream
      | None -> Ftl.write_batch ftl locals);
      Ftl.trim_batch ftl freed_locals;
      let delta = Ftl.diff_stats ~after:(Ftl.stats ftl) ~before in
      let sdelta =
        Array.init ns (fun s ->
            Ftl.diff_stats ~after:(Ftl.stream_stats ftl s) ~before:sbefore.(s))
      in
      {
        with_raid with
        device_time_us = Ftl.service_time_us ftl ~stats_delta:delta;
        ssd_stats = Some delta;
        ssd_stream_stats = sdelta;
      }
    | Aggregate.Smr_sim (smr, trackers) -> (
      match range.Aggregate.geometry with
      | None -> with_raid
      | Some geometry ->
        let before = Smr.stats smr in
        let random_cs = ref 0 in
        List.iter
          (fun (device, stream) ->
            let tracker = trackers.(device) in
            List.iter
              (fun dev_pos ->
                (* stream positions are device positions: checksum blocks are
                   already interleaved by smr_streams' mapping.  Region closes
                   are written before the data block that triggered them, so a
                   sequential close lands exactly in stream order. *)
                List.iter
                  (fun cw ->
                    Smr.write smr cw.Azcs.block;
                    if not cw.Azcs.sequential then incr random_cs)
                  (Azcs.write tracker dev_pos);
                Smr.write smr dev_pos)
              stream)
          (smr_streams geometry locals);
        let after = Smr.stats smr in
        {
          with_raid with
          device_time_us = after.Smr.total_us -. before.Smr.total_us;
          smr_random_checksum_writes = !random_cs;
        })
    | Aggregate.Object_sim store ->
      let before = Object_store.stats store in
      Object_store.write_batch store locals;
      let delta = Object_store.diff_stats ~after:(Object_store.stats store) ~before in
      { with_raid with device_time_us = Object_store.cost_us store ~stats_delta:delta }
  in
  match range.Aggregate.fault with
  | None -> report
  | Some dev ->
    let fs =
      Wafl_fault.Fault.diff_stats ~before:fault_before ~after:(Wafl_fault.Fault.stats dev)
    in
    if fs.Wafl_fault.Fault.injected_transient + fs.Wafl_fault.Fault.torn
       + fs.Wafl_fault.Fault.failed + fs.Wafl_fault.Fault.spikes > 0
    then
      Telemetry.trace_fault_inject ~space:range.Aggregate.index
        ~transients:fs.Wafl_fault.Fault.injected_transient ~torn:fs.Wafl_fault.Fault.torn
        ~failed:fs.Wafl_fault.Fault.failed ~spikes:fs.Wafl_fault.Fault.spikes;
    if fs.Wafl_fault.Fault.retries > 0 then
      Telemetry.trace_io_retry ~space:range.Aggregate.index
        ~retries:fs.Wafl_fault.Fault.retries ~ok:fs.Wafl_fault.Fault.retries_ok;
    {
      report with
      (* retry backoff and latency spikes stall this range's flush *)
      device_time_us = report.device_time_us +. fs.Wafl_fault.Fault.penalty_us;
      fault = Some fs;
    }

(* [Device_flush] spans may run concurrently on pool domains; each domain
   stamps its own start slot, so the enter/exit pair is race-free.  The
   [Fun.protect] closure is per-range-per-CP — off the hot path. *)
let flush_range walloc range ~cls_locals locals freed_locals =
  Telemetry.span_enter Span.Device_flush;
  Fun.protect
    ~finally:(fun () -> Telemetry.span_exit Span.Device_flush)
    (fun () -> flush_range_body walloc range ~cls_locals locals freed_locals)

(* Aggregate cache stats over the physical ranges and this CP's active
   volumes: (picks, replenishes, work, worst HBPS score error). *)
let cache_totals ranges by_vol =
  let picks = ref 0 and repl = ref 0 and work = ref 0 and err = ref 0.0 in
  let tally = function
    | None -> ()
    | Some c ->
      let s = Cache.stats c in
      picks := !picks + s.Cache.picks;
      repl := !repl + s.Cache.replenishes;
      work := !work + s.Cache.work;
      err := Float.max !err s.Cache.score_error_max
  in
  Array.iter (fun (r : Aggregate.range) -> tally r.Aggregate.cache) ranges;
  List.iter (fun (vol, _) -> tally (Flexvol.cache vol)) by_vol;
  (!picks, !repl, !work, !err)

(* Schema of the per-CP time-series row sampled at the end of [run]; one
   name per cell of the row array below, in order. *)
let timeseries_columns =
  [
    "cp"; "ops"; "blocks_allocated"; "pvbns_freed"; "picks"; "replenishes";
    "search_ns_per_block"; "cp_wall_ns"; "hbps_score_error_max"; "aa_score_d1";
    "aa_score_d2"; "aa_score_d3"; "aa_score_d4"; "aa_score_d5"; "aa_score_d6";
    "aa_score_d7"; "aa_score_d8"; "aa_score_d9"; "free_blocks"; "free_frac";
    "free_runs"; "largest_free_run"; "frag"; "ring_high_water"; "device_us";
    "fault_transients"; "fault_torn"; "fault_failed"; "fault_retries";
    "scrub_pages"; "scrub_bad"; "ssd_wa"; "ssd_reloc_s0"; "ssd_reloc_s1";
    "ssd_reloc_s2"; "ssd_reloc_s3"; "ssd_max_wear";
    (* Modeled request latency (ms), zero when no latency recorder is
       attached.  Volume slots are first-seen order and only the first
       four get columns (keeping the schema fixed across runs, like the
       reloc_s* cells); later volumes stay visible in the health pane and
       the Prometheus export. *)
    "lat_p50_ms"; "lat_p99_ms"; "lat_p999_ms";
    "lat_v0_p50_ms"; "lat_v0_p99_ms"; "lat_v0_p999_ms";
    "lat_v1_p50_ms"; "lat_v1_p99_ms"; "lat_v1_p999_ms";
    "lat_v2_p50_ms"; "lat_v2_p99_ms"; "lat_v2_p999_ms";
    "lat_v3_p50_ms"; "lat_v3_p99_ms"; "lat_v3_p999_ms";
  ]

let run ?pool ?temp walloc staged =
  let pool = Par.resolve pool in
  Telemetry.trace_cp_begin ();
  Telemetry.span_enter Span.Cp;
  let cp_t0 = Telemetry.now_ns () in
  let pick_ns0 = Telemetry.span_total_ns Span.Pick in
  let harvest_ns0 = Telemetry.span_total_ns Span.Harvest in
  let aggregate = Write_alloc.aggregate walloc in
  let by_vol = group_by_vol staged in
  let ranges = Aggregate.ranges aggregate in
  let picks_before, replenishes_before, cache_work_before, _ = cache_totals ranges by_vol in
  let candidates_before = Write_alloc.candidates_scanned walloc in
  (* 1. Allocate virtual VBNs per volume and physical VBNs across ranges;
        update inodes and container maps; queue COW frees. *)
  let ops = List.length staged in
  let placed = ref 0 in
  let vvbn_frees = ref 0 in
  (* Request-latency accounting: per-volume (slot, fresh, overwrite)
     placement counts, gathered only when a latency recorder is live. *)
  let lat_on = Telemetry.lat_active () in
  let lat_groups = ref [] in
  let allocated_pvbns = ref [] in
  let allocated_cls = ref [] in
  (* Temperature routing is active when an inference handle with more than
     one class is given; [allocated_cls] then parallels [allocated_pvbns]. *)
  let routing =
    match temp with
    | Some tm when Temperature.classes tm > 1 -> Some tm
    | _ -> None
  in
  List.iter
    (fun (vol, writes) ->
      Wafl_fault.Crash.point "cp.place_vol";
      let n = List.length writes in
      let vvbns = Array.make (max 1 n) 0 in
      let got_v = Write_alloc.allocate_vvbns_into walloc vol ~dst:vvbns n in
      let lat_fresh = ref 0 and lat_over = ref 0 in
      (* Place one write at its allocated vvbn/pvbn pair. *)
      let place_one w vv pv cls =
        (match Flexvol.write_file vol ~file:w.file ~offset:w.offset ~vvbn:vv with
        | Some old_vvbn ->
          incr lat_over;
          (* COW: the replaced block dies at this CP — unless a snapshot
             still pins it, in which case it merely leaves the active
             map and is released at snapshot deletion *)
          if Flexvol.snapshot_holds vol ~vvbn:old_vvbn then
            Flexvol.detach_vvbn vol ~vvbn:old_vvbn
          else begin
            (match Flexvol.pvbn_of_vvbn vol old_vvbn with
            | Some old_pvbn -> Aggregate.queue_free aggregate ~pvbn:old_pvbn
            | None -> ());
            Flexvol.queue_unmap vol ~vvbn:old_vvbn;
            incr vvbn_frees
          end
        | None -> incr lat_fresh);
        Flexvol.attach_reserved vol ~vvbn:vv ~pvbn:pv;
        (match temp with
        | Some tm ->
          Temperature.note_birth tm ~uid:(Flexvol.uid vol)
            ~blocks:(Flexvol.blocks vol) ~vvbn:vv
        | None -> ());
        allocated_pvbns := pv :: !allocated_pvbns;
        if routing <> None then allocated_cls := cls :: !allocated_cls;
        incr placed
      in
      (match routing with
      | Some tm ->
        (* SepBIT-style segregation: classify each write by the lifespan of
           the version it kills (before any of this CP's placements mutate
           the file maps), then allocate each class's batch through its own
           Write_alloc cursor row so classes land in different AAs. *)
        let classes = Temperature.classes tm in
        let uid = Flexvol.uid vol and vblocks = Flexvol.blocks vol in
        let buckets = Array.make classes [] in
        let rec classify_loop writes k =
          match writes with
          | w :: ws when k < got_v ->
            let prev = Flexvol.read_file vol ~file:w.file ~offset:w.offset in
            let slot =
              Temperature.slot_of tm
                (Temperature.classify tm ~uid ~blocks:vblocks ~file:w.file ~prev)
            in
            buckets.(slot) <- (w, vvbns.(k)) :: buckets.(slot);
            classify_loop ws (k + 1)
          | _ -> ()
        in
        classify_loop writes 0;
        Array.iteri
          (fun c bucket ->
            match List.rev bucket with
            | [] -> ()
            | batch ->
              let bn = List.length batch in
              let pvbns = Array.make bn 0 in
              let got_p = Write_alloc.allocate_pvbns_into ~cls:c walloc ~dst:pvbns bn in
              let rec place_batch batch k =
                match batch with
                | (w, vv) :: rest when k < got_p ->
                  place_one w vv pvbns.(k) c;
                  place_batch rest (k + 1)
                | rest ->
                  (* reserved virtual blocks with no physical home
                     (aggregate out of space): hand them back *)
                  List.iter
                    (fun ((_, vv) : staged * int) ->
                      Flexvol.release_reserved vol ~vvbn:vv)
                    rest
              in
              place_batch batch 0)
          buckets
      | None ->
        let pvbns = Array.make (max 1 got_v) 0 in
        let got_p = Write_alloc.allocate_pvbns_into walloc ~dst:pvbns got_v in
        (* pair as many writes as we could place both numbers for *)
        let rec place writes k =
          match writes with
          | w :: ws when k < got_p ->
            place_one w vvbns.(k) pvbns.(k) 0;
            place ws (k + 1)
          | _ ->
            (* reserved virtual blocks with no physical home (aggregate out
               of space): hand them back *)
            for j = k to got_v - 1 do
              Flexvol.release_reserved vol ~vvbn:vvbns.(j)
            done
        in
        place writes 0);
      if lat_on && !lat_fresh + !lat_over > 0 then
        lat_groups :=
          ( Telemetry.lat_vol_slot ~uid:(Flexvol.uid vol)
              ~name:(Flexvol.name vol),
            !lat_fresh,
            !lat_over )
          :: !lat_groups)
    by_vol;
  (* 2. Commit delayed frees (aggregate + volumes) and flush metafiles.
        Concurrent frees queued by allocation-pool domains drain first, in
        shard order, into the aggregate's validated queue. *)
  Telemetry.span_enter Span.Activemap_commit;
  ignore (Write_alloc.drain_queued_frees walloc);
  Wafl_fault.Crash.point "cp.agg_free_commit";
  let agg_pages, freed_pvbns = Aggregate.commit_frees ?pool aggregate in
  let vol_pages =
    match pool with
    | Some p when Par.jobs p > 1 && List.length by_vol > 1 ->
      (* Fire the per-volume crash points first, serially — same count and
         sequence position as the serial fold — then commit the volumes in
         parallel: each volume's activemap, metafile and score delta are
         private to it, and the page counts are summed in volume order.
         (A nested Activemap.commit sees this pool busy and runs inline.) *)
      List.iter (fun _ -> Wafl_fault.Crash.point "cp.vol_free_commit") by_vol;
      let vols = Array.of_list (List.map fst by_vol) in
      let pages =
        Par.map p ~chunks:(Array.length vols) ~f:(fun i -> Flexvol.commit_frees vols.(i))
      in
      Array.fold_left ( + ) 0 pages
    | _ ->
      List.fold_left
        (fun acc (vol, _) ->
          Wafl_fault.Crash.point "cp.vol_free_commit";
          acc + Flexvol.commit_frees ?pool vol)
        0 by_vol
  in
  Telemetry.span_exit Span.Activemap_commit;
  (* 3. Device I/O per range: this CP's allocations (and trims) grouped by
        range, in range-local coordinates. *)
  let locals_by_range = Array.make (Array.length ranges) [] in
  List.iter
    (fun pvbn ->
      let r = Aggregate.range_of_pvbn aggregate pvbn in
      locals_by_range.(r.Aggregate.index) <-
        Aggregate.to_local r pvbn :: locals_by_range.(r.Aggregate.index))
    (List.rev !allocated_pvbns);
  (* With routing on, a class list parallel to each range's locals. *)
  let cls_by_range =
    match routing with
    | None -> None
    | Some _ ->
      let arr = Array.make (Array.length ranges) [] in
      List.iter2
        (fun pvbn cls ->
          let r = Aggregate.range_of_pvbn aggregate pvbn in
          arr.(r.Aggregate.index) <- cls :: arr.(r.Aggregate.index))
        (List.rev !allocated_pvbns) (List.rev !allocated_cls);
      Some arr
  in
  let cls_locals_of i =
    match cls_by_range with None -> None | Some arr -> Some (List.rev arr.(i))
  in
  let freed_by_range = Array.make (Array.length ranges) [] in
  List.iter
    (fun pvbn ->
      let r = Aggregate.range_of_pvbn aggregate pvbn in
      freed_by_range.(r.Aggregate.index) <-
        Aggregate.to_local r pvbn :: freed_by_range.(r.Aggregate.index))
    freed_pvbns;
  let devices =
    match pool with
    | Some p when Par.jobs p > 1 && Array.length ranges > 1 ->
      (* Hoist the per-range crash points out of the parallel section —
         same count and sequence position as the serial mapi — then flush
         every range on its own domain: a range's RAID group, device
         simulator and fault handle are private to it, trace emission is
         mutex-guarded, and the reports land in range order. *)
      Array.iter (fun _ -> Wafl_fault.Crash.point "cp.device_flush") ranges;
      Array.to_list
        (Par.map p ~chunks:(Array.length ranges) ~f:(fun i ->
             flush_range walloc ranges.(i) ~cls_locals:(cls_locals_of i)
               (List.rev locals_by_range.(i))
               (List.rev freed_by_range.(i))))
    | _ ->
      Array.to_list
        (Array.mapi
           (fun i (r : Aggregate.range) ->
             Wafl_fault.Crash.point "cp.device_flush";
             flush_range walloc r ~cls_locals:(cls_locals_of i)
               (List.rev locals_by_range.(i))
               (List.rev freed_by_range.(i)))
           ranges)
  in
  (* 4. CP boundary: batched score updates, cache rebalance. *)
  Wafl_fault.Crash.point "cp.score_refile";
  Write_alloc.cp_finish walloc;
  Wafl_fault.Crash.point "cp.topaa_write";
  (* Persist the integrity sidecars for every page sealed this CP and
     advance the committed generation — the durable close of the CP when
     the pagestores are file-mapped (a no-op otherwise). *)
  Wafl_bitmap.Integrity.cp_commit ();
  let picks_after, replenishes_after, cache_work_after, score_error_max =
    cache_totals ranges by_vol
  in
  let device_time_us =
    List.fold_left
      (fun acc (d : device_report) -> Float.max acc d.device_time_us)
      0.0 devices
  in
  let fault_totals =
    List.fold_left
      (fun acc (d : device_report) ->
        match d.fault with
        | None -> acc
        | Some fs -> (
          match acc with
          | None -> Some fs
          | Some t ->
            Some
              {
                Wafl_fault.Fault.ios = t.Wafl_fault.Fault.ios + fs.Wafl_fault.Fault.ios;
                injected_transient =
                  t.Wafl_fault.Fault.injected_transient
                  + fs.Wafl_fault.Fault.injected_transient;
                retries = t.Wafl_fault.Fault.retries + fs.Wafl_fault.Fault.retries;
                retries_ok = t.Wafl_fault.Fault.retries_ok + fs.Wafl_fault.Fault.retries_ok;
                torn = t.Wafl_fault.Fault.torn + fs.Wafl_fault.Fault.torn;
                failed = t.Wafl_fault.Fault.failed + fs.Wafl_fault.Fault.failed;
                spikes = t.Wafl_fault.Fault.spikes + fs.Wafl_fault.Fault.spikes;
                penalty_us =
                  t.Wafl_fault.Fault.penalty_us +. fs.Wafl_fault.Fault.penalty_us;
              }))
      None devices
  in
  let report =
    {
      ops;
      blocks_allocated = !placed;
      pvbns_freed = List.length freed_pvbns;
      vvbns_freed = !vvbn_frees;
      agg_metafile_pages = agg_pages;
      vol_metafile_pages = vol_pages;
      devices;
      device_time_us;
      cache_work = cache_work_after - cache_work_before;
      alloc_candidates = Write_alloc.candidates_scanned walloc - candidates_before;
      fault_totals;
    }
  in
  (* 5. Telemetry: a per-CP snapshot plus CP-granularity counters (the hot
     allocation path above only touched the zero-cost trace emitters). *)
  (* Assign modeled latencies to this CP's ops first, so the time-series
     row below reads quantiles that include this CP.  device_time_us
     already carries the injected spike penalty; spike_us is passed
     separately so exemplar blame can tell a faulted flush from a merely
     slow one. *)
  if lat_on then
    Telemetry.lat_cp_record
      ~groups:(List.rev !lat_groups)
      ~pages:(agg_pages + vol_pages)
      ~cache_work:report.cache_work
      ~candidates:report.alloc_candidates
      ~device_us:device_time_us
      ~spike_us:
        (match fault_totals with
        | Some fs -> fs.Wafl_fault.Fault.penalty_us
        | None -> 0.0)
      ~pick_ns:(Telemetry.span_total_ns Span.Pick - pick_ns0)
      ~harvest_ns:(Telemetry.span_total_ns Span.Harvest - harvest_ns0);
  Telemetry.trace_free_commit ~space:(-1) ~freed:report.pvbns_freed ~pages:agg_pages;
  Telemetry.trace_cp_end ~ops ~blocks:report.blocks_allocated ~freed:report.pvbns_freed
    ~pages:(agg_pages + vol_pages) ~device_us:device_time_us;
  Telemetry.incr "cp.count";
  Telemetry.add "cp.ops" ops;
  Telemetry.add "cp.blocks_allocated" report.blocks_allocated;
  Telemetry.add "cp.pvbns_freed" report.pvbns_freed;
  Telemetry.add "cp.vvbns_freed" report.vvbns_freed;
  Telemetry.add "metafile.agg_pages_written" agg_pages;
  Telemetry.add "metafile.vol_pages_written" vol_pages;
  Telemetry.add "cache.picks" (picks_after - picks_before);
  Telemetry.add "cache.replenishes" (replenishes_after - replenishes_before);
  Telemetry.add "cache.work" report.cache_work;
  Telemetry.add "alloc.candidates_scanned" report.alloc_candidates;
  Telemetry.max_gauge "cache.hbps.score_error_max" score_error_max;
  Telemetry.observe "cp.device_us" (int_of_float device_time_us);
  Telemetry.observe "cp.blocks" report.blocks_allocated;
  Telemetry.record ~label:"cp" (fun () ->
      let base =
        [
          ("ops", Telemetry.Int ops);
          ("blocks_allocated", Telemetry.Int report.blocks_allocated);
          ("pvbns_freed", Telemetry.Int report.pvbns_freed);
          ("vvbns_freed", Telemetry.Int report.vvbns_freed);
          ("agg_metafile_pages", Telemetry.Int agg_pages);
          ("vol_metafile_pages", Telemetry.Int vol_pages);
          ("picks", Telemetry.Int (picks_after - picks_before));
          ("replenishes", Telemetry.Int (replenishes_after - replenishes_before));
          ("cache_work", Telemetry.Int report.cache_work);
          ("hbps_score_error_max", Telemetry.Float score_error_max);
          ("alloc_candidates", Telemetry.Int report.alloc_candidates);
          ("device_time_us", Telemetry.Float device_time_us);
        ]
      in
      let base =
        match report.fault_totals with
        | None -> base
        | Some fs ->
          base
          @ [
              ("fault.transients", Telemetry.Int fs.Wafl_fault.Fault.injected_transient);
              ("fault.retries", Telemetry.Int fs.Wafl_fault.Fault.retries);
              ("fault.retries_ok", Telemetry.Int fs.Wafl_fault.Fault.retries_ok);
              ("fault.torn", Telemetry.Int fs.Wafl_fault.Fault.torn);
              ("fault.failed", Telemetry.Int fs.Wafl_fault.Fault.failed);
              ("fault.penalty_us", Telemetry.Float fs.Wafl_fault.Fault.penalty_us);
            ]
      in
      let per_range =
        List.concat_map
          (fun (d : device_report) ->
            let p = Printf.sprintf "range%d." d.range_index in
            [
              (p ^ "media", Telemetry.String d.media);
              (p ^ "blocks_written", Telemetry.Int d.blocks_written);
              (p ^ "device_us", Telemetry.Float d.device_time_us);
              (p ^ "tetrises", Telemetry.Int d.tetrises);
            ])
          report.devices
      in
      base @ per_range);
  (* One time-series row per CP: the paper's time-resolved axes (search
     cost per block, AA score distribution, HBPS error bound, free-space
     fragmentation) plus allocator/fault health.  The row thunk — and in
     particular the whole-bitmap free-run scan and the score sort — only
     runs when telemetry is installed. *)
  Telemetry.sample ~columns:(fun () -> timeseries_columns)
    (fun () ->
      let fl = float_of_int in
      let cp_idx =
        match Telemetry.installed () with
        | Some tel -> Tracer.current_cp (Telemetry.tracer tel)
        | None -> 0
      in
      let ring_hw =
        match Telemetry.installed () with
        | Some tel ->
          Registry.value (Registry.gauge (Telemetry.registry tel) "write_alloc.ring_high_water")
        | None -> 0.0
      in
      let search_ns =
        Telemetry.span_total_ns Span.Pick - pick_ns0
        + (Telemetry.span_total_ns Span.Harvest - harvest_ns0)
      in
      let free = Aggregate.free_blocks aggregate in
      let total = Aggregate.total_blocks aggregate in
      let free_runs, largest_run = Aggregate.free_run_stats aggregate in
      (* fragmentation: how little of the free space the largest single
         run covers — 0.0 = one contiguous run, -> 1.0 as it shatters *)
      let frag = if free = 0 then 0.0 else 1.0 -. (fl largest_run /. fl free) in
      let scores =
        Array.concat
          (Array.to_list (Array.map (fun (r : Aggregate.range) -> r.Aggregate.scores) ranges))
      in
      Array.sort compare scores;
      let decile k =
        let n = Array.length scores in
        if n = 0 then 0.0 else fl scores.(k * (n - 1) / 10)
      in
      let ft sel = match report.fault_totals with None -> 0 | Some fs -> sel fs in
      let scrub_count name =
        match Telemetry.installed () with
        | Some tel -> fl (Registry.count (Registry.counter (Telemetry.registry tel) name))
        | None -> 0.0
      in
      (* SSD health: cumulative write amplification and peak wear over the
         aggregate's FTLs, plus this CP's relocations per write stream
         (streams beyond 3 fold into the s3 cell). *)
      let ssd_host = ref 0 and ssd_dev = ref 0 and ssd_wear = ref 0 in
      Array.iter
        (fun (r : Aggregate.range) ->
          match r.Aggregate.device with
          | Aggregate.Ssd_sim ftl ->
            let s = Ftl.stats ftl in
            ssd_host := !ssd_host + s.Ftl.host_pages_written;
            ssd_dev := !ssd_dev + s.Ftl.device_pages_written;
            ssd_wear := max !ssd_wear (snd (Ftl.wear_spread ftl))
          | _ -> ())
        ranges;
      let ssd_wa = if !ssd_host = 0 then 1.0 else fl !ssd_dev /. fl !ssd_host in
      let reloc_s = Array.make 4 0 in
      List.iter
        (fun (d : device_report) ->
          Array.iteri
            (fun s (st : Ftl.stats) ->
              let s = min s 3 in
              reloc_s.(s) <- reloc_s.(s) + st.Ftl.relocated_pages)
            d.ssd_stream_stats)
        report.devices;
      (* Modeled latency quantiles (all zeros when no recorder is live). *)
      let lat_all_50, lat_all_99, lat_all_999 = Telemetry.lat_quantiles_ms ~vol:(-1) in
      let lat_v0_50, lat_v0_99, lat_v0_999 = Telemetry.lat_quantiles_ms ~vol:0 in
      let lat_v1_50, lat_v1_99, lat_v1_999 = Telemetry.lat_quantiles_ms ~vol:1 in
      let lat_v2_50, lat_v2_99, lat_v2_999 = Telemetry.lat_quantiles_ms ~vol:2 in
      let lat_v3_50, lat_v3_99, lat_v3_999 = Telemetry.lat_quantiles_ms ~vol:3 in
      [|
        fl cp_idx;
        fl ops;
        fl report.blocks_allocated;
        fl report.pvbns_freed;
        fl (picks_after - picks_before);
        fl (replenishes_after - replenishes_before);
        fl search_ns /. fl (max 1 report.blocks_allocated);
        fl (Telemetry.now_ns () - cp_t0);
        score_error_max;
        decile 1; decile 2; decile 3; decile 4; decile 5;
        decile 6; decile 7; decile 8; decile 9;
        fl free;
        fl free /. fl total;
        fl free_runs;
        fl largest_run;
        frag;
        ring_hw;
        device_time_us;
        fl (ft (fun fs -> fs.Wafl_fault.Fault.injected_transient));
        fl (ft (fun fs -> fs.Wafl_fault.Fault.torn));
        fl (ft (fun fs -> fs.Wafl_fault.Fault.failed));
        fl (ft (fun fs -> fs.Wafl_fault.Fault.retries));
        scrub_count "scrub.pages_verified";
        scrub_count "scrub.bad_pages";
        ssd_wa;
        fl reloc_s.(0);
        fl reloc_s.(1);
        fl reloc_s.(2);
        fl reloc_s.(3);
        fl !ssd_wear;
        lat_all_50; lat_all_99; lat_all_999;
        lat_v0_50; lat_v0_99; lat_v0_999;
        lat_v1_50; lat_v1_99; lat_v1_999;
        lat_v2_50; lat_v2_99; lat_v2_999;
        lat_v3_50; lat_v3_99; lat_v3_999;
      |]);
  (* Tick the temperature clock after the CP's placements: lifespans are
     measured in whole CPs between a birth and the overwrite killing it. *)
  (match temp with Some tm -> Temperature.advance_cp tm | None -> ());
  Telemetry.span_exit Span.Cp;
  report
