lib/device/object_store.ml: Hashtbl List Profile
