open Wafl_util
open Wafl_core

type spec = {
  fill_fraction : float;
  fragmentation_cps : int;
  writes_per_cp : int;
  file : int;
}

let default = { fill_fraction = 0.55; fragmentation_cps = 40; writes_per_cp = 2000; file = 1 }

let fill fs vol spec =
  let aggregate = Fs.aggregate fs in
  let target = int_of_float (spec.fill_fraction *. float_of_int (Aggregate.total_blocks aggregate)) in
  let vol_cap = Flexvol.blocks vol in
  let batch = 4096 in
  let offset = ref 0 in
  (* Fill sequentially, one CP per batch, until the aggregate hits the
     target fullness (or the volume is nearly full). *)
  let used () = Aggregate.total_blocks aggregate - Aggregate.free_blocks aggregate in
  while used () < target && !offset < vol_cap - batch do
    for i = 0 to batch - 1 do
      Fs.stage_write fs ~vol ~file:spec.file ~offset:(!offset + i)
    done;
    ignore (Fs.run_cp fs);
    offset := !offset + batch
  done;
  !offset

let fragment fs vol spec ~working_set ~rng =
  if working_set > 0 then begin
    for _cp = 1 to spec.fragmentation_cps do
      for _ = 1 to spec.writes_per_cp do
        Fs.stage_write fs ~vol ~file:spec.file ~offset:(Rng.int rng working_set)
      done;
      ignore (Fs.run_cp fs)
    done
  end

let age fs vol ?(spec = default) ~rng () =
  let working_set = fill fs vol spec in
  fragment fs vol spec ~working_set ~rng;
  working_set

let free_space_contiguity fs =
  let aggregate = Fs.aggregate fs in
  let mf = Aggregate.metafile aggregate in
  let total = Aggregate.total_blocks aggregate in
  let runs = ref 0 and blocks = ref 0 in
  ignore
    (Wafl_bitmap.Metafile.free_extents mf ~start:0 ~len:total
    |> List.iter (fun e ->
           incr runs;
           blocks := !blocks + Wafl_block.Extent.len e));
  if !runs = 0 then 0.0 else float_of_int !blocks /. float_of_int !runs
