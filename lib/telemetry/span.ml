type kind =
  | Cp
  | Pick
  | Harvest
  | Tetris_write
  | Device_flush
  | Activemap_commit
  | Bit_clear
  | Mount_rebuild
  | Iron
  | Cleaner
  | Scrub

let all =
  [
    Cp; Pick; Harvest; Tetris_write; Device_flush; Activemap_commit; Bit_clear;
    Mount_rebuild; Iron; Cleaner; Scrub;
  ]

let index = function
  | Cp -> 0
  | Pick -> 1
  | Harvest -> 2
  | Tetris_write -> 3
  | Device_flush -> 4
  | Activemap_commit -> 5
  | Bit_clear -> 6
  | Mount_rebuild -> 7
  | Iron -> 8
  | Cleaner -> 9
  | Scrub -> 10

let n_kinds = 11

let name = function
  | Cp -> "cp"
  | Pick -> "cp.pick"
  | Harvest -> "cp.harvest"
  | Tetris_write -> "cp.tetris_write"
  | Device_flush -> "cp.device_flush"
  | Activemap_commit -> "cp.activemap_commit"
  | Bit_clear -> "cp.activemap_commit.bit_clear"
  | Mount_rebuild -> "mount.rebuild"
  | Iron -> "iron"
  | Cleaner -> "cleaner"
  | Scrub -> "scrub"

let parent = function
  | Cp | Mount_rebuild | Iron | Cleaner | Scrub -> None
  | Pick | Harvest | Tetris_write | Device_flush | Activemap_commit -> Some Cp
  | Bit_clear -> Some Activemap_commit

let rec depth k = match parent k with None -> 0 | Some p -> 1 + depth p

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Start stamps live in one flat int array indexed by
   (domain id mod max_domains, kind).  Each slot is written only by its own
   domain, so plain (non-atomic) stores suffice; a collision would need two
   concurrent domains 128 ids apart, far beyond any pool here. *)
let max_domains = 128
let no_start = min_int

type t = {
  clock : unit -> int;
  counts : int Atomic.t array;    (* completed spans per kind *)
  totals : int Atomic.t array;    (* accumulated ns per kind *)
  opens : int Atomic.t array;     (* currently-open spans per kind *)
  starts : int array;             (* (domain mod max_domains) * n_kinds + kind *)
}

let create ?(clock = now_ns) () =
  {
    clock;
    counts = Array.init n_kinds (fun _ -> Atomic.make 0);
    totals = Array.init n_kinds (fun _ -> Atomic.make 0);
    opens = Array.init n_kinds (fun _ -> Atomic.make 0);
    starts = Array.make (max_domains * n_kinds) no_start;
  }

let slot k = (((Domain.self () :> int) land (max_domains - 1)) * n_kinds) + index k

let enter t k =
  let s = slot k in
  t.starts.(s) <- t.clock ();
  Atomic.incr t.opens.(index k)

let exit t k =
  let s = slot k in
  let start = t.starts.(s) in
  if start <> no_start then begin
    t.starts.(s) <- no_start;
    let i = index k in
    let dt = t.clock () - start in
    ignore (Atomic.fetch_and_add t.totals.(i) (if dt > 0 then dt else 0));
    Atomic.incr t.counts.(i);
    Atomic.decr t.opens.(i)
  end

let count t k = Atomic.get t.counts.(index k)
let total_ns t k = Atomic.get t.totals.(index k)
let open_now t k = Atomic.get t.opens.(index k)

let clear t =
  Array.iter (fun a -> Atomic.set a 0) t.counts;
  Array.iter (fun a -> Atomic.set a 0) t.totals;
  Array.iter (fun a -> Atomic.set a 0) t.opens;
  Array.fill t.starts 0 (Array.length t.starts) no_start
