(** Per-RAID-group write accounting across consistency points.

    Accumulates, flush by flush, the stripe classification, tetris counts,
    per-device block counts and write-chain summaries that the evaluation
    section reports (Figures 1, 6, 7). *)

type t

type totals = {
  flushes : int;
  blocks_written : int;             (** data blocks *)
  tetrises_written : int;
  full_stripes : int;
  partial_stripes : int;
  parity_writes : int;
  extra_parity_reads : int;
  per_device_blocks : int array;
  chain_count : int;                (** device write I/Os issued *)
  chain_blocks : int;
}

val create : Geometry.t -> t

val geometry : t -> Geometry.t

type flush_report = {
  classification : Stripe.classification;
  tetris : Tetris.summary;
  chains : int;        (** device write I/Os this flush *)
  chain_blocks : int;
}

val record_flush : t -> vbns:int list -> flush_report
(** Account one CP's writes to this group and return that flush's own
    classification, tetris summary and chain counts. *)

val totals : t -> totals

val mean_chain_len : totals -> float
(** Blocks per device write I/O; 0 when nothing was written. *)

val stripe_fullness : totals -> float
(** Fraction of stripes written that were full. *)

val reset : t -> unit

val pp_totals : Format.formatter -> totals -> unit
