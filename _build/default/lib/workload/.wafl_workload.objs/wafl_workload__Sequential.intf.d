lib/workload/sequential.mli: Wafl_core
