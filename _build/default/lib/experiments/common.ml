open Wafl_device
open Wafl_core

type scale = Quick | Full

let scale_of_string = function
  | "quick" | "Quick" | "QUICK" -> Some Quick
  | "full" | "Full" | "FULL" -> Some Full
  | _ -> None

(* Enterprise FTLs erase in large superblocks; 16384 blocks (64MiB) keeps
   the historical 4k-stripe AA at a quarter of an erase block, matching the
   misalignment of Figure 4 (A).  Quick mode shrinks everything 8x.  OP is
   between the consumer 7% and the high-IOPS 28% drives of §3.2.2. *)
let ssd_profile = function
  | Full ->
    { Profile.default_ssd with Profile.erase_block_blocks = 16384; overprovision = 0.15 }
  | Quick ->
    { Profile.default_ssd with Profile.erase_block_blocks = 2048; overprovision = 0.15 }

let ssd_raid_group scale ~aa_stripes =
  let device_blocks = match scale with Full -> 524288 | Quick -> 131072 in
  {
    Config.media = Config.Ssd (ssd_profile scale);
    data_devices = 4;
    parity_devices = 1;
    device_blocks;
    aa_stripes;
  }

let hdd_raid_group scale =
  let device_blocks = match scale with Full -> 131072 | Quick -> 32768 in
  {
    Config.media = Config.Hdd Profile.default_hdd;
    data_devices = 4;
    parity_devices = 1;
    device_blocks;
    aa_stripes = Some (match scale with Full -> 4096 | Quick -> 1024);
  }

let smr_profile = function
  | Full -> Profile.default_smr
  | Quick -> { Profile.default_smr with Profile.zone_blocks = 4096 }

let smr_raid_group scale ~aa_stripes =
  let device_blocks = match scale with Full -> 262144 | Quick -> 65536 in
  {
    Config.media = Config.Smr (smr_profile scale);
    data_devices = 2;
    parity_devices = 1;
    device_blocks;
    aa_stripes;
  }

let vol_blocks = function Full -> 2_097_152 | Quick -> 262_144

let banner title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let kv key value = Printf.printf "  %-44s %s\n" key value

let pct a b =
  if b = 0.0 then "n/a"
  else begin
    let change = (a -. b) /. b *. 100.0 in
    Printf.sprintf "%+.1f%%" change
  end

let paper_vs_measured ~metric ~paper ~measured ~ok =
  Printf.printf "  %-40s paper: %-22s measured: %-22s %s\n" metric paper measured
    (if ok then "[OK]" else "[DIVERGES]")
