type backend = Heap | Bigarray

let backend_name = function Heap -> "heap" | Bigarray -> "bigarray"

let backend_of_string = function
  | "heap" -> Some Heap
  | "bigarray" -> Some Bigarray
  | _ -> None

let default_backend = ref Heap
let set_default b = default_backend := b
let default () = !default_backend

let with_default b f =
  let saved = !default_backend in
  default_backend := b;
  Fun.protect ~finally:(fun () -> default_backend := saved) f

type ba = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Byte-kind view of the little-endian int64-word layout: byte loads and
   stores are immediate ints on both arms (an int64-kind Bigarray would box
   every element read), while the word accessor below assembles the same
   64-bit words the layout defines. *)
type t =
  | Bytes_store of Bytes.t
  | Big_store of ba

(* File-backed stores: when a map directory is installed, every
   anonymously created store (no explicit [?backend]) becomes a shared
   mapping of the next file in the directory's deterministic ps<seq>
   sequence.  A structure-for-structure identical system (same config,
   same creation order) maps the same files, which is what lets a remount
   pick up exactly the bytes a previous process persisted.  Snapshots and
   other explicit-backend copies stay anonymous. *)
let mmap_dir : string option ref = ref None
let mmap_seq = ref 0

(* Registry of the stores mapped under the current directory, in sequence
   order: the integrity plane needs (seq, path) back from a store handle
   to name its sidecar file, and the verified-remount path enumerates the
   mapped set.  (Re)installing a directory starts a fresh epoch — stale
   handles from an earlier installation stop resolving, and consumers
   holding per-epoch state (sidecars) reload theirs. *)
let mapped_rev : (int * string * t) list ref = ref []
let epoch = ref 0

let set_mmap_dir dir =
  mmap_dir := dir;
  mmap_seq := 0;
  mapped_rev := [];
  incr epoch

let with_mmap_dir dir f =
  let saved_dir = !mmap_dir and saved_seq = !mmap_seq in
  let saved_mapped = !mapped_rev in
  mmap_dir := Some dir;
  mmap_seq := 0;
  mapped_rev := [];
  incr epoch;
  Fun.protect
    ~finally:(fun () ->
      mmap_dir := saved_dir;
      mmap_seq := saved_seq;
      mapped_rev := saved_mapped;
      incr epoch)
    f

let mmap_dir_path () = !mmap_dir
let mmap_epoch () = !epoch
let mapped_stores () = List.rev !mapped_rev

let mapped_path t =
  List.find_map (fun (seq, path, s) -> if s == t then Some (seq, path) else None) !mapped_rev

let map_file ~path words =
  if words < 0 then invalid_arg "Pagestore.map_file: negative size";
  let bytes = words * 8 in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* Size to fit, but only when the file doesn't already fit: a
         right-sized existing file keeps its persisted contents — that is
         the remount path.  A size mismatch truncates to zero FIRST, so
         the mapping is wholly OS-zeroed (growing in place would leak the
         stale prefix into what [create] promises is a zero-filled
         store).  Discarding a non-empty file is data loss from the
         caller's point of view, so it is never silent. *)
      let size = (Unix.fstat fd).Unix.st_size in
      if size <> bytes then begin
        if size > 0 then begin
          Wafl_telemetry.Telemetry.incr "pagestore.recreated";
          Printf.eprintf
            "pagestore: %s is %d bytes but %d were requested; recreating it zero-filled \
             (persisted contents discarded)\n%!"
            path size bytes
        end;
        Unix.ftruncate fd 0;
        Unix.ftruncate fd bytes
      end;
      let a =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout true [| bytes |])
      in
      Big_store a)

let create ?backend words =
  if words < 0 then invalid_arg "Pagestore.create: negative size";
  match (backend, !mmap_dir) with
  | None, Some dir when words > 0 ->
    let seq = !mmap_seq in
    incr mmap_seq;
    let path = Filename.concat dir ("ps" ^ string_of_int seq ^ ".bin") in
    let t = map_file ~path words in
    mapped_rev := (seq, path, t) :: !mapped_rev;
    t
  | _ -> (
    match Option.value backend ~default:!default_backend with
    | Heap -> Bytes_store (Bytes.make (words * 8) '\000')
    | Bigarray ->
      let a =
        Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout (words * 8)
      in
      Bigarray.Array1.fill a 0;
      Big_store a)

let backend = function Bytes_store _ -> Heap | Big_store _ -> Bigarray

let length_bytes = function
  | Bytes_store b -> Bytes.length b
  | Big_store a -> Bigarray.Array1.dim a

let words t = length_bytes t / 8

let[@inline] byte t i =
  match t with
  | Bytes_store b -> Char.code (Bytes.unsafe_get b i)
  | Big_store a -> Bigarray.Array1.unsafe_get a i

let[@inline] set_byte t i v =
  match t with
  | Bytes_store b -> Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff))
  | Big_store a -> Bigarray.Array1.unsafe_set a i (v land 0xff)

let word t w =
  match t with
  | Bytes_store b -> Bytes.get_int64_le b (w * 8)
  | Big_store a ->
    let o = w * 8 in
    let lo =
      Bigarray.Array1.unsafe_get a o
      lor (Bigarray.Array1.unsafe_get a (o + 1) lsl 8)
      lor (Bigarray.Array1.unsafe_get a (o + 2) lsl 16)
      lor (Bigarray.Array1.unsafe_get a (o + 3) lsl 24)
    and hi =
      Bigarray.Array1.unsafe_get a (o + 4)
      lor (Bigarray.Array1.unsafe_get a (o + 5) lsl 8)
      lor (Bigarray.Array1.unsafe_get a (o + 6) lsl 16)
      lor (Bigarray.Array1.unsafe_get a (o + 7) lsl 24)
    in
    Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let fill t ~pos ~len v =
  if pos < 0 || len < 0 || pos + len > length_bytes t then
    invalid_arg "Pagestore.fill: range out of bounds";
  match t with
  | Bytes_store b -> Bytes.fill b pos len (Char.chr (v land 0xff))
  | Big_store a ->
    if len > 0 then Bigarray.Array1.fill (Bigarray.Array1.sub a pos len) (v land 0xff)

let blit ~src ~dst =
  let n = length_bytes src in
  if n <> length_bytes dst then invalid_arg "Pagestore.blit: size mismatch";
  match (src, dst) with
  | Bytes_store s, Bytes_store d -> Bytes.blit s 0 d 0 n
  | Big_store s, Big_store d -> Bigarray.Array1.blit s d
  | _ ->
    for i = 0 to n - 1 do
      set_byte dst i (byte src i)
    done

let copy t =
  let c = create ~backend:(backend t) (words t) in
  blit ~src:t ~dst:c;
  c

let equal a b =
  length_bytes a = length_bytes b
  &&
  match (a, b) with
  | Bytes_store x, Bytes_store y -> Bytes.equal x y
  | _ ->
    let n = length_bytes a in
    let rec go i = i >= n || (byte a i = byte b i && go (i + 1)) in
    go 0

let of_bytes ?backend b =
  let n = Bytes.length b in
  if n mod 8 <> 0 then invalid_arg "Pagestore.of_bytes: not whole words";
  let t = create ?backend (n / 8) in
  (match t with
  | Bytes_store d -> Bytes.blit b 0 d 0 n
  | Big_store _ ->
    for i = 0 to n - 1 do
      set_byte t i (Char.code (Bytes.unsafe_get b i))
    done);
  t

let to_bytes t =
  let n = length_bytes t in
  match t with
  | Bytes_store b -> Bytes.sub b 0 n
  | Big_store _ ->
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.unsafe_set b i (Char.unsafe_chr (byte t i))
    done;
    b
