(* Tests for Wafl_util: rng, bitops, stats, histo, table, series, queueing. *)

open Wafl_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float msg = Alcotest.(check (float 1e-9)) msg

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in r ~lo:(-5) ~hi:5 in
    check_bool "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_covers () =
  let r = Rng.create ~seed:3 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 8) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_rng_float_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 3.5 in
    check_bool "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_rng_copy_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy starts from same state" va vb

let test_rng_split_diverges () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  check_bool "split stream differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:21 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let m = !sum /. float_of_int n in
  check_bool "mean close to 4" true (m > 3.8 && m < 4.2)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* --- Bitops --- *)

let test_popcount64 () =
  check_int "zero" 0 (Bitops.popcount64 0L);
  check_int "all ones" 64 (Bitops.popcount64 (-1L));
  check_int "one bit" 1 (Bitops.popcount64 0x8000000000000000L);
  check_int "pattern" 32 (Bitops.popcount64 0xAAAAAAAAAAAAAAAAL)

let test_popcount64_matches_naive () =
  let r = Rng.create ~seed:17 in
  for _ = 1 to 1000 do
    let x = Rng.bits64 r in
    let naive = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr naive
    done;
    check_int "matches naive" !naive (Bitops.popcount64 x)
  done

let test_ctz64 () =
  check_int "zero" 64 (Bitops.ctz64 0L);
  check_int "one" 0 (Bitops.ctz64 1L);
  check_int "bit 63" 63 (Bitops.ctz64 Int64.min_int);
  check_int "bit 12" 12 (Bitops.ctz64 0x1000L)

let test_clz64 () =
  check_int "zero" 64 (Bitops.clz64 0L);
  check_int "one" 63 (Bitops.clz64 1L);
  check_int "top bit" 0 (Bitops.clz64 Int64.min_int)

let test_power_of_two () =
  check_bool "1" true (Bitops.is_power_of_two 1);
  check_bool "64" true (Bitops.is_power_of_two 64);
  check_bool "63" false (Bitops.is_power_of_two 63);
  check_bool "0" false (Bitops.is_power_of_two 0);
  check_bool "-4" false (Bitops.is_power_of_two (-4))

let test_rounding () =
  check_int "ceil_div exact" 4 (Bitops.ceil_div 16 4);
  check_int "ceil_div up" 5 (Bitops.ceil_div 17 4);
  check_int "round_up" 20 (Bitops.round_up 17 4);
  check_int "round_up exact" 16 (Bitops.round_up 16 4);
  check_int "round_down" 16 (Bitops.round_down 19 4)

(* --- Checksum --- *)

let test_crc32_vectors () =
  (* Standard CRC-32 (IEEE) test vectors. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Checksum.crc32_string "123456789");
  Alcotest.(check int32) "empty" 0l (Checksum.crc32_string "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Checksum.crc32_string "a")

let test_crc32_range () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "windowed" 0xCBF43926l (Checksum.crc32 b ~pos:2 ~len:9);
  Alcotest.check_raises "oob" (Invalid_argument "Checksum.crc32: range out of bounds")
    (fun () -> ignore (Checksum.crc32 b ~pos:10 ~len:9))

let test_crc32_detects_change () =
  let b = Bytes.make 100 'q' in
  let before = Checksum.crc32_all b in
  Bytes.set b 50 'r';
  check_bool "differs" true (before <> Checksum.crc32_all b)

(* --- Stats --- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  let sd = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-6)) "known stddev" 2.13809 sd

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25 interp" 2.0 (Stats.percentile xs 25.0)

let test_stats_summary () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  check_int "count" 3 s.Stats.count;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max;
  check_float "p50" 2.0 s.Stats.p50

(* --- Histo --- *)

let test_histo_binning () =
  let h = Histo.create ~max_value:32767 ~bin_width:1024 in
  check_int "bins" 32 (Histo.bins h);
  check_int "bin of 0" 0 (Histo.bin_of_value h 0);
  check_int "bin of 1023" 0 (Histo.bin_of_value h 1023);
  check_int "bin of 1024" 1 (Histo.bin_of_value h 1024);
  check_int "bin of 32767" 31 (Histo.bin_of_value h 32767);
  check_int "clamped above" 31 (Histo.bin_of_value h 99999);
  let lo, hi = Histo.bin_range h 31 in
  check_int "last bin lo" 31744 lo;
  check_int "last bin hi" 32767 hi

let test_histo_add_remove () =
  let h = Histo.create ~max_value:100 ~bin_width:10 in
  Histo.add h 5;
  Histo.add h 15;
  Histo.add h 15;
  check_int "total" 3 (Histo.total h);
  check_int "bin0" 1 (Histo.count h 0);
  check_int "bin1" 2 (Histo.count h 1);
  Histo.remove h 15;
  check_int "bin1 after remove" 1 (Histo.count h 1);
  check_int "total after remove" 2 (Histo.total h)

let test_histo_move () =
  let h = Histo.create ~max_value:100 ~bin_width:10 in
  Histo.add h 5;
  Histo.move h ~from_value:5 ~to_value:95;
  check_int "bin0 emptied" 0 (Histo.count h 0);
  check_int "bin9 filled" 1 (Histo.count h 9);
  check_int "total stable" 1 (Histo.total h);
  (* same-bin move is a no-op *)
  Histo.move h ~from_value:95 ~to_value:91;
  check_int "same-bin move" 1 (Histo.count h 9)

let test_histo_highest () =
  let h = Histo.create ~max_value:100 ~bin_width:10 in
  Alcotest.(check (option int)) "empty" None (Histo.highest_nonempty h);
  Histo.add h 5;
  Histo.add h 55;
  Alcotest.(check (option int)) "highest" (Some 5) (Histo.highest_nonempty h)

let prop_histo_total_conserved =
  QCheck.Test.make ~name:"histo total equals adds minus removes" ~count:200
    QCheck.(list (int_bound 100))
    (fun values ->
      let h = Histo.create ~max_value:100 ~bin_width:7 in
      List.iter (Histo.add h) values;
      let sum = ref 0 in
      Histo.iter h (fun _ c -> sum := !sum + c);
      !sum = List.length values && Histo.total h = List.length values)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "23" ];
  let s = Table.render t in
  check_bool "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: _ -> check_bool "header mentions name" true (String.length header >= 4)
  | [] -> Alcotest.fail "no lines");
  check_int "line count (header+rule+2 rows+trailing)" 5 (List.length lines)

let test_table_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

(* --- Series --- *)

let test_series_basics () =
  let s = Series.make "s" [ (1.0, 10.0); (2.0, 30.0); (3.0, 20.0) ] in
  check_float "peak" 30.0 (Series.peak_y s);
  check_float "max_x" 3.0 (Series.max_x s);
  check_float "last" 20.0 (Series.y_at_last s)

let test_series_interpolate () =
  let s = Series.make "s" [ (0.0, 0.0); (10.0, 100.0) ] in
  Alcotest.(check (option (float 1e-9))) "mid" (Some 50.0) (Series.interpolate s 5.0);
  Alcotest.(check (option (float 1e-9))) "edge" (Some 100.0) (Series.interpolate s 10.0);
  Alcotest.(check (option (float 1e-9))) "outside" None (Series.interpolate s 11.0)

(* --- Queueing --- *)

let test_mg1_low_load () =
  match Queueing.mg1_response_time ~service_time:0.001 ~cv2:1.0 ~arrival_rate:1.0 with
  | Some r -> check_bool "latency near service time" true (r < 0.0011)
  | None -> Alcotest.fail "stable queue reported unstable"

let test_mg1_unstable () =
  check_bool "unstable" true
    (Queueing.mg1_response_time ~service_time:0.001 ~cv2:1.0 ~arrival_rate:2000.0 = None)

let test_mg1_monotonic () =
  let lat rate =
    match Queueing.mg1_response_time ~service_time:0.001 ~cv2:1.0 ~arrival_rate:rate with
    | Some r -> r
    | None -> infinity
  in
  check_bool "latency grows with load" true (lat 100.0 < lat 500.0 && lat 500.0 < lat 900.0)

let test_sweep_shape () =
  let pts = Queueing.sweep ~service_time:0.001 ~cv2:1.0 ~loads:[ 100.0; 500.0; 900.0; 2000.0 ] in
  check_int "points" 4 (List.length pts);
  let throughputs = List.map fst pts in
  let max_tp = List.fold_left Float.max 0.0 throughputs in
  check_bool "throughput capped at capacity" true (max_tp <= 980.0 +. 1e-9);
  (* past saturation latency keeps rising *)
  match List.rev pts with
  | (_, last_lat) :: (_, prev_lat) :: _ -> check_bool "saturation tail" true (last_lat > prev_lat)
  | _ -> Alcotest.fail "short sweep"

(* --- Json --- *)

let test_json_parse_roundtrip () =
  let src = {|{"a": 1, "b": [true, null, -2.5e1, "xé\n"], "c": {"d": 0.125}}|} in
  let v = Json.parse_exn src in
  (match Json.member "a" v with
  | Some (Json.Num 1.0) -> ()
  | _ -> Alcotest.fail "member a");
  (match Json.member "b" v with
  | Some (Json.List [ Json.Bool true; Json.Null; Json.Num -25.0; Json.Str s ]) ->
    Alcotest.(check string) "unicode escape decoded" "x\xc3\xa9\n" s
  | _ -> Alcotest.fail "member b");
  (* printing then reparsing yields the same tree *)
  check_bool "print/parse fixpoint" true (Json.parse_exn (Json.to_string v) = v)

let test_json_errors () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "truncated object" true (bad {|{"a": 1|});
  check_bool "trailing garbage" true (bad "1 2");
  check_bool "bare word" true (bad "nulle");
  check_bool "unterminated string" true (bad {|"abc|})

let test_json_number_leaves () =
  let v = Json.parse_exn {|{"a": 1, "b": {"c": 2, "s": "x"}, "d": [3, {"e": 4}]}|} in
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "flattened paths"
    [ ([ "a" ], 1.0); ([ "b"; "c" ], 2.0); ([ "d"; "0" ], 3.0); ([ "d"; "1"; "e" ], 4.0) ]
    (Json.number_leaves v)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_histo_total_conserved ] in
  Alcotest.run "wafl_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "bitops",
        [
          Alcotest.test_case "popcount64" `Quick test_popcount64;
          Alcotest.test_case "popcount64 vs naive" `Quick test_popcount64_matches_naive;
          Alcotest.test_case "ctz64" `Quick test_ctz64;
          Alcotest.test_case "clz64" `Quick test_clz64;
          Alcotest.test_case "is_power_of_two" `Quick test_power_of_two;
          Alcotest.test_case "rounding" `Quick test_rounding;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "range" `Quick test_crc32_range;
          Alcotest.test_case "detects change" `Quick test_crc32_detects_change;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "histo",
        [
          Alcotest.test_case "binning" `Quick test_histo_binning;
          Alcotest.test_case "add/remove" `Quick test_histo_add_remove;
          Alcotest.test_case "move" `Quick test_histo_move;
          Alcotest.test_case "highest_nonempty" `Quick test_histo_highest;
        ]
        @ qsuite );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
        ] );
      ( "series",
        [
          Alcotest.test_case "basics" `Quick test_series_basics;
          Alcotest.test_case "interpolate" `Quick test_series_interpolate;
        ] );
      ( "queueing",
        [
          Alcotest.test_case "low load" `Quick test_mg1_low_load;
          Alcotest.test_case "unstable" `Quick test_mg1_unstable;
          Alcotest.test_case "monotonic" `Quick test_mg1_monotonic;
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse round-trip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "number leaves" `Quick test_json_number_leaves;
        ] );
    ]
