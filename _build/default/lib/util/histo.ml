type t = {
  max_value : int;
  bin_width : int;
  counts : int array;
  mutable total : int;
}

let create ~max_value ~bin_width =
  assert (max_value > 0 && bin_width > 0);
  let bins = Bitops.ceil_div (max_value + 1) bin_width in
  { max_value; bin_width; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts
let bin_width t = t.bin_width
let max_value t = t.max_value

let bin_of_value t v =
  let v = if v < 0 then 0 else if v > t.max_value then t.max_value else v in
  v / t.bin_width

let bin_range t i =
  assert (i >= 0 && i < bins t);
  let lo = i * t.bin_width in
  let hi = min t.max_value (lo + t.bin_width - 1) in
  (lo, hi)

let add t v =
  let i = bin_of_value t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let remove t v =
  let i = bin_of_value t v in
  assert (t.counts.(i) > 0);
  t.counts.(i) <- t.counts.(i) - 1;
  t.total <- t.total - 1

let move t ~from_value ~to_value =
  let i = bin_of_value t from_value and j = bin_of_value t to_value in
  if i <> j then begin
    assert (t.counts.(i) > 0);
    t.counts.(i) <- t.counts.(i) - 1;
    t.counts.(j) <- t.counts.(j) + 1
  end

let count t i =
  assert (i >= 0 && i < bins t);
  t.counts.(i)

let total t = t.total

let highest_nonempty t =
  let rec go i = if i < 0 then None else if t.counts.(i) > 0 then Some i else go (i - 1) in
  go (bins t - 1)

let iter t f =
  for i = bins t - 1 downto 0 do
    f i t.counts.(i)
  done

let clear t =
  Array.fill t.counts 0 (bins t) 0;
  t.total <- 0
