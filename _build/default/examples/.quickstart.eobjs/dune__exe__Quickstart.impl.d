examples/quickstart.ml: Aggregate Array Config Cp Flexvol Fs List Printf Wafl_aa Wafl_aacache Wafl_core Wafl_device
