(** Tetrises: the unit of write I/O from WAFL to a RAID group.

    A tetris is 64 consecutive stripes (§4.2).  WAFL gathers the blocks
    allocated in a CP into tetrises and ships each as one I/O to the RAID
    group.  Tetrises covering fragmented regions carry partial stripes and
    fewer blocks, which is why Figure 7 reports both blocks/s per disk and
    tetrises/s per RAID group: aged groups get {e fewer blocks} but a
    {e marginally higher} tetris rate per block. *)

type t = {
  index : int;           (** tetris number: first stripe / 64 *)
  vbns : int list;       (** written VBNs falling in this tetris *)
  stripes_touched : int; (** distinct stripes written inside the tetris *)
}

type summary = {
  tetrises : int;
  blocks : int;
  mean_blocks_per_tetris : float;
  per_device_blocks : int array;  (** blocks written per data device *)
}

val stripes_per_tetris : int
(** 64. *)

val group : Geometry.t -> vbns:int list -> t list
(** Partition a flush's writes into tetrises, ordered by index.  Duplicate
    VBNs are dropped. *)

val summarize : Geometry.t -> vbns:int list -> summary

val pp_summary : Format.formatter -> summary -> unit
