(** Figure 7 (§4.2): write distribution across differently-aged RAID groups
    under an OLTP workload.

    Rig: an all-HDD aggregate of four RAID groups; RG0 and RG1 are aged
    until a random half of their blocks are in use, RG2 and RG3 are fresh.
    The write allocator should (a) spread blocks evenly across the disks of
    equally-aged groups, (b) send more blocks to the fresh groups, and (c)
    write {e less efficient} tetrises to the aged groups (fewer blocks per
    tetris), giving them a marginally higher tetris rate per block
    written. *)

type rg_stats = {
  rg : int;
  aged : bool;
  per_disk_blocks : float array;  (** blocks/s per data disk *)
  blocks_per_s : float;
  tetrises_per_s : float;
  blocks_per_tetris : float;
}

type result = {
  groups : rg_stats list;
  duration_s : float;   (** modeled measurement time *)
  ops_per_s : float;    (** client load the measurement models *)
}

val run : ?scale:Common.scale -> unit -> result
val print : result -> unit
