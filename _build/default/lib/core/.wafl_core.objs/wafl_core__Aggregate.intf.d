lib/core/aggregate.mli: Config Wafl_aa Wafl_aacache Wafl_bitmap Wafl_device Wafl_raid
