lib/aa/sizing.ml: Bitops Profile Units Wafl_block Wafl_device Wafl_util
