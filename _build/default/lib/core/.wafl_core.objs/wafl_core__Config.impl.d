lib/core/config.ml: Option Profile Wafl_aa Wafl_device
