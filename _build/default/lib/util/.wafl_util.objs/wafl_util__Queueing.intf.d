lib/util/queueing.mli:
