(** Per-op request latency accounting.

    The sim has no real clients, so per-op latency comes from a {e modeled
    clock}: every workload op staged into a CP is assigned

      [latency(op) = wait_in_batch + cp_duration]

    where [cp_duration] is the modeled service time of the CP that
    committed it (CPU + metafile pages + AA scan + device flush, including
    any injected device latency spikes — the same cost constants as
    [Sim.Cost_model], mirrored in {!model} to keep the dependency arrow
    pointing sim -> telemetry), and [wait_in_batch] spreads the ops across
    the arrival window (the previous CP's duration, since ops accumulate
    while the previous CP drains): op [i] of [n] waits
    [(n-1-i)/n * arrival].  The clock is deterministic and integer-only on
    the per-op path.

    Samples land in log-linear {!Hdrhist}s keyed by (op kind x volume
    slot), sharded per domain exactly like [Registry] histograms: record
    is lock-free and allocation-free in steady state, the read side merges
    shards.

    Tail exemplars: when an op's modeled latency clears the current p999
    (tracked across CPs), a preallocated slot captures (latency, op kind,
    volume, CP index, blame phase).  The blame phase is the span kind of
    the CP's dominant cost component — [Pick]/[Harvest] when the AA scan
    dominates, [Activemap_commit] for metafile pages, [Device_flush] for
    device time (so a spike-inflated outlier names the faulted device
    phase), [Cp] when per-op CPU dominates — rendered with its static
    span-stack parents. *)

type op = Write | Overwrite

val op_name : op -> string
val all_ops : op list

(** Cost constants of the modeled clock; field-for-field the subset of
    [Sim.Cost_model.t] the clock uses.  [Sim.Cost_model.latency_model]
    converts, and a test pins [default_model] to the sim's defaults. *)
type model = {
  cpu_base_us_per_op : float;
  metafile_page_cpu_us : float;
  metafile_page_write_us : float;
  cache_work_unit_us : float;
  alloc_candidate_us : float;
}

val default_model : model

type t

val create :
  ?model:model -> ?slo:Slo.t -> ?max_vols:int -> ?max_exemplars:int ->
  unit -> t
(** [max_vols] (default 16) bounds the per-volume keying; volumes beyond
    the limit share the last slot.  [max_exemplars] (default 32) bounds
    the exemplar ring. *)

val model : t -> model
val slo : t -> Slo.t option

val vol_slot : t -> uid:int -> name:string -> int
(** Dense slot for a volume uid, registering it (with a display name) on
    first sight.  Called from the CP path only — not thread-safe. *)

val vols : t -> (int * string) list
(** Registered (slot, name) pairs in first-seen order. *)

val record : t -> op:op -> vol:int -> int -> unit
(** [record t ~op ~vol ns] adds one sample into the calling domain's
    shard.  Steady state is allocation-free and lock-free. *)

val cp_record :
  t ->
  groups:(int * int * int) list ->
  pages:int ->
  cache_work:int ->
  candidates:int ->
  device_us:float ->
  spike_us:float ->
  pick_ns:int ->
  harvest_ns:int ->
  unit
(** Assign modeled latencies to every op of one committed CP and record
    them.  [groups] lists [(vol_slot, fresh_writes, overwrites)] per
    volume; [pages] is metafile pages written, [cache_work]/[candidates]
    feed the cache and AA-scan cost terms, [device_us] is the modeled
    device time {e including} [spike_us] (injected fault penalty, used
    only for attribution), and [pick_ns]/[harvest_ns] split the scan cost
    between the two span kinds for blame.  Also ticks the SLO windows and
    captures tail exemplars.  Serial (CP boundary) only. *)

val ops_recorded : t -> int
val cps_recorded : t -> int

val merged : ?op:op -> ?vol:int -> t -> Hdrhist.t
(** Fresh histogram merging every shard, optionally filtered to one op
    kind and/or one volume slot. *)

val quantiles_ms : ?op:op -> ?vol:int -> t -> float * float * float
(** [(p50, p99, p999)] in milliseconds; zeros when empty. *)

type exemplar = {
  ex_ns : int;
  ex_op : op;
  ex_vol : int;
  ex_vol_name : string;
  ex_cp : int;
  ex_phase : Span.kind;
}

val exemplars : t -> exemplar list
(** Captured tail exemplars, slowest first. *)

val phase_stack : Span.kind -> string
(** Render a blame phase with its static parents, e.g.
    ["cp > cp.device_flush"]. *)

val last_slo_reports : t -> Slo.report list
(** SLO reports from the most recent [cp_record]; [[]] before the first
    CP or without an SLO config. *)
