lib/experiments/fig9.ml: Aggregate Array Common Config Cost_model Cp Fs List Load Printf Sequential Smr Wafl_aa Wafl_aacache Wafl_core Wafl_device Wafl_sim Wafl_util Wafl_workload
