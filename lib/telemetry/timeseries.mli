(** Per-CP time series: a fixed-capacity ring of float rows under a single
    column schema.

    One row is appended per consistency point (by [Cp.run], through
    {!Telemetry.sample}); when the ring is full the oldest rows are
    overwritten, so a long run keeps the most recent [capacity] CPs while
    {!appended} still counts the lifetime total.  Everything is stored as
    [float] — integer quantities round-trip exactly well past any realistic
    CP count — which keeps the schema uniform for the CSV/JSON exporters
    and the regression differ.

    Appends and reads are meant for the serial sections of a run (the CP
    tail, the live reporter); the recorder is not domain-safe. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 4096 rows.  Raises [Invalid_argument] when it
    is not positive. *)

val capacity : t -> int

val set_columns : t -> string list -> unit
(** Fix the schema.  The first call wins; later calls must pass the same
    columns (raises [Invalid_argument] otherwise), so independent sample
    sites cannot silently interleave different schemas. *)

val columns : t -> string list
(** Empty until {!set_columns}. *)

val append : t -> float array -> unit
(** Append one row (copied).  Raises [Invalid_argument] when the width
    does not match the schema, or no schema is set. *)

val length : t -> int
(** Rows currently retained (<= capacity). *)

val appended : t -> int
(** Rows appended over the recorder's lifetime. *)

val get : t -> int -> float array
(** [get t i] is retained row [i], oldest first, as a fresh copy. *)

val rows : t -> float array list
(** Retained rows, oldest first, as fresh copies. *)

val last : t -> float array option
(** The newest retained row, if any. *)

val column_index : t -> string -> int option

val clear : t -> unit
(** Drop rows and the lifetime count; the schema is kept. *)
