
type stats = {
  host_pages_written : int;
  device_pages_written : int;
  relocated_pages : int;
  erases : int;
  trimmed_pages : int;
}

let zero_stats =
  {
    host_pages_written = 0;
    device_pages_written = 0;
    relocated_pages = 0;
    erases = 0;
    trimmed_pages = 0;
  }

(* Per-stream mutable tally; [stats] snapshots copy it out. *)
type tally = {
  mutable t_host : int;
  mutable t_device : int;
  mutable t_reloc : int;
  mutable t_erases : int;
}

type t = {
  profile : Profile.ssd;
  streams : int;
  stream_capacity : int;            (* open-erase-block budget per stream *)
  logical_blocks : int;
  live : Bytes.t;                   (* 1 byte per logical page *)
  mutable live_count : int;
  appended : (int, int) Hashtbl.t;  (* open eb -> pages appended since open *)
  eb_stream : (int, int) Hashtbl.t; (* open eb -> stream that opened it *)
  open_order : int list array;      (* per-stream LRU, most recent first *)
  wear : int array;                 (* cumulative erases per erase block *)
  per_stream : tally array;
  mutable scratch : int array;      (* write_batch staging (sort + dedup) *)
  mutable torn_scratch : int array; (* fault-plane torn pages of one batch *)
  mutable host_pages_written : int;
  mutable device_pages_written : int;
  mutable relocated_pages : int;
  mutable erases : int;
  mutable trimmed_pages : int;
  mutable fault : Wafl_fault.Fault.device option;
}

let create ?(profile = Profile.default_ssd) ?(open_blocks = 8) ?(streams = 1)
    ~logical_blocks () =
  assert (
    logical_blocks > 0 && profile.Profile.erase_block_blocks > 0 && open_blocks > 0
    && streams > 0);
  let ebs = profile.Profile.erase_block_blocks in
  let n_ebs = (logical_blocks + ebs - 1) / ebs in
  {
    profile;
    streams;
    (* The drive's open-block budget is split evenly over the write
       streams (each stream gets at least one): real multi-stream drives
       partition a fixed set of simultaneously programmable blocks. *)
    stream_capacity = max 1 (open_blocks / streams);
    logical_blocks;
    live = Bytes.make logical_blocks '\000';
    live_count = 0;
    appended = Hashtbl.create 16;
    eb_stream = Hashtbl.create 16;
    open_order = Array.make streams [];
    wear = Array.make n_ebs 0;
    per_stream =
      Array.init streams (fun _ -> { t_host = 0; t_device = 0; t_reloc = 0; t_erases = 0 });
    scratch = [||];
    torn_scratch = [||];
    host_pages_written = 0;
    device_pages_written = 0;
    relocated_pages = 0;
    erases = 0;
    trimmed_pages = 0;
    fault = None;
  }

let logical_blocks t = t.logical_blocks
let profile t = t.profile
let streams t = t.streams
let stream_capacity t = t.stream_capacity
let set_fault t f = t.fault <- f
let fault t = t.fault

let is_live t p = Bytes.unsafe_get t.live p <> '\000'

let set_live t p v =
  let was = is_live t p in
  if v && not was then begin
    Bytes.unsafe_set t.live p '\001';
    t.live_count <- t.live_count + 1
  end
  else if (not v) && was then begin
    Bytes.unsafe_set t.live p '\000';
    t.live_count <- t.live_count - 1
  end

let check t p = if p < 0 || p >= t.logical_blocks then invalid_arg "Ftl: page out of bounds"

let check_stream t s =
  if s < 0 || s >= t.streams then invalid_arg "Ftl: stream out of bounds"

let live_pages_in t ~start ~len =
  if start < 0 || len < 0 || start + len > t.logical_blocks then
    invalid_arg "Ftl.live_pages_in: range out of bounds";
  let n = ref 0 in
  for p = start to start + len - 1 do
    if is_live t p then incr n
  done;
  !n

let is_open t ~eb = Hashtbl.mem t.appended eb

let stream_of_open t ~eb = Hashtbl.find_opt t.eb_stream eb

let open_blocks_of_stream t stream =
  check_stream t stream;
  List.length t.open_order.(stream)

let close_eb t eb =
  Hashtbl.remove t.appended eb;
  match Hashtbl.find_opt t.eb_stream eb with
  | None -> ()
  | Some s ->
    Hashtbl.remove t.eb_stream eb;
    t.open_order.(s) <- List.filter (fun e -> e <> eb) t.open_order.(s)

let touch_lru t ~stream eb =
  t.open_order.(stream) <- eb :: List.filter (fun e -> e <> eb) t.open_order.(stream)

(* Wear accessors: per-erase-block erase counts (wpmfs-style wear state;
   the AA scorer bins these to push worn spans down the Best-AA order). *)
let erase_blocks t = Array.length t.wear
let wear_of_eb t ~eb =
  if eb < 0 || eb >= Array.length t.wear then invalid_arg "Ftl.wear_of_eb";
  t.wear.(eb)

let max_wear_in t ~start ~len =
  if start < 0 || len < 0 || start + len > t.logical_blocks then
    invalid_arg "Ftl.max_wear_in: range out of bounds";
  if len = 0 then 0
  else begin
    let ebs = t.profile.Profile.erase_block_blocks in
    let lo = start / ebs and hi = (start + len - 1) / ebs in
    let m = ref 0 in
    for eb = lo to hi do
      if t.wear.(eb) > !m then m := t.wear.(eb)
    done;
    !m
  end

let avg_wear t =
  let n = Array.length t.wear in
  if n = 0 then 0 else Array.fold_left ( + ) 0 t.wear / n

let wear_spread t =
  let n = Array.length t.wear in
  if n = 0 then (0, 0)
  else
    Array.fold_left
      (fun (lo, hi) w -> ((if w < lo then w else lo), if w > hi then w else hi))
      (t.wear.(0), t.wear.(0))
      t.wear

(* Open an erase block for a batch that writes the sorted page run
   [scratch.(lo .. hi-1)] (all inside the block): relocate its live pages
   the batch does not overwrite (OP-absorbed) and erase it.  Membership is
   a merge scan over the sorted run — no per-batch set. *)
let open_eb t ~stream eb ~lo ~hi =
  if List.length t.open_order.(stream) >= t.stream_capacity then begin
    match List.rev t.open_order.(stream) with
    | oldest :: _ -> close_eb t oldest
    | [] -> ()
  end;
  let ebs = t.profile.Profile.erase_block_blocks in
  let eb_start = eb * ebs in
  let eb_len = min ebs (t.logical_blocks - eb_start) in
  let live_outside = ref 0 in
  let k = ref lo in
  for p = eb_start to eb_start + eb_len - 1 do
    while !k < hi && t.scratch.(!k) < p do
      incr k
    done;
    let in_batch = !k < hi && t.scratch.(!k) = p in
    if is_live t p && not in_batch then incr live_outside
  done;
  let absorb = t.profile.Profile.overprovision /. (1.0 +. t.profile.Profile.overprovision) in
  let relocated = int_of_float (Float.round (float_of_int !live_outside *. (1.0 -. absorb))) in
  t.relocated_pages <- t.relocated_pages + relocated;
  t.device_pages_written <- t.device_pages_written + relocated;
  t.erases <- t.erases + 1;
  t.wear.(eb) <- t.wear.(eb) + 1;
  let s = t.per_stream.(stream) in
  s.t_reloc <- s.t_reloc + relocated;
  s.t_device <- s.t_device + relocated;
  s.t_erases <- s.t_erases + 1;
  Hashtbl.replace t.appended eb 0;
  Hashtbl.replace t.eb_stream eb stream;
  touch_lru t ~stream eb

let ensure_scratch t n =
  if Array.length t.scratch < n then begin
    t.scratch <- Array.make (max n (2 * Array.length t.scratch)) 0;
    t.torn_scratch <- Array.make (Array.length t.scratch) 0
  end

(* In-place quicksort (median-of-three, insertion below 16) over
   [scratch.(lo .. hi)]: the staging pass must not allocate, whatever the
   CP flush size. *)
let rec sort_scratch a lo hi =
  if hi - lo < 16 then begin
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  end
  else begin
    let mid = (lo + hi) / 2 in
    let swap i j =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    sort_scratch a lo !j;
    sort_scratch a !i hi
  end

(* Process one flush's host writes for [stream].  The batch is staged in
   the reused scratch array — sorted, deduplicated and fault-filtered in
   place — then walked in erase-block runs, so a large CP flush costs no
   per-batch heap beyond (rare) scratch growth. *)
let write_batch ?(stream = 0) t pages =
  check_stream t stream;
  let n = List.length pages in
  if n > 0 then begin
    ensure_scratch t n;
    let scratch = t.scratch in
    let k = ref 0 in
    List.iter
      (fun p ->
        check t p;
        scratch.(!k) <- p;
        incr k)
      pages;
    sort_scratch scratch 0 (n - 1);
    (* Dedup (coalesce rewrites within one flush), then the fault plane:
       failed pages never reach the flash and are dropped here; torn pages
       are programmed (cost is paid) but their content is garbage, so they
       are parked in [torn_scratch] and do not become live. *)
    let m = ref 0 in
    for i = 0 to n - 1 do
      if i = 0 || scratch.(i) <> scratch.(i - 1) then begin
        scratch.(!m) <- scratch.(i);
        incr m
      end
    done;
    let host = !m in
    let torn = ref 0 in
    let kept = ref 0 in
    (match t.fault with
    | None -> kept := host
    | Some dev ->
      for i = 0 to host - 1 do
        let p = scratch.(i) in
        match Wafl_fault.Fault.write dev ~block:p with
        | Wafl_fault.Fault.Written ->
          scratch.(!kept) <- p;
          incr kept
        | Wafl_fault.Fault.Written_torn ->
          scratch.(!kept) <- p;
          incr kept;
          t.torn_scratch.(!torn) <- p;
          incr torn
        | Wafl_fault.Fault.Failed -> ()
      done);
    let kept = !kept in
    let ebs = t.profile.Profile.erase_block_blocks in
    let i = ref 0 in
    while !i < kept do
      let eb = scratch.(!i) / ebs in
      let j = ref (!i + 1) in
      while !j < kept && scratch.(!j) / ebs = eb do
        incr j
      done;
      (* one erase-block run: scratch.(!i .. !j-1) *)
      if not (is_open t ~eb) then open_eb t ~stream eb ~lo:!i ~hi:!j
      else begin
        (* an open block appends for whichever stream touches it; LRU
           recency moves in its owning stream *)
        match Hashtbl.find_opt t.eb_stream eb with
        | Some s -> touch_lru t ~stream:s eb
        | None -> ()
      end;
      let written = !j - !i in
      t.host_pages_written <- t.host_pages_written + written;
      t.device_pages_written <- t.device_pages_written + written;
      let ps = t.per_stream.(stream) in
      ps.t_host <- ps.t_host + written;
      ps.t_device <- ps.t_device + written;
      let appended = (try Hashtbl.find t.appended eb with Not_found -> 0) + written in
      let eb_start = eb * ebs in
      let eb_len = min ebs (t.logical_blocks - eb_start) in
      if appended >= eb_len then close_eb t eb else Hashtbl.replace t.appended eb appended;
      for k = !i to !j - 1 do
        set_live t scratch.(k) true
      done;
      i := !j
    done;
    for k = 0 to !torn - 1 do
      set_live t t.torn_scratch.(k) false
    done;
    Wafl_telemetry.Telemetry.add "device.ssd.host_pages_written" host
  end

let trim t p =
  check t p;
  if is_live t p then begin
    set_live t p false;
    t.trimmed_pages <- t.trimmed_pages + 1
  end

let trim_batch t pages = List.iter (trim t) pages

let stats t =
  {
    host_pages_written = t.host_pages_written;
    device_pages_written = t.device_pages_written;
    relocated_pages = t.relocated_pages;
    erases = t.erases;
    trimmed_pages = t.trimmed_pages;
  }

let stream_stats t stream =
  check_stream t stream;
  let s = t.per_stream.(stream) in
  {
    host_pages_written = s.t_host;
    device_pages_written = s.t_device;
    relocated_pages = s.t_reloc;
    erases = s.t_erases;
    trimmed_pages = 0;
  }

let write_amplification t =
  if t.host_pages_written = 0 then 1.0
  else float_of_int t.device_pages_written /. float_of_int t.host_pages_written

let stream_write_amplification t stream =
  let s = stream_stats t stream in
  if s.host_pages_written = 0 then 1.0
  else float_of_int s.device_pages_written /. float_of_int s.host_pages_written

let service_time_us t ~(stats_delta : stats) =
  let p = t.profile in
  (float_of_int stats_delta.device_pages_written *. p.Profile.program_us)
  +. (float_of_int stats_delta.relocated_pages *. p.Profile.read_us)
  +. (float_of_int stats_delta.erases *. p.Profile.erase_us)

let diff_stats ~(after : stats) ~(before : stats) =
  {
    host_pages_written = after.host_pages_written - before.host_pages_written;
    device_pages_written = after.device_pages_written - before.device_pages_written;
    relocated_pages = after.relocated_pages - before.relocated_pages;
    erases = after.erases - before.erases;
    trimmed_pages = after.trimmed_pages - before.trimmed_pages;
  }

let reset_stats t =
  t.host_pages_written <- 0;
  t.device_pages_written <- 0;
  t.relocated_pages <- 0;
  t.erases <- 0;
  t.trimmed_pages <- 0;
  Array.iter
    (fun s ->
      s.t_host <- 0;
      s.t_device <- 0;
      s.t_reloc <- 0;
      s.t_erases <- 0)
    t.per_stream
