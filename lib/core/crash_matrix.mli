(** Exhaustive crash-point matrix: kill the system at every instrumented
    point inside the CP pipeline (and the segment cleaner), remount from
    the crash image, repair, and verify the recovery invariants.

    The matrix is enumerated programmatically: a Recording pass collects
    the dynamic sequence of {!Wafl_fault.Crash.point} sites the workload
    reaches, then the identical seeded workload is re-run once per site
    with the crasher armed there.  Each crashed run is snapshotted
    ({!Mount.snapshot} stands in for what the devices would hold), mounted,
    and repaired with {!Iron.Container_authority} (the namespace reached
    NVRAM, so it outranks a torn bitmap), after which three invariants
    must hold, both before and after the NVRAM-replay CP:

    - {!Iron.check} reports nothing;
    - no physical block is referenced by two virtual blocks;
    - every acknowledged operation (staged before the crash) reads back
      to an allocated physical block. *)

type violation = { point : string; index : int; what : string }

type result = {
  points : string list;     (** the enumerated dynamic site sequence *)
  runs : int;               (** workload executions: enumeration + one per point *)
  violations : violation list;  (** empty = every crash point recovered clean *)
}

val pp_violation : Format.formatter -> violation -> unit

val default_config : seed:int -> Config.t
(** A small two-RAID-group HDD system sized so the matrix stays fast. *)

val run :
  ?config:Config.t ->
  ?with_cleaner:bool ->
  ?background_rebuild:bool ->
  ?lazy_rebuild:bool ->
  ?verify_mount:bool ->
  seed:int ->
  warmup_cps:int ->
  ops_per_cp:int ->
  unit ->
  result
(** Run the full matrix.  [with_cleaner] (default true) inserts a cleaner
    pass before the final CP so the cleaner's crash point is exercised.
    [background_rebuild] (default true) is forwarded to {!Mount.mount} for
    every post-crash remount; pass [false] to verify recovery on the
    seeded TopAA caches alone — the immediate-post-failover state.
    [lazy_rebuild] (default false) is likewise forwarded: the remounts
    come up stale-but-seeded and the repair's Iron scan is the first
    touch that materializes exact caches range by range.
    If a process-wide fault spec is installed, every run (including the
    remounts) executes under it.
    [verify_mount] (default false) forwards [~verify:true] to every
    post-crash {!Mount.mount}, classifying the persisted pagestore bytes
    against their integrity sidecars before the image restore.  When an
    mmap directory is installed, each pass — the recording run and every
    armed run — executes in its own wiped [runN/] subdirectory of it, and
    the remount re-enters that subdirectory in a fresh epoch: the store
    sequence restarts so the remount maps the very files the crashed run
    persisted, and {!Wafl_bitmap.Integrity} reloads sidecars and
    superblock from disk, discarding seals that died with the crash.
    Runs with rot/lost fault specs should also enable {!Scrub} so damage
    injected during replay CPs is healed before the invariant checks.
    If a domain pool is installed
    ({!Wafl_par.Par.install}), the remounts, repairs and replay CPs all
    shard over it — the recorded point sequence and the verdicts are
    identical at any domain count. *)
