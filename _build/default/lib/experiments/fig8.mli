(** Figure 8 (§4.3): latency vs throughput with the AA size tuned for HDD
    (4k stripes — a fraction of an SSD erase block) against an AA size
    that is a multiple of the erase block.

    Rig: an all-SSD aggregate aged to ~85% fullness with 4KiB random
    writes.  The erase-block-aligned AA halves write amplification and
    delivers higher peak throughput at lower latency (paper: +26%
    throughput, -21% latency, WA halved). *)

type sizing = Small_hdd_aa | Large_ssd_aa

val sizing_name : sizing -> string

type result = {
  sizing : sizing;
  aa_stripes : int;
  erase_block_aligned : bool;
  curve : Wafl_sim.Load.curve;
  write_amp : float;
}

val run_sizing : Common.scale -> sizing -> result
val run : ?scale:Common.scale -> unit -> result list
val print : result list -> unit
