(** Hard-drive cost model.

    A device write I/O costs one positioning (seek + rotational latency)
    plus streaming transfer for every block in the chain, so long write
    chains amortize the seek (§2.4).  Random 4KiB reads each pay a full
    positioning. *)

val write_cost_us : Profile.hdd -> chains:int -> blocks:int -> float
(** Cost of writing [blocks] blocks grouped into [chains] contiguous
    device I/Os. *)

val random_read_cost_us : Profile.hdd -> ios:int -> float
(** Cost of [ios] independent 4KiB reads. *)

val sequential_read_cost_us : Profile.hdd -> chains:int -> blocks:int -> float
(** Same shape as writes: one seek per chain plus streaming. *)

val streaming_bandwidth_blocks_per_s : Profile.hdd -> float
(** Upper bound: blocks per second with no seeks. *)
