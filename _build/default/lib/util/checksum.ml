let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32 bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Checksum.crc32: range out of bounds";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let index = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get bytes i)))) 0xFFl) in
    c := Int32.logxor t.(index) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_all bytes = crc32 bytes ~pos:0 ~len:(Bytes.length bytes)

let crc32_string s = crc32_all (Bytes.of_string s)
