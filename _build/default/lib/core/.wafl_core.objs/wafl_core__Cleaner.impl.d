lib/core/cleaner.ml: Activemap Aggregate Array Cache Flexvol Fs Hashtbl List Metafile Topology Wafl_aa Wafl_aacache Wafl_bitmap Write_alloc
