lib/aacache/max_heap.mli:
