lib/device/azcs.mli:
