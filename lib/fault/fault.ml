open Wafl_telemetry

type spec = {
  seed : int;
  transient_p : float;
  transient_burst_max : int;
  torn_p : float;
  spike_p : float;
  spike_us : float;
  retry_budget : int;
  retry_backoff_us : float;
  bad_ranges : (int * int * int) list;
  offline_after : (int * int) list;
  degraded_after : (int * int) list;
  rot_pages : (int * int * int) list;
  lost_pages : (int * int * int) list;
}

let default_spec =
  {
    seed = 42;
    transient_p = 0.01;
    transient_burst_max = 2;
    torn_p = 0.0;
    spike_p = 0.0;
    spike_us = 250.0;
    retry_budget = 6;
    retry_backoff_us = 50.0;
    bad_ranges = [];
    offline_after = [];
    degraded_after = [];
    rot_pages = [];
    lost_pages = [];
  }

(* --- spec parsing ----------------------------------------------------- *)

let parse_field acc field =
  match acc with
  | Error _ as e -> e
  | Ok spec -> (
    let field = String.trim field in
    if field = "" then Ok spec
    else
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "fault spec: missing '=' in %S" field)
      | Some i -> (
        let key = String.trim (String.sub field 0 i) in
        let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
        let int_v () =
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "fault spec: %s expects an integer, got %S" key v)
        in
        let float_v () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "fault spec: %s expects a number, got %S" key v)
        in
        (* DEV@IOS pairs for offline=/degraded= *)
        let at_pair () =
          match String.split_on_char '@' v with
          | [ d; ios ] -> (
            match (int_of_string_opt d, int_of_string_opt ios) with
            | Some d, Some ios -> Ok (d, ios)
            | _ -> Error (Printf.sprintf "fault spec: %s expects DEV@IOS, got %S" key v))
          | _ -> Error (Printf.sprintf "fault spec: %s expects DEV@IOS, got %S" key v)
        in
        match key with
        | "seed" -> Result.map (fun n -> { spec with seed = n }) (int_v ())
        | "transient" -> Result.map (fun f -> { spec with transient_p = f }) (float_v ())
        | "burst" -> Result.map (fun n -> { spec with transient_burst_max = n }) (int_v ())
        | "torn" -> Result.map (fun f -> { spec with torn_p = f }) (float_v ())
        | "spike" -> (
          (* spike=P or spike=P:US *)
          match String.split_on_char ':' v with
          | [ p ] -> (
            match float_of_string_opt p with
            | Some p -> Ok { spec with spike_p = p }
            | None -> Error (Printf.sprintf "fault spec: spike expects P or P:US, got %S" v))
          | [ p; us ] -> (
            match (float_of_string_opt p, float_of_string_opt us) with
            | Some p, Some us -> Ok { spec with spike_p = p; spike_us = us }
            | _ -> Error (Printf.sprintf "fault spec: spike expects P or P:US, got %S" v))
          | _ -> Error (Printf.sprintf "fault spec: spike expects P or P:US, got %S" v))
        | "retries" -> Result.map (fun n -> { spec with retry_budget = n }) (int_v ())
        | "backoff" -> Result.map (fun f -> { spec with retry_backoff_us = f }) (float_v ())
        | "bad" -> (
          (* bad=DEV:START+LEN *)
          match String.split_on_char ':' v with
          | [ d; range ] -> (
            match String.split_on_char '+' range with
            | [ start; len ] -> (
              match
                (int_of_string_opt d, int_of_string_opt start, int_of_string_opt len)
              with
              | Some d, Some s, Some l ->
                Ok { spec with bad_ranges = spec.bad_ranges @ [ (d, s, l) ] }
              | _ -> Error (Printf.sprintf "fault spec: bad expects DEV:START+LEN, got %S" v))
            | _ -> Error (Printf.sprintf "fault spec: bad expects DEV:START+LEN, got %S" v))
          | _ -> Error (Printf.sprintf "fault spec: bad expects DEV:START+LEN, got %S" v))
        | "rot" | "lost" -> (
          (* rot=STORE:PAGE[@GEN] / lost=STORE:PAGE[@GEN] — persisted
             pagestore corruption, applied by the integrity plane at the
             CP whose committed generation reaches GEN (defaults: 1 for
             rot, 2 for lost — a lost write needs a previous generation
             to revert to). *)
          let default_gen = if key = "rot" then 1 else 2 in
          let parsed =
            match String.split_on_char '@' v with
            | [ sp ] -> Some (sp, Some default_gen)
            | [ sp; g ] -> Some (sp, int_of_string_opt g)
            | _ -> None
          in
          match parsed with
          | Some (sp, Some gen) -> (
            match String.split_on_char ':' sp with
            | [ s; p ] -> (
              match (int_of_string_opt s, int_of_string_opt p) with
              | Some s, Some p ->
                if key = "rot" then
                  Ok { spec with rot_pages = spec.rot_pages @ [ (s, p, gen) ] }
                else Ok { spec with lost_pages = spec.lost_pages @ [ (s, p, gen) ] }
              | _ ->
                Error
                  (Printf.sprintf "fault spec: %s expects STORE:PAGE[@GEN], got %S" key v))
            | _ ->
              Error (Printf.sprintf "fault spec: %s expects STORE:PAGE[@GEN], got %S" key v))
          | _ -> Error (Printf.sprintf "fault spec: %s expects STORE:PAGE[@GEN], got %S" key v)
          )
        | "offline" ->
          Result.map
            (fun p -> { spec with offline_after = spec.offline_after @ [ p ] })
            (at_pair ())
        | "degraded" ->
          Result.map
            (fun p -> { spec with degraded_after = spec.degraded_after @ [ p ] })
            (at_pair ())
        | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key)))

let spec_of_string s =
  let r = List.fold_left parse_field (Ok default_spec) (String.split_on_char ',' s) in
  match r with
  | Error _ as e -> e
  | Ok spec ->
    if spec.transient_p < 0.0 || spec.transient_p > 1.0 then
      Error "fault spec: transient must be in [0,1]"
    else if spec.torn_p < 0.0 || spec.torn_p > 1.0 then Error "fault spec: torn must be in [0,1]"
    else if spec.spike_p < 0.0 || spec.spike_p > 1.0 then
      Error "fault spec: spike must be in [0,1]"
    else if spec.transient_burst_max < 1 then Error "fault spec: burst must be >= 1"
    else if spec.retry_budget < 0 then Error "fault spec: retries must be >= 0"
    else if
      List.exists (fun (s, p, g) -> s < 0 || p < 0 || g < 1) (spec.rot_pages @ spec.lost_pages)
    then Error "fault spec: rot/lost expect STORE >= 0, PAGE >= 0, GEN >= 1"
    else Ok spec

let spec_to_string spec =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "seed=%d" spec.seed);
  Buffer.add_string buf (Printf.sprintf ",transient=%g" spec.transient_p);
  Buffer.add_string buf (Printf.sprintf ",burst=%d" spec.transient_burst_max);
  if spec.torn_p > 0.0 then Buffer.add_string buf (Printf.sprintf ",torn=%g" spec.torn_p);
  if spec.spike_p > 0.0 then
    Buffer.add_string buf (Printf.sprintf ",spike=%g:%g" spec.spike_p spec.spike_us);
  Buffer.add_string buf (Printf.sprintf ",retries=%d" spec.retry_budget);
  Buffer.add_string buf (Printf.sprintf ",backoff=%g" spec.retry_backoff_us);
  List.iter
    (fun (d, s, l) -> Buffer.add_string buf (Printf.sprintf ",bad=%d:%d+%d" d s l))
    spec.bad_ranges;
  List.iter
    (fun (d, ios) -> Buffer.add_string buf (Printf.sprintf ",offline=%d@%d" d ios))
    spec.offline_after;
  List.iter
    (fun (d, ios) -> Buffer.add_string buf (Printf.sprintf ",degraded=%d@%d" d ios))
    spec.degraded_after;
  List.iter
    (fun (s, p, g) -> Buffer.add_string buf (Printf.sprintf ",rot=%d:%d@%d" s p g))
    spec.rot_pages;
  List.iter
    (fun (s, p, g) -> Buffer.add_string buf (Printf.sprintf ",lost=%d:%d@%d" s p g))
    spec.lost_pages;
  Buffer.contents buf

(* --- plane and device handles ----------------------------------------- *)

type health = Healthy | Degraded | Offline

type io_stats = {
  ios : int;
  injected_transient : int;
  retries : int;
  retries_ok : int;
  torn : int;
  failed : int;
  spikes : int;
  penalty_us : float;
}

let zero_stats =
  {
    ios = 0;
    injected_transient = 0;
    retries = 0;
    retries_ok = 0;
    torn = 0;
    failed = 0;
    spikes = 0;
    penalty_us = 0.0;
  }

let diff_stats ~before ~after =
  {
    ios = after.ios - before.ios;
    injected_transient = after.injected_transient - before.injected_transient;
    retries = after.retries - before.retries;
    retries_ok = after.retries_ok - before.retries_ok;
    torn = after.torn - before.torn;
    failed = after.failed - before.failed;
    spikes = after.spikes - before.spikes;
    penalty_us = after.penalty_us -. before.penalty_us;
  }

type t = { plane_spec : spec; rng : Wafl_util.Rng.t }

type device = {
  id : int;
  dspec : spec;
  drng : Wafl_util.Rng.t;
  bad : (int * int) array;  (** (start, len), device-local, for this device only *)
  offline_at : int;  (** I/O count threshold, max_int = never *)
  degraded_at : int;
  mutable dhealth : health;
  mutable st : io_stats;
}

let create spec = { plane_spec = spec; rng = Wafl_util.Rng.create ~seed:spec.seed }
let spec t = t.plane_spec

let device t ~id =
  let s = t.plane_spec in
  let bad =
    Array.of_list
      (List.filter_map (fun (d, st, l) -> if d = id then Some (st, l) else None) s.bad_ranges)
  in
  let threshold l = List.fold_left (fun acc (d, ios) -> if d = id then min acc ios else acc) max_int l in
  {
    id;
    dspec = s;
    drng = Wafl_util.Rng.split t.rng;
    bad;
    offline_at = threshold s.offline_after;
    degraded_at = threshold s.degraded_after;
    dhealth = Healthy;
    st = zero_stats;
  }

let device_id d = d.id
let health d = d.dhealth

let set_health d h =
  (match (d.dhealth, h) with
  | (Healthy | Degraded), Offline -> Telemetry.incr "fault.offline_transitions"
  | Healthy, Degraded -> Telemetry.incr "fault.degraded_transitions"
  | _ -> ());
  d.dhealth <- h

let online d = d.dhealth <> Offline
let stats d = d.st

type write_result = Written | Written_torn | Failed

(* Bad ranges are few (usually 0); linear probes are fine. *)
let in_bad_range d block =
  let n = Array.length d.bad in
  let rec go i =
    if i >= n then false
    else
      let s, l = Array.unsafe_get d.bad i in
      (block >= s && block < s + l) || go (i + 1)
  in
  go 0

let range_faulty d ~start ~len =
  if d.dhealth = Offline then true
  else
    let n = Array.length d.bad in
    let rec go i =
      if i >= n then false
      else
        let s, l = Array.unsafe_get d.bad i in
        (start < s + l && s < start + len) || go (i + 1)
    in
    go 0

let write d ~block =
  let s = d.dspec in
  let ios = d.st.ios + 1 in
  (* scheduled health transitions fire on I/O counts *)
  if ios >= d.offline_at && d.dhealth <> Offline then set_health d Offline
  else if ios >= d.degraded_at && d.dhealth = Healthy then set_health d Degraded;
  if d.dhealth = Offline then begin
    d.st <- { d.st with ios; failed = d.st.failed + 1 };
    Telemetry.incr "fault.write_failures";
    Failed
  end
  else if in_bad_range d block then begin
    d.st <- { d.st with ios; failed = d.st.failed + 1 };
    Telemetry.incr "fault.write_failures";
    Failed
  end
  else begin
    let transient_p =
      if d.dhealth = Degraded then Float.min 1.0 (2.0 *. s.transient_p) else s.transient_p
    in
    let st = ref { d.st with ios } in
    let result = ref Written in
    (* transient error: the burst length is how many consecutive attempts
       fail; the retry budget either outlives it or the write fails. *)
    if transient_p > 0.0 && Wafl_util.Rng.float d.drng 1.0 < transient_p then begin
      let burst = 1 + Wafl_util.Rng.int d.drng s.transient_burst_max in
      let attempts_used = min burst s.retry_budget in
      let backoff =
        (* sum of retry_backoff_us * 2^k for k in [0, attempts_used) *)
        s.retry_backoff_us *. (float_of_int ((1 lsl attempts_used) - 1))
      in
      st :=
        {
          !st with
          injected_transient = !st.injected_transient + 1;
          retries = !st.retries + attempts_used;
          penalty_us = !st.penalty_us +. backoff;
        };
      Telemetry.incr "fault.injected_transient";
      Telemetry.add "fault.retries" attempts_used;
      if burst >= s.retry_budget then begin
        st := { !st with failed = !st.failed + 1 };
        Telemetry.incr "fault.write_failures";
        result := Failed
      end
      else begin
        st := { !st with retries_ok = !st.retries_ok + 1 };
        Telemetry.incr "fault.retries_ok"
      end
    end;
    if !result <> Failed then begin
      if s.torn_p > 0.0 && Wafl_util.Rng.float d.drng 1.0 < s.torn_p then begin
        st := { !st with torn = !st.torn + 1 };
        Telemetry.incr "fault.torn_writes";
        result := Written_torn
      end;
      if s.spike_p > 0.0 && Wafl_util.Rng.float d.drng 1.0 < s.spike_p then begin
        st := { !st with spikes = !st.spikes + 1; penalty_us = !st.penalty_us +. s.spike_us };
        Telemetry.incr "fault.latency_spikes"
      end
    end;
    d.st <- !st;
    !result
  end

(* --- process-wide default --------------------------------------------- *)

let default : spec option ref = ref None

let install_default s = default := Some s
let uninstall_default () = default := None
let installed_default () = !default
