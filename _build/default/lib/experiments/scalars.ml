open Wafl_util
open Wafl_core
open Wafl_sim
open Wafl_workload
open Wafl_aacache

type result = {
  cache_cpu_share : float;
  hbps_error_margin : float;
  hbps_worst_observed_error : float;
  heap_memory_bytes_1m_aas : int;
  topaa_entries_per_block : int;
}

(* Worst pick error of an HBPS under sustained random churn, relative to the
   true maximum score, replenishing at CP boundaries as the system does. *)
let hbps_worst_error ~rng =
  let n = 512 in
  let max_score = 32768 in
  let scores = Array.init n (fun _ -> Rng.int rng (max_score + 1)) in
  let h = Hbps.create ~capacity:100 ~max_score ~scores () in
  Hbps.replenish h;
  let worst = ref 0.0 in
  for _cp = 1 to 200 do
    for _ = 1 to 32 do
      let aa = Rng.int rng n in
      Hbps.update h ~aa ~score:(Rng.int rng (max_score + 1))
    done;
    if Hbps.needs_replenish h then Hbps.replenish h;
    match Hbps.pick_best h with
    | Some (_, s) ->
      let true_max = ref 0 in
      for aa = 0 to n - 1 do
        true_max := max !true_max (Hbps.score h ~aa)
      done;
      if !true_max > 0 then
        worst := Float.max !worst (float_of_int (!true_max - s) /. float_of_int max_score)
    | None -> ()
  done;
  !worst

let run ?(scale = Common.Quick) () =
  (* cache CPU share under the Fig-6 "both caches" workload *)
  let rg = Common.ssd_raid_group scale ~aa_stripes:(Some 2048) in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "lun"; blocks = agg_blocks * 9 / 8; aa_blocks = Some 1024;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~seed:41 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "lun" in
  let rng = Rng.split (Fs.rng fs) in
  let spec =
    { Aging.fill_fraction = 0.55; fragmentation_cps = 40; writes_per_cp = 2000; file = 1 }
  in
  let working_set = Aging.age fs vol ~spec ~rng () in
  let workload = Random_overwrite.create fs vol ~working_set ~rng:(Rng.split rng) () in
  let cps = match scale with Common.Quick -> 40 | Common.Full -> 100 in
  let costs =
    Load.measure_service_time ~cps ~ops_per_cp:1000
      ~step:(fun n -> Random_overwrite.step workload n)
      ()
  in
  {
    cache_cpu_share = costs.Cost_model.cache_us_per_op /. costs.Cost_model.cpu_us_per_op;
    hbps_error_margin =
      Hbps.error_margin (Hbps.create ~max_score:32768 ~scores:(Array.make 1 0) ());
    hbps_worst_observed_error = hbps_worst_error ~rng:(Rng.split rng);
    heap_memory_bytes_1m_aas = Wafl_aa.Sizing.memory_bytes_for_heap ~aa_count:(1024 * 1024);
    topaa_entries_per_block = Topaa.raid_aware_capacity;
  }

let print r =
  Common.banner "Section 4.1 scalar claims";
  Common.paper_vs_measured ~metric:"cache maintenance CPU share"
    ~paper:"~0.002% per cache"
    ~measured:(Printf.sprintf "%.4f%%" (100.0 *. r.cache_cpu_share))
    ~ok:(r.cache_cpu_share < 0.001);
  Common.paper_vs_measured ~metric:"HBPS guaranteed error margin"
    ~paper:"3.125% (1k of 32k)"
    ~measured:(Printf.sprintf "%.4f%%" (100.0 *. r.hbps_error_margin))
    ~ok:(abs_float (r.hbps_error_margin -. 0.03125) < 1e-9);
  Common.paper_vs_measured ~metric:"HBPS worst observed pick error"
    ~paper:"within margin"
    ~measured:(Printf.sprintf "%.4f%%" (100.0 *. r.hbps_worst_observed_error))
    ~ok:(r.hbps_worst_observed_error <= r.hbps_error_margin +. 1e-9);
  Common.paper_vs_measured ~metric:"heap memory for 1M AAs"
    ~paper:"~1MiB (8B/AA in our layout: 8MiB)"
    ~measured:(Printf.sprintf "%d bytes" r.heap_memory_bytes_1m_aas)
    ~ok:(r.heap_memory_bytes_1m_aas <= 16 * 1024 * 1024);
  Common.paper_vs_measured ~metric:"TopAA entries per 4KiB block"
    ~paper:"512"
    ~measured:(string_of_int r.topaa_entries_per_block)
    ~ok:(r.topaa_entries_per_block >= 500)
