(** Closed backend API for the flat word stores under every bitmap-shaped
    structure (allocation bitmaps, activemap pending sets, metafile dirty
    maps, TopAA pages).

    The store is a run of little-endian 64-bit words.  Two backends share
    the layout byte for byte:

    - [Heap]: an OCaml [Bytes.t].  Cheap for small test fixtures, but the
      GC scans and copies it, capping aggregate size.
    - [Bigarray]: an off-heap [Bigarray.Array1] (byte-kind view of the
      int64-word layout, C layout, mmap-ready).  The GC sees only the
      handle, so a modeled billion-block aggregate costs the runtime
      nothing — the paper's multi-TiB deployments (§3.4) need free-space
      state that is not heap-resident.

    Byte reads/writes return immediate native ints on both backends, so
    the zero-allocation harvest kernels ({!Bitmap.clear_mask32} and
    friends) stay allocation-free regardless of backend. *)

type backend = Heap | Bigarray

val backend_name : backend -> string
(** ["heap"] / ["bigarray"]. *)

val backend_of_string : string -> backend option

val set_default : backend -> unit
(** Process-wide default used when [create] is not given an explicit
    backend — how [--backend bigarray] switches a whole simulated system
    without threading a parameter through every constructor. *)

val default : unit -> backend

val with_default : backend -> (unit -> 'a) -> 'a
(** Run a thunk with the default swapped, restoring it on exit (including
    exceptional exit). *)

val set_mmap_dir : string option -> unit
(** Install (or clear, with [None]) a map directory: every subsequent
    anonymous {!create} (no explicit [?backend]) becomes a shared file
    mapping of [<dir>/ps<seq>.bin], where [seq] counts creations since the
    directory was installed.  A process that rebuilds the same structures
    in the same order therefore maps the same files — the
    [--backend mmap:<path>] remount path.  Explicit-backend creations
    (snapshots, copies) stay anonymous. *)

val with_mmap_dir : string -> (unit -> 'a) -> 'a
(** Run a thunk with the map directory installed and the sequence counter
    at 0, restoring both on exit (including exceptional exit). *)

val mmap_dir_path : unit -> string option
(** The currently installed map directory, if any. *)

val mmap_epoch : unit -> int
(** Bumped every time the map directory changes (installation, clearing,
    and both sides of {!with_mmap_dir}).  Consumers holding state derived
    from the mapped file set — integrity sidecars — compare epochs to
    know when to reload. *)

type t

val mapped_stores : unit -> (int * string * t) list
(** The stores file-mapped under the current directory installation, as
    [(seq, path, store)] in creation order.  Empty when no directory is
    installed. *)

val mapped_path : t -> (int * string) option
(** [(seq, path)] when the store was file-mapped under the {e current}
    directory installation; [None] for anonymous stores and for handles
    surviving from an earlier epoch. *)

val create : ?backend:backend -> int -> t
(** [create words] is a zero-filled store of [words] 64-bit words
    ([words >= 0]).  [backend] defaults to {!default}[ ()] — unless a map
    directory is installed ({!set_mmap_dir}) and no explicit [backend] is
    given, in which case the store maps the next file in the directory's
    sequence (and a right-sized existing file keeps its contents). *)

val map_file : path:string -> int -> t
(** [map_file ~path words] maps (creating if missing) [path] as a shared
    [Bigarray]-backed store of [words] 64-bit words.  The file is resized
    (and thereby OS-zeroed) only when its size does not already match, so
    a right-sized existing file keeps its persisted contents.  Discarding
    a wrong-sized non-empty file is surfaced: a [pagestore.recreated]
    telemetry increment plus a stderr warning naming the file. *)

val of_bytes : ?backend:backend -> Bytes.t -> t
(** Copy a byte image into a fresh store.  The image length must be a
    multiple of 8 (whole words) — raises [Invalid_argument] otherwise. *)

val to_bytes : t -> Bytes.t
(** Copy the store out as a heap byte image (serialization/CRC staging). *)

val backend : t -> backend
val words : t -> int
val length_bytes : t -> int

val byte : t -> int -> int
(** The i-th byte as an immediate int.  Unchecked: callers bounds-check
    against {!length_bytes} (the {!Bitmap} kernels already do). *)

val set_byte : t -> int -> int -> unit
(** Store the low 8 bits of the value at byte [i].  Unchecked, as {!byte}. *)

val word : t -> int -> int64
(** The w-th little-endian 64-bit word.  Unchecked against {!words}. *)

val fill : t -> pos:int -> len:int -> int -> unit
(** Fill a byte range with the low 8 bits of the value; bounds-checked. *)

val copy : t -> t
(** Same backend, same contents. *)

val equal : t -> t -> bool
(** Content equality; compares across backends. *)

val blit : src:t -> dst:t -> unit
(** Copy full contents; sizes must match.  Works across backends — how a
    heap crash image restores into a bigarray-backed system. *)
