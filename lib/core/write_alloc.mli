(** The WAFL write allocator (§3.1).

    Per physical range, the allocator takes the emptiest AA from the
    range's cache (or a random / first-fit AA when the cache is disabled),
    gathers that AA's free VBNs in allocation order, and hands them out
    sequentially until the AA is exhausted, then takes the next AA.  Across
    RAID groups it writes everywhere to maximize bandwidth, but biases the
    per-CP share toward emptier groups and can skip a group whose best AA
    score is under the fragmentation threshold (§3.3.1, §4.2).

    AAs taken from a cache are remembered so the CP boundary can re-file
    them with their updated scores (a heap entry would otherwise be lost,
    and an untouched HBPS entry would never re-qualify).  Every Best_aa
    take also claims the AA in an atomic per-AA owner word
    ({!Aggregate.claim_aa}); the claim blocks re-picks within a CP and is
    what lets multiple domains allocate concurrently (below) without two
    writers ever touching the same AA between CPs.

    {b Concurrent front-end.}  With an allocation pool installed
    ({!install_alloc_pool}), large [allocate_pvbns_into] calls fan out
    over per-domain shards ({!Alloc_shard}): each domain pops from its own
    lock-free harvest ring, claims fresh AAs through the shared
    (mutex-serialised) cache pick path, steals byte-aligned ring suffixes
    from other shards when it runs dry, and accumulates score deltas and
    touched metafile pages privately; a serial epilogue merges everything
    back in shard order, so the committed state is independent of the
    window's interleaving.  The per-block consume loop allocates zero
    minor-heap words per domain. *)

type t

type par_slot_stats = {
  ps_allocated : int;   (** blocks this shard handed out in the last window *)
  ps_steals : int;      (** successful ring steals by this shard *)
  ps_high_water : int;  (** largest ring fill this shard published *)
  ps_minor_words : int; (** minor-heap words inside its pop-consume loops *)
}

val create : Aggregate.t -> rng:Wafl_util.Rng.t -> t

val aggregate : t -> Aggregate.t

val allocate_pvbns_into : ?cls:int -> t -> dst:int array -> int -> int
(** Allocate up to [n] physical blocks, spread over eligible ranges
    proportionally to their best-AA scores, writing them into
    [dst.(0 .. n-1)]; returns the count (fewer than [n] only when the
    aggregate runs out of allocatable space).  While the current AA's
    harvest ring lasts, the per-block loop allocates no heap words; AA
    refills amortize their small setup cost over a whole AA of blocks.
    (The PR-2 list-returning wrapper [allocate_pvbns] is gone; this
    caller-array form is the only allocation API.)

    [cls] (default 0, clamped into the configured class count) selects
    the temperature routing slot: each class runs its own cursor row —
    own rings, own taken AAs — over the shared per-AA claim words, so
    within a CP no two classes ever fill the same AA.  With
    [temp_classes = 1] (the default config) there is a single row and
    behavior is exactly the unrouted allocator's.

    On a lazily mounted system, the first pick from a stale range
    materializes its exact scores and cache ({!Rebuild.touch_range})
    before any score is trusted. *)

val temp_classes : t -> int
(** Number of temperature routing slots ({!Config.stream_spec}
    [temp_classes] at creation). *)

val allocate_vvbns_into : t -> Flexvol.t -> dst:int array -> int -> int
(** Allocate up to [n] virtual blocks in a volume, from its current AA
    onward, mirroring {!allocate_pvbns_into} (and like it, the only
    form — [allocate_vvbns] is gone). *)

val cp_finish : t -> unit
(** CP boundary: apply every range's and volume's batched score delta,
    re-file taken AAs, rebalance caches.  Clears per-CP state but keeps
    partially-consumed AA queues (WAFL continues filling an AA across
    CPs) — except after a parallel window, where surviving rings are
    dropped (their AAs lose their claims at this boundary, so another
    shard could re-harvest the blocks they hold).  With
    [temp_classes > 1] each class row instead keeps its live ring's AA
    {e claimed} across the boundary and carries it in the taken list:
    the row resumes filling the same erase block next CP, and the held
    claim is what stops any other class from re-harvesting it.  With a positive {!Config.stream_spec} [wear_bias] and an
    SSD range, the scores filed into the pick cache are demoted by
    {!Wafl_aa.Score.wear_adjusted} — worn AAs sink in the Best-AA order
    while the exact free-count arrays stay untouched. *)

val register_vol : t -> Flexvol.t -> unit
(** Track a volume so {!cp_finish} updates its cache too. *)

(** {2 Concurrent allocation front-end} *)

val install_alloc_pool : jobs:int -> unit
(** Install the process-wide allocation pool ([--alloc-domains N]); a
    previous pool is shut down first.  [jobs <= 1] just uninstalls. *)

val uninstall_alloc_pool : unit -> unit
val alloc_pool_jobs : unit -> int

val parallel_capable : t -> bool
(** Whether every AA extent of every range is bitmap-byte aligned — the
    static precondition for unsynchronised multi-domain bitmap writes.
    When false, {!allocate_pvbns_into} stays serial regardless of the
    installed pool. *)

val prepare_par : t -> jobs:int -> unit
(** Materialize [jobs] shards up front (e.g. so {!queue_free_par} can be
    used before any parallel allocation ran). *)

val queue_free_par : t -> slot:int -> pvbn:int -> unit
(** Constant-time concurrent free into slot's private queue; requires the
    slot's shard to exist ({!prepare_par}).  Queued frees take effect when
    {!drain_queued_frees} routes them into the aggregate's validated free
    queue. *)

val drain_queued_frees : t -> int
(** Serially (in shard order) move every queued concurrent free into
    {!Aggregate.queue_free}; returns the count.  Run before the CP commit
    ({!Cp.run} does). *)

val last_par_stats : t -> par_slot_stats array
(** Per-shard stats of the most recent parallel window ([[||]] before the
    first one). *)

val claim_conflicts : t -> int
(** Cumulative lost claim CAS races (structurally 0 while picks are
    serialised by the pick mutex; also emitted as the
    [write_alloc.claim_conflicts] counter). *)

val aas_taken : t -> int
(** Cumulative AAs taken from caches (all ranges and volumes). *)

val score_sum_taken : t -> int
(** Sum of scores of taken AAs at take time — divided by {!aas_taken} this
    is the "average free space in chosen AAs" the paper traces (§4.1.1). *)

val phys_take_trace : t -> int * int
(** (AAs taken, score sum) for physical ranges only. *)

val virt_take_trace : t -> int * int
(** (AAs taken, score sum) for volumes only — the §4.1.2 trace. *)

val candidates_scanned : t -> int
(** Cumulative bitmap positions examined while gathering free VBNs from
    AAs.  An AA yields its free blocks but costs a scan of its whole span,
    so emptier AAs amortize the allocation path over more blocks — the
    §2.5/§4.1.2 mechanism behind the CPU-per-op reduction. *)

val words_scanned : t -> int
(** Cumulative 32-bit bitmap words actually read by the harvest kernels —
    the word-at-a-time cost behind {!candidates_scanned}'s per-bit
    accounting.  Also emitted as the [write_alloc.words_scanned] counter. *)

val vbns_harvested : t -> int
(** Cumulative free VBNs harvested into cursor rings.  Also emitted as the
    [write_alloc.vbns_harvested] counter; the per-refill ring fill level is
    traced as the [write_alloc.ring_high_water] gauge. *)

val reset_take_stats : t -> unit
(** Zero the taken-AA trace counters (e.g. after aging, before
    measurement). *)
