open Wafl_util
open Wafl_device
open Wafl_core
open Wafl_sim
open Wafl_workload

type variant = Small_aa | Large_aa | Large_aa_segregated

let variant_name = function
  | Small_aa -> "HDD-sized AA, 1 stream"
  | Large_aa -> "erase-block AA, 1 stream"
  | Large_aa_segregated -> "erase-block AA, 4 classes / 4 streams"

let stream_spec_of = function
  | Small_aa | Large_aa -> Config.default_streams
  | Large_aa_segregated ->
    { Config.temp_classes = 4; ssd_streams = 4; wear_bias = 2; meta_file = Some 0 }

type stream_row = {
  stream : int;
  host : int;
  device : int;
  relocated : int;
  erases : int;
  wa : float;
}

type result = {
  variant : variant;
  aa_stripes : int;
  spec : Config.stream_spec;
  curve : Load.curve;
  write_amp : float;
  per_stream : stream_row list;
  wear_min : int;
  wear_max : int;
}

(* skew: 90% of the overwrites land on 2% of the working set.  The hot
   region must be small enough that its blocks are rewritten many times
   within the run — temperature is only observable once lifespans
   bimodalize, and a block overwritten less than once per run contributes
   a single, aging-dominated lifespan sample that looks like every other
   block's.  Uniform traffic has no temperature to find at all. *)
let hot_fraction = 0.02
let hot_weight = 0.9

(* a trickle of "metadata" traffic on a dedicated file, cycling a small
   region so it overwrites steadily; routed to the Meta class when
   segregation is on, mixed in with everything else when it is off *)
let meta_file = 0
let meta_region = 256
let meta_writes_per_cp = 16

let aa_stripes_of scale = function
  | Small_aa -> (Common.ssd_profile scale).Profile.erase_block_blocks / 4
  | Large_aa | Large_aa_segregated ->
    Wafl_aa.Sizing.ssd_stripes ~erase_blocks_per_aa:1 (Common.ssd_profile scale)

(* per-CP traffic scales with the erase-block size (full-scale blocks are
   8x quick's): segregation only wins while a class's dead generation
   outpaces its AA fill — at [ops_per_cp] too low for the geometry, the
   hot row reopens AAs whose newest generation is still half-live and
   relocates its own recent writes *)
let measurement scale =
  match (scale : Common.scale) with
  | Common.Quick -> (100, 1000)
  | Common.Full -> (200, 8000)

let aging_spec scale =
  match (scale : Common.scale) with
  | Common.Quick ->
    { Aging.fill_fraction = 0.85; fragmentation_cps = 120; writes_per_cp = 2000; file = 1 }
  | Common.Full ->
    { Aging.fill_fraction = 0.85; fragmentation_cps = 250; writes_per_cp = 8000; file = 1 }

let run_variant scale variant =
  let aa_stripes = aa_stripes_of scale variant in
  let spec = stream_spec_of variant in
  let rg = Common.ssd_raid_group scale ~aa_stripes:(Some aa_stripes) in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "lun"; blocks = agg_blocks * 9 / 8; aa_blocks = Some 1024;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~streams:spec ~seed:8009 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "lun" in
  let rng = Rng.split (Fs.rng fs) in
  (* age with the same skewed traffic the measurement applies (unlike fig8's
     uniform churn): the measurement must start from the skew's steady
     state, where hot erase blocks are already mostly-dead on re-pick *)
  let aspec = aging_spec scale in
  let working_set = Aging.fill fs vol aspec in
  let churn =
    Random_overwrite.create fs vol ~working_set ~blocks_per_op:1 ~file:aspec.Aging.file
      ~hot_fraction ~hot_weight ~rng:(Rng.split rng) ()
  in
  for _ = 1 to aspec.Aging.fragmentation_cps do
    ignore (Random_overwrite.step churn aspec.Aging.writes_per_cp)
  done;
  let range0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  let ftl =
    match range0.Aggregate.device with
    | Aggregate.Ssd_sim f -> f
    | Aggregate.Hdd_sim _ | Aggregate.Smr_sim _ | Aggregate.Object_sim _ ->
      invalid_arg "fig8-streams: SSD rig expected"
  in
  Ftl.reset_stats ftl;
  let workload =
    Random_overwrite.create fs vol ~working_set ~blocks_per_op:1 ~hot_fraction
      ~hot_weight ~rng:(Rng.split rng) ()
  in
  let meta_cursor = ref 0 in
  let step n =
    for _ = 1 to meta_writes_per_cp do
      Fs.stage_write fs ~vol ~file:meta_file ~offset:(!meta_cursor mod meta_region);
      incr meta_cursor
    done;
    Random_overwrite.step workload n
  in
  let cps, ops_per_cp = measurement scale in
  let costs = Load.measure_service_time ~cps ~ops_per_cp ~step () in
  let ns = Ftl.streams ftl in
  let per_stream =
    List.init ns (fun s ->
        let st = Ftl.stream_stats ftl s in
        {
          stream = s;
          host = st.Ftl.host_pages_written;
          device = st.Ftl.device_pages_written;
          relocated = st.Ftl.relocated_pages;
          erases = st.Ftl.erases;
          wa = Ftl.stream_write_amplification ftl s;
        })
  in
  let wear_min, wear_max = Ftl.wear_spread ftl in
  {
    variant;
    aa_stripes;
    spec;
    curve = Load.sweep ~label:(variant_name variant) costs;
    write_amp = Ftl.write_amplification ftl;
    per_stream;
    wear_min;
    wear_max;
  }

let run ?(scale = Common.Quick) () =
  List.map (run_variant scale) [ Small_aa; Large_aa; Large_aa_segregated ]

let find results v = List.find (fun r -> r.variant = v) results

let print ?(scale = Common.Quick) results =
  Common.banner
    "Figure 8 (streams): write amplification — AA size vs temperature segregation \
     (all-SSD, aged to 85%, skewed 4KiB overwrites)";
  List.iter
    (fun r ->
      Common.kv
        (Printf.sprintf "%s:" (variant_name r.variant))
        (Printf.sprintf
           "aa_stripes=%d classes=%d streams=%d wear_bias=%d WA=%.3f wear=%d..%d \
            peak=%.0f ops/s"
           r.aa_stripes r.spec.Config.temp_classes r.spec.Config.ssd_streams
           r.spec.Config.wear_bias r.write_amp r.wear_min r.wear_max
           (Load.peak_throughput r.curve));
      List.iter
        (fun s ->
          Common.kv
            (Printf.sprintf "  stream %d" s.stream)
            (Printf.sprintf "host=%d device=%d reloc=%d erases=%d WA=%.3f" s.host
               s.device s.relocated s.erases s.wa))
        r.per_stream)
    results;
  let small = find results Small_aa
  and large = find results Large_aa
  and seg = find results Large_aa_segregated in
  Printf.printf "\n";
  Common.paper_vs_measured ~metric:"WA, erase-block AA (paper fig 8)"
    ~paper:"1.46"
    ~measured:(Printf.sprintf "%.3f (small AA %.3f)" large.write_amp small.write_amp)
    ~ok:(large.write_amp < small.write_amp);
  (* The absolute 1.46 comparison is a quick-scale claim: at full scale
     this FTL's worst-case relocation pricing inflates every fig-8 WA
     figure well past the paper's (9.63/3.28 for plain fig8 — see
     EXPERIMENTS.md), so there the gate is the segregation win itself. *)
  let ok =
    seg.write_amp < large.write_amp
    && (match scale with Common.Quick -> seg.write_amp < 1.46 | Common.Full -> true)
  in
  Common.paper_vs_measured ~metric:"WA, segregated vs unsegregated"
    ~paper:"below 1.46"
    ~measured:
      (Printf.sprintf "%.3f -> %.3f (%s)" large.write_amp seg.write_amp
         (Common.pct seg.write_amp large.write_amp))
    ~ok
