lib/util/bitops.ml: Bytes Char Int64
