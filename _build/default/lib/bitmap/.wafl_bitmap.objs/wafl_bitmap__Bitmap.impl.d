lib/bitmap/bitmap.ml: Bitops Bytes Char List Wafl_block Wafl_util
