open Wafl_util
open Wafl_core

type t = {
  fs : Fs.t;
  vol : Flexvol.t;
  working_set : int;
  blocks_per_op : int;
  file : int;
  rng : Rng.t;
}

let create fs vol ~working_set ?(blocks_per_op = 2) ?(file = 1) ~rng () =
  assert (working_set >= blocks_per_op && blocks_per_op > 0);
  { fs; vol; working_set; blocks_per_op; file; rng }

let step t n =
  let slots = t.working_set / t.blocks_per_op in
  for _ = 1 to n do
    let base = Rng.int t.rng slots * t.blocks_per_op in
    for i = 0 to t.blocks_per_op - 1 do
      Fs.stage_write t.fs ~vol:t.vol ~file:t.file ~offset:(base + i)
    done
  done;
  Fs.run_cp t.fs

let blocks_per_op t = t.blocks_per_op
