lib/aacache/topaa.ml: Array Bytes Checksum Format Hbps Int32 List Max_heap Wafl_util
