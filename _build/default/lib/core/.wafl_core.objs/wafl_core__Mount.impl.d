lib/core/mount.ml: Aggregate Array Bitmap Bytes Cache Char Config Flexvol Fs Hbps List Max_heap Metafile Option Topaa Topology Wafl_aa Wafl_aacache Wafl_bitmap
