let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]
(* U+2581..U+2588, lower one-eighth block .. full block *)

let sparkline ?(width = 60) xs =
  let xs = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq xs)) in
  let n = Array.length xs in
  if n = 0 || width <= 0 then ""
  else begin
    (* bucket by averaging so long histories still fit one row *)
    let cells = min n width in
    let bucket = Array.make cells 0.0 in
    let counts = Array.make cells 0 in
    Array.iteri
      (fun i v ->
        let c = i * cells / n in
        bucket.(c) <- bucket.(c) +. v;
        counts.(c) <- counts.(c) + 1)
      xs;
    for c = 0 to cells - 1 do
      if counts.(c) > 0 then bucket.(c) <- bucket.(c) /. float_of_int counts.(c)
    done;
    let lo = Array.fold_left min bucket.(0) bucket in
    let hi = Array.fold_left max bucket.(0) bucket in
    let buf = Buffer.create (cells * 3) in
    Array.iter
      (fun v ->
        let g =
          if hi <= lo then 3
          else
            let f = (v -. lo) /. (hi -. lo) in
            min 7 (max 0 (int_of_float (f *. 7.99)))
        in
        Buffer.add_string buf glyphs.(g))
      bucket;
    Buffer.contents buf
  end

(* The deepest currently open span is "what the system is doing now". *)
let current_phase spans =
  List.fold_left
    (fun acc k ->
      if Span.open_now spans k > 0 then
        match acc with
        | Some a when Span.depth a >= Span.depth k -> acc
        | _ -> Some k
      else acc)
    None Span.all

let last_cell series row name =
  match Timeseries.column_index series name with
  | Some i when i < Array.length row -> Some row.(i)
  | _ -> None

let column series name =
  match Timeseries.column_index series name with
  | None -> [||]
  | Some i ->
    Timeseries.rows series
    |> List.filter_map (fun r -> if i < Array.length r then Some r.(i) else None)
    |> Array.of_list

let health ?(width = 80) tel =
  let width = max 40 width in
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.bprintf buf fmt in
  let rule () = pr "%s\n" (String.make width '-') in
  let spans = Telemetry.spans tel in
  let series = Telemetry.series tel in
  let cps = Timeseries.appended series in
  let phase =
    match current_phase spans with Some k -> Span.name k | None -> "idle"
  in
  pr "waflsim health  |  cp %d  |  phase: %s\n" cps phase;
  rule ();
  (* --- span table --- *)
  let live =
    List.filter (fun k -> Span.count spans k > 0 || Span.open_now spans k > 0) Span.all
  in
  if live = [] then pr "(no spans recorded)\n"
  else begin
    pr "%-34s %10s %12s %10s %5s\n" "span" "count" "total ms" "avg us" "open";
    List.iter
      (fun k ->
        let count = Span.count spans k in
        let total = Span.total_ns spans k in
        let avg_us =
          if count = 0 then 0.0 else float_of_int total /. float_of_int count /. 1e3
        in
        let label = String.make (2 * Span.depth k) ' ' ^ Span.name k in
        pr "%-34s %10d %12.2f %10.1f %5d\n" label count
          (float_of_int total /. 1e6)
          avg_us (Span.open_now spans k))
      live
  end;
  rule ();
  (* --- newest sample --- *)
  (match Timeseries.last series with
  | None -> pr "(no samples yet)\n"
  | Some row ->
    let cell = last_cell series row in
    let wall_s =
      match cell "cp_wall_ns" with
      | Some ns when ns > 0.0 -> ns /. 1e9
      | _ -> 0.0
    in
    let rate name =
      match cell name with
      | Some v when wall_s > 0.0 -> v /. wall_s
      | _ -> 0.0
    in
    pr "last cp:  %.0f ops  %.0f blocks  picks/s %.0f  search ns/blk %.1f\n"
      (Option.value ~default:0.0 (cell "ops"))
      (Option.value ~default:0.0 (cell "blocks_allocated"))
      (rate "picks")
      (Option.value ~default:0.0 (cell "search_ns_per_block"));
    pr "space:    free %.1f%%  frag %.3f  runs %.0f  largest run %.0f\n"
      (100.0 *. Option.value ~default:0.0 (cell "free_frac"))
      (Option.value ~default:0.0 (cell "frag"))
      (Option.value ~default:0.0 (cell "free_runs"))
      (Option.value ~default:0.0 (cell "largest_free_run"));
    pr "alloc:    hbps err bound %.0f  ring high-water %.0f  device us %.0f\n"
      (Option.value ~default:0.0 (cell "hbps_score_error_max"))
      (Option.value ~default:0.0 (cell "ring_high_water"))
      (Option.value ~default:0.0 (cell "device_us"));
    (match cell "ssd_wa" with
    | Some wa when wa > 0.0 ->
      let reloc i =
        Option.value ~default:0.0 (cell (Printf.sprintf "ssd_reloc_s%d" i))
      in
      pr "ssd:      wa %.3f  reloc s0-s3 %.0f/%.0f/%.0f/%.0f  max wear %.0f\n"
        wa (reloc 0) (reloc 1) (reloc 2) (reloc 3)
        (Option.value ~default:0.0 (cell "ssd_max_wear"))
    | _ -> ());
    let frag = column series "frag" in
    if Array.length frag > 1 then
      pr "frag trend (%d cps): %s\n" (Array.length frag)
        (sparkline ~width:(width - 24) frag));
  (* --- request latency pane (only when a recorder is attached and has
     seen ops) --- *)
  (match Telemetry.latency tel with
  | Some lat when Latency.ops_recorded lat > 0 ->
    rule ();
    let p50, p99, p999 = Latency.quantiles_ms lat in
    pr "latency:  %d ops over %d cps  p50 %.2f ms  p99 %.2f ms  p999 %.2f ms\n"
      (Latency.ops_recorded lat) (Latency.cps_recorded lat) p50 p99 p999;
    List.iter
      (fun (slot, name) ->
        let v50, v99, v999 = Latency.quantiles_ms ~vol:slot lat in
        if v50 > 0.0 then
          pr "  vol %-16s p50 %8.2f  p99 %8.2f  p999 %8.2f ms\n" name v50 v99
            v999)
      (Latency.vols lat);
    List.iter
      (fun (r : Slo.report) ->
        pr "slo %-12s <%gms @%.3g  burn fast %.2f  slow %.2f%s\n" r.r_name
          r.r_threshold_ms r.r_target r.r_burn_fast r.r_burn_slow
          (if r.r_breach then "  ** BREACH **" else ""))
      (Latency.last_slo_reports lat);
    (match Latency.exemplars lat with
    | [] -> ()
    | exs ->
      pr "tail exemplars:\n";
      List.iteri
        (fun i (e : Latency.exemplar) ->
          if i < 3 then
            pr "  %8.2f ms  %-9s vol %-12s cp %-5d %s\n"
              (float_of_int e.ex_ns /. 1e6)
              (Latency.op_name e.ex_op) e.ex_vol_name e.ex_cp
              (Latency.phase_stack e.ex_phase))
        exs)
  | _ -> ());
  Buffer.contents buf
