(* Persisted-state integrity: CRC sidecars, verified remount, scrubber.

   Every test drives the real mmap path: a first "process" (an
   [with_mmap_dir] session) creates a system and commits CPs, the bytes
   on disk are then damaged (or not), and a second session remounts the
   same directory and must classify exactly what happened. *)

open Wafl_bitmap
open Wafl_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o700;
  dir

(* Small enough that the whole aggregate activemap is one integrity page
   (2 rg x 4 data x 1024 blocks = 8192 bits < 32768), so every CP dirties
   page 0 and that page straddles both physical ranges. *)
let config ~seed =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 1024;
      aa_stripes = Some 128;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Config.default_vol ~name:"vol0" ~blocks:4096 ]
    ~seed ()

let stage_and_cp fs ~seed ~ops =
  let rng = Wafl_util.Rng.create ~seed in
  let vol = (Fs.vols fs).(0) in
  for _ = 1 to ops do
    Fs.stage_write fs ~vol ~file:(Wafl_util.Rng.int rng 8)
      ~offset:(Wafl_util.Rng.int rng 256)
  done;
  ignore (Fs.run_cp fs)

(* The aggregate activemap's map store is tracked ordinal 0; grab its
   backing file from inside the session. *)
let agg_map_path fs =
  let store = Metafile.store (Aggregate.metafile (Fs.aggregate fs)) in
  match Pagestore.mapped_path store with
  | Some (_, path) -> path
  | None -> Alcotest.fail "aggregate map store is not file-mapped"

let read_bytes path ~pos ~len =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      seek_in ic pos;
      really_input_string ic len)

(* The store file can be smaller than one integrity page (a page covers
   [min page_size length] store bytes), so whole-page operations read the
   whole file. *)
let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path ~pos s =
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      seek_out oc pos;
      output_string oc s)

let flip_byte path ~pos =
  let b = (read_bytes path ~pos ~len:1).[0] in
  write_bytes path ~pos (String.make 1 (Char.chr (Char.code b lxor 0x5a)))

(* --- torn detection: bit-rot on disk between two sessions ------------- *)

let test_torn_remount () =
  let dir = fresh_dir "wafl_test_integrity_torn" in
  let path = ref "" in
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:7) in
      stage_and_cp fs ~seed:1 ~ops:200;
      stage_and_cp fs ~seed:2 ~ops:200;
      path := agg_map_path fs);
  flip_byte !path ~pos:5;
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:7) in
      let r = Mount.verify_pagestores fs in
      check_bool "torn page detected" true (r.Mount.torn_pages >= 1);
      check_int "nothing classified stale" 0 r.Mount.stale_pages;
      (* one bad activemap page overlaps both physical ranges *)
      check_int "both straddled ranges quarantined" 2 r.Mount.ranges_quarantined;
      let _findings, _n = Iron.repair ~authority:Iron.Container_authority fs in
      check_int "iron clean after container-authority heal" 0
        (List.length (Iron.check fs)))

(* --- stale detection: the last committed write is lost ---------------- *)

let test_stale_remount () =
  let dir = fresh_dir "wafl_test_integrity_stale" in
  let path = ref "" in
  let gen1_page = ref "" in
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:11) in
      stage_and_cp fs ~seed:1 ~ops:200;
      path := agg_map_path fs;
      (* the mapping is shared, so the committed bytes are visible to a
         plain read of the backing file *)
      gen1_page := read_all !path;
      stage_and_cp fs ~seed:2 ~ops:200);
  (* revert the page to its generation-1 image: a lost write *)
  check_bool "second CP changed the page" true (!gen1_page <> read_all !path);
  write_bytes !path ~pos:0 !gen1_page;
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:11) in
      let r = Mount.verify_pagestores fs in
      check_bool "stale page detected" true (r.Mount.stale_pages >= 1);
      check_int "nothing classified torn" 0 r.Mount.torn_pages;
      let _findings, _n = Iron.repair ~authority:Iron.Container_authority fs in
      check_int "iron clean after heal" 0 (List.length (Iron.check fs)))

(* --- sidecar present, store file missing ------------------------------ *)

let test_store_missing () =
  let dir = fresh_dir "wafl_test_integrity_nostore" in
  let path = ref "" in
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:3) in
      stage_and_cp fs ~seed:1 ~ops:200;
      path := agg_map_path fs);
  Sys.remove !path;
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:3) in
      let r = Mount.verify_pagestores fs in
      (* the recreated store is zero-filled; the sidecar vouches for the
         committed bits, so the wipe must be flagged *)
      check_bool "wiped store detected" true (r.Mount.torn_pages + r.Mount.stale_pages >= 1);
      let _findings, _n = Iron.repair ~authority:Iron.Container_authority fs in
      check_int "iron clean after heal" 0 (List.length (Iron.check fs)))

(* --- store present, sidecar missing ----------------------------------- *)

let test_sidecar_missing () =
  let dir = fresh_dir "wafl_test_integrity_nosidecar" in
  let seq = ref (-1) in
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:5) in
      stage_and_cp fs ~seed:1 ~ops:200;
      let store = Metafile.store (Aggregate.metafile (Fs.aggregate fs)) in
      seq := fst (Option.get (Pagestore.mapped_path store)));
  Sys.remove (Filename.concat dir (Printf.sprintf "ps%d.crc" !seq));
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:5) in
      let r = Mount.verify_pagestores fs in
      check_bool "store without sidecar reported unverified" true
        (r.Mount.unverified_stores >= 1);
      (* sealed blind: the surviving bytes become the new vouched truth *)
      check_int "no damage invented" 0 (r.Mount.torn_pages + r.Mount.stale_pages))

(* --- generation stamp is stable across write-free remounts ------------ *)

let test_generation_stable () =
  let dir = fresh_dir "wafl_test_integrity_gen" in
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:9) in
      stage_and_cp fs ~seed:1 ~ops:200;
      stage_and_cp fs ~seed:2 ~ops:200);
  let g = ref (-1) in
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:9) in
      let r = Mount.verify_pagestores fs in
      check_int "first write-free remount sees no damage" 0
        (r.Mount.torn_pages + r.Mount.stale_pages);
      g := Integrity.committed_generation ());
  check_bool "two CPs committed two generations" true (!g >= 2);
  Pagestore.with_mmap_dir dir (fun () ->
      let fs = Fs.create (config ~seed:9) in
      let r = Mount.verify_pagestores fs in
      check_int "second write-free remount sees no damage" 0
        (r.Mount.torn_pages + r.Mount.stale_pages);
      ignore fs;
      check_int "generation unchanged by write-free remounts" !g
        (Integrity.committed_generation ()))

(* --- rot/lost fault-grammar round trip -------------------------------- *)

let test_fault_grammar () =
  let open Wafl_fault in
  (match Fault.spec_of_string "rot=0:1,lost=0:2@5" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
    check_bool "rot parsed with default gen" true (spec.Fault.rot_pages = [ (0, 1, 1) ]);
    check_bool "lost parsed with explicit gen" true (spec.Fault.lost_pages = [ (0, 2, 5) ]);
    let s = Fault.spec_to_string spec in
    check_bool "rot survives round trip" true
      (match Fault.spec_of_string s with
      | Ok spec' ->
        spec'.Fault.rot_pages = spec.Fault.rot_pages
        && spec'.Fault.lost_pages = spec.Fault.lost_pages
      | Error _ -> false));
  check_bool "negative page rejected" true
    (match Fault.spec_of_string "rot=0:-1" with Error _ -> true | Ok _ -> false);
  check_bool "generation zero rejected" true
    (match Fault.spec_of_string "lost=0:0@0" with Error _ -> true | Ok _ -> false)

(* --- scrubber: injected damage is found and healed between CPs -------- *)

let test_scrub_heals () =
  let dir = fresh_dir "wafl_test_integrity_scrub" in
  let spec =
    match Wafl_fault.Fault.spec_of_string "rot=0:0@1" with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  Wafl_fault.Fault.install_default spec;
  Fun.protect ~finally:Wafl_fault.Fault.uninstall_default (fun () ->
      Pagestore.with_mmap_dir dir (fun () ->
          let fs = Fs.create (config ~seed:13) in
          (* first CP commits generation 1: the rot arm fires right after
             the sidecar persist, corrupting the committed activemap *)
          stage_and_cp fs ~seed:1 ~ops:200;
          let stats = Scrub.pass fs ~budget:4096 in
          check_bool "scrub found the rotted page" true (stats.Scrub.bad_pages >= 1);
          check_int "scrub healed what it found" stats.Scrub.bad_pages
            stats.Scrub.healed;
          check_int "iron clean after scrub heal" 0 (List.length (Iron.check fs));
          let stats' = Scrub.pass fs ~budget:4096 in
          check_int "second sweep finds nothing" 0 stats'.Scrub.bad_pages))

let () =
  Alcotest.run "integrity"
    [
      ( "verified remount",
        [
          Alcotest.test_case "torn page detected and healed" `Quick test_torn_remount;
          Alcotest.test_case "lost write classifies stale" `Quick test_stale_remount;
          Alcotest.test_case "wiped store flagged via sidecar" `Quick test_store_missing;
          Alcotest.test_case "missing sidecar reported unverified" `Quick
            test_sidecar_missing;
          Alcotest.test_case "generation stable without writes" `Quick
            test_generation_stable;
        ] );
      ( "fault grammar",
        [ Alcotest.test_case "rot/lost round trip" `Quick test_fault_grammar ] );
      ( "scrubber",
        [ Alcotest.test_case "rot healed between CPs" `Quick test_scrub_heals ] );
    ]
