lib/experiments/scalars.mli: Common
