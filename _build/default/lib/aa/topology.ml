open Wafl_util
open Wafl_block
open Wafl_raid

type t =
  | Raid_aware of { geometry : Geometry.t; aa_stripes : int }
  | Raid_agnostic of { total_blocks : int; aa_blocks : int }

let raid_aware ~geometry ~aa_stripes =
  if aa_stripes <= 0 || aa_stripes > Geometry.stripes geometry then
    invalid_arg "Topology.raid_aware: bad aa_stripes";
  Raid_aware { geometry; aa_stripes }

let raid_agnostic ~total_blocks ~aa_blocks =
  if total_blocks <= 0 || aa_blocks <= 0 || aa_blocks > total_blocks then
    invalid_arg "Topology.raid_agnostic: bad sizes";
  Raid_agnostic { total_blocks; aa_blocks }

let total_blocks = function
  | Raid_aware { geometry; _ } -> Geometry.total_blocks geometry
  | Raid_agnostic { total_blocks; _ } -> total_blocks

let aa_count = function
  | Raid_aware { geometry; aa_stripes } -> Bitops.ceil_div (Geometry.stripes geometry) aa_stripes
  | Raid_agnostic { total_blocks; aa_blocks } -> Bitops.ceil_div total_blocks aa_blocks

let check_aa t i = if i < 0 || i >= aa_count t then invalid_arg "Topology: AA index out of bounds"

(* Stripes covered by RAID-aware AA i, as (first, count). *)
let aa_stripe_span geometry aa_stripes i =
  let first = i * aa_stripes in
  let count = min aa_stripes (Geometry.stripes geometry - first) in
  (first, count)

let aa_capacity t i =
  check_aa t i;
  match t with
  | Raid_aware { geometry; aa_stripes } ->
    let _, count = aa_stripe_span geometry aa_stripes i in
    count * Geometry.data_devices geometry
  | Raid_agnostic { total_blocks; aa_blocks } ->
    min aa_blocks (total_blocks - (i * aa_blocks))

let full_aa_capacity = function
  | Raid_aware { geometry; aa_stripes } -> aa_stripes * Geometry.data_devices geometry
  | Raid_agnostic { aa_blocks; _ } -> aa_blocks

let aa_of_vbn t vbn =
  if vbn < 0 || vbn >= total_blocks t then invalid_arg "Topology: VBN out of bounds";
  match t with
  | Raid_aware { geometry; aa_stripes } -> Geometry.stripe_of_vbn geometry vbn / aa_stripes
  | Raid_agnostic { aa_blocks; _ } -> vbn / aa_blocks

let extents_of_aa t i =
  check_aa t i;
  match t with
  | Raid_aware { geometry; aa_stripes } ->
    let first, count = aa_stripe_span geometry aa_stripes i in
    List.init (Geometry.data_devices geometry) (fun device ->
        let base = Geometry.vbn_of_location geometry { Geometry.device; dbn = first } in
        Extent.make ~start:base ~len:count)
  | Raid_agnostic { total_blocks; aa_blocks } ->
    let start = i * aa_blocks in
    [ Extent.make ~start ~len:(min aa_blocks (total_blocks - start)) ]

let iter_aa_vbns t i ~f =
  check_aa t i;
  match t with
  | Raid_aware { geometry; aa_stripes } ->
    let first, count = aa_stripe_span geometry aa_stripes i in
    for dbn = first to first + count - 1 do
      for device = 0 to Geometry.data_devices geometry - 1 do
        f (Geometry.vbn_of_location geometry { Geometry.device; dbn })
      done
    done
  | Raid_agnostic { total_blocks; aa_blocks } ->
    let start = i * aa_blocks in
    let stop = min (start + aa_blocks) total_blocks in
    for vbn = start to stop - 1 do
      f vbn
    done

let pp fmt = function
  | Raid_aware { geometry; aa_stripes } ->
    Format.fprintf fmt "raid-aware(%a, %d stripes/AA)" Geometry.pp geometry aa_stripes
  | Raid_agnostic { total_blocks; aa_blocks } ->
    Format.fprintf fmt "raid-agnostic(%d blocks, %d/AA)" total_blocks aa_blocks
