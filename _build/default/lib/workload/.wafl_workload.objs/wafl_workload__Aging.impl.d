lib/workload/aging.ml: Aggregate Flexvol Fs List Rng Wafl_bitmap Wafl_block Wafl_core Wafl_util
