(** A minimal JSON reader/writer — just enough to parse the exporter's
    own output (metrics, time-series, bench references) back into a tree
    for regression diffing and round-trip tests.  No external dependency,
    no streaming: documents here are small (tens of KiB).

    Numbers all parse to [float]; the exporters print integers without an
    exponent and other values with 17 significant digits, so every number
    they emit survives the round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in document order *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  The error
    string carries a character offset. *)

val parse_exn : string -> t
(** Raises [Failure] with the {!parse} error. *)

val to_string : t -> string
(** Compact rendering (objects keep member order). *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on a missing field or a non-object. *)

val number_leaves : t -> (string list * float) list
(** Every numeric leaf with its path from the root, in document order —
    the flattened view the regression differ compares.  List elements
    contribute their index as a path component. *)
