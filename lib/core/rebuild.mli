(** The one cache-rebuild entry point.

    Every path that recomputes AA scores and caches from the bitmaps —
    eager full-scan mount, Iron repair, fault fallback for a corrupt
    TopAA block, and the lazy first-touch materialization behind
    incremental mount — funnels through this module, so they share one
    implementation (and one determinism argument: each score slot is a
    pure function of the bitmap, written exactly once, at any domain
    count). *)

type scope =
  | Full  (** every range of the aggregate, plus the given volumes *)
  | Ranges of Aggregate.range list
      (** just these ranges (fault fallback / targeted repair) *)

val request : ?pool:Wafl_par.Par.t -> ?vols:Flexvol.t array -> Aggregate.t -> scope -> unit
(** Rescore and rebuild the caches in [scope], stamping them fresh.
    [pool] (explicit, or installed process-wide) spreads the per-AA
    rescoring over its domains; results are bit-identical to a serial
    rebuild at any domain count. *)

val request_vol : ?pool:Wafl_par.Par.t -> Flexvol.t -> unit
(** Volume-granular {!request} (the old [Flexvol.rebuild_cache] entry
    point). *)

(** {2 Lazy first-touch materialization}

    After a lazy mount every range and volume is stale-but-seeded.  The
    allocator's AA pick/harvest, the Iron scan, and the cleaner pass call
    these before trusting scores; a fresh target costs one integer
    compare, a stale one pays its exact rescore (accounted as metafile
    page reads) right then — mount-ready time stays independent of
    aggregate size because nothing is scanned until touched. *)

val touch_range : Aggregate.t -> Aggregate.range -> unit

val touch_vol : Flexvol.t -> unit
