(** Flat bitmaps over a block-number space.

    The i-th bit tracks the state of the i-th block (§2.5): set = allocated,
    clear = free.  Backed by a {!Pagestore} (heap bytes or an off-heap
    bigarray — same word layout either way) and processed 64 bits at a time
    for the bulk operations (population counts and free-run searches) that
    the AA score computation and the mount-time cache rebuild perform. *)

type t

val create : bits:int -> t
(** All bits clear (all blocks free).  [bits >= 0].  The backing store uses
    the process-wide {!Pagestore.default} backend. *)

val backend : t -> Pagestore.backend

val store : t -> Pagestore.t
(** The backing page store itself.  The integrity plane keys its sidecars
    on store identity; mutating the store through this handle bypasses
    the bitmap's bounds checks. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val set_range : t -> start:int -> len:int -> unit
(** Set [len] bits starting at [start]; the range must be in bounds. *)

val clear_range : t -> start:int -> len:int -> unit

val count_set : t -> int
(** Total set bits. *)

val count_set_in : t -> start:int -> len:int -> int
(** Set bits within a range. *)

val count_clear_in : t -> start:int -> len:int -> int
(** Clear (free) bits within a range — the AA score primitive (§3.3). *)

val find_first_clear : t -> from:int -> int option
(** Lowest clear bit at index [>= from], if any. *)

val find_first_set : t -> from:int -> int option

val free_extents : t -> start:int -> len:int -> Wafl_block.Extent.t list
(** Maximal runs of clear bits inside the range, in increasing order.
    These are the write chains available to the allocator (§2.4). *)

val fold_free_runs :
  t -> start:int -> len:int -> init:'a -> f:('a -> run_start:int -> run_len:int -> 'a) -> 'a
(** Fold over maximal clear runs inside the range without allocating. *)

val free_run_stats : t -> start:int -> len:int -> int * int
(** [(number of maximal free runs, length of the largest)] inside the
    range — the free-space fragmentation signal of the per-CP time
    series.  [(0, 0)] when no bit in the range is clear. *)

(** {2 Word-at-a-time free-bit harvest (the allocator hot path)}

    The allocator consumes every free VBN of an AA; materializing them by
    probing bits one at a time costs a bounds check and a byte load per
    {e block}.  These kernels walk the backing words instead, masking the
    ragged edges, so the cost is per 32/64-bit {e word}. *)

val iter_clear_words : t -> start:int -> len:int -> f:(base:int -> mask:int64 -> unit) -> unit
(** Visit each 64-bit backing word overlapping the range whose clear-bit
    mask (restricted to the range) is non-zero.  [mask] bit [i] set means
    bit [base + i] of the bitmap is clear and inside the range. *)

val fold_clear_in : t -> start:int -> len:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over the indices of clear bits in the range, ascending, via
    {!iter_clear_words} + ctz — never per-bit [get]. *)

val clear_mask32 : t -> int -> int
(** 32-bit clear-bit mask at an arbitrary bit position: result bit [i] is
    set iff bit [pos + i] is in bounds and clear.  Works on immediate
    native ints only (an [int64] would be boxed), so calling it allocates
    nothing — the primitive under the zero-allocation harvest. *)

val harvest_clear_into : t -> start:int -> len:int -> offset:int -> dst:int array -> pos:int -> int
(** Append [offset + i] to [dst] (starting at index [pos]) for every clear
    bit [i] in the range, ascending; returns the new fill position.  The
    steady-state loop allocates no heap words per emitted index. *)

val copy : t -> t

val equal : t -> t -> bool

val blit : src:t -> dst:t -> unit
(** Copy the full bit state of [src] into [dst]; lengths must match. *)
