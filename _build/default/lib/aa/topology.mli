(** Allocation-area topology: which blocks belong to which AA (§3.1).

    For storage arranged in a RAID group, an AA is a set of consecutive
    {e stripes} (Figure 2): AA [i] covers stripes
    [\[i*aa_stripes, (i+1)*aa_stripes)], i.e. one run of [aa_stripes]
    consecutive DBNs on {e each} data device.  Targeting the emptiest such
    AA maximizes full-stripe-write and long-chain opportunities.

    For storage with native redundancy (object ranges) and for the virtual
    VBN space of a FlexVol, an AA is simply [aa_blocks] consecutive VBNs;
    the goal there is metafile-update colocation (§2.5).

    VBNs here are 0-based within the range the topology covers; the owner
    (aggregate / FlexVol) adds any base offset. *)

type t =
  | Raid_aware of { geometry : Wafl_raid.Geometry.t; aa_stripes : int }
  | Raid_agnostic of { total_blocks : int; aa_blocks : int }

val raid_aware : geometry:Wafl_raid.Geometry.t -> aa_stripes:int -> t
(** [aa_stripes] must be positive and no larger than the stripe count. *)

val raid_agnostic : total_blocks:int -> aa_blocks:int -> t

val total_blocks : t -> int
(** Size of the covered VBN space. *)

val aa_count : t -> int
(** Number of AAs (the last may be smaller than the rest). *)

val aa_capacity : t -> int -> int
(** Blocks in AA [i] (full AAs everywhere except possibly the last). *)

val full_aa_capacity : t -> int
(** Blocks in a non-ragged AA — the maximum possible AA score. *)

val aa_of_vbn : t -> int -> int
(** The AA containing a VBN. *)

val extents_of_aa : t -> int -> Wafl_block.Extent.t list
(** The VBN extents composing AA [i], in increasing VBN order.  One extent
    for a RAID-agnostic AA; one per data device for a RAID-aware AA. *)

val iter_aa_vbns : t -> int -> f:(int -> unit) -> unit
(** Visit every VBN of AA [i] in allocation order: stripe-major for
    RAID-aware topologies (all devices of stripe s, then stripe s+1 — the
    order that fills stripes and enables full-stripe writes), plain
    ascending for RAID-agnostic ones. *)

val pp : Format.formatter -> t -> unit
