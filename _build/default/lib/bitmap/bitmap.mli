(** Flat bitmaps over a block-number space.

    The i-th bit tracks the state of the i-th block (§2.5): set = allocated,
    clear = free.  Backed by [Bytes] and processed 64 bits at a time for the
    bulk operations (population counts and free-run searches) that the AA
    score computation and the mount-time cache rebuild perform. *)

type t

val create : bits:int -> t
(** All bits clear (all blocks free).  [bits >= 0]. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val set_range : t -> start:int -> len:int -> unit
(** Set [len] bits starting at [start]; the range must be in bounds. *)

val clear_range : t -> start:int -> len:int -> unit

val count_set : t -> int
(** Total set bits. *)

val count_set_in : t -> start:int -> len:int -> int
(** Set bits within a range. *)

val count_clear_in : t -> start:int -> len:int -> int
(** Clear (free) bits within a range — the AA score primitive (§3.3). *)

val find_first_clear : t -> from:int -> int option
(** Lowest clear bit at index [>= from], if any. *)

val find_first_set : t -> from:int -> int option

val free_extents : t -> start:int -> len:int -> Wafl_block.Extent.t list
(** Maximal runs of clear bits inside the range, in increasing order.
    These are the write chains available to the allocator (§2.4). *)

val fold_free_runs :
  t -> start:int -> len:int -> init:'a -> f:('a -> run_start:int -> run_len:int -> 'a) -> 'a
(** Fold over maximal clear runs inside the range without allocating. *)

val copy : t -> t

val equal : t -> t -> bool

val blit : src:t -> dst:t -> unit
(** Copy the full bit state of [src] into [dst]; lengths must match. *)
