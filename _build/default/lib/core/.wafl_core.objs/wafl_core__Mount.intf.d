lib/core/mount.mli: Fs
