lib/sim/load.ml: Cost_model Float List Queueing Series Wafl_util
