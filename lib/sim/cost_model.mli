(** Turns a CP's raw counts into time, mirroring the paper's metrics.

    The paper reports (a) latency-vs-throughput curves, (b) CPU overhead per
    client operation (§4.1.2's 309 vs 293 usec/op), and (c) the share of CPU
    spent maintaining AA caches (~0.002%).  We model the per-operation
    service demand as

    - a fixed CPU cost per operation (protocol + WAFL code path),
    - CPU + I/O for each bitmap-metafile page the CP dirtied (the cost that
      virtual-VBN colocation amortizes, §2.5),
    - the device time the CP's flush needed (from the device simulators,
      already parallel across ranges),
    - the cache maintenance work (abstract units from {!Wafl_aacache.Cache}).

    All constants are per-simulated-core microseconds; absolute values are
    calibration, the experiments compare ratios. *)

type t = {
  cpu_base_us_per_op : float;      (** fixed WAFL code-path cost per op *)
  metafile_page_cpu_us : float;    (** CPU to update + checksum one page *)
  metafile_page_write_us : float;  (** device time to write one page *)
  cache_work_unit_us : float;      (** one abstract cache-maintenance unit *)
  read_fraction_us : float;        (** extra service time per read op *)
  alloc_candidate_us : float;
      (** allocation-path CPU per candidate block examined while gathering
          an AA's free VBNs; emptier AAs yield more blocks per candidate
          (the Â§4.1.2 CPU-per-op mechanism) *)
}

val default : t

val latency_model : t -> Wafl_telemetry.Latency.model
(** The subset of these constants the request-latency modeled clock uses
    ({!Wafl_telemetry.Latency}); the conversion point that keeps the two
    cost tables in lock-step. *)

type op_costs = {
  ops : int;
  cpu_us_per_op : float;       (** total CPU / ops — the §4.1.2 metric *)
  cache_us_per_op : float;     (** cache maintenance share of the above *)
  service_time_us : float;     (** per-op service demand incl. device time *)
  cp_duration_us : float;
}

val of_report : ?model:t -> Wafl_core.Cp.report -> op_costs
(** Costs of one CP.  [ops] must be positive in the report. *)

val combine : op_costs list -> op_costs
(** Aggregate several CPs into steady-state averages. *)
