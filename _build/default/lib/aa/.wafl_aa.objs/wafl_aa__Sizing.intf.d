lib/aa/sizing.mli: Wafl_device
