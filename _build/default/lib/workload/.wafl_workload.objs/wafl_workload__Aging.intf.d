lib/workload/aging.mli: Wafl_core Wafl_util
