(** Aligned ASCII tables for experiment output. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** Append a row; must have exactly as many cells as there are columns. *)

val add_rule : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render the whole table, headers included, with a trailing newline. *)

val print : t -> unit
(** [render] to stdout. *)
