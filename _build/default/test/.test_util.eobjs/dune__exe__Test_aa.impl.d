test/test_aa.ml: Alcotest Array Geometry Hashtbl List Metafile QCheck QCheck_alcotest Score Sizing Topology Wafl_aa Wafl_bitmap Wafl_block Wafl_device Wafl_raid
