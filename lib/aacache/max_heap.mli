(** RAID-aware AA cache: an in-memory max-heap of all AAs of a RAID group,
    keyed by score (§3.3.1).

    The heap holds every AA (the memory is justified by the §4.1 win), and
    supports position-tracked key updates so the batched score changes of a
    CP can be applied and the heap rebalanced at the CP boundary.  AA ids
    must be dense in [\[0, n_aas)]. *)

type t

val create : n_aas:int -> t
(** Empty heap able to hold AAs [0 .. n_aas-1]. *)

val of_scores : int array -> t
(** Heapify all AAs from a score array (index = AA id) in O(n). *)

val size : t -> int
val capacity : t -> int
val mem : t -> int -> bool
(** Whether an AA is currently in the heap. *)

val insert : t -> aa:int -> score:int -> unit
(** Add an AA; it must not already be present. *)

val peek_best : t -> (int * int) option
(** Highest-score (aa, score) without removing, [None] when empty. *)

val best_score : t -> int option

val top_score : t -> int
(** Best score, or 0 when the heap is empty.  Unlike {!best_score} this
    never boxes an option — safe on allocation-free paths. *)

val extract_best : t -> (int * int) option
(** Remove and return the best entry. *)

val extract_best_filtered : t -> keep:(int -> bool) -> (int * int) option
(** Remove and return the best entry whose AA satisfies [keep] — the
    claim-aware pick of the concurrent allocation front-end (skip AAs
    another writer owns without losing score order).  Entries rejected
    on the way are reinserted, so the heap afterwards holds exactly the
    original entries minus the returned one. *)

val remove : t -> aa:int -> int
(** Remove a specific AA, returning its score.  It must be present. *)

val score : t -> aa:int -> int
(** Current score of a present AA. *)

val update : t -> aa:int -> score:int -> unit
(** Change an AA's key and restore heap order (sift up or down). *)

val apply_updates : t -> (int * int) list -> unit
(** Batched CP rebalance: apply [(aa, new_score)] pairs.  AAs not currently
    in the heap are inserted (covers the mount-time background fill). *)

val top_k : t -> int -> (int * int) list
(** The [k] best (aa, score) pairs in descending score order, without
    disturbing the heap — the TopAA snapshot (§3.4). *)

val to_sorted_list : t -> (int * int) list
(** All entries, best first. *)

val check_invariant : t -> bool
(** Heap-order and position-index consistency (for tests). *)
