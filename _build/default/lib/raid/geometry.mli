(** RAID group geometry: the VBN ↔ (device, DBN) mapping.

    A RAID group has [data_devices] data drives plus [parity_devices] parity
    drives (Figure 2).  A {e stripe} is the set of data blocks, one per data
    device, sharing the same parity block — i.e. the blocks at one DBN
    across all data devices.  Physical VBNs are laid out per-device: each
    data device owns a contiguous VBN range of [device_blocks] blocks, so
    runs of consecutive VBNs are runs of consecutive blocks on one device
    (what long write chains need, §2.4).  Parity blocks are not addressed
    by VBNs. *)

type t

type location = { device : int; dbn : int }
(** Data device index in [\[0, data_devices)] and block number on it. *)

val create : data_devices:int -> parity_devices:int -> device_blocks:int -> t
(** All arguments positive. *)

val data_devices : t -> int
val parity_devices : t -> int
val device_blocks : t -> int
(** DBNs (= stripes) per device. *)

val stripes : t -> int
(** Same as [device_blocks]. *)

val total_blocks : t -> int
(** Size of the group's VBN space: [data_devices * device_blocks]. *)

val location_of_vbn : t -> int -> location
(** VBN (0-based within the group) to device/DBN. *)

val vbn_of_location : t -> location -> int

val stripe_of_vbn : t -> int -> int
(** The stripe (DBN) a VBN lives in. *)

val vbns_of_stripe : t -> int -> int list
(** The [data_devices] VBNs composing a stripe, in device order. *)

val device_vbn_range : t -> int -> Wafl_block.Extent.t
(** The contiguous VBN range owned by a data device. *)

val pp : Format.formatter -> t -> unit
