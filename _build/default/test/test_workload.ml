(* Tests for Wafl_workload: aging, random_overwrite, oltp, sequential. *)

open Wafl_core
open Wafl_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config ?(vol_blocks = 131072) () =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 16384;
      aa_stripes = Some 1024;
    }
  in
  Config.make ~raid_groups:[ rg ]
    ~vols:[ { Config.name = "v"; blocks = vol_blocks; aa_blocks = None; policy = Config.Best_aa } ]
    ~seed:17 ()

let test_aging_fill_reaches_target () =
  let fs = Fs.create (config ()) in
  let vol = Fs.vol fs "v" in
  let spec = { Aging.default with Aging.fill_fraction = 0.5 } in
  let ws = Aging.fill fs vol spec in
  check_bool "working set written" true (ws > 0);
  let used = Aggregate.used_fraction (Fs.aggregate fs) in
  check_bool (Printf.sprintf "~50%% full (got %.2f)" used) true (used >= 0.48 && used <= 0.58)

let test_aging_fragment_fragments () =
  let fs = Fs.create (config ()) in
  let vol = Fs.vol fs "v" in
  let rng = Wafl_util.Rng.create ~seed:23 in
  let spec = { Aging.default with Aging.fill_fraction = 0.5; fragmentation_cps = 10; writes_per_cp = 800 } in
  let ws = Aging.fill fs vol spec in
  let before = Aging.free_space_contiguity fs in
  Aging.fragment fs vol spec ~working_set:ws ~rng;
  let after = Aging.free_space_contiguity fs in
  check_bool
    (Printf.sprintf "contiguity drops (%.0f -> %.0f)" before after)
    true (after < before);
  (* space usage unchanged by pure overwrites *)
  let used = Aggregate.used_fraction (Fs.aggregate fs) in
  check_bool "usage stable under overwrites" true (used >= 0.48 && used <= 0.58)

let test_random_overwrite_step () =
  let fs = Fs.create (config ()) in
  let vol = Fs.vol fs "v" in
  let rng = Wafl_util.Rng.create ~seed:29 in
  let ws = Aging.fill fs vol { Aging.default with Aging.fill_fraction = 0.3 } in
  let w = Random_overwrite.create fs vol ~working_set:ws ~rng () in
  let report = Random_overwrite.step w 100 in
  check_int "2 blocks per op" 2 (Random_overwrite.blocks_per_op w);
  (* 100 ops x 2 blocks, some may collide and coalesce *)
  check_bool "ops staged" true (report.Cp.ops > 150 && report.Cp.ops <= 200);
  check_bool "overwrites free old blocks" true (report.Cp.pvbns_freed > 0)

let test_oltp_mix () =
  let fs = Fs.create (config ()) in
  let vol = Fs.vol fs "v" in
  let rng = Wafl_util.Rng.create ~seed:31 in
  let ws = Aging.fill fs vol { Aging.default with Aging.fill_fraction = 0.3 } in
  let w = Oltp.create fs vol ~working_set:ws ~read_fraction:0.6 ~rng () in
  let result = Oltp.step w 1000 in
  check_int "ops conserved" 1000 (result.Oltp.reads + result.Oltp.updates);
  check_bool "read-heavy" true (result.Oltp.reads > result.Oltp.updates);
  check_bool "cp ran" true (result.Oltp.report.Cp.ops > 0)

let test_sequential_progress () =
  let fs = Fs.create (config ()) in
  let vol = Fs.vol fs "v" in
  let w = Sequential.create fs vol () in
  let r1 = Sequential.step w 1000 in
  check_int "first cp" 1000 r1.Cp.ops;
  check_int "cursor" 1000 (Sequential.written w);
  let _ = Sequential.step w 1000 in
  check_int "cursor advances" 2000 (Sequential.written w);
  (* sequential writes on an unaged fs produce long chains: few partials *)
  check_bool "no frees" true (r1.Cp.pvbns_freed = 0)

let () =
  Alcotest.run "wafl_workload"
    [
      ( "aging",
        [
          Alcotest.test_case "fill reaches target" `Slow test_aging_fill_reaches_target;
          Alcotest.test_case "fragment fragments" `Slow test_aging_fragment_fragments;
        ] );
      ( "random_overwrite",
        [ Alcotest.test_case "step" `Slow test_random_overwrite_step ] );
      ("oltp", [ Alcotest.test_case "mix" `Slow test_oltp_mix ]);
      ("sequential", [ Alcotest.test_case "progress" `Quick test_sequential_progress ]);
    ]
