open Wafl_bitmap
open Wafl_aa

type finding =
  | Range_score_drift of { range : int; aa : int; cached : int; actual : int }
  | Vol_score_drift of { vol : string; aa : int; cached : int; actual : int }
  | Dangling_container of { vol : string; vvbn : int; pvbn : int }
  | Cross_link of { pvbn : int; vols : string list }
  | Orphan_blocks of { count : int }

let pp_finding fmt = function
  | Range_score_drift { range; aa; cached; actual } ->
    Format.fprintf fmt "range %d AA %d: cached score %d, bitmap says %d" range aa cached actual
  | Vol_score_drift { vol; aa; cached; actual } ->
    Format.fprintf fmt "volume %s AA %d: cached score %d, bitmap says %d" vol aa cached actual
  | Dangling_container { vol; vvbn; pvbn } ->
    Format.fprintf fmt "volume %s vvbn %d points at free pvbn %d" vol vvbn pvbn
  | Cross_link { pvbn; vols } ->
    Format.fprintf fmt "pvbn %d referenced by several virtual blocks (%s)" pvbn
      (String.concat ", " vols)
  | Orphan_blocks { count } ->
    Format.fprintf fmt "%d allocated physical blocks have no volume owner" count

module Par = Wafl_par.Par

(* Pool-chunked index scan that preserves serial finding order: each
   chunk builds its findings as an ascending list (pure reads, private
   accumulator), and the chunk lists are pushed in chunk order — exactly
   the ascending sequence the serial [0, n) loop produces. *)
let scan_indices pool n ~test ~push =
  match pool with
  | Some p when Par.jobs p > 1 && n >= 32 ->
    let bounds = Par.chunk_bounds ~total:n ~align:1 ~chunks:(Par.jobs p * 4) in
    let lists =
      Par.map p ~chunks:(Array.length bounds) ~f:(fun c ->
          let s, len = bounds.(c) in
          let acc = ref [] in
          for i = s + len - 1 downto s do
            match test i with Some f -> acc := f :: !acc | None -> ()
          done;
          !acc)
    in
    Array.iter (fun l -> List.iter push l) lists
  | _ ->
    for i = 0 to n - 1 do
      match test i with Some f -> push f | None -> ()
    done

let check_body ?pool fs =
  let pool = Par.resolve pool in
  let aggregate = Fs.aggregate fs in
  let mf = Aggregate.metafile aggregate in
  let findings = ref [] in
  let push f = findings := f :: !findings in
  (* After a lazy mount, untouched ranges carry seeded (approximate)
     scores by design; materialize them before the drift scan so Iron
     compares real caches against the bitmap instead of flagging the
     seeds. *)
  Array.iter (fun r -> Rebuild.touch_range aggregate r) (Aggregate.ranges aggregate);
  Array.iter Rebuild.touch_vol (Fs.vols fs);
  (* 1. cached AA scores vs bitmap truth (pending deltas excluded: run this
        between CPs) *)
  Array.iter
    (fun (r : Aggregate.range) ->
      if Score.is_empty r.Aggregate.delta then
        scan_indices pool (Array.length r.Aggregate.scores) ~push ~test:(fun aa ->
            let cached = r.Aggregate.scores.(aa) in
            let actual = Aggregate.aa_score_now aggregate r aa in
            if cached <> actual then
              Some (Range_score_drift { range = r.Aggregate.index; aa; cached; actual })
            else None))
    (Aggregate.ranges aggregate);
  Array.iter
    (fun vol ->
      if Score.is_empty (Flexvol.delta vol) then
        scan_indices pool (Array.length (Flexvol.scores vol)) ~push ~test:(fun aa ->
            let cached = (Flexvol.scores vol).(aa) in
            let actual = Score.score_of_aa (Flexvol.topology vol) (Flexvol.metafile vol) aa in
            if cached <> actual then
              Some (Vol_score_drift { vol = Flexvol.name vol; aa; cached; actual })
            else None))
    (Fs.vols fs);
  (* 2. container references: dangling and cross-linked *)
  let owners = Hashtbl.create 4096 in
  Array.iter
    (fun vol ->
      for vvbn = 0 to Flexvol.blocks vol - 1 do
        match Flexvol.pvbn_of_vvbn vol vvbn with
        | None -> ()
        | Some pvbn ->
          if not (Metafile.is_allocated mf pvbn) then
            findings :=
              Dangling_container { vol = Flexvol.name vol; vvbn; pvbn } :: !findings;
          let prior = try Hashtbl.find owners pvbn with Not_found -> [] in
          if prior <> [] then
            findings :=
              Cross_link { pvbn; vols = Flexvol.name vol :: prior } :: !findings;
          Hashtbl.replace owners pvbn (Flexvol.name vol :: prior)
      done)
    (Fs.vols fs);
  (* 3. orphans: allocated physical blocks without a container reference.
        Pure reads ([owners] is frozen after phase 2, and concurrent
        lookups of an unmutated hashtable are safe), so the count is
        chunked over the PVBN space and summed in chunk order. *)
  let total = Aggregate.total_blocks aggregate in
  let count_orphans s len =
    let n = ref 0 in
    for pvbn = s to s + len - 1 do
      if Metafile.is_allocated mf pvbn && not (Hashtbl.mem owners pvbn) then incr n
    done;
    !n
  in
  let orphans =
    match pool with
    | Some p when Par.jobs p > 1 && total >= 4096 ->
      let bounds = Par.chunk_bounds ~total ~align:1 ~chunks:(Par.jobs p * 4) in
      let counts =
        Par.map p ~chunks:(Array.length bounds) ~f:(fun c ->
            let s, len = bounds.(c) in
            count_orphans s len)
      in
      Array.fold_left ( + ) 0 counts
    | _ -> count_orphans 0 total
  in
  if orphans > 0 then findings := Orphan_blocks { count = orphans } :: !findings;
  List.rev !findings

type authority = Bitmap_authority | Container_authority

let repair_body ?(authority = Bitmap_authority) ?pool fs =
  let pool = Par.resolve pool in
  let findings = check_body ?pool fs in
  let aggregate = Fs.aggregate fs in
  let mf = Aggregate.metafile aggregate in
  let repaired = ref 0 in
  let drifted_ranges = Hashtbl.create 8 in
  let drifted_vols = Hashtbl.create 8 in
  let container_fixes = ref 0 in
  (* findings arrive in check order — dangling references before the
     orphan summary — so under [Container_authority] the re-marked blocks
     are owned by the time the orphan rescan below runs *)
  List.iter
    (function
      | Range_score_drift { range; _ } -> Hashtbl.replace drifted_ranges range ()
      | Vol_score_drift { vol; _ } -> Hashtbl.replace drifted_vols vol ()
      | Dangling_container { vol; vvbn; pvbn } -> (
        match authority with
        | Bitmap_authority ->
          (* sever the reference; the vvbn itself is released like any other
             COW free so the space books stay balanced *)
          let v = Fs.vol fs vol in
          Flexvol.queue_unmap v ~vvbn;
          ignore (Flexvol.commit_frees v);
          incr repaired
        | Container_authority ->
          (* the namespace reached NVRAM, so it is the truth: the bitmap
             lost the allocation (torn page) — re-mark the block *)
          if not (Metafile.is_allocated mf pvbn) then Aggregate.allocate aggregate ~pvbn;
          incr repaired;
          incr container_fixes)
      | Orphan_blocks _ -> (
        match authority with
        | Bitmap_authority -> ()
        | Container_authority ->
          (* free every allocated physical block no container references;
             rescan ownership rather than trusting the pre-repair count,
             since dangling fixes above may have adopted some blocks *)
          let owners = Hashtbl.create 4096 in
          Array.iter
            (fun vol ->
              for vvbn = 0 to Flexvol.blocks vol - 1 do
                match Flexvol.pvbn_of_vvbn vol vvbn with
                | Some pvbn -> Hashtbl.replace owners pvbn ()
                | None -> ()
              done)
            (Fs.vols fs);
          (* a block with a pending delayed free is already on its way out —
             re-queueing it would trip the activemap's dedupe guard (live
             systems scrub-repaired between CPs carry such frees) *)
          let am = Aggregate.activemap aggregate in
          let freed = ref 0 in
          for pvbn = 0 to Aggregate.total_blocks aggregate - 1 do
            if
              Metafile.is_allocated mf pvbn
              && (not (Hashtbl.mem owners pvbn))
              && not (Wafl_bitmap.Activemap.has_pending_free am pvbn)
            then begin
              Aggregate.queue_free aggregate ~pvbn;
              incr freed
            end
          done;
          ignore (Aggregate.commit_frees aggregate);
          repaired := !repaired + !freed;
          incr container_fixes)
      | Cross_link _ -> ())
    findings;
  if Hashtbl.length drifted_ranges > 0 || !container_fixes > 0 then begin
    (* recompute every range's scores and rebuild the caches from truth *)
    Rebuild.request ?pool aggregate Rebuild.Full;
    repaired := !repaired + Hashtbl.length drifted_ranges
  end;
  Hashtbl.iter
    (fun vol () ->
      Rebuild.request_vol ?pool (Fs.vol fs vol);
      incr repaired)
    drifted_vols;
  (findings, !repaired)

(* Consistency checking and repair are each one [Iron] span; [repair]
   wraps its embedded check in the same span rather than nesting two. *)
let check ?pool fs =
  Wafl_telemetry.Telemetry.span_enter Wafl_telemetry.Span.Iron;
  Fun.protect
    ~finally:(fun () -> Wafl_telemetry.Telemetry.span_exit Wafl_telemetry.Span.Iron)
    (fun () -> check_body ?pool fs)

let repair ?authority ?pool fs =
  Wafl_telemetry.Telemetry.span_enter Wafl_telemetry.Span.Iron;
  Fun.protect
    ~finally:(fun () -> Wafl_telemetry.Telemetry.span_exit Wafl_telemetry.Span.Iron)
    (fun () -> repair_body ?authority ?pool fs)
