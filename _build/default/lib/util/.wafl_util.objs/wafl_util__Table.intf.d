lib/util/table.mli:
