(** AA scores and their batched maintenance (§3.3).

    The score of an AA is the number of free blocks in it, computed from
    the bitmap metafiles.  Scores decrease as the allocator consumes VBNs
    and increase as VBNs are freed; both kinds of update are accumulated
    during a CP and applied in one batch at the CP boundary. *)

val score_of_aa : Topology.t -> Wafl_bitmap.Metafile.t -> int -> int
(** Free blocks in AA [i] per the metafile. *)

val all_scores : Topology.t -> Wafl_bitmap.Metafile.t -> int array
(** Scores for every AA, by a linear walk of the bitmap (the expensive
    rebuild the TopAA metafile exists to avoid, §3.4). *)

(** {2 Wear-aware scoring} *)

val wear_quantum : int
(** Erases per wear bin (wpmfs-style binning). *)

val wear_adjusted : bias:int -> wear:int -> min_wear:int -> score:int -> int
(** Demote a cache score by [bias] units per full {!wear_quantum} bin the
    AA's wear sits above the device minimum.  Never drops a positive
    score below 1 (wear steers allocation, it must not hide free space),
    and is the identity at [bias <= 0].  Applies to cache-filed scores
    only — the free-count score arrays stay exact. *)

(** {2 Batched deltas} *)

type delta
(** Accumulates per-AA score changes during one CP. *)

val create_delta : Topology.t -> delta

val note_alloc : delta -> vbn:int -> unit
(** A VBN was allocated: its AA's score will drop by one. *)

val note_alloc_aa : delta -> aa:int -> unit
(** {!note_alloc} for callers that already know the VBN's AA (the
    write allocator's harvest rings hold whole-AA batches): skips the
    VBN->AA division on the per-block hot path. *)

val note_free : delta -> vbn:int -> unit
(** A VBN was freed: its AA's score will rise by one. *)

val is_empty : delta -> bool

val mem : delta -> aa:int -> bool
(** Whether the AA has a pending non-zero net change, i.e. whether the next
    {!apply} will emit an update for it.  O(1), allocation-free. *)

val fold : delta -> init:'a -> f:('a -> aa:int -> change:int -> 'a) -> 'a
(** Visit every AA with a non-zero net change. *)

val merge_into : src:delta -> dst:delta -> unit
(** Fold [src]'s pending changes into [dst] and clear [src].  The deltas
    must cover AA spaces of the same size.  Used to merge per-domain
    accumulators produced by the parallel allocation front-end into the
    range's CP delta — the merged result equals having bumped [dst]
    directly. *)

val apply : delta -> int array -> (int * int) list
(** Apply to a score array in place; returns [(aa, new_score)] for each
    changed AA (input to the cache rebalance) and clears the accumulator. *)

val clear : delta -> unit
