lib/block/vbn.ml: Format Int
