lib/util/histo.mli:
