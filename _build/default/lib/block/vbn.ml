type phys = |
type virt = |

type 'a t = int

let of_int n =
  assert (n >= 0);
  n

let to_int n = n
let phys n = of_int n
let virt n = of_int n

let add n k =
  let r = n + k in
  assert (r >= 0);
  r

let diff a b = a - b
let compare = Int.compare
let equal = Int.equal
let pp fmt n = Format.fprintf fmt "vbn:%d" n
