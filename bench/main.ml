(* Benchmark harness: one section per paper table/figure plus bechamel
   microbenchmarks of the AA-cache data structures.

   Usage:
     bench/main.exe               run everything at quick scale
     bench/main.exe full          run everything at full scale
     bench/main.exe micro         microbenchmarks only
     bench/main.exe telemetry     telemetry overhead (pick path + end-to-end)
     bench/main.exe fig6|fig7|fig8|fig9|fig10|scalars [full]
*)

open Bechamel
open Toolkit
open Wafl_experiments

(* --- microbenchmarks: the §3.3 data-structure operations --- *)

let n_aas = 100_000
let max_score = 32_768

let scores seed = Array.init n_aas (fun i -> (i * seed) mod (max_score + 1))

let heap_take_and_refile () =
  let h = Wafl_aacache.Max_heap.of_scores (scores 7919) in
  Staged.stage (fun () ->
      match Wafl_aacache.Max_heap.extract_best h with
      | Some (aa, _) -> Wafl_aacache.Max_heap.insert h ~aa ~score:(aa mod max_score)
      | None -> ())

let heap_update () =
  let h = Wafl_aacache.Max_heap.of_scores (scores 7919) in
  let i = ref 0 in
  Staged.stage (fun () ->
      i := (!i + 7919) mod n_aas;
      Wafl_aacache.Max_heap.update h ~aa:!i ~score:((!i * 31) mod max_score))

let hbps_take_and_refile () =
  let h = Wafl_aacache.Hbps.create ~max_score ~scores:(scores 104729) () in
  Wafl_aacache.Hbps.replenish h;
  Staged.stage (fun () ->
      match Wafl_aacache.Hbps.take_best h with
      | Some (aa, _) -> Wafl_aacache.Hbps.update h ~aa ~score:(aa mod max_score)
      | None -> Wafl_aacache.Hbps.replenish h)

let hbps_update () =
  let h = Wafl_aacache.Hbps.create ~max_score ~scores:(scores 104729) () in
  Wafl_aacache.Hbps.replenish h;
  let i = ref 0 in
  Staged.stage (fun () ->
      i := (!i + 104729) mod n_aas;
      Wafl_aacache.Hbps.update h ~aa:!i ~score:((!i * 17) mod max_score))

let full_sort_baseline () =
  (* the strawman HBPS replaces: fully sorting all AAs to find the best *)
  let s = scores 7919 in
  Staged.stage (fun () ->
      let copy = Array.copy s in
      Array.sort (fun a b -> Int.compare b a) copy;
      ignore copy.(0))

let hbps_replenish () =
  let h = Wafl_aacache.Hbps.create ~max_score ~scores:(scores 104729) () in
  Staged.stage (fun () -> Wafl_aacache.Hbps.replenish h)

let micro_tests =
  Test.make_grouped ~name:"aa-cache"
    [
      Test.make ~name:"max-heap take+refile (100k AAs)" (heap_take_and_refile ());
      Test.make ~name:"max-heap update" (heap_update ());
      Test.make ~name:"hbps take+refile (100k AAs)" (hbps_take_and_refile ());
      Test.make ~name:"hbps update" (hbps_update ());
      Test.make ~name:"hbps replenish scan" (hbps_replenish ());
      Test.make ~name:"full-sort baseline" (full_sort_baseline ());
    ]

let run_micro () =
  print_endline "\n================================================================";
  print_endline "Microbenchmarks: HBPS vs max-heap vs full sort (ns/op)";
  print_endline "================================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances micro_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-52s %12.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "  %-52s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* --- telemetry overhead on the pick path ---

   The same take+refile loop as the microbenchmarks, run through the
   Cache layer under three configurations: telemetry uninstalled,
   installed with tracing off, and installed with tracing on.  The first
   two must be indistinguishable (the emitters reduce to one match on a
   global ref); tracing on is allowed a small ring-buffer push cost. *)

let bench_pick_loop cache iters =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    match Wafl_aacache.Cache.take_best cache with
    | Some (aa, _) -> Wafl_aacache.Cache.cp_update cache [ (aa, aa mod max_score) ]
    | None -> ()
  done;
  Unix.gettimeofday () -. t0

let run_telemetry_overhead () =
  print_endline "\n================================================================";
  print_endline "Telemetry overhead: Cache.take_best + cp_update re-file (ns/op)";
  print_endline "================================================================";
  let iters = 300_000 in
  let fresh () = Wafl_aacache.Cache.raid_aware ~scores:(scores 7919) () in
  let time_config label configure =
    let cache = fresh () in
    ignore (bench_pick_loop cache (iters / 10)) (* warm up *);
    let secs = configure (fun () -> bench_pick_loop (fresh ()) iters) in
    let ns = secs /. float_of_int iters *. 1e9 in
    (label, ns)
  in
  let off = time_config "telemetry uninstalled" (fun f -> f ()) in
  let installed =
    time_config "installed, tracing off" (fun f ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ())
          f)
  in
  let tracing =
    time_config "installed, tracing on" (fun f ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ~tracing:true ())
          f)
  in
  let base = snd off in
  List.iter
    (fun (label, ns) ->
      Printf.printf "  %-28s %10.1f ns/op   (%+.1f%% vs uninstalled)\n" label ns
        ((ns -. base) /. base *. 100.0))
    [ off; installed; tracing ];
  (* End-to-end: CP throughput of a sequential write workload, where the
     pick path is one small component.  This is the number the <5%
     regression budget applies to. *)
  print_endline "";
  print_endline "End-to-end: sequential workload, 30 CPs x 1000 blocks (blocks/s)";
  let run_workload () =
    let open Wafl_core in
    let rg = Common.hdd_raid_group Common.Quick in
    let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
    let config =
      Config.make ~raid_groups:[ rg ]
        ~vols:
          [ { Config.name = "seq"; blocks = agg_blocks; aa_blocks = None;
              policy = Config.Best_aa } ]
        ~aggregate_policy:Config.Best_aa ~seed:7 ()
    in
    let fs = Fs.create config in
    let workload = Wafl_workload.Sequential.create fs (Fs.vol fs "seq") () in
    let t0 = Unix.gettimeofday () in
    let blocks = ref 0 in
    for _ = 1 to 30 do
      let r = Wafl_workload.Sequential.step workload 1000 in
      blocks := !blocks + r.Cp.blocks_allocated
    done;
    float_of_int !blocks /. (Unix.gettimeofday () -. t0)
  in
  ignore (run_workload ()) (* warm up *);
  ignore (run_workload ());
  (* best-of-3 per configuration: the workload is deterministic, so the
     fastest run is the least noise-polluted one *)
  let best f = List.fold_left (fun acc _ -> Float.max acc (f ())) 0.0 [ (); (); () ] in
  let e2e_off = best run_workload in
  let e2e_installed =
    best (fun () ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ())
          run_workload)
  in
  let e2e_tracing =
    best (fun () ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ~tracing:true ())
          run_workload)
  in
  List.iter
    (fun (label, rate) ->
      Printf.printf "  %-28s %12.0f blocks/s (%+.1f%% vs uninstalled)\n" label rate
        ((e2e_off -. rate) /. e2e_off *. -100.0))
    [
      ("telemetry uninstalled", e2e_off);
      ("installed, tracing off", e2e_installed);
      ("installed, tracing on", e2e_tracing);
    ]

let () =
  let args = Array.to_list Sys.argv in
  let scale = if List.mem "full" args then Common.Full else Common.Quick in
  let has name = List.mem name args in
  let specific =
    [ "micro"; "telemetry"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "scalars"; "ablation" ]
  in
  let run_all = not (List.exists (fun a -> List.mem a specific) args) in
  if run_all || has "fig6" then Fig6.print (Fig6.run ~scale ());
  if run_all || has "fig7" then Fig7.print (Fig7.run ~scale ());
  if run_all || has "fig8" then Fig8.print (Fig8.run ~scale ());
  if run_all || has "fig9" then Fig9.print (Fig9.run ~scale ());
  if run_all || has "fig10" then Fig10.print (Fig10.run ~scale ());
  if run_all || has "scalars" then Scalars.print (Scalars.run ~scale ());
  if run_all || has "ablation" then Ablation.print (Ablation.run ~scale ());
  if run_all || has "micro" then run_micro ();
  if run_all || has "telemetry" then run_telemetry_overhead ()
