(** Configuration of a simulated ONTAP system: the aggregate's physical
    ranges and the FlexVols layered on it (§2.1). *)

type media =
  | Hdd of Wafl_device.Profile.hdd
  | Ssd of Wafl_device.Profile.ssd
  | Smr of Wafl_device.Profile.smr

type raid_group_spec = {
  media : media;
  data_devices : int;
  parity_devices : int;
  device_blocks : int;   (** 4KiB blocks per device *)
  aa_stripes : int option;
      (** AA size override; [None] picks the media default (§3.2) *)
}

type object_range_spec = {
  profile : Wafl_device.Profile.object_store;
  blocks : int;
  aa_blocks : int option;  (** default: 32k *)
}

type allocation_policy =
  | Best_aa        (** AA cache enabled: always the emptiest AA (§3.1) *)
  | Random_aa      (** cache disabled: uniformly random AA — the paper's
                       baseline in §4.1 *)
  | First_fit      (** lowest-numbered AA with any free space — the classic
                       linear-scan strawman *)

type vol_spec = {
  name : string;
  blocks : int;               (** virtual VBN space size *)
  aa_blocks : int option;     (** default 32k *)
  policy : allocation_policy; (** for virtual VBN selection *)
}

type stream_spec = {
  temp_classes : int;
      (** write-temperature classes the allocator routes separately:
          1 = no segregation (default), 2 = hot/other, 3 = hot/warm/cold,
          4 = hot/warm/cold/metafile *)
  ssd_streams : int;
      (** write streams each SSD FTL is created with (1..8); the device's
          open-erase-block budget is partitioned across them *)
  wear_bias : int;
      (** wear-aware AA scoring strength: each wear bin above the device
          minimum costs an AA [wear_bias] score units at cache-update time
          (0 = wear-blind, the default) *)
  meta_file : int option;
      (** file id treated as metafile traffic (routed to the coldest /
          dedicated class) regardless of inferred temperature *)
}

val default_streams : stream_spec
(** [{temp_classes = 1; ssd_streams = 1; wear_bias = 0; meta_file = None}] —
    exactly the pre-segregation behavior. *)

val set_default_streams : stream_spec -> unit
(** Process-wide default used by {!make} when [?streams] is omitted — the
    hook the [--temp-classes]/[--streams]/[--wear-bias] CLI flags use so
    experiment-built configs inherit them. *)

val current_default_streams : unit -> stream_spec

val with_default_streams : stream_spec -> (unit -> 'a) -> 'a
(** Run [f] with the default swapped in, restoring it after. *)

type t = {
  raid_groups : raid_group_spec list;
  object_ranges : object_range_spec list;
  vols : vol_spec list;
  aggregate_policy : allocation_policy;
  rg_score_threshold : int option;
      (** skip a RAID group whose best AA score is below this (§3.3.1) *)
  streams : stream_spec;
  seed : int;
}

val default_raid_group : raid_group_spec
(** 6+1 HDD, 64k blocks/device, default AA sizing. *)

val default_vol : name:string -> blocks:int -> vol_spec

val make :
  ?raid_groups:raid_group_spec list ->
  ?object_ranges:object_range_spec list ->
  ?vols:vol_spec list ->
  ?aggregate_policy:allocation_policy ->
  ?rg_score_threshold:int ->
  ?streams:stream_spec ->
  ?seed:int ->
  unit ->
  t
(** @raise Invalid_argument when [streams] is out of range
    ([temp_classes] outside 1..4, [ssd_streams] outside 1..8, negative
    [wear_bias]).  When [?streams] is omitted the process-wide default
    ({!set_default_streams}) applies. *)

val aa_stripes_for : raid_group_spec -> int
(** The spec's override or the §3.2 media default, clamped to the group's
    stripe count. *)

val media_name : media -> string
