(** Write-chain accounting.

    A write chain is a run of consecutive blocks written to one device with a
    single I/O (§2.4).  Given the set of device block numbers written during
    a flush, this module reconstructs the chains and summarizes their
    lengths — the key efficiency signal for both HDD flush cost and
    subsequent sequential-read performance. *)

type summary = {
  chains : int;        (** number of distinct chains (i.e. device I/Os) *)
  blocks : int;        (** total blocks written *)
  mean_len : float;    (** blocks per chain *)
  max_len : int;
  min_len : int;
}

val of_blocks : int list -> summary
(** Chains of a non-empty, possibly unsorted list of block numbers; duplicate
    numbers are counted once. *)

val of_extents : Extent.t list -> summary
(** Chains of a coalesced view of the given extents (must be non-empty). *)

val empty : summary
(** Zero blocks, zero chains. *)

val pp : Format.formatter -> summary -> unit
