.PHONY: all build test check bench fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

# what CI runs
check: build test

bench:
	dune exec bench/main.exe

# ocamlformat is optional locally; `dune fmt` no-ops politely without it
fmt:
	-dune fmt

clean:
	dune clean
