open Wafl_bitmap
open Wafl_aa
open Wafl_aacache
open Wafl_telemetry

type report = { aas_cleaned : int; blocks_relocated : int; blocks_reclaimed : int }

type strategy = Emptiest_first | Fullest_first

(* Reverse map pvbn -> (vol, vvbn), built by scanning container maps. *)
let reverse_map fs =
  let map = Hashtbl.create 4096 in
  Array.iter
    (fun vol ->
      for vvbn = 0 to Flexvol.blocks vol - 1 do
        match Flexvol.pvbn_of_vvbn vol vvbn with
        | Some pvbn -> Hashtbl.replace map pvbn (vol, vvbn)
        | None -> ()
      done)
    (Fs.vols fs);
  map

let in_use_pvbns aggregate (range : Aggregate.range) aa =
  let mf = Aggregate.metafile aggregate in
  let acc = ref [] in
  Topology.iter_aa_vbns range.Aggregate.topology aa ~f:(fun local ->
      let pvbn = Aggregate.to_global range local in
      if Metafile.is_allocated mf pvbn then acc := pvbn :: !acc);
  List.rev !acc

(* The worst (fullest, but not entirely full) AA per the score array,
   skipping AAs already picked this pass; used by the Fullest_first
   comparison strategy. *)
let fullest_cleanable (range : Aggregate.range) ~picked =
  let best = ref None in
  Array.iteri
    (fun aa score ->
      let capacity = Wafl_aa.Topology.aa_capacity range.Aggregate.topology aa in
      if score < capacity && not (Hashtbl.mem picked aa) then begin
        match !best with
        | Some (_, s) when s <= score -> ()
        | Some _ | None -> best := Some (aa, score)
      end)
    range.Aggregate.scores;
  !best

let clean_fs_body ?(strategy = Emptiest_first) fs ~aas_per_range =
  let aggregate = Fs.aggregate fs in
  let walloc = Fs.write_alloc fs in
  let owners = reverse_map fs in
  let activemap = Aggregate.activemap aggregate in
  let aas_cleaned = ref 0 in
  let relocated = ref 0 in
  let reclaimed = ref 0 in
  let one = Array.make 1 0 in
  Array.iter
    (fun (r : Aggregate.range) ->
      Wafl_fault.Crash.point "cleaner.range_pass";
      (* cleaner pass counts as a first touch on a lazily mounted range *)
      Rebuild.touch_range aggregate r;
      match r.Aggregate.cache with
      | None -> ()
      | Some cache ->
        let picked = Hashtbl.create 8 in
        for _ = 1 to aas_per_range do
          let pick =
            match strategy with
            | Emptiest_first -> Cache.take_best cache
            | Fullest_first -> fullest_cleanable r ~picked
          in
          match pick with
          | None -> ()
          | Some (aa, _score) ->
            Hashtbl.replace picked aa ();
            incr aas_cleaned;
            let victims = in_use_pvbns aggregate r aa in
            List.iter
              (fun old_pvbn ->
                if not (Activemap.has_pending_free activemap old_pvbn) then begin
                  match Hashtbl.find_opt owners old_pvbn with
                  | Some (vol, vvbn) -> (
                    (* the allocator's queue may still hold free blocks of
                       the very AA being cleaned; skip those targets (they
                       are queued free again and die at the next CP) *)
                    let rec allocate_outside attempts =
                      if attempts = 0 then None
                      else begin
                        match Write_alloc.allocate_pvbns_into walloc ~dst:one 1 with
                        | 1 ->
                          let candidate = one.(0) in
                          let cr = Aggregate.range_of_pvbn aggregate candidate in
                          if
                            cr.Aggregate.index = r.Aggregate.index
                            && Topology.aa_of_vbn r.Aggregate.topology
                                 (Aggregate.to_local r candidate)
                               = aa
                          then begin
                            Aggregate.queue_free aggregate ~pvbn:candidate;
                            allocate_outside (attempts - 1)
                          end
                          else Some candidate
                        | _ -> None
                      end
                    in
                    match allocate_outside 16 with
                    | Some new_pvbn ->
                      (* same virtual block, new physical home *)
                      let previous = Flexvol.remap_vvbn vol ~vvbn ~pvbn:new_pvbn in
                      assert (previous = old_pvbn);
                      Aggregate.queue_free aggregate ~pvbn:old_pvbn;
                      incr relocated
                    | None -> ())
                  | None ->
                    (* block not owned by any volume (e.g. direct aggregate
                       allocation in tests): drop it outright *)
                    Aggregate.queue_free aggregate ~pvbn:old_pvbn;
                    incr reclaimed
                end)
              victims
        done)
    (Aggregate.ranges aggregate);
  Telemetry.trace_cleaner_pass ~aas:!aas_cleaned ~relocated:!relocated ~reclaimed:!reclaimed;
  Telemetry.incr "cleaner.passes";
  Telemetry.add "cleaner.aas_cleaned" !aas_cleaned;
  Telemetry.add "cleaner.blocks_relocated" !relocated;
  Telemetry.add "cleaner.blocks_reclaimed" !reclaimed;
  { aas_cleaned = !aas_cleaned; blocks_relocated = !relocated; blocks_reclaimed = !reclaimed }

(* Each cleaner pass over the aggregate is one [Cleaner] span. *)
let clean_fs ?strategy fs ~aas_per_range =
  Telemetry.span_enter Span.Cleaner;
  Fun.protect
    ~finally:(fun () -> Telemetry.span_exit Span.Cleaner)
    (fun () -> clean_fs_body ?strategy fs ~aas_per_range)
