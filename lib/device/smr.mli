(** Drive-managed shingled magnetic recording (SMR) drive model.

    Tracks in a shingle zone overlap, so writing a block in the middle of a
    zone that already has data written beyond that position corrupts the
    following tracks unless the drive intervenes — either reading and
    rewriting the tail of the zone in place, or relocating out of place
    (§3.2.3).  We model the in-place variant: such a write pays a
    read-modify-write of every block between the write position and the
    zone's write pointer.  Purely ascending writes within a zone are cheap
    appends; jumps between non-adjacent positions pay a seek. *)

type t

type stats = {
  blocks_written : int;
  sequential_writes : int;   (** writes adjacent to the previous position *)
  random_writes : int;       (** writes that required repositioning *)
  rmw_blocks : int;          (** blocks rewritten by zone read-modify-write *)
  total_us : float;          (** accumulated device time *)
}

val create : ?profile:Profile.smr -> blocks:int -> unit -> t

val blocks : t -> int
val profile : t -> Profile.smr
val zones : t -> int

val set_fault : t -> Wafl_fault.Fault.device option -> unit
(** Attach (or detach) a fault-injection handle; {!write} consults it per
    block.  Failed writes are dropped (no head movement, no pointer
    advance); torn writes pay the full mechanical cost. *)

val fault : t -> Wafl_fault.Fault.device option

val zone_of_block : t -> int -> int
val write_pointer : t -> zone:int -> int
(** Highest written position + 1 within the zone (0 = empty zone). *)

val write : t -> int -> unit
(** Write one block at the given position. *)

val write_stream : t -> int list -> unit
(** Write a sequence of positions in order. *)

val reset_zone : t -> zone:int -> unit
(** Model the drive (or host trim) recycling a zone. *)

val stats : t -> stats
val reset_stats : t -> unit
