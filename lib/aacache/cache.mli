(** Unified AA-cache interface over the two implementations (§3.3).

    A cache is either a RAID-aware max-heap over all AAs of a RAID group or
    a RAID-agnostic HBPS; {!backend} exposes the closed variant for the few
    callers (mount seeding, TopAA persistence) that need the concrete
    structure.  Besides dispatch, this layer accounts for everything the
    telemetry subsystem consumes — the abstract work each cache performs
    (comparisons/moves, backing the §4.1.2 observation that cache
    maintenance is a vanishing fraction of CPU) and, for an HBPS, an upper
    bound on the pick's score error versus the histogram's best populated
    bin (the §3.3 ≤ bin_width/max_score = 3.125% guarantee). *)

type t

type backend =
  | Raid_aware of Max_heap.t     (** max-heap over all AAs (index = AA id) *)
  | Raid_agnostic of Hbps.t      (** two-page histogram-based partial sort *)

type stats = {
  picks : int;
  updates : int;
  replenishes : int;
  work : int;  (** abstract unit operations: sift steps, bin moves, scan items *)
  entries : int;  (** AAs currently offerable (heap size / HBPS list count) *)
  score_error_last : float;
      (** upper bound on the last HBPS pick's score deficit versus the best
          populated histogram bin, as a fraction of [max_score]; 0.0 for a
          RAID-aware cache (its pick is exact) *)
  score_error_max : float;  (** worst [score_error_last] since the last reset *)
}

val make : ?space:int -> backend -> t
(** Wrap a backend (e.g. one seeded from a TopAA block, §3.4).  [space]
    labels the cache in telemetry events: physical ranges pass their range
    index, FlexVols the default [-1]. *)

val backend : t -> backend
val space : t -> int

val raid_aware : ?space:int -> scores:int array -> unit -> t
(** Fresh max-heap over all AAs. *)

val raid_agnostic :
  ?space:int ->
  ?bin_width:int ->
  ?capacity:int ->
  max_score:int ->
  scores:int array ->
  unit ->
  t

val take_best : t -> (int * int) option
(** Best (or near-best, for HBPS) AA, removed from the cache until its
    CP-boundary score update re-files it. *)

val take_best_filtered : t -> keep:(int -> bool) -> (int * int) option
(** {!take_best} restricted to AAs satisfying [keep] — the claim-aware
    pick of the concurrent allocation front-end: AAs owned by another
    writer are skipped without losing score order (heap entries rejected
    on the way are reinserted; HBPS scans the list page in stored
    order).  Accounting matches {!take_best}. *)

val peek_best_score : t -> int option
(** Best available score without consuming (used for the RAID-group
    fragmentation throttle, §3.3.1). *)

val best_score : t -> int
(** Like {!peek_best_score} but 0 when the cache is empty and never boxes
    an option — the write allocator's per-call range weighting stays
    allocation-free. *)

val cp_update : t -> (int * int) list -> unit
(** CP-boundary batch: apply [(aa, new_score)] pairs and rebalance; for an
    HBPS, also replenish when the list is dry or stale. *)

val stats : t -> stats
val reset_stats : t -> unit
