(** CRC-32 (IEEE 802.3 polynomial), used to protect persisted metafile
    blocks such as the TopAA pages (§3.4) against corruption. *)

val crc32 : Bytes.t -> pos:int -> len:int -> int32
(** CRC of a byte range. *)

val crc32_all : Bytes.t -> int32

val crc32_get : get:(int -> int) -> pos:int -> len:int -> int32
(** CRC of bytes [pos .. pos+len-1] read through [get] (each call must
    return 0..255).  Lets callers checksum off-heap page stores in place;
    [get] is not bounds-checked here — callers are. *)

val crc32_string : string -> int32
