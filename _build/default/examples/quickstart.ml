(* Quickstart: build a small ONTAP-like system, write some data, watch a
   consistency point allocate blocks through the AA caches.

   Run with: dune exec examples/quickstart.exe *)

open Wafl_core

let () =
  (* An aggregate of one 4+1 HDD RAID group and one FlexVol. *)
  let raid_group =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 16384;           (* 64MiB per device at 4KiB blocks *)
      aa_stripes = Some 1024;          (* 16 allocation areas per group *)
    }
  in
  let config =
    Config.make ~raid_groups:[ raid_group ]
      ~vols:[ Config.default_vol ~name:"home" ~blocks:65536 ]
      ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "home" in

  (* Stage a thousand 4KiB file-block writes and flush them as one CP. *)
  for offset = 0 to 999 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  Printf.printf "first CP:   %d ops, %d blocks placed, %d metafile pages, %d full stripes\n"
    report.Cp.ops report.Cp.blocks_allocated
    (report.Cp.agg_metafile_pages + report.Cp.vol_metafile_pages)
    (List.fold_left (fun a d -> a + d.Cp.full_stripes) 0 report.Cp.devices);

  (* Overwrite half of them: COW frees the old blocks at the next CP. *)
  for offset = 0 to 499 do
    Fs.stage_write fs ~vol ~file:1 ~offset
  done;
  let report = Fs.run_cp fs in
  Printf.printf "overwrite:  %d blocks placed, %d physical + %d virtual blocks freed\n"
    report.Cp.blocks_allocated report.Cp.pvbns_freed report.Cp.vvbns_freed;

  (* Peek at the RAID-aware AA cache: the allocator consumes the emptiest
     area first, so the best score stays high. *)
  let range = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  (match range.Aggregate.cache with
  | Some cache ->
    (match Wafl_aacache.Cache.peek_best_score cache with
    | Some score ->
      Printf.printf "best AA:    %d free blocks of %d\n" score
        (Wafl_aa.Topology.full_aa_capacity range.Aggregate.topology)
    | None -> ())
  | None -> ());

  (* Every file block is reachable through its virtual->physical mapping. *)
  let mapped = ref 0 in
  for offset = 0 to 999 do
    match Flexvol.read_file vol ~file:1 ~offset with
    | Some vvbn -> (
      match Flexvol.pvbn_of_vvbn vol vvbn with Some _ -> incr mapped | None -> ())
    | None -> ()
  done;
  Printf.printf "file state: %d/1000 blocks mapped through vVBN -> pVBN\n" !mapped;
  Printf.printf "aggregate:  %.1f%% used after %d CPs\n"
    (100.0 *. Aggregate.used_fraction (Fs.aggregate fs))
    (Fs.cps_completed fs)
