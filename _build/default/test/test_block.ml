(* Tests for Wafl_block: units, vbn, extent, chain. *)

open Wafl_block

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Units --- *)

let test_units_constants () =
  check_int "block size" 4096 Units.block_size;
  check_int "bits per metafile block" 32768 Units.bits_per_metafile_block;
  check_int "default raid-agnostic AA" 32768 Units.default_raid_agnostic_aa_blocks;
  check_int "default HDD AA stripes" 4096 Units.default_hdd_aa_stripes;
  check_int "tetris stripes" 64 Units.tetris_stripes;
  check_int "azcs region" 64 Units.azcs_region_blocks;
  check_int "azcs data" 63 Units.azcs_data_blocks

let test_units_conversion () =
  check_int "blocks of 4096 bytes" 1 (Units.blocks_of_bytes 4096);
  check_int "blocks of 4097 bytes" 2 (Units.blocks_of_bytes 4097);
  check_int "bytes of 2 blocks" 8192 (Units.bytes_of_blocks 2);
  (* the paper's example: a 16TiB device has 4G blocks... actually 1G *)
  check_int "16TiB = 4G blocks / 4" (4 * 1024 * 1024 * 1024)
    (Units.blocks_of_bytes (16 * Units.tib))

let test_units_paper_example () =
  (* §3.3.1's example: a 16TiB device and ~1M default-sized AAs.  The paper
     states "16TiB/4KiB = 1G VBNs", but 16TiB/4KiB is 4G; 4G/4k = 1M AAs is
     the figure consistent with the 1M-AA / ~1MiB-of-memory conclusion. *)
  let vbns = 16 * Units.tib / Units.block_size in
  check_int "4G VBNs" (4 * 1024 * 1024 * 1024) vbns;
  check_int "1M AAs" (1024 * 1024) (vbns / Units.default_hdd_aa_stripes)

(* --- Vbn --- *)

let test_vbn_roundtrip () =
  let v = Vbn.phys 12345 in
  check_int "to_int" 12345 (Vbn.to_int v);
  check_bool "equal" true (Vbn.equal v (Vbn.phys 12345));
  check_int "add" 12350 (Vbn.to_int (Vbn.add v 5));
  check_int "diff" 5 (Vbn.diff (Vbn.phys 10) (Vbn.phys 5))

let test_vbn_compare () =
  check_bool "lt" true (Vbn.compare (Vbn.virt 1) (Vbn.virt 2) < 0);
  check_bool "eq" true (Vbn.compare (Vbn.virt 2) (Vbn.virt 2) = 0)

(* --- Extent --- *)

let ext s l = Extent.make ~start:s ~len:l

let test_extent_basics () =
  let e = ext 10 5 in
  check_int "start" 10 (Extent.start e);
  check_int "len" 5 (Extent.len e);
  check_int "last" 14 (Extent.last e);
  check_bool "mem start" true (Extent.mem e 10);
  check_bool "mem last" true (Extent.mem e 14);
  check_bool "not mem below" false (Extent.mem e 9);
  check_bool "not mem above" false (Extent.mem e 15)

let test_extent_overlap_adjacent () =
  check_bool "overlap" true (Extent.overlap (ext 0 10) (ext 5 10));
  check_bool "no overlap" false (Extent.overlap (ext 0 5) (ext 5 5));
  check_bool "adjacent" true (Extent.adjacent (ext 0 5) (ext 5 5));
  check_bool "not adjacent" false (Extent.adjacent (ext 0 5) (ext 6 5))

let test_extent_merge () =
  (match Extent.merge (ext 0 5) (ext 5 5) with
  | Some m ->
    check_int "merged start" 0 (Extent.start m);
    check_int "merged len" 10 (Extent.len m)
  | None -> Alcotest.fail "adjacent should merge");
  check_bool "disjoint no merge" true (Extent.merge (ext 0 5) (ext 6 5) = None)

let test_extent_split_take () =
  (match Extent.split_at (ext 0 10) 4 with
  | Some (a, b) ->
    check_int "left len" 4 (Extent.len a);
    check_int "right start" 4 (Extent.start b);
    check_int "right len" 6 (Extent.len b)
  | None -> Alcotest.fail "split inside");
  check_bool "split at boundary" true (Extent.split_at (ext 0 10) 0 = None);
  check_bool "split past end" true (Extent.split_at (ext 0 10) 10 = None);
  let taken, rest = Extent.take (ext 0 10) 3 in
  check_int "take len" 3 (Extent.len taken);
  (match rest with
  | Some r -> check_int "rest len" 7 (Extent.len r)
  | None -> Alcotest.fail "rest expected");
  let taken2, rest2 = Extent.take (ext 0 10) 15 in
  check_int "take all" 10 (Extent.len taken2);
  check_bool "no rest" true (rest2 = None)

let test_extent_coalesce () =
  let merged = Extent.coalesce [ ext 10 5; ext 0 5; ext 5 5; ext 20 2 ] in
  check_int "two extents" 2 (List.length merged);
  check_int "total preserved" 17 (Extent.total_len merged);
  match merged with
  | [ a; b ] ->
    check_int "first spans 0..14" 15 (Extent.len a);
    check_int "second is 20..21" 20 (Extent.start b)
  | _ -> Alcotest.fail "unexpected shape"

let prop_coalesce_preserves_coverage =
  QCheck.Test.make ~name:"coalesce preserves covered set" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 100) (int_range 1 10)))
    (fun pairs ->
      let extents = List.map (fun (s, l) -> ext s l) pairs in
      let covered es =
        let set = Hashtbl.create 64 in
        List.iter
          (fun e ->
            for i = Extent.start e to Extent.last e do
              Hashtbl.replace set i ()
            done)
          es;
        Hashtbl.fold (fun k () acc -> k :: acc) set [] |> List.sort compare
      in
      let before = covered extents and after = covered (Extent.coalesce extents) in
      before = after)

let prop_coalesce_disjoint =
  QCheck.Test.make ~name:"coalesced extents are disjoint and non-adjacent" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 100) (int_range 1 10)))
    (fun pairs ->
      let extents = List.map (fun (s, l) -> ext s l) pairs in
      let merged = Extent.coalesce extents in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          Extent.last a + 1 < Extent.start b && ok rest
        | _ -> true
      in
      ok merged)

(* --- Chain --- *)

let test_chain_single_run () =
  let s = Chain.of_blocks [ 3; 1; 2; 0; 4 ] in
  check_int "one chain" 1 s.Chain.chains;
  check_int "five blocks" 5 s.Chain.blocks;
  check_int "max" 5 s.Chain.max_len

let test_chain_fragmented () =
  let s = Chain.of_blocks [ 0; 2; 4; 6 ] in
  check_int "four chains" 4 s.Chain.chains;
  Alcotest.(check (float 1e-9)) "mean 1" 1.0 s.Chain.mean_len

let test_chain_duplicates () =
  let s = Chain.of_blocks [ 1; 1; 2; 2 ] in
  check_int "dupes collapse" 2 s.Chain.blocks;
  check_int "one chain" 1 s.Chain.chains

let test_chain_mixed () =
  let s = Chain.of_blocks [ 10; 11; 12; 20; 30; 31 ] in
  check_int "three chains" 3 s.Chain.chains;
  check_int "blocks" 6 s.Chain.blocks;
  check_int "max 3" 3 s.Chain.max_len;
  check_int "min 1" 1 s.Chain.min_len

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_coalesce_preserves_coverage; prop_coalesce_disjoint ]
  in
  Alcotest.run "wafl_block"
    [
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_units_constants;
          Alcotest.test_case "conversion" `Quick test_units_conversion;
          Alcotest.test_case "paper example" `Quick test_units_paper_example;
        ] );
      ( "vbn",
        [
          Alcotest.test_case "roundtrip" `Quick test_vbn_roundtrip;
          Alcotest.test_case "compare" `Quick test_vbn_compare;
        ] );
      ( "extent",
        [
          Alcotest.test_case "basics" `Quick test_extent_basics;
          Alcotest.test_case "overlap/adjacent" `Quick test_extent_overlap_adjacent;
          Alcotest.test_case "merge" `Quick test_extent_merge;
          Alcotest.test_case "split/take" `Quick test_extent_split_take;
          Alcotest.test_case "coalesce" `Quick test_extent_coalesce;
        ]
        @ qsuite );
      ( "chain",
        [
          Alcotest.test_case "single run" `Quick test_chain_single_run;
          Alcotest.test_case "fragmented" `Quick test_chain_fragmented;
          Alcotest.test_case "duplicates" `Quick test_chain_duplicates;
          Alcotest.test_case "mixed" `Quick test_chain_mixed;
        ] );
    ]
