type objective = { name : string; threshold_ms : float; target : float }

let objective ~name ~threshold_ms ~target =
  if String.length name = 0 then Error "SLO name must be non-empty"
  else if String.contains name ':' then
    Error (Printf.sprintf "SLO name %S must not contain ':'" name)
  else if not (threshold_ms > 0.) then
    Error
      (Printf.sprintf "SLO %s: threshold must be > 0 ms (got %g)" name
         threshold_ms)
  else if not (target > 0. && target < 1.) then
    Error
      (Printf.sprintf
         "SLO %s: target must be a fraction in (0,1), e.g. 0.99 (got %g)" name
         target)
  else Ok { name; threshold_ms; target }

let objective_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad SLO spec %S: expected NAME:MS:TARGET, e.g. writes:5:0.99 \
          (95%% of ops under 5 ms would be writes:5:0.95)"
         s)
  in
  match String.split_on_char ':' s with
  | [ name; ms; tgt ] -> (
      match (float_of_string_opt ms, float_of_string_opt tgt) with
      | Some threshold_ms, Some target -> objective ~name ~threshold_ms ~target
      | _ -> fail ())
  | _ -> fail ()

let objective_to_string o =
  Printf.sprintf "%s:%g:%g" o.name o.threshold_ms o.target

(* Circular per-CP windows of (ops, violations). *)
type win = {
  w_ops : int array;
  w_viol : int array;
  mutable w_idx : int;
  mutable w_sum_ops : int;
  mutable w_sum_viol : int;
}

let win_create n =
  {
    w_ops = Array.make n 0;
    w_viol = Array.make n 0;
    w_idx = 0;
    w_sum_ops = 0;
    w_sum_viol = 0;
  }

let win_push w ~ops ~viol =
  let i = w.w_idx in
  w.w_sum_ops <- w.w_sum_ops - w.w_ops.(i) + ops;
  w.w_sum_viol <- w.w_sum_viol - w.w_viol.(i) + viol;
  w.w_ops.(i) <- ops;
  w.w_viol.(i) <- viol;
  w.w_idx <- (i + 1) mod Array.length w.w_ops

let win_burn w ~target =
  if w.w_sum_ops = 0 then 0.
  else
    let frac = float_of_int w.w_sum_viol /. float_of_int w.w_sum_ops in
    frac /. (1. -. target)

type t = {
  objs : objective array;
  thr_ns : int array;
  fast : win array;
  slow : win array;
}

let create ?(fast_window = 12) ?(slow_window = 120) objectives =
  if objectives = [] then invalid_arg "Slo.create: no objectives";
  if fast_window <= 0 || slow_window <= 0 then
    invalid_arg "Slo.create: windows must be positive";
  let objs = Array.of_list objectives in
  {
    objs;
    thr_ns =
      Array.map (fun o -> int_of_float (o.threshold_ms *. 1e6)) objs;
    fast = Array.map (fun _ -> win_create fast_window) objs;
    slow = Array.map (fun _ -> win_create slow_window) objs;
  }

let objectives t = Array.to_list t.objs
let thresholds_ns t = t.thr_ns

type report = {
  r_name : string;
  r_threshold_ms : float;
  r_target : float;
  r_burn_fast : float;
  r_burn_slow : float;
  r_breach : bool;
  r_violations : int;
  r_window_ops : int;
  r_window_violations : int;
}

let cp_tick t ~ops ~violations =
  if Array.length violations <> Array.length t.objs then
    invalid_arg "Slo.cp_tick: violations length mismatch";
  let reports = ref [] in
  for i = Array.length t.objs - 1 downto 0 do
    let o = t.objs.(i) and viol = violations.(i) in
    win_push t.fast.(i) ~ops ~viol;
    win_push t.slow.(i) ~ops ~viol;
    let burn_fast = win_burn t.fast.(i) ~target:o.target in
    let burn_slow = win_burn t.slow.(i) ~target:o.target in
    reports :=
      {
        r_name = o.name;
        r_threshold_ms = o.threshold_ms;
        r_target = o.target;
        r_burn_fast = burn_fast;
        r_burn_slow = burn_slow;
        r_breach = burn_fast > 1. && burn_slow > 1.;
        r_violations = viol;
        r_window_ops = t.slow.(i).w_sum_ops;
        r_window_violations = t.slow.(i).w_sum_viol;
      }
      :: !reports
  done;
  !reports
