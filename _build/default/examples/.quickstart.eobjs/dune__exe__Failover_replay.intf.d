examples/failover_replay.mli:
