(** Contiguous runs of block numbers.

    Extents describe both runs of free blocks found in bitmaps and the write
    chains the allocator builds (§2.4 — long chains of consecutive device
    blocks are what make both the flush and subsequent sequential reads
    cheap). *)

type t = private { start : int; len : int }
(** [len > 0]; covers block numbers [start .. start + len - 1]. *)

val make : start:int -> len:int -> t
(** Requires [start >= 0] and [len > 0]. *)

val start : t -> int
val len : t -> int
val last : t -> int
(** Last block number covered. *)

val mem : t -> int -> bool
val overlap : t -> t -> bool
val adjacent : t -> t -> bool
(** True when one extent ends exactly where the other begins. *)

val merge : t -> t -> t option
(** Union of two overlapping or adjacent extents; [None] otherwise. *)

val split_at : t -> int -> (t * t) option
(** [split_at t n] splits into [[start, n)] and [[n, last]]; [None] unless
    [n] lies strictly inside the extent. *)

val take : t -> int -> t * t option
(** [take t n] is the first [min n len] blocks and the remainder, if any.
    Requires [n > 0]. *)

val coalesce : t list -> t list
(** Sort by start and merge overlapping/adjacent extents. *)

val total_len : t list -> int

val compare : t -> t -> int
(** Orders by start, then length. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
