(** Media performance profiles.

    Times are microseconds of simulated time; sizes are 4KiB blocks.  The
    defaults are round numbers representative of the paper's era (2018
    enterprise SAS HDDs, SATA/SAS SSDs, drive-managed SMR); the experiments
    depend on ratios between these constants, not their absolute values. *)

type hdd = {
  seek_us : float;          (** average seek + rotational positioning *)
  transfer_us_per_block : float;  (** sequential streaming per 4KiB block *)
}

type ssd = {
  erase_block_blocks : int; (** 4KiB pages per erase block *)
  read_us : float;          (** page read *)
  program_us : float;       (** page program *)
  erase_us : float;         (** whole erase block erase *)
  overprovision : float;    (** hidden capacity fraction, e.g. 0.07 or 0.28 *)
}

type smr = {
  zone_blocks : int;        (** 4KiB blocks per shingle zone *)
  seq_write_us : float;     (** per-block sequential write *)
  seek_us : float;          (** repositioning for a non-sequential write *)
  zone_rmw_us_per_block : float;
      (** per-block cost of the drive-managed read-modify-write that a write
          into the middle of a shingled zone triggers (§3.2.3) *)
}

type object_store = {
  put_us : float;           (** per-object PUT latency *)
  object_blocks : int;      (** blocks aggregated per object *)
}

val default_hdd : hdd
val default_ssd : ssd
(** 2MiB erase blocks (512 pages), 7% OP. *)

val enterprise_ssd : ssd
(** Same geometry with 28% OP (the high-OP drives §3.2.2 mentions). *)

val default_smr : smr
(** 64MiB zones (16384 blocks). *)

val default_object_store : object_store
