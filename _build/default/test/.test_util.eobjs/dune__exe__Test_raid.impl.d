test/test_raid.ml: Alcotest Array Geometry Group Int List QCheck QCheck_alcotest Stripe Tetris Wafl_block Wafl_raid
