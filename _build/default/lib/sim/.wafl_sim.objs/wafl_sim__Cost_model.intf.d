lib/sim/cost_model.mli: Wafl_core
