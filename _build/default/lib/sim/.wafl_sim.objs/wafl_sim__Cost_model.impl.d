lib/sim/cost_model.ml: Cp List Wafl_core
