type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of int * string

let fail pos msg = raise (Error (pos, msg))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let parse_doc s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && is_ws s.[!pos] do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else begin
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else begin
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail !pos "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail !pos "bad \\u escape"
               in
               (* exporter strings are ASCII; encode the BMP code point as
                  UTF-8 so the round-trip is lossless for what we emit *)
               (if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end);
               pos := !pos + 5
             | c -> fail !pos (Printf.sprintf "bad escape \\%c" c)
           end);
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      end
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail start "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail !pos "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail !pos "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  match parse_doc s with
  | v -> Ok v
  | exception Error (pos, msg) -> Result.error (Printf.sprintf "at %d: %s" pos msg)

let parse_exn s = match parse s with Ok v -> v | Error e -> failwith ("Json.parse: " ^ e)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    Buffer.add_string buf
      (if not (Float.is_finite f) then "null"
       else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
       else Printf.sprintf "%.17g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        render buf v)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        render buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

let member k = function Obj members -> List.assoc_opt k members | _ -> None

let number_leaves root =
  let acc = ref [] in
  let rec go path = function
    | Num f -> acc := (List.rev path, f) :: !acc
    | Null | Bool _ | Str _ -> ()
    | List items -> List.iteri (fun i v -> go (string_of_int i :: path) v) items
    | Obj members -> List.iter (fun (k, v) -> go (k :: path) v) members
  in
  go [] root;
  List.rev !acc
