open Wafl_util
open Wafl_device
open Wafl_core
open Wafl_sim
open Wafl_workload

type sizing = Small_hdd_aa | Large_ssd_aa

let sizing_name = function
  | Small_hdd_aa -> "HDD-sized AA (4k stripes)"
  | Large_ssd_aa -> "erase-block AA"

type result = {
  sizing : sizing;
  aa_stripes : int;
  erase_block_aligned : bool;
  curve : Load.curve;
  write_amp : float;
}

let aa_stripes_of scale sizing =
  let profile = Common.ssd_profile scale in
  match sizing with
  | Small_hdd_aa ->
    (* the historical default, scaled with the rig: a quarter of an erase
       block, as in Figure 4 (A) *)
    profile.Profile.erase_block_blocks / 4
  | Large_ssd_aa -> Wafl_aa.Sizing.ssd_stripes ~erase_blocks_per_aa:1 profile

let measurement scale =
  match (scale : Common.scale) with
  | Common.Quick -> (100, 1000) (* cps, ops (1 block each) per cp *)
  | Common.Full -> (200, 2000)

let aging_spec scale =
  match (scale : Common.scale) with
  | Common.Quick ->
    { Aging.fill_fraction = 0.85; fragmentation_cps = 120; writes_per_cp = 2000; file = 1 }
  | Common.Full ->
    { Aging.fill_fraction = 0.85; fragmentation_cps = 250; writes_per_cp = 4000; file = 1 }

let run_sizing scale sizing =
  let aa_stripes = aa_stripes_of scale sizing in
  let rg = Common.ssd_raid_group scale ~aa_stripes:(Some aa_stripes) in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "lun"; blocks = agg_blocks * 9 / 8; aa_blocks = Some 1024;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~seed:8009 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "lun" in
  let rng = Rng.split (Fs.rng fs) in
  let working_set = Aging.age fs vol ~spec:(aging_spec scale) ~rng () in
  let range0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  let ftl =
    match range0.Aggregate.device with
    | Aggregate.Ssd_sim f -> f
    | Aggregate.Hdd_sim _ | Aggregate.Smr_sim _ | Aggregate.Object_sim _ ->
      invalid_arg "fig8: SSD rig expected"
  in
  Ftl.reset_stats ftl;
  (* 4KiB random overwrites: one block per op (§4.3's read/write mix's
     write half; reads do not change allocation behaviour) *)
  let workload =
    Random_overwrite.create fs vol ~working_set ~blocks_per_op:1 ~rng:(Rng.split rng) ()
  in
  let cps, ops_per_cp = measurement scale in
  let costs =
    Load.measure_service_time ~cps ~ops_per_cp
      ~step:(fun n -> Random_overwrite.step workload n)
      ()
  in
  {
    sizing;
    aa_stripes;
    erase_block_aligned =
      Wafl_aa.Sizing.is_erase_block_aligned ~aa_stripes (Common.ssd_profile scale);
    curve = Load.sweep ~label:(sizing_name sizing) costs;
    write_amp = Ftl.write_amplification ftl;
  }

let run ?(scale = Common.Quick) () = List.map (run_sizing scale) [ Small_hdd_aa; Large_ssd_aa ]

let find results s = List.find (fun r -> r.sizing = s) results

let print results =
  Common.banner
    "Figure 8: latency vs throughput, HDD-sized AA vs erase-block AA (all-SSD aged to 85%)";
  Series.print_all ~header:"series: x = throughput (kops/s), y = latency (ms)"
    (List.map (fun r -> Load.to_series r.curve) results);
  List.iter
    (fun r ->
      Common.kv
        (Printf.sprintf "%s:" (sizing_name r.sizing))
        (Printf.sprintf "aa_stripes=%d aligned=%b peak=%.0f ops/s lat@peak=%.2fms WA=%.2f"
           r.aa_stripes r.erase_block_aligned
           (Load.peak_throughput r.curve)
           (Load.latency_at_peak_ms r.curve)
           r.write_amp))
    results;
  let small = find results Small_hdd_aa and large = find results Large_ssd_aa in
  let peak r = Load.peak_throughput r.curve and lat r = Load.latency_at_peak_ms r.curve in
  Printf.printf "\n";
  Common.paper_vs_measured ~metric:"peak throughput gain (large AA)"
    ~paper:"+26%"
    ~measured:(Common.pct (peak large) (peak small))
    ~ok:(peak large > peak small);
  Common.paper_vs_measured ~metric:"latency at peak"
    ~paper:"-21%"
    ~measured:(Common.pct (lat large) (lat small))
    ~ok:(lat large < lat small);
  Common.paper_vs_measured ~metric:"write amplification"
    ~paper:"halved"
    ~measured:(Printf.sprintf "%.2f -> %.2f (%.0f%% of small-AA WA)" small.write_amp
                 large.write_amp
                 (100.0 *. large.write_amp /. small.write_amp))
    ~ok:(large.write_amp < small.write_amp)
