type ops = { picks : int; updates : int; replenishes : int; work : int }

type backend = Heap of Max_heap.t | Partial of Hbps.t

type t = {
  backend : backend;
  mutable picks : int;
  mutable updates : int;
  mutable replenishes : int;
  mutable work : int;
}

let wrap backend = { backend; picks = 0; updates = 0; replenishes = 0; work = 0 }

let raid_aware ~scores = wrap (Heap (Max_heap.of_scores scores))

let raid_agnostic ?bin_width ?capacity ~max_score ~scores () =
  wrap (Partial (Hbps.create ?bin_width ?capacity ~max_score ~scores ()))

let of_heap h = wrap (Heap h)
let of_hbps h = wrap (Partial h)

let is_raid_aware t = match t.backend with Heap _ -> true | Partial _ -> false

(* Abstract work estimates: a heap op costs ~log2(size) comparisons, an
   HBPS op a constant handful of bin moves. *)
let heap_op_work heap = max 1 (int_of_float (Float.log2 (float_of_int (max 2 (Max_heap.size heap)))))
let hbps_op_work = 4

let take_best t =
  t.picks <- t.picks + 1;
  match t.backend with
  | Heap h ->
    t.work <- t.work + heap_op_work h;
    Max_heap.extract_best h
  | Partial h ->
    t.work <- t.work + hbps_op_work;
    Hbps.take_best h

let peek_best_score t =
  match t.backend with
  | Heap h -> Max_heap.best_score h
  | Partial h -> Option.map snd (Hbps.pick_best h)

let cp_update t updates =
  t.updates <- t.updates + List.length updates;
  match t.backend with
  | Heap h ->
    t.work <- t.work + (List.length updates * heap_op_work h);
    Max_heap.apply_updates h updates
  | Partial h ->
    t.work <- t.work + (List.length updates * hbps_op_work);
    Hbps.apply_updates h updates;
    if Hbps.needs_replenish h then begin
      t.replenishes <- t.replenishes + 1;
      t.work <- t.work + Hbps.n_aas h;
      Hbps.replenish h
    end

let heap t = match t.backend with Heap h -> Some h | Partial _ -> None
let hbps t = match t.backend with Partial h -> Some h | Heap _ -> None

let ops t = { picks = t.picks; updates = t.updates; replenishes = t.replenishes; work = t.work }

let reset_ops t =
  t.picks <- 0;
  t.updates <- 0;
  t.replenishes <- 0;
  t.work <- 0
