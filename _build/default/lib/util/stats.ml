type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  assert (Array.length xs > 0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pct p =
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = pct 50.0;
    p90 = pct 90.0;
    p99 = pct 99.0;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
