(* Fixed-size domain pool with deterministic chunk scheduling.

   Work is expressed as [chunks] indexed closures.  An atomic counter
   hands indices out to whichever domain is free, so load-balancing is
   dynamic, but determinism is preserved structurally: every index runs
   exactly once, results go to slots keyed by index, and failures are
   reported as the lowest failed index (what a serial ascending loop
   would have raised first).

   Completion is a hybrid wait: the caller drains chunks itself, spins
   briefly on the atomic pending counter (cheap for the common case
   where workers finish within microseconds), then blocks on a
   condition variable signalled by whichever domain retires the last
   chunk.  The final decrement of [pending] is the release/acquire edge
   that publishes the workers' non-atomic result writes to the
   caller. *)

module Telemetry = Wafl_telemetry.Telemetry
module Span = Wafl_telemetry.Span

type task = {
  f : slot:int -> int -> unit;
  next : int Atomic.t;
  total : int;
  pending : int Atomic.t;
  failed : (int * exn) option Atomic.t;
  busy_ns : int Atomic.t array;
      (* per-participant busy ns (slot 0 = the caller, slot i = worker i);
         [||] when telemetry was inactive at dispatch, so the untimed path
         adds one array-length branch and nothing else *)
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable task : task option;
  mutable generation : int;
  mutable stop : bool;
  busy : bool Atomic.t;
  mutable live : bool;
}

let jobs t = t.jobs

(* Keep the lowest-index failure: serial order raises it first. *)
let record_failure task idx exn =
  let rec loop () =
    match Atomic.get task.failed with
    | Some (i, _) when i <= idx -> ()
    | cur ->
      if not (Atomic.compare_and_set task.failed cur (Some (idx, exn))) then loop ()
  in
  loop ()

let drain t ~slot task =
  let timed = Array.length task.busy_ns > 0 in
  let rec go () =
    let i = Atomic.fetch_and_add task.next 1 in
    if i < task.total then begin
      (if timed then begin
         let t0 = Span.now_ns () in
         (try task.f ~slot i with exn -> record_failure task i exn);
         ignore (Atomic.fetch_and_add task.busy_ns.(slot) (Span.now_ns () - t0))
       end
       else try task.f ~slot i with exn -> record_failure task i exn);
      if Atomic.fetch_and_add task.pending (-1) = 1 then begin
        (* Last chunk retired: wake a caller blocked in [await]. *)
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end;
      go ()
    end
  in
  go ()

let rec worker_loop t ~slot gen =
  Mutex.lock t.m;
  while (not t.stop) && t.generation = gen do
    Condition.wait t.work_cv t.m
  done;
  let stop = t.stop in
  let gen = t.generation in
  let task = t.task in
  Mutex.unlock t.m;
  if not stop then begin
    (match task with Some task -> drain t ~slot task | None -> ());
    worker_loop t ~slot gen
  end

let spin_budget = 2_000

let await t task =
  let spins = ref 0 in
  while Atomic.get task.pending > 0 && !spins < spin_budget do
    incr spins;
    Domain.cpu_relax ()
  done;
  if Atomic.get task.pending > 0 then begin
    Mutex.lock t.m;
    while Atomic.get task.pending > 0 do
      Condition.wait t.done_cv t.m
    done;
    Mutex.unlock t.m
  end

(* Per-task worker attribution: sum/max of the per-slot busy times give
   the pool's utilisation and imbalance for this dispatch.  Emitted only
   when telemetry was active at dispatch time, from the caller's domain,
   after [await]'s acquire edge — so the workers' busy stamps are
   visible. *)
let emit_worker_stats t task ~chunks ~t0 =
  let wall = Span.now_ns () - t0 in
  let wall = if wall > 0 then wall else 1 in
  let total_busy = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 task.busy_ns in
  let max_busy = Array.fold_left (fun acc b -> max acc (Atomic.get b)) 0 task.busy_ns in
  Telemetry.incr "par.tasks";
  Telemetry.add "par.chunks" chunks;
  Telemetry.add "par.busy_ns" (max 0 total_busy);
  Telemetry.add "par.idle_ns" (max 0 ((t.jobs * wall) - total_busy));
  Telemetry.set_gauge "par.workers" (float_of_int t.jobs);
  Telemetry.set_gauge "par.busy_frac"
    (float_of_int total_busy /. float_of_int (t.jobs * wall));
  if total_busy > 0 then
    (* max/mean busy across participants: 1.0 = perfectly balanced *)
    Telemetry.set_gauge "par.imbalance"
      (float_of_int (max_busy * t.jobs) /. float_of_int total_busy)

let run_parallel t ~chunks ~f =
  let timed = Telemetry.is_active () in
  let task =
    {
      f;
      next = Atomic.make 0;
      total = chunks;
      pending = Atomic.make chunks;
      failed = Atomic.make None;
      busy_ns = (if timed then Array.init t.jobs (fun _ -> Atomic.make 0) else [||]);
    }
  in
  let t0 = if timed then Span.now_ns () else 0 in
  Mutex.lock t.m;
  t.task <- Some task;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  drain t ~slot:0 task;
  await t task;
  if timed then emit_worker_stats t task ~chunks ~t0;
  match Atomic.get task.failed with None -> () | Some (_, exn) -> raise exn

(* [run] with the executing participant's slot exposed to the chunk
   function: slot 0 is the caller, slots 1 .. jobs-1 the workers.  Two
   chunks with the same slot never overlap in time (a participant drains
   one chunk at a time), so per-slot scratch state is single-writer —
   the hook the multi-domain allocation front-end builds on.  On every
   serial/degraded path the caller runs all chunks with slot 0. *)
let run_with_slot t ~chunks ~f =
  if chunks <= 0 then ()
  else if t.jobs <= 1 || (not t.live) || chunks = 1 then
    for i = 0 to chunks - 1 do
      f ~slot:0 i
    done
  else if not (Atomic.compare_and_set t.busy false true) then
    (* Nested run (e.g. issued from inside a chunk): inline serially
       rather than deadlocking on the single task slot. *)
    for i = 0 to chunks - 1 do
      f ~slot:0 i
    done
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () -> run_parallel t ~chunks ~f)

let run t ~chunks ~f = run_with_slot t ~chunks ~f:(fun ~slot:_ i -> f i)

let map t ~chunks ~f =
  if chunks <= 0 then [||]
  else begin
    (* Chunk 0 runs inline to seed the array; an exception here is what
       serial order would raise first, so letting it escape is correct. *)
    let first = f 0 in
    let out = Array.make chunks first in
    if chunks > 1 then run t ~chunks:(chunks - 1) ~f:(fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let create ~jobs =
  let jobs = if jobs < 1 then 1 else jobs in
  let t =
    {
      jobs;
      workers = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      task = None;
      generation = 0;
      stop = false;
      busy = Atomic.make false;
      live = true;
    }
  in
  t.workers <-
    Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t ~slot:(i + 1) 0));
  t

let shutdown t =
  if t.live then begin
    t.live <- false;
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let chunk_bounds ~total ~align ~chunks =
  if total <= 0 then [||]
  else begin
    let align = if align <= 0 then 1 else align in
    let chunks = if chunks <= 0 then 1 else chunks in
    let units = (total + align - 1) / align in
    let n = if chunks < units then chunks else units in
    Array.init n (fun i ->
        let u0 = units * i / n in
        let u1 = units * (i + 1) / n in
        let start = u0 * align in
        let stop = if u1 * align < total then u1 * align else total in
        (start, stop - start))
  end

(* Process-wide default, mirroring Telemetry.install. *)

let default : t option ref = ref None

let uninstall () =
  match !default with
  | None -> ()
  | Some t ->
    default := None;
    shutdown t

let install ~jobs =
  uninstall ();
  default := Some (create ~jobs)

let installed () = !default
let resolve = function Some _ as p -> p | None -> !default
let effective_jobs pool = match resolve pool with Some t -> jobs t | None -> 1
