(** Sliding-window latency objectives with multi-window burn rates.

    An objective says "[target] of ops complete under [threshold_ms]".  The
    burn rate over a window is the observed violation fraction divided by
    the allowed fraction [1 - target]: burn 1.0 means the error budget is
    being consumed exactly as fast as it accrues, >1.0 means faster.  Two
    windows are kept per objective — a fast one (default 12 CPs) that
    reacts to incidents and a slow one (default 120 CPs) that filters
    transients — and a breach is declared only when {e both} exceed 1.0,
    the standard multi-window alerting rule. *)

type objective = private {
  name : string;
  threshold_ms : float;
  target : float; (* fraction of ops that must land under threshold *)
}

val objective :
  name:string -> threshold_ms:float -> target:float ->
  (objective, string) result

val objective_of_string : string -> (objective, string) result
(** Parses ["NAME:MS:TARGET"], e.g. ["writes:5:0.99"].  Returns a
    human-actionable error for malformed specs (used by the CLI conv). *)

val objective_to_string : objective -> string

type t

val create : ?fast_window:int -> ?slow_window:int -> objective list -> t
(** Windows are counted in CPs.  Raises [Invalid_argument] on empty
    objective list or non-positive windows. *)

val objectives : t -> objective list
val thresholds_ns : t -> int array
(** Violation thresholds in ns, in objective order (for the record loop). *)

type report = {
  r_name : string;
  r_threshold_ms : float;
  r_target : float;
  r_burn_fast : float;
  r_burn_slow : float;
  r_breach : bool;       (* both windows burning > 1.0 *)
  r_violations : int;    (* violations in the CP just ticked *)
  r_window_ops : int;    (* ops in the slow window *)
  r_window_violations : int;
}

val cp_tick : t -> ops:int -> violations:int array -> report list
(** Advance both windows by one CP.  [violations.(i)] is the number of ops
    in this CP whose latency exceeded objective [i]'s threshold. *)
