(** Hierarchical phase spans: wall-clock timings for the named phases of a
    consistency point (and the other long scans), accumulated per phase
    kind.

    The kind set is closed — one constructor per instrumented phase — so a
    recorder is a handful of preallocated atomic arrays and [enter]/[exit]
    never allocate, never take a lock, and are safe to call from pool
    domains (each domain stamps its start time into its own slot).  The
    static {!parent} relation recreates the nesting ([Pick] and
    [Device_flush] live under the per-CP root, [Bit_clear] under the
    activemap commit) without runtime stacks, which is what keeps exits
    from concurrent domains well-defined.

    Callers normally go through {!Telemetry.span_enter} /
    {!Telemetry.span_exit}, which are single-branch no-ops when no
    telemetry instance is installed — the zero-allocation contract of the
    consume path is unaffected by instrumentation being compiled in. *)

type kind =
  | Cp  (** one whole consistency point ([Cp.run]) *)
  | Pick  (** AA selection for a refill ([Write_alloc.pick_aa]) *)
  | Harvest  (** bitmap walk filling a harvest ring *)
  | Tetris_write  (** RAID tetris/stripe accounting of a range flush *)
  | Device_flush  (** one range's device simulation (may run on a pool domain) *)
  | Activemap_commit  (** delayed-free commit + metafile flush *)
  | Bit_clear  (** the bit-clearing apply inside the activemap commit *)
  | Mount_rebuild  (** full-scan or TopAA mount ([Mount.mount]) *)
  | Iron  (** consistency check / repair scans *)
  | Cleaner  (** segment-cleaning passes *)
  | Scrub  (** background pagestore-integrity verification between CPs *)

val all : kind list
(** Every kind, in rendering order (parents before children). *)

val name : kind -> string
(** Stable dotted name, e.g. ["cp.device_flush"]. *)

val parent : kind -> kind option
(** Static nesting: [None] for roots ([Cp], [Mount_rebuild], [Iron],
    [Cleaner], [Scrub]). *)

val depth : kind -> int
(** Number of ancestors (0 for roots). *)

val now_ns : unit -> int
(** Wall clock in nanoseconds (monotonic enough for span arithmetic); the
    default clock of {!create}. *)

type t

val create : ?clock:(unit -> int) -> unit -> t
(** [clock] returns nanoseconds; tests inject a deterministic one. *)

val enter : t -> kind -> unit
val exit : t -> kind -> unit
(** Close the calling domain's open span of that kind; a stray [exit]
    without a matching [enter] is ignored.  At most one span per (domain,
    kind) may be open — phase code upholds this by construction. *)

val count : t -> kind -> int
(** Completed spans of this kind. *)

val total_ns : t -> kind -> int
(** Wall nanoseconds accumulated over completed spans of this kind.
    Concurrent spans (e.g. [Device_flush] on several domains) each
    contribute their full duration, so a kind's total may exceed its
    parent's. *)

val open_now : t -> kind -> int
(** Spans of this kind currently open — the live "current phase" signal. *)

val clear : t -> unit
