open Wafl_util
open Wafl_core

type t = {
  fs : Fs.t;
  vol : Flexvol.t;
  working_set : int;
  read_fraction : float;
  file : int;
  rng : Rng.t;
}

type cp_result = { report : Cp.report; reads : int; updates : int }

let create fs vol ~working_set ?(read_fraction = 0.6) ?(file = 1) ~rng () =
  assert (working_set > 0 && read_fraction >= 0.0 && read_fraction < 1.0);
  { fs; vol; working_set; read_fraction; file; rng }

let step t n =
  let reads = ref 0 and updates = ref 0 in
  for _ = 1 to n do
    if Rng.float t.rng 1.0 < t.read_fraction then incr reads
    else begin
      incr updates;
      Fs.stage_write t.fs ~vol:t.vol ~file:t.file ~offset:(Rng.int t.rng t.working_set)
    end
  done;
  (* ensure the CP is never empty so cost accounting stays defined *)
  if !updates = 0 then begin
    incr updates;
    Fs.stage_write t.fs ~vol:t.vol ~file:t.file ~offset:(Rng.int t.rng t.working_set)
  end;
  { report = Fs.run_cp t.fs; reads = !reads; updates = !updates }
