(** Flash translation layer simulator for SSDs.

    Models the mechanism §3.2.2 describes: flash is written in whole erase
    blocks, so when the host (re)writes only part of the logical range
    covered by an erase block, the FTL must first relocate the still-live
    data of that erase block elsewhere, erase it, and then program the new
    data (Figure 4).  The ratio of pages physically programmed to pages the
    host wrote is the {e write amplification}; 1.0 is ideal.

    The simulator is erase-block-mapped with a bounded set of {e open}
    erase blocks (real drives expose a limited number of write streams):

    - writing into a closed erase block {e opens} it, paying the relocation
      of its live pages that the incoming batch does not overwrite, plus an
      erase;
    - subsequent writes into an open erase block are free appends, so a
      sequential pass over a region costs the same no matter how it is
      split across CP batches;
    - an erase block closes once a full block's worth of pages has been
      appended since it was opened, or when it is evicted (LRU) because too
      many blocks are open.

    Small AAs hurt exactly as the paper argues: each AA covers a fraction
    of an erase block, and by the time a neighbouring AA is picked the
    block has been evicted, so its live data is relocated again — whereas
    an erase-block-aligned AA rewrites whole blocks in one open/close
    cycle.  Overprovisioned spare capacity absorbs a fraction
    [overprovision / (1 + overprovision)] of the relocation traffic.

    {b Multi-stream placement.}  The drive can be created with several
    write {e streams} (SepBIT / multi-stream SSD style): the open-block
    budget is partitioned evenly across streams, each stream runs its own
    LRU over the blocks it opened, and {!write_batch} tags every batch
    with the stream it belongs to.  Writes segregated by expected lifetime
    then stop evicting each other's open blocks: hot rewrites churn their
    own small set while cold data streams sequentially in another.  Erases
    are also counted per erase block ({e wear}), which the AA scorer can
    fold in to steer allocation away from worn spans.

    Because WAFL allocates only free VBNs, host "overwrites" of an LBA occur
    when the write allocator reuses the VBN; WAFL communicates frees to the
    device as trims, which kill pages without relocation. *)

type t

type stats = {
  host_pages_written : int;
  device_pages_written : int;  (** host writes + relocations *)
  relocated_pages : int;
  erases : int;
  trimmed_pages : int;
}

val zero_stats : stats

val create :
  ?profile:Profile.ssd ->
  ?open_blocks:int ->
  ?streams:int ->
  logical_blocks:int ->
  unit ->
  t
(** A device exporting [logical_blocks] 4KiB pages.  [open_blocks]
    (default 8) is the number of simultaneously open erase blocks;
    [streams] (default 1) partitions that budget into independent
    write streams of [max 1 (open_blocks / streams)] blocks each. *)

val logical_blocks : t -> int
val profile : t -> Profile.ssd

val streams : t -> int
(** Number of write streams the device was created with. *)

val stream_capacity : t -> int
(** Open-erase-block budget of each stream. *)

val set_fault : t -> Wafl_fault.Fault.device option -> unit
(** Attach (or detach) a fault-injection handle.  With one attached,
    {!write_batch} consults it per page: failed pages never reach the
    flash, torn pages are programmed but do not become live. *)

val fault : t -> Wafl_fault.Fault.device option

val live_pages_in : t -> start:int -> len:int -> int
(** Pages in the logical range currently holding live data. *)

val is_open : t -> eb:int -> bool
(** Whether an erase block is currently open for appends. *)

val stream_of_open : t -> eb:int -> int option
(** The stream that opened [eb], when it is open. *)

val open_blocks_of_stream : t -> int -> int
(** Erase blocks currently open under the given stream's budget. *)

val write_batch : ?stream:int -> t -> int list -> unit
(** Process one flush's host writes (logical page numbers; duplicates are
    coalesced) under the given stream (default 0).  Pages become live.
    The batch is staged on a reused scratch array — sorted, deduplicated
    and walked in erase-block runs in place — so large CP flushes do not
    allocate per batch. *)

val trim : t -> int -> unit
(** Host free: the page is no longer live; no-op when already dead. *)

val trim_batch : t -> int list -> unit

val stats : t -> stats

val stream_stats : t -> int -> stats
(** Per-stream tallies: host/device/relocated pages and erases charged to
    batches written under that stream ([trimmed_pages] is always 0 —
    trims are not stream-attributed). *)

val write_amplification : t -> float
(** [device_pages_written / host_pages_written]; 1.0 when no host writes. *)

val stream_write_amplification : t -> int -> float

val erase_blocks : t -> int
(** Number of erase blocks covering the logical space. *)

val wear_of_eb : t -> eb:int -> int
(** Cumulative erases of one erase block. *)

val max_wear_in : t -> start:int -> len:int -> int
(** Highest per-erase-block wear over a logical page range (0 for an
    empty range). *)

val avg_wear : t -> int
(** Mean per-erase-block wear across the device (truncated). *)

val wear_spread : t -> int * int
(** [(min, max)] per-erase-block wear across the device. *)

val service_time_us : t -> stats_delta:stats -> float
(** Device time for a window of activity: programs + relocation reads +
    erases, per the profile. *)

val diff_stats : after:stats -> before:stats -> stats

val reset_stats : t -> unit
(** Zeroes the device-wide and per-stream counters (wear is preserved —
    it is physical state, not a statistic). *)
