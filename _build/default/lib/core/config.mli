(** Configuration of a simulated ONTAP system: the aggregate's physical
    ranges and the FlexVols layered on it (§2.1). *)

type media =
  | Hdd of Wafl_device.Profile.hdd
  | Ssd of Wafl_device.Profile.ssd
  | Smr of Wafl_device.Profile.smr

type raid_group_spec = {
  media : media;
  data_devices : int;
  parity_devices : int;
  device_blocks : int;   (** 4KiB blocks per device *)
  aa_stripes : int option;
      (** AA size override; [None] picks the media default (§3.2) *)
}

type object_range_spec = {
  profile : Wafl_device.Profile.object_store;
  blocks : int;
  aa_blocks : int option;  (** default: 32k *)
}

type allocation_policy =
  | Best_aa        (** AA cache enabled: always the emptiest AA (§3.1) *)
  | Random_aa      (** cache disabled: uniformly random AA — the paper's
                       baseline in §4.1 *)
  | First_fit      (** lowest-numbered AA with any free space — the classic
                       linear-scan strawman *)

type vol_spec = {
  name : string;
  blocks : int;               (** virtual VBN space size *)
  aa_blocks : int option;     (** default 32k *)
  policy : allocation_policy; (** for virtual VBN selection *)
}

type t = {
  raid_groups : raid_group_spec list;
  object_ranges : object_range_spec list;
  vols : vol_spec list;
  aggregate_policy : allocation_policy;
  rg_score_threshold : int option;
      (** skip a RAID group whose best AA score is below this (§3.3.1) *)
  seed : int;
}

val default_raid_group : raid_group_spec
(** 6+1 HDD, 64k blocks/device, default AA sizing. *)

val default_vol : name:string -> blocks:int -> vol_spec

val make :
  ?raid_groups:raid_group_spec list ->
  ?object_ranges:object_range_spec list ->
  ?vols:vol_spec list ->
  ?aggregate_policy:allocation_policy ->
  ?rg_score_threshold:int ->
  ?seed:int ->
  unit ->
  t

val aa_stripes_for : raid_group_spec -> int
(** The spec's override or the §3.2 media default, clamped to the group's
    stripe count. *)

val media_name : media -> string
