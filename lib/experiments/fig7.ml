open Wafl_util
open Wafl_raid
open Wafl_core
open Wafl_sim
open Wafl_workload

type rg_stats = {
  rg : int;
  aged : bool;
  per_disk_blocks : float array;
  blocks_per_s : float;
  tetrises_per_s : float;
  blocks_per_tetris : float;
}

type result = { groups : rg_stats list; duration_s : float; ops_per_s : float }

let measurement scale =
  match (scale : Common.scale) with
  | Common.Quick -> (60, 1500) (* cps, client ops per cp *)
  | Common.Full -> (120, 3000)

(* Age a RAID-group range in place: allocate a random half of its blocks
   directly (old data not owned by the measured volume), as the paper does
   by overwriting and freeing "until a random 50% of its blocks were
   used". *)
let age_range fs (range : Aggregate.range) ~fraction ~rng =
  let aggregate = Fs.aggregate fs in
  let target = int_of_float (fraction *. float_of_int range.Aggregate.blocks) in
  let allocated = ref 0 in
  while !allocated < target do
    let local = Rng.int rng range.Aggregate.blocks in
    let pvbn = Aggregate.to_global range local in
    if not (Wafl_bitmap.Metafile.is_allocated (Aggregate.metafile aggregate) pvbn) then begin
      Aggregate.allocate aggregate ~pvbn;
      incr allocated
    end
  done

let run ?(scale = Common.Quick) () =
  let rg = Common.hdd_raid_group scale in
  let agg_blocks = 4 * rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make
      ~raid_groups:[ rg; rg; rg; rg ]
      ~vols:
        [ { Config.name = "db"; blocks = agg_blocks; aa_blocks = Some 4096;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~seed:2003 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "db" in
  let rng = Rng.split (Fs.rng fs) in
  let aggregate = Fs.aggregate fs in
  let ranges = Aggregate.ranges aggregate in
  (* age RG0 and RG1 to a random 50% used; RG2/RG3 stay fresh *)
  age_range fs ranges.(0) ~fraction:0.5 ~rng;
  age_range fs ranges.(1) ~fraction:0.5 ~rng;
  Write_alloc.cp_finish (Fs.write_alloc fs);
  Rebuild.request aggregate Rebuild.Full;
  (* a modest database working set, then the OLTP mix *)
  let working_set = agg_blocks / 10 in
  let fill_batch = 4096 in
  let cursor = ref 0 in
  while !cursor < working_set do
    for i = 0 to min fill_batch (working_set - !cursor) - 1 do
      Fs.stage_write fs ~vol ~file:1 ~offset:(!cursor + i)
    done;
    ignore (Fs.run_cp fs);
    cursor := !cursor + fill_batch
  done;
  (* measurement: reset per-group accounting, run the OLTP mix *)
  Array.iter
    (fun (r : Aggregate.range) ->
      match r.Aggregate.group with Some g -> Group.reset g | None -> ())
    ranges;
  let oltp = Oltp.create fs vol ~working_set ~read_fraction:0.6 ~rng:(Rng.split rng) () in
  let cps, ops_per_cp = measurement scale in
  let total_ops = ref 0 in
  let duration_us = ref 0.0 in
  for _ = 1 to cps do
    let r = Oltp.step oltp ops_per_cp in
    total_ops := !total_ops + r.Oltp.reads + r.Oltp.updates;
    let costs = Cost_model.of_report r.Oltp.report in
    duration_us := !duration_us +. costs.Cost_model.cp_duration_us
  done;
  let duration_s = !duration_us *. 1e-6 in
  let groups =
    Array.to_list
      (Array.mapi
         (fun i (r : Aggregate.range) ->
           match r.Aggregate.group with
           | None -> invalid_arg "fig7: raid range expected"
           | Some g ->
             let totals = Group.totals g in
             let per_disk =
               Array.map
                 (fun blocks -> float_of_int blocks /. duration_s)
                 totals.Group.per_device_blocks
             in
             {
               rg = i;
               aged = i < 2;
               per_disk_blocks = per_disk;
               blocks_per_s = float_of_int totals.Group.blocks_written /. duration_s;
               tetrises_per_s = float_of_int totals.Group.tetrises_written /. duration_s;
               blocks_per_tetris =
                 (if totals.Group.tetrises_written = 0 then 0.0
                  else
                    float_of_int totals.Group.blocks_written
                    /. float_of_int totals.Group.tetrises_written);
             })
         ranges)
  in
  { groups; duration_s; ops_per_s = float_of_int !total_ops /. duration_s }

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let cv xs =
  let m = mean xs in
  if m = 0.0 then 0.0
  else begin
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (var /. float_of_int (Array.length xs)) /. m
  end

let print result =
  Common.banner
    "Figure 7: per-disk blocks/s and per-RG tetrises/s, aged (RG0,RG1) vs fresh (RG2,RG3) \
     under OLTP";
  Common.kv "modeled client load" (Printf.sprintf "%.0f ops/s" result.ops_per_s);
  let tbl =
    Table.create
      ~columns:
        [ ("RG", Table.Left); ("aged", Table.Left); ("disk blocks/s...", Table.Left);
          ("blocks/s", Table.Right); ("tetrises/s", Table.Right);
          ("blocks/tetris", Table.Right) ]
  in
  List.iter
    (fun g ->
      Table.add_row tbl
        [
          Printf.sprintf "RG%d" g.rg;
          (if g.aged then "yes" else "no");
          String.concat " "
            (Array.to_list (Array.map (fun b -> Printf.sprintf "%.0f" b) g.per_disk_blocks));
          Printf.sprintf "%.0f" g.blocks_per_s;
          Printf.sprintf "%.1f" g.tetrises_per_s;
          Printf.sprintf "%.1f" g.blocks_per_tetris;
        ])
    result.groups;
  Table.print tbl;
  let aged = List.filter (fun g -> g.aged) result.groups in
  let fresh = List.filter (fun g -> not g.aged) result.groups in
  let mean_of f gs = List.fold_left (fun acc g -> acc +. f g) 0.0 gs /. float_of_int (List.length gs) in
  let aged_blocks = mean_of (fun g -> g.blocks_per_s) aged in
  let fresh_blocks = mean_of (fun g -> g.blocks_per_s) fresh in
  let aged_bpt = mean_of (fun g -> g.blocks_per_tetris) aged in
  let fresh_bpt = mean_of (fun g -> g.blocks_per_tetris) fresh in
  let max_cv =
    List.fold_left (fun acc g -> Float.max acc (cv g.per_disk_blocks)) 0.0 result.groups
  in
  Printf.printf "\n";
  Common.paper_vs_measured ~metric:"disks balanced within each RG"
    ~paper:"even distribution"
    ~measured:(Printf.sprintf "max per-disk CV %.1f%%" (100.0 *. max_cv))
    ~ok:(max_cv < 0.1);
  Common.paper_vs_measured ~metric:"fresh RGs receive more blocks"
    ~paper:"RG2/RG3 > RG0/RG1"
    ~measured:(Printf.sprintf "%.0f vs %.0f blocks/s (aged %.0f%%)" fresh_blocks aged_blocks
                 (100.0 *. aged_blocks /. fresh_blocks))
    ~ok:(fresh_blocks > aged_blocks *. 1.1);
  Common.paper_vs_measured ~metric:"aged tetrises less efficient"
    ~paper:"fewer blocks per tetris on RG0/RG1"
    ~measured:(Printf.sprintf "%.1f vs %.1f blocks/tetris" aged_bpt fresh_bpt)
    ~ok:(aged_bpt < fresh_bpt)
