(** Unified AA-cache interface over the two implementations (§3.3).

    A cache is either a RAID-aware max-heap over all AAs of a RAID group or
    a RAID-agnostic HBPS.  Besides dispatch, this layer counts the abstract
    work each cache performs (comparisons/moves), backing the §4.1.2
    observation that cache maintenance is a vanishing fraction of CPU. *)

type t

type ops = {
  picks : int;
  updates : int;
  replenishes : int;
  work : int;  (** abstract unit operations: sift steps, bin moves, scan items *)
}

val raid_aware : scores:int array -> t
(** Max-heap over all AAs (index = AA id). *)

val raid_agnostic :
  ?bin_width:int -> ?capacity:int -> max_score:int -> scores:int array -> unit -> t

val of_heap : Max_heap.t -> t
(** Wrap an existing heap (e.g. one seeded from a TopAA block, §3.4). *)

val of_hbps : Hbps.t -> t

val is_raid_aware : t -> bool

val take_best : t -> (int * int) option
(** Best (or near-best, for HBPS) AA, removed from the cache until its
    CP-boundary score update re-files it. *)

val peek_best_score : t -> int option
(** Best available score without consuming (used for the RAID-group
    fragmentation throttle, §3.3.1). *)

val cp_update : t -> (int * int) list -> unit
(** CP-boundary batch: apply [(aa, new_score)] pairs and rebalance; for an
    HBPS, also replenish when the list is dry or stale. *)

val heap : t -> Max_heap.t option
val hbps : t -> Hbps.t option

val ops : t -> ops
val reset_ops : t -> unit
