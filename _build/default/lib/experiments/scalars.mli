(** §4.1 scalar claims that are not tied to a figure:

    - cache maintenance consumes a vanishing share of CPU (paper: ~0.002%
      per cache under heavy load);
    - the HBPS error bound (3.125% of the maximum score);
    - the RAID-aware cache memory example (1M AAs tracked for a 16TiB
      device, a few MiB);
    - TopAA block capacity (~512 entries in one 4KiB block). *)

type result = {
  cache_cpu_share : float;      (** fraction of total CPU in cache code *)
  hbps_error_margin : float;
  hbps_worst_observed_error : float;  (** worst pick error seen in a churn run *)
  heap_memory_bytes_1m_aas : int;
  topaa_entries_per_block : int;
}

val run : ?scale:Common.scale -> unit -> result
val print : result -> unit
