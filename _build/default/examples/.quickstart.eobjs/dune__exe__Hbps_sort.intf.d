examples/hbps_sort.mli:
