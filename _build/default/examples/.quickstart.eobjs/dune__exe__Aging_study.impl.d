examples/aging_study.ml: Aggregate Aging Array Cleaner Config Cp Fs List Printf Random_overwrite Rng String Wafl_aa Wafl_core Wafl_device Wafl_util Wafl_workload
