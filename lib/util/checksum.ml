(* CRC-32 (the IEEE/zlib polynomial), computed on native ints: the state
   and table fit in 32 bits, so on a 64-bit host the whole inner loop is
   unboxed integer arithmetic — an Int32 state would box on every byte,
   which matters when pages are resealed inside the CP pipeline. *)
let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let finish c = Int32.of_int ((c lxor 0xFFFFFFFF) land 0xFFFFFFFF)

let crc32 bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Checksum.crc32: range out of bounds";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get t ((!c lxor Char.code (Bytes.unsafe_get bytes i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  finish !c

let crc32_all bytes = crc32 bytes ~pos:0 ~len:(Bytes.length bytes)

(* Accessor-based variant: CRCs bytes fetched through [get] so off-heap
   stores (Pagestore pages) are checksummed in place, without staging a
   copy on the OCaml heap. *)
let crc32_get ~get ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Checksum.crc32_get: negative range";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get t ((!c lxor get i) land 0xFF) lxor (!c lsr 8)
  done;
  finish !c

let crc32_string s = crc32_all (Bytes.of_string s)
