(** OLTP-like workload (§4.2): predominantly random reads and updates over
    a database-like working set.  Updates are 4KiB random overwrites;
    reads do not mutate state but are counted so throughput can be reported
    in total client operations. *)

type t

type cp_result = {
  report : Wafl_core.Cp.report;
  reads : int;
  updates : int;
}

val create :
  Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> working_set:int -> ?read_fraction:float ->
  ?file:int -> rng:Wafl_util.Rng.t -> unit -> t
(** [read_fraction] defaults to 0.6. *)

val step : t -> int -> cp_result
(** Issue [n] client operations (reads + updates per the mix) and run one
    CP over the updates. *)
