test/test_workload.ml: Aggregate Aging Alcotest Config Cp Fs Oltp Printf Random_overwrite Sequential Wafl_core Wafl_device Wafl_util Wafl_workload
