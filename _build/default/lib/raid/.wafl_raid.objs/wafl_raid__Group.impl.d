lib/raid/group.ml: Array Chain Format Geometry Hashtbl List Stripe Tetris Wafl_block
