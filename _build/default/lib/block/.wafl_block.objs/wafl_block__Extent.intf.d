lib/block/extent.mli: Format
