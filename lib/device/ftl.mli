(** Flash translation layer simulator for SSDs.

    Models the mechanism §3.2.2 describes: flash is written in whole erase
    blocks, so when the host (re)writes only part of the logical range
    covered by an erase block, the FTL must first relocate the still-live
    data of that erase block elsewhere, erase it, and then program the new
    data (Figure 4).  The ratio of pages physically programmed to pages the
    host wrote is the {e write amplification}; 1.0 is ideal.

    The simulator is erase-block-mapped with a bounded set of {e open}
    erase blocks (real drives expose a limited number of write streams):

    - writing into a closed erase block {e opens} it, paying the relocation
      of its live pages that the incoming batch does not overwrite, plus an
      erase;
    - subsequent writes into an open erase block are free appends, so a
      sequential pass over a region costs the same no matter how it is
      split across CP batches;
    - an erase block closes once a full block's worth of pages has been
      appended since it was opened, or when it is evicted (LRU) because too
      many blocks are open.

    Small AAs hurt exactly as the paper argues: each AA covers a fraction
    of an erase block, and by the time a neighbouring AA is picked the
    block has been evicted, so its live data is relocated again — whereas
    an erase-block-aligned AA rewrites whole blocks in one open/close
    cycle.  Overprovisioned spare capacity absorbs a fraction
    [overprovision / (1 + overprovision)] of the relocation traffic.

    Because WAFL allocates only free VBNs, host "overwrites" of an LBA occur
    when the write allocator reuses the VBN; WAFL communicates frees to the
    device as trims, which kill pages without relocation. *)

type t

type stats = {
  host_pages_written : int;
  device_pages_written : int;  (** host writes + relocations *)
  relocated_pages : int;
  erases : int;
  trimmed_pages : int;
}

val create :
  ?profile:Profile.ssd -> ?open_blocks:int -> logical_blocks:int -> unit -> t
(** A device exporting [logical_blocks] 4KiB pages.  [open_blocks]
    (default 8) is the number of simultaneously open erase blocks. *)

val logical_blocks : t -> int
val profile : t -> Profile.ssd

val set_fault : t -> Wafl_fault.Fault.device option -> unit
(** Attach (or detach) a fault-injection handle.  With one attached,
    {!write_batch} consults it per page: failed pages never reach the
    flash, torn pages are programmed but do not become live. *)

val fault : t -> Wafl_fault.Fault.device option

val live_pages_in : t -> start:int -> len:int -> int
(** Pages in the logical range currently holding live data. *)

val is_open : t -> eb:int -> bool
(** Whether an erase block is currently open for appends. *)

val write_batch : t -> int list -> unit
(** Process one flush's host writes (logical page numbers; duplicates are
    coalesced).  Pages become live. *)

val trim : t -> int -> unit
(** Host free: the page is no longer live; no-op when already dead. *)

val trim_batch : t -> int list -> unit

val stats : t -> stats

val write_amplification : t -> float
(** [device_pages_written / host_pages_written]; 1.0 when no host writes. *)

val service_time_us : t -> stats_delta:stats -> float
(** Device time for a window of activity: programs + relocation reads +
    erases, per the profile. *)

val diff_stats : after:stats -> before:stats -> stats

val reset_stats : t -> unit
