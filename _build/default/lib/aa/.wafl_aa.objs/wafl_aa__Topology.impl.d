lib/aa/topology.ml: Bitops Extent Format Geometry List Wafl_block Wafl_raid Wafl_util
