open Wafl_bitmap
open Wafl_block

let score_of_aa topology metafile i =
  let extents = Topology.extents_of_aa topology i in
  List.fold_left
    (fun acc e ->
      acc + Metafile.free_count metafile ~start:(Extent.start e) ~len:(Extent.len e))
    0 extents

let all_scores topology metafile =
  Array.init (Topology.aa_count topology) (score_of_aa topology metafile)

type delta = { topology : Topology.t; changes : (int, int) Hashtbl.t }

let create_delta topology = { topology; changes = Hashtbl.create 64 }

let bump d vbn amount =
  let aa = Topology.aa_of_vbn d.topology vbn in
  let current = try Hashtbl.find d.changes aa with Not_found -> 0 in
  let updated = current + amount in
  if updated = 0 then Hashtbl.remove d.changes aa else Hashtbl.replace d.changes aa updated

let note_alloc d ~vbn = bump d vbn (-1)
let note_free d ~vbn = bump d vbn 1

let is_empty d = Hashtbl.length d.changes = 0

let fold d ~init ~f = Hashtbl.fold (fun aa change acc -> f acc ~aa ~change) d.changes init

let apply d scores =
  let updates =
    Hashtbl.fold
      (fun aa change acc ->
        let updated = scores.(aa) + change in
        assert (updated >= 0 && updated <= Topology.aa_capacity d.topology aa);
        scores.(aa) <- updated;
        (aa, updated) :: acc)
      d.changes []
  in
  Hashtbl.reset d.changes;
  updates

let clear d = Hashtbl.reset d.changes
