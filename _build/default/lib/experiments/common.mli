(** Shared plumbing for the figure reproductions. *)

type scale = Quick | Full
(** [Quick] shrinks device sizes and iteration counts so the whole suite
    runs in seconds (CI); [Full] uses the sizes DESIGN.md documents. *)

val scale_of_string : string -> scale option

val ssd_profile : scale -> Wafl_device.Profile.ssd
(** Erase blocks sized so the historical HDD AA (4k stripes) covers only a
    fraction of an erase block, as in the paper's Figure 4 (A). *)

val ssd_raid_group :
  scale -> aa_stripes:int option -> Wafl_core.Config.raid_group_spec

val hdd_raid_group : scale -> Wafl_core.Config.raid_group_spec

val smr_profile : scale -> Wafl_device.Profile.smr

val smr_raid_group :
  scale -> aa_stripes:int option -> Wafl_core.Config.raid_group_spec

val vol_blocks : scale -> int

val banner : string -> unit
(** Print an experiment header. *)

val kv : string -> string -> unit
(** Print one "key: value" line. *)

val pct : float -> float -> string
(** [pct a b] formats the relative change from [b] to [a] as "+x.x%" /
    "-x.x%". *)

val paper_vs_measured :
  metric:string -> paper:string -> measured:string -> ok:bool -> unit
(** One row of the paper-vs-measured comparison, with an OK/DIVERGES
    marker. *)
