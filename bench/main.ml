(* Benchmark harness: one section per paper table/figure plus bechamel
   microbenchmarks of the AA-cache data structures.

   Usage:
     bench/main.exe               run everything at quick scale
     bench/main.exe full          run everything at full scale
     bench/main.exe micro         microbenchmarks only
     bench/main.exe telemetry     telemetry overhead (pick path + end-to-end)
     bench/main.exe alloc [full]  allocation hot path: list queue vs harvest
                                  ring; writes BENCH_alloc.json and asserts
                                  the consume window allocates zero words
     bench/main.exe faults [full] fault-plane overhead on the CP write path:
                                  no plane vs zero-probability hooks vs the
                                  default transient profile
     bench/main.exe par [full]    domain-parallel scan engine: full-scan mount
                                  rebuild + sharded CP at 1/2/4/8 domains vs
                                  serial; writes BENCH_par.json and asserts
                                  bit-identical state and a zero-allocation
                                  consume window under an installed pool
     bench/main.exe scrub        persisted-state integrity: asserts the sealed
                                  consume window allocates zero words and CP
                                  sealing costs <5%, injects bit-rot and a
                                  lost write, scrub-heals, and verifies a
                                  fresh-process remount is damage-free;
                                  writes BENCH_scrub.json
     bench/main.exe latency      request-level latency observability: asserts
                                  the Hdrhist record path allocates zero minor
                                  words per op, uninstalled hooks stay
                                  branch-only, an installed recorder adds <5%
                                  CP time, an injected device spike produces a
                                  device_flush-blamed tail exemplar and an SLO
                                  breach, and the measured closed-loop curve
                                  matches the analytic M/G/1 sweep's shape;
                                  writes BENCH_latency.json
     bench/main.exe fig6|fig7|fig8|fig9|fig10|scalars [full]
*)

open Bechamel
open Toolkit
open Wafl_experiments

(* --- microbenchmarks: the §3.3 data-structure operations --- *)

let n_aas = 100_000
let max_score = 32_768

let scores seed = Array.init n_aas (fun i -> (i * seed) mod (max_score + 1))

let heap_take_and_refile () =
  let h = Wafl_aacache.Max_heap.of_scores (scores 7919) in
  Staged.stage (fun () ->
      match Wafl_aacache.Max_heap.extract_best h with
      | Some (aa, _) -> Wafl_aacache.Max_heap.insert h ~aa ~score:(aa mod max_score)
      | None -> ())

let heap_update () =
  let h = Wafl_aacache.Max_heap.of_scores (scores 7919) in
  let i = ref 0 in
  Staged.stage (fun () ->
      i := (!i + 7919) mod n_aas;
      Wafl_aacache.Max_heap.update h ~aa:!i ~score:((!i * 31) mod max_score))

let hbps_take_and_refile () =
  let h = Wafl_aacache.Hbps.create ~max_score ~scores:(scores 104729) () in
  Wafl_aacache.Hbps.replenish h;
  Staged.stage (fun () ->
      match Wafl_aacache.Hbps.take_best h with
      | Some (aa, _) -> Wafl_aacache.Hbps.update h ~aa ~score:(aa mod max_score)
      | None -> Wafl_aacache.Hbps.replenish h)

let hbps_update () =
  let h = Wafl_aacache.Hbps.create ~max_score ~scores:(scores 104729) () in
  Wafl_aacache.Hbps.replenish h;
  let i = ref 0 in
  Staged.stage (fun () ->
      i := (!i + 104729) mod n_aas;
      Wafl_aacache.Hbps.update h ~aa:!i ~score:((!i * 17) mod max_score))

let full_sort_baseline () =
  (* the strawman HBPS replaces: fully sorting all AAs to find the best *)
  let s = scores 7919 in
  Staged.stage (fun () ->
      let copy = Array.copy s in
      Array.sort (fun a b -> Int.compare b a) copy;
      ignore copy.(0))

let hbps_replenish () =
  let h = Wafl_aacache.Hbps.create ~max_score ~scores:(scores 104729) () in
  Staged.stage (fun () -> Wafl_aacache.Hbps.replenish h)

let micro_tests =
  Test.make_grouped ~name:"aa-cache"
    [
      Test.make ~name:"max-heap take+refile (100k AAs)" (heap_take_and_refile ());
      Test.make ~name:"max-heap update" (heap_update ());
      Test.make ~name:"hbps take+refile (100k AAs)" (hbps_take_and_refile ());
      Test.make ~name:"hbps update" (hbps_update ());
      Test.make ~name:"hbps replenish scan" (hbps_replenish ());
      Test.make ~name:"full-sort baseline" (full_sort_baseline ());
    ]

let run_micro () =
  print_endline "\n================================================================";
  print_endline "Microbenchmarks: HBPS vs max-heap vs full sort (ns/op)";
  print_endline "================================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances micro_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-52s %12.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "  %-52s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* --- telemetry overhead on the pick path ---

   The same take+refile loop as the microbenchmarks, run through the
   Cache layer under three configurations: telemetry uninstalled,
   installed with tracing off, and installed with tracing on.  The first
   two must be indistinguishable (the emitters reduce to one match on a
   global ref); tracing on is allowed a small ring-buffer push cost. *)

let bench_pick_loop cache iters =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    match Wafl_aacache.Cache.take_best cache with
    | Some (aa, _) -> Wafl_aacache.Cache.cp_update cache [ (aa, aa mod max_score) ]
    | None -> ()
  done;
  Unix.gettimeofday () -. t0

let run_telemetry_overhead () =
  print_endline "\n================================================================";
  print_endline "Telemetry overhead: Cache.take_best + cp_update re-file (ns/op)";
  print_endline "================================================================";
  let iters = 300_000 in
  let fresh () = Wafl_aacache.Cache.raid_aware ~scores:(scores 7919) () in
  let time_config label configure =
    let cache = fresh () in
    ignore (bench_pick_loop cache (iters / 10)) (* warm up *);
    let secs = configure (fun () -> bench_pick_loop (fresh ()) iters) in
    let ns = secs /. float_of_int iters *. 1e9 in
    (label, ns)
  in
  let off = time_config "telemetry uninstalled" (fun f -> f ()) in
  let installed =
    time_config "installed, tracing off" (fun f ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ())
          f)
  in
  let tracing =
    time_config "installed, tracing on" (fun f ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ~tracing:true ())
          f)
  in
  let base = snd off in
  List.iter
    (fun (label, ns) ->
      Printf.printf "  %-28s %10.1f ns/op   (%+.1f%% vs uninstalled)\n" label ns
        ((ns -. base) /. base *. 100.0))
    [ off; installed; tracing ];
  (* Span enter/exit pair in isolation: the per-phase cost an installed
     recorder adds (uninstalled it is one match on a global ref). *)
  let span_pair_ns label =
    let iters = 1_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Wafl_telemetry.Telemetry.span_enter Wafl_telemetry.Span.Pick;
      Wafl_telemetry.Telemetry.span_exit Wafl_telemetry.Span.Pick
    done;
    let ns = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9 in
    Printf.printf "  span enter+exit %-12s %10.1f ns/pair\n" label ns
  in
  span_pair_ns "uninstalled";
  Wafl_telemetry.Telemetry.with_installed
    (Wafl_telemetry.Telemetry.create ())
    (fun () -> span_pair_ns "installed");
  (* End-to-end: CP throughput of a sequential write workload, where the
     pick path is one small component.  This is the number the <5%
     regression budget applies to. *)
  print_endline "";
  print_endline "End-to-end: sequential workload, 30 CPs x 1000 blocks (blocks/s)";
  let run_workload () =
    let open Wafl_core in
    let rg = Common.hdd_raid_group Common.Quick in
    let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
    let config =
      Config.make ~raid_groups:[ rg ]
        ~vols:
          [ { Config.name = "seq"; blocks = agg_blocks; aa_blocks = None;
              policy = Config.Best_aa } ]
        ~aggregate_policy:Config.Best_aa ~seed:7 ()
    in
    let fs = Fs.create config in
    let workload = Wafl_workload.Sequential.create fs (Fs.vol fs "seq") () in
    let t0 = Unix.gettimeofday () in
    let blocks = ref 0 in
    for _ = 1 to 30 do
      let r = Wafl_workload.Sequential.step workload 1000 in
      blocks := !blocks + r.Cp.blocks_allocated
    done;
    float_of_int !blocks /. (Unix.gettimeofday () -. t0)
  in
  ignore (run_workload ()) (* warm up *);
  ignore (run_workload ());
  (* best-of-3 per configuration: the workload is deterministic, so the
     fastest run is the least noise-polluted one *)
  let best f = List.fold_left (fun acc _ -> Float.max acc (f ())) 0.0 [ (); (); () ] in
  let e2e_off = best run_workload in
  let e2e_installed =
    best (fun () ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ())
          run_workload)
  in
  let e2e_tracing =
    best (fun () ->
        Wafl_telemetry.Telemetry.with_installed
          (Wafl_telemetry.Telemetry.create ~tracing:true ())
          run_workload)
  in
  List.iter
    (fun (label, rate) ->
      Printf.printf "  %-28s %12.0f blocks/s (%+.1f%% vs uninstalled)\n" label rate
        ((e2e_off -. rate) /. e2e_off *. -100.0))
    [
      ("telemetry uninstalled", e2e_off);
      ("installed, tracing off", e2e_installed);
      ("installed, tracing on", e2e_tracing);
    ];
  (* An installed instance now records spans and per-CP time-series rows,
     so the "installed, tracing off" delta is the span overhead the <5%
     regression budget is stated against. *)
  Printf.printf "  span+series overhead (installed vs uninstalled): %+.1f%% (budget < 5%%)\n"
    ((e2e_off -. e2e_installed) /. e2e_off *. 100.0)

(* --- allocation hot path: list queue vs harvest ring (PR 2) ---

   Two identically configured Best_aa aggregates run the same workload —
   fill to 75% in CP-sized chunks, then free every other allocated block
   and allocate them back — once through a faithful reconstruction of the
   pre-harvest allocator (per-AA free VBNs gathered into an int list by
   probing the bitmap per block, a second is_allocated check on every
   pop, one list cell per block) and once through
   Write_alloc.allocate_pvbns_into over the cursor ring.  Reports
   ns/block and bitmap words read per block, asserts the ring-served
   consume window allocates zero minor heap words, and writes the
   numbers to BENCH_alloc.json. *)

let cp_chunk = 4096

let alloc_config scale =
  let rg = Common.hdd_raid_group scale in
  Wafl_core.Config.make ~raid_groups:[ rg ] ~aggregate_policy:Wafl_core.Config.Best_aa
    ~seed:7 ()

type list_cursor = { mutable queue : int list }

let rec baseline_pick cache attempts =
  if attempts = 0 then None
  else
    match Wafl_aacache.Cache.take_best cache with
    | None -> None
    | Some (aa, score) -> if score > 0 then Some aa else baseline_pick cache (attempts - 1)

(* The removed list-returning Aggregate.free_vbns_of_aa, reconstructed
   here verbatim: one is_allocated probe and one list cell per block —
   the very shape the harvest ring replaced. *)
let baseline_free_vbns agg (range : Wafl_core.Aggregate.range) aa =
  let mf = Wafl_core.Aggregate.metafile agg in
  let acc = ref [] in
  Wafl_aa.Topology.iter_aa_vbns range.Wafl_core.Aggregate.topology aa ~f:(fun local ->
      let pvbn = Wafl_core.Aggregate.to_global range local in
      if not (Wafl_bitmap.Metafile.is_allocated mf pvbn) then acc := pvbn :: !acc);
  List.rev !acc

let rec baseline_refill agg (range : Wafl_core.Aggregate.range) cur =
  match baseline_pick (Option.get range.Wafl_core.Aggregate.cache) 8 with
  | None -> false
  | Some aa ->
    cur.queue <- baseline_free_vbns agg range aa;
    cur.queue <> [] || baseline_refill agg range cur

(* Mirrors the old Write_alloc.take_from_range: pops accumulate into a
   list that is reversed to allocation order, with the per-pop metafile
   re-check the list queue needed (it could be stale across CPs). *)
let baseline_take agg range cur mf want =
  let rec go acc want =
    if want = 0 then acc
    else
      match cur.queue with
      | pvbn :: rest ->
        cur.queue <- rest;
        if Wafl_bitmap.Metafile.is_allocated mf pvbn then go acc want
        else begin
          Wafl_core.Aggregate.allocate agg ~pvbn;
          go (pvbn :: acc) (want - 1)
        end
      | [] -> if baseline_refill agg range cur then go acc want else acc
  in
  List.rev (go [] want)

(* Free every other block of [allocated], commit, and return how many. *)
let free_alternate agg allocated n =
  let freed = ref 0 in
  let i = ref 0 in
  while !i < n do
    Wafl_core.Aggregate.queue_free agg ~pvbn:allocated.(!i);
    incr freed;
    i := !i + 2
  done;
  ignore (Wafl_core.Aggregate.commit_frees agg);
  !freed

type alloc_run = {
  fill_secs : float;
  fill_blocks : int;
  frag_secs : float;
  frag_blocks : int;
  fill_words : int; (* bitmap words read by the harvest kernels; 0 for baseline *)
  frag_words : int;
}

(* The timed window per CP chunk is allocate + consumer walk + CP-boundary
   cache update — the allocator hot path a CP writer pays.  Recording the
   PVBNs for the later free phase is bench bookkeeping and stays outside
   the timer. *)
let run_alloc_baseline scale =
  let agg = Wafl_core.Aggregate.create (alloc_config scale) in
  let range = (Wafl_core.Aggregate.ranges agg).(0) in
  let mf = Wafl_core.Aggregate.metafile agg in
  let cur = { queue = [] } in
  let fill_target = Wafl_core.Aggregate.total_blocks agg * 3 / 4 in
  let allocated = Array.make fill_target 0 in
  let sum = ref 0 in
  let phase target =
    let secs = ref 0.0 in
    let got = ref 0 in
    while !got < target do
      let want = min cp_chunk (target - !got) in
      let t0 = Unix.gettimeofday () in
      let blocks = baseline_take agg range cur mf want in
      (* the consumer walks the returned list *)
      List.iter (fun pvbn -> sum := !sum lxor pvbn) blocks;
      Wafl_core.Aggregate.cp_update_caches agg;
      secs := !secs +. (Unix.gettimeofday () -. t0);
      let k = ref !got in
      List.iter
        (fun pvbn ->
          allocated.(!k) <- pvbn;
          incr k)
        blocks;
      if !k = !got then failwith "bench alloc: baseline ran out of space";
      got := !k
    done;
    !secs
  in
  let fill_secs = phase fill_target in
  let frag_target = free_alternate agg allocated fill_target in
  Wafl_core.Aggregate.cp_update_caches agg;
  let frag_secs = phase frag_target in
  ignore !sum;
  {
    fill_secs;
    fill_blocks = fill_target;
    frag_secs;
    frag_blocks = frag_target;
    fill_words = 0;
    frag_words = 0;
  }

let run_alloc_harvest scale =
  let agg = Wafl_core.Aggregate.create (alloc_config scale) in
  let w = Wafl_core.Write_alloc.create agg ~rng:(Wafl_util.Rng.create ~seed:7) in
  let fill_target = Wafl_core.Aggregate.total_blocks agg * 3 / 4 in
  let allocated = Array.make fill_target 0 in
  let dst = Array.make cp_chunk 0 in
  let sum = ref 0 in
  let phase target =
    let secs = ref 0.0 in
    let got = ref 0 in
    while !got < target do
      let want = min cp_chunk (target - !got) in
      let t0 = Unix.gettimeofday () in
      let n = Wafl_core.Write_alloc.allocate_pvbns_into w ~dst want in
      (* the consumer reads the filled array *)
      for i = 0 to n - 1 do
        sum := !sum lxor dst.(i)
      done;
      Wafl_core.Write_alloc.cp_finish w;
      secs := !secs +. (Unix.gettimeofday () -. t0);
      if n = 0 then failwith "bench alloc: harvest ran out of space";
      Array.blit dst 0 allocated !got n;
      got := !got + n
    done;
    !secs
  in
  let words0 = Wafl_core.Write_alloc.words_scanned w in
  let fill_secs = phase fill_target in
  let fill_words = Wafl_core.Write_alloc.words_scanned w - words0 in
  let frag_target = free_alternate agg allocated fill_target in
  Wafl_core.Write_alloc.cp_finish w;
  let words1 = Wafl_core.Write_alloc.words_scanned w in
  let frag_secs = phase frag_target in
  let frag_words = Wafl_core.Write_alloc.words_scanned w - words1 in
  ignore !sum;
  {
    fill_secs;
    fill_blocks = fill_target;
    frag_secs;
    frag_blocks = frag_target;
    fill_words;
    frag_words;
  }

(* The workloads are deterministic; best-of-5 takes the least
   noise-polluted run of each phase. *)
let best_of_5 run scale =
  let rec go best k =
    if k = 0 then best
    else
      let r = run scale in
      go
        {
          r with
          fill_secs = Float.min best.fill_secs r.fill_secs;
          frag_secs = Float.min best.frag_secs r.frag_secs;
        }
        (k - 1)
  in
  go (run scale) 4

(* Ring-served consume window must allocate nothing: warm call fills the
   cursor ring (one quick-scale AA holds 4096 blocks), second call is
   served entirely from it. *)
let alloc_zero_alloc_words ?(backend = Wafl_bitmap.Pagestore.Heap) () =
  Wafl_bitmap.Pagestore.with_default backend (fun () ->
      let agg = Wafl_core.Aggregate.create (alloc_config Common.Quick) in
      let w = Wafl_core.Write_alloc.create agg ~rng:(Wafl_util.Rng.create ~seed:7) in
      let dst = Array.make 256 0 in
      ignore (Wafl_core.Write_alloc.allocate_pvbns_into w ~dst 256);
      let before = Gc.minor_words () in
      ignore (Wafl_core.Write_alloc.allocate_pvbns_into w ~dst 256);
      Gc.minor_words () -. before)

let ns_per_block secs blocks = secs /. float_of_int blocks *. 1e9

let alloc_scale_json scale_name base harv =
  let wpb w b = float_of_int w /. float_of_int b in
  Printf.sprintf
    {|    {
      "scale": "%s",
      "blocks": { "fill": %d, "refill": %d },
      "baseline_list_queue": {
        "fill_ns_per_block": %.1f,
        "refill_ns_per_block": %.1f
      },
      "harvest_ring": {
        "fill_ns_per_block": %.1f,
        "refill_ns_per_block": %.1f,
        "fill_words_per_block": %.3f,
        "refill_words_per_block": %.3f
      },
      "speedup": { "fill": %.2f, "refill": %.2f, "overall": %.2f }
    }|}
    scale_name base.fill_blocks base.frag_blocks
    (ns_per_block base.fill_secs base.fill_blocks)
    (ns_per_block base.frag_secs base.frag_blocks)
    (ns_per_block harv.fill_secs harv.fill_blocks)
    (ns_per_block harv.frag_secs harv.frag_blocks)
    (wpb harv.fill_words harv.fill_blocks)
    (wpb harv.frag_words harv.frag_blocks)
    (base.fill_secs /. harv.fill_secs)
    (base.frag_secs /. harv.frag_secs)
    ((base.fill_secs +. base.frag_secs) /. (harv.fill_secs +. harv.frag_secs))

let run_alloc ~scale () =
  Common.banner "Allocation hot path: list queue vs harvest ring (ns/block)";
  let scales =
    match scale with Common.Quick -> [ Common.Quick ] | Common.Full -> [ Common.Quick; Common.Full ]
  in
  let sections =
    List.map
      (fun s ->
        let name = match s with Common.Quick -> "quick" | Common.Full -> "full" in
        let base = best_of_5 run_alloc_baseline s in
        let harv = best_of_5 run_alloc_harvest s in
        Printf.printf "  [%s] fill   %8.1f -> %7.1f ns/block  (%.2fx, %.3f words/block)\n" name
          (ns_per_block base.fill_secs base.fill_blocks)
          (ns_per_block harv.fill_secs harv.fill_blocks)
          (base.fill_secs /. harv.fill_secs)
          (float_of_int harv.fill_words /. float_of_int harv.fill_blocks);
        Printf.printf "  [%s] refill %8.1f -> %7.1f ns/block  (%.2fx, %.3f words/block)\n" name
          (ns_per_block base.frag_secs base.frag_blocks)
          (ns_per_block harv.frag_secs harv.frag_blocks)
          (base.frag_secs /. harv.frag_secs)
          (float_of_int harv.frag_words /. float_of_int harv.frag_blocks);
        alloc_scale_json name base harv)
      scales
  in
  let zero_words = alloc_zero_alloc_words ~backend:Wafl_bitmap.Pagestore.Heap () in
  let zero_words_big = alloc_zero_alloc_words ~backend:Wafl_bitmap.Pagestore.Bigarray () in
  Printf.printf "  ring-served consume window: %.0f minor heap words (heap backend)\n"
    zero_words;
  Printf.printf "  ring-served consume window: %.0f minor heap words (bigarray backend)\n"
    zero_words_big;
  let oc = open_out "BENCH_alloc.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "write-allocation hot path: list-queue baseline vs harvest-ring",
  "workload": "fill one 4+1 HDD raid group to 75%% in 4096-block CPs, then free every other block and allocate them back",
  "zero_alloc_minor_words": %.0f,
  "zero_alloc_minor_words_bigarray": %.0f,
  "scales": [
%s
  ]
}
|}
    zero_words zero_words_big
    (String.concat ",\n" sections);
  close_out oc;
  print_endline "  wrote BENCH_alloc.json";
  if zero_words <> 0.0 || zero_words_big <> 0.0 then begin
    Printf.eprintf
      "FAIL: ring-served allocation window allocated minor words (heap %.0f, bigarray %.0f; \
       expected 0)\n"
      zero_words zero_words_big;
    exit 1
  end

(* --- domain-parallel scan engine: scaling curve (PR 4) ---

   One aged two-RAID-group system, snapshotted once, then remounted with
   a full-scan rebuild and driven through one CP commit — serially and
   under installed pools of 1/2/4/8 domains.  Reports honest wall-clock
   for every configuration (this host may have a single core, in which
   case parallel wall-clock cannot improve) alongside the modeled
   [ready_us] of the full-scan mount, whose linear page-scan term divides
   by the domain count — the number the >=2.5x acceptance criterion is
   stated against.  Asserts that every parallel configuration reproduces
   the serial cache scores and CP report exactly, and that the ring-served
   consume window still allocates zero minor words with a pool installed. *)

let par_jobs_list = [ 1; 2; 4; 8 ]

let par_config scale =
  let rg = Common.hdd_raid_group scale in
  Wafl_core.Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Wafl_core.Config.default_vol ~name:"vol0" ~blocks:65_536 ]
    ~aggregate_policy:Wafl_core.Config.Best_aa ~seed:7 ()

(* Age the system with overwrite pressure so the rebuild and the CP have
   nonuniform free space to chew on, then freeze it as a crash image. *)
let par_build_image scale =
  let fs = Wafl_core.Fs.create (par_config scale) in
  let vol = (Wafl_core.Fs.vols fs).(0) in
  let cps, ops = match scale with Common.Quick -> (4, 2048) | Common.Full -> (8, 8192) in
  for cp = 0 to cps - 1 do
    for i = 0 to ops - 1 do
      Wafl_core.Fs.stage_write fs ~vol ~file:(cp mod 4) ~offset:i
    done;
    ignore (Wafl_core.Fs.run_cp fs)
  done;
  Wafl_core.Mount.snapshot fs

(* jobs = 0 means "no pool at all" — the serial baseline. *)
let par_with_jobs jobs f =
  if jobs = 0 then f ()
  else begin
    Wafl_par.Par.install ~jobs;
    Fun.protect ~finally:Wafl_par.Par.uninstall f
  end

let par_time_best n f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

(* The observable allocator state a rebuild must reproduce: every range's
   and volume's score array. *)
let par_state_of fs =
  ( Array.map
      (fun (r : Wafl_core.Aggregate.range) -> Array.copy r.Wafl_core.Aggregate.scores)
      (Wafl_core.Aggregate.ranges (Wafl_core.Fs.aggregate fs)),
    Array.map (fun v -> Array.copy (Wafl_core.Flexvol.scores v)) (Wafl_core.Fs.vols fs) )

type par_run = {
  mount_wall_s : float;
  mount_ready_us : float;
  cp_wall_s : float;
  state : int array array * int array array;
  cp_report : Wafl_core.Cp.report;
}

(* Full-scan remount, then one overwrite-heavy CP, both timed. *)
let par_run_once image scale jobs =
  par_with_jobs jobs (fun () ->
      let reps = match scale with Common.Quick -> 3 | Common.Full -> 2 in
      let mount_wall_s, (fs, timing) =
        par_time_best reps (fun () -> Wafl_core.Mount.mount image ~with_topaa:false)
      in
      let state = par_state_of fs in
      let vol = (Wafl_core.Fs.vols fs).(0) in
      let ops = match scale with Common.Quick -> 4096 | Common.Full -> 16384 in
      for i = 0 to ops - 1 do
        Wafl_core.Fs.stage_write fs ~vol ~file:(i mod 4) ~offset:(i mod 2048)
      done;
      let t0 = Unix.gettimeofday () in
      let cp_report = Wafl_core.Fs.run_cp fs in
      let cp_wall_s = Unix.gettimeofday () -. t0 in
      {
        mount_wall_s;
        mount_ready_us = timing.Wafl_core.Mount.ready_us;
        cp_wall_s;
        state;
        cp_report;
      })

let run_par ~scale () =
  Common.banner "Domain-parallel scans: full-scan mount + sharded CP (wall vs modeled)";
  let image = par_build_image scale in
  let serial = par_run_once image scale 0 in
  Printf.printf "  host cores: %d (wall-clock speedup is bounded by this)\n"
    (Domain.recommended_domain_count ());
  Printf.printf "  %-8s mount %8.1f ms wall  ready_us %12.0f   cp %8.1f ms wall\n" "serial"
    (serial.mount_wall_s *. 1e3) serial.mount_ready_us (serial.cp_wall_s *. 1e3);
  let runs =
    List.map
      (fun jobs ->
        let r = par_run_once image scale jobs in
        let identical = r.state = serial.state && r.cp_report = serial.cp_report in
        Printf.printf
          "  jobs=%-3d mount %8.1f ms wall  ready_us %12.0f   cp %8.1f ms wall  %s\n" jobs
          (r.mount_wall_s *. 1e3) r.mount_ready_us (r.cp_wall_s *. 1e3)
          (if identical then "state=serial" else "STATE MISMATCH");
        if not identical then begin
          Printf.eprintf "FAIL: jobs=%d diverged from the serial mount/CP state\n" jobs;
          exit 1
        end;
        (jobs, r))
      par_jobs_list
  in
  let modeled_speedup jobs =
    serial.mount_ready_us /. (List.assoc jobs runs).mount_ready_us
  in
  let jobs1 = List.assoc 1 runs in
  let jobs1_delta_pct =
    (jobs1.mount_wall_s -. serial.mount_wall_s) /. serial.mount_wall_s *. 100.0
  in
  Printf.printf "  modeled full-scan mount speedup at 4 domains: %.2fx (acceptance >= 2.5)\n"
    (modeled_speedup 4);
  Printf.printf "  jobs=1 mount wall vs serial: %+.1f%%\n" jobs1_delta_pct;
  let zero_words =
    par_with_jobs 4 (fun () -> alloc_zero_alloc_words ())
  in
  Printf.printf "  ring-served consume window under a 4-domain pool: %.0f minor words\n"
    zero_words;
  let scale_name = match scale with Common.Quick -> "quick" | Common.Full -> "full" in
  let run_json (jobs, (r : par_run)) =
    Printf.sprintf
      {|    {
      "jobs": %d,
      "mount_wall_s": %.6f,
      "mount_ready_us": %.0f,
      "modeled_mount_speedup": %.3f,
      "cp_wall_s": %.6f,
      "state_identical_to_serial": true
    }|}
      jobs r.mount_wall_s r.mount_ready_us
      (serial.mount_ready_us /. r.mount_ready_us)
      r.cp_wall_s
  in
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "domain-parallel scan engine: full-scan mount rebuild + sharded CP commit",
  "workload": "age a two-raid-group system with overwrites, snapshot, remount with a full bitmap scan, then commit one overwrite-heavy CP",
  "scale": "%s",
  "host_cores": %d,
  "note": "wall-clock is honest for this host and cannot beat host_cores; the acceptance speedup is stated on the modeled full-scan ready_us, whose linear page-scan term divides by the domain count",
  "serial": { "mount_wall_s": %.6f, "mount_ready_us": %.0f, "cp_wall_s": %.6f },
  "modeled_mount_speedup_at_4_domains": %.3f,
  "jobs1_mount_wall_vs_serial_pct": %.2f,
  "zero_alloc_minor_words_under_pool": %.0f,
  "runs": [
%s
  ]
}
|}
    scale_name
    (Domain.recommended_domain_count ())
    serial.mount_wall_s serial.mount_ready_us serial.cp_wall_s (modeled_speedup 4)
    jobs1_delta_pct zero_words
    (String.concat ",\n" (List.map run_json runs));
  close_out oc;
  print_endline "  wrote BENCH_par.json";
  if zero_words <> 0.0 then begin
    Printf.eprintf
      "FAIL: consume window under a pool allocated %.0f minor words (expected 0)\n" zero_words;
    exit 1
  end;
  if modeled_speedup 4 < 2.5 then begin
    Printf.eprintf "FAIL: modeled mount speedup at 4 domains %.2fx < 2.5x\n"
      (modeled_speedup 4);
    exit 1
  end

(* --- lock-free multi-writer allocation front-end: "alloc par" (PR 7) ---

   Fill a byte-aligned two-raid-group aggregate to capacity through
   [Write_alloc.allocate_pvbns_into] in ONE allocation window at
   1/2/4/8 allocation domains, so the per-shard window stats cover the
   whole fill.  Hard gates: every domain count hands out exactly the
   serial block count and leaves a bitmap identical to the serial fill,
   the pop-consume loops allocate zero minor-heap words on every shard,
   and the modeled speedup at 4 domains is >= 2.5x.  Wall-clock blocks/s
   is reported honestly (bounded by host cores); the acceptance is
   stated on the modeled number: per-block consume work divides by the
   domain count (the largest per-shard share is the critical path),
   while each AA pick serializes behind the pick mutex at a stated cost
   of [allocpar_pick_units] block-equivalents, and any post-window
   serial tail stays serial. *)

let allocpar_jobs_list = [ 1; 2; 4; 8 ]
let allocpar_pick_units = 64

let allocpar_config scale =
  let rg = Common.hdd_raid_group scale in
  Wafl_core.Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Wafl_core.Config.default_vol ~name:"vol0" ~blocks:4096 ]
    ~aggregate_policy:Wafl_core.Config.Best_aa ~seed:7 ()

type allocpar_run = {
  ap_wall_s : float;
  ap_blocks : int;
  ap_steals : int;
  ap_minor_words : int;
  ap_max_shard : int;    (* per-window largest shard share, summed *)
  ap_serial_tail : int;  (* blocks the post-window serial retry handed out *)
  ap_picks : int;        (* AAs taken, i.e. serialized pick-mutex sections *)
  ap_bitmap : Wafl_bitmap.Bitmap.t;
}

(* Every batch is asked at the full batch size even near the end, so each
   call opens an allocation window (at jobs > 1) and ring leftovers from
   chunk-exact fills drain in the following window — the same cadence a
   CP's repeated allocation calls have. *)
let allocpar_batch = 65_536

let allocpar_run_once scale jobs =
  let install = jobs > 1 in
  if install then Wafl_core.Write_alloc.install_alloc_pool ~jobs;
  Fun.protect
    ~finally:(fun () ->
      if install then Wafl_core.Write_alloc.uninstall_alloc_pool ())
    (fun () ->
      let fs = Wafl_core.Fs.create (allocpar_config scale) in
      let wa = Wafl_core.Fs.write_alloc fs in
      let agg = Wafl_core.Fs.aggregate fs in
      let n = Wafl_core.Aggregate.free_blocks agg in
      let dst = Array.make allocpar_batch 0 in
      let total = ref 0 in
      let window_blocks = ref 0 in
      let max_shard_units = ref 0 in
      let steals = ref 0 in
      let minor = ref 0 in
      let t0 = Unix.gettimeofday () in
      let rec fill () =
        let got = Wafl_core.Write_alloc.allocate_pvbns_into wa ~dst allocpar_batch in
        total := !total + got;
        if install then begin
          let stats = Wafl_core.Write_alloc.last_par_stats wa in
          let window_max = ref 0 in
          Array.iter
            (fun s ->
              window_blocks := !window_blocks + s.Wafl_core.Write_alloc.ps_allocated;
              window_max := max !window_max s.Wafl_core.Write_alloc.ps_allocated;
              steals := !steals + s.Wafl_core.Write_alloc.ps_steals;
              minor := !minor + s.Wafl_core.Write_alloc.ps_minor_words)
            stats;
          max_shard_units := !max_shard_units + !window_max
        end;
        if got > 0 then fill ()
      in
      fill ();
      let wall = Unix.gettimeofday () -. t0 in
      if !total <> n || Wafl_core.Aggregate.free_blocks agg <> 0 then begin
        Printf.eprintf "FAIL: alloc par jobs=%d handed out %d of %d blocks (%d left free)\n"
          jobs !total n (Wafl_core.Aggregate.free_blocks agg);
        exit 1
      end;
      {
        ap_wall_s = wall;
        ap_blocks = n;
        ap_steals = !steals;
        ap_minor_words = !minor;
        ap_max_shard = !max_shard_units;
        ap_serial_tail = n - !window_blocks;
        ap_picks = Wafl_core.Write_alloc.aas_taken wa;
        ap_bitmap =
          Wafl_bitmap.Metafile.snapshot (Wafl_core.Aggregate.metafile agg);
      })

(* Critical-path block-equivalents of one fill: the largest per-shard
   consume share, plus the serial tail, plus every pick's serialized
   section.  jobs=1 runs entirely on the serial path (max_shard 0,
   tail = blocks), so the same formula covers it. *)
let allocpar_units r =
  r.ap_max_shard + r.ap_serial_tail + (r.ap_picks * allocpar_pick_units)

let run_allocpar ~scale () =
  Common.banner
    "Lock-free multi-writer allocation: fill-to-capacity at 1/2/4/8 domains";
  Printf.printf "  host cores: %d (wall-clock speedup is bounded by this)\n"
    (Domain.recommended_domain_count ());
  let runs =
    List.map (fun jobs -> (jobs, allocpar_run_once scale jobs)) allocpar_jobs_list
  in
  let serial = List.assoc 1 runs in
  let serial_units = float_of_int (allocpar_units serial) in
  let modeled jobs =
    serial_units /. float_of_int (allocpar_units (List.assoc jobs runs))
  in
  List.iter
    (fun (jobs, r) ->
      let identical =
        r.ap_blocks = serial.ap_blocks
        && Wafl_bitmap.Bitmap.equal r.ap_bitmap serial.ap_bitmap
      in
      Printf.printf
        "  jobs=%-3d %9.2f Mblk/s wall  modeled %5.2fx  steals %4d  tail %6d  %s\n"
        jobs
        (float_of_int r.ap_blocks /. r.ap_wall_s /. 1e6)
        (modeled jobs) r.ap_steals r.ap_serial_tail
        (if identical then "state=serial" else "STATE MISMATCH");
      if not identical then begin
        Printf.eprintf "FAIL: alloc par jobs=%d diverged from the serial fill\n" jobs;
        exit 1
      end;
      if r.ap_minor_words <> 0 then begin
        Printf.eprintf
          "FAIL: alloc par jobs=%d consume loops allocated %d minor words (expected 0)\n"
          jobs r.ap_minor_words;
        exit 1
      end)
    runs;
  Printf.printf
    "  modeled allocation speedup at 4 domains: %.2fx (acceptance >= 2.5)\n"
    (modeled 4);
  let scale_name = match scale with Common.Quick -> "quick" | Common.Full -> "full" in
  let run_json (jobs, r) =
    Printf.sprintf
      {|    {
      "jobs": %d,
      "wall_s": %.6f,
      "blocks_per_s": %.0f,
      "modeled_speedup": %.3f,
      "serial_tail_blocks": %d,
      "minor_words": %d,
      "state_identical_to_serial": true
    }|}
      jobs r.ap_wall_s
      (float_of_int r.ap_blocks /. r.ap_wall_s)
      (modeled jobs) r.ap_serial_tail r.ap_minor_words
  in
  let oc = open_out "BENCH_allocpar.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "lock-free multi-writer allocation front-end: fill-to-capacity scaling",
  "workload": "allocate every free block of a byte-aligned two-raid-group aggregate in one allocation window per domain count",
  "scale": "%s",
  "host_cores": %d,
  "note": "wall-clock is honest for this host; the acceptance speedup is modeled as critical-path block-equivalents: max per-shard share + serial tail + %d units per serialized AA pick (steal counts are run-dependent and deliberately not numeric leaves)",
  "blocks": %d,
  "picks": %d,
  "serial": { "wall_s": %.6f, "blocks_per_s": %.0f },
  "modeled_alloc_speedup_at_4_domains": %.3f,
  "runs": [
%s
  ]
}
|}
    scale_name
    (Domain.recommended_domain_count ())
    allocpar_pick_units serial.ap_blocks serial.ap_picks serial.ap_wall_s
    (float_of_int serial.ap_blocks /. serial.ap_wall_s)
    (modeled 4)
    (String.concat ",\n" (List.map run_json runs));
  close_out oc;
  print_endline "  wrote BENCH_allocpar.json";
  if modeled 4 < 2.5 then begin
    Printf.eprintf "FAIL: modeled allocation speedup at 4 domains %.2fx < 2.5x\n"
      (modeled 4);
    exit 1
  end

(* --- fault-plane overhead on the CP write path --- *)

(* A plane is attached to every device but never fires: isolates the cost
   of the per-I/O hooks from the cost of actually injecting errors. *)
let zero_fault_spec =
  {
    Wafl_fault.Fault.default_spec with
    Wafl_fault.Fault.transient_p = 0.0;
    torn_p = 0.0;
    spike_p = 0.0;
  }

let run_faults_once spec ~scale =
  (match spec with
  | Some s -> Wafl_fault.Fault.install_default s
  | None -> Wafl_fault.Fault.uninstall_default ());
  Fun.protect ~finally:Wafl_fault.Fault.uninstall_default (fun () ->
      let config =
        Wafl_core.Config.make
          ~raid_groups:[ Common.hdd_raid_group scale ]
          ~vols:[ Wafl_core.Config.default_vol ~name:"vol0" ~blocks:65_536 ]
          ~seed:7 ()
      in
      let fs = Wafl_core.Fs.create config in
      let vol = (Wafl_core.Fs.vols fs).(0) in
      let cps, ops = match scale with Common.Quick -> (6, 4096) | Common.Full -> (12, 8192) in
      let blocks = ref 0 in
      let totals = ref None in
      let t0 = Unix.gettimeofday () in
      for cp = 0 to cps - 1 do
        for i = 0 to ops - 1 do
          Wafl_core.Fs.stage_write fs ~vol ~file:(cp mod 4) ~offset:i
        done;
        let r = Wafl_core.Fs.run_cp fs in
        blocks := !blocks + r.Wafl_core.Cp.blocks_allocated;
        totals := r.Wafl_core.Cp.fault_totals
      done;
      (Unix.gettimeofday () -. t0, !blocks, !totals))

let run_faults ~scale () =
  Common.banner "Fault plane overhead on the CP write path (ns/block)";
  let report name spec =
    let best = ref infinity in
    let blocks = ref 0 in
    let totals = ref None in
    for _ = 1 to 3 do
      let secs, b, t = run_faults_once spec ~scale in
      if secs < !best then best := secs;
      blocks := b;
      totals := t
    done;
    Printf.printf "  %-24s %8.1f ns/block" name (ns_per_block !best !blocks);
    (match !totals with
    | Some t ->
      Printf.printf "  (transients %d, retries ok %d, failed %d)"
        t.Wafl_fault.Fault.injected_transient t.Wafl_fault.Fault.retries_ok
        t.Wafl_fault.Fault.failed
    | None -> ());
    print_newline ();
    !best
  in
  let none = report "no fault plane" None in
  let zero = report "zero-probability plane" (Some zero_fault_spec) in
  let dflt = report "default transients" (Some Wafl_fault.Fault.default_spec) in
  Printf.printf "  hook overhead %+.1f%%, default profile %+.1f%% vs no plane\n"
    (((zero /. none) -. 1.0) *. 100.0)
    (((dflt /. none) -. 1.0) *. 100.0)

(* --- offheap: the page-store backends at modeled billion-block scale (PR 6) ---

   An aggregate of 16 object-backed (RAID-agnostic) ranges is sized at
   2^24 and 2^27 blocks on both backends, and at 2^30 — a modeled
   billion-block aggregate, 128 MiB of allocation bitmap — on the
   bigarray backend, where the GC sees only the store handles.  Each case
   builds the system, commits one small CP's worth of allocations,
   snapshots it, and remounts the image twice: lazily (--lazy-rebuild:
   TopAA-seeded, nothing scanned, every range stale) and eagerly (full
   scan).  After the lazy mount one 8-block allocation shows incremental
   materialization: only the range the allocator actually refilled pays
   its rescore.  Asserts that

   - the lazy modeled mount-ready time is independent of aggregate size
     (largest/smallest under 2.5x — the residual growth is the TopAA
     seed count rising until the top-500-AAs-per-range cap engages —
     while the eager full scan grows ~64x, at least 10x the lazy ratio),
   - the first touch materializes strictly fewer than half the ranges,
   - at the billion-block size the live OCaml heap stays under a quarter
     of one bitmap copy (the free-space state is off-heap),

   and writes the numbers to BENCH_offheap.json. *)

type offheap_case = {
  oh_blocks : int;
  oh_backend : string;
  oh_build_secs : float;
  oh_lazy_ready_us : float;
  oh_eager_ready_us : float;
  oh_lazy_mount_secs : float;
  oh_touched_ranges : int;
  oh_total_ranges : int;
  oh_first_touch_pages : int;
  oh_heap_mb : float;
  oh_rss_mb : float;
}

let vm_rss_mb () =
  let ic = open_in "/proc/self/status" in
  let rec go () =
    match input_line ic with
    | line ->
      if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then begin
        let kb = ref 0 in
        String.iter
          (fun c -> if c >= '0' && c <= '9' then kb := (!kb * 10) + (Char.code c - Char.code '0'))
          line;
        float_of_int !kb /. 1024.0
      end
      else go ()
    | exception End_of_file -> 0.0
  in
  Fun.protect ~finally:(fun () -> close_in ic) go

let offheap_aa_blocks = 32768

let offheap_case ~backend ~blocks =
  Wafl_bitmap.Pagestore.with_default backend (fun () ->
      let n_ranges = 16 in
      let spec =
        {
          Wafl_core.Config.profile = Wafl_device.Profile.default_object_store;
          blocks = blocks / n_ranges;
          aa_blocks = Some offheap_aa_blocks;
        }
      in
      let config =
        Wafl_core.Config.make ~raid_groups:[]
          ~object_ranges:(List.init n_ranges (fun _ -> spec))
          ~aggregate_policy:Wafl_core.Config.Best_aa ~seed:7 ()
      in
      let t0 = Unix.gettimeofday () in
      let fs = Wafl_core.Fs.create config in
      let build_secs = Unix.gettimeofday () -. t0 in
      (* one small committed CP so the image is not trivially empty *)
      let w = Wafl_core.Fs.write_alloc fs in
      let dst = Array.make 4096 0 in
      ignore (Wafl_core.Write_alloc.allocate_pvbns_into w ~dst 4096);
      Wafl_core.Write_alloc.cp_finish w;
      let image = Wafl_core.Mount.snapshot fs in
      let t1 = Unix.gettimeofday () in
      let mounted, lazy_t =
        Wafl_core.Mount.mount ~lazy_rebuild:true image ~with_topaa:true
      in
      let lazy_mount_secs = Unix.gettimeofday () -. t1 in
      (* first touch: a small allocation refills one cursor, so exactly
         the ranges it drew from pay their rescore — not the aggregate *)
      let agg = Wafl_core.Fs.aggregate mounted in
      let mf = Wafl_core.Aggregate.metafile agg in
      let reads_before = (Wafl_bitmap.Metafile.stats mf).Wafl_bitmap.Metafile.page_reads in
      ignore (Wafl_core.Write_alloc.allocate_pvbns_into (Wafl_core.Fs.write_alloc mounted) ~dst 8);
      let first_touch_pages =
        (Wafl_bitmap.Metafile.stats mf).Wafl_bitmap.Metafile.page_reads - reads_before
      in
      let touched =
        Array.fold_left
          (fun acc r -> if Wafl_core.Aggregate.range_fresh agg r then acc + 1 else acc)
          0 (Wafl_core.Aggregate.ranges agg)
      in
      let _, eager_t = Wafl_core.Mount.mount image ~with_topaa:false in
      Gc.full_major ();
      let heap_mb = float_of_int ((Gc.quick_stat ()).Gc.heap_words * 8) /. 1048576.0 in
      {
        oh_blocks = blocks;
        oh_backend = Wafl_bitmap.Pagestore.backend_name backend;
        oh_build_secs = build_secs;
        oh_lazy_ready_us = lazy_t.Wafl_core.Mount.ready_us;
        oh_eager_ready_us = eager_t.Wafl_core.Mount.ready_us;
        oh_lazy_mount_secs = lazy_mount_secs;
        oh_touched_ranges = touched;
        oh_total_ranges = 16;
        oh_first_touch_pages = first_touch_pages;
        oh_heap_mb = heap_mb;
        oh_rss_mb = vm_rss_mb ();
      })

let offheap_case_json c =
  Printf.sprintf
    {|    {
      "blocks": %d,
      "backend": "%s",
      "build_secs": %.3f,
      "lazy_ready_us": %.1f,
      "eager_ready_us": %.1f,
      "lazy_mount_wall_secs": %.4f,
      "first_touch": { "ranges": %d, "of_ranges": %d, "pages": %d },
      "heap_mb": %.1f,
      "rss_mb": %.1f
    }|}
    c.oh_blocks c.oh_backend c.oh_build_secs c.oh_lazy_ready_us c.oh_eager_ready_us
    c.oh_lazy_mount_secs c.oh_touched_ranges c.oh_total_ranges c.oh_first_touch_pages
    c.oh_heap_mb c.oh_rss_mb

let run_offheap () =
  Common.banner "Off-heap page store: modeled billion-block aggregate, lazy vs eager mount";
  let cases =
    [
      (Wafl_bitmap.Pagestore.Heap, 1 lsl 24);
      (Wafl_bitmap.Pagestore.Heap, 1 lsl 27);
      (Wafl_bitmap.Pagestore.Bigarray, 1 lsl 24);
      (Wafl_bitmap.Pagestore.Bigarray, 1 lsl 27);
      (Wafl_bitmap.Pagestore.Bigarray, 1 lsl 30);
    ]
  in
  let rows =
    List.map
      (fun (backend, blocks) ->
        let c = offheap_case ~backend ~blocks in
        Printf.printf
          "  [%8s] 2^%2.0f blocks: lazy ready %8.0f us, eager %12.0f us, first touch \
           %d/%d ranges (%d pages), heap %6.1f MB, rss %7.1f MB\n%!"
          c.oh_backend
          (Float.log2 (float_of_int blocks))
          c.oh_lazy_ready_us c.oh_eager_ready_us c.oh_touched_ranges c.oh_total_ranges
          c.oh_first_touch_pages c.oh_heap_mb c.oh_rss_mb;
        c)
      cases
  in
  let big r = r.oh_backend = "bigarray" in
  let bigs = List.filter big rows in
  let smallest = List.hd bigs in
  let largest = List.nth bigs (List.length bigs - 1) in
  let lazy_ratio = largest.oh_lazy_ready_us /. smallest.oh_lazy_ready_us in
  let eager_ratio = largest.oh_eager_ready_us /. smallest.oh_eager_ready_us in
  Printf.printf
    "  lazy ready largest/smallest: %.2fx (eager: %.1fx) over a %dx size spread\n"
    lazy_ratio eager_ratio (largest.oh_blocks / smallest.oh_blocks);
  let oc = open_out "BENCH_offheap.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "off-heap page store: lazy incremental mount vs eager full scan",
  "workload": "16 object-backed ranges, one committed CP, snapshot, remount lazy + eager, one 8-block first touch",
  "lazy_ready_ratio_largest_vs_smallest": %.3f,
  "eager_ready_ratio_largest_vs_smallest": %.1f,
  "cases": [
%s
  ]
}
|}
    lazy_ratio eager_ratio
    (String.concat ",\n" (List.map offheap_case_json rows));
  close_out oc;
  print_endline "  wrote BENCH_offheap.json";
  let fail = ref false in
  if lazy_ratio > 2.5 then begin
    Printf.eprintf "FAIL: lazy mount-ready time grew %.2fx with aggregate size (expected ~1x)\n"
      lazy_ratio;
    fail := true
  end;
  if eager_ratio < 8.0 || eager_ratio < 10.0 *. lazy_ratio then begin
    Printf.eprintf
      "FAIL: eager full-scan ready grew only %.1fx over a %dx size spread (lazy %.2fx)\n"
      eager_ratio (largest.oh_blocks / smallest.oh_blocks) lazy_ratio;
    fail := true
  end;
  List.iter
    (fun c ->
      if 2 * c.oh_touched_ranges >= c.oh_total_ranges then begin
        Printf.eprintf
          "FAIL: first touch materialized %d/%d ranges (expected a strict minority)\n"
          c.oh_touched_ranges c.oh_total_ranges;
        fail := true
      end)
    rows;
  let bitmap_mb = float_of_int (largest.oh_blocks / 8) /. 1048576.0 in
  if largest.oh_heap_mb > bitmap_mb /. 4.0 then begin
    Printf.eprintf
      "FAIL: billion-block bigarray case kept %.1f MB on the OCaml heap (budget %.1f MB)\n"
      largest.oh_heap_mb (bitmap_mb /. 4.0);
    fail := true
  end;
  if !fail then exit 1

(* --- scrub: persisted-state integrity plane ---

   Three claims, all on the mmap backend: (1) sealing adds nothing to the
   allocation consume window (zero minor words) and under 5% to CP time;
   (2) injected bit-rot is classified torn, a lost write stale, and one
   scrub pass heals either back to a clean Iron check; (3) after the
   heal's sidecars are committed, a fresh-process remount verifies the
   directory damage-free.  Only deterministic outcomes go into
   BENCH_scrub.json — the timing ratio is asserted here, not recorded. *)

let scrub_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o700;
  dir

let scrub_config ~seed =
  let rg =
    {
      Wafl_core.Config.media = Wafl_core.Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Wafl_core.Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Wafl_core.Config.default_vol ~name:"vol0" ~blocks:65536 ]
    ~seed ()

let scrub_stage_and_cp fs rng ~ops =
  let vol = (Wafl_core.Fs.vols fs).(0) in
  for _ = 1 to ops do
    Wafl_core.Fs.stage_write fs ~vol ~file:(Wafl_util.Rng.int rng 16)
      ~offset:(Wafl_util.Rng.int rng 2048)
  done;
  ignore (Wafl_core.Fs.run_cp fs)

let in_scrub_dir dir f =
  Wafl_bitmap.Pagestore.with_default Wafl_bitmap.Pagestore.Bigarray (fun () ->
      Wafl_bitmap.Pagestore.with_mmap_dir dir f)

(* Same ring-served window as the alloc bench, but file-mapped and with
   sealing live: the CRC work rides the CP flush, never the consume. *)
let scrub_zero_alloc_words dir =
  in_scrub_dir dir (fun () ->
      let agg = Wafl_core.Aggregate.create (alloc_config Common.Quick) in
      let w = Wafl_core.Write_alloc.create agg ~rng:(Wafl_util.Rng.create ~seed:7) in
      let dst = Array.make 256 0 in
      ignore (Wafl_core.Write_alloc.allocate_pvbns_into w ~dst 256);
      let before = Gc.minor_words () in
      ignore (Wafl_core.Write_alloc.allocate_pvbns_into w ~dst 256);
      Gc.minor_words () -. before)

let scrub_cp_secs ~sealed ~cps ~ops =
  let dir = scrub_dir "wafl_bench_scrub_cp" in
  Wafl_bitmap.Integrity.set_enabled sealed;
  Fun.protect
    ~finally:(fun () -> Wafl_bitmap.Integrity.set_enabled true)
    (fun () ->
      in_scrub_dir dir (fun () ->
          let fs = Wafl_core.Fs.create (scrub_config ~seed:3) in
          let rng = Wafl_util.Rng.create ~seed:5 in
          scrub_stage_and_cp fs rng ~ops;
          scrub_stage_and_cp fs rng ~ops;
          let t0 = Unix.gettimeofday () in
          for _ = 1 to cps do
            scrub_stage_and_cp fs rng ~ops
          done;
          Unix.gettimeofday () -. t0))

(* Interleave sealed/unsealed pairs so slow drift (page-cache writeback,
   CPU frequency) lands on both sides equally, and keep the best of each. *)
let scrub_cp_pair n ~cps ~ops =
  let unsealed = ref infinity and sealed = ref infinity in
  for _ = 1 to n do
    unsealed := Float.min !unsealed (scrub_cp_secs ~sealed:false ~cps ~ops);
    sealed := Float.min !sealed (scrub_cp_secs ~sealed:true ~cps ~ops)
  done;
  (!unsealed, !sealed)

(* Inject one fault at its exact generation, classify the damaged page,
   scrub-heal, commit the healed sidecars, then remount as a fresh
   process and verify the directory is damage-free end to end. *)
let scrub_e2e ~spec ~cps_to_fire ~expect =
  let dir = scrub_dir "wafl_bench_scrub_e2e" in
  let spec =
    match Wafl_fault.Fault.spec_of_string spec with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "bench scrub: bad spec: %s\n" msg;
      exit 2
  in
  Wafl_fault.Fault.install_default spec;
  let detected, bad, healed, clean =
    Fun.protect ~finally:Wafl_fault.Fault.uninstall_default (fun () ->
        in_scrub_dir dir (fun () ->
            let fs = Wafl_core.Fs.create (scrub_config ~seed:11) in
            let rng = Wafl_util.Rng.create ~seed:13 in
            for _ = 1 to cps_to_fire do
              scrub_stage_and_cp fs rng ~ops:400
            done;
            let store =
              Wafl_bitmap.Metafile.store
                (Wafl_core.Aggregate.metafile (Wafl_core.Fs.aggregate fs))
            in
            let detected = Wafl_bitmap.Integrity.verify_page store 0 = Some expect in
            let stats = Wafl_core.Scrub.pass fs ~budget:8192 in
            let clean = Wafl_core.Iron.check fs = [] in
            (* one more CP persists the healed page's sidecar, so the
               remount below must find nothing *)
            scrub_stage_and_cp fs rng ~ops:400;
            (detected, stats.Wafl_core.Scrub.bad_pages, stats.Wafl_core.Scrub.healed, clean)))
  in
  let remount_bad =
    in_scrub_dir dir (fun () ->
        let fs = Wafl_core.Fs.create (scrub_config ~seed:11) in
        let r = Wafl_core.Mount.verify_pagestores fs in
        r.Wafl_core.Mount.torn_pages + r.Wafl_core.Mount.stale_pages)
  in
  (detected, bad, healed, clean, remount_bad)

let run_scrub () =
  Common.banner "Persisted-state integrity: sealing overhead, scrub heal, verified remount";
  let zero_words = scrub_zero_alloc_words (scrub_dir "wafl_bench_scrub_zero") in
  Printf.printf "  sealed consume window: %.0f minor heap words (mmap backend)\n" zero_words;
  let cps = 8 and ops = 8000 in
  let unsealed, sealed = scrub_cp_pair 5 ~cps ~ops in
  let overhead_pct = (sealed -. unsealed) /. unsealed *. 100.0 in
  (* small epsilon absorbs timer noise on sub-ms CP batches *)
  let overhead_ok = sealed <= (unsealed *. 1.05) +. 0.005 in
  Printf.printf "  CP time over %d CPs: unsealed %.1f ms, sealed %.1f ms (%+.1f%%)\n" cps
    (unsealed *. 1e3) (sealed *. 1e3) overhead_pct;
  let rot_detected, rot_bad, rot_healed, rot_clean, rot_remount_bad =
    scrub_e2e ~spec:"rot=0:0@1" ~cps_to_fire:1 ~expect:Wafl_bitmap.Integrity.Torn
  in
  Printf.printf
    "  bit-rot @gen1: torn=%b, scrub found %d bad, healed %d, iron clean=%b, remount bad=%d\n"
    rot_detected rot_bad rot_healed rot_clean rot_remount_bad;
  let lost_detected, lost_bad, lost_healed, lost_clean, lost_remount_bad =
    scrub_e2e ~spec:"lost=0:0@2" ~cps_to_fire:2 ~expect:Wafl_bitmap.Integrity.Stale
  in
  Printf.printf
    "  lost write @gen2: stale=%b, scrub found %d bad, healed %d, iron clean=%b, remount \
     bad=%d\n"
    lost_detected lost_bad lost_healed lost_clean lost_remount_bad;
  let b2i b = if b then 1 else 0 in
  let oc = open_out "BENCH_scrub.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "persisted-state integrity: sealing, scrubber, verified remount",
  "workload": "mmap-backed 64k-block aggregate; staged-write CPs; rot/lost injection at exact generations",
  "consume_minor_words": %.0f,
  "sealed_cp_overhead_ok": %d,
  "rot": {
    "classified_torn": %d,
    "bad_pages": %d,
    "healed": %d,
    "iron_clean_after_heal": %d,
    "remount_bad_pages": %d
  },
  "lost": {
    "classified_stale": %d,
    "bad_pages": %d,
    "healed": %d,
    "iron_clean_after_heal": %d,
    "remount_bad_pages": %d
  }
}
|}
    zero_words (b2i overhead_ok) (b2i rot_detected) rot_bad rot_healed (b2i rot_clean)
    rot_remount_bad (b2i lost_detected) lost_bad lost_healed (b2i lost_clean)
    lost_remount_bad;
  close_out oc;
  print_endline "  wrote BENCH_scrub.json";
  let fail = ref false in
  if zero_words <> 0.0 then begin
    Printf.eprintf "FAIL: sealed consume window allocated %.0f minor words (expected 0)\n"
      zero_words;
    fail := true
  end;
  if not overhead_ok then begin
    Printf.eprintf "FAIL: sealing added %.1f%% CP time (budget 5%%)\n" overhead_pct;
    fail := true
  end;
  if not (rot_detected && rot_bad = 1 && rot_healed = 1 && rot_clean && rot_remount_bad = 0)
  then begin
    Printf.eprintf "FAIL: bit-rot closure broke (torn=%b bad=%d healed=%d clean=%b remount=%d)\n"
      rot_detected rot_bad rot_healed rot_clean rot_remount_bad;
    fail := true
  end;
  if
    not
      (lost_detected && lost_bad = 1 && lost_healed = 1 && lost_clean
     && lost_remount_bad = 0)
  then begin
    Printf.eprintf
      "FAIL: lost-write closure broke (stale=%b bad=%d healed=%d clean=%b remount=%d)\n"
      lost_detected lost_bad lost_healed lost_clean lost_remount_bad;
    fail := true
  end;
  if !fail then exit 1

(* --- streams: write-temperature segregation WA gate (PR 9) ---

   Runs the fig8-streams ablation (HDD-sized AA / erase-block AA /
   erase-block AA + 4 temperature classes on 4 FTL streams) and gates:
   segregated WA must beat both the unsegregated erase-block variant and
   the paper's published 1.46; and the routed allocation consume window —
   every class row — must still allocate zero minor-heap words.  Writes
   the per-variant and per-stream numbers to BENCH_streams.json. *)

let streams_wa_gate = 1.46

(* Same ring-served window as the alloc bench, but with 4 temperature
   classes configured: each class row's warm second call must be served
   entirely from its own ring, with no per-block allocation. *)
let streams_zero_alloc_words () =
  Wafl_core.Config.with_default_streams
    { Wafl_core.Config.temp_classes = 4; ssd_streams = 4; wear_bias = 2;
      meta_file = None }
    (fun () ->
      let agg = Wafl_core.Aggregate.create (alloc_config Common.Quick) in
      let w = Wafl_core.Write_alloc.create agg ~rng:(Wafl_util.Rng.create ~seed:7) in
      let dst = Array.make 256 0 in
      (* [?cls] boxing would charge 2 minor words per call to the window;
         pre-build the options so only the allocator itself is measured *)
      let cls_opts = Array.init 4 (fun c -> Some c) in
      for cls = 0 to 3 do
        ignore
          (Wafl_core.Write_alloc.allocate_pvbns_into ?cls:cls_opts.(cls) w ~dst 256)
      done;
      let before = Gc.minor_words () in
      for cls = 0 to 3 do
        ignore
          (Wafl_core.Write_alloc.allocate_pvbns_into ?cls:cls_opts.(cls) w ~dst 256)
      done;
      Gc.minor_words () -. before)

let streams_variant_json (r : Fig8_streams.result) =
  let stream_json (s : Fig8_streams.stream_row) =
    Printf.sprintf
      {|        { "stream": %d, "host": %d, "device": %d, "relocated": %d, "erases": %d, "wa": %.4f }|}
      s.Fig8_streams.stream s.Fig8_streams.host s.Fig8_streams.device
      s.Fig8_streams.relocated s.Fig8_streams.erases s.Fig8_streams.wa
  in
  Printf.sprintf
    {|    {
      "variant": "%s",
      "aa_stripes": %d,
      "temp_classes": %d,
      "ssd_streams": %d,
      "wear_bias": %d,
      "write_amplification": %.4f,
      "wear": { "min": %d, "max": %d },
      "streams": [
%s
      ]
    }|}
    (Fig8_streams.variant_name r.Fig8_streams.variant)
    r.Fig8_streams.aa_stripes r.Fig8_streams.spec.Wafl_core.Config.temp_classes
    r.Fig8_streams.spec.Wafl_core.Config.ssd_streams
    r.Fig8_streams.spec.Wafl_core.Config.wear_bias r.Fig8_streams.write_amp
    r.Fig8_streams.wear_min r.Fig8_streams.wear_max
    (String.concat ",\n" (List.map stream_json r.Fig8_streams.per_stream))

let run_streams ~scale () =
  Common.banner
    "Write-temperature segregation: multi-stream FTL write-amplification gate";
  let zero_words = streams_zero_alloc_words () in
  Printf.printf "  routed consume window (4 class rows): %.0f minor heap words\n"
    zero_words;
  let results = Fig8_streams.run ~scale () in
  let find v = Fig8_streams.find results v in
  let small = find Fig8_streams.Small_aa in
  let large = find Fig8_streams.Large_aa in
  let seg = find Fig8_streams.Large_aa_segregated in
  List.iter
    (fun (r : Fig8_streams.result) ->
      Printf.printf "  %-44s WA %.4f  wear %d..%d\n"
        (Fig8_streams.variant_name r.Fig8_streams.variant)
        r.Fig8_streams.write_amp r.Fig8_streams.wear_min r.Fig8_streams.wear_max)
    results;
  let scale_name = match scale with Common.Quick -> "quick" | Common.Full -> "full" in
  let oc = open_out "BENCH_streams.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "write-temperature segregation and multi-stream FTL: SSD write amplification",
  "workload": "all-SSD aggregate aged to 85%% with skewed 4KiB overwrites (90%% of writes on 2%% of the working set, metadata trickle on file 0), then %d CPs of the same skew",
  "scale": "%s",
  "wa_gate": %.2f,
  "zero_alloc_minor_words_routed": %.0f,
  "segregated_vs_unsegregated_wa": { "unsegregated": %.4f, "segregated": %.4f },
  "variants": [
%s
  ]
}
|}
    (fst (Fig8_streams.measurement scale))
    scale_name streams_wa_gate zero_words large.Fig8_streams.write_amp
    seg.Fig8_streams.write_amp
    (String.concat ",\n" (List.map streams_variant_json results));
  close_out oc;
  print_endline "  wrote BENCH_streams.json";
  let fail = ref false in
  if zero_words <> 0.0 then begin
    Printf.eprintf
      "FAIL: routed consume window allocated %.0f minor words (expected 0)\n" zero_words;
    fail := true
  end;
  if seg.Fig8_streams.write_amp >= large.Fig8_streams.write_amp then begin
    Printf.eprintf "FAIL: segregated WA %.4f >= unsegregated %.4f\n"
      seg.Fig8_streams.write_amp large.Fig8_streams.write_amp;
    fail := true
  end;
  (* the absolute paper-point gate is a quick-scale claim; at full scale
     worst-case relocation pricing inflates every fig-8 WA figure *)
  if scale = Common.Quick && seg.Fig8_streams.write_amp >= streams_wa_gate then begin
    Printf.eprintf "FAIL: segregated WA %.4f >= paper gate %.2f\n"
      seg.Fig8_streams.write_amp streams_wa_gate;
    fail := true
  end;
  if small.Fig8_streams.write_amp <= large.Fig8_streams.write_amp then begin
    Printf.eprintf "FAIL: small-AA WA %.4f <= erase-block WA %.4f (fig 8 inverted)\n"
      small.Fig8_streams.write_amp large.Fig8_streams.write_amp;
    fail := true
  end;
  if !fail then exit 1

(* --- latency: request-level latency observability (PR 10) ---

   Four gates on the latency subsystem plus a model-vs-measured curve:
   the Hdrhist record path must allocate zero minor-heap words per op,
   the uninstalled hooks must stay branch-only, an installed recorder
   must add <5% to end-to-end CP time, and an injected device-latency
   spike run must produce a tail exemplar blaming cp.device_flush and
   breach a tight SLO.  The curve sweeps the closed-loop batch size and
   checks the measured per-op latencies share the analytic M/G/1 sweep's
   hockey-stick shape (monotone latency, capacity asymptote).  Writes
   BENCH_latency.json. *)

let lat_model () = Wafl_sim.Cost_model.latency_model Wafl_sim.Cost_model.default

(* One aged sequential-write system, [cps] CPs of [ops] staged writes
   each, run with [tel] installed; returns the per-CP reports. *)
let lat_run_workload ~tel ~cps ~ops () =
  let open Wafl_core in
  let rg = Common.hdd_raid_group Common.Quick in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "seq"; blocks = agg_blocks; aa_blocks = None;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~seed:7 ()
  in
  let fs = Fs.create config in
  let workload = Wafl_workload.Sequential.create fs (Fs.vol fs "seq") () in
  Wafl_telemetry.Telemetry.with_installed tel (fun () ->
      List.init cps (fun _ -> Wafl_workload.Sequential.step workload ops))

let latency_record_path () =
  let lat = Wafl_telemetry.Latency.create () in
  let vol = Wafl_telemetry.Latency.vol_slot lat ~uid:1 ~name:"bench" in
  let record_n n =
    for i = 1 to n do
      Wafl_telemetry.Latency.record lat ~op:Wafl_telemetry.Latency.Write ~vol
        ((i * 7919) land 0xFFFFFF)
    done
  in
  record_n 100_000 (* warm: domain shard and histogram cells exist *);
  let before = Gc.minor_words () in
  record_n 100_000;
  let words = (Gc.minor_words () -. before) /. 100_000.0 in
  let iters = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  record_n iters;
  let ns = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9 in
  (words, ns)

let latency_uninstalled_hooks () =
  (* nothing installed: lat_active is one match on a global ref *)
  let iters = 1_000_000 in
  let hits = ref 0 in
  let loop () =
    for _ = 1 to iters do
      if Wafl_telemetry.Telemetry.lat_active () then incr hits
    done
  in
  loop ();
  let before = Gc.minor_words () in
  loop ();
  let words = Gc.minor_words () -. before in
  let t0 = Unix.gettimeofday () in
  loop ();
  let ns = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9 in
  assert (!hits = 0);
  (words, ns)

(* Interleave plain/with-latency pairs (scrub_cp_pair's trick) so slow
   drift lands on both sides equally; keep the best of each. *)
let latency_cp_overhead () =
  let cps = 20 and ops = 1000 in
  let time ~with_lat =
    let lat = if with_lat then Some (Wafl_telemetry.Latency.create ~model:(lat_model ()) ()) else None in
    let tel = Wafl_telemetry.Telemetry.create ?latency:lat () in
    let t0 = Unix.gettimeofday () in
    ignore (lat_run_workload ~tel ~cps ~ops ());
    Unix.gettimeofday () -. t0
  in
  ignore (time ~with_lat:false) (* warm up *);
  ignore (time ~with_lat:true);
  let plain = ref infinity and with_lat = ref infinity in
  for _ = 1 to 5 do
    plain := Float.min !plain (time ~with_lat:false);
    with_lat := Float.min !with_lat (time ~with_lat:true)
  done;
  (!plain, !with_lat)

let latency_spike_run () =
  let spec =
    match Wafl_fault.Fault.spec_of_string "seed=9,spike=0.9:50000" with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "bench latency: bad spike spec: %s\n" msg;
      exit 2
  in
  let objective =
    match Wafl_telemetry.Slo.objective ~name:"writes" ~threshold_ms:5.0 ~target:0.999 with
    | Ok o -> o
    | Error msg ->
      Printf.eprintf "bench latency: bad objective: %s\n" msg;
      exit 2
  in
  Wafl_fault.Fault.install_default spec;
  Fun.protect ~finally:Wafl_fault.Fault.uninstall_default (fun () ->
      let lat =
        Wafl_telemetry.Latency.create ~model:(lat_model ())
          ~slo:(Wafl_telemetry.Slo.create [ objective ]) ()
      in
      let tel = Wafl_telemetry.Telemetry.create ~latency:lat () in
      ignore (lat_run_workload ~tel ~cps:30 ~ops:500 ());
      let exs = Wafl_telemetry.Latency.exemplars lat in
      let device_blamed =
        List.exists
          (fun e -> e.Wafl_telemetry.Latency.ex_phase = Wafl_telemetry.Span.Device_flush)
          exs
      in
      let breach =
        List.exists
          (fun r -> r.Wafl_telemetry.Slo.r_breach)
          (Wafl_telemetry.Latency.last_slo_reports lat)
      in
      let _, _, p999 = Wafl_telemetry.Latency.quantiles_ms lat in
      (List.length exs, device_blamed, breach, p999))

(* Sweep the closed-loop batch size and compare the measured modeled
   latencies against the analytic M/G/1 sweep built from the same CPs'
   cost reports: both must show the fig-9 hockey-stick — latency rising
   monotonically as offered work grows, throughput flattening into the
   service-capacity asymptote. *)
let latency_curve () =
  let batches = [ 100; 200; 400; 800; 1600 ] in
  let measure n =
    let lat = Wafl_telemetry.Latency.create ~model:(lat_model ()) () in
    let tel = Wafl_telemetry.Telemetry.create ~latency:lat () in
    let reports = lat_run_workload ~tel ~cps:12 ~ops:n () in
    let costs = Wafl_sim.Cost_model.combine (List.map Wafl_sim.Cost_model.of_report reports) in
    let thr =
      1e6 *. float_of_int costs.Wafl_sim.Cost_model.ops
      /. costs.Wafl_sim.Cost_model.cp_duration_us
    in
    let p50, _, _ = Wafl_telemetry.Latency.quantiles_ms lat in
    (n, thr, p50, costs)
  in
  let points = List.map measure batches in
  let rec monotone = function
    | (_, _, a, _) :: ((_, _, b, _) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  let monotone_latency = monotone points in
  let _, thr_max, p50_max, costs_max =
    List.nth points (List.length points - 1)
  in
  let curve = Wafl_sim.Load.sweep ~label:"measured service demand" costs_max in
  let peak = Wafl_sim.Load.peak_throughput curve in
  let capacity_ok = thr_max >= peak /. 2.0 && thr_max <= peak *. 2.0 in
  (* the analytic flat part must sit below the measured saturated tail *)
  let midload_ok, midload_ms =
    match Wafl_sim.Load.latency_at_load_ms curve (peak *. 0.5) with
    | Ok l -> (l < p50_max, l)
    | Error msg ->
      Printf.printf "  mid-load lookup failed: %s\n" msg;
      (false, 0.0)
  in
  (* out-of-range loads must explain themselves (the satellite fix) *)
  let overload_rejected =
    match Wafl_sim.Load.latency_at_load_ms curve (peak *. 2.0) with
    | Ok _ -> false
    | Error msg ->
      Printf.printf "  overload correctly rejected: %s\n" msg;
      true
  in
  (points, peak, monotone_latency, capacity_ok, midload_ok, midload_ms, overload_rejected)

let run_latency () =
  Common.banner "Request-level latency: record path, CP overhead, spike blame, curve";
  let rec_words, rec_ns = latency_record_path () in
  Printf.printf "  record path: %.2f minor words/op, %.1f ns/record\n" rec_words rec_ns;
  let hook_words, hook_ns = latency_uninstalled_hooks () in
  Printf.printf "  uninstalled hook: %.0f minor words over 1M calls, %.1f ns/call\n"
    hook_words hook_ns;
  let plain_s, with_lat_s = latency_cp_overhead () in
  let overhead_pct = (with_lat_s -. plain_s) /. plain_s *. 100.0 in
  (* small epsilon absorbs timer noise on sub-ms CP batches *)
  let overhead_ok = with_lat_s <= (plain_s *. 1.05) +. 0.005 in
  Printf.printf "  e2e 20 CPs x 1000 ops: plain %.1f ms, with latency %.1f ms (%+.1f%%)\n"
    (plain_s *. 1e3) (with_lat_s *. 1e3) overhead_pct;
  let n_exemplars, device_blamed, slo_breach, spike_p999 = latency_spike_run () in
  Printf.printf
    "  spike run: %d exemplars, device_flush blamed=%b, slo breach=%b, p999 %.1f ms\n"
    n_exemplars device_blamed slo_breach spike_p999;
  let points, peak, monotone_latency, capacity_ok, midload_ok, midload_ms, overload_rejected
      =
    latency_curve ()
  in
  List.iter
    (fun (n, thr, p50, _) ->
      Printf.printf "  batch %5d ops/CP: %8.0f ops/s  p50 %8.2f ms\n" n thr p50)
    points;
  Printf.printf
    "  analytic peak %.0f ops/s, mid-load latency %.2f ms; monotone=%b capacity_ok=%b\n"
    peak midload_ms monotone_latency capacity_ok;
  let b2i b = if b then 1 else 0 in
  let point_json (n, thr, p50, _) =
    Printf.sprintf
      {|    { "ops_per_cp": %d, "throughput_ops_s": %.0f, "p50_ms": %.2f }|} n thr p50
  in
  let oc = open_out "BENCH_latency.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "request-level latency observability: record path, CP overhead, spike attribution, closed-loop curve",
  "workload": "sequential staged-write CPs on a quick-scale HDD aggregate; modeled per-op clock",
  "record_minor_words_per_op": %.2f,
  "uninstalled_hook_minor_words": %.0f,
  "cp_overhead_ok": %d,
  "spike": {
    "exemplars": %d,
    "device_flush_blamed": %d,
    "slo_breach": %d
  },
  "curve": {
    "monotone_latency": %d,
    "capacity_ok": %d,
    "midload_below_saturated_tail": %d,
    "overload_rejected": %d,
    "points": [
%s
  ]
  }
}
|}
    rec_words hook_words (b2i overhead_ok) n_exemplars (b2i device_blamed)
    (b2i slo_breach) (b2i monotone_latency) (b2i capacity_ok) (b2i midload_ok)
    (b2i overload_rejected)
    (String.concat ",\n" (List.map point_json points));
  close_out oc;
  print_endline "  wrote BENCH_latency.json";
  let fail = ref false in
  if rec_words <> 0.0 then begin
    Printf.eprintf "FAIL: record path allocated %.2f minor words/op (expected 0)\n"
      rec_words;
    fail := true
  end;
  if hook_words <> 0.0 then begin
    Printf.eprintf "FAIL: uninstalled hook allocated %.0f minor words (expected 0)\n"
      hook_words;
    fail := true
  end;
  if not overhead_ok then begin
    Printf.eprintf "FAIL: latency recording added %.1f%% CP time (budget 5%%)\n"
      overhead_pct;
    fail := true
  end;
  if not (n_exemplars > 0 && device_blamed) then begin
    Printf.eprintf
      "FAIL: spike run captured %d exemplars, device_flush blamed=%b (expected blame)\n"
      n_exemplars device_blamed;
    fail := true
  end;
  if not slo_breach then begin
    Printf.eprintf "FAIL: spike run did not breach the 5ms/0.999 SLO\n";
    fail := true
  end;
  if not (monotone_latency && capacity_ok && midload_ok && overload_rejected) then begin
    Printf.eprintf
      "FAIL: curve shape (monotone=%b capacity_ok=%b midload_ok=%b overload_rejected=%b)\n"
      monotone_latency capacity_ok midload_ok overload_rejected;
    fail := true
  end;
  if !fail then exit 1

(* --- regress: diff two metric/time-series JSON snapshots ---

   bench/main.exe regress BASELINE.json NEW.json [--threshold FACTOR]

   Every numeric leaf the two documents share is compared by its dotted
   path (array indices become path components).  A leaf whose values
   differ by more than FACTOR in either direction (default 2.0), changes
   sign, or exists in the baseline but not in the new snapshot is a
   regression; any regression exits 1 so CI can gate fresh bench output
   against the committed BENCH_*.json baselines.  Leaves only present in
   the new snapshot are reported but allowed — new metrics are not
   regressions. *)

let regress_load path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "bench regress: cannot read %s: %s\n" path msg;
      exit 2
  in
  match Wafl_util.Json.parse contents with
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "bench regress: %s: %s\n" path msg;
    exit 2

let run_regress argv =
  let usage () =
    prerr_endline "usage: bench/main.exe regress BASELINE.json NEW.json [--threshold FACTOR]";
    exit 2
  in
  let rec parse files threshold = function
    | [] -> (List.rev files, threshold)
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f >= 1.0 -> parse files f rest
      | _ ->
        Printf.eprintf "bench regress: --threshold expects a factor >= 1.0 (got %S)\n" v;
        exit 2)
    | "--threshold" :: [] -> usage ()
    | a :: rest -> parse (a :: files) threshold rest
  in
  let files, threshold = parse [] 2.0 argv in
  let base_path, new_path =
    match files with [ b; n ] -> (b, n) | _ -> usage ()
  in
  let leaves path =
    List.map
      (fun (p, x) -> (String.concat "." p, x))
      (Wafl_util.Json.number_leaves (regress_load path))
  in
  let base = leaves base_path and fresh = leaves new_path in
  let regressions = ref 0 in
  let compared = ref 0 in
  let flag fmt = incr regressions; Printf.printf fmt in
  List.iter
    (fun (path, a) ->
      match List.assoc_opt path fresh with
      | None -> flag "  MISSING   %-52s (baseline %g)\n" path a
      | Some b ->
        incr compared;
        if a <> b then begin
          let eps = 1e-9 in
          if (a < 0.0) <> (b < 0.0) && Float.abs a > eps && Float.abs b > eps then
            flag "  SIGN FLIP %-52s %g -> %g\n" path a b
          else begin
            let r = (Float.abs b +. eps) /. (Float.abs a +. eps) in
            let factor = Float.max r (1.0 /. r) in
            if factor > threshold then
              flag "  REGRESSED %-52s %g -> %g (%.2fx, threshold %.2fx)\n" path a b factor
                threshold
          end
        end)
    base;
  List.iter
    (fun (path, b) ->
      if List.assoc_opt path base = None then
        Printf.printf "  new leaf  %-52s %g (allowed)\n" path b)
    fresh;
  Printf.printf "regress: %d shared leaves compared, %d regression(s) (threshold %.2fx)\n"
    !compared !regressions threshold;
  if !regressions > 0 then exit 1

let main_bench () =
  (* The adjacent pair "alloc par" names the allocation front-end
     benchmark, not the "alloc" and "par" benchmarks back to back. *)
  let rec fuse = function
    | "alloc" :: "par" :: rest -> "allocpar" :: fuse rest
    | a :: rest -> a :: fuse rest
    | [] -> []
  in
  let args = fuse (Array.to_list Sys.argv) in
  let scale = if List.mem "full" args then Common.Full else Common.Quick in
  let has name = List.mem name args in
  let specific =
    [
      "micro"; "telemetry"; "alloc"; "faults"; "par"; "allocpar"; "offheap"; "scrub";
      "streams"; "latency"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "scalars";
      "ablation";
    ]
  in
  let run_all = not (List.exists (fun a -> List.mem a specific) args) in
  if run_all || has "fig6" then Fig6.print (Fig6.run ~scale ());
  if run_all || has "fig7" then Fig7.print (Fig7.run ~scale ());
  if run_all || has "fig8" then Fig8.print (Fig8.run ~scale ());
  if run_all || has "fig9" then Fig9.print (Fig9.run ~scale ());
  if run_all || has "fig10" then Fig10.print (Fig10.run ~scale ());
  if run_all || has "scalars" then Scalars.print (Scalars.run ~scale ());
  if run_all || has "ablation" then Ablation.print (Ablation.run ~scale ());
  if run_all || has "micro" then run_micro ();
  if run_all || has "telemetry" then run_telemetry_overhead ();
  if run_all || has "alloc" then run_alloc ~scale ();
  if run_all || has "faults" then run_faults ~scale ();
  if run_all || has "par" then run_par ~scale ();
  if run_all || has "allocpar" then run_allocpar ~scale ();
  if run_all || has "offheap" then run_offheap ();
  if run_all || has "scrub" then run_scrub ();
  if run_all || has "streams" then run_streams ~scale ();
  if run_all || has "latency" then run_latency ()

let () =
  match Array.to_list Sys.argv with
  | _ :: "regress" :: rest -> run_regress rest
  | _ -> main_bench ()
