lib/raid/geometry.mli: Format Wafl_block
