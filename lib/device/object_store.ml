type stats = { puts : int; blocks_written : int }

type t = {
  profile : Profile.object_store;
  mutable puts : int;
  mutable blocks_written : int;
  mutable fault : Wafl_fault.Fault.device option;
}

let create ?(profile = Profile.default_object_store) () =
  { profile; puts = 0; blocks_written = 0; fault = None }

let profile t = t.profile
let set_fault t f = t.fault <- f
let fault t = t.fault

let objects_of_batch t vbns =
  let objs = Hashtbl.create 16 in
  let blocks = ref 0 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun vbn ->
      if not (Hashtbl.mem seen vbn) then begin
        Hashtbl.add seen vbn ();
        incr blocks;
        Hashtbl.replace objs (vbn / t.profile.Profile.object_blocks) ()
      end)
    vbns;
  (Hashtbl.length objs, !blocks)

let put_count_for t vbns = fst (objects_of_batch t vbns)

let write_batch t vbns =
  (* Dropped blocks never make it into an object PUT; a torn block still
     uploads (the store accepted garbage bytes). *)
  let vbns =
    match t.fault with
    | None -> vbns
    | Some dev ->
      List.filter
        (fun vbn ->
          match Wafl_fault.Fault.write dev ~block:vbn with
          | Wafl_fault.Fault.Written | Wafl_fault.Fault.Written_torn -> true
          | Wafl_fault.Fault.Failed -> false)
        vbns
  in
  let puts, blocks = objects_of_batch t vbns in
  t.puts <- t.puts + puts;
  t.blocks_written <- t.blocks_written + blocks;
  Wafl_telemetry.Telemetry.add "device.object.puts" puts;
  Wafl_telemetry.Telemetry.add "device.object.blocks_written" blocks

let cost_us t ~(stats_delta : stats) = float_of_int stats_delta.puts *. t.profile.Profile.put_us

let stats t = { puts = t.puts; blocks_written = t.blocks_written }

let diff_stats ~(after : stats) ~(before : stats) =
  { puts = after.puts - before.puts; blocks_written = after.blocks_written - before.blocks_written }

let reset_stats t =
  t.puts <- 0;
  t.blocks_written <- 0
