(** Figure 6 (§4.1): latency vs achieved throughput with the AA caches
    enabled for both VBN spaces, for the FlexVol only, for the aggregate
    only, and for neither.

    Rig: an all-SSD aggregate aged to ~55% fullness and thoroughly
    fragmented by random-overwrite traffic; measurement traffic is 8KiB
    random overwrites (two 4KiB blocks per op).  Also reproduces the
    section's scalar claims: chosen-AA free space vs random selection, and
    the FTL write-amplification reduction. *)

type variant = Both | Flexvol_only | Aggregate_only | Neither

val variant_name : variant -> string

type result = {
  variant : variant;
  curve : Wafl_sim.Load.curve;
  phys_chosen_free_frac : float;  (** mean free fraction of AAs chosen for
                                      physical VBNs during measurement *)
  virt_chosen_free_frac : float;
  write_amp : float;              (** FTL write amplification during
                                      measurement *)
  aggregate_free_frac : float;    (** overall free fraction at measurement *)
}

val run_variant : Common.scale -> variant -> result

val run : ?scale:Common.scale -> unit -> result list
(** All four variants on identically-aged systems. *)

val print : result list -> unit
(** The figure's series plus the paper-vs-measured comparison table. *)
