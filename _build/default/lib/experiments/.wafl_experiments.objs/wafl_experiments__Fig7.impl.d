lib/experiments/fig7.ml: Aggregate Array Common Config Cost_model Float Fs Group List Oltp Printf Rng String Table Wafl_bitmap Wafl_core Wafl_raid Wafl_sim Wafl_util Wafl_workload Write_alloc
