lib/aacache/cache.ml: Float Hbps List Max_heap Option
