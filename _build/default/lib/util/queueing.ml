let mg1_response_time ~service_time ~cv2 ~arrival_rate =
  let rho = arrival_rate *. service_time in
  if rho >= 1.0 then None
  else begin
    let wq = rho *. service_time *. (1.0 +. cv2) /. (2.0 *. (1.0 -. rho)) in
    Some (service_time +. wq)
  end

let capacity service_time = 0.98 /. service_time

let achieved_throughput ~service_time ~offered_load =
  Float.min offered_load (capacity service_time)

let closed_loop_point ~service_time ~cv2 ~offered_load ~throughput ~latency =
  let cap = capacity service_time in
  if offered_load < cap then begin
    match mg1_response_time ~service_time ~cv2 ~arrival_rate:offered_load with
    | Some r ->
      throughput := offered_load;
      latency := r
    | None ->
      throughput := cap;
      latency := service_time /. (1.0 -. 0.98)
  end
  else begin
    (* Saturated: excess clients queue; latency grows with the backlog. *)
    let base = service_time /. (1.0 -. 0.98) in
    throughput := cap;
    latency := base *. (1.0 +. ((offered_load -. cap) /. cap))
  end

let sweep ~service_time ~cv2 ~loads =
  let throughput = ref 0.0 and latency = ref 0.0 in
  List.map
    (fun offered_load ->
      closed_loop_point ~service_time ~cv2 ~offered_load ~throughput ~latency;
      (!throughput, !latency))
    loads
