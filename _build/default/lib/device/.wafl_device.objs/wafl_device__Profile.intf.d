lib/device/profile.mli:
