(* Tests for the domain-parallel scan engine: pool semantics and
   chunking, domain-safe telemetry, and — the load-bearing property —
   that every pool-driven scan (mount rebuild, cache rebuild, Iron,
   activemap commit, sharded harvest, whole CPs) produces state
   bit-identical to its serial counterpart at any domain count. *)

open Wafl_bitmap
open Wafl_aacache
open Wafl_core
open Wafl_telemetry
module Par = Wafl_par.Par

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- pool semantics --- *)

let test_run_covers_all_chunks () =
  Par.with_pool ~jobs:4 (fun p ->
      check_int "jobs" 4 (Par.jobs p);
      let n = 100 in
      let slots = Array.make n 0 in
      (* chunk i owns slot i: disjoint writes, published by the pool's
         completion barrier *)
      Par.run p ~chunks:n ~f:(fun i -> slots.(i) <- slots.(i) + 1);
      Array.iteri (fun i v -> check_int (Printf.sprintf "chunk %d ran once" i) 1 v) slots)

let test_map_slot_order () =
  Par.with_pool ~jobs:3 (fun p ->
      let got = Par.map p ~chunks:50 ~f:(fun i -> i * i) in
      Array.iteri (fun i v -> check_int "slot holds f i" (i * i) v) got)

let test_exception_lowest_chunk () =
  Par.with_pool ~jobs:4 (fun p ->
      match
        Par.run p ~chunks:16 ~f:(fun i -> if i = 3 || i = 7 then failwith (string_of_int i))
      with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure msg -> check_int "lowest failed chunk wins" 3 (int_of_string msg))

let test_nested_run_is_serial () =
  Par.with_pool ~jobs:2 (fun p ->
      let inner = Array.make 8 0 in
      (* a chunk issuing run on its own pool must not deadlock *)
      Par.run p ~chunks:2 ~f:(fun outer ->
          Par.run p ~chunks:4 ~f:(fun i -> inner.((outer * 4) + i) <- 1));
      check_int "all nested chunks ran" 8 (Array.fold_left ( + ) 0 inner))

let test_jobs1_and_shutdown_degrade () =
  let p = Par.create ~jobs:1 in
  check_int "jobs clamps to 1" 1 (Par.jobs p);
  check_bool "jobs=1 map works" true (Par.map p ~chunks:4 ~f:Fun.id = [| 0; 1; 2; 3 |]);
  Par.shutdown p;
  let q = Par.create ~jobs:4 in
  Par.shutdown q;
  Par.shutdown q;
  check_bool "map after shutdown is serial" true
    (Par.map q ~chunks:4 ~f:Fun.id = [| 0; 1; 2; 3 |])

let test_chunk_bounds_properties () =
  List.iter
    (fun total ->
      List.iter
        (fun align ->
          List.iter
            (fun chunks ->
              let bounds = Par.chunk_bounds ~total ~align ~chunks in
              let label = Printf.sprintf "total=%d align=%d chunks=%d" total align chunks in
              if total <= 0 then check_int (label ^ ": empty") 0 (Array.length bounds)
              else begin
                check_bool (label ^ ": at most chunks pieces") true
                  (Array.length bounds <= chunks && Array.length bounds >= 1);
                let pos = ref 0 in
                Array.iteri
                  (fun i (s, len) ->
                    check_int (label ^ ": contiguous") !pos s;
                    check_bool (label ^ ": non-empty") true (len > 0);
                    if i > 0 then
                      check_int (label ^ ": aligned boundary") 0 (s mod align);
                    pos := s + len)
                  bounds;
                check_int (label ^ ": covers range") total !pos;
                check_bool (label ^ ": deterministic") true
                  (bounds = Par.chunk_bounds ~total ~align ~chunks)
              end)
            [ 1; 2; 3; 7; 16 ])
        [ 1; 8; 32; 256 ])
    [ 0; 1; 5; 31; 32; 33; 1000; 4096 ]

let test_install_resolve () =
  Par.install ~jobs:3;
  Fun.protect ~finally:Par.uninstall (fun () ->
      check_bool "resolve None finds installed" true (Par.resolve None <> None);
      check_int "effective jobs" 3 (Par.effective_jobs None));
  check_bool "uninstalled" true (Par.installed () = None);
  check_int "effective jobs without pool" 1 (Par.effective_jobs None)

(* --- domain-safe telemetry: no lost increments under a multi-domain
       hammer --- *)

let test_telemetry_hammer () =
  let tel = Telemetry.create () in
  Telemetry.with_installed tel (fun () ->
      let domains = 4 and per_domain = 50_000 in
      let workers =
        Array.init domains (fun d ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Telemetry.incr "hammer.count"
                done;
                Telemetry.add "hammer.add" d;
                Telemetry.max_gauge "hammer.max" (float_of_int d)))
      in
      Array.iter Domain.join workers;
      let reg = Telemetry.registry tel in
      (match Registry.find reg "hammer.count" with
      | Some (Registry.Counter c) ->
        check_int "no lost increments" (domains * per_domain) (Registry.count c)
      | _ -> Alcotest.fail "hammer.count not registered");
      (match Registry.find reg "hammer.add" with
      | Some (Registry.Counter c) -> check_int "adds summed" 6 (Registry.count c)
      | _ -> Alcotest.fail "hammer.add not registered");
      match Registry.find reg "hammer.max" with
      | Some (Registry.Gauge g) ->
        Alcotest.(check (float 0.0)) "max gauge kept the max" 3.0 (Registry.value g)
      | _ -> Alcotest.fail "hammer.max not registered")

(* --- determinism: parallel scans vs serial, bit for bit --- *)

let aged_config =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Config.default_vol ~name:"vol0" ~blocks:65536 ]
    ~aggregate_policy:Config.Best_aa ~seed:11 ()

(* Overwrite pressure leaves nonuniform free space behind, so the scans
   under test have real structure to reproduce. *)
let aged_fs () =
  let fs = Fs.create aged_config in
  let vol = (Fs.vols fs).(0) in
  for cp = 0 to 2 do
    for i = 0 to 1023 do
      Fs.stage_write fs ~vol ~file:(cp mod 2) ~offset:i
    done;
    ignore (Fs.run_cp fs)
  done;
  fs

(* The full observable cache state: every score array plus the persisted
   TopAA bytes of every cache (heap contents / HBPS pages). *)
let cache_state fs =
  let range_state (r : Aggregate.range) =
    let topaa =
      match Option.map Cache.backend r.Aggregate.cache with
      | Some (Cache.Raid_aware heap) -> Some (Topaa.save_raid_aware heap)
      | Some (Cache.Raid_agnostic hbps) -> Some (fst (Topaa.save_hbps hbps))
      | None -> None
    in
    (Array.copy r.Aggregate.scores, topaa)
  in
  let vol_state vol =
    let hbps =
      match Option.map Cache.backend (Flexvol.cache vol) with
      | Some (Cache.Raid_agnostic h) -> Some (Topaa.save_hbps h)
      | _ -> None
    in
    (Array.copy (Flexvol.scores vol), hbps)
  in
  ( Array.map range_state (Aggregate.ranges (Fs.aggregate fs)),
    Array.map vol_state (Fs.vols fs) )

let check_bitmaps_equal label fs_a fs_b =
  check_bool (label ^ ": aggregate bitmap")
    true
    (Bitmap.equal
       (Metafile.snapshot (Aggregate.metafile (Fs.aggregate fs_a)))
       (Metafile.snapshot (Aggregate.metafile (Fs.aggregate fs_b))));
  Array.iteri
    (fun i va ->
      check_bool
        (Printf.sprintf "%s: vol %d bitmap" label i)
        true
        (Bitmap.equal
           (Metafile.snapshot (Flexvol.metafile va))
           (Metafile.snapshot (Flexvol.metafile (Fs.vols fs_b).(i)))))
    (Fs.vols fs_a)

let test_mount_full_scan_determinism () =
  let image = Mount.snapshot (aged_fs ()) in
  let fs_serial, timing_serial = Mount.mount image ~with_topaa:false in
  let want = cache_state fs_serial in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          let fs_par, timing_par = Mount.mount ~pool:p image ~with_topaa:false in
          check_bool
            (Printf.sprintf "jobs=%d cache state identical" jobs)
            true
            (cache_state fs_par = want);
          check_bitmaps_equal (Printf.sprintf "jobs=%d" jobs) fs_par fs_serial;
          check_int
            (Printf.sprintf "jobs=%d same pages scanned" jobs)
            timing_serial.Mount.metafile_pages_scanned
            timing_par.Mount.metafile_pages_scanned;
          check_bool
            (Printf.sprintf "jobs=%d modeled ready_us shrinks" jobs)
            true
            (timing_par.Mount.ready_us < timing_serial.Mount.ready_us)))
    [ 2; 3; 8 ];
  (* jobs=1 through a pool must model exactly the serial mount *)
  Par.with_pool ~jobs:1 (fun p ->
      let _, timing1 = Mount.mount ~pool:p image ~with_topaa:false in
      Alcotest.(check (float 0.0))
        "jobs=1 ready_us equals serial" timing_serial.Mount.ready_us timing1.Mount.ready_us)

let test_rebuild_caches_determinism () =
  let fs = aged_fs () in
  Rebuild.request ~vols:(Fs.vols fs) (Fs.aggregate fs) Rebuild.Full;
  let want = cache_state fs in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          Rebuild.request ~pool:p ~vols:(Fs.vols fs) (Fs.aggregate fs) Rebuild.Full;
          check_bool
            (Printf.sprintf "jobs=%d rebuild identical" jobs)
            true
            (cache_state fs = want)))
    [ 2; 5 ]

let test_iron_determinism () =
  let fs = aged_fs () in
  (* inject score drift in a range and a volume so the scans have
     findings to order *)
  let r = (Aggregate.ranges (Fs.aggregate fs)).(1) in
  r.Aggregate.scores.(3) <- r.Aggregate.scores.(3) + 1;
  r.Aggregate.scores.(Array.length r.Aggregate.scores - 1) <-
    r.Aggregate.scores.(Array.length r.Aggregate.scores - 1) + 2;
  let vol = (Fs.vols fs).(0) in
  let vol_scores = Flexvol.scores vol in
  vol_scores.(Array.length vol_scores - 1) <- vol_scores.(Array.length vol_scores - 1) + 1;
  let serial = Iron.check fs in
  check_bool "drift detected" true (List.length serial >= 3);
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          check_bool
            (Printf.sprintf "jobs=%d findings identical (content and order)" jobs)
            true
            (Iron.check ~pool:p fs = serial)))
    [ 2; 4 ]

let test_activemap_parallel_commit () =
  let build () =
    let am = Activemap.create ~blocks:65536 () in
    for vbn = 0 to 65535 do
      if vbn mod 2 = 0 then Activemap.allocate am vbn
    done;
    for vbn = 0 to 65535 do
      (* a scattered, page-spanning free pattern, well over par_min_frees *)
      if vbn mod 6 = 0 then Activemap.queue_free am vbn
    done;
    am
  in
  let serial_am = build () in
  let serial = Activemap.commit serial_am in
  Par.with_pool ~jobs:4 (fun p ->
      let par_am = build () in
      let par = Activemap.commit ~pool:p par_am in
      check_bool "freed lists identical (same order)" true
        (par.Activemap.freed = serial.Activemap.freed);
      check_int "pages written identical" serial.Activemap.pages_written
        par.Activemap.pages_written;
      check_bool "maps identical" true
        (Bitmap.equal
           (Metafile.snapshot (Activemap.metafile par_am))
           (Metafile.snapshot (Activemap.metafile serial_am)));
      check_int "pending drained" 0 (Activemap.pending_free_count par_am))

let test_sharded_harvest_identical () =
  let agg = Aggregate.create aged_config in
  (* scatter allocations so the free pattern is nonuniform *)
  for pvbn = 0 to Aggregate.total_blocks agg - 1 do
    if pvbn mod 3 = 0 || pvbn mod 7 = 0 then Aggregate.allocate agg ~pvbn
  done;
  let range = (Aggregate.ranges agg).(0) in
  let capacity = Wafl_aa.Topology.full_aa_capacity range.Aggregate.topology in
  Par.with_pool ~jobs:4 (fun p ->
      List.iter
        (fun aa ->
          let dst_serial = Array.make capacity 0 in
          let words_serial = ref 0 in
          let n_serial =
            Aggregate.harvest_free_of_aa agg range aa ~dst:dst_serial ~words:words_serial
          in
          let dst_par = Array.make capacity 0 in
          let words_par = ref 0 in
          let shards = Array.init (Par.jobs p) (fun _ -> Array.make capacity 0) in
          let n_par =
            Aggregate.harvest_free_of_aa_sharded p agg range aa ~shards ~dst:dst_par
              ~words:words_par
          in
          let label = Printf.sprintf "aa %d" aa in
          check_int (label ^ ": same count") n_serial n_par;
          check_int (label ^ ": same words read") !words_serial !words_par;
          check_bool (label ^ ": same VBNs in same order") true
            (Array.sub dst_serial 0 n_serial = Array.sub dst_par 0 n_par))
        [ 0; 1; 5 ])

let test_parallel_cp_identical () =
  let final_cp fs pool =
    let vol = (Fs.vols fs).(0) in
    for i = 0 to 1023 do
      (* overwrites: generates > par_min_frees queued frees *)
      Fs.stage_write fs ~vol ~file:0 ~offset:i
    done;
    Fs.run_cp ?pool fs
  in
  let fs_serial = aged_fs () in
  let serial_report = final_cp fs_serial None in
  let want = cache_state fs_serial in
  Par.with_pool ~jobs:4 (fun p ->
      let fs_par = aged_fs () in
      let par_report = final_cp fs_par (Some p) in
      check_bool "reports identical" true (par_report = serial_report);
      check_bool "cache state identical" true (cache_state fs_par = want);
      check_bitmaps_equal "parallel CP" fs_par fs_serial)

(* The backend axis composed with the domain axis: the same pooled
   workload leaves byte-identical state on heap and bigarray stores at
   every job count (the serial heap run is the single reference). *)
let test_backends_identical_across_jobs () =
  let build backend pool =
    Pagestore.with_default backend (fun () ->
        let fs = Fs.create aged_config in
        let vol = (Fs.vols fs).(0) in
        for cp = 0 to 2 do
          for i = 0 to 1023 do
            Fs.stage_write fs ~vol ~file:(cp mod 2) ~offset:i
          done;
          ignore (Fs.run_cp ?pool fs)
        done;
        fs)
  in
  let want_fs = build Pagestore.Heap None in
  let want = cache_state want_fs in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          List.iter
            (fun backend ->
              let label =
                Printf.sprintf "jobs=%d backend=%s" jobs (Pagestore.backend_name backend)
              in
              let fs = build backend (Some p) in
              check_bool (label ^ ": cache state identical") true (cache_state fs = want);
              check_bitmaps_equal label fs want_fs)
            [ Pagestore.Heap; Pagestore.Bigarray ]))
    [ 1; 2; 4; 8 ]

let test_crash_matrix_bigarray_lazy () =
  let heap = Crash_matrix.run ~seed:5 ~warmup_cps:1 ~ops_per_cp:60 () in
  check_bool "heap matrix clean" true (heap.Crash_matrix.violations = []);
  Pagestore.with_default Pagestore.Bigarray (fun () ->
      let big = Crash_matrix.run ~lazy_rebuild:true ~seed:5 ~warmup_cps:1 ~ops_per_cp:60 () in
      check_bool "same crash-point sequence off-heap" true
        (big.Crash_matrix.points = heap.Crash_matrix.points);
      check_bool "bigarray + lazy-remount matrix clean" true
        (big.Crash_matrix.violations = []))

let test_crash_matrix_with_pool () =
  let serial = Crash_matrix.run ~seed:5 ~warmup_cps:1 ~ops_per_cp:60 () in
  check_bool "serial matrix clean" true (serial.Crash_matrix.violations = []);
  Par.install ~jobs:2;
  Fun.protect ~finally:Par.uninstall (fun () ->
      let par = Crash_matrix.run ~seed:5 ~warmup_cps:1 ~ops_per_cp:60 () in
      check_bool "same crash-point sequence" true
        (par.Crash_matrix.points = serial.Crash_matrix.points);
      check_bool "parallel matrix clean" true (par.Crash_matrix.violations = []))

let () =
  Alcotest.run "wafl_par"
    [
      ( "pool",
        [
          Alcotest.test_case "run covers all chunks" `Quick test_run_covers_all_chunks;
          Alcotest.test_case "map slot order" `Quick test_map_slot_order;
          Alcotest.test_case "lowest-chunk exception" `Quick test_exception_lowest_chunk;
          Alcotest.test_case "nested run is serial" `Quick test_nested_run_is_serial;
          Alcotest.test_case "jobs=1 and shutdown degrade" `Quick
            test_jobs1_and_shutdown_degrade;
          Alcotest.test_case "chunk_bounds properties" `Quick test_chunk_bounds_properties;
          Alcotest.test_case "install/resolve" `Quick test_install_resolve;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "multi-domain hammer" `Quick test_telemetry_hammer ] );
      ( "determinism",
        [
          Alcotest.test_case "mount full scan" `Quick test_mount_full_scan_determinism;
          Alcotest.test_case "rebuild caches" `Quick test_rebuild_caches_determinism;
          Alcotest.test_case "iron findings" `Quick test_iron_determinism;
          Alcotest.test_case "activemap commit" `Quick test_activemap_parallel_commit;
          Alcotest.test_case "sharded harvest" `Quick test_sharded_harvest_identical;
          Alcotest.test_case "whole CP" `Quick test_parallel_cp_identical;
          Alcotest.test_case "backends across job counts" `Quick
            test_backends_identical_across_jobs;
          Alcotest.test_case "crash matrix bigarray + lazy" `Slow test_crash_matrix_bigarray_lazy;
          Alcotest.test_case "crash matrix under a pool" `Slow test_crash_matrix_with_pool;
        ] );
    ]
