(* Tests for Wafl_raid: geometry, stripe, tetris, group. *)

open Wafl_raid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let geom = Geometry.create ~data_devices:6 ~parity_devices:1 ~device_blocks:1000

(* --- Geometry --- *)

let test_geometry_basics () =
  check_int "data devices" 6 (Geometry.data_devices geom);
  check_int "parity" 1 (Geometry.parity_devices geom);
  check_int "stripes" 1000 (Geometry.stripes geom);
  check_int "total blocks" 6000 (Geometry.total_blocks geom)

let test_geometry_mapping () =
  let loc = Geometry.location_of_vbn geom 0 in
  check_int "vbn0 device" 0 loc.Geometry.device;
  check_int "vbn0 dbn" 0 loc.Geometry.dbn;
  let loc = Geometry.location_of_vbn geom 1500 in
  check_int "vbn1500 device" 1 loc.Geometry.device;
  check_int "vbn1500 dbn" 500 loc.Geometry.dbn;
  check_int "roundtrip" 1500 (Geometry.vbn_of_location geom loc)

let prop_geometry_roundtrip =
  QCheck.Test.make ~name:"vbn <-> location roundtrip" ~count:500
    QCheck.(int_bound 5999)
    (fun vbn ->
      let loc = Geometry.location_of_vbn geom vbn in
      Geometry.vbn_of_location geom loc = vbn)

let test_geometry_stripe () =
  check_int "stripe of vbn" 500 (Geometry.stripe_of_vbn geom 1500);
  let vbns = Geometry.vbns_of_stripe geom 10 in
  check_int "stripe width" 6 (List.length vbns);
  List.iter (fun v -> check_int "same dbn" 10 (Geometry.stripe_of_vbn geom v)) vbns;
  (* all on different devices *)
  let devices = List.map (fun v -> (Geometry.location_of_vbn geom v).Geometry.device) vbns in
  Alcotest.(check (list int)) "device order" [ 0; 1; 2; 3; 4; 5 ] devices

let test_geometry_device_range () =
  let r = Geometry.device_vbn_range geom 2 in
  check_int "start" 2000 (Wafl_block.Extent.start r);
  check_int "len" 1000 (Wafl_block.Extent.len r)

let test_geometry_bounds () =
  Alcotest.check_raises "oob vbn" (Invalid_argument "Geometry: VBN out of bounds") (fun () ->
      ignore (Geometry.location_of_vbn geom 6000))

(* --- Stripe --- *)

let test_stripe_full () =
  (* write one complete stripe: vbns at dbn=5 across all 6 devices *)
  let vbns = Geometry.vbns_of_stripe geom 5 in
  let c = Stripe.classify geom ~vbns in
  check_int "full" 1 c.Stripe.full_stripes;
  check_int "partial" 0 c.Stripe.partial_stripes;
  check_int "parity writes" 1 c.Stripe.parity_writes;
  check_int "no extra reads" 0 c.Stripe.extra_reads;
  Alcotest.(check (float 1e-9)) "fullness" 1.0 (Stripe.fullness_ratio c)

let test_stripe_partial () =
  (* write 2 of 6 blocks of a stripe *)
  let vbns = [ Geometry.vbn_of_location geom { Geometry.device = 0; dbn = 7 };
               Geometry.vbn_of_location geom { Geometry.device = 3; dbn = 7 } ] in
  let c = Stripe.classify geom ~vbns in
  check_int "partial" 1 c.Stripe.partial_stripes;
  check_int "blocks in partial" 2 c.Stripe.blocks_in_partial;
  (* RMW: read 2 old data + 1 old parity *)
  check_int "extra reads" 3 c.Stripe.extra_reads;
  check_int "device writes" 3 (Stripe.total_device_writes geom c)

let test_stripe_mixed () =
  let full = Geometry.vbns_of_stripe geom 1 in
  let partial = [ Geometry.vbn_of_location geom { Geometry.device = 0; dbn = 2 } ] in
  let c = Stripe.classify geom ~vbns:(full @ partial) in
  check_int "full" 1 c.Stripe.full_stripes;
  check_int "partial" 1 c.Stripe.partial_stripes;
  let ratio = Stripe.fullness_ratio c in
  check_bool "ratio" true (abs_float (ratio -. (6.0 /. 7.0)) < 1e-9)

let test_stripe_duplicates () =
  let v = Geometry.vbn_of_location geom { Geometry.device = 0; dbn = 3 } in
  let c = Stripe.classify geom ~vbns:[ v; v; v ] in
  check_int "counted once" 1 c.Stripe.blocks_in_partial

let prop_stripe_blocks_conserved =
  QCheck.Test.make ~name:"classified blocks = distinct vbns" ~count:200
    QCheck.(list (int_bound 5999))
    (fun vbns ->
      let c = Stripe.classify geom ~vbns in
      let distinct = List.length (List.sort_uniq Int.compare vbns) in
      c.Stripe.blocks_in_full + c.Stripe.blocks_in_partial = distinct)

(* --- Tetris --- *)

let test_tetris_grouping () =
  (* stripes 0..63 are tetris 0; stripe 64 is tetris 1 *)
  let vbns =
    [ Geometry.vbn_of_location geom { Geometry.device = 0; dbn = 0 };
      Geometry.vbn_of_location geom { Geometry.device = 1; dbn = 63 };
      Geometry.vbn_of_location geom { Geometry.device = 2; dbn = 64 } ]
  in
  let groups = Tetris.group geom ~vbns in
  check_int "two tetrises" 2 (List.length groups);
  match groups with
  | [ t0; t1 ] ->
    check_int "t0 index" 0 t0.Tetris.index;
    check_int "t0 stripes" 2 t0.Tetris.stripes_touched;
    check_int "t1 index" 1 t1.Tetris.index;
    check_int "t1 blocks" 1 (List.length t1.Tetris.vbns)
  | _ -> Alcotest.fail "unexpected groups"

let test_tetris_summary () =
  let vbns = Geometry.vbns_of_stripe geom 0 @ Geometry.vbns_of_stripe geom 100 in
  let s = Tetris.summarize geom ~vbns in
  check_int "tetrises" 2 s.Tetris.tetrises;
  check_int "blocks" 12 s.Tetris.blocks;
  Alcotest.(check (float 1e-9)) "mean" 6.0 s.Tetris.mean_blocks_per_tetris;
  Array.iter (fun n -> check_int "per device" 2 n) s.Tetris.per_device_blocks

let prop_tetris_blocks_conserved =
  QCheck.Test.make ~name:"tetris blocks = distinct vbns" ~count:200
    QCheck.(list (int_bound 5999))
    (fun vbns ->
      let s = Tetris.summarize geom ~vbns in
      let distinct = List.length (List.sort_uniq Int.compare vbns) in
      s.Tetris.blocks = distinct
      && Array.fold_left ( + ) 0 s.Tetris.per_device_blocks = distinct)

(* --- Group --- *)

let test_group_accumulates () =
  let g = Group.create geom in
  let _ = Group.record_flush g ~vbns:(Geometry.vbns_of_stripe geom 0) in
  let _ = Group.record_flush g ~vbns:[ Geometry.vbn_of_location geom { Geometry.device = 0; dbn = 999 } ] in
  let t = Group.totals g in
  check_int "flushes" 2 t.Group.flushes;
  check_int "blocks" 7 t.Group.blocks_written;
  check_int "full" 1 t.Group.full_stripes;
  check_int "partial" 1 t.Group.partial_stripes;
  check_int "tetrises" 2 t.Group.tetrises_written;
  check_bool "fullness" true (abs_float (Group.stripe_fullness t -. 0.5) < 1e-9)

let test_group_chains () =
  let g = Group.create geom in
  (* 3 consecutive dbns on device 0: one chain *)
  let vbns = List.map (fun dbn -> Geometry.vbn_of_location geom { Geometry.device = 0; dbn }) [ 10; 11; 12 ] in
  let _ = Group.record_flush g ~vbns in
  let t = Group.totals g in
  check_int "one chain" 1 t.Group.chain_count;
  Alcotest.(check (float 1e-9)) "chain len 3" 3.0 (Group.mean_chain_len t)

let test_group_chain_split_across_devices () =
  let g = Group.create geom in
  (* same dbns on two devices: two chains even though vbns look contiguous per device *)
  let vbns =
    List.concat_map
      (fun device ->
        List.map (fun dbn -> Geometry.vbn_of_location geom { Geometry.device; dbn }) [ 0; 1 ])
      [ 0; 1 ]
  in
  let _ = Group.record_flush g ~vbns in
  check_int "two chains" 2 (Group.totals g).Group.chain_count

let test_group_reset () =
  let g = Group.create geom in
  let _ = Group.record_flush g ~vbns:(Geometry.vbns_of_stripe geom 0) in
  Group.reset g;
  check_int "zeroed" 0 (Group.totals g).Group.blocks_written

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_geometry_roundtrip; prop_stripe_blocks_conserved; prop_tetris_blocks_conserved ]
  in
  Alcotest.run "wafl_raid"
    [
      ( "geometry",
        [
          Alcotest.test_case "basics" `Quick test_geometry_basics;
          Alcotest.test_case "mapping" `Quick test_geometry_mapping;
          Alcotest.test_case "stripe" `Quick test_geometry_stripe;
          Alcotest.test_case "device range" `Quick test_geometry_device_range;
          Alcotest.test_case "bounds" `Quick test_geometry_bounds;
        ] );
      ( "stripe",
        [
          Alcotest.test_case "full" `Quick test_stripe_full;
          Alcotest.test_case "partial" `Quick test_stripe_partial;
          Alcotest.test_case "mixed" `Quick test_stripe_mixed;
          Alcotest.test_case "duplicates" `Quick test_stripe_duplicates;
        ] );
      ( "tetris",
        [
          Alcotest.test_case "grouping" `Quick test_tetris_grouping;
          Alcotest.test_case "summary" `Quick test_tetris_summary;
        ] );
      ( "group",
        [
          Alcotest.test_case "accumulates" `Quick test_group_accumulates;
          Alcotest.test_case "chains" `Quick test_group_chains;
          Alcotest.test_case "chains split across devices" `Quick
            test_group_chain_split_across_devices;
          Alcotest.test_case "reset" `Quick test_group_reset;
        ]
        @ qsuite );
    ]
