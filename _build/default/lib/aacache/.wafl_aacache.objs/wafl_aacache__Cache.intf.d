lib/aacache/cache.mli: Hbps Max_heap
