lib/aa/topology.mli: Format Wafl_block Wafl_raid
