(** Summary statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1); 0 when count < 2 *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Summary of a non-empty sample. Does not mutate the input. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty sample. *)

val stddev : float array -> float
(** Sample standard deviation; 0 for fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Input must be non-empty; not mutated. *)

val pp_summary : Format.formatter -> summary -> unit
