open Wafl_bitmap
open Wafl_block

let score_of_aa topology metafile i =
  let extents = Topology.extents_of_aa topology i in
  List.fold_left
    (fun acc e ->
      acc + Metafile.free_count metafile ~start:(Extent.start e) ~len:(Extent.len e))
    0 extents

let all_scores topology metafile =
  Array.init (Topology.aa_count topology) (score_of_aa topology metafile)

(* Wear-aware scoring term (wpmfs-style wear binning): wear counts are
   collapsed into coarse bins of [quantum] erases, and every bin an AA
   sits above the device minimum costs it [bias] score units in the
   cache.  Binning keeps the ordering stable — AAs within one bin still
   compete purely on emptiness, so allocation only detours around spans
   that are measurably more worn.  The adjusted value feeds the pick
   cache only, never the [scores] free-count array ({!apply} asserts that
   array stays a pure free count); an AA with any free space is clamped
   to a score of at least 1 so wear can demote it but never hide it. *)
let wear_quantum = 4

let wear_adjusted ~bias ~wear ~min_wear ~score =
  if bias <= 0 || score <= 0 then score
  else begin
    let bins = (wear - min_wear) / wear_quantum in
    if bins <= 0 then score else max 1 (score - (bias * bins))
  end

(* Preallocated per-AA accumulator: a note_alloc/note_free is one array
   bump (plus first-touch bookkeeping), with no hashing and no heap
   allocation — it runs once per block on the allocation hot path.
   [touched] compacts the AAs with a pending entry so the CP-boundary
   apply only visits what changed; [member] keeps it duplicate-free even
   when an AA's net change crosses zero and back. *)
type delta = {
  topology : Topology.t;
  change : int array;    (* net pending change per AA *)
  touched : int array;   (* AAs with an entry, unordered, [0, n_touched) *)
  member : Bytes.t;      (* '\001' when the AA is listed in [touched] *)
  mutable n_touched : int;
}

let create_delta topology =
  let n = Topology.aa_count topology in
  {
    topology;
    change = Array.make n 0;
    touched = Array.make n 0;
    member = Bytes.make n '\000';
    n_touched = 0;
  }

let[@inline] bump_aa d aa amount =
  if Bytes.unsafe_get d.member aa = '\000' then begin
    Bytes.unsafe_set d.member aa '\001';
    d.touched.(d.n_touched) <- aa;
    d.n_touched <- d.n_touched + 1
  end;
  d.change.(aa) <- d.change.(aa) + amount

let bump d vbn amount = bump_aa d (Topology.aa_of_vbn d.topology vbn) amount

let note_alloc d ~vbn = bump d vbn (-1)
let note_free d ~vbn = bump d vbn 1

(* Hot-path variant for callers that already know the AA (harvest rings
   carry whole-AA batches): skips the VBN->AA division of {!note_alloc}. *)
let[@inline] note_alloc_aa d ~aa =
  if aa < 0 || aa >= Array.length d.change then invalid_arg "Score.note_alloc_aa";
  bump_aa d aa (-1)

let is_empty d =
  let rec go k = k >= d.n_touched || (d.change.(d.touched.(k)) = 0 && go (k + 1)) in
  go 0

let mem d ~aa = aa >= 0 && aa < Array.length d.change && d.change.(aa) <> 0

let fold d ~init ~f =
  let acc = ref init in
  for k = 0 to d.n_touched - 1 do
    let aa = d.touched.(k) in
    let change = d.change.(aa) in
    if change <> 0 then acc := f !acc ~aa ~change
  done;
  !acc

let clear d =
  for k = 0 to d.n_touched - 1 do
    let aa = d.touched.(k) in
    d.change.(aa) <- 0;
    Bytes.unsafe_set d.member aa '\000'
  done;
  d.n_touched <- 0

let merge_into ~src ~dst =
  if Topology.aa_count src.topology <> Topology.aa_count dst.topology then
    invalid_arg "Score.merge_into: topology mismatch";
  for k = 0 to src.n_touched - 1 do
    let aa = src.touched.(k) in
    let change = src.change.(aa) in
    if change <> 0 then bump_aa dst aa change
  done;
  clear src

let apply d scores =
  let updates =
    fold d ~init:[] ~f:(fun acc ~aa ~change ->
        let updated = scores.(aa) + change in
        assert (updated >= 0 && updated <= Topology.aa_capacity d.topology aa);
        scores.(aa) <- updated;
        (aa, updated) :: acc)
  in
  clear d;
  updates
