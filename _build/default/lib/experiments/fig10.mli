(** Figure 10 (§4.4): time to the first CP after mount, with and without
    TopAA metafiles.

    (A) 50 FlexVols of increasing size: the TopAA path is flat; the
    full-scan path grows linearly with volume size.
    (B) An increasing number of fixed-size FlexVols: TopAA grows only with
    the (tiny) per-volume block reads; the scan grows with total capacity. *)

type point = {
  x : int;            (** volume size in blocks (A) or volume count (B) *)
  with_topaa_us : float;
  without_topaa_us : float;
}

type result = {
  sweep_a : point list;  (** varying volume size, fixed count *)
  sweep_b : point list;  (** varying volume count, fixed size *)
  vols_a : int;
  vol_blocks_b : int;
}

val run : ?scale:Common.scale -> unit -> result
val print : result -> unit
