open Wafl_util
open Wafl_bitmap
open Wafl_aa
open Wafl_aacache
open Wafl_telemetry

(* Per-range (or per-volume) allocation cursor: the free VBNs of the AA
   currently being filled, plus the AAs taken since the last CP. *)
type cursor = {
  mutable queue : int list;       (* free VBNs still to hand out *)
  taken : (int, unit) Hashtbl.t;  (* AAs checked out of the cache *)
  mutable scan_pos : int;         (* First_fit scan position *)
}

type t = {
  aggregate : Aggregate.t;
  rng : Rng.t;
  cursors : cursor array;                 (* one per physical range *)
  mutable vols : (Flexvol.t * cursor) list;
  mutable phys_taken : int;
  mutable phys_score_sum : int;
  mutable virt_taken : int;
  mutable virt_score_sum : int;
  mutable candidates_scanned : int;
}

let new_cursor () = { queue = []; taken = Hashtbl.create 16; scan_pos = 0 }

let create aggregate ~rng =
  {
    aggregate;
    rng;
    cursors = Array.map (fun _ -> new_cursor ()) (Aggregate.ranges aggregate);
    vols = [];
    phys_taken = 0;
    phys_score_sum = 0;
    virt_taken = 0;
    virt_score_sum = 0;
    candidates_scanned = 0;
  }

let aggregate t = t.aggregate

let register_vol t vol =
  if not (List.exists (fun (v, _) -> v == vol) t.vols) then
    t.vols <- (vol, new_cursor ()) :: t.vols

(* Pick the next AA id for a space with [n_aas] AAs under [policy].
   [free_of aa] recomputes the AA's current free count (used by the
   cacheless policies).  [space] labels the pick in the telemetry trace
   (range index, or -1 for a FlexVol); a cache-backed pick is traced by the
   cache itself.  Returns (aa, score-at-take) or None. *)
let pick_aa t cursor ~policy ~space ~cache ~n_aas ~free_of =
  match (policy : Config.allocation_policy) with
  | Config.Best_aa -> (
    match cache with
    | None -> None
    | Some c ->
      (* Skip over empty-scored AAs; bounded so a drained cache terminates. *)
      let rec try_take attempts =
        if attempts = 0 then None
        else begin
          match Cache.take_best c with
          | None -> None
          | Some (aa, score) ->
            Hashtbl.replace cursor.taken aa ();
            if score > 0 then Some (aa, score) else try_take (attempts - 1)
        end
      in
      try_take 8)
  | Config.Random_aa ->
    (* The §4.1 baseline: uniformly random AA, regardless of emptiness. *)
    let rec try_pick attempts =
      if attempts = 0 then None
      else begin
        let aa = Rng.int t.rng n_aas in
        let free = free_of aa in
        if free > 0 then begin
          Telemetry.trace_aa_pick ~space ~aa ~score:free;
          Some (aa, free)
        end
        else try_pick (attempts - 1)
      end
    in
    try_pick 64
  | Config.First_fit ->
    let rec scan steps pos =
      if steps > n_aas then None
      else begin
        let free = free_of pos in
        if free > 0 then begin
          cursor.scan_pos <- (pos + 1) mod n_aas;
          Telemetry.trace_aa_pick ~space ~aa:pos ~score:free;
          Some (pos, free)
        end
        else scan (steps + 1) ((pos + 1) mod n_aas)
      end
    in
    scan 0 cursor.scan_pos

let note_phys_take t score =
  t.phys_taken <- t.phys_taken + 1;
  t.phys_score_sum <- t.phys_score_sum + score

let note_virt_take t score =
  t.virt_taken <- t.virt_taken + 1;
  t.virt_score_sum <- t.virt_score_sum + score

(* Refill a range cursor's queue from the next AA; false when no AA with
   free blocks is available. *)
let refill_range t range cursor =
  let policy = (Aggregate.config t.aggregate).Config.aggregate_policy in
  match
    pick_aa t cursor ~policy ~space:range.Aggregate.index ~cache:range.Aggregate.cache
      ~n_aas:(Topology.aa_count range.Aggregate.topology)
      ~free_of:(fun aa -> Aggregate.aa_score_now t.aggregate range aa)
  with
  | None -> false
  | Some (aa, score) ->
    note_phys_take t score;
    t.candidates_scanned <-
      t.candidates_scanned + Topology.aa_capacity range.Aggregate.topology aa;
    let vbns = Aggregate.free_vbns_of_aa t.aggregate range aa in
    cursor.queue <- vbns;
    cursor.queue <> []

(* Take up to [want] allocatable PVBNs from one range. *)
let take_from_range t range cursor want =
  let mf = Aggregate.metafile t.aggregate in
  let rec go acc want =
    if want = 0 then acc
    else begin
      match cursor.queue with
      | pvbn :: rest ->
        cursor.queue <- rest;
        if Metafile.is_allocated mf pvbn then go acc want
        else begin
          Aggregate.allocate t.aggregate ~pvbn;
          go (pvbn :: acc) (want - 1)
        end
      | [] -> if refill_range t range cursor then go acc want else acc
    end
  in
  List.rev (go [] want)

let best_score_of_range range =
  match range.Aggregate.cache with
  | Some c -> Option.value (Cache.peek_best_score c) ~default:0
  | None ->
    (* cacheless: use the true best score so throttling still works *)
    Array.fold_left max 0 range.Aggregate.scores

let allocate_pvbns t n =
  if n <= 0 then []
  else begin
    let ranges = Aggregate.ranges t.aggregate in
    let threshold = (Aggregate.config t.aggregate).Config.rg_score_threshold in
    let all = Array.to_list (Array.mapi (fun i r -> (i, r)) ranges) in
    let eligible =
      match threshold with
      | None -> all
      | Some min_score -> (
        match List.filter (fun (_, r) -> best_score_of_range r >= min_score) all with
        | [] -> all (* never stall entirely: fall back to every range (§3.3.1) *)
        | some -> some)
    in
    (* Weight each range by its best AA score: emptier groups get a larger
       share of the CP's blocks (§4.2). *)
    let weights = List.map (fun (i, r) -> (i, r, max 1 (best_score_of_range r))) eligible in
    let total_weight = List.fold_left (fun acc (_, _, w) -> acc + w) 0 weights in
    let shares =
      List.map (fun (i, r, w) -> (i, r, n * w / total_weight)) weights
    in
    let allocated = ref [] in
    let got = ref 0 in
    List.iter
      (fun (i, r, share) ->
        if share > 0 then begin
          let blocks = take_from_range t r t.cursors.(i) share in
          got := !got + List.length blocks;
          allocated := List.rev_append blocks !allocated
        end)
      shares;
    (* Rounding remainder and any shortfall: round-robin over eligible
       ranges until satisfied or nothing more is allocatable. *)
    let rec mop_up remaining stalled =
      if remaining > 0 && not stalled then begin
        let progress = ref false in
        List.iter
          (fun (i, r, _) ->
            if !got < n then begin
              let blocks = take_from_range t r t.cursors.(i) (min 64 (n - !got)) in
              if blocks <> [] then progress := true;
              got := !got + List.length blocks;
              allocated := List.rev_append blocks !allocated
            end)
          weights;
        mop_up (n - !got) (not !progress)
      end
    in
    mop_up (n - !got) false;
    List.rev !allocated
  end

let vol_cursor t vol =
  match List.find_opt (fun (v, _) -> v == vol) t.vols with
  | Some (_, c) -> c
  | None ->
    let c = new_cursor () in
    t.vols <- (vol, c) :: t.vols;
    c

let refill_vol t vol cursor =
  let policy = (Flexvol.spec vol).Config.policy in
  match
    pick_aa t cursor ~policy ~space:(-1) ~cache:(Flexvol.cache vol)
      ~n_aas:(Topology.aa_count (Flexvol.topology vol))
      ~free_of:(fun aa -> Score.score_of_aa (Flexvol.topology vol) (Flexvol.metafile vol) aa)
  with
  | None -> false
  | Some (aa, score) ->
    note_virt_take t score;
    t.candidates_scanned <-
      t.candidates_scanned + Topology.aa_capacity (Flexvol.topology vol) aa;
    cursor.queue <- Flexvol.free_vvbns_of_aa vol aa;
    cursor.queue <> []

let allocate_vvbns t vol n =
  let cursor = vol_cursor t vol in
  let mf = Flexvol.metafile vol in
  let rec go acc want =
    if want = 0 then acc
    else begin
      match cursor.queue with
      | vvbn :: rest ->
        cursor.queue <- rest;
        if Metafile.is_allocated mf vvbn then go acc want
        else begin
          (* reserve immediately so a re-gathered AA cannot offer it again *)
          Flexvol.reserve_vvbn vol ~vvbn;
          go (vvbn :: acc) (want - 1)
        end
      | [] -> if refill_vol t vol cursor then go acc want else acc
    end
  in
  List.rev (go [] n)

(* CP boundary: apply score deltas and make sure every taken AA is re-filed
   in its cache, even if its score did not change. *)
let cp_finish t =
  Array.iteri
    (fun i range ->
      let cursor = t.cursors.(i) in
      let updates = Score.apply range.Aggregate.delta range.Aggregate.scores in
      let changed = Hashtbl.create 32 in
      List.iter (fun (aa, _) -> Hashtbl.replace changed aa ()) updates;
      let extra =
        Hashtbl.fold
          (fun aa () acc ->
            if Hashtbl.mem changed aa then acc else (aa, range.Aggregate.scores.(aa)) :: acc)
          cursor.taken []
      in
      Hashtbl.reset cursor.taken;
      match range.Aggregate.cache with
      | Some cache -> Cache.cp_update cache (updates @ extra)
      | None -> ())
    (Aggregate.ranges t.aggregate);
  List.iter
    (fun (vol, cursor) ->
      let updates = Score.apply (Flexvol.delta vol) (Flexvol.scores vol) in
      let changed = Hashtbl.create 32 in
      List.iter (fun (aa, _) -> Hashtbl.replace changed aa ()) updates;
      let extra =
        Hashtbl.fold
          (fun aa () acc ->
            if Hashtbl.mem changed aa then acc else (aa, (Flexvol.scores vol).(aa)) :: acc)
          cursor.taken []
      in
      Hashtbl.reset cursor.taken;
      match Flexvol.cache vol with
      | Some cache -> Cache.cp_update cache (updates @ extra)
      | None -> ())
    t.vols

let candidates_scanned t = t.candidates_scanned

let aas_taken t = t.phys_taken + t.virt_taken
let score_sum_taken t = t.phys_score_sum + t.virt_score_sum
let phys_take_trace t = (t.phys_taken, t.phys_score_sum)
let virt_take_trace t = (t.virt_taken, t.virt_score_sum)

let reset_take_stats t =
  t.phys_taken <- 0;
  t.phys_score_sum <- 0;
  t.virt_taken <- 0;
  t.virt_score_sum <- 0;
  t.candidates_scanned <- 0
