(* Counters and gauges are Atomic-backed so increments from parallel
   scan domains are never lost (the multi-domain hammer tests in
   test_telemetry and test_par exercise this).  The registry table itself
   is guarded by a mutex: registration is rare, but first-touch of a name
   can race when two domains emit the same new counter simultaneously.

   Histograms shard per domain: each observing domain owns a private
   bucket array (indexed by its domain id), so observe is a couple of
   plain stores with no contention, and the read side merges the shards.
   The shard table is published through an Atomic and grown under a
   per-histogram lock; growth copies the shard *references*, so an
   observation racing a growth lands in a shard the new table also
   points at — no update is lost.  A domain's plain stores become
   visible to readers at its next synchronising operation (e.g. the
   pool's task-completion edge), which every current caller crosses
   before reading. *)

type counter = { c_name : string; c_count : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type shard = {
  s_buckets : int array;
  mutable s_observations : int;
  mutable s_sum : int;
}

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  h_shards : shard array Atomic.t;  (* indexed by domain id; grown on demand *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  lock : Mutex.t;
}

let n_buckets = 63

let create () = { table = Hashtbl.create 64; order = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception exn ->
    Mutex.unlock t.lock;
    raise exn

let register t name make =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.add t.table name m;
        t.order <- name :: t.order;
        m)

let counter t name =
  match register t name (fun () -> Counter { c_name = name; c_count = Atomic.make 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Registry.counter: %S is not a counter" name)

let gauge t name =
  match register t name (fun () -> Gauge { g_name = name; g_value = Atomic.make 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Registry.gauge: %S is not a gauge" name)

let new_shard () = { s_buckets = Array.make n_buckets 0; s_observations = 0; s_sum = 0 }

let histogram t name =
  match
    register t name (fun () ->
        Histogram
          {
            h_name = name;
            h_lock = Mutex.create ();
            h_shards = Atomic.make (Array.init 8 (fun _ -> new_shard ()));
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg (Printf.sprintf "Registry.histogram: %S is not a histogram" name)

let incr c = Atomic.incr c.c_count

let add c n =
  if n < 0 then invalid_arg "Registry.add: negative increment";
  ignore (Atomic.fetch_and_add c.c_count n)

let count c = Atomic.get c.c_count

let set g v = Atomic.set g.g_value v

let rec set_max g v =
  let cur = Atomic.get g.g_value in
  if v > cur && not (Atomic.compare_and_set g.g_value cur v) then set_max g v

let value g = Atomic.get g.g_value

(* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 v)
  end

(* The calling domain's shard, growing the table on first touch.  The
   steady state (shard already present) is one Atomic read and an array
   index — no allocation, no lock. *)
let rec shard_for h =
  let id = (Domain.self () :> int) in
  let shards = Atomic.get h.h_shards in
  if id < Array.length shards then shards.(id)
  else begin
    Mutex.lock h.h_lock;
    let shards = Atomic.get h.h_shards in
    (if id >= Array.length shards then begin
       let n = ref (max 8 (Array.length shards)) in
       while !n <= id do
         n := !n * 2
       done;
       Atomic.set h.h_shards
         (Array.init !n (fun i ->
              if i < Array.length shards then shards.(i) else new_shard ()))
     end);
    Mutex.unlock h.h_lock;
    shard_for h
  end

let observe h v =
  let s = shard_for h in
  let b = bucket_of v in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1;
  s.s_observations <- s.s_observations + 1;
  s.s_sum <- s.s_sum + max 0 v

let fold_shards h ~init ~f = Array.fold_left f init (Atomic.get h.h_shards)

let observations h = fold_shards h ~init:0 ~f:(fun acc s -> acc + s.s_observations)
let sum h = fold_shards h ~init:0 ~f:(fun acc s -> acc + s.s_sum)
let bucket_count _ = n_buckets
let bucket h i = fold_shards h ~init:0 ~f:(fun acc s -> acc + s.s_buckets.(i))
let bucket_lower_bound i = if i <= 1 then 0 else 1 lsl (i - 1)

let nonempty_buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = bucket h i in
    if c > 0 then acc := (i, c) :: !acc
  done;
  !acc

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let fold t ~init ~f =
  let order = with_lock t (fun () -> List.rev t.order) in
  List.fold_left (fun acc n -> f acc (Hashtbl.find t.table n)) init order

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.table name)

let clear t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c_count 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
            Array.iter
              (fun s ->
                Array.fill s.s_buckets 0 (Array.length s.s_buckets) 0;
                s.s_observations <- 0;
                s.s_sum <- 0)
              (Atomic.get h.h_shards))
        t.table)
