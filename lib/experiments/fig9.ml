open Wafl_device
open Wafl_core
open Wafl_sim
open Wafl_workload

type sizing = Hdd_aa | Azcs_aligned_aa

let sizing_name = function
  | Hdd_aa -> "HDD-sized AA (unaligned)"
  | Azcs_aligned_aa -> "AZCS-aligned AA"

type result = {
  sizing : sizing;
  aa_stripes : int;
  azcs_aligned : bool;
  curve : Load.curve;
  blocks_written : int;
  device_time_s : float;
  drive_throughput_blocks_per_s : float;
  random_checksum_writes : int;
  sequential_fraction : float;
}

let aa_stripes_of scale sizing =
  match sizing with
  | Hdd_aa -> ( match (scale : Common.scale) with Common.Quick -> 4096 | Common.Full -> 4096)
  | Azcs_aligned_aa ->
    Wafl_aa.Sizing.smr_stripes ~zones_per_aa:2 ~azcs:true (Common.smr_profile scale)

(* Perturb the cached AA scores by a few blocks so the allocator's switches
   jump around the number space, as they do on any production system where
   AAs never tie exactly (metadata, reserves, other volumes).  The blocks
   themselves stay free — only the pick order changes. *)
let perturb_scores fs ~rng =
  let range0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  let noisy = Array.map (fun s -> max 0 (s - Wafl_util.Rng.int rng 8)) range0.Aggregate.scores in
  range0.Aggregate.cache <-
    Some
      (Wafl_aacache.Cache.make ~space:range0.Aggregate.index
         (Wafl_aacache.Cache.Raid_aware (Wafl_aacache.Max_heap.of_scores noisy)))

let measurement scale =
  match (scale : Common.scale) with
  | Common.Quick -> (40, 2000) (* cps, blocks per cp *)
  | Common.Full -> (80, 4000)

let run_sizing scale sizing =
  let aa_stripes = aa_stripes_of scale sizing in
  let rg = Common.smr_raid_group scale ~aa_stripes:(Some aa_stripes) in
  let agg_blocks = rg.Config.data_devices * rg.Config.device_blocks in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:
        [ { Config.name = "seq"; blocks = agg_blocks; aa_blocks = None;
            policy = Config.Best_aa } ]
      ~aggregate_policy:Config.Best_aa ~seed:9001 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "seq" in
  perturb_scores fs ~rng:(Wafl_util.Rng.split (Fs.rng fs));
  let range0 = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  let smr, _tracker =
    match range0.Aggregate.device with
    | Aggregate.Smr_sim (s, tr) -> (s, tr)
    | Aggregate.Hdd_sim _ | Aggregate.Ssd_sim _ | Aggregate.Object_sim _ ->
      invalid_arg "fig9: SMR rig expected"
  in
  let workload = Sequential.create fs vol () in
  let cps, blocks_per_cp = measurement scale in
  let random_cs = ref 0 in
  let reports = ref [] in
  for _ = 1 to cps do
    let r = Sequential.step workload blocks_per_cp in
    random_cs :=
      !random_cs
      + List.fold_left (fun acc d -> acc + d.Cp.smr_random_checksum_writes) 0 r.Cp.devices;
    reports := r :: !reports
  done;
  let costs = Wafl_sim.Cost_model.combine (List.map Cost_model.of_report !reports) in
  let stats = Smr.stats smr in
  let total_writes = stats.Smr.sequential_writes + stats.Smr.random_writes in
  {
    sizing;
    aa_stripes;
    azcs_aligned = Wafl_aa.Sizing.is_azcs_aligned ~aa_stripes;
    curve = Load.sweep ~label:(sizing_name sizing) costs;
    blocks_written = stats.Smr.blocks_written;
    device_time_s = stats.Smr.total_us *. 1e-6;
    drive_throughput_blocks_per_s =
      float_of_int stats.Smr.blocks_written /. (stats.Smr.total_us *. 1e-6);
    random_checksum_writes = !random_cs;
    sequential_fraction =
      (if total_writes = 0 then 0.0
       else float_of_int stats.Smr.sequential_writes /. float_of_int total_writes);
  }

let run ?(scale = Common.Quick) () = List.map (run_sizing scale) [ Hdd_aa; Azcs_aligned_aa ]

let find results s = List.find (fun r -> r.sizing = s) results

let print results =
  Common.banner
    "Figure 9: sequential writes on SMR, AZCS-aligned AA vs HDD-sized AA (unaged)";
  Wafl_util.Series.print_all ~header:"series: x = throughput (kops/s), y = latency (ms)"
    (List.map (fun r -> Load.to_series r.curve) results);
  List.iter
    (fun r ->
      Common.kv
        (Printf.sprintf "%s:" (sizing_name r.sizing))
        (Printf.sprintf
           "aa_stripes=%d aligned=%b drive=%.0f blk/s random-cs=%d seq-frac=%.3f"
           r.aa_stripes r.azcs_aligned r.drive_throughput_blocks_per_s
           r.random_checksum_writes r.sequential_fraction))
    results;
  let hdd = find results Hdd_aa and azcs = find results Azcs_aligned_aa in
  Printf.printf "\n";
  Common.paper_vs_measured ~metric:"drive throughput gain (aligned)"
    ~paper:"+7%"
    ~measured:
      (Common.pct azcs.drive_throughput_blocks_per_s hdd.drive_throughput_blocks_per_s)
    ~ok:(azcs.drive_throughput_blocks_per_s > hdd.drive_throughput_blocks_per_s);
  Common.paper_vs_measured ~metric:"latency at peak"
    ~paper:"-11%"
    ~measured:
      (Common.pct (Load.latency_at_peak_ms azcs.curve) (Load.latency_at_peak_ms hdd.curve))
    ~ok:(Load.latency_at_peak_ms azcs.curve < Load.latency_at_peak_ms hdd.curve);
  Common.paper_vs_measured ~metric:"random checksum-block writes"
    ~paper:"avoided when aligned"
    ~measured:(Printf.sprintf "%d (hdd AA) vs %d (aligned)" hdd.random_checksum_writes
                 azcs.random_checksum_writes)
    ~ok:(azcs.random_checksum_writes < hdd.random_checksum_writes)
