open Wafl_block

let stripes_per_tetris = Units.tetris_stripes

type t = { index : int; vbns : int list; stripes_touched : int }

type summary = {
  tetrises : int;
  blocks : int;
  mean_blocks_per_tetris : float;
  per_device_blocks : int array;
}

let group geom ~vbns =
  let by_tetris = Hashtbl.create 64 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun vbn ->
      if not (Hashtbl.mem seen vbn) then begin
        Hashtbl.add seen vbn ();
        let stripe = Geometry.stripe_of_vbn geom vbn in
        let index = stripe / stripes_per_tetris in
        let existing = try Hashtbl.find by_tetris index with Not_found -> [] in
        Hashtbl.replace by_tetris index (vbn :: existing)
      end)
    vbns;
  let entries = Hashtbl.fold (fun index vbns acc -> (index, vbns) :: acc) by_tetris [] in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) entries in
  let build (index, tetris_vbns) =
    let stripes = List.sort_uniq Int.compare (List.map (Geometry.stripe_of_vbn geom) tetris_vbns) in
    { index; vbns = List.rev tetris_vbns; stripes_touched = List.length stripes }
  in
  List.map build sorted

let summarize geom ~vbns =
  let tetrises = group geom ~vbns in
  let per_device = Array.make (Geometry.data_devices geom) 0 in
  let blocks = ref 0 in
  List.iter
    (fun t ->
      List.iter
        (fun vbn ->
          let loc = Geometry.location_of_vbn geom vbn in
          per_device.(loc.Geometry.device) <- per_device.(loc.Geometry.device) + 1;
          incr blocks)
        t.vbns)
    tetrises;
  let n = List.length tetrises in
  {
    tetrises = n;
    blocks = !blocks;
    mean_blocks_per_tetris = (if n = 0 then 0.0 else float_of_int !blocks /. float_of_int n);
    per_device_blocks = per_device;
  }

let pp_summary fmt s =
  Format.fprintf fmt "tetrises=%d blocks=%d mean=%.1f" s.tetrises s.blocks
    s.mean_blocks_per_tetris
