type event =
  | Cp_begin of { cp : int }
  | Cp_end of {
      cp : int;
      ops : int;
      blocks : int;
      freed : int;
      pages : int;
      device_us : float;
    }
  | Aa_pick of { cp : int; space : int; aa : int; score : int }
  | Cache_replenish of { cp : int; space : int; listed : int }
  | Tetris_write of {
      cp : int;
      space : int;
      tetrises : int;
      full_stripes : int;
      partial_stripes : int;
    }
  | Cleaner_pass of { cp : int; aas : int; relocated : int; reclaimed : int }
  | Free_commit of { cp : int; space : int; freed : int; pages : int }
  | Fault_inject of {
      cp : int;
      space : int;
      transients : int;
      torn : int;
      failed : int;
      spikes : int;
    }
  | Io_retry of { cp : int; space : int; retries : int; ok : int }
  | Slo_violation of {
      cp : int;
      slo : string;
      burn_fast : float;
      burn_slow : float;
      violations : int;
    }

type t = {
  ring : event array;
  mutable enabled : bool;
  mutable next : int; (* ring slot the next event lands in *)
  mutable emitted : int;
  mutable cp : int;
  lock : Mutex.t; (* guards next/emitted/ring when enabled emitters race *)
}

let create ?(capacity = 4096) ?(enabled = false) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    ring = Array.make capacity (Cp_begin { cp = 0 });
    enabled;
    next = 0;
    emitted = 0;
    cp = 0;
    lock = Mutex.create ();
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let capacity t = Array.length t.ring
let emitted t = t.emitted
let length t = min t.emitted (Array.length t.ring)
let current_cp t = t.cp

(* Emitters may run inside pool domains (e.g. tetris/fault traces from a
   parallel device flush), so slot claims are serialised.  The disabled
   path never reaches here and stays lock- and allocation-free. *)
let push t ev =
  Mutex.lock t.lock;
  t.ring.(t.next) <- ev;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.emitted <- t.emitted + 1;
  Mutex.unlock t.lock

let to_list t =
  let n = length t in
  let cap = Array.length t.ring in
  let oldest = if t.emitted <= cap then 0 else t.next in
  List.init n (fun i -> t.ring.((oldest + i) mod cap))

let clear t =
  t.next <- 0;
  t.emitted <- 0;
  t.cp <- 0

let cp_begin t =
  t.cp <- t.cp + 1;
  if t.enabled then push t (Cp_begin { cp = t.cp })

let cp_end t ~ops ~blocks ~freed ~pages ~device_us =
  if t.enabled then push t (Cp_end { cp = t.cp; ops; blocks; freed; pages; device_us })

let aa_pick t ~space ~aa ~score =
  if t.enabled then push t (Aa_pick { cp = t.cp; space; aa; score })

let cache_replenish t ~space ~listed =
  if t.enabled then push t (Cache_replenish { cp = t.cp; space; listed })

let tetris_write t ~space ~tetrises ~full_stripes ~partial_stripes =
  if t.enabled then
    push t (Tetris_write { cp = t.cp; space; tetrises; full_stripes; partial_stripes })

let cleaner_pass t ~aas ~relocated ~reclaimed =
  if t.enabled then push t (Cleaner_pass { cp = t.cp; aas; relocated; reclaimed })

let free_commit t ~space ~freed ~pages =
  if t.enabled then push t (Free_commit { cp = t.cp; space; freed; pages })

let fault_inject t ~space ~transients ~torn ~failed ~spikes =
  if t.enabled then
    push t (Fault_inject { cp = t.cp; space; transients; torn; failed; spikes })

let io_retry t ~space ~retries ~ok =
  if t.enabled then push t (Io_retry { cp = t.cp; space; retries; ok })

let slo_violation t ~slo ~burn_fast ~burn_slow ~violations =
  if t.enabled then
    push t (Slo_violation { cp = t.cp; slo; burn_fast; burn_slow; violations })

let event_name = function
  | Cp_begin _ -> "cp_begin"
  | Cp_end _ -> "cp_end"
  | Aa_pick _ -> "aa_pick"
  | Cache_replenish _ -> "cache_replenish"
  | Tetris_write _ -> "tetris_write"
  | Cleaner_pass _ -> "cleaner_pass"
  | Free_commit _ -> "free_commit"
  | Fault_inject _ -> "fault_inject"
  | Io_retry _ -> "io_retry"
  | Slo_violation _ -> "slo_violation"

let event_cp = function
  | Cp_begin { cp } -> cp
  | Cp_end { cp; _ } -> cp
  | Aa_pick { cp; _ } -> cp
  | Cache_replenish { cp; _ } -> cp
  | Tetris_write { cp; _ } -> cp
  | Cleaner_pass { cp; _ } -> cp
  | Free_commit { cp; _ } -> cp
  | Fault_inject { cp; _ } -> cp
  | Io_retry { cp; _ } -> cp
  | Slo_violation { cp; _ } -> cp
