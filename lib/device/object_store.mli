(** Object-store backend model.

    Fabric Pool aggregates place cold data in an on-premises or cloud object
    store with native redundancy (§2.1); WAFL's only layout goal there is
    writing consecutive VBNs so blocks aggregate into few objects.  We model
    a store that accepts PUTs of [object_blocks]-sized objects, so the cost
    of a flush is driven by how many distinct objects its blocks span. *)

type t

type stats = { puts : int; blocks_written : int }

val create : ?profile:Profile.object_store -> unit -> t

val profile : t -> Profile.object_store

val set_fault : t -> Wafl_fault.Fault.device option -> unit
(** Attach (or detach) a fault-injection handle; {!write_batch} consults
    it per block and drops failed blocks from the PUT accounting. *)

val fault : t -> Wafl_fault.Fault.device option

val write_batch : t -> int list -> unit
(** Write a batch of VBNs; each distinct [object_blocks]-aligned range
    touched costs one PUT (duplicates coalesced). *)

val put_count_for : t -> int list -> int
(** Objects a batch would touch, without recording it. *)

val cost_us : t -> stats_delta:stats -> float

val stats : t -> stats
val diff_stats : after:stats -> before:stats -> stats
val reset_stats : t -> unit
