(** JSON and CSV renderings of a telemetry instance.  Self-contained (no
    external JSON dependency); output is deterministic: metrics in
    registration order, snapshots and events oldest first. *)

val metrics_json : Telemetry.t -> string
(** One JSON object:
    {v
    { "counters":   { name: int, ... },
      "gauges":     { name: float, ... },
      "histograms": { name: { "observations": int, "sum": int,
                              "buckets": [ { "ge": int, "count": int } ] } },
      "snapshots":  [ { "seq": int, "label": str, <field>: <value>, ... } ],
      "trace":      { "emitted": int, "retained": int } }
    v} *)

val metrics_csv : Telemetry.t -> string
(** [kind,name,value] rows; histograms flatten to one row per populated
    bucket plus [observations]/[sum] rows. *)

val trace_csv : Telemetry.t -> string
(** Retained events, one row each, with a fixed header.  Columns that do
    not apply to an event kind are left empty. *)

val trace_json : Telemetry.t -> string
(** JSON array of event objects ([{"event": ..., "cp": ..., ...}]). *)
