(** Histogram-based partial sort (HBPS) — the RAID-agnostic AA cache
    (§3.3.2, Figure 5).

    Tracks millions of AA scores in bounded memory, the analog of two 4KiB
    pages:

    - a {e histogram page}: for every 1k-wide score range ("bin"), the exact
      count of AAs whose score falls in that range — maintained for {e all}
      AAs, always accurate;
    - a {e list page}: the AA ids from the best bins only, at most
      [capacity] (default 1000) of them, grouped by bin in descending bin
      order and {e unsorted within a bin} (sorting within a range was found
      to add nothing — the "partial" in the name).

    The write allocator takes the first list entry, which is guaranteed to
    be within one bin width of the true maximum score whenever the list is
    in sync with the histogram ([bin_width / max_score] = 1k/32k = 3.125%
    error).  Updates are constant-ish time: a histogram move plus, when the
    AA is listed and changes bin, a packed-array move that relocates one AA
    per bin between the two positions — the paper's "only one AA needs to
    be moved down from each bin".

    When consumption outpaces frees the list can run dry or stale; the
    {!replenish} scan (the paper's background bitmap-metafile walk) rebuilds
    it from current scores.  Call it at a CP boundary, after score updates
    are applied. *)

type t

val create :
  ?bin_width:int -> ?capacity:int -> max_score:int -> scores:int array -> unit -> t
(** Build from the initial score of every AA (AA ids are the array
    indices).  [max_score] is a full AA's capacity (32k by default sizing);
    [bin_width] defaults to [max_score / 32] (the paper's 1k-wide bins over
    a 32k score space), [capacity] to 1000. *)

val n_aas : t -> int
val capacity : t -> int
val bin_width : t -> int
val max_score : t -> int
val count : t -> int
(** Entries currently in the list page. *)

val score : t -> aa:int -> int
(** Current tracked score of any AA (listed or not). *)

val mem_list : t -> aa:int -> bool

val error_margin : t -> float
(** [bin_width / max_score]; 0.03125 with default parameters. *)

val pick_best : t -> (int * int) option
(** First list entry: an AA from the highest populated range in the list,
    with its score.  Does not modify the cache. *)

val top_score : t -> int
(** Best listed score, or 0 when the list page is empty; never boxes an
    option (allocation-free). *)

val take_best : t -> (int * int) option
(** Like {!pick_best} but removes the entry from the list page, so the next
    call yields a different AA.  The histogram is untouched — the AA's real
    score changes only when the CP's batched update arrives. *)

val take_best_filtered : t -> keep:(int -> bool) -> (int * int) option
(** {!take_best} restricted to AAs satisfying [keep] — the claim-aware
    pick of the concurrent allocation front-end.  Scans the list page in
    stored order (highest bin first), removes and returns the first kept
    entry; all other entries are untouched.  The one-bin-width error
    bound of {!take_best} still holds relative to the kept AAs. *)

val update : t -> aa:int -> score:int -> unit
(** Set an AA's score (CP-boundary batched path).  Adjusts the histogram;
    moves the AA between bins in the list, inserts it when it newly
    qualifies, or leaves it out when it does not. *)

val apply_updates : t -> (int * int) list -> unit

val histogram_count : t -> bin:int -> int
val bins : t -> int
val highest_populated_bin : t -> int option
(** Per the histogram (all AAs). *)

val highest_listed_bin : t -> int option
val lowest_listed_bin : t -> int option

val is_stale : t -> bool
(** The histogram knows of a better-populated bin than any bin present in
    the list — the list no longer holds the best AAs. *)

val needs_replenish : ?low_water:int -> t -> bool
(** Stale, or fewer than [low_water] (default capacity/4) entries. *)

val replenish : ?excluded:(int -> bool) -> t -> unit
(** Rebuild the list page from current scores, best bins first (the
    background metafile scan).  [excluded] filters AAs that must not be
    offered (e.g. checked out by the allocator). *)

val to_list : t -> (int * int) list
(** List-page entries in stored order, with scores. *)

val check_invariant : t -> bool
(** Structural invariants: segment/bin agreement, position index, histogram
    totals. *)

val check_complete : t -> bool
(** Stronger, holds at CP boundaries after replenish: every bin above the
    lowest listed bin has all its AAs listed. *)
