type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    let init = List.map String.length t.headers in
    let max_row acc = function
      | Rule -> acc
      | Cells cells -> List.map2 (fun w c -> max w (String.length c)) acc cells
    in
    List.fold_left max_row init rows
  in
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cells =
    let parts =
      List.map2 (fun (a, w) c -> pad a w c)
        (List.combine t.aligns widths) cells
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    let parts = List.map (fun w -> String.make w '-') widths in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)
