lib/aa/score.mli: Topology Wafl_bitmap
