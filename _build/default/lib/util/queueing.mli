(** Closed-loop and open-loop response-time helpers.

    The paper's latency-vs-throughput plots (Figs. 6, 8, 9) come from
    closed-loop Fibre Channel clients ramping offered load against a storage
    server.  We reproduce the curve shape with standard queueing formulas
    applied to the per-operation service demand produced by the simulator's
    cost model: latency is flat near the service time at low utilization and
    grows sharply as offered load approaches the service capacity. *)

val mg1_response_time :
  service_time:float -> cv2:float -> arrival_rate:float -> float option
(** Pollaczek-Khinchine mean response time for an M/G/1 queue.
    [service_time] is the mean service time (seconds/op), [cv2] the squared
    coefficient of variation of service times, [arrival_rate] in ops/sec.
    [None] when the queue is unstable (utilization >= 1). *)

val achieved_throughput :
  service_time:float -> offered_load:float -> float
(** Throughput actually delivered under offered load against a server with
    the given mean service time: [min offered_load (0.98 / service_time)].
    The 2% headroom models scheduling overhead at saturation. *)

val closed_loop_point :
  service_time:float -> cv2:float -> offered_load:float ->
  throughput:float ref -> latency:float ref -> unit
(** One point of a latency-throughput sweep.  At stable loads this is the
    M/G/1 response time; past saturation, throughput caps at capacity and
    latency grows linearly with the excess offered load (clients queue up),
    matching the hockey-stick shape of the paper's figures. *)

val sweep :
  service_time:float -> cv2:float -> loads:float list ->
  (float * float) list
(** [(throughput, latency)] pairs for each offered load, via
    {!closed_loop_point}. *)
