(** Log-linear HDR-style histogram for latency values.

    Values are non-negative integers (nanoseconds by convention).  Buckets
    are exact for values below 64 and log-linear above: each power-of-two
    decade is split into 32 linear sub-buckets, bounding the relative
    quantile error at 1/32 (~3.1%).  Recording is allocation-free and
    lock-free on a single histogram; concurrent recording into the *same*
    histogram is not supported — shard per domain and [merge_into] instead
    (see {!Latency}). *)

type t

val n_buckets : int
(** Number of buckets; fixed at creation for all histograms so any two can
    be merged. *)

val create : unit -> t

val record : t -> int -> unit
(** [record t v] adds one sample of value [v] (clamped to [0] if negative).
    Zero minor-heap allocation. *)

val record_n : t -> int -> int -> unit
(** [record_n t v k] adds [k] samples of value [v]. *)

val count : t -> int
(** Total samples recorded. *)

val sum : t -> int
(** Sum of all recorded values (exact, not bucket-quantized). *)

val max_value : t -> int
(** Largest value recorded; [0] when empty. *)

val min_value : t -> int
(** Smallest value recorded; [0] when empty. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: an upper bound for the value at rank
    [ceil (q * count)], i.e. the upper bound of the bucket holding that
    rank, clamped to [max_value t].  [0] when empty.  The estimate is
    within one bucket width of the exact order statistic (relative error
    <= 1/32 for values >= 64). *)

val mean : t -> float
(** Exact mean ([sum/count]); [0.] when empty. *)

val merge_into : dst:t -> t -> unit
(** Add every bucket count (and the exact sum/count/min/max) of the source
    into [dst].  The source is unchanged. *)

val clear : t -> unit

val index_of : int -> int
(** Bucket index for a value (exposed for tests). *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] inclusive value range covered by a bucket index. *)

val iter_nonempty : t -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Iterate non-empty buckets in increasing value order. *)
