lib/bitmap/activemap.mli: Metafile
