(** Figure 9 (§4.3): sequential writes on SMR drives with the AA size
    aligned to AZCS checksum regions versus the historical HDD sizing.

    Rig: an unaged SMR RAID group receiving sequential writes.  With the
    HDD AA size (4096 stripes — not a multiple of the 63 data blocks that
    share a checksum block), every AA switch splits an AZCS region and
    forces a random checksum-block write; the AZCS-aligned size keeps every
    checksum write sequential.  Paper: +7% drive throughput, -11%
    latency. *)

type sizing = Hdd_aa | Azcs_aligned_aa

val sizing_name : sizing -> string

type result = {
  sizing : sizing;
  aa_stripes : int;
  azcs_aligned : bool;
  curve : Wafl_sim.Load.curve;
  blocks_written : int;
  device_time_s : float;
  drive_throughput_blocks_per_s : float;
  random_checksum_writes : int;
  sequential_fraction : float;  (** fraction of device writes that were
                                    sequential appends *)
}

val run_sizing : Common.scale -> sizing -> result
val run : ?scale:Common.scale -> unit -> result list
val print : result list -> unit
