
type stats = {
  host_pages_written : int;
  device_pages_written : int;
  relocated_pages : int;
  erases : int;
  trimmed_pages : int;
}

type t = {
  profile : Profile.ssd;
  open_capacity : int;
  logical_blocks : int;
  live : Bytes.t;  (* 1 byte per logical page *)
  mutable live_count : int;
  appended : (int, int) Hashtbl.t;  (* open eb -> pages appended since open *)
  mutable open_order : int list;    (* LRU, most recent first *)
  mutable host_pages_written : int;
  mutable device_pages_written : int;
  mutable relocated_pages : int;
  mutable erases : int;
  mutable trimmed_pages : int;
  mutable fault : Wafl_fault.Fault.device option;
}

let create ?(profile = Profile.default_ssd) ?(open_blocks = 8) ~logical_blocks () =
  assert (logical_blocks > 0 && profile.Profile.erase_block_blocks > 0 && open_blocks > 0);
  {
    profile;
    open_capacity = open_blocks;
    logical_blocks;
    live = Bytes.make logical_blocks '\000';
    live_count = 0;
    appended = Hashtbl.create 16;
    open_order = [];
    host_pages_written = 0;
    device_pages_written = 0;
    relocated_pages = 0;
    erases = 0;
    trimmed_pages = 0;
    fault = None;
  }

let logical_blocks t = t.logical_blocks
let profile t = t.profile
let set_fault t f = t.fault <- f
let fault t = t.fault

let is_live t p = Bytes.unsafe_get t.live p <> '\000'

let set_live t p v =
  let was = is_live t p in
  if v && not was then begin
    Bytes.unsafe_set t.live p '\001';
    t.live_count <- t.live_count + 1
  end
  else if (not v) && was then begin
    Bytes.unsafe_set t.live p '\000';
    t.live_count <- t.live_count - 1
  end

let check t p = if p < 0 || p >= t.logical_blocks then invalid_arg "Ftl: page out of bounds"

let live_pages_in t ~start ~len =
  if start < 0 || len < 0 || start + len > t.logical_blocks then
    invalid_arg "Ftl.live_pages_in: range out of bounds";
  let n = ref 0 in
  for p = start to start + len - 1 do
    if is_live t p then incr n
  done;
  !n

let is_open t ~eb = Hashtbl.mem t.appended eb

let close_eb t eb =
  Hashtbl.remove t.appended eb;
  t.open_order <- List.filter (fun e -> e <> eb) t.open_order

let touch_lru t eb = t.open_order <- eb :: List.filter (fun e -> e <> eb) t.open_order

(* Open an erase block for a batch that writes [in_batch]: relocate its
   live pages the batch does not overwrite (OP-absorbed) and erase it. *)
let open_eb t eb ~in_batch =
  if Hashtbl.length t.appended >= t.open_capacity then begin
    match List.rev t.open_order with
    | oldest :: _ -> close_eb t oldest
    | [] -> ()
  end;
  let ebs = t.profile.Profile.erase_block_blocks in
  let eb_start = eb * ebs in
  let eb_len = min ebs (t.logical_blocks - eb_start) in
  let live_outside = ref 0 in
  for p = eb_start to eb_start + eb_len - 1 do
    if is_live t p && not (Hashtbl.mem in_batch p) then incr live_outside
  done;
  let absorb = t.profile.Profile.overprovision /. (1.0 +. t.profile.Profile.overprovision) in
  let relocated = int_of_float (Float.round (float_of_int !live_outside *. (1.0 -. absorb))) in
  t.relocated_pages <- t.relocated_pages + relocated;
  t.device_pages_written <- t.device_pages_written + relocated;
  t.erases <- t.erases + 1;
  Hashtbl.replace t.appended eb 0;
  touch_lru t eb

let write_batch t pages =
  let ebs = t.profile.Profile.erase_block_blocks in
  (* Coalesce duplicates and group by erase block. *)
  let by_eb = Hashtbl.create 64 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun p ->
      check t p;
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.add seen p ();
        let key = p / ebs in
        let existing = try Hashtbl.find by_eb key with Not_found -> [] in
        Hashtbl.replace by_eb key (p :: existing)
      end)
    pages;
  Hashtbl.iter
    (fun eb batch ->
      (* Fault plane: dropped pages never reach the flash; torn pages are
         programmed (cost is paid) but their content is garbage, so they
         do not become live. *)
      let batch, torn =
        match t.fault with
        | None -> (batch, [])
        | Some dev ->
          let kept = ref [] and torn = ref [] in
          List.iter
            (fun p ->
              match Wafl_fault.Fault.write dev ~block:p with
              | Wafl_fault.Fault.Written -> kept := p :: !kept
              | Wafl_fault.Fault.Written_torn ->
                kept := p :: !kept;
                torn := p :: !torn
              | Wafl_fault.Fault.Failed -> ())
            batch;
          (!kept, !torn)
      in
      if batch <> [] then begin
        let in_batch = Hashtbl.create 64 in
        List.iter (fun p -> Hashtbl.replace in_batch p ()) batch;
        if not (is_open t ~eb) then open_eb t eb ~in_batch else touch_lru t eb;
        let written = List.length batch in
        t.host_pages_written <- t.host_pages_written + written;
        t.device_pages_written <- t.device_pages_written + written;
        let appended = (try Hashtbl.find t.appended eb with Not_found -> 0) + written in
        let eb_start = eb * ebs in
        let eb_len = min ebs (t.logical_blocks - eb_start) in
        if appended >= eb_len then close_eb t eb else Hashtbl.replace t.appended eb appended;
        List.iter (fun p -> set_live t p true) batch;
        List.iter (fun p -> set_live t p false) torn
      end)
    by_eb;
  Wafl_telemetry.Telemetry.add "device.ssd.host_pages_written" (Hashtbl.length seen)

let trim t p =
  check t p;
  if is_live t p then begin
    set_live t p false;
    t.trimmed_pages <- t.trimmed_pages + 1
  end

let trim_batch t pages = List.iter (trim t) pages

let stats t =
  {
    host_pages_written = t.host_pages_written;
    device_pages_written = t.device_pages_written;
    relocated_pages = t.relocated_pages;
    erases = t.erases;
    trimmed_pages = t.trimmed_pages;
  }

let write_amplification t =
  if t.host_pages_written = 0 then 1.0
  else float_of_int t.device_pages_written /. float_of_int t.host_pages_written

let service_time_us t ~(stats_delta : stats) =
  let p = t.profile in
  (float_of_int stats_delta.device_pages_written *. p.Profile.program_us)
  +. (float_of_int stats_delta.relocated_pages *. p.Profile.read_us)
  +. (float_of_int stats_delta.erases *. p.Profile.erase_us)

let diff_stats ~(after : stats) ~(before : stats) =
  {
    host_pages_written = after.host_pages_written - before.host_pages_written;
    device_pages_written = after.device_pages_written - before.device_pages_written;
    relocated_pages = after.relocated_pages - before.relocated_pages;
    erases = after.erases - before.erases;
    trimmed_pages = after.trimmed_pages - before.trimmed_pages;
  }

let reset_stats t =
  t.host_pages_written <- 0;
  t.device_pages_written <- 0;
  t.relocated_pages <- 0;
  t.erases <- 0;
  t.trimmed_pages <- 0
