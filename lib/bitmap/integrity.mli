(** Persisted-state integrity: CRC-32 sidecars over the file-mapped
    pagestores.

    With [--backend mmap:DIR] the mapped bytes are the durable free-space
    state, and mmap gives no acknowledgement to check them against.  This
    plane seals every {e tracked} store (the bitmap-metafile map stores,
    registered by [Metafile.create]) page by page: a CRC-32 and a
    CP-generation stamp per 4 KiB page, plus the previous generation's
    CRC, persisted next to [ps<seq>.bin] as [ps<seq>.crc].  A
    [superblock.bin] in the same directory records the committed
    generation.

    The plane is passive unless a map directory is installed
    ({!Pagestore.set_mmap_dir}); every operation below is a no-op on
    heap/anonymous stores, so non-mmap configurations pay nothing.  All
    state is keyed to {!Pagestore.mmap_epoch}: a remount (new epoch)
    discards in-memory seals and reloads sidecars from disk, exactly like
    a reboot.

    Fault closure: when the installed default {!Wafl_fault.Fault} spec
    carries [rot=STORE:PAGE\@GEN] / [lost=STORE:PAGE\@GEN] entries
    ([STORE] is the tracked-store ordinal: 0 = the first tracked store,
    normally the aggregate activemap), {!cp_commit} injects the damage
    into the persisted bytes at exactly that committed generation —
    bit-rot flips bits (classifies {e torn}), a lost write reverts the
    page to the previous commit's image (classifies {e stale}).  An arm
    whose generation is already committed at epoch start never fires, so
    replay CPs after a remount do not re-inject. *)

type page_state =
  | Intact  (** CRC matches, generation <= committed *)
  | Ahead
      (** CRC matches but the generation is past the superblock: the CP
          crashed between sidecar persist and superblock write.
          Verification reseals these into the committed generation. *)
  | Torn  (** matches neither generation — bit-rot or a partial write *)
  | Stale  (** matches the {e previous} generation — a lost write *)

val page_size : int
(** Integrity page granularity in store bytes (4096: one modeled block). *)

val set_enabled : bool -> unit
(** Master switch (default on).  Off: every operation is a no-op even
    under an mmap directory — how the bench measures unsealed CP cost. *)

val enabled : unit -> bool

val committed_generation : unit -> int
(** The committed CP generation of the current epoch (loaded from
    [superblock.bin], advanced by {!cp_commit}); 0 when inactive. *)

val tracked_count : unit -> int

val track : Pagestore.t -> unit
(** Register a store for sealing/verification.  No-op unless the store is
    file-mapped under the current directory epoch.  Loads the store's
    sidecar when a valid one exists (remount); otherwise seals the
    current contents at the committed generation and remembers that the
    store was unverifiable ({!store_report.sidecar_loaded} = false). *)

val tracked : Pagestore.t -> bool

val n_pages : Pagestore.t -> int option
(** Number of integrity pages of a tracked store ([None] untracked). *)

val seal_range : Pagestore.t -> pos:int -> len:int -> unit
(** Mark the integrity pages overlapping byte range [\[pos, pos+len)] as
    sealed this CP cycle.  The actual seal is deferred to {!cp_commit},
    which — once per marked page, however many flushes re-dirtied it —
    rotates the previous CRC, recomputes the CRC over the bytes being
    committed, and stamps generation [committed + 1].  Until then the
    in-memory seal state still describes the last committed image (which
    is what {!verify_page} checks against).  Called by [Metafile.flush]
    for each dirty metafile page. *)

val reseal_page : Pagestore.t -> int -> unit
(** Re-stamp one page as committed truth — the heal step after a repair
    rewrote it from container authority. *)

val reseal_all : Pagestore.t -> unit
(** {!reseal_page} over the whole store — after [Metafile.load] blits a
    restored image over it. *)

val verify_page : Pagestore.t -> int -> page_state option
(** Classify one page against its sidecar ([None]: untracked store or
    page out of range).  Pure: reseals nothing. *)

type store_report = {
  ord : int;  (** tracked-store ordinal (the fault-spec [STORE]) *)
  seq : int;  (** pagestore file sequence *)
  path : string;
  store : Pagestore.t;
  pages : int;
  torn : int list;  (** torn page indices, ascending *)
  stale : int list;  (** stale page indices, ascending *)
  ahead : int;  (** pages accepted from a pre-superblock crash *)
  sidecar_loaded : bool;
      (** false: no valid sidecar existed at track time, so the store was
          sealed blind and cannot vouch for pre-existing bytes *)
}

val verify_store : Pagestore.t -> store_report option
(** Classify every page of a tracked store.  Ahead pages are resealed
    into the committed generation (and counted); torn/stale pages are
    only reported — the caller quarantines and heals them.  Increments
    [integrity.unverified_stores] for a store without a loaded sidecar. *)

val verify_all : unit -> store_report list
(** {!verify_store} over every tracked store, in ordinal order. *)

val cp_commit : unit -> unit
(** End-of-CP hook: seal every page marked by {!seal_range} since the
    last commit (rotate prev, CRC the committed bytes, stamp the next
    generation), persist dirty sidecars ([integrity.sidecar_writes]),
    advance and persist the superblock, then fire any armed fault
    injections ([integrity.rot_injected] / [integrity.lost_injected]).
    Does nothing when no store was sealed since the last commit.  Crash
    points [integrity.persist] (before the sidecar writes) and
    [integrity.superblock] (between sidecars and superblock) let the
    crash matrix kill a CP inside the seal/persist window. *)
