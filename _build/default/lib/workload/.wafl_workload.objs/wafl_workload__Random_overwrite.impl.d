lib/workload/random_overwrite.ml: Flexvol Fs Rng Wafl_core Wafl_util
