lib/raid/stripe.mli: Format Geometry
