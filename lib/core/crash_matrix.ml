open Wafl_util
open Wafl_bitmap

type violation = { point : string; index : int; what : string }

type result = {
  points : string list;
  runs : int;
  violations : violation list;
}

let pp_violation fmt v =
  Format.fprintf fmt "point %d (%s): %s" v.index v.point v.what

let default_config ~seed =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Config.default_vol ~name:"vol0" ~blocks:65536 ]
    ~seed ()

(* Deterministic client workload.  Ops land in [acked] as they are staged:
   staging models the NVRAM ack, so everything in the table at crash time
   is an operation the client believes durable. *)
let stage_ops fs rng ~n ~acked =
  let vol = (Fs.vols fs).(0) in
  for _ = 1 to n do
    let file = Rng.int rng 8 in
    let offset = Rng.int rng 512 in
    Fs.stage_write fs ~vol ~file ~offset;
    Hashtbl.replace acked (file, offset) ()
  done

let run_workload fs ~seed ~warmup_cps ~ops_per_cp ~with_cleaner ~acked =
  let rng = Rng.create ~seed in
  for _ = 1 to warmup_cps do
    stage_ops fs rng ~n:ops_per_cp ~acked;
    ignore (Fs.run_cp fs)
  done;
  stage_ops fs rng ~n:ops_per_cp ~acked;
  if with_cleaner then ignore (Cleaner.clean_fs fs ~aas_per_range:1);
  ignore (Fs.run_cp fs)

(* [check_acked:false] for the pre-replay stage: ops still sitting in the
   NVRAM log are not readable until the replay CP commits them. *)
let check_mounted fs ~acked ~check_acked ~point ~index ~stage acc =
  let acc = ref acc in
  let flag what = acc := { point; index; what } :: !acc in
  (match Iron.check fs with
  | [] -> ()
  | findings ->
    flag
      (Format.asprintf "%s: %d iron finding(s), first: %a" stage (List.length findings)
         Iron.pp_finding (List.hd findings)));
  let mf = Aggregate.metafile (Fs.aggregate fs) in
  let refs = Hashtbl.create 4096 in
  Array.iter
    (fun vol ->
      for vvbn = 0 to Flexvol.blocks vol - 1 do
        match Flexvol.pvbn_of_vvbn vol vvbn with
        | None -> ()
        | Some pvbn ->
          if Hashtbl.mem refs pvbn then
            flag (Printf.sprintf "%s: pvbn %d referenced twice" stage pvbn)
          else Hashtbl.replace refs pvbn ()
      done)
    (Fs.vols fs);
  if check_acked then begin
    let vol = (Fs.vols fs).(0) in
    Hashtbl.iter
      (fun (file, offset) () ->
        match Flexvol.read_file vol ~file ~offset with
        | None ->
          flag (Printf.sprintf "%s: acked op (file %d, off %d) lost" stage file offset)
        | Some vvbn -> (
          match Flexvol.pvbn_of_vvbn vol vvbn with
          | None ->
            flag
              (Printf.sprintf "%s: acked op (file %d, off %d) maps to unmapped vvbn %d" stage
                 file offset vvbn)
          | Some pvbn ->
            if not (Metafile.is_allocated mf pvbn) then
              flag
                (Printf.sprintf "%s: acked op (file %d, off %d) points at free pvbn %d" stage
                   file offset pvbn)))
      acked
  end;
  !acc

(* Per-pass mmap isolation.  Every workload execution (the recording pass
   and each armed run) gets its own wiped subdirectory of the installed
   map directory, so the persisted state a run leaves behind — including
   integrity sidecars and injected corruption — never leaks into the
   next run's files, and the committed generation restarts from zero so
   generation-targeted fault injections fire identically in every run. *)
let wipe_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o755

let with_pass_dir k f =
  match Pagestore.mmap_dir_path () with
  | None -> f None
  | Some dir ->
    let sub = Filename.concat dir (Printf.sprintf "run%d" k) in
    wipe_dir sub;
    Pagestore.with_mmap_dir sub (fun () -> f (Some sub))

let run ?config ?(with_cleaner = true) ?(background_rebuild = true) ?(lazy_rebuild = false)
    ?(verify_mount = false) ~seed ~warmup_cps ~ops_per_cp () =
  let config = match config with Some c -> c | None -> default_config ~seed in
  (* Pass 1: enumerate the dynamic crash-point sequence the workload
     actually reaches — programmatic, never a hand-maintained list. *)
  Wafl_fault.Crash.record ();
  let points =
    Fun.protect ~finally:Wafl_fault.Crash.disarm (fun () ->
        with_pass_dir 0 (fun _ ->
            let acked = Hashtbl.create 1024 in
            run_workload (Fs.create config) ~seed ~warmup_cps ~ops_per_cp ~with_cleaner ~acked;
            Wafl_fault.Crash.recorded ()))
  in
  (* Pass 2..n+1: kill the system at each point in turn, remount from the
     crash image, repair with the container maps as authority, and verify
     the recovery invariants. *)
  let violations = ref [] in
  List.iteri
    (fun index point ->
      with_pass_dir (index + 1) (fun run_dir ->
          let acked = Hashtbl.create 1024 in
          let fs = Fs.create config in
          let crashed =
            Fun.protect ~finally:Wafl_fault.Crash.disarm (fun () ->
                Wafl_fault.Crash.arm ~at:index;
                try
                  run_workload fs ~seed ~warmup_cps ~ops_per_cp ~with_cleaner ~acked;
                  false
                with Wafl_fault.Crash.Crashed _ -> true)
          in
          if not crashed then
            violations :=
              { point; index; what = "armed point never reached (workload nondeterminism?)" }
              :: !violations
          else begin
            let image = Mount.snapshot fs in
            let remount_and_check () =
              let mounted, _timing =
                Mount.mount ~background_rebuild ~lazy_rebuild ~verify:verify_mount image
                  ~with_topaa:true
              in
              let _findings, _repaired =
                Iron.repair ~authority:Iron.Container_authority mounted
              in
              violations :=
                check_mounted mounted ~acked ~check_acked:false ~point ~index
                  ~stage:"post-repair" !violations;
              ignore (Fs.run_cp mounted);
              violations :=
                check_mounted mounted ~acked ~check_acked:true ~point ~index
                  ~stage:"post-replay-cp" !violations
            in
            match run_dir with
            | None -> remount_and_check ()
            | Some sub ->
              (* Remount in a fresh epoch of the same per-run directory:
                 the store sequence restarts at 0 so [Fs.create] maps the
                 same files the crashed process persisted, and the
                 integrity plane reloads sidecars and superblock from
                 disk — in-memory seals that never made it out die with
                 the crash, exactly like a reboot. *)
              Pagestore.with_mmap_dir sub remount_and_check
          end))
    points;
  { points; runs = List.length points + 1; violations = List.rev !violations }
