open Wafl_core

type point = { x : int; with_topaa_us : float; without_topaa_us : float }

type result = {
  sweep_a : point list;
  sweep_b : point list;
  vols_a : int;
  vol_blocks_b : int;
}

let params scale =
  match (scale : Common.scale) with
  | Common.Quick ->
    (* (vols for sweep A, sizes for A, fixed size for B, counts for B) *)
    (8, [ 65_536; 131_072; 262_144; 524_288 ], 131_072, [ 2; 4; 8; 16 ])
  | Common.Full -> (50, [ 131_072; 524_288; 2_097_152; 8_388_608 ], 524_288, [ 5; 10; 25; 50 ])

let hdd_rg scale = Common.hdd_raid_group scale

(* Build a system with [n] volumes of [blocks] each, lightly used so the
   TopAA content is non-trivial, then measure both mount paths. *)
let measure scale ~n_vols ~vol_blocks =
  let rg = hdd_rg scale in
  let vols =
    List.init n_vols (fun i ->
        {
          Config.name = Printf.sprintf "vol%d" i;
          blocks = vol_blocks;
          aa_blocks = Some 4096;
          policy = Config.Best_aa;
        })
  in
  let config = Config.make ~raid_groups:[ rg ] ~vols ~seed:(10007 + n_vols) () in
  let fs = Fs.create config in
  (* put a little data in each volume so bitmaps are non-empty *)
  List.iteri
    (fun i _ ->
      let vol = Fs.vol fs (Printf.sprintf "vol%d" i) in
      for offset = 0 to 255 do
        Fs.stage_write fs ~vol ~file:1 ~offset
      done)
    vols;
  ignore (Fs.run_cp fs);
  let image = Mount.snapshot fs in
  let _, with_topaa = Mount.mount ~background_rebuild:false image ~with_topaa:true in
  let _, without = Mount.mount ~background_rebuild:false image ~with_topaa:false in
  (with_topaa.Mount.ready_us, without.Mount.ready_us)

let run ?(scale = Common.Quick) () =
  let vols_a, sizes_a, vol_blocks_b, counts_b = params scale in
  let sweep_a =
    List.map
      (fun size ->
        let w, wo = measure scale ~n_vols:vols_a ~vol_blocks:size in
        { x = size; with_topaa_us = w; without_topaa_us = wo })
      sizes_a
  in
  let sweep_b =
    List.map
      (fun count ->
        let w, wo = measure scale ~n_vols:count ~vol_blocks:vol_blocks_b in
        { x = count; with_topaa_us = w; without_topaa_us = wo })
      counts_b
  in
  { sweep_a; sweep_b; vols_a; vol_blocks_b }

let print result =
  Common.banner "Figure 10: first-CP readiness after mount, with vs without TopAA metafiles";
  let print_sweep title unit points =
    Printf.printf "\n%s\n" title;
    let tbl =
      Wafl_util.Table.create
        ~columns:
          [ (unit, Wafl_util.Table.Right); ("with TopAA (ms)", Wafl_util.Table.Right);
            ("without (ms)", Wafl_util.Table.Right); ("speedup", Wafl_util.Table.Right) ]
    in
    List.iter
      (fun p ->
        Wafl_util.Table.add_row tbl
          [
            string_of_int p.x;
            Printf.sprintf "%.2f" (p.with_topaa_us /. 1000.0);
            Printf.sprintf "%.2f" (p.without_topaa_us /. 1000.0);
            Printf.sprintf "%.1fx" (p.without_topaa_us /. p.with_topaa_us);
          ])
      points;
    Wafl_util.Table.print tbl
  in
  print_sweep
    (Printf.sprintf "(A) %d volumes, varying volume size" result.vols_a)
    "vol blocks" result.sweep_a;
  print_sweep
    (Printf.sprintf "(B) %d-block volumes, varying count" result.vol_blocks_b)
    "volumes" result.sweep_b;
  let first_a = List.hd result.sweep_a and last_a = List.hd (List.rev result.sweep_a) in
  let first_b = List.hd result.sweep_b and last_b = List.hd (List.rev result.sweep_b) in
  let growth_factor = float_of_int last_a.x /. float_of_int first_a.x in
  Printf.printf "\n";
  Common.paper_vs_measured ~metric:"(A) scan time grows with volume size"
    ~paper:"linear"
    ~measured:
      (Printf.sprintf "%.1fx time for %.0fx size"
         (last_a.without_topaa_us /. first_a.without_topaa_us)
         growth_factor)
    ~ok:(last_a.without_topaa_us > first_a.without_topaa_us *. (growth_factor /. 2.0));
  Common.paper_vs_measured ~metric:"(A) TopAA time independent of size"
    ~paper:"flat"
    ~measured:
      (Printf.sprintf "%.2fms -> %.2fms" (first_a.with_topaa_us /. 1000.0)
         (last_a.with_topaa_us /. 1000.0))
    ~ok:(last_a.with_topaa_us < first_a.with_topaa_us *. 1.5);
  Common.paper_vs_measured ~metric:"(B) TopAA much faster at every count"
    ~paper:"large gap"
    ~measured:
      (Printf.sprintf "%.0fx at %d vols, %.0fx at %d vols"
         (first_b.without_topaa_us /. first_b.with_topaa_us)
         first_b.x
         (last_b.without_topaa_us /. last_b.with_topaa_us)
         last_b.x)
    ~ok:(last_b.without_topaa_us > last_b.with_topaa_us *. 2.0)
