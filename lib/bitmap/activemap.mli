(** Active map with delayed-free batching.

    In a COW file system an overwrite frees the block it replaces, but the
    free must not take effect until the consistency point that commits the
    new image is durable.  WAFL therefore queues frees and applies them in
    batch at the CP boundary (§3.3); the same batching is what lets AA score
    increments be applied once per CP instead of per operation.  This module
    wraps a {!Metafile} with that protocol. *)

type t

type commit_result = {
  freed : int list;       (** VBNs whose bits were cleared by this commit *)
  pages_written : int;    (** metafile pages flushed *)
}

val create : ?page_bits:int -> blocks:int -> unit -> t

val metafile : t -> Metafile.t
(** The underlying map; reads through it see allocations immediately and
    queued frees not yet. *)

val blocks : t -> int

val is_allocated : t -> int -> bool
(** Current on-media state (queued frees still count as allocated). *)

val allocate : t -> int -> unit
(** Mark a VBN allocated immediately.  The VBN must be free and must not
    have a pending free (a freshly freed block is not reusable until the
    freeing CP commits). *)

val allocate_harvested : t -> int -> unit
(** Trusted {!allocate} for the write-allocation hot path: the caller
    guarantees the VBN is free, which (since only allocated VBNs can be
    queued) also rules out a pending free; both checks are skipped. *)

val allocate_harvested_touched : t -> int -> touched:Bytes.t -> unit
(** {!allocate_harvested} that records the dirtied metafile page as a
    nonzero byte in [touched] (length [Metafile.pages (metafile t)])
    instead of updating the shared dirty state, so concurrent domains
    allocating into disjoint bitmap bytes never race; merge afterwards
    with {!Metafile.mark_touched_dirty}. *)

val queue_free : t -> int -> unit
(** Queue a VBN to be freed at the next commit.  It must currently be
    allocated; queuing the same VBN twice is an error. *)

val pending_free_count : t -> int

val has_pending_free : t -> int -> bool

val commit : ?pool:Wafl_par.Par.t -> t -> commit_result
(** Apply all queued frees, flush the metafile, and return the batch.
    With a pool (explicit, or installed via [Wafl_par.Par.install]) and
    enough queued frees, the bit clears are applied in parallel: VBNs
    are bucketed into page-aligned chunks of the block space so domains
    own disjoint bitmap bytes and disjoint pages, and the dirty-page
    sets are merged serially afterwards — the resulting map, pending
    state, freed list and page count are identical to the serial
    apply. *)

val free_count : t -> start:int -> len:int -> int
(** Free VBNs in a range per the on-media state. *)

val usable_free_count : t -> start:int -> len:int -> int
(** Free VBNs the allocator may use right now: on-media free and not
    shadowed by in-flight allocations (equals {!free_count} since
    allocations apply immediately). *)
