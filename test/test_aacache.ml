(* Tests for Wafl_aacache: max_heap, hbps, topaa, cache. *)

open Wafl_aacache
module Pagestore = Wafl_bitmap.Pagestore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Max_heap --- *)

let test_heap_basic () =
  let h = Max_heap.create ~n_aas:10 in
  check_int "empty" 0 (Max_heap.size h);
  Max_heap.insert h ~aa:3 ~score:50;
  Max_heap.insert h ~aa:7 ~score:90;
  Max_heap.insert h ~aa:1 ~score:70;
  check_int "size" 3 (Max_heap.size h);
  Alcotest.(check (option (pair int int))) "best" (Some (7, 90)) (Max_heap.peek_best h);
  check_bool "invariant" true (Max_heap.check_invariant h)

let test_heap_of_scores () =
  let h = Max_heap.of_scores [| 5; 90; 13; 42; 90 |] in
  check_int "size" 5 (Max_heap.size h);
  (match Max_heap.peek_best h with
  | Some (_, s) -> check_int "best score" 90 s
  | None -> Alcotest.fail "empty");
  check_bool "invariant" true (Max_heap.check_invariant h)

let test_heap_extract_order () =
  let h = Max_heap.of_scores [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let rec drain acc = match Max_heap.extract_best h with
    | Some (_, s) -> drain (s :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "descending" [ 9; 6; 5; 4; 3; 2; 1; 1 ] (drain [])

let test_heap_update () =
  let h = Max_heap.of_scores [| 10; 20; 30 |] in
  Max_heap.update h ~aa:0 ~score:100;
  Alcotest.(check (option (pair int int))) "promoted" (Some (0, 100)) (Max_heap.peek_best h);
  Max_heap.update h ~aa:0 ~score:5;
  Alcotest.(check (option (pair int int))) "demoted" (Some (2, 30)) (Max_heap.peek_best h);
  check_bool "invariant" true (Max_heap.check_invariant h)

let test_heap_remove () =
  let h = Max_heap.of_scores [| 10; 20; 30; 40 |] in
  check_int "removed score" 40 (Max_heap.remove h ~aa:3);
  check_bool "gone" false (Max_heap.mem h 3);
  Alcotest.(check (option (pair int int))) "new best" (Some (2, 30)) (Max_heap.peek_best h);
  Alcotest.check_raises "double remove" (Invalid_argument "Max_heap.remove: AA not present")
    (fun () -> ignore (Max_heap.remove h ~aa:3))

let test_heap_reinsert_after_extract () =
  let h = Max_heap.of_scores [| 10; 20 |] in
  (match Max_heap.extract_best h with
  | Some (aa, _) -> Max_heap.insert h ~aa ~score:5
  | None -> Alcotest.fail "empty");
  check_int "size back" 2 (Max_heap.size h);
  Alcotest.(check (option (pair int int))) "other best" (Some (0, 10)) (Max_heap.peek_best h)

let test_heap_apply_updates () =
  let h = Max_heap.of_scores [| 10; 20; 30 |] in
  ignore (Max_heap.extract_best h);
  (* CP-boundary batch: updates present AAs, re-inserts the extracted one *)
  Max_heap.apply_updates h [ (0, 99); (2, 1) ];
  check_int "size" 3 (Max_heap.size h);
  Alcotest.(check (option (pair int int))) "best" (Some (0, 99)) (Max_heap.peek_best h);
  check_bool "invariant" true (Max_heap.check_invariant h)

let test_heap_top_k () =
  let h = Max_heap.of_scores [| 3; 1; 4; 1; 5 |] in
  let top = Max_heap.top_k h 3 in
  Alcotest.(check (list (pair int int))) "top3" [ (4, 5); (2, 4); (0, 3) ] top;
  check_int "heap untouched" 5 (Max_heap.size h);
  check_bool "invariant" true (Max_heap.check_invariant h);
  check_int "top_k over size" 5 (List.length (Max_heap.top_k h 100))

let prop_heap_invariant_random_ops =
  QCheck.Test.make ~name:"heap invariant under random op sequences" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 1000)))
    (fun ops ->
      let h = Max_heap.create ~n_aas:20 in
      List.iter
        (fun (aa, score) ->
          if Max_heap.mem h aa then begin
            if score mod 3 = 0 then ignore (Max_heap.remove h ~aa)
            else Max_heap.update h ~aa ~score
          end
          else Max_heap.insert h ~aa ~score)
        ops;
      Max_heap.check_invariant h)

let prop_heap_extract_is_max =
  QCheck.Test.make ~name:"extract_best returns the maximum" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 10_000))
    (fun scores ->
      let arr = Array.of_list scores in
      let h = Max_heap.of_scores arr in
      match Max_heap.extract_best h with
      | Some (_, s) -> s = Array.fold_left max 0 arr
      | None -> false)

(* --- Hbps --- *)

let mk_hbps ?(bin_width = 1024) ?(capacity = 1000) scores =
  Hbps.create ~bin_width ~capacity ~max_score:32768 ~scores ()

let test_hbps_create () =
  let scores = Array.init 100 (fun i -> i * 300) in
  let h = mk_hbps scores in
  check_int "n_aas" 100 (Hbps.n_aas h);
  check_int "bins (32k/1k + 1 for value 32768)" 33 (Hbps.bins h);
  check_bool "invariant" true (Hbps.check_invariant h);
  check_int "all listed (capacity 1000 > 100)" 0 (Hbps.count h);
  (* list starts empty; replenish fills it *)
  Hbps.replenish h;
  check_int "listed after replenish" 100 (Hbps.count h);
  check_bool "complete" true (Hbps.check_complete h)

let test_hbps_pick_best_in_top_bin () =
  let scores = [| 100; 31_900; 15_000; 31_800; 500 |] in
  let h = mk_hbps scores in
  Hbps.replenish h;
  match Hbps.pick_best h with
  | Some (aa, s) ->
    check_bool "from top bin" true (aa = 1 || aa = 3);
    check_bool "score right" true (s = scores.(aa))
  | None -> Alcotest.fail "empty"

let test_hbps_error_margin () =
  let h = mk_hbps [| 0 |] in
  Alcotest.(check (float 1e-9)) "3.125%" 0.03125 (Hbps.error_margin h)

let test_hbps_take_best_distinct () =
  let scores = [| 32_000; 31_000; 30_000 |] in
  let h = mk_hbps scores in
  Hbps.replenish h;
  let a = Hbps.take_best h and b = Hbps.take_best h and c = Hbps.take_best h in
  let ids = List.filter_map (Option.map fst) [ a; b; c ] in
  check_int "three taken" 3 (List.length (List.sort_uniq compare ids));
  check_bool "now empty" true (Hbps.take_best h = None)

let test_hbps_update_moves_bins () =
  let scores = [| 32_000; 100 |] in
  let h = mk_hbps scores in
  Hbps.replenish h;
  Hbps.update h ~aa:0 ~score:50;
  check_bool "invariant" true (Hbps.check_invariant h);
  (* AA 1 (score 100) should now beat AA 0 (score 50)? both in bin 0 -
     within-bin order is unspecified, but pick must come from bin 0 *)
  match Hbps.pick_best h with
  | Some (_, s) -> check_bool "low bin" true (s <= 1023)
  | None -> Alcotest.fail "empty"

let test_hbps_promotion_inserts () =
  let scores = Array.make 5 100 in
  let h = mk_hbps scores in
  Hbps.replenish h;
  Hbps.update h ~aa:3 ~score:32_000;
  (match Hbps.pick_best h with
  | Some (aa, s) ->
    check_int "promoted AA" 3 aa;
    check_int "promoted score" 32_000 s
  | None -> Alcotest.fail "empty");
  check_bool "invariant" true (Hbps.check_invariant h)

let test_hbps_eviction_when_full () =
  (* capacity 4, six AAs; the best four should be listed *)
  let scores = [| 1000; 2000; 3000; 4000; 5000; 6000 |] in
  let h = mk_hbps ~bin_width:1000 ~capacity:4 scores in
  Hbps.replenish h;
  check_int "at capacity" 4 (Hbps.count h);
  let listed = List.map fst (Hbps.to_list h) in
  List.iter
    (fun aa -> check_bool (Printf.sprintf "aa%d listed" aa) true (List.mem aa listed))
    [ 2; 3; 4; 5 ];
  (* promote an unlisted AA above everything: must evict the lowest listed *)
  Hbps.update h ~aa:0 ~score:31_000;
  check_bool "promoted now listed" true (Hbps.mem_list h ~aa:0);
  check_int "still at capacity" 4 (Hbps.count h);
  check_bool "invariant" true (Hbps.check_invariant h)

let test_hbps_unqualified_insert_skipped () =
  let scores = [| 10_000; 11_000; 12_000; 13_000 |] in
  let h = mk_hbps ~bin_width:1000 ~capacity:3 scores in
  Hbps.replenish h;
  check_int "full" 3 (Hbps.count h);
  (* AA 0 rises but stays below the lowest listed bin: not inserted *)
  Hbps.update h ~aa:0 ~score:10_500;
  check_bool "still unlisted" false (Hbps.mem_list h ~aa:0);
  check_bool "invariant" true (Hbps.check_invariant h)

let test_hbps_stale_detection () =
  let scores = [| 5000; 6000; 7000 |] in
  let h = mk_hbps ~bin_width:1000 ~capacity:2 scores in
  Hbps.replenish h;
  check_bool "fresh" false (Hbps.is_stale h);
  (* Unlisted AA 0 gets freed up beyond the listed bins... it will be
     inserted (evicting), so not stale. Instead: drain the list. *)
  ignore (Hbps.take_best h);
  ignore (Hbps.take_best h);
  (* histogram still says bin 7 is populated; the list is empty -> stale *)
  check_bool "stale after drain" true (Hbps.is_stale h);
  check_bool "needs replenish" true (Hbps.needs_replenish h);
  Hbps.replenish h;
  check_bool "fresh again" false (Hbps.is_stale h);
  check_int "refilled" 2 (Hbps.count h)

let test_hbps_replenish_excluded () =
  let scores = [| 32_000; 31_000; 30_000 |] in
  let h = mk_hbps scores in
  Hbps.replenish ~excluded:(fun aa -> aa = 0) h;
  check_bool "excluded stays out" false (Hbps.mem_list h ~aa:0);
  check_int "others in" 2 (Hbps.count h)

let test_hbps_histogram_exact () =
  let scores = [| 0; 1023; 1024; 32_768 |] in
  let h = mk_hbps scores in
  check_int "bin0" 2 (Hbps.histogram_count h ~bin:0);
  check_int "bin1" 1 (Hbps.histogram_count h ~bin:1);
  check_int "bin32 (max value)" 1 (Hbps.histogram_count h ~bin:32)

(* The paper's guarantee: pick_best is within one bin width of the true
   maximum whenever the cache is not stale. *)
let prop_hbps_error_bound =
  QCheck.Test.make ~name:"pick_best within bin_width of true max (fresh cache)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 32_768))
    (fun scores ->
      let arr = Array.of_list scores in
      let h = mk_hbps ~capacity:50 arr in
      Hbps.replenish h;
      match Hbps.pick_best h with
      | Some (_, s) ->
        let true_max = Array.fold_left max 0 arr in
        s > true_max - 1024
      | None -> false)

let prop_hbps_invariant_under_updates =
  QCheck.Test.make ~name:"hbps invariant under random updates" ~count:100
    QCheck.(list (pair (int_bound 49) (int_bound 32_768)))
    (fun updates ->
      let scores = Array.init 50 (fun i -> (i * 653) mod 32_769) in
      let h = mk_hbps ~capacity:10 scores in
      Hbps.replenish h;
      List.iter (fun (aa, s) -> Hbps.update h ~aa ~score:s) updates;
      Hbps.check_invariant h)

let prop_hbps_error_bound_after_updates_with_replenish =
  QCheck.Test.make ~name:"error bound restored by replenish after updates" ~count:100
    QCheck.(list (pair (int_bound 49) (int_bound 32_768)))
    (fun updates ->
      let scores = Array.init 50 (fun i -> (i * 653) mod 32_769) in
      let h = mk_hbps ~capacity:10 scores in
      Hbps.replenish h;
      List.iter (fun (aa, s) -> Hbps.update h ~aa ~score:s) updates;
      if Hbps.needs_replenish h then Hbps.replenish h;
      if Hbps.is_stale h then Hbps.replenish h;
      match Hbps.pick_best h with
      | Some (_, s) ->
        let true_max = ref 0 in
        for aa = 0 to 49 do
          true_max := max !true_max (Hbps.score h ~aa)
        done;
        s > !true_max - 1024
      | None -> (* all AAs could have score... list can't be empty with 50 AAs *) false)

let prop_hbps_complete_after_replenish =
  QCheck.Test.make ~name:"bins above lowest listed are complete after replenish" ~count:100
    QCheck.(list_of_size Gen.(1 -- 300) (int_bound 32_768))
    (fun scores ->
      let arr = Array.of_list scores in
      let h = mk_hbps ~capacity:20 arr in
      Hbps.replenish h;
      Hbps.check_complete h)

(* --- Topaa --- *)

let test_topaa_raid_aware_roundtrip () =
  let heap = Max_heap.of_scores (Array.init 2000 (fun i -> (i * 37) mod 4096)) in
  let block = Topaa.save_raid_aware heap in
  check_int "block size" 4096 (Pagestore.length_bytes block);
  match Topaa.load_raid_aware block with
  | Ok entries ->
    check_int "capacity entries" Topaa.raid_aware_capacity (List.length entries);
    let expected = Max_heap.top_k heap Topaa.raid_aware_capacity in
    Alcotest.(check (list (pair int int))) "matches top_k" expected entries
  | Error e -> Alcotest.failf "load failed: %a" Topaa.pp_error e

let test_topaa_raid_aware_small_heap () =
  let heap = Max_heap.of_scores [| 5; 10; 3 |] in
  let block = Topaa.save_raid_aware heap in
  match Topaa.load_raid_aware block with
  | Ok entries ->
    Alcotest.(check (list (pair int int))) "all three" [ (1, 10); (0, 5); (2, 3) ] entries
  | Error e -> Alcotest.failf "load failed: %a" Topaa.pp_error e

let test_topaa_corruption_detected () =
  let heap = Max_heap.of_scores [| 5; 10; 3 |] in
  let block = Topaa.save_raid_aware heap in
  Pagestore.set_byte block 100 (Pagestore.byte block 100 lxor 0xff);
  (match Topaa.load_raid_aware block with
  | Error Topaa.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Topaa.pp_error e
  | Ok _ -> Alcotest.fail "corruption not detected");
  (* wrong magic *)
  let block2 = Pagestore.of_bytes (Bytes.make 4096 '\000') in
  match Topaa.load_raid_aware block2 with
  | Error Topaa.Bad_magic -> ()
  | _ -> Alcotest.fail "magic not checked"

let test_topaa_hbps_roundtrip () =
  let scores = Array.init 500 (fun i -> (i * 97) mod 32_769) in
  let h = Hbps.create ~capacity:100 ~max_score:32_768 ~scores () in
  Hbps.replenish h;
  let histogram, list_page = Topaa.save_hbps h in
  check_int "histogram page" 4096 (Pagestore.length_bytes histogram);
  check_int "list page" 4096 (Pagestore.length_bytes list_page);
  match Topaa.load_hbps (histogram, list_page) with
  | Ok seed ->
    check_int "bin width" 1024 seed.Topaa.bin_width;
    check_int "bins" (Hbps.bins h) (Array.length seed.Topaa.bin_counts);
    Array.iteri
      (fun b c -> check_int "bin count" (Hbps.histogram_count h ~bin:b) c)
      seed.Topaa.bin_counts;
    check_int "entries" (Hbps.count h) (List.length seed.Topaa.entries);
    (* stored order preserved; ids match *)
    let expected_ids = List.map fst (Hbps.to_list h) in
    Alcotest.(check (list int)) "ids" expected_ids (List.map fst seed.Topaa.entries);
    (* seeded scores within one bin of the real score *)
    List.iter
      (fun (aa, approx) ->
        let real = Hbps.score h ~aa in
        check_bool "approx within bin" true (approx <= real && real - approx < 1024))
      (Topaa.seed_scores seed)
  | Error e -> Alcotest.failf "load failed: %a" Topaa.pp_error e

let test_topaa_hbps_corruption () =
  let scores = Array.init 50 (fun i -> i * 100) in
  let h = Hbps.create ~capacity:10 ~max_score:32_768 ~scores () in
  Hbps.replenish h;
  let histogram, list_page = Topaa.save_hbps h in
  Pagestore.set_byte list_page 20 (Char.code 'x');
  match Topaa.load_hbps (histogram, list_page) with
  | Error Topaa.Bad_checksum -> ()
  | _ -> Alcotest.fail "list page corruption not detected"

(* --- Cache --- *)

let test_cache_dispatch () =
  let aware = Cache.raid_aware ~scores:[| 1; 2; 3 |] () in
  let agnostic = Cache.raid_agnostic ~max_score:32768 ~scores:[| 1; 2; 3 |] () in
  (match Cache.backend aware with
  | Cache.Raid_aware _ -> ()
  | Cache.Raid_agnostic _ -> Alcotest.fail "expected heap backend");
  (match Cache.backend agnostic with
  | Cache.Raid_agnostic _ -> ()
  | Cache.Raid_aware _ -> Alcotest.fail "expected HBPS backend")

let test_cache_take_and_update () =
  let c = Cache.raid_aware ~scores:[| 10; 30; 20 |] () in
  (match Cache.take_best c with
  | Some (aa, s) ->
    check_int "best aa" 1 aa;
    check_int "best score" 30 s
  | None -> Alcotest.fail "empty");
  Cache.cp_update c [ (1, 0) ];
  (match Cache.peek_best_score c with
  | Some s -> check_int "next best" 20 s
  | None -> Alcotest.fail "empty");
  let stats = Cache.stats c in
  check_int "picks" 1 stats.Cache.picks;
  check_int "updates" 1 stats.Cache.updates;
  check_bool "work counted" true (stats.Cache.work > 0)

let test_cache_hbps_auto_replenish () =
  let scores = Array.init 100 (fun i -> (i * 331) mod 32_769) in
  let c = Cache.raid_agnostic ~capacity:5 ~max_score:32_768 ~scores () in
  (* drain the (initially empty, then replenished) list via cp_update *)
  Cache.cp_update c [];
  check_bool "replenished on first cp" true ((Cache.stats c).Cache.replenishes >= 1);
  let rec drain n = if n > 0 then begin ignore (Cache.take_best c); drain (n - 1) end in
  drain 5;
  Cache.cp_update c [];
  check_bool "take works after auto-replenish" true (Cache.take_best c <> None)

(* Every HBPS pick's tracked score error must respect the §3.3 guarantee:
   with the list replenished, a pick comes from the best populated bin, so
   its deficit versus that bin's top is < bin_width/max_score = 3.125%. *)
let test_cache_hbps_score_error_bound () =
  let max_score = 32_768 in
  let bound = 1024.0 /. float_of_int max_score in
  let rng = ref 12345 in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 7) mod (max_score + 1)
  in
  let scores = Array.init 4096 (fun _ -> next ()) in
  let c = Cache.raid_agnostic ~max_score ~scores () in
  Cache.cp_update c [] (* initial replenish *);
  for _ = 1 to 50 do
    (match Cache.take_best c with
    | Some (aa, _) -> Cache.cp_update c [ (aa, next ()) ]
    | None -> Cache.cp_update c []);
    let s = Cache.stats c in
    check_bool
      (Printf.sprintf "pick error %.5f within 3.125%% bound" s.Cache.score_error_last)
      true
      (s.Cache.score_error_last <= bound)
  done;
  let s = Cache.stats c in
  check_bool "max error within bound" true (s.Cache.score_error_max <= bound);
  (* a RAID-aware cache is exact: the gauge never moves *)
  let aware = Cache.raid_aware ~scores:[| 5; 9; 1 |] () in
  ignore (Cache.take_best aware);
  check_bool "heap pick error is zero" true
    ((Cache.stats aware).Cache.score_error_max = 0.0)

let test_cache_stats_entries_and_space () =
  let c = Cache.make ~space:3 (Cache.Raid_aware (Max_heap.of_scores [| 1; 2; 3 |])) in
  check_int "space label" 3 (Cache.space c);
  check_int "entries = heap size" 3 (Cache.stats c).Cache.entries;
  ignore (Cache.take_best c);
  check_int "entries after take" 2 (Cache.stats c).Cache.entries;
  Cache.reset_stats c;
  check_int "reset picks" 0 (Cache.stats c).Cache.picks

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_heap_invariant_random_ops;
        prop_heap_extract_is_max;
        prop_hbps_error_bound;
        prop_hbps_invariant_under_updates;
        prop_hbps_error_bound_after_updates_with_replenish;
        prop_hbps_complete_after_replenish;
      ]
  in
  Alcotest.run "wafl_aacache"
    [
      ( "max_heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "of_scores" `Quick test_heap_of_scores;
          Alcotest.test_case "extract order" `Quick test_heap_extract_order;
          Alcotest.test_case "update" `Quick test_heap_update;
          Alcotest.test_case "remove" `Quick test_heap_remove;
          Alcotest.test_case "reinsert" `Quick test_heap_reinsert_after_extract;
          Alcotest.test_case "apply_updates" `Quick test_heap_apply_updates;
          Alcotest.test_case "top_k" `Quick test_heap_top_k;
        ] );
      ( "hbps",
        [
          Alcotest.test_case "create" `Quick test_hbps_create;
          Alcotest.test_case "pick from top bin" `Quick test_hbps_pick_best_in_top_bin;
          Alcotest.test_case "error margin" `Quick test_hbps_error_margin;
          Alcotest.test_case "take_best distinct" `Quick test_hbps_take_best_distinct;
          Alcotest.test_case "update moves bins" `Quick test_hbps_update_moves_bins;
          Alcotest.test_case "promotion inserts" `Quick test_hbps_promotion_inserts;
          Alcotest.test_case "eviction when full" `Quick test_hbps_eviction_when_full;
          Alcotest.test_case "unqualified skipped" `Quick test_hbps_unqualified_insert_skipped;
          Alcotest.test_case "stale detection" `Quick test_hbps_stale_detection;
          Alcotest.test_case "replenish excluded" `Quick test_hbps_replenish_excluded;
          Alcotest.test_case "histogram exact" `Quick test_hbps_histogram_exact;
        ] );
      ( "topaa",
        [
          Alcotest.test_case "raid-aware roundtrip" `Quick test_topaa_raid_aware_roundtrip;
          Alcotest.test_case "small heap" `Quick test_topaa_raid_aware_small_heap;
          Alcotest.test_case "corruption detected" `Quick test_topaa_corruption_detected;
          Alcotest.test_case "hbps roundtrip" `Quick test_topaa_hbps_roundtrip;
          Alcotest.test_case "hbps corruption" `Quick test_topaa_hbps_corruption;
        ] );
      ( "cache",
        [
          Alcotest.test_case "dispatch" `Quick test_cache_dispatch;
          Alcotest.test_case "take and update" `Quick test_cache_take_and_update;
          Alcotest.test_case "auto replenish" `Quick test_cache_hbps_auto_replenish;
          Alcotest.test_case "hbps score-error bound" `Quick
            test_cache_hbps_score_error_bound;
          Alcotest.test_case "stats entries and space" `Quick
            test_cache_stats_entries_and_space;
        ] );
      ( "properties", qsuite );
    ]
