(* Tests for Wafl_aa: topology, sizing, score. *)

open Wafl_aa
open Wafl_raid
open Wafl_bitmap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let geom = Geometry.create ~data_devices:4 ~parity_devices:1 ~device_blocks:1024

(* --- Topology: RAID-aware --- *)

let raid_topo = Topology.raid_aware ~geometry:geom ~aa_stripes:128

let test_raid_topo_counts () =
  check_int "aa count" 8 (Topology.aa_count raid_topo);
  check_int "total blocks" 4096 (Topology.total_blocks raid_topo);
  check_int "capacity" 512 (Topology.aa_capacity raid_topo 0);
  check_int "full capacity" 512 (Topology.full_aa_capacity raid_topo)

let test_raid_topo_ragged () =
  (* 1024 stripes, 300 per AA -> AAs of 300,300,300,124 stripes *)
  let t = Topology.raid_aware ~geometry:geom ~aa_stripes:300 in
  check_int "aa count" 4 (Topology.aa_count t);
  check_int "last capacity" (124 * 4) (Topology.aa_capacity t 3);
  check_int "full capacity" (300 * 4) (Topology.full_aa_capacity t)

let test_raid_topo_extents () =
  let extents = Topology.extents_of_aa raid_topo 1 in
  check_int "one extent per device" 4 (List.length extents);
  List.iteri
    (fun device e ->
      check_int "start" ((device * 1024) + 128) (Wafl_block.Extent.start e);
      check_int "len" 128 (Wafl_block.Extent.len e))
    extents

let test_raid_topo_aa_of_vbn () =
  (* vbn 0 = device 0 dbn 0 -> stripe 0 -> AA 0 *)
  check_int "vbn 0" 0 (Topology.aa_of_vbn raid_topo 0);
  (* device 2, dbn 130 -> stripe 130 -> AA 1 *)
  let vbn = Geometry.vbn_of_location geom { Geometry.device = 2; dbn = 130 } in
  check_int "stripe 130" 1 (Topology.aa_of_vbn raid_topo vbn);
  (* last vbn *)
  check_int "last" 7 (Topology.aa_of_vbn raid_topo 4095)

let test_raid_topo_iter_order () =
  (* Allocation order is stripe-major: fills whole stripes first. *)
  let order = ref [] in
  Topology.iter_aa_vbns raid_topo 0 ~f:(fun v -> order := v :: !order);
  let order = List.rev !order in
  check_int "count" 512 (List.length order);
  (match order with
  | a :: b :: c :: d :: e :: _ ->
    (* first four are stripe 0 on devices 0..3, then stripe 1 device 0 *)
    check_int "s0 d0" 0 a;
    check_int "s0 d1" 1024 b;
    check_int "s0 d2" 2048 c;
    check_int "s0 d3" 3072 d;
    check_int "s1 d0" 1 e
  | _ -> Alcotest.fail "short iteration");
  (* every vbn maps back to AA 0 *)
  List.iter (fun v -> check_int "aa" 0 (Topology.aa_of_vbn raid_topo v)) order

let prop_raid_topo_partition =
  QCheck.Test.make ~name:"every VBN belongs to exactly the AA that iterates it" ~count:50
    QCheck.(int_bound 4095)
    (fun vbn ->
      let aa = Topology.aa_of_vbn raid_topo vbn in
      let found = ref false in
      Topology.iter_aa_vbns raid_topo aa ~f:(fun v -> if v = vbn then found := true);
      !found)

(* --- Topology: RAID-agnostic --- *)

let agn_topo = Topology.raid_agnostic ~total_blocks:100_000 ~aa_blocks:32768

let test_agn_topo () =
  check_int "aa count" 4 (Topology.aa_count agn_topo);
  check_int "cap 0" 32768 (Topology.aa_capacity agn_topo 0);
  check_int "cap last (ragged)" (100_000 - (3 * 32768)) (Topology.aa_capacity agn_topo 3);
  check_int "aa of 0" 0 (Topology.aa_of_vbn agn_topo 0);
  check_int "aa of 32768" 1 (Topology.aa_of_vbn agn_topo 32768);
  check_int "extents" 1 (List.length (Topology.extents_of_aa agn_topo 2))

let test_agn_iter_sequential () =
  let t = Topology.raid_agnostic ~total_blocks:100 ~aa_blocks:30 in
  let seen = ref [] in
  Topology.iter_aa_vbns t 3 ~f:(fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) "last ragged AA" [ 90; 91; 92; 93; 94; 95; 96; 97; 98; 99 ]
    (List.rev !seen)

(* --- Sizing --- *)

let test_sizing_defaults () =
  check_int "hdd" 4096 Sizing.default_hdd_stripes;
  check_int "agnostic" 32768 Sizing.default_raid_agnostic_blocks

let test_sizing_ssd () =
  let p = Wafl_device.Profile.default_ssd in
  let stripes = Sizing.ssd_stripes p in
  check_int "4 erase blocks" (4 * 512) stripes;
  check_bool "aligned" true (Sizing.is_erase_block_aligned ~aa_stripes:stripes p);
  check_bool "hdd default unaligned is detected" true
    (not (Sizing.is_erase_block_aligned ~aa_stripes:100 p))

let test_sizing_smr () =
  let p = Wafl_device.Profile.default_smr in
  let no_azcs = Sizing.smr_stripes ~azcs:false p in
  check_int "2 zones" (2 * 16384) no_azcs;
  let azcs = Sizing.smr_stripes ~azcs:true p in
  (* alignment is in data blocks: a multiple of 63 (one checksum block is
     interleaved per 63 data blocks on the device) *)
  check_bool "azcs multiple of 63" true (Sizing.is_azcs_aligned ~aa_stripes:azcs);
  check_bool "covers zones" true (azcs >= no_azcs);
  let odd = { p with Wafl_device.Profile.zone_blocks = 1000 } in
  let s = Sizing.smr_stripes ~azcs:true odd in
  check_bool "rounded to 63" true (s mod 63 = 0 && s >= 2000);
  (* the historical HDD default is NOT azcs-aligned (4096 mod 63 = 1) *)
  check_bool "hdd default unaligned" true
    (not (Sizing.is_azcs_aligned ~aa_stripes:Sizing.default_hdd_stripes))

let test_sizing_memory () =
  check_int "1M AAs ~ 8MiB heap" (8 * 1024 * 1024)
    (Sizing.memory_bytes_for_heap ~aa_count:(1024 * 1024))

(* --- Score --- *)

let test_score_computation () =
  let mf = Metafile.create ~blocks:4096 () in
  (* allocate all of stripe 0 (AA 0 vbns: device d offset 0..127) *)
  Metafile.allocate mf 0;
  Metafile.allocate mf 1024;
  check_int "aa0 score" 510 (Score.score_of_aa raid_topo mf 0);
  check_int "aa1 untouched" 512 (Score.score_of_aa raid_topo mf 1)

let test_score_all () =
  let mf = Metafile.create ~blocks:4096 () in
  let scores = Score.all_scores raid_topo mf in
  check_int "count" 8 (Array.length scores);
  Array.iter (fun s -> check_int "empty fs" 512 s) scores

let test_score_delta_batching () =
  let d = Score.create_delta raid_topo in
  check_bool "starts empty" true (Score.is_empty d);
  Score.note_alloc d ~vbn:0;
  Score.note_alloc d ~vbn:1;
  Score.note_free d ~vbn:2;
  (* all three vbns are in AA 0: net -1 *)
  let changes = Score.fold d ~init:[] ~f:(fun acc ~aa ~change -> (aa, change) :: acc) in
  Alcotest.(check (list (pair int int))) "net" [ (0, -1) ] changes

let test_score_delta_cancels () =
  let d = Score.create_delta raid_topo in
  Score.note_alloc d ~vbn:0;
  Score.note_free d ~vbn:1;
  check_bool "cancel to empty" true (Score.is_empty d)

let test_score_delta_apply () =
  let scores = [| 512; 512; 512; 512; 512; 512; 512; 512 |] in
  let d = Score.create_delta raid_topo in
  Score.note_alloc d ~vbn:0;
  (* AA 1 vbn: stripe 128+ *)
  Score.note_free d ~vbn:128;
  (* free without prior alloc: scores would exceed capacity; use an alloc'd one *)
  Score.note_alloc d ~vbn:129;
  Score.note_alloc d ~vbn:130;
  let updates = Score.apply d scores in
  check_int "aa0 dropped" 511 scores.(0);
  check_int "aa1 net -1" 511 scores.(1);
  check_int "two updates" 2 (List.length updates);
  check_bool "cleared" true (Score.is_empty d)

let prop_score_matches_metafile =
  QCheck.Test.make ~name:"delta-maintained scores match recomputation" ~count:50
    QCheck.(list (int_bound 4095))
    (fun vbns ->
      let mf = Metafile.create ~blocks:4096 () in
      let scores = Score.all_scores raid_topo mf in
      let d = Score.create_delta raid_topo in
      let allocated = Hashtbl.create 64 in
      List.iter
        (fun vbn ->
          if not (Hashtbl.mem allocated vbn) then begin
            Metafile.allocate mf vbn;
            Score.note_alloc d ~vbn;
            Hashtbl.replace allocated vbn ()
          end)
        vbns;
      ignore (Score.apply d scores);
      scores = Score.all_scores raid_topo mf)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_raid_topo_partition; prop_score_matches_metafile ]
  in
  Alcotest.run "wafl_aa"
    [
      ( "topology-raid",
        [
          Alcotest.test_case "counts" `Quick test_raid_topo_counts;
          Alcotest.test_case "ragged" `Quick test_raid_topo_ragged;
          Alcotest.test_case "extents" `Quick test_raid_topo_extents;
          Alcotest.test_case "aa_of_vbn" `Quick test_raid_topo_aa_of_vbn;
          Alcotest.test_case "iteration order" `Quick test_raid_topo_iter_order;
        ] );
      ( "topology-agnostic",
        [
          Alcotest.test_case "basics" `Quick test_agn_topo;
          Alcotest.test_case "sequential iter" `Quick test_agn_iter_sequential;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "defaults" `Quick test_sizing_defaults;
          Alcotest.test_case "ssd" `Quick test_sizing_ssd;
          Alcotest.test_case "smr" `Quick test_sizing_smr;
          Alcotest.test_case "memory" `Quick test_sizing_memory;
        ] );
      ( "score",
        [
          Alcotest.test_case "computation" `Quick test_score_computation;
          Alcotest.test_case "all scores" `Quick test_score_all;
          Alcotest.test_case "delta batching" `Quick test_score_delta_batching;
          Alcotest.test_case "delta cancels" `Quick test_score_delta_cancels;
          Alcotest.test_case "delta apply" `Quick test_score_delta_apply;
        ]
        @ qsuite );
    ]
