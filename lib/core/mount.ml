open Wafl_bitmap
open Wafl_aa
open Wafl_aacache
open Wafl_telemetry

(* Per-range persisted cache state.  RAID-aware ranges save one max-heap
   block; object (RAID-agnostic) ranges save the two embedded HBPS pages
   and reload them as HBPS — the variant keeps save and load paired per
   range kind, where the old single-[Bytes.t] slot silently stored an
   HBPS histogram that the heap loader then rejected into a full scan. *)
type range_topaa =
  | Topaa_heap of Pagestore.t
  | Topaa_hbps of Pagestore.t * Pagestore.t

type image = {
  config : Config.t;
  agg_bits : Bitmap.t;
  vol_bits : (string * Bitmap.t) array;
  range_topaa : range_topaa array;        (* one entry per physical range *)
  vol_topaa : (Pagestore.t * Pagestore.t) array;  (* HBPS pages per volume *)
  nvram : (string * int * int) list;      (* logged ops since the last CP *)
  namespace : (string * ((int * int) list * (int * int * int) list)) array;
      (* per volume: container (vvbn, pvbn) mappings and (file, offset,
         vvbn) inode entries — the durable namespace Iron cross-checks *)
}

type verify_report = {
  pages_verified : int;
  torn_pages : int;
  stale_pages : int;
  ahead_pages : int;
  unverified_stores : int;
  ranges_quarantined : int;
  vols_quarantined : int;
}

let empty_verify_report =
  {
    pages_verified = 0;
    torn_pages = 0;
    stale_pages = 0;
    ahead_pages = 0;
    unverified_stores = 0;
    ranges_quarantined = 0;
    vols_quarantined = 0;
  }

type timing = {
  topaa_blocks_read : int;
  metafile_pages_scanned : int;
  aas_scored : int;
  ops_replayed : int;
  ready_us : float;
  verify : verify_report option;
}

type cost_model = {
  page_read_us : float;
  page_scan_cpu_us : float;
  seed_insert_us : float;
  replay_op_us : float;
}

let default_cost_model =
  { page_read_us = 250.0; page_scan_cpu_us = 40.0; seed_insert_us = 0.2; replay_op_us = 5.0 }

let snapshot fs =
  let aggregate = Fs.aggregate fs in
  let range_topaa =
    Array.map
      (fun (r : Aggregate.range) ->
        match r.Aggregate.cache with
        | Some cache -> (
          match Cache.backend cache with
          | Cache.Raid_aware heap -> Topaa_heap (Topaa.save_raid_aware heap)
          | Cache.Raid_agnostic hbps ->
            let histogram, list_page = Topaa.save_hbps hbps in
            Topaa_hbps (histogram, list_page))
        | None ->
          (* cache disabled: persist a heap built on the spot, as the real
             system would from its current scores *)
          Topaa_heap (Topaa.save_raid_aware (Max_heap.of_scores r.Aggregate.scores)))
      (Aggregate.ranges aggregate)
  in
  let vol_topaa =
    Array.map
      (fun vol ->
        match Option.map Cache.backend (Flexvol.cache vol) with
        | Some (Cache.Raid_agnostic hbps) -> Topaa.save_hbps hbps
        | Some (Cache.Raid_aware _) | None ->
          let h =
            Hbps.create
              ~max_score:(Topology.full_aa_capacity (Flexvol.topology vol))
              ~scores:(Flexvol.scores vol) ()
          in
          Hbps.replenish h;
          Topaa.save_hbps h)
      (Fs.vols fs)
  in
  {
    config = Fs.config fs;
    agg_bits = Metafile.snapshot (Aggregate.metafile aggregate);
    vol_bits =
      Array.map (fun v -> (Flexvol.name v, Metafile.snapshot (Flexvol.metafile v))) (Fs.vols fs);
    range_topaa;
    vol_topaa;
    nvram = Fs.staged_ops fs;
    namespace =
      Array.map (fun v -> (Flexvol.name v, Flexvol.export_namespace v)) (Fs.vols fs);
  }

let corrupt_block p =
  let i = Pagestore.length_bytes p / 2 in
  Pagestore.set_byte p i (Pagestore.byte p i lxor 0x5a)

let corrupt_range_topaa image i =
  if i < 0 || i >= Array.length image.range_topaa then
    invalid_arg "Mount.corrupt_range_topaa: range index out of range";
  match image.range_topaa.(i) with
  | Topaa_heap page -> corrupt_block page
  | Topaa_hbps (histogram, list_page) ->
    corrupt_block histogram;
    corrupt_block list_page

let corrupt_vol_topaa image i =
  if i < 0 || i >= Array.length image.vol_topaa then
    invalid_arg "Mount.corrupt_vol_topaa: volume index out of range";
  let histogram, list_page = image.vol_topaa.(i) in
  corrupt_block histogram;
  corrupt_block list_page

(* Model a torn write to an aggregate bitmap-metafile page: the first half
   of the page reached the platter, the second half did not (reads back as
   zeros, i.e. "free").  Iron detects the resulting container references
   to unallocated PVBNs as [Dangling_container]. *)
let tear_agg_bitmap_page image ~page =
  let page_bits = Wafl_block.Units.bits_per_metafile_block in
  let total = Bitmap.length image.agg_bits in
  let start = page * page_bits in
  if page < 0 || start >= total then
    invalid_arg "Mount.tear_agg_bitmap_page: page out of range";
  let half = start + (page_bits / 2) in
  let len = min (page_bits / 2) (total - half) in
  if len > 0 then Bitmap.clear_range image.agg_bits ~start:half ~len

(* --- verified remount: sidecar classification over the mapped stores --- *)

(* Aggregate ranges overlapping the VBN span one integrity page of the
   activemap store covers: page [p] holds bits [p * 8 * page_size, ...).
   A page straddling a range boundary quarantines every range it
   touches. *)
let ranges_of_page aggregate p =
  let bits_per_page = 8 * Integrity.page_size in
  let vbn0 = p * bits_per_page in
  let vbn1 = min (Aggregate.total_blocks aggregate) ((p + 1) * bits_per_page) - 1 in
  Array.to_list (Aggregate.ranges aggregate)
  |> List.filter (fun (r : Aggregate.range) ->
         r.Aggregate.base <= vbn1 && r.Aggregate.base + r.Aggregate.blocks - 1 >= vbn0)

(* Classify every tracked metafile store of [fs] against its persisted
   sidecar.  Pure with respect to the data pages (ahead pages are folded
   into the committed generation by [Integrity.verify_store]); the caller
   decides when to quarantine and reseal — the restore path must classify
   {e before} the image blit rewrites the stores, but rebuild requests
   only make sense {e after} it. *)
let classify_stores fs =
  let aggregate = Fs.aggregate fs in
  let totals = ref empty_verify_report in
  let consider store =
    match Integrity.verify_store store with
    | None -> []
    | Some r ->
      let t = !totals in
      totals :=
        {
          t with
          pages_verified = t.pages_verified + r.Integrity.pages;
          torn_pages = t.torn_pages + List.length r.Integrity.torn;
          stale_pages = t.stale_pages + List.length r.Integrity.stale;
          ahead_pages = t.ahead_pages + r.Integrity.ahead;
          unverified_stores =
            (t.unverified_stores + if r.Integrity.sidecar_loaded then 0 else 1);
        };
      r.Integrity.torn @ r.Integrity.stale
  in
  let agg_store = Metafile.store (Aggregate.metafile aggregate) in
  let agg_bad = consider agg_store in
  let bad_ranges =
    let seen = Hashtbl.create 8 in
    List.concat_map (fun p -> ranges_of_page aggregate p) agg_bad
    |> List.filter (fun (r : Aggregate.range) ->
           if Hashtbl.mem seen r.Aggregate.index then false
           else begin
             Hashtbl.add seen r.Aggregate.index ();
             true
           end)
  in
  let bad_vols =
    Array.to_list (Fs.vols fs)
    |> List.filter_map (fun vol ->
           match consider (Metafile.store (Flexvol.metafile vol)) with
           | [] -> None
           | pages -> Some (vol, Metafile.store (Flexvol.metafile vol), pages))
  in
  (!totals, agg_store, agg_bad, bad_ranges, bad_vols)

(* Damage routing: the cost of a verified remount is proportional to the
   damage — only the ranges/volumes a bad page overlaps are rescanned. *)
let quarantine ?pool fs ~bad_ranges ~bad_vols =
  let aggregate = Fs.aggregate fs in
  if bad_ranges <> [] then Rebuild.request ?pool aggregate (Rebuild.Ranges bad_ranges);
  List.iter (fun (vol, _, _) -> Rebuild.request_vol ?pool vol) bad_vols

let emit_verify_telemetry r =
  Telemetry.incr "mount.verified_mounts";
  Telemetry.add "mount.verify_pages" r.pages_verified;
  Telemetry.add "mount.verify_torn" r.torn_pages;
  Telemetry.add "mount.verify_stale" r.stale_pages;
  Telemetry.add "mount.verify_quarantined_ranges" r.ranges_quarantined;
  Telemetry.add "mount.verify_quarantined_vols" r.vols_quarantined

let verify_pagestores ?pool fs =
  let totals, agg_store, agg_bad, bad_ranges, bad_vols = classify_stores fs in
  quarantine ?pool fs ~bad_ranges ~bad_vols;
  (* The persisted bits are all we have on this path: take them as bitmap
     truth, re-stamp the damaged pages, and let the caller's Iron pass
     settle bitmap-vs-container disagreements under container
     authority. *)
  List.iter (Integrity.reseal_page agg_store) agg_bad;
  List.iter (fun (_, store, pages) -> List.iter (Integrity.reseal_page store) pages) bad_vols;
  let report =
    {
      totals with
      ranges_quarantined = List.length bad_ranges;
      vols_quarantined = List.length bad_vols;
    }
  in
  emit_verify_telemetry report;
  report

(* Restore space state into a fresh system.  The caches Fs.create builds
   assume an empty file system; drop them — the caller installs either
   TopAA seeds or a full-scan rebuild. *)
let restore ?(verify = false) ?pool image =
  let fs = Fs.create image.config in
  (* Classification must see the persisted bytes, so it runs between the
     store mapping above and the image blit below; the blit then heals the
     data (and [Metafile.load] re-stamps the sidecar state), leaving only
     the damage-proportional rescans to issue afterwards. *)
  let pre = if verify then Some (classify_stores fs) else None in
  let aggregate = Fs.aggregate fs in
  Metafile.load (Aggregate.metafile aggregate) image.agg_bits;
  Array.iter
    (fun (name, bits) -> Metafile.load (Flexvol.metafile (Fs.vol fs name)) bits)
    image.vol_bits;
  Array.iter
    (fun (name, (mappings, files)) ->
      Flexvol.import_namespace (Fs.vol fs name) ~mappings ~files)
    image.namespace;
  Aggregate.disable_caches aggregate;
  Array.iter (fun v -> Flexvol.set_cache v None) (Fs.vols fs);
  let vreport =
    match pre with
    | None -> None
    | Some (totals, _, _, bad_ranges, bad_vols) ->
      quarantine ?pool fs ~bad_ranges ~bad_vols;
      let r =
        {
          totals with
          ranges_quarantined = List.length bad_ranges;
          vols_quarantined = List.length bad_vols;
        }
      in
      emit_verify_telemetry r;
      Some r
  in
  (fs, vreport)

(* Seed one range cache from its TopAA block.  A corrupt block is detected
   by its checksum; the mount then falls back to scoring that range from
   the bitmaps (the real system would engage WAFL Iron).  Returns
   (seeds inserted, fallback metafile pages scanned). *)
let seed_range_cache aggregate (r : Aggregate.range) block =
  (* Checksum failure engages the bitmap-truth rescore for just this
     range (the real system would hand it to WAFL Iron); the targeted
     rebuild also re-stamps the range fresh, so a lazy mount does not
     rescan it again on first touch. *)
  let fallback () =
    let pages =
      Metafile.scan_read (Aggregate.metafile aggregate) ~start:r.Aggregate.base
        ~len:r.Aggregate.blocks
    in
    Rebuild.request aggregate (Rebuild.Ranges [ r ]);
    (0, pages)
  in
  match block with
  | Topaa_heap page -> (
    match Topaa.load_raid_aware page with
    | Ok seeds ->
      let heap = Max_heap.create ~n_aas:(Topology.aa_count r.Aggregate.topology) in
      List.iter
        (fun (aa, score) -> if not (Max_heap.mem heap aa) then Max_heap.insert heap ~aa ~score)
        seeds;
      r.Aggregate.cache <- Some (Cache.make ~space:r.Aggregate.index (Cache.Raid_aware heap));
      (List.length seeds, 0)
    | Error _ -> fallback ())
  | Topaa_hbps (histogram, list_page) -> (
    match Topaa.load_hbps (histogram, list_page) with
    | Ok seed ->
      let approx = Array.make (Topology.aa_count r.Aggregate.topology) 0 in
      List.iter
        (fun (aa, s) -> if aa < Array.length approx then approx.(aa) <- s)
        (Topaa.seed_scores seed);
      let cache =
        Cache.raid_agnostic ~space:r.Aggregate.index
          ~max_score:(Topology.full_aa_capacity r.Aggregate.topology)
          ~scores:approx ()
      in
      (match Cache.backend cache with
      | Cache.Raid_agnostic h -> Hbps.replenish h
      | Cache.Raid_aware _ -> ());
      r.Aggregate.cache <- Some cache;
      (List.length seed.Topaa.entries, 0)
    | Error _ -> fallback ())

let mount_body ?(cost = default_cost_model) ?(background_rebuild = true)
    ?(lazy_rebuild = false) ?(verify = false) ?pool image ~with_topaa =
  let pool = Wafl_par.Par.resolve pool in
  let fs, vreport = restore ~verify ?pool image in
  (* replay the NVRAM log: the logged client operations are re-staged so
     the first CP commits them (no data loss across the takeover) *)
  List.iter
    (fun (vol_name, file, offset) ->
      Fs.stage_write fs ~vol:(Fs.vol fs vol_name) ~file ~offset)
    image.nvram;
  let replay_us = float_of_int (List.length image.nvram) *. cost.replay_op_us in
  let ops_replayed = List.length image.nvram in
  let aggregate = Fs.aggregate fs in
  let ranges = Aggregate.ranges aggregate in
  (* A lazy mount stamps every range and volume stale before seeding:
     whatever the TopAA pass installs below stays an approximation until
     that range's first touch (pick, harvest, Iron scan, cleaner pass)
     pays its exact rescore.  Fault fallbacks rebuild from the bitmap
     right here and re-stamp themselves fresh under the new epoch. *)
  if lazy_rebuild then begin
    Telemetry.incr "mount.lazy_mounts";
    Aggregate.invalidate_caches aggregate;
    Array.iter Flexvol.invalidate_cache (Fs.vols fs)
  end;
  if with_topaa then begin
    (* Constant work: read one block per range cache + two per volume. *)
    let blocks_read = Array.length ranges + (2 * Array.length image.vol_topaa) in
    let seeds = ref 0 in
    let fallback_pages = ref 0 in
    Array.iteri
      (fun i r ->
        let inserted, scanned = seed_range_cache aggregate r image.range_topaa.(i) in
        seeds := !seeds + inserted;
        fallback_pages := !fallback_pages + scanned)
      ranges;
    Array.iteri
      (fun i vol ->
        match Topaa.load_hbps image.vol_topaa.(i) with
        | Ok seed ->
          let approx = Array.make (Topology.aa_count (Flexvol.topology vol)) 0 in
          List.iter
            (fun (aa, s) -> if aa < Array.length approx then approx.(aa) <- s)
            (Topaa.seed_scores seed);
          let cache =
            Cache.raid_agnostic
              ~max_score:(Topology.full_aa_capacity (Flexvol.topology vol))
              ~scores:approx ()
          in
          (match Cache.backend cache with
          | Cache.Raid_agnostic h -> Hbps.replenish h
          | Cache.Raid_aware _ -> ());
          Flexvol.set_cache vol (Some cache);
          seeds := !seeds + List.length seed.Topaa.entries
        | Error _ ->
          (* corrupt volume TopAA: score the volume from its bitmap *)
          fallback_pages :=
            !fallback_pages
            + Metafile.scan_read (Flexvol.metafile vol) ~start:0 ~len:(Flexvol.blocks vol);
          Rebuild.request_vol vol)
      (Fs.vols fs);
    let ready_us =
      (float_of_int blocks_read *. cost.page_read_us)
      +. (float_of_int !seeds *. cost.seed_insert_us)
      +. (float_of_int !fallback_pages *. (cost.page_read_us +. cost.page_scan_cpu_us))
      +. replay_us
    in
    if background_rebuild && not lazy_rebuild then
      Rebuild.request ?pool ~vols:(Fs.vols fs) aggregate Rebuild.Full;
    Telemetry.incr "mount.topaa_mounts";
    Telemetry.add "mount.topaa_blocks_read" blocks_read;
    Telemetry.add "mount.topaa_seeds" !seeds;
    Telemetry.add "mount.fallback_pages_scanned" !fallback_pages;
    ( fs,
      {
        topaa_blocks_read = blocks_read;
        metafile_pages_scanned = !fallback_pages;
        aas_scored = 0;
        ops_replayed;
        ready_us;
        verify = vreport;
      } )
  end
  else if lazy_rebuild then begin
    (* No TopAA and no scan either: the system comes up with no caches at
       all and every range/volume pays its exact rescore on first touch —
       mount-ready time is the NVRAM replay alone, independent of
       aggregate size. *)
    Telemetry.incr "mount.deferred_scan_mounts";
    ( fs,
      {
        topaa_blocks_read = 0;
        metafile_pages_scanned = 0;
        aas_scored = 0;
        ops_replayed;
        ready_us = replay_us;
        verify = vreport;
      } )
  end
  else begin
    (* Full scan: read every bitmap page of the aggregate and every volume,
       recompute every AA score, rebuild the caches. *)
    let agg_pages =
      Metafile.scan_read (Aggregate.metafile aggregate) ~start:0
        ~len:(Aggregate.total_blocks aggregate)
    in
    let vol_pages =
      Array.fold_left
        (fun acc vol ->
          acc + Metafile.scan_read (Flexvol.metafile vol) ~start:0 ~len:(Flexvol.blocks vol))
        0 (Fs.vols fs)
    in
    Rebuild.request ?pool ~vols:(Fs.vols fs) aggregate Rebuild.Full;
    let aas =
      Array.fold_left
        (fun acc (r : Aggregate.range) -> acc + Topology.aa_count r.Aggregate.topology)
        0 ranges
      + Array.fold_left
          (fun acc vol -> acc + Topology.aa_count (Flexvol.topology vol))
          0 (Fs.vols fs)
    in
    let pages = agg_pages + vol_pages in
    Telemetry.incr "mount.full_scan_mounts";
    Telemetry.add "mount.scan_pages" pages;
    Telemetry.add "mount.aas_scored" aas;
    (* With a pool each domain reads and scores its own disjoint slice of
       the AA range — page reads spread over the RAID group's spindles,
       scoring over the cores — so the linear page term divides by the
       domain count.  Seeding the caches and replaying the log stay
       serial.  With one job this is exactly the serial model. *)
    let jobs = float_of_int (Wafl_par.Par.effective_jobs pool) in
    let ready_us =
      (float_of_int pages *. (cost.page_read_us +. cost.page_scan_cpu_us) /. jobs)
      +. (float_of_int aas *. cost.seed_insert_us)
      +. replay_us
    in
    ( fs,
      {
        topaa_blocks_read = 0;
        metafile_pages_scanned = pages;
        aas_scored = aas;
        ops_replayed;
        ready_us;
        verify = vreport;
      } )
  end

(* The whole mount — restore, NVRAM replay, cache seeding or full-scan
   rebuild — is one [Mount_rebuild] span. *)
let mount ?cost ?background_rebuild ?lazy_rebuild ?verify ?pool image ~with_topaa =
  Telemetry.span_enter Span.Mount_rebuild;
  Fun.protect
    ~finally:(fun () -> Telemetry.span_exit Span.Mount_rebuild)
    (fun () ->
      mount_body ?cost ?background_rebuild ?lazy_rebuild ?verify ?pool image ~with_topaa)
