lib/core/write_alloc.mli: Aggregate Flexvol Wafl_util
