(** Crash points: named instrumentation sites inside the CP pipeline that
    a harness can enumerate and then kill, one at a time.

    The instrumented code calls [Crash.point "name"] at each site.  In the
    default {e Off} mode that is a single branch.  A harness first runs one
    {e Recording} pass (collecting the dynamic sequence of sites the
    workload actually reaches — enumeration is programmatic, never a
    hand-maintained list), then re-runs the workload once per index with
    the crasher {e Armed} at that index: reaching it raises {!Crashed},
    simulating a kill at exactly that point. *)

exception Crashed of { point : string; index : int }

val point : string -> unit
(** Instrumentation site.  Off: a branch.  Recording: appends [name] to
    the recorded sequence.  Armed [k]: raises {!Crashed} when the [k]-th
    dynamic site (0-based) is reached. *)

val record : unit -> unit
(** Clear the recorded sequence and enter Recording mode. *)

val arm : at:int -> unit
(** Enter Armed mode: the [at]-th subsequent {!point} call raises. *)

val disarm : unit -> unit
(** Back to Off.  Harnesses should call this in a [Fun.protect] finalizer
    so a crashed run cannot leave the crasher armed. *)

val recorded : unit -> string list
(** The dynamic site sequence from the last Recording pass, in order. *)

val count : unit -> int
(** [List.length (recorded ())]. *)
