(** Ablations of the design choices DESIGN.md calls out.

    - {b HBPS bin width} (§3.3.2): wider bins mean a larger worst-case pick
      error but fewer bins to maintain; the paper chose 1k of 32k (3.125%).
    - {b Allocation policy}: best-AA (the paper), uniformly random (the
      paper's baseline), and classic first-fit.
    - {b RAID-group fragmentation threshold} (§3.3.1): skipping groups whose
      best AA is below a score floor trades aggregate bandwidth for stripe
      efficiency.
    - {b Segment cleaning} (§3.3.1): cleaning the emptiest AAs costs few
      relocations per reclaimed AA; cleaning the fullest costs many. *)

type bin_width_point = {
  bin_width : int;
  guaranteed_error : float;
  worst_observed_error : float;
  mean_pick_score : float;
}

type policy_point = {
  policy : string;
  peak_throughput : float;
  mean_chosen_free : float;
  stripe_fullness : float;
}

type threshold_point = {
  threshold : int option;
  total_blocks_per_s : float;
  partial_stripe_fraction : float;
}

type cleaner_point = {
  strategy : string;          (** "emptiest-first" vs "fullest-first" *)
  relocations_per_aa : float;
  blocks_reclaimed : int;
}

type result = {
  bin_widths : bin_width_point list;
  policies : policy_point list;
  thresholds : threshold_point list;
  cleaner : cleaner_point list;
}

val run : ?scale:Common.scale -> unit -> result
val print : result -> unit
