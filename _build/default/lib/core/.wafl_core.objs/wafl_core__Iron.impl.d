lib/core/iron.ml: Aggregate Array Flexvol Format Fs Hashtbl List Metafile Score String Wafl_aa Wafl_bitmap
