(** Low-overhead structured event tracer: a bounded ring buffer of typed
    allocator events.

    Every emitter takes unboxed scalar arguments and checks {!enabled}
    before constructing the event, so a disabled tracer costs a branch and
    zero allocations on the hot path (asserted by the test suite).  When
    the ring is full the oldest events are overwritten; {!emitted} keeps
    the lifetime count.

    [space] identifies the allocation space an event concerns: physical
    ranges use their aggregate range index (>= 0), FlexVols use [-1]. *)

type event =
  | Cp_begin of { cp : int }
  | Cp_end of {
      cp : int;
      ops : int;
      blocks : int;
      freed : int;
      pages : int;
      device_us : float;
    }
  | Aa_pick of { cp : int; space : int; aa : int; score : int }
  | Cache_replenish of { cp : int; space : int; listed : int }
  | Tetris_write of {
      cp : int;
      space : int;
      tetrises : int;
      full_stripes : int;
      partial_stripes : int;
    }
  | Cleaner_pass of { cp : int; aas : int; relocated : int; reclaimed : int }
  | Free_commit of { cp : int; space : int; freed : int; pages : int }
  | Fault_inject of {
      cp : int;
      space : int;
      transients : int;
      torn : int;
      failed : int;
      spikes : int;
    }  (** injected faults observed by one device during one CP flush *)
  | Io_retry of { cp : int; space : int; retries : int; ok : int }
      (** retry activity (attempts / bursts outlived) for one device, one CP *)
  | Slo_violation of {
      cp : int;
      slo : string;
      burn_fast : float;
      burn_slow : float;
      violations : int;
    }
      (** an SLO breached (both burn windows over 1.0) at this CP boundary *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] defaults to 4096 events; [enabled] to [false]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val emitted : t -> int
(** Events emitted over the tracer's lifetime (retained or overwritten). *)

val length : t -> int
(** Events currently retained (<= capacity). *)

val current_cp : t -> int

val to_list : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

(* --- emitters (no-ops when disabled) --- *)

val cp_begin : t -> unit
(** Advances the CP stamp carried by subsequent events.  The stamp advances
    even when disabled, so enabling mid-run yields correct CP numbers. *)

val cp_end : t -> ops:int -> blocks:int -> freed:int -> pages:int -> device_us:float -> unit
val aa_pick : t -> space:int -> aa:int -> score:int -> unit
val cache_replenish : t -> space:int -> listed:int -> unit

val tetris_write :
  t -> space:int -> tetrises:int -> full_stripes:int -> partial_stripes:int -> unit

val cleaner_pass : t -> aas:int -> relocated:int -> reclaimed:int -> unit
val free_commit : t -> space:int -> freed:int -> pages:int -> unit

val fault_inject :
  t -> space:int -> transients:int -> torn:int -> failed:int -> spikes:int -> unit

val io_retry : t -> space:int -> retries:int -> ok:int -> unit

val slo_violation :
  t -> slo:string -> burn_fast:float -> burn_slow:float -> violations:int -> unit
(** Unlike the other emitters this takes a string (the objective name);
    it fires at most once per (objective, CP) at the CP boundary, never
    on a hot path. *)

(* --- rendering --- *)

val event_name : event -> string
val event_cp : event -> int
