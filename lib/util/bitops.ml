let popcount_table =
  let table = Bytes.create 256 in
  for i = 0 to 255 do
    let rec count n = if n = 0 then 0 else (n land 1) + count (n lsr 1) in
    Bytes.set table i (Char.chr (count i))
  done;
  table

let popcount_byte b = Char.code (Bytes.get popcount_table (b land 0xff))

let popcount64 x =
  (* SWAR popcount. *)
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let ctz64 x =
  if x = 0L then 64
  else begin
    let n = ref 0 in
    let x = ref x in
    if Int64.logand !x 0xFFFFFFFFL = 0L then (n := !n + 32; x := Int64.shift_right_logical !x 32);
    if Int64.logand !x 0xFFFFL = 0L then (n := !n + 16; x := Int64.shift_right_logical !x 16);
    if Int64.logand !x 0xFFL = 0L then (n := !n + 8; x := Int64.shift_right_logical !x 8);
    if Int64.logand !x 0xFL = 0L then (n := !n + 4; x := Int64.shift_right_logical !x 4);
    if Int64.logand !x 0x3L = 0L then (n := !n + 2; x := Int64.shift_right_logical !x 2);
    if Int64.logand !x 0x1L = 0L then incr n;
    !n
  end

let clz64 x =
  if x = 0L then 64
  else begin
    let n = ref 0 in
    let x = ref x in
    if Int64.shift_right_logical !x 32 = 0L then (n := !n + 32; x := Int64.shift_left !x 32);
    if Int64.shift_right_logical !x 48 = 0L then (n := !n + 16; x := Int64.shift_left !x 16);
    if Int64.shift_right_logical !x 56 = 0L then (n := !n + 8; x := Int64.shift_left !x 8);
    if Int64.shift_right_logical !x 60 = 0L then (n := !n + 4; x := Int64.shift_left !x 4);
    if Int64.shift_right_logical !x 62 = 0L then (n := !n + 2; x := Int64.shift_left !x 2);
    if Int64.shift_right_logical !x 63 = 0L then incr n;
    !n
  end

(* Native-int variants for the allocation hot path.  [int64] values are
   boxed in OCaml, so the word kernels that must not allocate work on the
   immediate [int] type instead (bits 0..61 are plenty: the harvest path
   scans 32-bit chunks). *)

let ctz x =
  if x = 0 then Sys.int_size
  else begin
    let n = ref 0 in
    let x = ref x in
    if !x land 0xFFFFFFFF = 0 then (n := !n + 32; x := !x lsr 32);
    if !x land 0xFFFF = 0 then (n := !n + 16; x := !x lsr 16);
    if !x land 0xFF = 0 then (n := !n + 8; x := !x lsr 8);
    if !x land 0xF = 0 then (n := !n + 4; x := !x lsr 4);
    if !x land 0x3 = 0 then (n := !n + 2; x := !x lsr 2);
    if !x land 0x1 = 0 then incr n;
    !n
  end

let popcount x =
  (* SWAR popcount over the low 62 bits (native ints are 63-bit). *)
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x1333333333333333) + ((x lsr 2) land 0x1333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56 land 0x7f

let lowest_zero_byte b =
  let b = b land 0xff in
  if b = 0xff then 8
  else begin
    let rec go i = if b land (1 lsl i) = 0 then i else go (i + 1) in
    go 0
  end

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ceil_div n m =
  assert (m > 0);
  (n + m - 1) / m

let round_up n m = ceil_div n m * m
let round_down n m = n / m * m
