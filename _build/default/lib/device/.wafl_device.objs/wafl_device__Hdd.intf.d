lib/device/hdd.mli: Profile
