examples/aging_study.mli:
