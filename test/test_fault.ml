(* Tests for Wafl_fault: spec parsing, deterministic injection, health
   transitions, the allocator's quarantine/retry behaviour under faults,
   and the exhaustive CP crash-point matrix. *)

open Wafl_core
open Wafl_fault
open Wafl_telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- spec parsing --- *)

let test_spec_roundtrip () =
  let s =
    "seed=7,transient=0.05,burst=3,torn=0.01,spike=0.02:400,retries=4,backoff=100,\
     bad=0:1024+64,bad=1:0+32,offline=2@5000,degraded=1@2000"
  in
  match Fault.spec_of_string s with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
    check_int "seed" 7 spec.Fault.seed;
    check_int "burst" 3 spec.Fault.transient_burst_max;
    check_int "retries" 4 spec.Fault.retry_budget;
    check_int "bad ranges" 2 (List.length spec.Fault.bad_ranges);
    check_bool "offline" true (spec.Fault.offline_after = [ (2, 5000) ]);
    check_bool "degraded" true (spec.Fault.degraded_after = [ (1, 2000) ]);
    let printed = Fault.spec_to_string spec in
    match Fault.spec_of_string printed with
    | Ok again -> check_bool "round-trips" true (again = spec)
    | Error msg -> Alcotest.fail ("re-parse failed: " ^ msg))

let test_spec_default_roundtrip () =
  match Fault.spec_of_string (Fault.spec_to_string Fault.default_spec) with
  | Ok again -> check_bool "default round-trips" true (again = Fault.default_spec)
  | Error msg -> Alcotest.fail msg

let test_spec_rejects_garbage () =
  let bad s =
    match Fault.spec_of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" s)
    | Error _ -> ()
  in
  bad "transient=1.5";
  bad "burst=0";
  bad "retries=-1";
  bad "nonsense=1";
  bad "bad=0:10";
  bad "offline=xyz"

(* --- deterministic injection --- *)

let spec_all_transient =
  {
    Fault.default_spec with
    Fault.seed = 11;
    transient_p = 0.2;
    torn_p = 0.05;
    spike_p = 0.05;
    spike_us = 100.0;
  }

let test_determinism () =
  let run () =
    let dev = Fault.device (Fault.create spec_all_transient) ~id:0 in
    List.init 2000 (fun i -> Fault.write dev ~block:i)
  in
  check_bool "same spec, same sequence" true (run () = run ())

let test_substream_independence () =
  (* device 1's sequence must not depend on how much device 0 wrote *)
  let seq ~noise =
    let plane = Fault.create spec_all_transient in
    let d0 = Fault.device plane ~id:0 in
    let d1 = Fault.device plane ~id:1 in
    for i = 1 to noise do
      ignore (Fault.write d0 ~block:i)
    done;
    List.init 500 (fun i -> Fault.write d1 ~block:i)
  in
  check_bool "independent substreams" true (seq ~noise:0 = seq ~noise:777)

(* --- health transitions and bad ranges --- *)

let test_offline_transition () =
  let spec =
    { Fault.default_spec with Fault.transient_p = 0.0; offline_after = [ (0, 10) ] }
  in
  let dev = Fault.device (Fault.create spec) ~id:0 in
  (* the transition fires on the 10th I/O itself *)
  for i = 1 to 9 do
    check_bool "healthy writes succeed" true (Fault.write dev ~block:i = Fault.Written)
  done;
  check_bool "online before" true (Fault.online dev);
  check_bool "10th write fails" true (Fault.write dev ~block:10 = Fault.Failed);
  check_bool "offline after" false (Fault.online dev);
  check_bool "range probe sees offline" true (Fault.range_faulty dev ~start:0 ~len:1);
  check_int "failure counted" 1 (Fault.stats dev).Fault.failed

let test_degraded_doubles_transients () =
  let count_transients p degraded =
    let spec =
      {
        Fault.default_spec with
        Fault.transient_p = p;
        transient_burst_max = 1;
        degraded_after = (if degraded then [ (0, 0) ] else []);
      }
    in
    let dev = Fault.device (Fault.create spec) ~id:0 in
    for i = 1 to 5000 do
      ignore (Fault.write dev ~block:i)
    done;
    (Fault.stats dev).Fault.injected_transient
  in
  let healthy = count_transients 0.02 false in
  let degraded = count_transients 0.02 true in
  check_bool "degraded injects roughly twice as often" true
    (degraded > healthy + (healthy / 2))

let test_bad_range () =
  let spec =
    { Fault.default_spec with Fault.transient_p = 0.0; bad_ranges = [ (0, 100, 50) ] }
  in
  let dev = Fault.device (Fault.create spec) ~id:0 in
  check_bool "below range ok" true (Fault.write dev ~block:99 = Fault.Written);
  check_bool "in range fails" true (Fault.write dev ~block:100 = Fault.Failed);
  check_bool "end of range fails" true (Fault.write dev ~block:149 = Fault.Failed);
  check_bool "past range ok" true (Fault.write dev ~block:150 = Fault.Written);
  check_bool "probe overlap" true (Fault.range_faulty dev ~start:90 ~len:20);
  check_bool "probe disjoint" false (Fault.range_faulty dev ~start:0 ~len:100)

let test_transient_retries_survive () =
  (* burst max below the retry budget: every transient is outlived *)
  let spec = { Fault.default_spec with Fault.transient_p = 1.0 } in
  let dev = Fault.device (Fault.create spec) ~id:0 in
  for i = 1 to 200 do
    check_bool "retried to success" true (Fault.write dev ~block:i = Fault.Written)
  done;
  let st = Fault.stats dev in
  check_int "every write drew a burst" 200 st.Fault.injected_transient;
  check_int "every burst survived" 200 st.Fault.retries_ok;
  check_int "nothing failed" 0 st.Fault.failed;
  check_bool "backoff charged" true (st.Fault.penalty_us > 0.0)

(* --- the write path under an installed fault plane --- *)

let small_config ?(seed = 7) () =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Config.default_vol ~name:"vol0" ~blocks:65536 ]
    ~seed ()

let with_default_spec spec f =
  Fault.install_default spec;
  Fun.protect ~finally:Fault.uninstall_default f

let counter tel name =
  match Registry.find (Telemetry.registry tel) name with
  | Some (Registry.Counter c) -> Registry.count c
  | _ -> 0

let test_cp_under_transients () =
  (* the default profile injects transients the retry budget outlives:
     allocation never fails and the CP report carries the fault stats *)
  let tel = Telemetry.create () in
  Telemetry.with_installed tel (fun () ->
      with_default_spec Fault.default_spec (fun () ->
          let fs = Fs.create (small_config ()) in
          let vol = Fs.vol fs "vol0" in
          for offset = 0 to 4999 do
            Fs.stage_write fs ~vol ~file:1 ~offset
          done;
          let report = Fs.run_cp fs in
          check_int "all ops placed" 5000 report.Cp.blocks_allocated;
          match report.Cp.fault_totals with
          | None -> Alcotest.fail "no fault totals on a faulted system"
          | Some fs_totals ->
            check_bool "transients injected" true (fs_totals.Fault.injected_transient > 0);
            check_int "all bursts survived" fs_totals.Fault.injected_transient
              fs_totals.Fault.retries_ok;
            check_int "no write failed" 0 fs_totals.Fault.failed));
  check_bool "retries_ok counter" true (counter tel "fault.retries_ok" > 0);
  check_int "no failures counted" 0 (counter tel "fault.write_failures")

let test_bad_range_quarantines_aas () =
  (* device 0 of range 0 is entirely bad: every AA of range 0 overlaps it,
     so the allocator quarantines them all and places everything in
     range 1 — allocation still never fails *)
  let spec =
    {
      Fault.default_spec with
      Fault.transient_p = 0.0;
      bad_ranges = [ (0, 0, 8192) ];
    }
  in
  let tel = Telemetry.create () in
  Telemetry.with_installed tel (fun () ->
      with_default_spec spec (fun () ->
          let fs = Fs.create (small_config ()) in
          let vol = Fs.vol fs "vol0" in
          for offset = 0 to 4999 do
            Fs.stage_write fs ~vol ~file:1 ~offset
          done;
          let report = Fs.run_cp fs in
          check_int "all ops placed despite the bad device" 5000 report.Cp.blocks_allocated;
          (* everything landed outside the faulty range *)
          let ranges = Aggregate.ranges (Fs.aggregate fs) in
          let r1_base = ranges.(1).Aggregate.base in
          for offset = 0 to 4999 do
            match Flexvol.read_file vol ~file:1 ~offset with
            | None -> Alcotest.fail "op lost"
            | Some vvbn ->
              let pvbn = Option.get (Flexvol.pvbn_of_vvbn vol vvbn) in
              check_bool "placed in the healthy range" true (pvbn >= r1_base)
          done));
  check_bool "AAs quarantined" true (counter tel "fault.aa_quarantined" > 0)

let test_torn_ftl_pages () =
  let spec = { Fault.default_spec with Fault.transient_p = 0.0; torn_p = 1.0 } in
  let dev = Fault.device (Fault.create spec) ~id:0 in
  let ftl = Wafl_device.Ftl.create ~logical_blocks:4096 () in
  Wafl_device.Ftl.set_fault ftl (Some dev);
  Wafl_device.Ftl.write_batch ftl (List.init 64 Fun.id);
  let st = Wafl_device.Ftl.stats ftl in
  check_int "pages programmed (cost paid)" 64 st.Wafl_device.Ftl.host_pages_written;
  check_int "but none live (content garbage)" 0
    (Wafl_device.Ftl.live_pages_in ftl ~start:0 ~len:4096);
  check_int "torn counted" 64 (Fault.stats dev).Fault.torn

(* --- crash points --- *)

let test_crash_point_machinery () =
  Crash.record ();
  Crash.point "a";
  Crash.point "b";
  Crash.point "a";
  check_bool "recorded sequence" true (Crash.recorded () = [ "a"; "b"; "a" ]);
  check_int "count" 3 (Crash.count ());
  Crash.arm ~at:1;
  Crash.point "x";
  (try
     Crash.point "y";
     Alcotest.fail "armed point did not raise"
   with Crash.Crashed { point; index } ->
     check_string "crashed at" "y" point;
     check_int "at index" 1 index);
  Crash.disarm ();
  Crash.point "z" (* off again: no effect *)

let test_crash_matrix_small () =
  let r = Crash_matrix.run ~with_cleaner:true ~seed:3 ~warmup_cps:1 ~ops_per_cp:150 () in
  check_bool "points enumerated" true (List.length r.Crash_matrix.points > 5);
  check_bool "cleaner point reached" true
    (List.mem "cleaner.range_pass" r.Crash_matrix.points);
  check_bool "topaa point reached" true (List.mem "cp.topaa_write" r.Crash_matrix.points);
  (match r.Crash_matrix.violations with
  | [] -> ()
  | v :: _ -> Alcotest.fail (Format.asprintf "%a" Crash_matrix.pp_violation v));
  check_int "one run per point plus enumeration"
    (List.length r.Crash_matrix.points + 1)
    r.Crash_matrix.runs

let () =
  Alcotest.run "wafl_fault"
    [
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "default round-trip" `Quick test_spec_default_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
        ] );
      ( "injection",
        [
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "independent substreams" `Quick test_substream_independence;
          Alcotest.test_case "offline transition" `Quick test_offline_transition;
          Alcotest.test_case "degraded doubles transients" `Quick
            test_degraded_doubles_transients;
          Alcotest.test_case "bad range" `Quick test_bad_range;
          Alcotest.test_case "transients outlived by retries" `Quick
            test_transient_retries_survive;
        ] );
      ( "write path",
        [
          Alcotest.test_case "cp under transients" `Quick test_cp_under_transients;
          Alcotest.test_case "bad range quarantines AAs" `Quick
            test_bad_range_quarantines_aas;
          Alcotest.test_case "torn ftl pages" `Quick test_torn_ftl_pages;
        ] );
      ( "crash",
        [
          Alcotest.test_case "point machinery" `Quick test_crash_point_machinery;
          Alcotest.test_case "small matrix recovers clean" `Slow test_crash_matrix_small;
        ] );
    ]
