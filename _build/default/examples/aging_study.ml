(* Aging study: watch free space fragment under random overwrites (§2.2),
   see what it does to write chains and full stripes, then reclaim
   contiguity with the segment cleaner (§3.3.1).

   Run with: dune exec examples/aging_study.exe *)

open Wafl_util
open Wafl_core
open Wafl_workload

let print_aa_histogram fs =
  (* Distribution of AA free-space scores across the aggregate: the
     nonuniformity the AA cache exploits. *)
  let range = (Aggregate.ranges (Fs.aggregate fs)).(0) in
  let cap = Wafl_aa.Topology.full_aa_capacity range.Aggregate.topology in
  let buckets = Array.make 10 0 in
  Array.iteri
    (fun aa _ ->
      let score = Aggregate.aa_score_now (Fs.aggregate fs) range aa in
      let b = min 9 (score * 10 / max 1 cap) in
      buckets.(b) <- buckets.(b) + 1)
    range.Aggregate.scores;
  Printf.printf "  AA free-space histogram (0-100%% free, %d AAs):\n"
    (Array.length range.Aggregate.scores);
  Array.iteri
    (fun i count ->
      Printf.printf "    %3d-%3d%%  %s\n" (i * 10) ((i + 1) * 10) (String.make count '#'))
    buckets

let stripe_report label report =
  let full = List.fold_left (fun a d -> a + d.Cp.full_stripes) 0 report.Cp.devices in
  let partial = List.fold_left (fun a d -> a + d.Cp.partial_stripes) 0 report.Cp.devices in
  let chains = List.fold_left (fun a d -> a + d.Cp.chains) 0 report.Cp.devices in
  Printf.printf "  %-18s %4d full / %4d partial stripes, %4d write chains for %d blocks\n"
    label full partial chains report.Cp.blocks_allocated

let () =
  let raid_group =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 32768;
      aa_stripes = Some 1024;
    }
  in
  let config =
    Config.make ~raid_groups:[ raid_group ]
      ~vols:[ Config.default_vol ~name:"data" ~blocks:131072 ]
      ~seed:7 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "data" in
  let rng = Rng.split (Fs.rng fs) in

  print_endline "== young file system ==";
  let spec = { Aging.default with Aging.fill_fraction = 0.55; fragmentation_cps = 0 } in
  let working_set = Aging.fill fs vol spec in
  Printf.printf "  filled to %.0f%%; mean free run %.0f blocks\n"
    (100.0 *. Aggregate.used_fraction (Fs.aggregate fs))
    (Aging.free_space_contiguity fs);
  for i = 0 to 999 do
    Fs.stage_write fs ~vol ~file:2 ~offset:(working_set + i)
  done;
  stripe_report "sequential CP:" (Fs.run_cp fs);

  print_endline "\n== after heavy random-overwrite aging ==";
  Aging.fragment fs vol
    { spec with Aging.fragmentation_cps = 60; writes_per_cp = 2000 }
    ~working_set ~rng;
  Printf.printf "  mean free run now %.0f blocks\n" (Aging.free_space_contiguity fs);
  print_aa_histogram fs;
  let w = Random_overwrite.create fs vol ~working_set ~rng:(Rng.split rng) () in
  stripe_report "random CP:" (Random_overwrite.step w 500);

  print_endline "\n== after cleaning the four emptiest AAs ==";
  let cleaned = Cleaner.clean_fs fs ~aas_per_range:4 in
  ignore (Fs.run_cp fs);
  Printf.printf "  cleaned %d AAs, relocating %d blocks\n" cleaned.Cleaner.aas_cleaned
    cleaned.Cleaner.blocks_relocated;
  Printf.printf "  mean free run now %.0f blocks\n" (Aging.free_space_contiguity fs);
  print_aa_histogram fs;
  stripe_report "random CP:" (Random_overwrite.step w 500)
