(** Deterministic, seed-driven fault injection for the device sims.

    A {!t} (the {e plane}) is built from a {!spec} and hands out one
    {!device} handle per modeled device.  Every handle draws from its own
    {!Wafl_util.Rng} substream (split from the plane's seed in creation
    order), so a given [(spec, device id)] pair produces the same fault
    sequence on every run regardless of what other devices do.

    Device sims consult their handle on each modeled I/O via {!write}.
    The handle decides, in order:

    + {e availability} — an offline device fails everything; a degraded
      device doubles its transient-error probability;
    + {e permanent bad ranges} — writes landing in a configured bad range
      always fail (retries never help);
    + {e transient errors} — with probability [transient_p] the write
      fails for a burst of 1..[transient_burst_max] consecutive attempts.
      The retry policy is folded into the model: the device retries up to
      [retry_budget] times with exponential backoff starting at
      [retry_backoff_us]; a burst shorter than the budget succeeds
      (counted in [retries_ok]) and charges the accumulated backoff to
      the device's time penalty, otherwise the write fails;
    + {e torn writes} — with probability [torn_p] the write is
      acknowledged but the page content is garbage ([Written_torn]);
    + {e latency spikes} — with probability [spike_p] the write succeeds
      but charges an extra [spike_us] to the penalty clock.

    Everything is bookkeeping on plain records: no exceptions escape
    {!write}; callers branch on the {!write_result}. *)

type spec = {
  seed : int;
  transient_p : float;  (** per-I/O probability of a transient error *)
  transient_burst_max : int;  (** max consecutive failing attempts per error *)
  torn_p : float;  (** per-I/O probability of a torn (garbage) write *)
  spike_p : float;  (** per-I/O probability of a latency spike *)
  spike_us : float;  (** extra microseconds charged per spike *)
  retry_budget : int;  (** attempts before the device gives up *)
  retry_backoff_us : float;  (** first backoff; doubles per retry *)
  bad_ranges : (int * int * int) list;
      (** [(device, start, len)] permanently failing block ranges, in
          device-local block coordinates *)
  offline_after : (int * int) list;
      (** [(device, ios)]: the device goes {!Offline} once it has seen
          that many I/Os *)
  degraded_after : (int * int) list;
      (** [(device, ios)]: likewise for the {!Degraded} transition *)
  rot_pages : (int * int * int) list;
      (** [(store, page, gen)]: flip bits in 4 KiB page [page] of mapped
          pagestore [ps<store>] once the integrity plane's committed
          generation reaches [gen] — persisted bit-rot the CRC sidecar
          must detect as {e torn} *)
  lost_pages : (int * int * int) list;
      (** [(store, page, gen)]: revert the page to its previous
          generation's bytes at [gen] — a lost write the sidecar must
          classify as {e stale} (data matches the previous CRC) *)
}

val default_spec : spec
(** 1% transient errors in bursts of <= 2 attempts, a retry budget of 6
    with 50us initial backoff (so every transient burst is outlived by
    retries), no torn writes, spikes, bad ranges, or state transitions.
    Seed 42. *)

val spec_of_string : string -> (spec, string) result
(** Parse a comma-separated [key=value] fault spec, e.g.
    ["seed=7,transient=0.05,burst=3,torn=0.01,spike=0.02:400,retries=4,backoff=100,bad=0:1024+64,offline=2@5000,degraded=1@2000,rot=0:1,lost=0:2@2"].
    Unknown keys and malformed values yield [Error msg].  [bad], [offline],
    [degraded], [rot] and [lost] may repeat.  [rot]/[lost] take
    [STORE:PAGE\[@GEN\]]; [GEN] defaults to 1 for [rot] and 2 for [lost]
    (a lost write needs a previous generation to revert to). *)

val spec_to_string : spec -> string
(** Round-trips through {!spec_of_string}. *)

type health = Healthy | Degraded | Offline

type io_stats = {
  ios : int;  (** writes consulted *)
  injected_transient : int;  (** transient error bursts drawn *)
  retries : int;  (** individual retry attempts *)
  retries_ok : int;  (** bursts outlived by the retry budget *)
  torn : int;  (** acknowledged-but-garbage writes *)
  failed : int;  (** writes that failed permanently *)
  spikes : int;  (** latency spikes *)
  penalty_us : float;  (** accumulated backoff + spike time *)
}

val zero_stats : io_stats
val diff_stats : before:io_stats -> after:io_stats -> io_stats

type t
(** A fault plane: the spec plus the per-device handle factory. *)

type device
(** Per-device fault state: RNG substream, health, bad ranges, counters. *)

val create : spec -> t
val spec : t -> spec

val device : t -> id:int -> device
(** [device t ~id] creates the handle for device [id].  Handles must be
    created in a fixed order (the RNG substream is split off at creation),
    so call this once per device at attach time, in device-id order. *)

val device_id : device -> int
val health : device -> health
val set_health : device -> health -> unit
val online : device -> bool
val stats : device -> io_stats

type write_result =
  | Written  (** success (possibly after retries, possibly with a spike) *)
  | Written_torn  (** acknowledged, but the page content is garbage *)
  | Failed  (** permanent failure: offline, bad range, or budget exhausted *)

val write : device -> block:int -> write_result
(** Model one block write at device-local [block].  Updates the handle's
    {!io_stats} and the installed telemetry counters
    ([fault.injected_transient], [fault.retries], [fault.retries_ok],
    [fault.torn_writes], [fault.write_failures], [fault.latency_spikes],
    [fault.offline_transitions], [fault.degraded_transitions]). *)

val range_faulty : device -> start:int -> len:int -> bool
(** Allocation-time probe: does [\[start, start+len)] (device-local)
    overlap a configured permanent bad range, or is the device offline?
    Allocation-free; used by {!Wafl_core.Write_alloc} to quarantine AAs. *)

(* --- process-wide default (consulted by [Aggregate.create]) --- *)

val install_default : spec -> unit
(** Make every subsequently created aggregate attach a fault plane built
    from [spec] (one device handle per range).  This is how [--fault-spec]
    reaches experiments that build their own aggregates internally. *)

val uninstall_default : unit -> unit
val installed_default : unit -> spec option
