(* Tests for write-temperature segregation: SepBIT-style classification
   (lib/core/temperature.ml), class-routed allocation rows over shared
   claim words, wear-demoted cache scores, and the end-to-end CP plumbing
   that tags FTL batches with their stream. *)

open Wafl_bitmap
open Wafl_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cls_t : Temperature.cls Alcotest.testable =
  Alcotest.testable (Fmt.of_to_string Temperature.cls_name) ( = )

let check_cls = Alcotest.check cls_t

(* --- classification --- *)

let test_classify_fresh_and_meta () =
  let t = Temperature.create ~meta_file:7 ~classes:4 () in
  check_cls "fresh write is warm" Temperature.Warm
    (Temperature.classify t ~uid:1 ~blocks:1024 ~file:3 ~prev:None);
  check_cls "metafile override beats inference" Temperature.Meta
    (Temperature.classify t ~uid:1 ~blocks:1024 ~file:7 ~prev:(Some 5));
  check_cls "unknown birth is warm" Temperature.Warm
    (Temperature.classify t ~uid:1 ~blocks:1024 ~file:3 ~prev:(Some 5));
  check_cls "out-of-range prev is warm" Temperature.Warm
    (Temperature.classify t ~uid:1 ~blocks:1024 ~file:3 ~prev:(Some 99999));
  check_int "meta decisions counted" 1 (Temperature.classified t Temperature.Meta);
  check_int "warm decisions counted" 3 (Temperature.classified t Temperature.Warm)

let test_classify_hot_vs_cold () =
  let t = Temperature.create ~classes:4 () in
  let uid = 1 and blocks = 4096 in
  (* killed one CP after birth: lifespan 1 <= starting average (8) -> Hot *)
  Temperature.note_birth t ~uid ~blocks ~vvbn:10;
  Temperature.advance_cp t;
  check_cls "short lifespan is hot" Temperature.Hot
    (Temperature.classify t ~uid ~blocks ~file:1 ~prev:(Some 10));
  (* killed 200 CPs after birth: far beyond 4x the average -> Cold *)
  Temperature.note_birth t ~uid ~blocks ~vvbn:20;
  for _ = 1 to 200 do
    Temperature.advance_cp t
  done;
  check_cls "long lifespan is cold" Temperature.Cold
    (Temperature.classify t ~uid ~blocks ~file:1 ~prev:(Some 20));
  (match Temperature.avg_lifespan t ~uid with
  | Some avg -> check_bool "EWMA moved toward the samples" true (avg > 1.0)
  | None -> Alcotest.fail "volume should be tracked")

let test_class_slot_collapse () =
  check_int "1 class: everything slot 0" 0
    (Temperature.class_slot Temperature.Cold ~classes:1);
  check_int "2 classes: hot alone" 0 (Temperature.class_slot Temperature.Hot ~classes:2);
  check_int "2 classes: meta with the rest" 1
    (Temperature.class_slot Temperature.Meta ~classes:2);
  check_int "3 classes: warm in the middle" 1
    (Temperature.class_slot Temperature.Warm ~classes:3);
  check_int "3 classes: cold with meta" 2
    (Temperature.class_slot Temperature.Cold ~classes:3);
  check_int "4 classes: meta distinct" 3
    (Temperature.class_slot Temperature.Meta ~classes:4)

(* Steady skew must classify stably: blocks rewritten every CP keep
   reading Hot once the EWMA has seen them, and blocks rewritten every
   50 CPs never read Hot (they read Cold while the average is low). *)
let test_temperature_stability_under_skew () =
  let t = Temperature.create ~classes:4 () in
  let uid = 9 and blocks = 1000 in
  let hot = Array.init 20 Fun.id in
  let cold = Array.init 20 (fun i -> 900 + i) in
  let warmup = 60 in
  let hot_misclassified = ref 0
  and cold_hot = ref 0
  and cold_cold = ref 0 in
  for cp = 1 to 200 do
    Array.iter
      (fun v ->
        let c = Temperature.classify t ~uid ~blocks ~file:1 ~prev:(Some v) in
        if cp > warmup && c <> Temperature.Hot then incr hot_misclassified;
        Temperature.note_birth t ~uid ~blocks ~vvbn:v)
      hot;
    if cp mod 50 = 0 then
      Array.iter
        (fun v ->
          (match Temperature.classify t ~uid ~blocks ~file:1 ~prev:(Some v) with
          | Temperature.Hot -> if cp > warmup then incr cold_hot
          | Temperature.Cold -> if cp > warmup then incr cold_cold
          | Temperature.Warm | Temperature.Meta -> ());
          Temperature.note_birth t ~uid ~blocks ~vvbn:v)
        cold;
    Temperature.advance_cp t
  done;
  check_int "every-CP rewrites always classify hot after warmup" 0 !hot_misclassified;
  check_int "slow rewrites never classify hot" 0 !cold_hot;
  check_bool "slow rewrites do classify cold" true (!cold_cold > 0)

(* --- wear-demoted cache scores --- *)

let test_wear_adjusted_scoring () =
  let q = Wafl_aa.Score.wear_quantum in
  check_int "bias 0 is identity" 500
    (Wafl_aa.Score.wear_adjusted ~bias:0 ~wear:(10 * q) ~min_wear:0 ~score:500);
  check_int "at the device minimum nothing is demoted" 500
    (Wafl_aa.Score.wear_adjusted ~bias:2 ~wear:(3 * q) ~min_wear:(3 * q) ~score:500);
  check_int "one quantum above minimum demotes by bias" 498
    (Wafl_aa.Score.wear_adjusted ~bias:2 ~wear:q ~min_wear:0 ~score:500);
  check_int "positive scores never demote below 1" 1
    (Wafl_aa.Score.wear_adjusted ~bias:100 ~wear:(50 * q) ~min_wear:0 ~score:5)

(* --- class-routed allocation rows --- *)

(* Byte-aligned geometry (as in test_allocpar) so the parallel front-end's
   static gate opens, with 4 temperature classes configured. *)
let routed_config =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Config.default_vol ~name:"vol0" ~blocks:65536 ]
    ~aggregate_policy:Config.Best_aa
    ~streams:{ Config.temp_classes = 4; ssd_streams = 1; wear_bias = 0; meta_file = None }
    ~seed:7 ()

(* Within one CP, no two class rows may ever fill the same AA: each row
   claims its AAs through the shared per-AA owner words. *)
let test_routed_rows_disjoint_aas () =
  let fs = Fs.create routed_config in
  let wa = Fs.write_alloc fs in
  check_int "temp classes" 4 (Write_alloc.temp_classes wa);
  let agg = Fs.aggregate fs in
  let dst = Array.make 2048 0 in
  let aas_of_cls c =
    let n = Write_alloc.allocate_pvbns_into ~cls:c wa ~dst 2048 in
    check_bool "row allocated" true (n > 0);
    let s = Hashtbl.create 16 in
    for i = 0 to n - 1 do
      let r = Aggregate.range_of_pvbn agg dst.(i) in
      let local = Aggregate.to_local r dst.(i) in
      Hashtbl.replace s
        (r.Aggregate.index, Wafl_aa.Topology.aa_of_vbn r.Aggregate.topology local)
        ()
    done;
    s
  in
  let sets = List.init 4 aas_of_cls in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then
            Hashtbl.iter
              (fun key () ->
                check_bool
                  (Printf.sprintf "AA shared by class %d and %d" i j)
                  false (Hashtbl.mem sj key))
              si)
        sets)
    sets

(* Routed fill to capacity: cycling the four class rows must drain every
   allocatable block exactly once — serial and at every pool degree — and
   leave the activemap bit-identical to the serial run.  Blocks left in a
   flushed shard ring stay free but their AA stays claimed by its row, so
   a routed fill legitimately needs CP boundaries to finish: when every
   row runs dry, cp_finish refiles the taken AAs and the next pass
   reaches the remainder (exactly how the real system operates). *)
let fill_routed fs =
  let wa = Fs.write_alloc fs in
  let agg = Fs.aggregate fs in
  let dst = Array.make 4096 0 in
  let out = ref [] in
  let drain () =
    let chunks0 = List.length !out in
    let rec go c dry =
      if dry < 4 then begin
        let got = Write_alloc.allocate_pvbns_into ~cls:(c mod 4) wa ~dst 4096 in
        Array.iter
          (fun s -> check_int "minor words per shard" 0 s.Write_alloc.ps_minor_words)
          (Write_alloc.last_par_stats wa);
        if got > 0 then begin
          out := Array.sub dst 0 got :: !out;
          go (c + 1) 0
        end
        else go (c + 1) (dry + 1)
      end
    in
    go 0 0;
    List.length !out > chunks0
  in
  let rec loop () =
    let progressed = drain () in
    if Aggregate.free_blocks agg > 0 && progressed then begin
      Write_alloc.cp_finish wa;
      loop ()
    end
  in
  loop ();
  Array.concat (List.rev !out)

let agg_bitmap fs = Metafile.snapshot (Aggregate.metafile (Fs.aggregate fs))

let check_all_distinct label pvbns =
  let sorted = Array.copy pvbns in
  Array.sort compare sorted;
  let dup = ref false in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then dup := true
  done;
  check_bool (label ^ ": no pvbn handed out twice") false !dup

let test_routed_fill_bit_identical () =
  let fs_s = Fs.create routed_config in
  let pv_s = fill_routed fs_s in
  check_int "serial routed fill drains the aggregate" 0
    (Aggregate.free_blocks (Fs.aggregate fs_s));
  check_all_distinct "serial" pv_s;
  let want = agg_bitmap fs_s in
  List.iter
    (fun jobs ->
      Write_alloc.install_alloc_pool ~jobs;
      Fun.protect ~finally:Write_alloc.uninstall_alloc_pool (fun () ->
          let fs = Fs.create routed_config in
          let pv = fill_routed fs in
          let label = Printf.sprintf "jobs=%d" jobs in
          check_int (label ^ ": same blocks handed out") (Array.length pv_s)
            (Array.length pv);
          check_all_distinct label pv;
          check_int
            (label ^ ": routed fill drains the aggregate")
            0
            (Aggregate.free_blocks (Fs.aggregate fs));
          check_bool
            (label ^ ": final bitmap identical to serial")
            true
            (Bitmap.equal want (agg_bitmap fs))))
    [ 2; 4; 8 ]

(* --- end to end: classes to FTL streams through real CPs --- *)

let test_streams_end_to_end () =
  let profile =
    { Wafl_device.Profile.default_ssd with
      Wafl_device.Profile.erase_block_blocks = 64;
      overprovision = 0.1
    }
  in
  let rg =
    {
      Config.media = Config.Ssd profile;
      data_devices = 2;
      parity_devices = 1;
      device_blocks = 4096;
      aa_stripes = Some 32;
    }
  in
  let config =
    Config.make ~raid_groups:[ rg ]
      ~vols:[ Config.default_vol ~name:"v" ~blocks:8192 ]
      ~aggregate_policy:Config.Best_aa
      ~streams:{ Config.temp_classes = 4; ssd_streams = 4; wear_bias = 2; meta_file = Some 0 }
      ~seed:42 ()
  in
  let fs = Fs.create config in
  let vol = Fs.vol fs "v" in
  let aspec =
    { Wafl_workload.Aging.fill_fraction = 0.5; fragmentation_cps = 0; writes_per_cp = 0; file = 1 }
  in
  let working_set = Wafl_workload.Aging.fill fs vol aspec in
  let churn =
    Wafl_workload.Random_overwrite.create fs vol ~working_set ~blocks_per_op:1 ~file:1
      ~hot_fraction:0.1 ~hot_weight:0.9 ~rng:(Wafl_util.Rng.create ~seed:11) ()
  in
  for cp = 0 to 29 do
    (* metadata trickle on file 0, routed to the Meta class/stream *)
    for k = 0 to 7 do
      Fs.stage_write fs ~vol ~file:0 ~offset:(((cp * 8) + k) mod 128)
    done;
    ignore (Wafl_workload.Random_overwrite.step churn 200)
  done;
  (match Fs.temperature fs with
  | None -> Alcotest.fail "temperature tracking should be on"
  | Some t ->
    check_int "4 classes configured" 4 (Temperature.classes t);
    check_bool "hot decisions seen" true (Temperature.classified t Temperature.Hot > 0);
    check_bool "meta decisions seen" true (Temperature.classified t Temperature.Meta > 0));
  let ftl =
    match (Aggregate.ranges (Fs.aggregate fs)).(0).Aggregate.device with
    | Aggregate.Ssd_sim f -> f
    | _ -> Alcotest.fail "SSD range expected"
  in
  check_int "4 FTL streams" 4 (Wafl_device.Ftl.streams ftl);
  let active =
    List.length
      (List.filter
         (fun s ->
           (Wafl_device.Ftl.stream_stats ftl s).Wafl_device.Ftl.host_pages_written > 0)
         (List.init 4 Fun.id))
  in
  check_bool "traffic reaches more than one stream" true (active >= 2);
  let _, max_wear = Wafl_device.Ftl.wear_spread ftl in
  check_bool "erases recorded as wear" true (max_wear >= 1)

let () =
  Alcotest.run "wafl_streams"
    [
      ( "temperature",
        [
          Alcotest.test_case "fresh and meta" `Quick test_classify_fresh_and_meta;
          Alcotest.test_case "hot vs cold" `Quick test_classify_hot_vs_cold;
          Alcotest.test_case "class slots" `Quick test_class_slot_collapse;
          Alcotest.test_case "stability under skew" `Quick
            test_temperature_stability_under_skew;
        ] );
      ( "scoring",
        [ Alcotest.test_case "wear-adjusted" `Quick test_wear_adjusted_scoring ] );
      ( "routing",
        [
          Alcotest.test_case "class rows take disjoint AAs" `Quick
            test_routed_rows_disjoint_aas;
          Alcotest.test_case "routed fill bit-identical at 1-8 domains" `Quick
            test_routed_fill_bit_identical;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "classes reach FTL streams" `Quick test_streams_end_to_end ] );
    ]
