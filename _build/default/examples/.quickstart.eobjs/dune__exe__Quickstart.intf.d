examples/quickstart.mli:
