(** JSON and CSV renderings of a telemetry instance.  Self-contained (no
    external JSON dependency); output is deterministic: metrics in
    registration order, snapshots and events oldest first. *)

val metrics_json : Telemetry.t -> string
(** One JSON object:
    {v
    { "counters":   { name: int, ... },
      "gauges":     { name: float, ... },
      "histograms": { name: { "observations": int, "sum": int,
                              "buckets": [ { "ge": int, "count": int } ] } },
      "snapshots":  [ { "seq": int, "label": str, <field>: <value>, ... } ],
      "spans":      { name: { "count": int, "total_ns": int, "open": int,
                              "parent": str|null } },
      "timeseries": { "columns": [str], "appended": int, "retained": int },
      "trace":      { "emitted": int, "retained": int } }
    v}
    Only span kinds that fired appear; the time-series rows themselves are
    exported separately by {!timeseries_json}/{!timeseries_csv}. *)

val metrics_csv : Telemetry.t -> string
(** [kind,name,value] rows; histograms flatten to one row per populated
    bucket plus [observations]/[sum] rows, fired span kinds to
    [.count]/[.total_ns]/[.open] rows. *)

val metrics_prom : Telemetry.t -> string
(** Prometheus text exposition (format 0.0.4).  Dotted registry names
    become [wafl_]-prefixed underscore names with [# TYPE] lines;
    registry histograms render cumulative [_bucket{le=...}]/[_sum]/
    [_count] series; fired spans render [_count]/[_total_ns] counters.
    When the instance carries a latency recorder, per-(op, volume)
    latency histograms export as [wafl_op_latency_ms_bucket{op=,vol=,le=}]
    (le in milliseconds) plus headline p50/p99/p999 quantile gauges. *)

val timeseries_json : Telemetry.t -> string
(** The recorded per-CP series:
    {v
    { "columns": [str], "appended": int, "retained": int,
      "rows": [ [num|null, ...], ... ] }
    v}
    Cells print so that parsing them back yields the recorded float
    exactly (non-finite cells become [null]). *)

val timeseries_csv : Telemetry.t -> string
(** Header row of column names, then one row per retained sample, oldest
    first.  Cells round-trip exactly (non-finite cells print as [nan]). *)

val trace_csv : Telemetry.t -> string
(** Retained events, one row each, with a fixed header.  Columns that do
    not apply to an event kind are left empty. *)

val trace_json : Telemetry.t -> string
(** JSON array of event objects ([{"event": ..., "cp": ..., ...}]). *)
