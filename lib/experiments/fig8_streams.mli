(** Figure 8 ablation, extended: how much of the SSD write-amplification
    win is AA sizing and how much is write-temperature segregation.

    Three variants on the aged all-SSD rig (85% full, then skewed 4KiB
    random overwrites — 90% of writes on 2% of the working set, plus a
    metadata trickle on a dedicated file):

    - HDD-sized AA, one FTL stream (the historical baseline);
    - erase-block AA, one stream (the paper's fix — WA 1.46 in fig 8);
    - erase-block AA with 4 temperature classes routed to 4 FTL streams
      and wear-biased AA scoring (this repo's extension).

    Segregation should land WA below both the unsegregated erase-block
    figure and the paper's 1.46, with hot streams absorbing most erases. *)

type variant = Small_aa | Large_aa | Large_aa_segregated

val variant_name : variant -> string

type stream_row = {
  stream : int;
  host : int;
  device : int;
  relocated : int;
  erases : int;
  wa : float;
}

type result = {
  variant : variant;
  aa_stripes : int;
  spec : Wafl_core.Config.stream_spec;
  curve : Wafl_sim.Load.curve;
  write_amp : float;
  per_stream : stream_row list;
  wear_min : int;
  wear_max : int;
}

val measurement : Common.scale -> int * int
(** (checkpoints, overwrites per checkpoint) measured after aging. *)

val run_variant : Common.scale -> variant -> result
val run : ?scale:Common.scale -> unit -> result list
val find : result list -> variant -> result

val print : ?scale:Common.scale -> result list -> unit
(** [scale] (default [Quick]) picks the gate: at quick scale the
    segregated variant must land below both the unsegregated one and the
    paper's 1.46; at full scale only the segregation win is gated (the
    FTL's worst-case relocation pricing inflates every absolute full-scale
    fig-8 WA figure — see EXPERIMENTS.md). *)
