(** Full/partial stripe classification and parity I/O cost.

    A full stripe write provides every data block of a stripe, so parity is
    computed without reads; a partial stripe write forces RAID to read the
    missing data (or old data + parity) first (§2.3).  Given the set of VBNs
    written in one flush, this module classifies stripes and derives the
    device I/O bill. *)

type classification = {
  full_stripes : int;
  partial_stripes : int;
  blocks_in_full : int;     (** data blocks written as part of full stripes *)
  blocks_in_partial : int;
  parity_writes : int;      (** parity blocks written: stripes * parity_devices *)
  extra_reads : int;        (** blocks read to compute parity for partial stripes *)
}

val classify : Geometry.t -> vbns:int list -> classification
(** Classify one flush's writes.  Duplicate VBNs are counted once.  For a
    partial stripe with [k < data_devices] new blocks, parity is computed by
    read-modify-write: read the [k] old data blocks plus the
    [parity_devices] old parity blocks ([k + parity] extra reads), then
    write [k + parity] blocks. *)

val fullness_ratio : classification -> float
(** Fraction of written data blocks that were part of full stripes;
    0 when nothing was written. *)

val total_device_writes : Geometry.t -> classification -> int
(** Data + parity blocks physically written. *)

val total_device_reads : classification -> int

val pp : Format.formatter -> classification -> unit
