open Wafl_util
open Wafl_bitmap
open Wafl_aa
open Wafl_aacache
open Wafl_telemetry
module Par = Wafl_par.Par

(* Below this AA capacity a sharded harvest's chunk setup costs more than
   the word loop it spreads out; Quick-scale AAs (4096 blocks) stay on the
   serial kernel, Full-scale AAs (16384) shard. *)
let min_sharded_capacity = 8192

(* Per-range (or per-volume) allocation cursor: a preallocated ring holding
   the free VBNs of the AA currently being filled (harvested word-at-a-time,
   consumed front to back), plus the AAs taken since the last CP.  The ring
   is sized to a full AA once, at cursor creation, so the steady-state
   pick -> harvest -> allocate loop allocates no per-block heap words.

   Taken AAs live in a flat id array (an AA is taken at most once per CP —
   the claim word filters re-picks), and every take claims the AA in
   [owners]: range cursors alias the range's claim array so the parallel
   front-end and the serial path see each other's ownership; volume cursors
   get a private array (volumes have no concurrent writers, the claim only
   carries the taken-at-most-once invariant). *)
type cursor = {
  mutable ring : int array;       (* harvested free VBNs; [head, len) live *)
  mutable head : int;
  mutable len : int;
  mutable ring_aa : int;          (* the AA the live entries belong to *)
  mutable ring_epoch : int;       (* CP epoch the live entries were harvested in *)
  mutable taken_list : int array; (* AAs checked out of the cache this CP *)
  mutable n_taken : int;
  owners : int Atomic.t array;    (* per-AA claim word (see Aggregate.claim_aa) *)
  quarantined : (int, unit) Hashtbl.t;  (* AAs overlapping device bad ranges *)
  mutable scan_pos : int;         (* First_fit scan position *)
}

type par_slot_stats = {
  ps_allocated : int;
  ps_steals : int;
  ps_high_water : int;
  ps_minor_words : int;
}

type t = {
  aggregate : Aggregate.t;
  rng : Rng.t;
  classes : int;                          (* temperature routing slots (>= 1) *)
  cursors : cursor array array;           (* [class][range]; rows share owners *)
  mutable vols : (Flexvol.t * cursor) list;
  mutable vol_slots : cursor option array;  (* indexed by Flexvol.uid *)
  mutable epoch : int;                    (* bumped at every cp_finish *)
  words : int ref;                        (* cumulative 32-bit bitmap words read *)
  mutable harvested : int;                (* cumulative VBNs harvested into rings *)
  elig : int array;                       (* scratch: eligible range indices *)
  weight : int array;                     (* scratch: weight per eligible entry *)
  mutable shards : int array array;       (* harvest-kernel scratch (lazy) *)
  mutable alloc_shards : Alloc_shard.t array;  (* per-domain front-end shards *)
  pick_mutex : Mutex.t;                   (* serialises cache picks across domains *)
  mutable used_par : bool;                (* a parallel window ran this epoch *)
  mutable par_capable : int;              (* -1 unknown, 0 no, 1 yes (cached) *)
  mutable last_par : par_slot_stats array;
  mutable claim_conflicts : int;
  mutable phys_taken : int;
  mutable phys_score_sum : int;
  mutable virt_taken : int;
  mutable virt_score_sum : int;
  mutable candidates_scanned : int;
}

let new_cursor ~capacity ~owners =
  {
    ring = Array.make (max 1 capacity) 0;
    head = 0;
    len = 0;
    ring_aa = 0;
    ring_epoch = 0;
    taken_list = Array.make 16 0;
    n_taken = 0;
    owners;
    quarantined = Hashtbl.create 8;
    scan_pos = 0;
  }

let push_taken cursor aa =
  if cursor.n_taken = Array.length cursor.taken_list then begin
    let bigger = Array.make (2 * Array.length cursor.taken_list) 0 in
    Array.blit cursor.taken_list 0 bigger 0 cursor.n_taken;
    cursor.taken_list <- bigger
  end;
  cursor.taken_list.(cursor.n_taken) <- aa;
  cursor.n_taken <- cursor.n_taken + 1

let create aggregate ~rng =
  let ranges = Aggregate.ranges aggregate in
  let classes =
    (Aggregate.config aggregate).Config.streams.Config.temp_classes
  in
  {
    aggregate;
    rng;
    classes;
    (* Every class row aliases the range's claim array, so two classes can
       never check out the same AA within a CP — segregation falls out of
       the same owner words the multi-writer front-end uses. *)
    cursors =
      Array.init classes (fun _ ->
          Array.map
            (fun (r : Aggregate.range) ->
              new_cursor
                ~capacity:(Topology.full_aa_capacity r.Aggregate.topology)
                ~owners:r.Aggregate.owners)
            ranges);
    vols = [];
    vol_slots = Array.make 8 None;
    epoch = 0;
    words = ref 0;
    harvested = 0;
    elig = Array.make (Array.length ranges) 0;
    weight = Array.make (Array.length ranges) 0;
    shards = [||];
    alloc_shards = [||];
    pick_mutex = Mutex.create ();
    used_par = false;
    par_capable = -1;
    last_par = [||];
    claim_conflicts = 0;
    phys_taken = 0;
    phys_score_sum = 0;
    virt_taken = 0;
    virt_score_sum = 0;
    candidates_scanned = 0;
  }

let aggregate t = t.aggregate

(* O(1), option- and closure-free on the hit path: volume cursors sit under
   the zero-allocation VVBN take path, and the slot array is indexed by the
   volume's process-wide dense uid. *)
let rec vol_cursor t vol =
  let uid = Flexvol.uid vol in
  if uid < Array.length t.vol_slots then begin
    match Array.unsafe_get t.vol_slots uid with
    | Some c -> c
    | None ->
      let topology = Flexvol.topology vol in
      let c =
        new_cursor
          ~capacity:(Topology.full_aa_capacity topology)
          ~owners:
            (Array.init (Topology.aa_count topology) (fun _ ->
                 Atomic.make Aggregate.no_owner))
      in
      t.vol_slots.(uid) <- Some c;
      t.vols <- (vol, c) :: t.vols;
      c
  end
  else begin
    let bigger =
      Array.make (max (uid + 1) (2 * Array.length t.vol_slots)) None
    in
    Array.blit t.vol_slots 0 bigger 0 (Array.length t.vol_slots);
    t.vol_slots <- bigger;
    vol_cursor t vol
  end

let register_vol t vol = ignore (vol_cursor t vol)

(* Pick the next AA id for a space with [n_aas] AAs under [policy].
   [free_of aa] recomputes the AA's current free count (used by the
   cacheless policies).  [space] labels the pick in the telemetry trace
   (range index, or -1 for a FlexVol); a cache-backed pick is traced by the
   cache itself.  [owner] is the claim id a Best_aa take is registered
   under (serial cursors claim as 0, shard c as c+1).  Returns
   (aa, score-at-take) or None. *)
let pick_aa t cursor ~policy ~space ~cache ~n_aas ~free_of ~owner =
  match (policy : Config.allocation_policy) with
  | Config.Best_aa -> (
    match cache with
    | None -> None
    | Some c ->
      (* Skip over empty-scored AAs; bounded so a drained cache terminates.
         The claim-aware take skips AAs another cursor or domain owns, and
         the CAS right after makes the ownership authoritative — a lost
         race (counted, structurally impossible while picks are serialised
         by the pick mutex) just retries. *)
      let keep aa = Atomic.get cursor.owners.(aa) = Aggregate.no_owner in
      let rec try_take attempts =
        if attempts = 0 then None
        else begin
          match Cache.take_best_filtered c ~keep with
          | None -> None
          | Some (aa, score) ->
            if Atomic.compare_and_set cursor.owners.(aa) Aggregate.no_owner owner
            then begin
              push_taken cursor aa;
              if score > 0 then Some (aa, score) else try_take (attempts - 1)
            end
            else begin
              t.claim_conflicts <- t.claim_conflicts + 1;
              Telemetry.incr "write_alloc.claim_conflicts";
              try_take (attempts - 1)
            end
        end
      in
      try_take 8)
  | Config.Random_aa ->
    (* The §4.1 baseline: uniformly random AA, regardless of emptiness. *)
    let rec try_pick attempts =
      if attempts = 0 then None
      else begin
        let aa = Rng.int t.rng n_aas in
        let free = free_of aa in
        if free > 0 then begin
          Telemetry.trace_aa_pick ~space ~aa ~score:free;
          Some (aa, free)
        end
        else try_pick (attempts - 1)
      end
    in
    try_pick 64
  | Config.First_fit ->
    let rec scan steps pos =
      if steps > n_aas then None
      else begin
        let free = free_of pos in
        if free > 0 then begin
          cursor.scan_pos <- (pos + 1) mod n_aas;
          Telemetry.trace_aa_pick ~space ~aa:pos ~score:free;
          Some (pos, free)
        end
        else scan (steps + 1) ((pos + 1) mod n_aas)
      end
    in
    scan 0 cursor.scan_pos

let note_phys_take t score =
  t.phys_taken <- t.phys_taken + 1;
  t.phys_score_sum <- t.phys_score_sum + score

let note_virt_take t score =
  t.virt_taken <- t.virt_taken + 1;
  t.virt_score_sum <- t.virt_score_sum + score

let note_harvest t ~words0 ~count =
  t.harvested <- t.harvested + count;
  Telemetry.add "write_alloc.words_scanned" (!(t.words) - words0);
  Telemetry.add "write_alloc.vbns_harvested" count;
  Telemetry.max_gauge "write_alloc.ring_high_water" (float_of_int count)

(* Drop ring entries that predate the last CP boundary and have since been
   allocated: CP-external writers (mount, aging, repair) may touch the
   bitmap between CPs.  Within one epoch the ring needs no re-check —
   entries are free at harvest, mid-CP frees only queue (the bitmap bit
   stays set until commit), and every allocation drains through this
   cursor — which is what lets the consume path skip the per-block
   [is_allocated] probe the list-based queue paid. *)
let revalidate t cursor mf =
  if cursor.ring_epoch <> t.epoch then begin
    cursor.ring_epoch <- t.epoch;
    let rec compact i k =
      if i >= cursor.len then k
      else begin
        let v = cursor.ring.(i) in
        if Metafile.is_allocated mf v then compact (i + 1) k
        else begin
          cursor.ring.(k) <- v;
          compact (i + 1) (k + 1)
        end
      end
    in
    let live = compact cursor.head 0 in
    cursor.head <- 0;
    cursor.len <- live
  end

(* Does the AA (its range-local extents) overlap a permanent bad range of
   the range's fault device?  Only called with a fault handle attached. *)
let aa_overlaps_fault (range : Aggregate.range) dev aa =
  List.exists
    (fun e ->
      Wafl_fault.Fault.range_faulty dev ~start:(Wafl_block.Extent.start e)
        ~len:(Wafl_block.Extent.len e))
    (Topology.extents_of_aa range.Aggregate.topology aa)

(* Refill a range cursor's ring from the next AA; false when no AA with
   free blocks is available.  A pick can harvest zero blocks even with a
   positive cached score: a ring that survived the last CP may have already
   consumed the AA's blocks that the CP re-filed it with.  Such an AA is
   simply spent — retry with the next pick.

   With a fault device attached, an AA overlapping a permanent bad range is
   quarantined instead of harvested: it stays claimed and taken (so a
   re-pick this CP is impossible) but the quarantine set keeps cp_finish
   from ever re-filing it, and the pick retries.  Quarantine retries are
   bounded so the cacheless policies (which pick by free count and cannot
   learn) give up instead of spinning on an all-bad range. *)
(* Per-domain scratch rings for the sharded harvest, grown to the largest
   (jobs, capacity) seen.  Refill is off the consume window, so sizing (and
   the pool dispatch below) may allocate; the per-block loops inside the
   harvest kernels still do not. *)
let ensure_shards t ~jobs ~capacity =
  if
    Array.length t.shards < jobs
    || (Array.length t.shards > 0 && Array.length t.shards.(0) < capacity)
  then t.shards <- Array.init jobs (fun _ -> Array.make capacity 0);
  t.shards

(* Harvest an AA into the cursor's ring: serial kernel for small AAs (or
   without a pool), the pool-sharded kernel — bit-identical ring contents,
   see {!Aggregate.harvest_free_of_aa_sharded} — for large ones. *)
let harvest_range t range aa ~(cursor : cursor) =
  let capacity = Array.length cursor.ring in
  match Par.resolve None with
  | Some p when Par.jobs p > 1 && capacity >= min_sharded_capacity ->
    let shards = ensure_shards t ~jobs:(Par.jobs p) ~capacity in
    Aggregate.harvest_free_of_aa_sharded p t.aggregate range aa ~shards ~dst:cursor.ring
      ~words:t.words
  | _ -> Aggregate.harvest_free_of_aa t.aggregate range aa ~dst:cursor.ring ~words:t.words

let rec refill_range_guarded t range cursor qbudget =
  (* Lazy-mount first touch: a stale range materializes its exact scores
     and cache here, before the pick trusts either. *)
  Rebuild.touch_range t.aggregate range;
  let policy = (Aggregate.config t.aggregate).Config.aggregate_policy in
  Telemetry.span_enter Span.Pick;
  let picked =
    pick_aa t cursor ~policy ~space:range.Aggregate.index ~cache:range.Aggregate.cache
      ~n_aas:(Topology.aa_count range.Aggregate.topology)
      ~free_of:(fun aa -> Aggregate.aa_score_now t.aggregate range aa)
      ~owner:0
  in
  Telemetry.span_exit Span.Pick;
  match picked with
  | None -> false
  | Some (aa, score) ->
    let bad =
      match range.Aggregate.fault with
      | Some dev -> aa_overlaps_fault range dev aa
      | None -> false
    in
    if bad then begin
      if qbudget = 0 then false
      else begin
        Hashtbl.replace cursor.quarantined aa ();
        Telemetry.incr "fault.aa_quarantined";
        refill_range_guarded t range cursor (qbudget - 1)
      end
    end
    else begin
      note_phys_take t score;
      t.candidates_scanned <-
        t.candidates_scanned + Topology.aa_capacity range.Aggregate.topology aa;
      let words0 = !(t.words) in
      Telemetry.span_enter Span.Harvest;
      let count = harvest_range t range aa ~cursor in
      Telemetry.span_exit Span.Harvest;
      cursor.head <- 0;
      cursor.len <- count;
      cursor.ring_aa <- aa;
      cursor.ring_epoch <- t.epoch;
      note_harvest t ~words0 ~count;
      count > 0 || refill_range_guarded t range cursor qbudget
    end

let refill_range t range cursor =
  match range.Aggregate.fault with
  | Some dev when not (Wafl_fault.Fault.online dev) -> false
  | _ -> refill_range_guarded t range cursor 64

(* The ring-pop loop, top-level so the steady-state path allocates no
   closure.  Pops need no [is_allocated] recheck (see [revalidate]). *)
let rec take_loop t range cursor dst pos want =
  if want = 0 then pos
  else if cursor.head < cursor.len then begin
    let pvbn = cursor.ring.(cursor.head) in
    cursor.head <- cursor.head + 1;
    Aggregate.allocate_harvested t.aggregate range ~aa:cursor.ring_aa ~pvbn;
    dst.(pos) <- pvbn;
    take_loop t range cursor dst (pos + 1) (want - 1)
  end
  else if refill_range t range cursor then take_loop t range cursor dst pos want
  else pos

(* Take up to [want] allocatable PVBNs from one range into [dst] at [pos];
   returns the new fill position.  Allocation-free while the ring lasts. *)
let take_from_range_into t range cursor ~dst ~pos want =
  revalidate t cursor (Aggregate.metafile t.aggregate);
  take_loop t range cursor dst pos want

let rec array_max a i best =
  if i >= Array.length a then best else array_max a (i + 1) (if a.(i) > best then a.(i) else best)

let best_score_of_range (range : Aggregate.range) =
  match range.Aggregate.fault with
  | Some dev when not (Wafl_fault.Fault.online dev) ->
    (* an offline device offers nothing, whatever its cache says *)
    0
  | _ -> (
    match range.Aggregate.cache with
    | Some c -> Cache.best_score c
    | None ->
      (* cacheless: use the true best score so throttling still works *)
      array_max range.Aggregate.scores 0 0)

(* The fan-out stages of the serial [allocate_pvbns_into], top-level
   (closure-free): the whole call must allocate nothing when served from
   rings.  Fill positions are absolute ([pos0] is the caller's base), so
   the parallel front-end can reuse the serial path for its shortfall. *)

let rec filter_elig t ranges min_score i m =
  if i >= Array.length ranges then m
  else if best_score_of_range ranges.(i) >= min_score then begin
    t.elig.(m) <- i;
    filter_elig t ranges min_score (i + 1) (m + 1)
  end
  else filter_elig t ranges min_score (i + 1) m

(* Weight each range by its best AA score: emptier groups get a larger
   share of the CP's blocks (§4.2).  Weights are computed once per call —
   not re-derived every mop-up round. *)
let rec weigh_elig t ranges m k total =
  if k >= m then total
  else begin
    let w = max 1 (best_score_of_range ranges.(t.elig.(k))) in
    t.weight.(k) <- w;
    weigh_elig t ranges m (k + 1) (total + w)
  end

let rec take_shares t ranges row dst n m total_weight k got =
  if k >= m then got
  else begin
    let share = n * t.weight.(k) / total_weight in
    let got =
      if share > 0 then begin
        let i = t.elig.(k) in
        take_from_range_into t ranges.(i) row.(i) ~dst ~pos:got share
      end
      else got
    in
    take_shares t ranges row dst n m total_weight (k + 1) got
  end

(* Rounding remainder and any shortfall: round-robin over eligible ranges
   until satisfied or nothing more is allocatable.  Progress is the fill
   position itself — no per-round list lengths. *)
let rec mop_round t ranges row dst stop m k got =
  if k >= m || got >= stop then got
  else begin
    let i = t.elig.(k) in
    mop_round t ranges row dst stop m (k + 1)
      (take_from_range_into t ranges.(i) row.(i) ~dst ~pos:got (min 64 (stop - got)))
  end

let rec mop_up t ranges row dst stop m got =
  if got >= stop then got
  else begin
    let got' = mop_round t ranges row dst stop m 0 got in
    if got' > got then mop_up t ranges row dst stop m got' else got'
  end

(* Serial allocation core for one class row, filling
   [dst.(pos0 .. pos0+n-1)]; returns the absolute fill position reached. *)
let allocate_pvbns_serial t ~row ~dst ~pos0 n =
  let ranges = Aggregate.ranges t.aggregate in
  let nr = Array.length ranges in
  let threshold = (Aggregate.config t.aggregate).Config.rg_score_threshold in
  (* Eligible ranges into the preallocated [elig] scratch. *)
  let m =
    match threshold with
    | None ->
      for i = 0 to nr - 1 do
        t.elig.(i) <- i
      done;
      nr
    | Some min_score ->
      let m = filter_elig t ranges min_score 0 0 in
      if m > 0 then m
      else begin
        (* never stall entirely: fall back to every range (§3.3.1) *)
        for i = 0 to nr - 1 do
          t.elig.(i) <- i
        done;
        nr
      end
  in
  let total_weight = weigh_elig t ranges m 0 0 in
  let after_shares = take_shares t ranges row dst n m total_weight 0 pos0 in
  mop_up t ranges row dst (pos0 + n) m after_shares

(* ------------------------------------------------------------------ *)
(* Concurrent allocation front-end (the multi-writer path).            *)

(* The pool driving parallel allocation windows, installed process-wide
   (mirrors Par.install): waflsim's [--alloc-domains N].  Kept separate
   from the scan pool so scan and allocation parallelism compose. *)
let alloc_pool : Par.t option ref = ref None

let uninstall_alloc_pool () =
  match !alloc_pool with
  | None -> ()
  | Some p ->
    alloc_pool := None;
    Par.shutdown p

let install_alloc_pool ~jobs =
  uninstall_alloc_pool ();
  if jobs > 1 then alloc_pool := Some (Par.create ~jobs)

let alloc_pool_jobs () = match !alloc_pool with Some p -> Par.jobs p | None -> 1

(* Concurrent word-at-a-time bitmap mutation is only safe when no two AAs
   can share a bitmap byte: every extent of every AA must start and end on
   a byte boundary in aggregate PVBN space.  Static per-aggregate property;
   computed once and cached. *)
let compute_par_capable t =
  Array.for_all
    (fun (r : Aggregate.range) ->
      let n = Topology.aa_count r.Aggregate.topology in
      let ok = ref true in
      for aa = 0 to n - 1 do
        List.iter
          (fun e ->
            if
              (r.Aggregate.base + Wafl_block.Extent.start e) land 7 <> 0
              || Wafl_block.Extent.len e land 7 <> 0
            then ok := false)
          (Topology.extents_of_aa r.Aggregate.topology aa)
      done;
      !ok)
    (Aggregate.ranges t.aggregate)

let parallel_capable t =
  if t.par_capable < 0 then t.par_capable <- (if compute_par_capable t then 1 else 0);
  t.par_capable = 1

(* Grow the per-domain shard set; shard [c] claims AAs as owner [c + 1]
   (0 is the serial cursors' id). *)
let ensure_alloc_shards t jobs =
  if Array.length t.alloc_shards < jobs then begin
    let ranges = Aggregate.ranges t.aggregate in
    let capacity =
      Array.fold_left
        (fun acc (r : Aggregate.range) ->
          max acc (Topology.full_aa_capacity r.Aggregate.topology))
        1 ranges
    in
    let pages = Metafile.pages (Aggregate.metafile t.aggregate) in
    let old = t.alloc_shards in
    t.alloc_shards <-
      Array.init jobs (fun c ->
          if c < Array.length old then old.(c)
          else
            Alloc_shard.create ~id:c ~capacity
              ~deltas:
                (Array.map
                   (fun (r : Aggregate.range) -> Score.create_delta r.Aggregate.topology)
                   ranges)
              ~touched_pages:pages)
  end

let prepare_par t ~jobs = ensure_alloc_shards t jobs

(* Concurrent free: O(1) into the calling slot's private queue.  Drained
   serially (in shard order, so the commit order is deterministic) into
   the aggregate's validated free queue before the CP commit. *)
let queue_free_par t ~slot ~pvbn = Alloc_shard.queue_free t.alloc_shards.(slot) pvbn

let drain_queued_frees t =
  let total = ref 0 in
  Array.iter
    (fun (shard : Alloc_shard.t) ->
      for k = 0 to shard.n_free - 1 do
        Aggregate.queue_free t.aggregate ~pvbn:shard.free_q.(k)
      done;
      total := !total + shard.n_free;
      shard.n_free <- 0)
    t.alloc_shards;
  !total

(* Claim-aware pick for one shard, under the pick mutex: chooses the range
   with the best available score (offline ranges score 0 and are skipped),
   then takes + claims its best unclaimed AA as owner [shard.id + 1].  The
   take is registered in the range cursor's taken list, so cp_finish
   releases and re-files shard-claimed AAs exactly like serial ones.
   Returns the range index and AA, or (-1, _) when nothing is available. *)
let par_pick_locked t row (shard : Alloc_shard.t) =
  let ranges = Aggregate.ranges t.aggregate in
  let rec pick_range_aa qbudget =
    let best_i = ref (-1) and best_s = ref 0 in
    Array.iteri
      (fun i r ->
        let s = best_score_of_range r in
        if s > !best_s then begin
          best_i := i;
          best_s := s
        end)
      ranges;
    if !best_i < 0 then (-1, 0)
    else begin
      let i = !best_i in
      let range = ranges.(i) in
      let cursor = row.(i) in
      let picked =
        pick_aa t cursor ~policy:Config.Best_aa ~space:range.Aggregate.index
          ~cache:range.Aggregate.cache
          ~n_aas:(Topology.aa_count range.Aggregate.topology)
          ~free_of:(fun aa -> Aggregate.aa_score_now t.aggregate range aa)
          ~owner:(shard.id + 1)
      in
      match picked with
      | None -> (-1, 0)
      | Some (aa, score) ->
        let bad =
          match range.Aggregate.fault with
          | Some dev -> aa_overlaps_fault range dev aa
          | None -> false
        in
        if bad then begin
          if qbudget = 0 then (-1, 0)
          else begin
            Hashtbl.replace cursor.quarantined aa ();
            Telemetry.incr "fault.aa_quarantined";
            pick_range_aa (qbudget - 1)
          end
        end
        else begin
          note_phys_take t score;
          shard.taken <- shard.taken + 1;
          shard.score_sum <- shard.score_sum + score;
          t.candidates_scanned <-
            t.candidates_scanned + Topology.aa_capacity range.Aggregate.topology aa;
          (i, aa)
        end
    end
  in
  pick_range_aa 64

(* Refill a shard's (empty) ring: pick under the mutex, harvest outside it
   (the harvest reads only bitmap bytes of the freshly claimed AA, which
   no other domain can touch).  A spent AA (score went stale across a CP)
   harvests zero and the pick retries. *)
let rec par_refill t row (shard : Alloc_shard.t) =
  Mutex.lock t.pick_mutex;
  let range_idx, aa =
    match par_pick_locked t row shard with
    | exception exn ->
      Mutex.unlock t.pick_mutex;
      raise exn
    | res -> res
  in
  Mutex.unlock t.pick_mutex;
  if range_idx < 0 then false
  else begin
    let range = (Aggregate.ranges t.aggregate).(range_idx) in
    let count =
      Aggregate.harvest_free_of_aa t.aggregate range aa ~dst:shard.ring
        ~words:shard.words
    in
    shard.harvested <- shard.harvested + count;
    (* The ring's monotone byte group, which steals split on: plain
       [pvbn lsr 3] for a contiguous AA, the per-device stripe byte for
       the stripe-major RAID-aware emission (adjacent entries there are
       on different devices, so adjacent-pvbn bytes say nothing). *)
    let key_base, key_mod =
      match range.Aggregate.topology with
      | Topology.Raid_agnostic _ -> (0, 0)
      | Topology.Raid_aware { geometry; _ } ->
        (range.Aggregate.base, Wafl_raid.Geometry.device_blocks geometry)
    in
    Alloc_shard.publish shard ~range_idx ~aa ~key_base ~key_mod ~count;
    count > 0 || par_refill t row shard
  end

(* Steal from the fullest other shard; a single attempt (failure falls
   through to a fresh pick). *)
let try_steal_from_any t (shard : Alloc_shard.t) =
  let shards = t.alloc_shards in
  let best = ref (-1) and best_n = ref 1 in
  for j = 0 to Array.length shards - 1 do
    if j <> shard.id then begin
      let n = Alloc_shard.entries shards.(j) in
      if n > !best_n then begin
        best := j;
        best_n := n
      end
    end
  done;
  !best >= 0 && Alloc_shard.try_steal ~victim:shards.(!best) ~thief:shard

(* The per-block consume loop of one shard: pop, set the bitmap bit (byte
   disjoint from every other domain by the claim + byte-aligned-steal
   invariants), record the touched metafile page and the score decrement
   in the shard's private accumulators.  Zero heap words per block. *)
let rec par_consume t (shard : Alloc_shard.t) am dst pos stop =
  if pos >= stop then pos
  else begin
    let pvbn = Alloc_shard.pop shard in
    if pvbn < 0 then pos
    else begin
      Activemap.allocate_harvested_touched am pvbn ~touched:shard.touched;
      Score.note_alloc_aa
        (Array.unsafe_get shard.deltas shard.ring_range)
        ~aa:shard.ring_aa;
      Array.unsafe_set dst pos pvbn;
      par_consume t shard am dst (pos + 1) stop
    end
  end

(* One shard's chunk: consume / steal / refill until the slice is full or
   the aggregate is dry.  [Gc.minor_words] brackets only the pop-consume
   segments — refills and steals run off the zero-allocation window. *)
let rec par_chunk t row (shard : Alloc_shard.t) am dst pos stop =
  if pos >= stop then pos
  else begin
    let m0 = Gc.minor_words () in
    let pos' = par_consume t shard am dst pos stop in
    shard.consume_minor <-
      shard.consume_minor + int_of_float (Gc.minor_words () -. m0);
    shard.allocated <- shard.allocated + (pos' - pos);
    if pos' >= stop then pos'
    else if try_steal_from_any t shard then par_chunk t row shard am dst pos' stop
    else if par_refill t row shard then par_chunk t row shard am dst pos' stop
    else pos'
  end

(* Fold every shard's private window state back into the shared structures,
   serially, in shard order — the merge is the only writer, so the result
   is independent of how the window's work interleaved. *)
let merge_par_window t jobs =
  let mf = Aggregate.metafile t.aggregate in
  let ranges = Aggregate.ranges t.aggregate in
  t.last_par <-
    Array.init jobs (fun c ->
        let shard = t.alloc_shards.(c) in
        Metafile.mark_touched_dirty mf ~touched:shard.touched;
        Bytes.fill shard.touched 0 (Bytes.length shard.touched) '\000';
        Array.iteri
          (fun i (r : Aggregate.range) ->
            Score.merge_into ~src:shard.deltas.(i) ~dst:r.Aggregate.delta)
          ranges;
        t.words := !(t.words) + !(shard.words);
        Telemetry.add "write_alloc.words_scanned" !(shard.words);
        shard.words := 0;
        t.harvested <- t.harvested + shard.harvested;
        Telemetry.add "write_alloc.vbns_harvested" shard.harvested;
        Telemetry.add "write_alloc.steals" shard.steals;
        Telemetry.max_gauge
          ("write_alloc.ring_high_water.d" ^ string_of_int c)
          (float_of_int shard.high_water);
        {
          ps_allocated = shard.allocated;
          ps_steals = shard.steals;
          ps_high_water = shard.high_water;
          ps_minor_words = shard.consume_minor;
        })

(* A parallel allocation window: one chunk (= one shard) per pool domain,
   each filling its own contiguous slice of [dst]; holes from uneven
   shortfalls are compacted afterwards and any remainder is retried on the
   serial path (which sees shard claims and cannot double-hand-out). *)
let allocate_pvbns_par t pool ~row ~dst n =
  let jobs = Par.jobs pool in
  ensure_alloc_shards t jobs;
  let ranges = Aggregate.ranges t.aggregate in
  (* Serial prologue: materialize lazily mounted ranges (the pick path
     must not rebuild from a worker), and drop serial rings left over
     from a previous epoch — their AAs are unclaimed again, so a shard
     could re-harvest the very blocks they still hold. *)
  Array.iter (fun r -> Rebuild.touch_range t.aggregate r) ranges;
  Array.iter
    (Array.iter (fun c ->
         if c.ring_epoch <> t.epoch then begin
           c.head <- 0;
           c.len <- 0;
           c.ring_epoch <- t.epoch
         end))
    t.cursors;
  for c = 0 to jobs - 1 do
    Alloc_shard.reset_window t.alloc_shards.(c)
  done;
  t.used_par <- true;
  let am = Aggregate.activemap t.aggregate in
  let bounds = Par.chunk_bounds ~total:n ~align:1 ~chunks:jobs in
  let chunks = Array.length bounds in
  let filled = Array.make chunks 0 in
  Par.run_with_slot pool ~chunks ~f:(fun ~slot:_ i ->
      let start, len = bounds.(i) in
      filled.(i) <- par_chunk t row t.alloc_shards.(i) am dst start (start + len) - start);
  merge_par_window t jobs;
  (* With temperature routing active the next window may serve a different
     class: flush leftover shard-ring entries so blocks harvested from
     this class's claimed AAs cannot leak into another class's batch.
     The blocks stay free in the bitmap and the AAs stay claimed until
     cp_finish — nothing is lost, the next same-class pick re-harvests. *)
  if t.classes > 1 then Array.iter Alloc_shard.flush t.alloc_shards;
  (* Compact the per-chunk slices left-justified. *)
  let pos = ref 0 in
  Array.iteri
    (fun i (start, _len) ->
      let f = filled.(i) in
      if start <> !pos && f > 0 then Array.blit dst start dst !pos f;
      pos := !pos + f)
    bounds;
  if !pos < n then allocate_pvbns_serial t ~row ~dst ~pos0:!pos (n - !pos) else !pos

let allocate_pvbns_into ?(cls = 0) t ~dst n =
  if n <= 0 then 0
  else begin
    let row = t.cursors.(if cls < 0 || cls >= t.classes then 0 else cls) in
    match !alloc_pool with
    | Some p
      when Par.jobs p > 1
           && n >= Par.jobs p * 16
           && (Aggregate.config t.aggregate).Config.aggregate_policy = Config.Best_aa
           && parallel_capable t ->
      allocate_pvbns_par t p ~row ~dst n
    | _ -> allocate_pvbns_serial t ~row ~dst ~pos0:0 n
  end

let temp_classes t = t.classes

let last_par_stats t = t.last_par
let claim_conflicts t = t.claim_conflicts

(* ------------------------------------------------------------------ *)

let rec refill_vol t vol cursor =
  Rebuild.touch_vol vol;
  let policy = (Flexvol.spec vol).Config.policy in
  Telemetry.span_enter Span.Pick;
  let picked =
    pick_aa t cursor ~policy ~space:(-1) ~cache:(Flexvol.cache vol)
      ~n_aas:(Topology.aa_count (Flexvol.topology vol))
      ~free_of:(fun aa -> Score.score_of_aa (Flexvol.topology vol) (Flexvol.metafile vol) aa)
      ~owner:0
  in
  Telemetry.span_exit Span.Pick;
  match picked with
  | None -> false
  | Some (aa, score) ->
    note_virt_take t score;
    t.candidates_scanned <-
      t.candidates_scanned + Topology.aa_capacity (Flexvol.topology vol) aa;
    let words0 = !(t.words) in
    Telemetry.span_enter Span.Harvest;
    let count = Flexvol.harvest_free_of_aa vol aa ~dst:cursor.ring ~words:t.words in
    Telemetry.span_exit Span.Harvest;
    cursor.head <- 0;
    cursor.len <- count;
    cursor.ring_aa <- aa;
    cursor.ring_epoch <- t.epoch;
    note_harvest t ~words0 ~count;
    count > 0 || refill_vol t vol cursor

let rec vvbn_loop t vol cursor dst n pos =
  if pos >= n then pos
  else if cursor.head < cursor.len then begin
    let vvbn = cursor.ring.(cursor.head) in
    cursor.head <- cursor.head + 1;
    (* reserve immediately so a re-gathered AA cannot offer it again *)
    Flexvol.reserve_harvested vol ~aa:cursor.ring_aa ~vvbn;
    dst.(pos) <- vvbn;
    vvbn_loop t vol cursor dst n (pos + 1)
  end
  else if refill_vol t vol cursor then vvbn_loop t vol cursor dst n pos
  else pos

let allocate_vvbns_into t vol ~dst n =
  if n <= 0 then 0
  else begin
    let cursor = vol_cursor t vol in
    revalidate t cursor (Flexvol.metafile vol);
    vvbn_loop t vol cursor dst n 0
  end

(* CP boundary for one space: release every taken AA's claim (across all
   of the space's class cursors — their taken lists are disjoint, the
   shared claim words block a second class from taking an owned AA),
   apply the score delta once, and make sure every taken AA is re-filed
   in the cache, even if its score did not change.  [Score.mem] answers
   "will apply emit this AA?" directly from the delta's preallocated
   accumulator, so no per-CP hash table or list concatenation is needed.
   [wear_adjust], when given, maps [(aa, score)] to the cache-filed score
   — the free-count [scores] array itself is never touched by wear. *)
let cp_finish_space ?(keep_claimed_rings = false) ?wear_adjust ~delta
    ~(scores : int array) ~cache cursors =
  let extra = ref [] in
  Array.iter
    (fun cursor ->
      (* With several class rows over shared claim words, a surviving ring
         is only safe if its AA stays claimed across the boundary: the ring
         blocks are still free in the bitmap, and an unclaimed AA could be
         picked and re-harvested by another class next CP.  Keep the claim
         (and re-enter the AA in the taken list, so a later cp_finish both
         re-files and eventually releases it); everything else releases as
         usual.  The single-row spaces pass [keep_claimed_rings = false]
         and keep the pre-routing behavior: ring kept, claim released. *)
      let keep_aa =
        if keep_claimed_rings && cursor.head < cursor.len then cursor.ring_aa else -1
      in
      let kept = ref false in
      for k = 0 to cursor.n_taken - 1 do
        let aa = cursor.taken_list.(k) in
        if aa = keep_aa then kept := true
        else Atomic.set cursor.owners.(aa) Aggregate.no_owner;
        if not (Score.mem delta ~aa) then extra := (aa, scores.(aa)) :: !extra
      done;
      cursor.n_taken <- 0;
      if !kept then push_taken cursor keep_aa
      else if keep_aa >= 0 then begin
        (* live ring whose AA we no longer own: unsafe to consume *)
        cursor.head <- 0;
        cursor.len <- 0
      end)
    cursors;
  let extra = !extra in
  let updates = Score.apply delta scores in
  match cache with
  | Some cache ->
    let updates =
      (* quarantined AAs sit on bad device ranges: never re-file them, or
         the cache would hand them right back.  Empty quarantine (the
         fault-free common case) skips the filter allocation. *)
      if Array.for_all (fun c -> Hashtbl.length c.quarantined = 0) cursors then
        List.rev_append extra updates
      else
        List.filter
          (fun (aa, _) ->
            not (Array.exists (fun c -> Hashtbl.mem c.quarantined aa) cursors))
          (List.rev_append extra updates)
    in
    let updates =
      match wear_adjust with
      | None -> updates
      | Some f -> List.map (fun (aa, score) -> (aa, (f aa score : int))) updates
    in
    Cache.cp_update cache updates
  | None -> ()

(* Worst per-erase-block wear under an AA's range-local extents — the
   per-AA wear the scorer bins.  An AA far smaller than an erase block
   inherits its block's wear; an erase-block-aligned AA is exactly one
   block's count. *)
let aa_max_wear (range : Aggregate.range) ftl aa =
  List.fold_left
    (fun acc e ->
      max acc
        (Wafl_device.Ftl.max_wear_in ftl ~start:(Wafl_block.Extent.start e)
           ~len:(Wafl_block.Extent.len e)))
    0
    (Topology.extents_of_aa range.Aggregate.topology aa)

let cp_finish t =
  t.epoch <- t.epoch + 1;
  if t.used_par then begin
    (* After a parallel window, any surviving ring — serial or shard —
       holds blocks of AAs whose claims are released and whose scores are
       about to be re-filed; a later pick could re-harvest those blocks.
       Drop all rings (the blocks stay free in the bitmap, nothing is
       lost) and start the next CP clean.  Class rows in serial mode keep
       their rings instead: cp_finish_space holds the ring AA's claim
       across the boundary, so each class keeps filling the same AA over
       consecutive CPs exactly like the unrouted serial allocator. *)
    Array.iter
      (Array.iter (fun c ->
           c.head <- 0;
           c.len <- 0))
      t.cursors;
    Array.iter Alloc_shard.flush t.alloc_shards;
    t.used_par <- false
  end;
  let bias = (Aggregate.config t.aggregate).Config.streams.Config.wear_bias in
  Array.iteri
    (fun i (range : Aggregate.range) ->
      let wear_adjust =
        if bias <= 0 then None
        else
          match range.Aggregate.device with
          | Aggregate.Ssd_sim ftl ->
            let min_wear, _ = Wafl_device.Ftl.wear_spread ftl in
            Some
              (fun aa score ->
                Score.wear_adjusted ~bias ~wear:(aa_max_wear range ftl aa) ~min_wear
                  ~score)
          | _ -> None
      in
      cp_finish_space ~keep_claimed_rings:(t.classes > 1) ?wear_adjust
        ~delta:range.Aggregate.delta ~scores:range.Aggregate.scores
        ~cache:range.Aggregate.cache
        (Array.map (fun row -> row.(i)) t.cursors))
    (Aggregate.ranges t.aggregate);
  List.iter
    (fun (vol, cursor) ->
      cp_finish_space ~delta:(Flexvol.delta vol) ~scores:(Flexvol.scores vol)
        ~cache:(Flexvol.cache vol) [| cursor |])
    t.vols

let candidates_scanned t = t.candidates_scanned
let words_scanned t = !(t.words)
let vbns_harvested t = t.harvested

let aas_taken t = t.phys_taken + t.virt_taken
let score_sum_taken t = t.phys_score_sum + t.virt_score_sum
let phys_take_trace t = (t.phys_taken, t.phys_score_sum)
let virt_take_trace t = (t.virt_taken, t.virt_score_sum)

let reset_take_stats t =
  t.phys_taken <- 0;
  t.phys_score_sum <- 0;
  t.virt_taken <- 0;
  t.virt_score_sum <- 0;
  t.candidates_scanned <- 0;
  t.words := 0;
  t.harvested <- 0
