test/test_aacache.ml: Alcotest Array Bytes Cache Char Gen Hbps List Max_heap Option Printf QCheck QCheck_alcotest Topaa Wafl_aacache
