lib/util/queueing.ml: Float List
