(** File-system constants shared across the reproduction.

    WAFL addresses storage in 4KiB blocks (paper §2).  A 4KiB bitmap-metafile
    block holds 32k bits, one per VBN (§3.2.1), which is why the default
    RAID-agnostic allocation area is 32k consecutive VBNs.  AZCS groups 63
    data blocks with one checksum block (§3.2.4). *)

val block_size : int
(** Bytes per WAFL block: 4096. *)

val bits_per_metafile_block : int
(** Bits (VBNs) tracked by one 4KiB bitmap-metafile block: 32768. *)

val default_raid_agnostic_aa_blocks : int
(** Default AA size without RAID geometry: 32k VBNs (one metafile block). *)

val default_hdd_aa_stripes : int
(** Default AA size for an HDD RAID group: 4k stripes (§3.2.1). *)

val tetris_stripes : int
(** Stripes per tetris, the unit of write I/O from WAFL to RAID: 64 (§4.2). *)

val azcs_region_blocks : int
(** Blocks per AZCS region: 63 data + 1 checksum = 64 (§3.2.4). *)

val azcs_data_blocks : int
(** Data blocks per AZCS region: 63. *)

val kib : int
val mib : int
val gib : int
val tib : int

val blocks_of_bytes : int -> int
(** Bytes to whole 4KiB blocks, rounding up. *)

val bytes_of_blocks : int -> int

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count, e.g. "16TiB". *)
