(** Write-temperature inference for the allocation path.

    The paper stops at "pick the emptiest AA"; SepBIT (arXiv 2104.12425)
    shows the next win is {e separating} writes by expected lifetime.  The
    estimator used here is SepBIT's core observation: when a write
    overwrites a logical location, the lifespan of the version it kills
    (in CPs, measured on an internal clock advanced once per CP) predicts
    how soon the new version will itself die.  Writes that kill young
    versions are {e hot}; writes that kill versions far older than the
    volume's running average are {e cold}; fresh writes and unknown
    births default to {e warm}; a configured metafile id is classed
    {e meta} unconditionally.

    State is bounded and off-heap-capable: 2 bytes of birth epoch per
    vvbn per tracked volume on a {!Wafl_bitmap.Pagestore} (anonymous even
    under [--backend mmap] — inferred temperature is a cache, not
    persisted state), plus one EWMA float per volume.  Classification is
    allocation-free after a volume's first touch. *)

type cls = Hot | Warm | Cold | Meta

val cls_name : cls -> string
val cls_index : cls -> int
(** Stable 0..3 order: hot, warm, cold, meta. *)

type t

val create : ?meta_file:int -> classes:int -> unit -> t
(** [classes] (1..4) is how many routing slots {!slot_of} collapses onto;
    [meta_file] marks one file id as metafile traffic. *)

val classes : t -> int

val cp_clock : t -> int
val advance_cp : t -> unit
(** Tick the birth-epoch clock; call once per completed CP. *)

val note_birth : t -> uid:int -> blocks:int -> vvbn:int -> unit
(** Record that [vvbn] of the volume identified by [uid] (whose vvbn
    space is [blocks] wide) was written this CP.  Out-of-range vvbns are
    ignored. *)

val classify : t -> uid:int -> blocks:int -> file:int -> prev:int option -> cls
(** Class of a staged write: [prev] is the vvbn the write overwrites
    ([None] for a fresh write).  Updates the volume's lifespan EWMA and
    the per-class counters. *)

val class_slot : cls -> classes:int -> int
(** Collapse a class onto [classes] routing slots; slot 0 is hottest.
    [classes = 2] splits hot vs rest; [3] hot/warm/rest; [4] keeps all
    four. *)

val slot_of : t -> cls -> int
(** [class_slot c ~classes:(classes t)]. *)

val classified : t -> cls -> int
(** How many {!classify} decisions returned this class. *)

val avg_lifespan : t -> uid:int -> float option
(** The volume's current EWMA of overwrite lifespans (CPs), if tracked. *)
