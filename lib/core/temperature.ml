open Wafl_bitmap

type cls = Hot | Warm | Cold | Meta

let cls_name = function Hot -> "hot" | Warm -> "warm" | Cold -> "cold" | Meta -> "meta"
let cls_index = function Hot -> 0 | Warm -> 1 | Cold -> 2 | Meta -> 3

(* Per-volume inference state.  [store] keeps 2 bytes of birth epoch per
   vvbn; [avg] is the EWMA of observed overwrite lifespans in CPs. *)
type vol = { store : Pagestore.t; blocks : int; mutable avg : float }

type t = {
  classes : int;
  meta_file : int option;
  mutable cp : int;
  vols : (int, vol) Hashtbl.t;
  classified : int array; (* per-cls decision counters, indexed by cls_index *)
}

let create ?meta_file ~classes () =
  if classes < 1 || classes > 4 then invalid_arg "Temperature.create: classes in 1..4";
  { classes; meta_file; cp = 0; vols = Hashtbl.create 8; classified = Array.make 4 0 }

let classes t = t.classes
let cp_clock t = t.cp
let advance_cp t = t.cp <- t.cp + 1

(* Births are stored as 16-bit little-endian (cp mod 65535) + 1 so that a
   zero-filled store reads back as "unknown".  The store is created with
   an explicit backend so it never joins an installed mmap directory's
   file sequence: inferred temperature is a reconstructible cache, not
   persisted state, and must not perturb the remount mapping. *)
let vol_state t ~uid ~blocks =
  match Hashtbl.find_opt t.vols uid with
  | Some v -> v
  | None ->
    let words = ((2 * blocks) + 7) / 8 in
    let v =
      { store = Pagestore.create ~backend:(Pagestore.default ()) words; blocks; avg = 8.0 }
    in
    Hashtbl.add t.vols uid v;
    v

let encode_cp cp = (cp mod 65535) + 1

let birth_of v vvbn =
  let lo = Pagestore.byte v.store (2 * vvbn) in
  let hi = Pagestore.byte v.store ((2 * vvbn) + 1) in
  lo lor (hi lsl 8)

let note_birth t ~uid ~blocks ~vvbn =
  let v = vol_state t ~uid ~blocks in
  if vvbn >= 0 && vvbn < v.blocks then begin
    let e = encode_cp t.cp in
    Pagestore.set_byte v.store (2 * vvbn) (e land 0xff);
    Pagestore.set_byte v.store ((2 * vvbn) + 1) (e lsr 8)
  end

let avg_lifespan t ~uid =
  Option.map (fun v -> v.avg) (Hashtbl.find_opt t.vols uid)

(* SepBIT-style inference: the lifespan of the version an overwrite kills
   estimates the invalidation time of the version it creates.  Short
   inferred lifetime -> Hot; far beyond the volume's running average ->
   Cold; everything else (including fresh writes and unknown births) is
   Warm.  The metafile override wins over inference. *)
let classify t ~uid ~blocks ~file ~prev =
  let c =
    match t.meta_file with
    | Some mf when file = mf -> Meta
    | _ -> (
      match prev with
      | None -> Warm
      | Some vvbn ->
        let v = vol_state t ~uid ~blocks in
        if vvbn < 0 || vvbn >= v.blocks then Warm
        else
          let b = birth_of v vvbn in
          if b = 0 then Warm
          else
            let lifespan =
              (t.cp mod 65535) - (b - 1) |> fun d -> (d + 65535) mod 65535
            in
            let l = float_of_int lifespan in
            let avg = v.avg in
            v.avg <- avg +. ((l -. avg) /. 8.0);
            if l <= avg then Hot else if l > 4.0 *. avg then Cold else Warm)
  in
  t.classified.(cls_index c) <- t.classified.(cls_index c) + 1;
  c

(* Collapse the four logical classes onto however many routing slots the
   config asked for.  Slot 0 is always the hottest. *)
let class_slot c ~classes =
  if classes <= 1 then 0
  else
    match (classes, c) with
    | 2, Hot -> 0
    | 2, _ -> 1
    | 3, Hot -> 0
    | 3, Warm -> 1
    | 3, _ -> 2
    | _, c -> cls_index c

let slot_of t c = class_slot c ~classes:t.classes
let classified t c = t.classified.(cls_index c)
