lib/core/cleaner.mli: Fs
