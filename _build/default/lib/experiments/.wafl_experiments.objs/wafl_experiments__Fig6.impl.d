lib/experiments/fig6.ml: Aggregate Aging Array Common Config Flexvol Fs Ftl List Load Printf Random_overwrite Rng Series Wafl_aa Wafl_core Wafl_device Wafl_sim Wafl_util Wafl_workload Write_alloc
