lib/core/cp.ml: Aggregate Array Azcs Cache Config Flexvol Float Ftl Geometry Group Hashtbl Hdd Int List Object_store Smr Stripe Tetris Wafl_aacache Wafl_device Wafl_raid Wafl_util Write_alloc
