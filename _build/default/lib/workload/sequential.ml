open Wafl_core

type t = { fs : Fs.t; vol : Flexvol.t; file : int; mutable next : int }

let create fs vol ?(file = 1) () = { fs; vol; file; next = 0 }

let step t n =
  let limit = Flexvol.blocks t.vol in
  let count = min n (limit - t.next) in
  if count <= 0 then invalid_arg "Sequential.step: volume exhausted";
  for i = 0 to count - 1 do
    Fs.stage_write t.fs ~vol:t.vol ~file:t.file ~offset:(t.next + i)
  done;
  t.next <- t.next + count;
  Fs.run_cp t.fs

let written t = t.next
