lib/raid/stripe.ml: Format Geometry Hashtbl List
