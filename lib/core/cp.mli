(** Consistency points: WAFL's atomic flush of accumulated changes (§2.1).

    A CP takes every block write staged since the previous CP, allocates a
    virtual VBN (in the owning FlexVol) and a physical VBN (in the
    aggregate) for each, frees the blocks the writes replace (COW), drives
    the device simulators with the resulting I/O, commits the delayed frees
    and bitmap-metafile pages, and finally applies the batched AA-score
    updates to the caches (§3.3). *)

type staged = { vol : Flexvol.t; file : int; offset : int }

type device_report = {
  range_index : int;
  media : string;
  blocks_written : int;
  chains : int;
  full_stripes : int;
  partial_stripes : int;
  tetrises : int;
  parity_writes : int;
  parity_reads : int;
  device_time_us : float;
  ssd_stats : Wafl_device.Ftl.stats option;      (** this CP's delta *)
  ssd_stream_stats : Wafl_device.Ftl.stats array;
      (** this CP's delta per FTL write stream ([[||]] for non-SSD) *)
  smr_random_checksum_writes : int;
  fault : Wafl_fault.Fault.io_stats option;
      (** this CP's fault/retry activity on the range's device; [None]
          when no fault plane is attached *)
}

type report = {
  ops : int;                   (** staged writes processed *)
  blocks_allocated : int;      (** PVBNs actually placed (= ops unless the
                                   aggregate ran out of space) *)
  pvbns_freed : int;
  vvbns_freed : int;
  agg_metafile_pages : int;
  vol_metafile_pages : int;
  devices : device_report list;
  device_time_us : float;      (** max over ranges: groups flush in parallel *)
  cache_work : int;            (** abstract cache maintenance units this CP *)
  alloc_candidates : int;      (** bitmap positions scanned to gather the
                                   CP's free VBNs — fewer per block when
                                   AAs are emptier (§2.5) *)
  fault_totals : Wafl_fault.Fault.io_stats option;
      (** summed fault activity across devices; [None] without a plane *)
}

val timeseries_columns : string list
(** Schema of the per-CP row [run] appends to the installed telemetry
    instance's time series ({!Wafl_telemetry.Timeseries}): CP index,
    op/alloc/free counts, pick and replenish counts, free-block search
    cost in ns per allocated block (the [cp.pick] + [cp.harvest] span
    delta), CP wall ns, the HBPS score-error bound, AA score deciles
    d1..d9, free-space totals and fragmentation
    ([1 - largest_free_run / free_blocks]), the harvest-ring high-water
    mark, modeled device time, fault totals, scrub totals, the SSD
    segregation axes (cumulative write amplification, per-stream
    relocations this CP, peak erase-block wear), and modeled request
    latency ([lat_p50/99/999_ms] overall plus [lat_v0..v3_*] for the
    first four volume slots — all zeros unless the installed telemetry
    instance carries a {!Wafl_telemetry.Latency.t}). *)

val run :
  ?pool:Wafl_par.Par.t -> ?temp:Temperature.t -> Write_alloc.t -> staged list -> report
(** Execute one CP over the staged writes.  With a pool (explicit, or
    installed via [Wafl_par.Par.install]) the CP is sharded: the delayed-
    free apply is chunked over page-aligned slices of the block space, the
    per-volume commits run one volume per domain, and the per-range device
    flushes run one range per domain.  Crash points fire serially before
    each parallel section (same names, counts and order as a serial CP),
    and results merge in volume/range order, so reports, telemetry
    counters, and all bitmap/cache state are identical to a serial CP at
    any domain count.

    With [temp] (and more than one configured class) each staged write is
    classified before placement — by the lifespan of the version it
    overwrites — its physical blocks come from the matching
    {!Write_alloc} class row, and each class's batch is flushed to its
    own FTL write stream on SSD ranges.  Births are recorded and the
    temperature clock ticks once per CP either way. *)

val empty_report : report
