open Wafl_bitmap
open Wafl_telemetry
module Par = Wafl_par.Par

type scope = Full | Ranges of Aggregate.range list

let request ?pool ?(vols = [||]) agg scope =
  match scope with
  | Full ->
    Telemetry.incr "aggregate.cache_rebuilds";
    Array.iter (fun r -> Aggregate.rebuild_range ?pool agg r) (Aggregate.ranges agg);
    Array.iter (fun v -> Flexvol.rebuild_cache ?pool v) vols
  | Ranges rs -> List.iter (fun r -> Aggregate.rebuild_range ?pool agg r) rs

let request_vol ?pool vol = Flexvol.rebuild_cache ?pool vol

(* First-touch hooks: a fresh range/volume costs one integer compare; a
   stale one pays the page reads its exact rescore implies (accounted as
   metafile scan I/O, like the eager mount scan) and is re-stamped.  The
   installed domain pool, if any, spreads the rescore. *)

let materialize_range agg r =
  Telemetry.incr "rebuild.lazy_ranges";
  ignore
    (Metafile.scan_read (Aggregate.metafile agg) ~start:r.Aggregate.base
       ~len:r.Aggregate.blocks);
  Aggregate.rebuild_range agg r

let[@inline] touch_range agg r =
  if not (Aggregate.range_fresh agg r) then materialize_range agg r

let materialize_vol v =
  Telemetry.incr "rebuild.lazy_vols";
  ignore (Metafile.scan_read (Flexvol.metafile v) ~start:0 ~len:(Flexvol.blocks v));
  Flexvol.rebuild_cache v

let[@inline] touch_vol v = if not (Flexvol.cache_fresh v) then materialize_vol v
