examples/failover_replay.ml: Aggregate Aging Bytes Config Format Fs List Mount Printf Rng Wafl_aacache Wafl_core Wafl_device Wafl_util Wafl_workload Write_alloc
