lib/block/units.ml: Format Wafl_util
