open Wafl_block

type totals = {
  flushes : int;
  blocks_written : int;
  tetrises_written : int;
  full_stripes : int;
  partial_stripes : int;
  parity_writes : int;
  extra_parity_reads : int;
  per_device_blocks : int array;
  chain_count : int;
  chain_blocks : int;
}

type t = { geometry : Geometry.t; mutable totals : totals }

let empty_totals geom =
  {
    flushes = 0;
    blocks_written = 0;
    tetrises_written = 0;
    full_stripes = 0;
    partial_stripes = 0;
    parity_writes = 0;
    extra_parity_reads = 0;
    per_device_blocks = Array.make (Geometry.data_devices geom) 0;
    chain_count = 0;
    chain_blocks = 0;
  }

let create geometry = { geometry; totals = empty_totals geometry }

let geometry t = t.geometry

(* Write chains are per device: consecutive DBNs on the same device written
   in one flush collapse into one I/O. *)
let chain_summary geom vbns =
  let by_device = Hashtbl.create 16 in
  List.iter
    (fun vbn ->
      let loc = Geometry.location_of_vbn geom vbn in
      let existing = try Hashtbl.find by_device loc.Geometry.device with Not_found -> [] in
      Hashtbl.replace by_device loc.Geometry.device (loc.Geometry.dbn :: existing))
    vbns;
  Hashtbl.fold
    (fun _device dbns (count, blocks) ->
      let s = Chain.of_blocks dbns in
      (count + s.Chain.chains, blocks + s.Chain.blocks))
    by_device (0, 0)

type flush_report = {
  classification : Stripe.classification;
  tetris : Tetris.summary;
  chains : int;
  chain_blocks : int;
}

let record_flush t ~vbns =
  let classification = Stripe.classify t.geometry ~vbns in
  let tetris = Tetris.summarize t.geometry ~vbns in
  let chain_count, chain_blocks =
    if vbns = [] then (0, 0) else chain_summary t.geometry vbns
  in
  let tot = t.totals in
  Array.iteri
    (fun i n -> tot.per_device_blocks.(i) <- tot.per_device_blocks.(i) + n)
    tetris.Tetris.per_device_blocks;
  t.totals <-
    {
      tot with
      flushes = tot.flushes + 1;
      blocks_written = tot.blocks_written + tetris.Tetris.blocks;
      tetrises_written = tot.tetrises_written + tetris.Tetris.tetrises;
      full_stripes = tot.full_stripes + classification.Stripe.full_stripes;
      partial_stripes = tot.partial_stripes + classification.Stripe.partial_stripes;
      parity_writes = tot.parity_writes + classification.Stripe.parity_writes;
      extra_parity_reads = tot.extra_parity_reads + classification.Stripe.extra_reads;
      chain_count = tot.chain_count + chain_count;
      chain_blocks = tot.chain_blocks + chain_blocks;
    };
  { classification; tetris; chains = chain_count; chain_blocks }

let totals t = t.totals

let mean_chain_len totals =
  if totals.chain_count = 0 then 0.0
  else float_of_int totals.chain_blocks /. float_of_int totals.chain_count

let stripe_fullness totals =
  let stripes = totals.full_stripes + totals.partial_stripes in
  if stripes = 0 then 0.0 else float_of_int totals.full_stripes /. float_of_int stripes

let reset t = t.totals <- empty_totals t.geometry

let pp_totals fmt totals =
  Format.fprintf fmt "flushes=%d blocks=%d tetrises=%d full=%d partial=%d chains=%d"
    totals.flushes totals.blocks_written totals.tetrises_written totals.full_stripes
    totals.partial_stripes totals.chain_count
