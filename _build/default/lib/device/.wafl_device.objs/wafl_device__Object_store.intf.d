lib/device/object_store.mli: Profile
