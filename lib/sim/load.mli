(** Latency-vs-throughput sweeps (§4.1's methodology).

    The paper ramps closed-loop clients against the server and plots
    latency against achieved throughput per client.  We measure the
    steady-state per-op service demand by running CPs of a fixed batch size
    against the simulated system, then sweep offered load through an M/G/1
    model of the server to obtain the familiar hockey-stick curve.  The
    comparisons between configurations (cache on/off, AA size) come
    entirely from the measured service times; the queueing model only maps
    them onto a load axis. *)

type point = {
  offered_load : float;      (** ops/sec *)
  throughput : float;        (** achieved ops/sec *)
  latency_ms : float;
}

type curve = {
  label : string;
  service_time_us : float;
  cpu_us_per_op : float;
  cache_us_per_op : float;
  points : point list;
}

val measure_service_time :
  ?model:Cost_model.t -> cps:int -> ops_per_cp:int ->
  step:(int -> Wafl_core.Cp.report) -> unit -> Cost_model.op_costs
(** Run [cps] consistency points of [ops_per_cp] staged operations each via
    [step] (which stages and runs one CP, returning its report) and combine
    into steady-state per-op costs. *)

val sweep :
  label:string -> ?cv2:float -> ?loads:float list -> Cost_model.op_costs -> curve
(** Build the latency-throughput curve for a measured service demand.
    Default loads ramp from 5% to 160% of the service capacity. *)

val peak_throughput : curve -> float
val latency_at_peak_ms : curve -> float

val latency_at_load_ms : curve -> float -> (float, string) result
(** Interpolated model latency at an offered load.  Out-of-range loads
    return [Error] with a printable explanation ("offered load ... exceeds
    peak throughput ..." above the sweep, a below-minimum message under
    it) — CLI callers surface the message instead of silently dropping
    the point. *)

val to_series : curve -> Wafl_util.Series.t
(** x = throughput (kops/s), y = latency (ms). *)
