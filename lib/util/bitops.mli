(** Small bit-manipulation helpers used by the bitmap layer. *)

val popcount64 : int64 -> int
(** Number of set bits. *)

val popcount_byte : int -> int
(** Number of set bits in the low 8 bits; table-driven. *)

val ctz64 : int64 -> int
(** Index (0-based, from least-significant) of the lowest set bit.
    Returns 64 when the argument is zero. *)

val clz64 : int64 -> int
(** Leading-zero count; 64 when the argument is zero. *)

val ctz : int -> int
(** Trailing-zero count on a native (immediate, never-boxed) int —
    the hot-path variant the harvest kernels use so a scan allocates
    nothing.  Returns [Sys.int_size] when the argument is zero. *)

val popcount : int -> int
(** Set bits of a native int.  Defined on non-negative values (the
    harvest masks are at most 32 bits wide). *)

val lowest_zero_byte : int -> int
(** Index of the lowest clear bit of the low 8 bits; 8 if all set. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] for [n > 0]. False for non-positive values. *)

val ceil_div : int -> int -> int
(** Integer division rounding up; divisor must be positive. *)

val round_up : int -> int -> int
(** [round_up n m] is the smallest multiple of [m] that is [>= n]. *)

val round_down : int -> int -> int
(** Largest multiple of [m] that is [<= n]. *)
