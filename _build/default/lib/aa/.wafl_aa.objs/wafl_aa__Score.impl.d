lib/aa/score.ml: Array Extent Hashtbl List Metafile Topology Wafl_bitmap Wafl_block
