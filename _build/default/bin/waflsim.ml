(* waflsim: run individual paper experiments from the command line. *)

open Cmdliner
open Wafl_experiments

let scale_arg =
  let doc = "Experiment scale: 'quick' (seconds, CI-sized) or 'full'." in
  Arg.(value & opt string "quick" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let parse_scale s =
  match Common.scale_of_string s with
  | Some scale -> scale
  | None -> begin
    Printf.eprintf "unknown scale %S (expected quick|full)\n" s;
    exit 2
  end

let fig6_cmd =
  let run s = Fig6.print (Fig6.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "fig6" ~doc:"AA-cache latency/throughput experiment (Figure 6)")
    Term.(const run $ scale_arg)

let fig7_cmd =
  let run s = Fig7.print (Fig7.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "fig7" ~doc:"Imbalanced RAID-group aging under OLTP (Figure 7)")
    Term.(const run $ scale_arg)

let fig8_cmd =
  let run s = Fig8.print (Fig8.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "fig8" ~doc:"SSD AA sizing experiment (Figure 8)")
    Term.(const run $ scale_arg)

let fig9_cmd =
  let run s = Fig9.print (Fig9.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "fig9" ~doc:"SMR AZCS-alignment experiment (Figure 9)")
    Term.(const run $ scale_arg)

let fig10_cmd =
  let run s = Fig10.print (Fig10.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "fig10" ~doc:"TopAA mount-time experiment (Figure 10)")
    Term.(const run $ scale_arg)

let scalars_cmd =
  let run s = Scalars.print (Scalars.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "scalars" ~doc:"Section 4.1 scalar claims")
    Term.(const run $ scale_arg)

let ablation_cmd =
  let run s = Ablation.print (Ablation.run ~scale:(parse_scale s) ()) in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablations (bin width, policy, threshold, cleaner)")
    Term.(const run $ scale_arg)

let all_cmd =
  let run s =
    let scale = parse_scale s in
    Fig6.print (Fig6.run ~scale ());
    Fig7.print (Fig7.run ~scale ());
    Fig8.print (Fig8.run ~scale ());
    Fig9.print (Fig9.run ~scale ());
    Fig10.print (Fig10.run ~scale ());
    Scalars.print (Scalars.run ~scale ());
    Ablation.print (Ablation.run ~scale ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ scale_arg)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info = Cmd.info "waflsim" ~doc:"WAFL free-block search reproduction experiments" in
  exit (Cmd.eval (Cmd.group ~default info [ fig6_cmd; fig7_cmd; fig8_cmd; fig9_cmd; fig10_cmd; scalars_cmd; ablation_cmd; all_cmd ]))
