open Wafl_core

type t = {
  cpu_base_us_per_op : float;
  metafile_page_cpu_us : float;
  metafile_page_write_us : float;
  cache_work_unit_us : float;
  read_fraction_us : float;
  alloc_candidate_us : float;
}

let default =
  {
    cpu_base_us_per_op = 100.0;
    metafile_page_cpu_us = 15.0;
    metafile_page_write_us = 25.0;
    cache_work_unit_us = 0.05;
    read_fraction_us = 0.0;
    alloc_candidate_us = 8.0;
  }

type op_costs = {
  ops : int;
  cpu_us_per_op : float;
  cache_us_per_op : float;
  service_time_us : float;
  cp_duration_us : float;
}

let of_report ?(model = default) (r : Cp.report) =
  if r.Cp.ops <= 0 then invalid_arg "Cost_model.of_report: empty CP";
  let ops = float_of_int r.Cp.ops in
  let pages = float_of_int (r.Cp.agg_metafile_pages + r.Cp.vol_metafile_pages) in
  let cache_us = float_of_int r.Cp.cache_work *. model.cache_work_unit_us in
  let scan_us = float_of_int r.Cp.alloc_candidates *. model.alloc_candidate_us in
  let cpu_total =
    (model.cpu_base_us_per_op *. ops)
    +. (pages *. model.metafile_page_cpu_us)
    +. cache_us +. scan_us
  in
  let io_total = r.Cp.device_time_us +. (pages *. model.metafile_page_write_us) in
  {
    ops = r.Cp.ops;
    cpu_us_per_op = cpu_total /. ops;
    cache_us_per_op = cache_us /. ops;
    service_time_us = (cpu_total +. io_total) /. ops;
    cp_duration_us = cpu_total +. io_total;
  }

(* The latency layer lives below the sim (telemetry can't depend on sim),
   so it keeps its own copy of the cost constants; this is the one
   conversion point, and a test pins
   [latency_model default = Latency.default_model]. *)
let latency_model m =
  {
    Wafl_telemetry.Latency.cpu_base_us_per_op = m.cpu_base_us_per_op;
    metafile_page_cpu_us = m.metafile_page_cpu_us;
    metafile_page_write_us = m.metafile_page_write_us;
    cache_work_unit_us = m.cache_work_unit_us;
    alloc_candidate_us = m.alloc_candidate_us;
  }

let combine costs =
  match costs with
  | [] -> invalid_arg "Cost_model.combine: empty"
  | _ ->
    let total_ops = List.fold_left (fun acc c -> acc + c.ops) 0 costs in
    let weighted f = List.fold_left (fun acc c -> acc +. (f c *. float_of_int c.ops)) 0.0 costs in
    let n = float_of_int total_ops in
    {
      ops = total_ops;
      cpu_us_per_op = weighted (fun c -> c.cpu_us_per_op) /. n;
      cache_us_per_op = weighted (fun c -> c.cache_us_per_op) /. n;
      service_time_us = weighted (fun c -> c.service_time_us) /. n;
      cp_duration_us = List.fold_left (fun acc c -> acc +. c.cp_duration_us) 0.0 costs;
    }
