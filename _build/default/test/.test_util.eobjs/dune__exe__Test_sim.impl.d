test/test_sim.ml: Alcotest Cost_model Cp List Load Wafl_core Wafl_sim Wafl_util
