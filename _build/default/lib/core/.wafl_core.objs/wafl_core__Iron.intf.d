lib/core/iron.mli: Format Fs
